# Development entry points. CI (.github/workflows/ci.yml) runs the same
# commands; the targets here exist so the local invocations and the
# gate's inputs cannot drift apart.

.PHONY: build test race check bench-baseline

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/core ./internal/parallel ./internal/topk ./internal/cache ./internal/server ./internal/cluster ./internal/sub

check: build
	go vet ./...
	gofmt -l .
	go test ./...

# Refresh the committed long-horizon perf baseline. The bench-gate CI
# job compares BENCH_BASELINE.json against every PR's head run (via
# benchstat, informational) and prints the drift between the committed
# stream and a same-machine re-run so runner skew stays visible. Run
# this on a quiet machine when a PR intentionally shifts performance,
# and review the delta alongside the code — the benchmark set must stay
# identical to the bench-gate job's regex.
bench-baseline:
	go test -json -run '^$$' -bench 'SRSP|SingleSource|SamplingV2|ApplyUpdates' -benchmem -benchtime 3x -count 3 . > BENCH_BASELINE.json

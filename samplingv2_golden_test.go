package usimrank_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"usimrank"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

// updateGolden rewrites testdata/golden/sampling_v2.json instead of
// comparing:
//
//	go test . -run TestSamplingV2Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/golden")

// v2GoldenResult pins the Sampling-v2 kernel's answers for every query
// shape the engine serves. The walks are pure functions of (seed,
// vertex, side), so these values are bit-stable across Parallelism and
// machines; any drift means the kernel's randomness contract changed.
type v2GoldenResult struct {
	Score            float64           `json:"score"`
	SourceFull       []float64         `json:"source_full"`
	SourceCandidates []float64         `json:"source_candidates"`
	TopKU            []v2GoldenPair    `json:"topk_u"`
	TopKPairs        []v2GoldenPair    `json:"topk_pairs"`
	Batch            []v2GoldenPairRes `json:"batch"`
}

type v2GoldenPair struct {
	U, V  int
	Score float64
}

type v2GoldenPairRes struct {
	U, V  int
	Score float64
}

// round9 rounds to 9 significant digits, matching the scrub rule used
// by the experiment golden files: a last-ulp libm difference across
// architectures cannot flake the pin, a real regression still trips it.
func round9(f float64) float64 {
	r, _ := strconv.ParseFloat(strconv.FormatFloat(f, 'g', 9, 64), 64)
	return r
}

func v2GoldenEngine(t *testing.T, parallelism int) *usimrank.Engine {
	t.Helper()
	g := gen.WithUniformProbs(gen.RMAT(7, 512, 0.45, 0.25, 0.2, rng.New(7)), 0.2, 0.9, rng.New(2))
	e, err := usimrank.New(g, usimrank.Options{N: 512, Seed: 1, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func v2GoldenRun(t *testing.T, e *usimrank.Engine) v2GoldenResult {
	t.Helper()
	var res v2GoldenResult
	alg := usimrank.AlgSamplingV2

	score, err := e.Compute(alg, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	res.Score = round9(score)

	full, err := e.SingleSource(alg, 5)
	if err != nil {
		t.Fatal(err)
	}
	res.SourceFull = make([]float64, len(full))
	for i, s := range full {
		res.SourceFull[i] = round9(s)
	}

	cands := []int{0, 9, 9, 31, 64, 127}
	sub, err := e.SingleSourceAgainst(alg, 5, cands)
	if err != nil {
		t.Fatal(err)
	}
	res.SourceCandidates = make([]float64, len(sub))
	for i, s := range sub {
		res.SourceCandidates[i] = round9(s)
	}

	topk, err := usimrank.TopKSimilar(e, alg, 11, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range topk {
		res.TopKU = append(res.TopKU, v2GoldenPair{U: r.U, V: r.V, Score: round9(r.Score)})
	}

	pairs, err := usimrank.TopKPairs(e, alg, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pairs {
		res.TopKPairs = append(res.TopKPairs, v2GoldenPair{U: r.U, V: r.V, Score: round9(r.Score)})
	}

	for _, br := range usimrank.Batch(e, alg, [][2]int{{0, 1}, {3, 17}, {40, 41}, {100, 2}}, 0) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		res.Batch = append(res.Batch, v2GoldenPairRes{U: br.U, V: br.V, Score: round9(br.Value)})
	}
	return res
}

// TestSamplingV2Golden pins the v2 kernel's output for every query
// shape to a golden JSON file, so a change to the walk layout, the
// arc-sampling plan, or the chunk merge order fails tier-1
// `go test ./...` instead of silently changing served scores.
// Regenerate deliberately with -update-golden and review the diff.
func TestSamplingV2Golden(t *testing.T) {
	res := v2GoldenRun(t, v2GoldenEngine(t, 1))
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", "sampling_v2.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sampling_v2 output diverged from golden file.\nIf the change is intended, regenerate with:\n  go test . -run TestSamplingV2Golden -update-golden\ngot:\n%s", got)
	}
}

// TestSamplingV2GoldenParallelismInvariant re-runs every query shape on
// engines with Parallelism 4 and 8 and requires bit-identical results:
// the deterministic chunk merge, not scheduling luck, decides every
// digit.
func TestSamplingV2GoldenParallelismInvariant(t *testing.T) {
	want := v2GoldenRun(t, v2GoldenEngine(t, 1))
	for _, p := range []int{4, 8} {
		got := v2GoldenRun(t, v2GoldenEngine(t, p))
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		if !bytes.Equal(wj, gj) {
			t.Fatalf("Parallelism=%d diverged from Parallelism=1:\n got %s\nwant %s", p, gj, wj)
		}
	}
}

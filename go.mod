module usimrank

go 1.24

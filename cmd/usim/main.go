// Command usim computes SimRank similarities on an uncertain graph with
// any of the algorithms from the paper, in four query shapes:
//
//	usim -graph g.ug -u 3 -v 17 -alg srsp            # one pair
//	usim -graph g.ug -source 3 -alg srsp             # s(3, ·) for every vertex
//	usim -graph g.ug -source 3 -topk 10 -alg srsp    # 10 most similar to 3
//	usim -graph g.ug -topk 10 -alg baseline          # 10 most similar pairs
//
// -update applies a batch of arc mutations through the engine's
// incremental update plane before the query runs, printing what the
// targeted invalidation retained:
//
//	usim -graph g.ug -u 3 -v 17 -update "reweight:3,17,0.9;delete:4,1;insert:0,9,0.5"
//
// -subscribe follows a standing query against a running usimd instead
// of computing locally: it opens the node's /v1/subscribe SSE stream,
// prints the initial snapshot, then prints one event per server push
// (the shape comes from the same -u/-v/-source/-topk flags):
//
//	usim -subscribe http://localhost:8471 -source 3 -alg srsp
//	usim -subscribe http://localhost:8471 -u 3 -v 17 -alg sampling -staleness 2s
//
// Single-source and top-k queries run on the engine's one-pass
// single-source kernels, so the source's sampling work is done once for
// the whole query; scores are bit-identical to the pairwise shape.
//
// The graph file is the textual format ("ug <n> <m>" header and
// "<u> <v> <p>" lines) or the binary format when the file starts with
// the USGR magic.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"usimrank"
	"usimrank/internal/sub"
)

// baselineAlgs are the -alg values outside the shared engine (the
// deterministic/expected-measure baselines); everything else must
// parse through usimrank.ParseAlgorithm, the one name list the CLI
// shares with the serving plane.
var baselineAlgs = map[string]bool{"det": true, "du": true, "jaccard": true}

func main() {
	var (
		graphPath = flag.String("graph", "", "uncertain graph file (text or binary)")
		u         = flag.Int("u", 0, "first vertex")
		v         = flag.Int("v", 1, "second vertex")
		alg       = flag.String("alg", "srsp", "algorithm: baseline | sampling | twophase | srsp | sampling_v2 | det | du | jaccard")
		c         = flag.Float64("c", 0.6, "decay factor in (0,1)")
		n         = flag.Int("n", 5, "SimRank iterations")
		samples   = flag.Int("N", 1000, "sampled walk pairs")
		l         = flag.Int("l", 1, "two-phase split")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "sampling worker goroutines (0 = all cores); results are identical for every value")
		source    = flag.Int("source", -1, "single-source mode: compute s(source, ·) instead of one pair")
		topK      = flag.Int("topk", 0, "top-k mode: report the k best candidates (with -source) or vertex pairs (without)")
		update    = flag.String("update", "", `arc mutations applied before the query: "op:u,v[,p]" triples separated by ';' (op: insert | delete | reweight)`)
		eps       = flag.Float64("eps", 0, "adaptive accuracy: sample until the confidence radius is ≤ eps instead of spending the full -N budget (0 = fixed budget)")
		delta     = flag.Float64("delta", 0, "adaptive failure probability (requires -eps; 0 selects the default 0.05)")
		subscribe = flag.String("subscribe", "", "follow mode: base URL of a running usimd (e.g. http://localhost:8471); streams the standing query named by -u/-v/-source/-topk instead of computing locally")
		staleness = flag.Duration("staleness", 0, "with -subscribe: staleness SLA — how long the server may batch updates before pushing")
	)
	flag.Parse()

	if *subscribe != "" {
		followSubscription(*subscribe, *alg, *u, *v, *source, *topK, *staleness)
		return
	}

	// Validate every flag up front: bad input exits 2 with a usage
	// message instead of surfacing as an engine error (or worse, a
	// panic) deep inside the computation.
	if *graphPath == "" {
		usage("-graph is required")
	}
	engineAlg, algErr := usimrank.ParseAlgorithm(*alg)
	if algErr != nil && !baselineAlgs[*alg] {
		usage(fmt.Sprintf("unknown algorithm %q (want baseline, sampling, twophase, srsp, sampling_v2, det, du or jaccard)", *alg))
	}
	if !(*c > 0 && *c < 1) {
		usage(fmt.Sprintf("-c %v outside (0,1)", *c))
	}
	if *n < 1 {
		usage(fmt.Sprintf("-n %d < 1", *n))
	}
	if *samples < 1 {
		usage(fmt.Sprintf("-N %d < 1", *samples))
	}
	// l = 0 is rejected rather than passed through: the engine treats a
	// zero L as "unset" and silently defaults it to 1, which would make
	// the flag lie about the split actually used.
	if *l < 1 || *l > *n {
		usage(fmt.Sprintf("-l %d outside [1,%d]", *l, *n))
	}
	if *topK < 0 {
		usage(fmt.Sprintf("-topk %d < 0", *topK))
	}
	if (*source >= 0 || *topK > 0) && algErr != nil {
		usage(fmt.Sprintf("algorithm %q does not support -source/-topk (use baseline, sampling, twophase or srsp)", *alg))
	}
	if *eps < 0 {
		usage(fmt.Sprintf("-eps %v < 0", *eps))
	}
	if *delta != 0 && *eps == 0 {
		usage("-delta requires -eps")
	}
	if *delta < 0 || *delta >= 1 {
		usage(fmt.Sprintf("-delta %v outside (0,1)", *delta))
	}
	if *eps > 0 && algErr != nil {
		usage(fmt.Sprintf("algorithm %q does not support -eps (use an engine algorithm)", *alg))
	}
	// Update syntax is validated before the (possibly slow) graph load;
	// semantic failures (missing arcs, out-of-range vertices) surface
	// from the engine's own staging validation below.
	updates, err := parseUpdates(*update)
	if err != nil {
		usage(err.Error())
	}
	g, err := usimrank.LoadGraphFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	// Vertex-id validation needs the graph's size, so it runs right
	// after the load — still before any engine work starts.
	nv := g.NumVertices()
	checkVertex := func(name string, v int) {
		if v < 0 || v >= nv {
			usage(fmt.Sprintf("%s %d out of range [0,%d)", name, v, nv))
		}
	}
	if *source >= 0 {
		checkVertex("-source", *source)
	} else if *topK == 0 {
		checkVertex("-u", *u)
		checkVertex("-v", *v)
	}
	if *topK > 0 && *source < 0 && nv < 2 {
		usage(fmt.Sprintf("-topk needs at least 2 vertices, graph has %d", nv))
	}
	opt := usimrank.Options{C: *c, Steps: *n, N: *samples, L: *l, Seed: *seed, Parallelism: *workers}

	// buildEngine constructs the engine and, when -update was given,
	// routes the mutations through the incremental update plane —
	// deriving the queried engine exactly as a serving plane would,
	// and reporting what the targeted invalidation retained.
	buildEngine := func() *usimrank.Engine {
		e, err := usimrank.New(g, opt)
		if err != nil {
			fatal(err)
		}
		if len(updates) == 0 {
			return e
		}
		derived, stats, err := e.ApplyUpdates(updates)
		if err != nil {
			fatal(err)
		}
		g = derived.Graph()
		fmt.Printf("applied %d update(s): generation %d, rows evicted %d / retained %d, |E| now %d\n",
			stats.Applied, stats.Generation, stats.RowsEvicted, stats.RowsRetained, g.NumArcs())
		return derived
	}
	// The deterministic/expected-measure baselines have no engine; give
	// them the mutated graph directly.
	if len(updates) > 0 && algErr != nil {
		mut, err := g.Apply(updates)
		if err != nil {
			fatal(err)
		}
		g = mut
	}

	// printAdaptive reports how an -eps query converged, after the
	// shape's own output.
	ao := usimrank.AdaptiveOptions{Eps: *eps, Delta: *delta}
	printAdaptive := func(res usimrank.AdaptiveResult) {
		d := *delta
		if d == 0 {
			d = usimrank.AdaptiveDefaultDelta
		}
		fmt.Printf("adaptive: eps=%g delta=%g radius=%.3g walks=%d rounds=%d converged=%v partial=%v\n",
			*eps, d, res.Radius, res.Walks, res.Rounds, res.Converged, res.Partial)
	}

	if *source >= 0 || *topK > 0 {
		a := engineAlg
		e := buildEngine()
		switch {
		case *source >= 0 && *topK > 0 && *eps > 0:
			res, info, err := usimrank.TopKSimilarAdaptiveCtx(context.Background(), e, a, *source, *topK, ao)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("top-%d most similar to %d  [%s, n=%d, c=%g]\n", *topK, *source, *alg, *n, *c)
			for rank, r := range res {
				fmt.Printf("%3d. v=%-8d s=%.8f\n", rank+1, r.V, r.Score)
			}
			printAdaptive(info)
		case *source >= 0 && *topK > 0:
			res, err := usimrank.TopKSimilar(e, a, *source, *topK)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("top-%d most similar to %d  [%s, n=%d, c=%g]\n", *topK, *source, *alg, *n, *c)
			for rank, r := range res {
				fmt.Printf("%3d. v=%-8d s=%.8f\n", rank+1, r.V, r.Score)
			}
		case *source >= 0 && *eps > 0:
			res, err := e.AdaptiveSingleSource(a, *source, ao)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("s(%d, ·)  [%s, n=%d, c=%g]\n", *source, *alg, *n, *c)
			for v, s := range res.Scores {
				fmt.Printf("%d %.8f\n", v, s)
			}
			printAdaptive(res)
		case *source >= 0:
			scores, err := e.SingleSource(a, *source)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("s(%d, ·)  [%s, n=%d, c=%g]\n", *source, *alg, *n, *c)
			for v, s := range scores {
				fmt.Printf("%d %.8f\n", v, s)
			}
		case *eps > 0: // -topk without -source: best pairs, adaptive
			res, info, err := usimrank.TopKPairsAdaptiveCtx(context.Background(), e, a, *topK, nil, ao)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("top-%d most similar pairs  [%s, n=%d, c=%g]\n", *topK, *alg, *n, *c)
			for rank, r := range res {
				fmt.Printf("%3d. (%d, %d)  s=%.8f\n", rank+1, r.U, r.V, r.Score)
			}
			printAdaptive(info)
		default: // -topk without -source: best pairs
			res, err := usimrank.TopKPairs(e, a, *topK)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("top-%d most similar pairs  [%s, n=%d, c=%g]\n", *topK, *alg, *n, *c)
			for rank, r := range res {
				fmt.Printf("%3d. (%d, %d)  s=%.8f\n", rank+1, r.U, r.V, r.Score)
			}
		}
		return
	}
	var s float64
	var adaptiveRes *usimrank.AdaptiveResult
	switch {
	case algErr == nil && *eps > 0:
		e := buildEngine()
		res, err := e.AdaptiveCompute(engineAlg, *u, *v, ao)
		if err != nil {
			fatal(err)
		}
		s, adaptiveRes = res.Score, &res
	case algErr == nil:
		e := buildEngine()
		s, err = e.Compute(engineAlg, *u, *v)
		if err != nil {
			fatal(err)
		}
	case *alg == "det":
		s = usimrank.DeterministicSimRank(g.Skeleton(), *u, *v, *c, *n)
	case *alg == "du":
		s = usimrank.DuSimRank(g, *u, *v, *c, *n)
	case *alg == "jaccard":
		s = usimrank.ExpectedJaccard(g, *u, *v)
	}
	fmt.Printf("s(%d,%d) = %.8f  [%s, n=%d, c=%g]\n", *u, *v, s, *alg, *n, *c)
	fmt.Printf("truncation bound (Thm 2): %.2g\n", usimrank.ErrorBound(*c, *n))
	if adaptiveRes != nil {
		printAdaptive(*adaptiveRes)
	}
}

// followSubscription opens a /v1/subscribe stream on a running usimd
// and prints every event: an "event=<name> id=<generation>" line, then
// the payload verbatim (the exact JSON body a cold query of the same
// shape would return). Keep-alive comments are skipped. Exits 0 when
// the server shuts the stream down cleanly, 1 on a terminal error.
func followSubscription(base, alg string, u, v, source, topK int, staleness time.Duration) {
	q := url.Values{}
	q.Set("alg", alg)
	switch {
	case source >= 0 && topK > 0:
		q.Set("shape", "topk")
		q.Set("u", strconv.Itoa(source))
		q.Set("k", strconv.Itoa(topK))
	case source >= 0:
		q.Set("shape", "source")
		q.Set("u", strconv.Itoa(source))
	case topK > 0:
		usage("-subscribe needs -source with -topk (the best-pairs shape is not subscribable)")
	default:
		q.Set("shape", "score")
		q.Set("u", strconv.Itoa(u))
		q.Set("v", strconv.Itoa(v))
	}
	if staleness > 0 {
		q.Set("staleness_ms", strconv.FormatInt(staleness.Milliseconds(), 10))
	}
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/v1/subscribe?" + q.Encode())
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("subscribe: %s\n%s", resp.Status, body))
	}
	br := bufio.NewReader(resp.Body)
	for {
		f, err := sub.ReadFrame(br)
		if err == io.EOF {
			return
		}
		if err != nil {
			fatal(fmt.Errorf("subscribe stream: %w", err))
		}
		if f.Comment() {
			continue
		}
		fmt.Printf("event=%s id=%d\n", f.Name(), f.ID())
		if d := f.Data(); d != nil {
			os.Stdout.Write(d)
		}
		switch f.Name() {
		case "shutdown":
			return
		case "gone", "error":
			os.Exit(1)
		}
	}
}

// parseUpdates parses the -update spec: "op:u,v[,p]" triples separated
// by ';', e.g. "reweight:3,17,0.9;delete:4,1". Syntax errors are
// reported with the failing triple.
func parseUpdates(spec string) ([]usimrank.ArcUpdate, error) {
	if spec == "" {
		return nil, nil
	}
	var ups []usimrank.ArcUpdate
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		opName, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("-update %q: want op:u,v[,p]", part)
		}
		op, err := usimrank.ParseUpdateOp(strings.TrimSpace(opName))
		if err != nil {
			return nil, fmt.Errorf("-update %q: %v", part, err)
		}
		fields := strings.Split(rest, ",")
		wantFields := 3
		if op == usimrank.OpDelete {
			wantFields = 2
		}
		if len(fields) != wantFields {
			return nil, fmt.Errorf("-update %q: %s takes %d comma-separated values", part, op, wantFields)
		}
		u, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("-update %q: bad vertex %q", part, fields[0])
		}
		v, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("-update %q: bad vertex %q", part, fields[1])
		}
		up := usimrank.ArcUpdate{Op: op, U: u, V: v}
		if op != usimrank.OpDelete {
			p, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("-update %q: bad probability %q", part, fields[2])
			}
			up.P = p
		}
		ups = append(ups, up)
	}
	if len(ups) == 0 {
		return nil, fmt.Errorf("-update %q: no updates", spec)
	}
	return ups, nil
}

// usage reports a bad invocation: the message, the flag summary, and
// exit code 2 (the flag package's own convention).
func usage(msg string) {
	fmt.Fprintln(os.Stderr, "usim:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usim:", err)
	os.Exit(1)
}

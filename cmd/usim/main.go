// Command usim computes SimRank similarities on an uncertain graph with
// any of the algorithms from the paper, in four query shapes:
//
//	usim -graph g.ug -u 3 -v 17 -alg srsp            # one pair
//	usim -graph g.ug -source 3 -alg srsp             # s(3, ·) for every vertex
//	usim -graph g.ug -source 3 -topk 10 -alg srsp    # 10 most similar to 3
//	usim -graph g.ug -topk 10 -alg baseline          # 10 most similar pairs
//
// Single-source and top-k queries run on the engine's one-pass
// single-source kernels, so the source's sampling work is done once for
// the whole query; scores are bit-identical to the pairwise shape.
//
// The graph file is the textual format ("ug <n> <m>" header and
// "<u> <v> <p>" lines) or the binary format when the file starts with
// the USGR magic.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"usimrank"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "uncertain graph file (text or binary)")
		u         = flag.Int("u", 0, "first vertex")
		v         = flag.Int("v", 1, "second vertex")
		alg       = flag.String("alg", "srsp", "algorithm: baseline | sampling | twophase | srsp | det | du | jaccard")
		c         = flag.Float64("c", 0.6, "decay factor in (0,1)")
		n         = flag.Int("n", 5, "SimRank iterations")
		samples   = flag.Int("N", 1000, "sampled walk pairs")
		l         = flag.Int("l", 1, "two-phase split")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "sampling worker goroutines (0 = all cores); results are identical for every value")
		source    = flag.Int("source", -1, "single-source mode: compute s(source, ·) instead of one pair")
		topK      = flag.Int("topk", 0, "top-k mode: report the k best candidates (with -source) or vertex pairs (without)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "usim: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	opt := usimrank.Options{C: *c, Steps: *n, N: *samples, L: *l, Seed: *seed, Parallelism: *workers}

	algorithms := map[string]usimrank.Algorithm{
		"baseline": usimrank.AlgBaseline,
		"sampling": usimrank.AlgSampling,
		"twophase": usimrank.AlgTwoPhase,
		"srsp":     usimrank.AlgSRSP,
	}
	if *source >= 0 || *topK > 0 {
		a, ok := algorithms[*alg]
		if !ok {
			fatal(fmt.Errorf("algorithm %q does not support -source/-topk (use baseline, sampling, twophase or srsp)", *alg))
		}
		e, err := usimrank.New(g, opt)
		if err != nil {
			fatal(err)
		}
		switch {
		case *source >= 0 && *topK > 0:
			res, err := usimrank.TopKSimilar(e, a, *source, *topK)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("top-%d most similar to %d  [%s, n=%d, c=%g]\n", *topK, *source, *alg, *n, *c)
			for rank, r := range res {
				fmt.Printf("%3d. v=%-8d s=%.8f\n", rank+1, r.V, r.Score)
			}
		case *source >= 0:
			scores, err := e.SingleSource(a, *source)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("s(%d, ·)  [%s, n=%d, c=%g]\n", *source, *alg, *n, *c)
			for v, s := range scores {
				fmt.Printf("%d %.8f\n", v, s)
			}
		default: // -topk without -source: best pairs
			res, err := usimrank.TopKPairs(e, a, *topK)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("top-%d most similar pairs  [%s, n=%d, c=%g]\n", *topK, *alg, *n, *c)
			for rank, r := range res {
				fmt.Printf("%3d. (%d, %d)  s=%.8f\n", rank+1, r.U, r.V, r.Score)
			}
		}
		return
	}
	var s float64
	switch *alg {
	case "baseline", "sampling", "twophase", "srsp":
		e, err := usimrank.New(g, opt)
		if err != nil {
			fatal(err)
		}
		s, err = e.Compute(algorithms[*alg], *u, *v)
		if err != nil {
			fatal(err)
		}
	case "det":
		s = usimrank.DeterministicSimRank(g.Skeleton(), *u, *v, *c, *n)
	case "du":
		s = usimrank.DuSimRank(g, *u, *v, *c, *n)
	case "jaccard":
		s = usimrank.ExpectedJaccard(g, *u, *v)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	fmt.Printf("s(%d,%d) = %.8f  [%s, n=%d, c=%g]\n", *u, *v, s, *alg, *n, *c)
	fmt.Printf("truncation bound (Thm 2): %.2g\n", usimrank.ErrorBound(*c, *n))
}

func loadGraph(path string) (*usimrank.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(4)
	if err == nil && string(magic) == "USGR" {
		return usimrank.ReadBinary(br)
	}
	return usimrank.ReadText(br)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usim:", err)
	os.Exit(1)
}

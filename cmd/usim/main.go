// Command usim computes the SimRank similarity between two vertices of
// an uncertain graph with any of the algorithms from the paper.
//
// Usage:
//
//	usim -graph g.ug -u 3 -v 17 -alg srsp -n 5 -c 0.6 -N 1000 -l 1
//
// The graph file is the textual format ("ug <n> <m>" header and
// "<u> <v> <p>" lines) or the binary format when the file starts with
// the USGR magic.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"usimrank"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "uncertain graph file (text or binary)")
		u         = flag.Int("u", 0, "first vertex")
		v         = flag.Int("v", 1, "second vertex")
		alg       = flag.String("alg", "srsp", "algorithm: baseline | sampling | twophase | srsp | det | du | jaccard")
		c         = flag.Float64("c", 0.6, "decay factor in (0,1)")
		n         = flag.Int("n", 5, "SimRank iterations")
		samples   = flag.Int("N", 1000, "sampled walk pairs")
		l         = flag.Int("l", 1, "two-phase split")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "sampling worker goroutines (0 = all cores); results are identical for every value")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "usim: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	opt := usimrank.Options{C: *c, Steps: *n, N: *samples, L: *l, Seed: *seed, Parallelism: *workers}

	algorithms := map[string]usimrank.Algorithm{
		"baseline": usimrank.AlgBaseline,
		"sampling": usimrank.AlgSampling,
		"twophase": usimrank.AlgTwoPhase,
		"srsp":     usimrank.AlgSRSP,
	}
	var s float64
	switch *alg {
	case "baseline", "sampling", "twophase", "srsp":
		e, err := usimrank.New(g, opt)
		if err != nil {
			fatal(err)
		}
		s, err = e.Compute(algorithms[*alg], *u, *v)
		if err != nil {
			fatal(err)
		}
	case "det":
		s = usimrank.DeterministicSimRank(g.Skeleton(), *u, *v, *c, *n)
	case "du":
		s = usimrank.DuSimRank(g, *u, *v, *c, *n)
	case "jaccard":
		s = usimrank.ExpectedJaccard(g, *u, *v)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	fmt.Printf("s(%d,%d) = %.8f  [%s, n=%d, c=%g]\n", *u, *v, s, *alg, *n, *c)
	fmt.Printf("truncation bound (Thm 2): %.2g\n", usimrank.ErrorBound(*c, *n))
}

func loadGraph(path string) (*usimrank.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(4)
	if err == nil && string(magic) == "USGR" {
		return usimrank.ReadBinary(br)
	}
	return usimrank.ReadText(br)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usim:", err)
	os.Exit(1)
}

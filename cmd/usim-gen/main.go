// Command usim-gen generates the synthetic uncertain graphs of the
// evaluation and writes them to disk.
//
// Usage:
//
//	usim-gen -kind rmat -scale 14 -edges 100000 -out g.ug
//	usim-gen -kind ppi -size 2708 -out ppi.ug
//	usim-gen -kind coauth -size 31163 -k 4 -out condmat.ug
//	usim-gen -kind catalog -name "Net*" -catscale small -out net.ug
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

func main() {
	var (
		kind     = flag.String("kind", "rmat", "generator: rmat | ppi | coauth | catalog")
		out      = flag.String("out", "", "output file (text format; .bin suffix selects binary)")
		seed     = flag.Uint64("seed", 1, "random seed")
		scale    = flag.Int("scale", 12, "rmat: log2 of the vertex count")
		edges    = flag.Int("edges", 0, "rmat: number of arcs (default 4×|V|)")
		size     = flag.Int("size", 1000, "ppi/coauth: vertex count")
		k        = flag.Int("k", 2, "coauth: collaborations per author; ppi: noise multiplier")
		pmin     = flag.Float64("pmin", 0.05, "rmat: lower bound of the uniform arc probabilities, in (0,1]")
		pmax     = flag.Float64("pmax", 1.0, "rmat: upper bound of the uniform arc probabilities, in (0,1]")
		name     = flag.String("name", "Net*", "catalog: dataset name")
		catscale = flag.String("catscale", "tiny", "catalog: tiny | small | paper")
	)
	flag.Parse()
	// Validate every flag up front: bad input exits 2 with a usage
	// message instead of surfacing as a generator panic (negative sizes,
	// NaN probabilities) or, worse, a silently degenerate dataset.
	if *out == "" {
		usage("-out is required")
	}
	if *scale < 0 || *scale > 30 {
		usage(fmt.Sprintf("-scale %d outside [0,30]", *scale))
	}
	if *edges < 0 {
		usage(fmt.Sprintf("-edges %d < 0", *edges))
	}
	if *size < 1 {
		usage(fmt.Sprintf("-size %d < 1 (a graph needs vertices)", *size))
	}
	if *k < 0 {
		usage(fmt.Sprintf("-k %d < 0", *k))
	}
	if math.IsNaN(*pmin) || math.IsNaN(*pmax) || !(*pmin > 0 && *pmin <= 1) || !(*pmax > 0 && *pmax <= 1) || *pmin > *pmax {
		usage(fmt.Sprintf("-pmin %v / -pmax %v: want 0 < pmin <= pmax <= 1", *pmin, *pmax))
	}

	var g *ugraph.Graph
	r := rng.New(*seed)
	switch *kind {
	case "rmat":
		m := *edges
		if m == 0 {
			m = 4 << uint(*scale)
		}
		sk := gen.RMAT(*scale, m, 0.45, 0.20, 0.20, r)
		g = gen.WithUniformProbs(sk, *pmin, *pmax, r)
	case "ppi":
		cfg := gen.DefaultPPIConfig(*size)
		cfg.NoiseEdges = *size * *k
		g = gen.PlantedPPI(cfg, r).Graph
	case "coauth":
		g = gen.CoAuthorship(*size, *k, r)
	case "catalog":
		sc, err := parseScale(*catscale)
		if err != nil {
			usage(err.Error())
		}
		d, err := gen.ByName(sc, *name)
		if err != nil {
			fatal(err)
		}
		g = d.Build(*seed)
	default:
		usage(fmt.Sprintf("unknown kind %q", *kind))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if len(*out) > 4 && (*out)[len(*out)-4:] == ".bin" {
		err = ugraph.WriteBinary(f, g)
	} else {
		err = ugraph.WriteText(f, g)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: |V|=%d |E|=%d avg-deg=%.2f mean-p=%.2f\n",
		*out, g.NumVertices(), g.NumArcs(), g.AverageOutDegree(), g.MeanProbability())
}

func parseScale(s string) (gen.Scale, error) {
	switch s {
	case "tiny":
		return gen.Tiny, nil
	case "small":
		return gen.Small, nil
	case "paper":
		return gen.Paper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usim-gen:", err)
	os.Exit(1)
}

// usage reports a bad invocation: the message, the flag summary, and
// exit code 2 (the flag package's own convention, matching cmd/usim).
func usage(msg string) {
	fmt.Fprintln(os.Stderr, "usim-gen:", msg)
	flag.Usage()
	os.Exit(2)
}

// Command usim-index builds, patches, and inspects the precomputed
// reverse-walk index that usimd serves sublinear single-source queries
// from (-index; see usimrank/internal/index for the format and the
// estimator it backs).
//
// Build an index for a graph (engine flags must match the usimd node
// that will load it — the loader rejects any mismatch):
//
//	usim-index -graph g.ug -out g.usix -N 1000 -seed 1
//
// -update applies a batch of arc mutations through the engine's
// incremental update plane first and writes the successor generation's
// index, patched the same way a serving node patches its resident
// index after /v1/admin/update:
//
//	usim-index -graph g.ug -out g2.usix -update "delete:4,1;insert:0,9,0.5"
//
// Inspect a previously built file's header without loading the engine:
//
//	usim-index -inspect g.usix
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"usimrank"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "uncertain graph file to index (text or binary)")
		out       = flag.String("out", "", "output index file path")
		inspect   = flag.String("inspect", "", "print an existing index file's metadata and exit")
		c         = flag.Float64("c", 0.6, "decay factor in (0,1)")
		n         = flag.Int("n", 5, "SimRank iterations")
		samples   = flag.Int("N", 1000, "sampled walk pairs")
		l         = flag.Int("l", 1, "two-phase split")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "build worker goroutines (0 = all cores); output is identical for every value")
		update    = flag.String("update", "", `arc mutations applied before indexing: "op:u,v[,p]" triples separated by ';' (op: insert | delete | reweight); the written index is the patched successor generation`)
	)
	flag.Parse()

	if *inspect != "" {
		if *graphPath != "" || *out != "" || *update != "" {
			usage("-inspect takes no build flags")
		}
		x, err := usimrank.LoadIndexFile(*inspect)
		if err != nil {
			fatal(err)
		}
		defer x.Close()
		fmt.Printf("%s\n", *inspect)
		fmt.Printf("  generation  %d\n", x.Generation())
		fmt.Printf("  vertices    %d\n", x.NumVertices())
		fmt.Printf("  depth       %d\n", x.Depth())
		fmt.Printf("  samples     %d\n", x.Samples())
		fmt.Printf("  seed        %d\n", x.Seed())
		return
	}

	if *graphPath == "" {
		usage("-graph is required (or -inspect to read an existing file)")
	}
	if *out == "" {
		usage("-out is required")
	}
	if !(*c > 0 && *c < 1) {
		usage(fmt.Sprintf("-c %v outside (0,1)", *c))
	}
	if *n < 1 {
		usage(fmt.Sprintf("-n %d < 1", *n))
	}
	if *samples < 1 {
		usage(fmt.Sprintf("-N %d < 1", *samples))
	}
	if *l < 1 || *l > *n {
		usage(fmt.Sprintf("-l %d outside [1,%d]", *l, *n))
	}
	updates, err := parseUpdates(*update)
	if err != nil {
		usage(err.Error())
	}

	g, err := usimrank.LoadGraphFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	opt := usimrank.Options{C: *c, Steps: *n, N: *samples, L: *l, Seed: *seed, Parallelism: *workers}
	e, err := usimrank.New(g, opt)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	x, err := usimrank.BuildIndex(e)
	if err != nil {
		fatal(err)
	}
	if len(updates) > 0 {
		// Mirror the serving plane: derive the successor engine through
		// the incremental update plane, then patch only the rows whose
		// reverse walks the mutations can reach — the written file is
		// bit-identical to a fresh build on the mutated graph.
		derived, stats, err := e.ApplyUpdates(updates)
		if err != nil {
			fatal(err)
		}
		patched, rows, err := usimrank.PatchIndex(x, derived, g, updates)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("applied %d update(s): generation %d, index rows patched for %d vertices\n",
			stats.Applied, stats.Generation, rows)
		x = patched
	}
	if err := x.Write(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: generation %d, %d vertices x %d steps, N=%d, seed=%d (%s)\n",
		*out, x.Generation(), x.NumVertices(), x.Depth()+1, x.Samples(), x.Seed(),
		time.Since(start).Round(time.Millisecond))
}

// parseUpdates parses the -update spec exactly as cmd/usim does:
// "op:u,v[,p]" triples separated by ';'.
func parseUpdates(spec string) ([]usimrank.ArcUpdate, error) {
	if spec == "" {
		return nil, nil
	}
	var ups []usimrank.ArcUpdate
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		opName, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("-update %q: want op:u,v[,p]", part)
		}
		op, err := usimrank.ParseUpdateOp(strings.TrimSpace(opName))
		if err != nil {
			return nil, fmt.Errorf("-update %q: %v", part, err)
		}
		fields := strings.Split(rest, ",")
		wantFields := 3
		if op == usimrank.OpDelete {
			wantFields = 2
		}
		if len(fields) != wantFields {
			return nil, fmt.Errorf("-update %q: %s takes %d comma-separated values", part, op, wantFields)
		}
		u, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("-update %q: bad vertex %q", part, fields[0])
		}
		v, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("-update %q: bad vertex %q", part, fields[1])
		}
		up := usimrank.ArcUpdate{Op: op, U: u, V: v}
		if op != usimrank.OpDelete {
			p, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("-update %q: bad probability %q", part, fields[2])
			}
			up.P = p
		}
		ups = append(ups, up)
	}
	if len(ups) == 0 {
		return nil, fmt.Errorf("-update %q: no updates", spec)
	}
	return ups, nil
}

func usage(msg string) {
	fmt.Fprintln(os.Stderr, "usim-index:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usim-index:", err)
	os.Exit(1)
}

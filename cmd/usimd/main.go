// Command usimd serves SimRank queries on an uncertain graph over an
// HTTP JSON API — either from one resident engine (node mode), or as a
// cluster coordinator scatter-gathering a fleet of such nodes
// (coordinator mode).
//
// Node mode holds the whole graph so warm state (the LRU row cache,
// SR-SP filter pools, per-source kernels) amortises across queries:
//
//	usimd -graph g.ug -addr :8471
//
// Coordinator mode holds no graph: it routes each query to the shard
// owning its source vertex (stable hash), scatter-gathers fan-out
// shapes, and merges deterministically — the cluster's answers are
// bit-identical to a single node serving the same graph:
//
//	usimd -cluster shard0=http://a:8471,shard1=http://b:8471 \
//	      -replicas shard0=http://a2:8471 -addr :8470
//
// Endpoints (see packages usimrank/internal/server and
// usimrank/internal/cluster for the JSON schemas):
//
//	POST /v1/score         one pairwise similarity
//	POST /v1/source        the single-source vector s(u, ·)
//	POST /v1/topk          top-k similar vertices, or pairs
//	POST /v1/batch         many pairs, grouped by source
//	GET  /v1/subscribe     standing query over SSE: snapshot, then a push per affecting update
//	GET  /v1/stats         metrics snapshot
//	POST /v1/admin/reload  zero-downtime graph hot-swap
//	POST /v1/admin/update  incremental arc mutations (insert/delete/reweight)
//	GET  /healthz          liveness
//
// Both modes coalesce concurrent identical queries, bound in-flight
// work (-max-inflight, 429 beyond it), and enforce per-request
// deadlines (-timeout, 504 past it). The coordinator additionally
// hedges slow shards to replicas (-hedge-delay), bounds each
// downstream attempt (-shard-timeout), and fans admin mutations out
// transactionally (all shards at the same generation, or a structured
// generation-skew error).
//
// For in-situ profiling, -pprof-addr serves net/http/pprof on a
// separate listener. Bind it to loopback or a management network only;
// it must never be public (profiles leak memory contents and cost CPU).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only via -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"usimrank"
	"usimrank/internal/cluster"
	"usimrank/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "uncertain graph file (node mode; text or binary)")
		addr      = flag.String("addr", ":8471", "listen address")
		c         = flag.Float64("c", 0.6, "decay factor in (0,1)")
		n         = flag.Int("n", 5, "SimRank iterations")
		samples   = flag.Int("N", 1000, "sampled walk pairs")
		l         = flag.Int("l", 1, "two-phase split")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "engine worker goroutines (0 = all cores)")
		rowCache  = flag.Int("rowcache", 0, "row cache capacity (0 = engine default)")
		warm      = flag.Bool("warm", false, "build the SR-SP filter pools before serving")
		indexPath = flag.String("index", "", "reverse-walk index file for this graph (node mode; built with usim-index), enables alg=indexed")

		clusterFlag = flag.String("cluster", "", "coordinator mode: comma-separated shard<i>=<base-url> primaries")
		replicas    = flag.String("replicas", "", "coordinator mode: shard<i>=<base-url> replica endpoints (repeatable keys)")
		shardTO     = flag.Duration("shard-timeout", 25*time.Second, "coordinator: per-shard endpoint attempt deadline")
		hedgeDelay  = flag.Duration("hedge-delay", 500*time.Millisecond, "coordinator: silence before hedging to a replica")

		maxInFlight    = flag.Int("max-inflight", 0, "admitted concurrent queries (0 = 4x workers, min 32; coordinator default 256)")
		maxUpdateBatch = flag.Int("max-update-batch", 0, "max arc mutations per /v1/admin/update request (0 = 4096, negative disables updates)")
		timeout        = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		admitWait      = flag.Duration("admission-wait", 100*time.Millisecond, "max wait for an in-flight slot before 429 (negative: reject immediately)")
		admitReserve   = flag.Int("admission-reserve", 0, "in-flight slots reserved for adaptive (eps-bearing) queries when the general pool is saturated (0 disables)")
		drain          = flag.Duration("drain-timeout", 15*time.Second, "max wait for old-engine requests after a hot-swap")
		subStaleness   = flag.Duration("sub-max-staleness", 30*time.Second, "cap on the staleness SLA a /v1/subscribe client may request")
		subHeartbeat   = flag.Duration("sub-heartbeat", 15*time.Second, "keep-alive comment period on idle subscription streams")
		logEvery       = flag.Duration("log-every", time.Minute, "period of the metrics log line (0 disables)")
		slowQueryMs    = flag.Int("slow-query-ms", 0, "log a structured slow-query line (with trace id and span timings) for queries at or above this many milliseconds (0 disables)")
		logJSON        = flag.Bool("log-json", false, "emit slow-query lines as single-line JSON instead of key=value text")
		pprofAddr      = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (e.g. localhost:6060); NEVER expose publicly — profiles leak memory contents and cost CPU")
	)
	flag.Parse()
	if (*graphPath == "") == (*clusterFlag == "") {
		fmt.Fprintln(os.Stderr, "usimd: exactly one of -graph (node mode) or -cluster (coordinator mode) is required")
		flag.Usage()
		os.Exit(2)
	}
	// A flag the active mode ignores means the operator configured
	// behaviour they are not getting (a -seed that never applies, a
	// -replicas that never fails over); refuse instead of serving a
	// silent misconfiguration.
	rejectForeignFlags(*clusterFlag != "")

	// Profiling is mode-neutral (kernel work is profiled on nodes, merge
	// and hedging overhead on coordinators) and strictly opt-in. It gets
	// its own listener so the serving address never exposes pprof: bind
	// it to loopback or a management network, never a public interface.
	// Listen synchronously so a bad address fails startup instead of
	// logging after the operator walked away.
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "usimd: pprof listener: %v\n", err)
			os.Exit(2)
		}
		log.Printf("usimd: serving pprof on http://%s/debug/pprof/ (keep this listener private)", ln.Addr())
		go func() {
			// The blank net/http/pprof import registers its handlers on
			// http.DefaultServeMux; nothing else in usimd uses that mux.
			if err := http.Serve(ln, nil); err != nil {
				log.Printf("usimd: pprof listener stopped: %v", err)
			}
		}()
	}

	if *clusterFlag != "" {
		logger := log.New(os.Stderr, "usimd-coord ", log.LstdFlags)
		shards, err := cluster.ParseTopology(*clusterFlag, *replicas)
		if err != nil {
			fmt.Fprintf(os.Stderr, "usimd: %v\n", err)
			flag.Usage()
			os.Exit(2)
		}
		co, err := cluster.New(cluster.Config{
			Shards:           shards,
			ShardTimeout:     *shardTO,
			HedgeDelay:       *hedgeDelay,
			QueryTimeout:     *timeout,
			MaxInFlight:      *maxInFlight,
			AdmissionWait:    *admitWait,
			AdmissionReserve: *admitReserve,
			LogEvery:         *logEvery,
			Logger:           logger,
			SlowQuery:        time.Duration(*slowQueryMs) * time.Millisecond,
			LogJSON:          *logJSON,
		})
		if err != nil {
			logger.Fatalf("build coordinator: %v", err)
		}
		endpoints := 0
		for _, eps := range shards {
			endpoints += len(eps)
		}
		logger.Printf("coordinating %d shards (%d endpoints) at generation %d on %s",
			len(shards), endpoints, co.Generation(), *addr)
		serve(*addr, co.Handler(), co.DrainSubscriptions, co.Close, logger)
		return
	}

	// The engine treats a zero L as "unset" (defaulting it to 1), so an
	// explicit -l 0 would silently serve a different split than asked.
	if *l < 1 || *l > *n {
		fmt.Fprintf(os.Stderr, "usimd: -l %d outside [1,%d]\n", *l, *n)
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "usimd ", log.LstdFlags)
	g, err := usimrank.LoadGraphFile(*graphPath)
	if err != nil {
		logger.Fatalf("load graph: %v", err)
	}
	var idx *usimrank.Index
	if *indexPath != "" {
		idx, err = usimrank.LoadIndexFile(*indexPath)
		if err != nil {
			logger.Fatalf("load index: %v", err)
		}
		logger.Printf("loaded index %s: generation %d, %d vertices, N=%d",
			*indexPath, idx.Generation(), idx.NumVertices(), idx.Samples())
	}
	cfg := server.Config{
		Engine: usimrank.Options{
			C: *c, Steps: *n, N: *samples, L: *l, Seed: *seed,
			Parallelism: *workers, RowCacheSize: *rowCache,
		},
		Index:            idx,
		MaxInFlight:      *maxInFlight,
		MaxUpdateBatch:   *maxUpdateBatch,
		QueryTimeout:     *timeout,
		AdmissionWait:    *admitWait,
		AdmissionReserve: *admitReserve,
		DrainTimeout:     *drain,
		SubMaxStaleness:  *subStaleness,
		SubHeartbeat:     *subHeartbeat,
		LogEvery:         *logEvery,
		Logger:           logger,
		SlowQuery:        time.Duration(*slowQueryMs) * time.Millisecond,
		LogJSON:          *logJSON,
	}
	srv, err := server.New(g, *graphPath, cfg)
	if err != nil {
		logger.Fatalf("build server: %v", err)
	}
	if *warm {
		warmStart := time.Now()
		srv.WarmFilters()
		logger.Printf("warmed SR-SP filter pools in %s", time.Since(warmStart).Round(time.Millisecond))
	}
	logger.Printf("serving %s (%d vertices, %d arcs) on %s", *graphPath, g.NumVertices(), g.NumArcs(), *addr)
	serve(*addr, srv.Handler(), srv.DrainSubscriptions, srv.Close, logger)
}

// rejectForeignFlags exits 2 when a flag belonging to the inactive
// mode was explicitly set. Node-mode engine options (-seed, -c, …)
// belong on the shard nodes, not the coordinator; coordinator fan-out
// knobs (-replicas, …) mean nothing to a single node.
func rejectForeignFlags(coordinator bool) {
	nodeOnly := map[string]bool{
		"c": true, "n": true, "N": true, "l": true, "seed": true,
		"workers": true, "rowcache": true, "warm": true, "index": true,
		"max-update-batch": true, "drain-timeout": true,
		"sub-max-staleness": true, "sub-heartbeat": true,
	}
	coordOnly := map[string]bool{
		"replicas": true, "shard-timeout": true, "hedge-delay": true,
	}
	flag.Visit(func(f *flag.Flag) {
		var msg string
		switch {
		case coordinator && nodeOnly[f.Name]:
			msg = fmt.Sprintf("usimd: -%s is a node-mode flag; in coordinator mode set engine options on the shard nodes", f.Name)
		case !coordinator && coordOnly[f.Name]:
			msg = fmt.Sprintf("usimd: -%s is a coordinator-mode flag and does nothing on a node; start a coordinator with -cluster to use it", f.Name)
		default:
			return
		}
		fmt.Fprintln(os.Stderr, msg)
		flag.Usage()
		os.Exit(2)
	})
}

// serve runs the HTTP listener with graceful SIGINT/SIGTERM drain —
// shared by both modes. The listener comes from server.NewHTTPServer,
// which sets the slowloris/idle-connection timeouts but no blanket
// write deadline (a WriteTimeout would kill every subscription stream).
func serve(addr string, handler http.Handler, drainFn func() bool, closeFn func(), logger *log.Logger) {
	httpSrv := server.NewHTTPServer(addr, handler)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("received %v, draining", sig)
		// Subscription streams first: http.Server.Shutdown waits for
		// active connections, and an SSE stream never goes idle on its
		// own — each must receive its terminal shutdown event and close
		// before Shutdown can complete.
		if !drainFn() {
			logger.Printf("shutdown: subscription streams did not drain in time")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		closeFn()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	}
}

// Command usimd serves SimRank queries on an uncertain graph over an
// HTTP JSON API from one resident engine, so warm state (the LRU row
// cache, SR-SP filter pools, per-source kernels) amortises across
// queries instead of being rebuilt per process.
//
//	usimd -graph g.ug -addr :8471
//
// Endpoints (see package usimrank/internal/server for the JSON
// schemas):
//
//	POST /v1/score         one pairwise similarity
//	POST /v1/source        the single-source vector s(u, ·)
//	POST /v1/topk          top-k similar vertices, or pairs
//	POST /v1/batch         many pairs, grouped by source
//	GET  /v1/stats         metrics snapshot
//	POST /v1/admin/reload  zero-downtime graph hot-swap
//	POST /v1/admin/update  incremental arc mutations (insert/delete/reweight)
//	GET  /healthz          liveness
//
// The server coalesces concurrent identical queries, bounds in-flight
// work (-max-inflight, 429 beyond it), enforces per-request deadlines
// (-timeout, 504 past it), and hot-swaps the graph under live traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"usimrank"
	"usimrank/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "uncertain graph file (text or binary, required)")
		addr      = flag.String("addr", ":8471", "listen address")
		c         = flag.Float64("c", 0.6, "decay factor in (0,1)")
		n         = flag.Int("n", 5, "SimRank iterations")
		samples   = flag.Int("N", 1000, "sampled walk pairs")
		l         = flag.Int("l", 1, "two-phase split")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "engine worker goroutines (0 = all cores)")
		rowCache  = flag.Int("rowcache", 0, "row cache capacity (0 = engine default)")
		warm      = flag.Bool("warm", false, "build the SR-SP filter pools before serving")

		maxInFlight    = flag.Int("max-inflight", 0, "admitted concurrent queries (0 = 4x workers, min 32)")
		maxUpdateBatch = flag.Int("max-update-batch", 0, "max arc mutations per /v1/admin/update request (0 = 4096, negative disables updates)")
		timeout        = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		admitWait      = flag.Duration("admission-wait", 100*time.Millisecond, "max wait for an in-flight slot before 429 (negative: reject immediately)")
		drain          = flag.Duration("drain-timeout", 15*time.Second, "max wait for old-engine requests after a hot-swap")
		logEvery       = flag.Duration("log-every", time.Minute, "period of the metrics log line (0 disables)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "usimd: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	// The engine treats a zero L as "unset" (defaulting it to 1), so an
	// explicit -l 0 would silently serve a different split than asked.
	if *l < 1 || *l > *n {
		fmt.Fprintf(os.Stderr, "usimd: -l %d outside [1,%d]\n", *l, *n)
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "usimd ", log.LstdFlags)
	g, err := usimrank.LoadGraphFile(*graphPath)
	if err != nil {
		logger.Fatalf("load graph: %v", err)
	}
	cfg := server.Config{
		Engine: usimrank.Options{
			C: *c, Steps: *n, N: *samples, L: *l, Seed: *seed,
			Parallelism: *workers, RowCacheSize: *rowCache,
		},
		MaxInFlight:    *maxInFlight,
		MaxUpdateBatch: *maxUpdateBatch,
		QueryTimeout:   *timeout,
		AdmissionWait:  *admitWait,
		DrainTimeout:   *drain,
		LogEvery:       *logEvery,
		Logger:         logger,
	}
	srv, err := server.New(g, *graphPath, cfg)
	if err != nil {
		logger.Fatalf("build server: %v", err)
	}
	if *warm {
		warmStart := time.Now()
		srv.WarmFilters()
		logger.Printf("warmed SR-SP filter pools in %s", time.Since(warmStart).Round(time.Millisecond))
	}
	logger.Printf("serving %s (%d vertices, %d arcs) on %s", *graphPath, g.NumVertices(), g.NumArcs(), *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		srv.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	}
}

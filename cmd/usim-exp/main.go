// Command usim-exp runs the experiments that regenerate the paper's
// tables and figures.
//
// Usage:
//
//	usim-exp -run all -scale tiny
//	usim-exp -run fig9 -scale small -seed 7
//
// Experiment ids: table1, table2, fig7 (includes Table III), fig8, fig9,
// fig10, fig11, fig12, fig13 (includes Fig. 14), fig15, table5 (includes
// Table IV), ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"usimrank/internal/exp"
	"usimrank/internal/gen"
)

var runners = []struct {
	id  string
	run func(exp.Config) error
}{
	{"table1", wrap(exp.Table1WalkPr)},
	{"table2", wrap(exp.Table2Datasets)},
	{"fig7", wrap(exp.Fig7Table3Bias)},
	{"fig8", wrap(exp.Fig8Convergence)},
	{"fig9", wrap(exp.Fig9Efficiency)},
	{"fig10", wrap(exp.Fig10Accuracy)},
	{"fig11", wrap(exp.Fig11NSweep)},
	{"fig12", wrap(exp.Fig12Scalability)},
	{"fig13", wrap(exp.Fig13Proteins)},
	{"fig15", wrap(exp.Fig15ERTime)},
	{"table5", wrap(exp.Table5ERQuality)},
	{"ablations", runAblations},
}

func wrap[T any](f func(exp.Config) (T, error)) func(exp.Config) error {
	return func(cfg exp.Config) error {
		_, err := f(cfg)
		return err
	}
}

func runAblations(cfg exp.Config) error {
	for _, f := range []func(exp.Config) (*exp.AblationResult, error){
		exp.AblationSharedFilters,
		exp.AblationChoicePolicy,
		exp.AblationStateMerge,
		exp.AblationGirth,
		exp.AblationLSweep,
		exp.AblationDiskTransPr,
	} {
		if _, err := f(cfg); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	var (
		run     = flag.String("run", "all", "experiment id (or 'all')")
		scale   = flag.String("scale", "tiny", "tiny | small | paper")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "engine worker goroutines (0 = all cores); results are identical for every value")
	)
	flag.Parse()

	var sc gen.Scale
	switch *scale {
	case "tiny":
		sc = gen.Tiny
	case "small":
		sc = gen.Small
	case "paper":
		sc = gen.Paper
	default:
		fmt.Fprintf(os.Stderr, "usim-exp: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg := exp.Config{Scale: sc, Seed: *seed, Out: os.Stdout, Parallelism: *workers}

	found := false
	for _, r := range runners {
		if *run != "all" && r.id != *run {
			continue
		}
		found = true
		fmt.Printf("=== %s (scale %s, seed %d) ===\n", r.id, sc, *seed)
		if err := r.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "usim-exp: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !found {
		fmt.Fprintf(os.Stderr, "usim-exp: unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

package usimrank_test

import (
	"fmt"
	"log"

	"usimrank"
)

// ExampleNew demonstrates the quickstart flow: build an uncertain graph,
// create an engine, and compute one exact similarity.
func ExampleNew() {
	b := usimrank.NewBuilder(4)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 3, 0.8)
	g := b.MustBuild()

	e, err := usimrank.New(g, usimrank.Options{C: 0.6, Steps: 5})
	if err != nil {
		log.Fatal(err)
	}
	s, err := e.Baseline(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s(0,2) = %.4f\n", s)
	// Output: s(0,2) = 0.1611
}

// ExampleBatch computes many pairs concurrently with deterministic
// results.
func ExampleBatch() {
	b := usimrank.NewBuilder(4)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 3, 0.8)
	g := b.MustBuild()

	e, err := usimrank.New(g, usimrank.Options{C: 0.6, Steps: 5})
	if err != nil {
		log.Fatal(err)
	}
	pairs := [][2]int{{0, 2}, {1, 3}}
	for _, r := range usimrank.Batch(e, usimrank.AlgBaseline, pairs, 2) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("s(%d,%d) = %.4f\n", r.U, r.V, r.Value)
	}
	// Output:
	// s(0,2) = 0.1611
	// s(1,3) = 0.1403
}

// ExampleErrorBound shows the Theorem 2 truncation guarantee.
func ExampleErrorBound() {
	fmt.Printf("%.5f\n", usimrank.ErrorBound(0.6, 5))
	// Output: 0.04666
}

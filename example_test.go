package usimrank_test

import (
	"fmt"
	"log"

	"usimrank"
)

// ExampleNew demonstrates the quickstart flow: build an uncertain graph,
// create an engine, and compute one exact similarity.
func ExampleNew() {
	b := usimrank.NewBuilder(4)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 3, 0.8)
	g := b.MustBuild()

	e, err := usimrank.New(g, usimrank.Options{C: 0.6, Steps: 5})
	if err != nil {
		log.Fatal(err)
	}
	s, err := e.Baseline(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s(0,2) = %.4f\n", s)
	// Output: s(0,2) = 0.1611
}

// ExampleBatch computes many pairs concurrently with deterministic
// results.
func ExampleBatch() {
	b := usimrank.NewBuilder(4)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 3, 0.8)
	g := b.MustBuild()

	e, err := usimrank.New(g, usimrank.Options{C: 0.6, Steps: 5})
	if err != nil {
		log.Fatal(err)
	}
	pairs := [][2]int{{0, 2}, {1, 3}}
	for _, r := range usimrank.Batch(e, usimrank.AlgBaseline, pairs, 2) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("s(%d,%d) = %.4f\n", r.U, r.V, r.Value)
	}
	// Output:
	// s(0,2) = 0.1611
	// s(1,3) = 0.1403
}

// ExampleEngine_SingleSource computes s(u, ·) for every vertex in one
// pass: u's side of the computation is done once and replayed against
// every candidate, with scores bit-identical to the pairwise API.
func ExampleEngine_SingleSource() {
	b := usimrank.NewBuilder(4)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 3, 0.8)
	g := b.MustBuild()

	e, err := usimrank.New(g, usimrank.Options{C: 0.6, Steps: 5})
	if err != nil {
		log.Fatal(err)
	}
	scores, err := e.SingleSource(usimrank.AlgBaseline, 0)
	if err != nil {
		log.Fatal(err)
	}
	pair, err := e.Baseline(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s(0,2) = %.4f\n", scores[2])
	fmt.Println("matches pairwise:", scores[2] == pair)
	// Output:
	// s(0,2) = 0.1611
	// matches pairwise: true
}

// ExampleTopKSimilar runs the paper's Fig. 14 query shape — the k
// vertices most similar to a source — under a chosen algorithm. The
// exact Baseline prunes with the geometric tail bound; the approximate
// strategies sweep the single-source kernel, so top-k scales past the
// graphs the exact method can handle.
func ExampleTopKSimilar() {
	b := usimrank.NewBuilder(4)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 3, 0.8)
	g := b.MustBuild()

	e, err := usimrank.New(g, usimrank.Options{C: 0.6, Steps: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := usimrank.TopKSimilar(e, usimrank.AlgBaseline, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	for rank, r := range exact {
		fmt.Printf("%d. v%d %.4f\n", rank+1, r.V, r.Score)
	}
	// The same query under the scalable SR-SP strategy:
	approx, err := usimrank.TopKSimilar(e, usimrank.AlgSRSP, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SR-SP results:", len(approx))
	// Output:
	// 1. v2 0.1611
	// 2. v1 0.0000
	// SR-SP results: 2
}

// ExampleErrorBound shows the Theorem 2 truncation guarantee.
func ExampleErrorBound() {
	fmt.Printf("%.5f\n", usimrank.ErrorBound(0.6, 5))
	// Output: 0.04666
}

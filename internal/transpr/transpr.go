// Package transpr implements the TransPr algorithm (Fig. 3 of the
// paper): the disk-based computation of all k-step transition probability
// matrices W(1), …, W(K) of an uncertain graph. Walks are materialised as
// (walk, p, α) tuples in walk-probability files, extended level by level
// with the Lemma 2 ratio (or the Lemma 3 shortcut below the girth),
// sorted externally by (start, end), and folded into per-source
// distribution vectors persisted column-by-column in a diskstore.
//
// The walk population grows with the k-th power of the average degree —
// this is inherent to the exact method and is the reason the paper's
// Baseline loses to sampling on large graphs. MaxWalks turns a runaway
// computation into a clean error. For in-memory single-source exact rows
// use walkpr.TransitionRows, which additionally merges equivalent walk
// states; this package is the faithful external-memory variant and the
// substrate of the I/O-cost experiments.
package transpr

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"usimrank/internal/diskstore"
	"usimrank/internal/matrix"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

// Options configures Run.
type Options struct {
	// BlockSize for the column store (diskstore.DefaultBlockSize if 0).
	BlockSize int
	// SortMemory caps in-memory tuples per external-sort run (1<<20 if 0).
	SortMemory int
	// MaxWalks caps tuples per level (default 8M).
	MaxWalks int64
}

func (o Options) maxWalks() int64 {
	if o.MaxWalks <= 0 {
		return 8 << 20
	}
	return o.MaxWalks
}

// ErrWalkExplosion is returned when a level exceeds MaxWalks tuples.
var ErrWalkExplosion = errors.New("transpr: walk file exceeds MaxWalks, graph too dense for the exact method")

// Result gives access to the computed matrices and per-level statistics.
type Result struct {
	// Store holds W(1)..W(K); column u of matrix k is the distribution
	// Pr(u →k ·).
	Store *diskstore.ColumnStore
	// WalksPerLevel[k] is the number of walk tuples of length k (index 0
	// unused).
	WalksPerLevel []int64
	// Girth is the bounded skeleton girth used for the Lemma 3 fast path.
	Girth int
}

// Run executes TransPr on g for K ≥ 1 steps, writing walk files and
// matrices under dir.
func Run(g *ugraph.Graph, K int, dir string, opt Options) (*Result, error) {
	if K < 1 {
		return nil, fmt.Errorf("transpr: K=%d < 1", K)
	}
	store, err := diskstore.NewColumnStore(dir, opt.BlockSize)
	if err != nil {
		return nil, err
	}
	res := &Result{Store: store, WalksPerLevel: make([]int64, K+1)}

	// Line 2 of Fig. 3: the girth bound for the Lemma 3 fast path.
	res.Girth = g.Skeleton().Girth(K)

	// Level 1: one tuple per arc; the walk probability of W = u,v is
	// α_W(u), and the stored α is α_W(v) = 1 unless the arc is a
	// self-loop (then the last vertex is also the transition source).
	walkPath := func(k int) string { return filepath.Join(dir, fmt.Sprintf("walks%03d", k)) }
	w1, err := diskstore.NewWalkWriter(walkPath(1))
	if err != nil {
		return nil, err
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Out(u) {
			walk := []int32{int32(u), v}
			p := walkpr.WalkPr(g, walk)
			alpha := alphaOfLast(g, walk)
			if err := w1.Append(diskstore.WalkTuple{Walk: walk, P: p, Alpha: alpha}); err != nil {
				w1.Close()
				return nil, err
			}
		}
	}
	res.WalksPerLevel[1] = w1.Count()
	if err := w1.Close(); err != nil {
		return nil, err
	}
	if err := writeMatrixFromWalks(store, g.NumVertices(), 1, walkPath(1), opt); err != nil {
		return nil, err
	}

	// Main loop (Fig. 3 lines 3–18): extend level k to level k+1.
	for k := 1; k < K; k++ {
		r, err := diskstore.NewWalkReader(walkPath(k))
		if err != nil {
			return nil, err
		}
		w, err := diskstore.NewWalkWriter(walkPath(k + 1))
		if err != nil {
			r.Close()
			return nil, err
		}
		maxWalks := opt.maxWalks()
		for {
			t, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				r.Close()
				w.Close()
				return nil, err
			}
			last := t.End()
			for _, x := range g.Out(int(last)) {
				ext := append(append(make([]int32, 0, len(t.Walk)+1), t.Walk...), x)
				var p, alpha float64
				if k < res.Girth {
					// Lemma 3: no vertex repeats below the girth, so the
					// extension ratio is the expected one-step probability
					// and the new last vertex is fresh (α' = 1).
					p = t.P * expectedStep(g, last, x)
					alpha = 1
				} else {
					aOldOw, aOldC := usage(t.Walk, last)
					aNewOw, aNewC := usage(ext, last)
					aOld := alphaFor(g, last, aOldOw, aOldC)
					aNew := alphaFor(g, last, aNewOw, aNewC)
					p = t.P * aNew / aOld
					alpha = alphaOfLast(g, ext)
				}
				if err := w.Append(diskstore.WalkTuple{Walk: ext, P: p, Alpha: alpha}); err != nil {
					r.Close()
					w.Close()
					return nil, err
				}
				if w.Count() > maxWalks {
					r.Close()
					w.Close()
					return nil, fmt.Errorf("%w: level %d", ErrWalkExplosion, k+1)
				}
			}
		}
		r.Close()
		res.WalksPerLevel[k+1] = w.Count()
		if err := w.Close(); err != nil {
			return nil, err
		}
		if err := writeMatrixFromWalks(store, g.NumVertices(), k+1, walkPath(k+1), opt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// usage scans a walk and returns O_W(x) (sorted distinct out-neighbours
// used from x) and c_W(x) (transitions leaving x).
func usage(walk []int32, x int32) ([]int32, int) {
	var ow []int32
	c := 0
	for i := 0; i+1 < len(walk); i++ {
		if walk[i] != x {
			continue
		}
		c++
		nxt := walk[i+1]
		pos := sort.Search(len(ow), func(j int) bool { return ow[j] >= nxt })
		if pos == len(ow) || ow[pos] != nxt {
			ow = append(ow, 0)
			copy(ow[pos+1:], ow[pos:])
			ow[pos] = nxt
		}
	}
	return ow, c
}

func alphaFor(g *ugraph.Graph, v int32, ow []int32, c int) float64 {
	if c == 0 && len(ow) == 0 {
		return 1
	}
	return walkpr.Alpha(g, v, ow, c)
}

// alphaOfLast returns α_W(last(W)) computed from the full walk.
func alphaOfLast(g *ugraph.Graph, walk []int32) float64 {
	last := walk[len(walk)-1]
	ow, c := usage(walk, last)
	return alphaFor(g, last, ow, c)
}

// expectedStep returns Pr(u →1 v), memoisable but cheap enough to
// recompute: α for the single-step walk.
func expectedStep(g *ugraph.Graph, u, v int32) float64 {
	return walkpr.Alpha(g, u, []int32{v}, 1)
}

// writeMatrixFromWalks sorts the level-k walk file by (start, end), sums
// walk probabilities per group (Fig. 3 lines 15–18) and persists the
// resulting per-source vectors.
func writeMatrixFromWalks(store *diskstore.ColumnStore, n, k int, path string, opt Options) error {
	sorted := path + ".sorted"
	if err := diskstore.SortWalkFile(path, sorted, opt.SortMemory); err != nil {
		return err
	}
	r, err := diskstore.NewWalkReader(sorted)
	if err != nil {
		return err
	}
	defer r.Close()

	cols := make([]matrix.Vec, n)
	acc := make(map[int32]float64)
	var curStart int32 = -1
	flush := func() {
		if curStart >= 0 {
			cols[curStart] = matrix.FromMap(acc)
			acc = make(map[int32]float64)
		}
	}
	for {
		t, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if t.Start() != curStart {
			flush()
			curStart = t.Start()
		}
		acc[t.End()] += t.P
	}
	flush()
	return store.WriteMatrix(k, cols)
}

// Meeting computes m(k)(u,v) = Σ_w Pr(u →k w)·Pr(v →k w) from the
// store by reading the two per-source vectors, the I/O pattern of the
// paper's Baseline (Sec. VI-A).
func Meeting(store *diskstore.ColumnStore, k, u, v int) (float64, error) {
	cu, err := store.ReadColumn(k, u)
	if err != nil {
		return 0, err
	}
	cv, err := store.ReadColumn(k, v)
	if err != nil {
		return 0, err
	}
	return cu.Dot(cv), nil
}

// Baseline evaluates s(n)(u,v) entirely from a store previously built by
// Run over the *reversed* graph (SimRank walks run along in-arcs).
func Baseline(store *diskstore.ColumnStore, u, v int, c float64, n int) (float64, error) {
	if !(c > 0 && c < 1) {
		return 0, fmt.Errorf("transpr: decay factor %v outside (0,1)", c)
	}
	m := make([]float64, n+1)
	if u == v {
		m[0] = 1
	}
	for k := 1; k <= n; k++ {
		mk, err := Meeting(store, k, u, v)
		if err != nil {
			return 0, err
		}
		m[k] = mk
	}
	s := 1.0
	for i := 0; i < n; i++ {
		s *= c
	}
	s *= m[n]
	ck := 1.0
	for k := 0; k < n; k++ {
		s += (1 - c) * ck * m[k]
		ck *= c
	}
	return s, nil
}

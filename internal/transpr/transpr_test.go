package transpr

import (
	"errors"
	"math"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

const eps = 1e-9

func TestRunFig1MatchesTransitionRows(t *testing.T) {
	g := ugraph.PaperFig1()
	const K = 4
	res, err := Run(g, K, t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.NumVertices(); src++ {
		want, err := walkpr.TransitionRows(g, src, K, walkpr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= K; k++ {
			got, err := res.Store.ReadColumn(k, src)
			if err != nil {
				t.Fatal(err)
			}
			for v := int32(0); v < int32(g.NumVertices()); v++ {
				if math.Abs(got.At(v)-want[k].At(v)) > eps {
					t.Fatalf("W(%d)[%d][%d]: disk %v vs memory %v", k, src, v, got.At(v), want[k].At(v))
				}
			}
		}
	}
}

func TestRunWalkCountsGrow(t *testing.T) {
	g := ugraph.PaperFig1()
	res, err := Run(g, 4, t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WalksPerLevel[1] != int64(g.NumArcs()) {
		t.Fatalf("level 1 has %d walks, want %d", res.WalksPerLevel[1], g.NumArcs())
	}
	for k := 2; k <= 4; k++ {
		if res.WalksPerLevel[k] < res.WalksPerLevel[k-1] {
			t.Fatalf("walk counts not monotone: %v", res.WalksPerLevel)
		}
	}
}

func TestRunGirthFastPathSelfLoop(t *testing.T) {
	// Girth 1 disables the fast path entirely; correctness must hold.
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 0, 0.5)
	b.AddArc(0, 1, 0.7)
	b.AddArc(1, 0, 0.4)
	g := b.MustBuild()
	res, err := Run(g, 4, t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Girth != 1 {
		t.Fatalf("girth = %d", res.Girth)
	}
	for src := 0; src < 2; src++ {
		want, err := walkpr.EnumTransitionRows(g, src, 4)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 4; k++ {
			got, err := res.Store.ReadColumn(k, src)
			if err != nil {
				t.Fatal(err)
			}
			for v := int32(0); v < 2; v++ {
				if math.Abs(got.At(v)-want[k].At(v)) > eps {
					t.Fatalf("W(%d)[%d][%d]: %v vs %v", k, src, v, got.At(v), want[k].At(v))
				}
			}
		}
	}
}

func TestRunHighGirthUsesFastPath(t *testing.T) {
	// 5-cycle: girth 5 ≥ K=4, so every extension takes the Lemma 3 path;
	// verify against enumeration.
	b := ugraph.NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.AddArc(i, (i+1)%5, 0.3+0.1*float64(i))
	}
	g := b.MustBuild()
	res, err := Run(g, 4, t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Girth < 4 {
		t.Fatalf("girth = %d", res.Girth)
	}
	for src := 0; src < 5; src++ {
		want, err := walkpr.EnumTransitionRows(g, src, 4)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 4; k++ {
			got, err := res.Store.ReadColumn(k, src)
			if err != nil {
				t.Fatal(err)
			}
			for v := int32(0); v < 5; v++ {
				if math.Abs(got.At(v)-want[k].At(v)) > eps {
					t.Fatalf("W(%d)[%d][%d]: %v vs %v", k, src, v, got.At(v), want[k].At(v))
				}
			}
		}
	}
}

func TestBaselineFromStoreMatchesEngine(t *testing.T) {
	g := ugraph.PaperFig1()
	const n = 4
	// SimRank walks run on the reversed graph.
	res, err := Run(g.Reverse(), n, t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, core.Options{C: 0.6, Steps: n})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		for v := u; v < 5; v++ {
			want, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Baseline(res.Store, u, v, 0.6, n)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > eps {
				t.Fatalf("s(%d,%d): disk %v vs engine %v", u, v, got, want)
			}
		}
	}
}

func TestRunWalkExplosionGuard(t *testing.T) {
	g := ugraph.PaperFig1()
	_, err := Run(g, 5, t.TempDir(), Options{MaxWalks: 3})
	if !errors.Is(err, ErrWalkExplosion) {
		t.Fatalf("err = %v, want ErrWalkExplosion", err)
	}
}

func TestRunBadK(t *testing.T) {
	if _, err := Run(ugraph.PaperFig1(), 0, t.TempDir(), Options{}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestRunIOAccounting(t *testing.T) {
	g := ugraph.PaperFig1()
	res, err := Run(g, 3, t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Store.Stats()
	if st.BlockWrites == 0 {
		t.Fatal("no block writes accounted")
	}
	res.Store.ResetStats()
	if _, err := Meeting(res.Store, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if res.Store.Stats().BlockReads == 0 {
		t.Fatal("no block reads accounted for Meeting")
	}
}

func TestBaselineValidatesDecay(t *testing.T) {
	g := ugraph.PaperFig1()
	res, err := Run(g.Reverse(), 2, t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Baseline(res.Store, 0, 1, 1.5, 2); err == nil {
		t.Fatal("bad decay accepted")
	}
}

func TestUsage(t *testing.T) {
	walk := []int32{0, 2, 0, 2, 3, 1, 2, 3, 1}
	cases := []struct {
		x      int32
		wantOw []int32
		wantC  int
	}{
		{0, []int32{2}, 2},
		{1, []int32{2}, 1},
		{2, []int32{0, 3}, 3},
		{3, []int32{1}, 2},
		{4, nil, 0},
	}
	for _, c := range cases {
		ow, cnt := usage(walk, c.x)
		if cnt != c.wantC || len(ow) != len(c.wantOw) {
			t.Fatalf("usage(%d) = %v,%d want %v,%d", c.x, ow, cnt, c.wantOw, c.wantC)
		}
		for i := range ow {
			if ow[i] != c.wantOw[i] {
				t.Fatalf("usage(%d) = %v, want %v", c.x, ow, c.wantOw)
			}
		}
	}
}

// Property: disk TransPr equals the in-memory exact rows on random small
// uncertain graphs (exercising both fast and slow paths).
func TestQuickRunOracle(t *testing.T) {
	r := rng.New(321)
	for trial := 0; trial < 8; trial++ {
		n := 2 + r.Intn(4)
		b := ugraph.NewBuilder(n)
		arcs := 0
		for u := 0; u < n && arcs < 8; u++ {
			for v := 0; v < n && arcs < 8; v++ {
				if r.Bool(0.5) {
					b.AddArc(u, v, 0.2+0.8*r.Float64())
					arcs++
				}
			}
		}
		g := b.MustBuild()
		if g.NumArcs() == 0 {
			continue
		}
		const K = 3
		res, err := Run(g, K, t.TempDir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < n; src++ {
			want, err := walkpr.TransitionRows(g, src, K, walkpr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k <= K; k++ {
				got, err := res.Store.ReadColumn(k, src)
				if err != nil {
					t.Fatal(err)
				}
				for v := int32(0); v < int32(n); v++ {
					if math.Abs(got.At(v)-want[k].At(v)) > 1e-8 {
						t.Fatalf("trial %d W(%d)[%d][%d]: %v vs %v", trial, k, src, v, got.At(v), want[k].At(v))
					}
				}
			}
		}
	}
}

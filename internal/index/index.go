package index

import (
	"fmt"
	"io"

	"usimrank/internal/core"
	"usimrank/internal/diskstore"
	"usimrank/internal/matrix"
)

// Index is a loaded (or freshly built) reverse-walk index for one graph
// generation. It implements core.SourceIndex; rows are immutable and
// safe for concurrent probes. An Index loaded from disk views the
// file's memory mapping — Close it only after every query using it has
// finished (a serving plane should hold it for the engine handle's
// lifetime).
type Index struct {
	meta diskstore.IndexMeta
	rows []matrix.Vec // row-major: occ_v[k] at v·(Depth+1)+k

	// backing keeps whatever the rows view alive: the mmap of a loaded
	// index, or — for a patched index, whose untouched rows alias the
	// predecessor's — the predecessor itself.
	backing io.Closer
}

// Generation returns the engine graph generation the rows were computed
// at.
func (x *Index) Generation() uint64 { return x.meta.Generation }

// NumVertices returns the vertex count of the indexed graph.
func (x *Index) NumVertices() int { return x.meta.Vertices }

// Depth returns the deepest indexed step; rows cover k = 0..Depth.
func (x *Index) Depth() int { return x.meta.Depth }

// Samples returns the walk count N the rows were estimated from.
func (x *Index) Samples() int { return x.meta.Samples }

// Seed returns the engine seed the v-side walk streams derived from.
func (x *Index) Seed() uint64 { return x.meta.Seed }

// Row returns occ_v[k]. v must be in [0, NumVertices()) and k in
// [0, Depth()] — the core.SourceIndex contract; the loader's up-front
// validation is what makes the unchecked access safe.
func (x *Index) Row(v, k int) matrix.Vec {
	return x.rows[v*(x.meta.Depth+1)+k]
}

// Close releases the index's backing (the memory mapping of a loaded
// index, recursively for patched lineages). The Index must not be
// probed afterwards.
func (x *Index) Close() error {
	if x.backing == nil {
		return nil
	}
	b := x.backing
	x.backing = nil
	x.rows = nil
	return b.Close()
}

// Write persists the index at path in the USIX format.
func (x *Index) Write(path string) error {
	return diskstore.WriteIndexFile(path, x.meta, x.rows)
}

// Load memory-maps and fully validates the USIX file at path.
func Load(path string) (*Index, error) {
	f, err := diskstore.OpenIndexFile(path)
	if err != nil {
		return nil, err
	}
	return &Index{meta: f.Meta, rows: f.Rows, backing: f}, nil
}

// Build runs the offline pass: every vertex's v-side occupancy rows,
// fanned out over the engine's worker pool, stamped with the engine's
// graph generation, seed, sample count and step depth. The result is
// deterministic — bit-identical for every Parallelism value — and
// round-trips exactly through Write and Load.
func Build(e *core.Engine) (*Index, error) {
	opt := e.Options()
	n := e.Graph().NumVertices()
	meta := diskstore.IndexMeta{
		Generation: e.Generation(),
		Vertices:   n,
		Depth:      opt.Steps,
		Samples:    opt.N,
		Seed:       opt.Seed,
	}
	rows := make([]matrix.Vec, n*(meta.Depth+1))
	errs := make([]error, n)
	e.WorkerPool().For(n, func(v int) {
		occ, err := e.VSideOccupancy(v)
		if err != nil {
			errs[v] = err
			return
		}
		copy(rows[v*(meta.Depth+1):(v+1)*(meta.Depth+1)], occ)
	})
	for v, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("index: vertex %d: %w", v, err)
		}
	}
	return &Index{meta: meta, rows: rows}, nil
}

// Package index implements the offline reverse-walk index plane: the
// per-vertex meeting-probability decomposition that turns single-source
// queries into index probes plus a small residual sample (the shape of
// PRSim and the exact single-source SimRank line of work, applied to
// the paper's uncertain-graph sampling engine).
//
// # What is stored
//
// For every vertex v of one graph generation and every step k = 0..n
// (n = Options.Steps), the index holds the empirical occupancy
// distribution of v's deterministic v-side walk stream on the reversed
// graph:
//
//	occ_v[k](w) = #{ walks of v at vertex w after k steps } / N
//
// These are exactly the vectors core.Engine.VSideOccupancy computes;
// the builder (Build) fans that call out over the engine's worker pool,
// one task per vertex, so a build is deterministic and bit-identical
// for every Parallelism setting.
//
// At query time the engine samples only the source's u-side walks and
// evaluates m̂(k)(u, v) = ⟨occ_u[k], occ_v[k]⟩ per candidate — see
// core.SingleSourceIndexed for the estimator's accuracy contract
// (unbiased, variance at most the Sampling algorithm's at equal N,
// pinned against the possible-world oracle within Hoeffding tolerance).
//
// # On-disk format
//
// An index persists through internal/diskstore's USIX format: a 64-byte
// little-endian header (magic, format version, graph generation, vertex
// count, depth, walk count N, engine seed), an offset table, and one
// sparse row per (vertex, step) pair — f64 probabilities followed by
// sorted i32 vertex ids, every section 8-byte aligned. Load memory-maps
// the file and validates it completely up front, then serves rows as
// zero-copy views into the mapping; arbitrary corrupt bytes error
// cleanly (the FuzzIndexFile contract) and can never panic a probe.
//
// # Generation discipline and patching
//
// The header carries the engine graph generation the rows were computed
// at. core.Engine.CheckIndex refuses an index whose generation, vertex
// count, sample count, seed, or depth disagrees with the engine, so a
// serving plane can never answer from rows that no longer describe the
// resident graph.
//
// After an incremental update batch (core.Engine.ApplyUpdates), Patch
// derives the successor generation's index without a full rebuild,
// reusing the invalidation argument of the update plane's row-cache
// carry-over: occ_v[0..n] is computed from walks of length ≤ n out of v
// on the reversed graph, and such walks instantiate only the reversed
// out-rows of vertices within n−1 steps of v. A reversed out-row
// changed iff its vertex is a touched arc head, so v's rows change only
// if v reaches a touched head within n−1 reversed steps — equivalently,
// iff the bounded BFS from the heads over the original-direction
// adjacency (old and new graphs both, so deleted paths still count)
// reaches v. Patch recomputes exactly those vertices' rows on the
// successor engine and shares every other row with the predecessor;
// because walk streams depend only on (seed, vertex, side), the result
// is bit-identical to a fresh Build on the successor.
package index

package index

import (
	"os"
	"path/filepath"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/matrix"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

func testGraph() *ugraph.Graph {
	return gen.WithUniformProbs(gen.RMAT(7, 512, 0.45, 0.22, 0.22, rng.New(3)), 0.2, 0.9, rng.New(4))
}

func newEngine(t *testing.T, g *ugraph.Graph, opt core.Options) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sameVec(a, b matrix.Vec) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func sameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	if got.meta != want.meta {
		t.Fatalf("meta %+v, want %+v", got.meta, want.meta)
	}
	for r := range want.rows {
		if !sameVec(got.rows[r], want.rows[r]) {
			v, k := r/(want.meta.Depth+1), r%(want.meta.Depth+1)
			t.Fatalf("occ_%d[%d] = %+v, want %+v", v, k, got.rows[r], want.rows[r])
		}
	}
}

// TestBuildWriteLoadRoundTrip: a built index survives the USIX round
// trip bit for bit, and the loaded (mmap-backed) rows serve the indexed
// kernel identically to the in-memory build.
func TestBuildWriteLoadRoundTrip(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, core.Options{N: 400, Seed: 7})
	built, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	if built.Generation() != 1 || built.NumVertices() != g.NumVertices() ||
		built.Depth() != e.Options().Steps || built.Samples() != 400 || built.Seed() != 7 {
		t.Fatalf("built meta %+v", built.meta)
	}
	path := filepath.Join(t.TempDir(), "g.usix")
	if err := built.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	sameIndex(t, loaded, built)

	fromBuilt, err := e.SingleSourceIndexed(built, 9)
	if err != nil {
		t.Fatal(err)
	}
	fromLoaded, err := e.SingleSourceIndexed(loaded, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fromBuilt {
		if fromBuilt[v] != fromLoaded[v] {
			t.Fatalf("s(9,%d): %v from built, %v from loaded", v, fromBuilt[v], fromLoaded[v])
		}
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildDeterministicAcrossParallelism: the offline pass is
// scheduling-independent like everything else in the engine.
func TestBuildDeterministicAcrossParallelism(t *testing.T) {
	g := testGraph()
	build := func(par int) *Index {
		e := newEngine(t, g, core.Options{N: 300, Seed: 13, Parallelism: par})
		x, err := Build(e)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	base := build(1)
	sameIndex(t, build(6), base)
}

// TestPatchMatchesFreshRebuild is the patch plane's central contract:
// after ApplyUpdates, patching the old index on the successor engine is
// bit-identical to rebuilding from scratch — while recomputing only the
// BFS-touched vertices.
func TestPatchMatchesFreshRebuild(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, core.Options{N: 300, Seed: 5})
	x, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	du, dv, _ := g.ArcEndpoints(0)
	ru, rv, _ := g.ArcEndpoints(1)
	ups := []ugraph.ArcUpdate{
		{Op: ugraph.OpInsert, U: 3, V: 90, P: 0.7},
		{Op: ugraph.OpDelete, U: int(du), V: int(dv)},
		{Op: ugraph.OpReweight, U: int(ru), V: int(rv), P: 0.33},
	}
	succ, _, err := e.ApplyUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	patched, n, err := Patch(x, succ, g, ups)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= g.NumVertices() {
		t.Fatalf("patched %d of %d vertices", n, g.NumVertices())
	}
	fresh, err := Build(succ)
	if err != nil {
		t.Fatal(err)
	}
	sameIndex(t, patched, fresh)
	if err := succ.CheckIndex(patched); err != nil {
		t.Fatalf("successor rejects patched index: %v", err)
	}
	if err := e.CheckIndex(patched); err == nil {
		t.Fatal("predecessor accepts patched index")
	}
}

// TestPatchEmptyBatch: an empty batch patches zero vertices but still
// advances the generation with the engine.
func TestPatchEmptyBatch(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, core.Options{N: 200, Seed: 2})
	x, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	succ, _, err := e.ApplyUpdates(nil)
	if err != nil {
		t.Fatal(err)
	}
	patched, n, err := Patch(x, succ, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("patched %d vertices on an empty batch", n)
	}
	if err := succ.CheckIndex(patched); err != nil {
		t.Fatal(err)
	}
}

// TestPatchRejectsWrongLineage: patching requires exactly the
// generation successor and matching walk-stream parameters.
func TestPatchRejectsWrongLineage(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, core.Options{N: 200, Seed: 2})
	x, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Patch(x, e, g, nil); err == nil {
		t.Fatal("patch onto the same generation accepted")
	}
	succ, _, err := e.ApplyUpdates(nil)
	if err != nil {
		t.Fatal(err)
	}
	succ2, _, err := succ.ApplyUpdates(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Patch(x, succ2, g, nil); err == nil {
		t.Fatal("patch across two generations accepted")
	}
	badMeta := x.meta
	badMeta.Seed = 99
	if _, _, err := Patch(fromParts(badMeta, x.rows), succ, g, nil); err == nil {
		t.Fatal("patch with mismatched seed accepted")
	}
}

// TestLoadRejectsCorruptFile: the loader surfaces diskstore's
// validation instead of serving garbage.
func TestLoadRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.usix")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.usix")
	if err := os.WriteFile(bad, []byte("USIXgarbage that is long enough to clear the header size check...."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("corrupt file loaded")
	}
}

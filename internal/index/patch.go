package index

import (
	"fmt"

	"usimrank/internal/core"
	"usimrank/internal/diskstore"
	"usimrank/internal/matrix"
	"usimrank/internal/ugraph"
)

// Patch derives the successor generation's index from x after an
// incremental update batch: succ must be the engine ApplyUpdates
// returned, oldG the predecessor's graph, and updates the batch that
// produced it. Only vertices within the walk horizon of a touched arc
// head are recomputed (see the package comment for why that set is
// exact); every other row is shared with x, so the patched index keeps
// x's backing alive until its own Close. Returns the new index and the
// number of vertices whose rows were recomputed.
//
// The result is bit-identical to Build(succ) — the fresh-rebuild
// equivalence the index-lifecycle tests pin — at the cost of a bounded
// BFS plus O(patched vertices) occupancy passes instead of O(|V|).
func Patch(x *Index, succ *core.Engine, oldG *ugraph.Graph, updates []ugraph.ArcUpdate) (*Index, int, error) {
	opt := succ.Options()
	switch {
	case succ.Generation() != x.meta.Generation+1:
		return nil, 0, fmt.Errorf("index: patching generation %d index to engine generation %d (want %d)",
			x.meta.Generation, succ.Generation(), x.meta.Generation+1)
	case succ.Graph().NumVertices() != x.meta.Vertices:
		return nil, 0, fmt.Errorf("index: %d vertices in index, %d in successor graph",
			x.meta.Vertices, succ.Graph().NumVertices())
	case opt.N != x.meta.Samples || opt.Seed != x.meta.Seed || opt.Steps != x.meta.Depth:
		return nil, 0, fmt.Errorf("index: successor options (N=%d seed=%d steps=%d) disagree with index (N=%d seed=%d depth=%d)",
			opt.N, opt.Seed, opt.Steps, x.meta.Samples, x.meta.Seed, x.meta.Depth)
	}

	// The touched-head seed set: distinct heads of the staged arcs. This
	// is a superset of the net touched set (a batch whose ops cancel out
	// still lists its heads), which only costs recomputation of rows that
	// come out bit-identical — never correctness.
	seen := make(map[int32]struct{}, len(updates))
	var heads []int32
	for _, up := range updates {
		h := int32(up.V)
		if _, ok := seen[h]; ok {
			continue
		}
		seen[h] = struct{}{}
		heads = append(heads, h)
	}

	depth := x.meta.Depth
	meta := x.meta
	meta.Generation = succ.Generation()
	out := &Index{meta: meta, rows: x.rows, backing: x}
	if len(heads) == 0 {
		return out, 0, nil // empty net batch: every row carries over
	}

	// occ_v[0..depth] instantiates reversed out-rows at walk steps
	// 0..depth−1, so v is affected iff the BFS from the heads over the
	// original-direction union adjacency reaches it within depth−1.
	dist := ugraph.BoundedDistances(heads, depth-1, oldG, succ.Graph())
	rows := make([]matrix.Vec, len(x.rows))
	copy(rows, x.rows)
	var touched []int
	for v := 0; v < meta.Vertices; v++ {
		if dist[v] >= 0 {
			touched = append(touched, v)
		}
	}
	errs := make([]error, len(touched))
	succ.WorkerPool().For(len(touched), func(i int) {
		occ, err := succ.VSideOccupancy(touched[i])
		if err != nil {
			errs[i] = err
			return
		}
		copy(rows[touched[i]*(depth+1):(touched[i]+1)*(depth+1)], occ)
	})
	for i, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("index: vertex %d: %w", touched[i], err)
		}
	}
	out.rows = rows
	return out, len(touched), nil
}

// fromParts assembles an Index from raw parts — the test suite's hook
// for constructing deliberately mismatched indexes.
func fromParts(meta diskstore.IndexMeta, rows []matrix.Vec) *Index {
	return &Index{meta: meta, rows: rows}
}

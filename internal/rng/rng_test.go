package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const buckets, n = 10, 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates more than 5%% from %v", b, c, want)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// The child stream must not be a shifted copy of the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collide %d/100 times", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(31)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		New(seed).Shuffle(n, func(i, j int) { s[i], s[j] = s[j], s[i] })
		seen := make([]bool, n)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint32) bool {
		n := uint64(nRaw) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}

// TestUint64sMatchesScalarStream: the bulk fill must be exactly what
// repeated Uint64 calls produce, for every length, so bulk and scalar
// consumers are interchangeable mid-stream.
func TestUint64sMatchesScalarStream(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		bulk := New(42)
		bulk.Uint64() // advance both streams off the seed state
		scalar := New(42)
		scalar.Uint64()
		dst := make([]uint64, n)
		bulk.Uint64s(dst)
		for i, got := range dst {
			if want := scalar.Uint64(); got != want {
				t.Fatalf("n=%d index %d: bulk %#x, scalar %#x", n, i, got, want)
			}
		}
		// Both generators must land in the same state.
		if a, b := bulk.Uint64(), scalar.Uint64(); a != b {
			t.Fatalf("n=%d: post-bulk state diverged (%#x vs %#x)", n, a, b)
		}
	}
}

// TestBoolsMatchesScalarStream: Bools must consume the stream exactly
// like repeated Bool calls, including the clamped cases consuming
// nothing.
func TestBoolsMatchesScalarStream(t *testing.T) {
	for _, p := range []float64{-0.5, 0, 0.25, 0.5, 0.9, 1, 1.5} {
		bulk := New(7)
		scalar := New(7)
		dst := make([]bool, 257)
		bulk.Bools(p, dst)
		for i, got := range dst {
			if want := scalar.Bool(p); got != want {
				t.Fatalf("p=%v index %d: bulk %v, scalar %v", p, i, got, want)
			}
		}
		if a, b := bulk.Uint64(), scalar.Uint64(); a != b {
			t.Fatalf("p=%v: stream consumption diverged", p)
		}
	}
}

// TestReseedMatchesNew: a reseeded generator is indistinguishable from
// a fresh one.
func TestReseedMatchesNew(t *testing.T) {
	var r RNG
	r.Uint64() // dirty the state
	r.Reseed(123)
	fresh := New(123)
	for i := 0; i < 10; i++ {
		if a, b := r.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: reseeded %#x, fresh %#x", i, a, b)
		}
	}
}

func BenchmarkUint64sBulk(b *testing.B) {
	r := New(1)
	dst := make([]uint64, 256)
	b.SetBytes(256 * 8)
	for i := 0; i < b.N; i++ {
		r.Uint64s(dst)
	}
}

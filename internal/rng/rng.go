// Package rng provides a small, fast, deterministic random number
// generator used throughout the repository.
//
// Every randomised algorithm in this module takes an explicit *rng.RNG (or
// a seed from which it derives one) instead of relying on global state, so
// experiments are reproducible bit-for-bit across runs and platforms. The
// generator is splitmix64 (Steele, Lea, Flood: "Fast splittable
// pseudorandom number generators", OOPSLA 2014), which passes BigCrush,
// has a full 2^64 period, and is trivially splittable: independent child
// streams can be derived for parallel samplers.
package rng

import "math"

// RNG is a splitmix64 pseudorandom number generator. The zero value is a
// valid generator seeded with 0; prefer New to make seeding explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// golden gamma, the splitmix64 increment.
const gamma = 0x9e3779b97f4a7c15

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += gamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Reseed resets the generator to the stream of New(seed). It exists so
// hot paths can hold an RNG by value (typically inside a reused arena or
// on the stack) and re-aim it at a chunk seed without allocating the
// fresh generator New returns.
func (r *RNG) Reseed(seed uint64) {
	r.state = seed
}

// Uint64s fills dst with the next len(dst) values of the stream — the
// bulk form of Uint64 for samplers that consume draws in blocks (one
// block per vertex-neighbourhood instantiation in the v2 Monte Carlo
// kernel). The filled values are exactly what len(dst) successive
// Uint64 calls would have returned, so bulk and scalar consumption are
// interchangeable without perturbing downstream bits. Unlike repeated
// Uint64 calls, the loop carries no dependency between iterations: each
// output mixes state + (i+1)·gamma independently, so the CPU can
// overlap the mixing of neighbouring draws.
func (r *RNG) Uint64s(dst []uint64) {
	s := r.state
	for i := range dst {
		s += gamma
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		dst[i] = z ^ (z >> 31)
	}
	r.state = s
}

// Bools fills dst with len(dst) independent Bool(p) draws. Stream
// consumption matches repeated Bool calls exactly: clamped
// probabilities (p <= 0, p >= 1) consume nothing, anything else
// consumes one draw per element.
func (r *RNG) Bools(p float64, dst []bool) {
	if p <= 0 {
		for i := range dst {
			dst[i] = false
		}
		return
	}
	if p >= 1 {
		for i := range dst {
			dst[i] = true
		}
		return
	}
	for i := range dst {
		dst[i] = r.Float64() < p
	}
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's. The receiver advances by one step.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// nearly-divisionless method with a rejection step to remove modulo bias.
// It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Rejection sampling on the top bits: threshold is the largest
	// multiple of n that fits in 2^64.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Bool returns true with probability p. Probabilities outside [0,1] are
// clamped: p <= 0 is always false, p >= 1 is always true.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normally distributed float64 using the
// Box–Muller transform. It is used only by synthetic data generators, so
// the modest speed of Box–Muller is irrelevant.
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Shuffle permutes the n elements addressed by swap using Fisher–Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Package speedup implements the paper's speeding-up technique
// (Sec. VI-D, Fig. 5): the N independent sampling processes of the
// Sampling algorithm are executed simultaneously by encoding, for every
// arc e, an N-bit filter vector F_e whose i-th bit says "sampling process
// i, when at the arc's source, moves along e", and propagating N-bit
// counting tables M_w[k] level by level with bitwise AND/OR. The meeting
// probability estimate is then m̂(k) = ‖M_w[k] ∧ M'_w[k]‖₁ / N summed
// over vertices (Eq. 16).
//
// Fidelity note (also recorded in DESIGN.md): filter vectors fix one
// out-choice per (vertex, process), so a walk that revisits a vertex
// repeats its earlier choice, whereas the Sampling algorithm re-rolls the
// uniform choice on every visit. The two coincide whenever walks cannot
// revisit a vertex within n steps (girth > n) and are statistically
// indistinguishable on the sparse graphs of the evaluation; the ablation
// benchmarks quantify the difference on loopy graphs. The paper also
// shares one filter pool between the u-side and the v-side; NewEstimator
// takes two pools so callers choose shared (paper-faithful) or
// independent (matches the Sampling algorithm's independence) pairing.
package speedup

import (
	"fmt"

	"usimrank/internal/bitvec"
	"usimrank/internal/parallel"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// Filters holds the per-arc N-bit filter vectors of one sampling pool.
type Filters struct {
	N   int
	g   *ugraph.Graph
	arc []*bitvec.Vector // indexed by arc ID; nil when no bit is set
	// seeds[w] is the RNG seed vertex w's filters were built from. It is
	// retained so PatchFilters can rebuild a mutated vertex's filters
	// bit-identically to a from-scratch build of the mutated graph.
	seeds []uint64
}

// BuildFilters constructs filter vectors for all arcs of g offline: for
// every vertex w and process i, each arc leaving w is instantiated with
// its probability and one instantiated arc is selected uniformly at
// random (reservoir sampling keeps the selection single-pass). It is
// BuildFiltersPool with an inline (single-worker) pool.
func BuildFilters(g *ugraph.Graph, N int, r *rng.RNG) *Filters {
	return BuildFiltersPool(g, N, r, nil)
}

// BuildFiltersPool builds the same filters as BuildFilters, fanning the
// per-vertex work out over pool (nil runs inline). Every vertex draws a
// child seed from r in vertex order before the fan-out and fills only
// its own arc range, so the output depends solely on r's state — it is
// bit-identical for every pool size, including the inline one.
func BuildFiltersPool(g *ugraph.Graph, N int, r *rng.RNG, pool *parallel.Pool) *Filters {
	if N <= 0 {
		panic(fmt.Sprintf("speedup: bad N %d", N))
	}
	nv := g.NumVertices()
	seeds := make([]uint64, nv)
	for w := range seeds {
		seeds[w] = r.Uint64()
	}
	f := &Filters{N: N, g: g, arc: make([]*bitvec.Vector, g.NumArcs()), seeds: seeds}
	pool.For(nv, func(w int) {
		f.buildVertex(w)
	})
	return f
}

// buildVertex (re)builds the filter vectors of the arcs leaving w from
// w's retained seed. It writes only w's own arc range, so concurrent
// calls for distinct vertices are safe, and the result depends only on
// (seed, w's arc row) — never on scheduling or on other vertices.
func (f *Filters) buildVertex(w int) {
	g := f.g
	lo, hi := g.ArcRange(w)
	if lo == hi {
		return
	}
	rw := rng.New(f.seeds[w])
	probs := g.OutProbs(w)
	for i := 0; i < f.N; i++ {
		pick := int32(-1)
		count := 0
		for id := lo; id < hi; id++ {
			if rw.Bool(probs[id-lo]) {
				count++
				if count == 1 || rw.Intn(count) == 0 {
					pick = id
				}
			}
		}
		if pick >= 0 {
			if f.arc[pick] == nil {
				f.arc[pick] = bitvec.New(f.N)
			}
			f.arc[pick].Set(i)
		}
	}
}

// PatchFilters derives the filter pool of a mutated graph from the pool
// of its predecessor. newG must have the same vertex count as old's
// graph; touched lists the vertices whose out-arc row differs between
// the two (extra vertices are allowed — rebuilding an unchanged row is
// wasted work, never wrong). Untouched rows share their (immutable)
// filter vectors with the old pool under the new arc IDs; touched rows
// are rebuilt from their retained per-vertex seeds, fanned out over
// pool (nil runs inline).
//
// The result is bit-identical to BuildFiltersPool on newG with the same
// root RNG: the per-vertex seed sequence depends only on the vertex
// count, and each vertex's filters depend only on (seed, arc row).
func PatchFilters(old *Filters, newG *ugraph.Graph, touched []int32, pool *parallel.Pool) *Filters {
	if newG.NumVertices() != old.g.NumVertices() {
		panic(fmt.Sprintf("speedup: patch across vertex counts %d -> %d", old.g.NumVertices(), newG.NumVertices()))
	}
	f := &Filters{N: old.N, g: newG, arc: make([]*bitvec.Vector, newG.NumArcs()), seeds: old.seeds}
	isTouched := make(map[int32]bool, len(touched))
	for _, w := range touched {
		isTouched[w] = true
	}
	for w := 0; w < newG.NumVertices(); w++ {
		if isTouched[int32(w)] {
			continue
		}
		oldLo, oldHi := old.g.ArcRange(w)
		newLo, newHi := newG.ArcRange(w)
		if newHi-newLo != oldHi-oldLo {
			panic(fmt.Sprintf("speedup: vertex %d row changed (%d -> %d arcs) but not marked touched",
				w, oldHi-oldLo, newHi-newLo))
		}
		copy(f.arc[newLo:newHi], old.arc[oldLo:oldHi])
	}
	pool.For(len(touched), func(i int) {
		f.buildVertex(int(touched[i]))
	})
	return f
}

// Arc returns the filter vector of the given arc, or nil if no process
// uses it.
func (f *Filters) Arc(id int32) *bitvec.Vector { return f.arc[id] }

// Tables holds the counting tables of one source vertex: Level[k][w] is
// the N-bit vector M_w[k] whose i-th bit says "process i's walk is at w
// after k steps".
type Tables struct {
	Src    int32
	Steps  int
	N      int
	Levels []map[int32]*bitvec.Vector
}

// Propagate runs the BFS-sharing propagation of Fig. 5 from src for n
// steps using the filter pool f.
func Propagate(f *Filters, src int, n int) *Tables {
	g := f.g
	if src < 0 || src >= g.NumVertices() {
		panic(fmt.Sprintf("speedup: source %d out of range [0,%d)", src, g.NumVertices()))
	}
	if n < 0 {
		panic(fmt.Sprintf("speedup: negative step count %d", n))
	}
	t := &Tables{Src: int32(src), Steps: n, N: f.N, Levels: make([]map[int32]*bitvec.Vector, n+1)}
	start := bitvec.New(f.N)
	start.SetAll()
	t.Levels[0] = map[int32]*bitvec.Vector{int32(src): start}
	for k := 0; k < n; k++ {
		next := make(map[int32]*bitvec.Vector)
		for w, mw := range t.Levels[k] {
			lo, hi := g.ArcRange(int(w))
			for id := lo; id < hi; id++ {
				fe := f.arc[id]
				if fe == nil {
					continue
				}
				x := g.Out(int(w))[id-lo]
				mx := next[x]
				if mx == nil {
					mx = bitvec.New(f.N)
					next[x] = mx
				}
				mx.OrAnd(mw, fe)
			}
		}
		// Drop all-zero vectors so U(k+1) holds only reachable vertices.
		for x, mx := range next {
			if !mx.Any() {
				delete(next, x)
			}
		}
		t.Levels[k+1] = next
	}
	return t
}

// MeetingEstimates computes m̂(k) for k = 0..Steps per Eq. 16 from the
// counting tables of the two sources. The tables must have equal N and
// Steps.
func MeetingEstimates(a, b *Tables) []float64 {
	if a.N != b.N || a.Steps != b.Steps {
		panic("speedup: mismatched tables")
	}
	m := make([]float64, a.Steps+1)
	for k := 0; k <= a.Steps; k++ {
		la, lb := a.Levels[k], b.Levels[k]
		// Iterate the smaller map.
		if len(lb) < len(la) {
			la, lb = lb, la
		}
		total := 0
		for w, va := range la {
			if vb, ok := lb[w]; ok {
				total += va.AndPopCount(vb)
			}
		}
		m[k] = float64(total) / float64(a.N)
	}
	return m
}

// Estimate runs the full pipeline for a pair of sources: propagate from u
// using fu and from v using fv, then combine. Pass the same pool twice
// for the paper's shared-pool behaviour, or two independently built pools
// for unbiased pairing.
func Estimate(fu, fv *Filters, u, v, n int) []float64 {
	if fu.g != fv.g {
		panic("speedup: filter pools built over different graphs")
	}
	return MeetingEstimates(Propagate(fu, u, n), Propagate(fv, v, n))
}

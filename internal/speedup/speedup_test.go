package speedup

import (
	"math"
	"testing"

	"usimrank/internal/mc"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

func TestBuildFiltersOneChoicePerProcess(t *testing.T) {
	g := ugraph.PaperFig1()
	const N = 64
	f := BuildFilters(g, N, rng.New(1))
	// For every vertex and process, at most one outgoing arc may carry
	// the process's bit.
	for w := 0; w < g.NumVertices(); w++ {
		lo, hi := g.ArcRange(w)
		for i := 0; i < N; i++ {
			set := 0
			for id := lo; id < hi; id++ {
				if fv := f.Arc(id); fv != nil && fv.Get(i) {
					set++
				}
			}
			if set > 1 {
				t.Fatalf("vertex %d process %d uses %d arcs", w, i, set)
			}
		}
	}
}

func TestBuildFiltersChoiceFrequencies(t *testing.T) {
	// Vertex 0 has two certain arcs; each must be chosen ~half the time.
	b := ugraph.NewBuilder(3)
	b.AddArc(0, 1, 1)
	b.AddArc(0, 2, 1)
	g := b.MustBuild()
	const N = 40000
	f := BuildFilters(g, N, rng.New(5))
	c0 := f.Arc(0).PopCount()
	c1 := f.Arc(1).PopCount()
	if c0+c1 != N {
		t.Fatalf("certain arcs chosen %d+%d times, want %d", c0, c1, N)
	}
	if math.Abs(float64(c0)/N-0.5) > 0.01 {
		t.Fatalf("arc 0 chosen with frequency %v", float64(c0)/N)
	}
}

func TestBuildFiltersRespectsProbabilities(t *testing.T) {
	// Single arc with p = 0.3: chosen exactly when instantiated.
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 1, 0.3)
	g := b.MustBuild()
	const N = 40000
	f := BuildFilters(g, N, rng.New(7))
	got := float64(f.Arc(0).PopCount()) / N
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("arc used with frequency %v, want 0.3", got)
	}
}

func TestPropagateDeterministicPath(t *testing.T) {
	// Functional certain graph 0→1→2→0: every process follows the path,
	// so each level has all N bits on exactly one vertex.
	b := ugraph.NewBuilder(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 1)
	b.AddArc(2, 0, 1)
	g := b.MustBuild()
	const N = 128
	f := BuildFilters(g, N, rng.New(3))
	tab := Propagate(f, 0, 6)
	wantAt := []int32{0, 1, 2, 0, 1, 2, 0}
	for k := 0; k <= 6; k++ {
		lvl := tab.Levels[k]
		if len(lvl) != 1 {
			t.Fatalf("level %d has %d vertices", k, len(lvl))
		}
		vec, ok := lvl[wantAt[k]]
		if !ok || vec.PopCount() != N {
			t.Fatalf("level %d: expected all bits at %d", k, wantAt[k])
		}
	}
}

func TestPropagateDeadProcessesDisappear(t *testing.T) {
	// 0 → 1 with p=0.5, 1 is a sink: level 1 holds only the surviving
	// processes, level 2 is empty.
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 1, 0.5)
	g := b.MustBuild()
	const N = 20000
	f := BuildFilters(g, N, rng.New(11))
	tab := Propagate(f, 0, 2)
	alive := 0
	if v := tab.Levels[1][1]; v != nil {
		alive = v.PopCount()
	}
	if math.Abs(float64(alive)/N-0.5) > 0.02 {
		t.Fatalf("survivors %v, want ≈0.5", float64(alive)/N)
	}
	if len(tab.Levels[2]) != 0 {
		t.Fatalf("level 2 should be empty, has %d vertices", len(tab.Levels[2]))
	}
}

// TestEstimateUnbiasedHighGirth compares Eq. 16 estimates (independent
// pools) with exact meeting probabilities on a graph whose girth exceeds
// the walk length, where fixed-choice and re-rolled-choice sampling
// coincide.
func TestEstimateUnbiasedHighGirth(t *testing.T) {
	// 8-cycle with probabilistic chords; girth of the skeleton is 8 > n=3.
	b := ugraph.NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.AddArc(i, (i+1)%8, 0.5+0.05*float64(i))
	}
	b.AddArc(0, 2, 0.4)
	b.AddArc(3, 5, 0.7)
	g := b.MustBuild()

	const N, n = 60000, 3
	u, v := 0, 3
	r := rng.New(13)
	fu := BuildFilters(g, N, r.Split())
	fv := BuildFilters(g, N, r.Split())
	got := Estimate(fu, fv, u, v, n)

	rowsU, err := walkpr.TransitionRows(g, u, n, walkpr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rowsV, err := walkpr.TransitionRows(g, v, n, walkpr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= n; k++ {
		want := rowsU[k].Dot(rowsV[k])
		if math.Abs(got[k]-want) > 0.01 {
			t.Fatalf("m̂(%d) = %v, exact %v", k, got[k], want)
		}
	}
}

// TestEstimateMatchesSamplingStatistically runs both estimators on the
// Fig. 1 graph and checks they agree within Monte Carlo tolerance for a
// pair of vertices whose short walks do not revisit (u=v4, v=v5, n=2).
func TestEstimateMatchesSamplingStatistically(t *testing.T) {
	g := ugraph.PaperFig1()
	const N, n = 60000, 2
	u, v := 3, 4
	r := rng.New(41)
	fu := BuildFilters(g, N, r.Split())
	fv := BuildFilters(g, N, r.Split())
	sp := Estimate(fu, fv, u, v, n)

	r2 := rng.New(43)
	wu := mc.Sample(g, u, n, N, r2)
	wv := mc.Sample(g, v, n, N, r2)
	ms := mc.MeetingEstimates(wu, wv)

	for k := 0; k <= n; k++ {
		if math.Abs(sp[k]-ms[k]) > 0.012 {
			t.Fatalf("k=%d: speedup %v vs sampling %v", k, sp[k], ms[k])
		}
	}
}

func TestSharedPoolSelfPairIsDegenerate(t *testing.T) {
	// With a shared pool and u == v the two walk sets are identical, so
	// m̂(k) = survival fraction at step k (every surviving pair "meets").
	// This documents the coupling the shared pool introduces.
	g := ugraph.PaperFig1()
	const N, n = 2000, 3
	f := BuildFilters(g, N, rng.New(19))
	m := Estimate(f, f, 2, 2, n)
	for k := 0; k <= n; k++ {
		tab := Propagate(f, 2, n)
		survive := 0
		for _, vec := range tab.Levels[k] {
			survive += vec.PopCount()
		}
		want := float64(survive) / N
		if math.Abs(m[k]-want) > 1e-12 {
			t.Fatalf("k=%d: shared-pool self-pair m̂ = %v, survival %v", k, m[k], want)
		}
	}
}

func TestEstimatePanicsOnDifferentGraphs(t *testing.T) {
	g1 := ugraph.PaperFig1()
	g2 := ugraph.PaperFig1()
	f1 := BuildFilters(g1, 8, rng.New(1))
	f2 := BuildFilters(g2, 8, rng.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("cross-graph estimate accepted")
		}
	}()
	Estimate(f1, f2, 0, 1, 2)
}

func TestMeetingEstimatesMismatchedPanics(t *testing.T) {
	g := ugraph.PaperFig1()
	fa := BuildFilters(g, 8, rng.New(1))
	fb := BuildFilters(g, 16, rng.New(2))
	ta := Propagate(fa, 0, 2)
	tb := Propagate(fb, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched tables accepted")
		}
	}()
	MeetingEstimates(ta, tb)
}

func TestBuildFiltersPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=0 accepted")
		}
	}()
	BuildFilters(ugraph.PaperFig1(), 0, rng.New(1))
}

func BenchmarkPropagateFig1(b *testing.B) {
	g := ugraph.PaperFig1()
	f := BuildFilters(g, 1000, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Propagate(f, 0, 5)
	}
}

func BenchmarkBuildFiltersFig1(b *testing.B) {
	g := ugraph.PaperFig1()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFilters(g, 1000, r)
	}
}

// TestPatchFiltersMatchesFreshBuild pins the derive-on-update identity:
// patching a pool across a mutation is bit-identical to building a
// fresh pool over the mutated graph from the same root RNG.
func TestPatchFiltersMatchesFreshBuild(t *testing.T) {
	r := rng.New(909)
	const N = 96
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(10)
		b := ugraph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if r.Bool(0.3) {
					b.AddArc(u, v, 0.05+0.95*r.Float64())
				}
			}
		}
		g := b.MustBuild()
		old := BuildFilters(g, N, rng.New(42))

		// Random mutation batch; touched = tails of the mutated arcs
		// (the vertices whose out-row changes).
		d := ugraph.NewDelta(g)
		touchedSet := map[int32]bool{}
		for i := 0; i < 1+r.Intn(4); i++ {
			u, v := r.Intn(n), r.Intn(n)
			var up ugraph.ArcUpdate
			if d.Prob(u, v) > 0 {
				if r.Bool(0.5) {
					up = ugraph.ArcUpdate{Op: ugraph.OpDelete, U: u, V: v}
				} else {
					up = ugraph.ArcUpdate{Op: ugraph.OpReweight, U: u, V: v, P: 0.05 + 0.95*r.Float64()}
				}
			} else {
				up = ugraph.ArcUpdate{Op: ugraph.OpInsert, U: u, V: v, P: 0.05 + 0.95*r.Float64()}
			}
			if err := d.Stage(up); err != nil {
				t.Fatal(err)
			}
			touchedSet[int32(u)] = true
		}
		newG := d.Compact()
		var touched []int32
		for w := range touchedSet {
			touched = append(touched, w)
		}

		patched := PatchFilters(old, newG, touched, nil)
		fresh := BuildFilters(newG, N, rng.New(42))
		if patched.N != fresh.N || len(patched.arc) != len(fresh.arc) {
			t.Fatalf("shape mismatch: N %d/%d arcs %d/%d", patched.N, fresh.N, len(patched.arc), len(fresh.arc))
		}
		for id := range fresh.arc {
			pv, fv := patched.arc[id], fresh.arc[id]
			switch {
			case pv == nil && fv == nil:
			case pv == nil || fv == nil:
				t.Fatalf("trial %d arc %d: nil mismatch (patched %v, fresh %v)", trial, id, pv != nil, fv != nil)
			default:
				for i := 0; i < N; i++ {
					if pv.Get(i) != fv.Get(i) {
						t.Fatalf("trial %d arc %d bit %d differs", trial, id, i)
					}
				}
			}
		}
	}
}

func TestPatchFiltersPanicsOnUnmarkedRowChange(t *testing.T) {
	g := ugraph.PaperFig1()
	old := BuildFilters(g, 8, rng.New(1))
	newG, err := g.Apply([]ugraph.ArcUpdate{{Op: ugraph.OpInsert, U: 0, V: 0, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unmarked row-length change")
		}
	}()
	PatchFilters(old, newG, nil, nil) // vertex 0 grew a row arc but is not marked
}

package er

import (
	"math"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/rng"
)

func TestGenerateStructure(t *testing.T) {
	ds := Generate(Config{}, 300, rng.New(1))
	wantAuthors := 0
	for _, ns := range DefaultNames() {
		wantAuthors += ns.Authors
	}
	if len(ds.Authors) != wantAuthors {
		t.Fatalf("authors = %d, want %d", len(ds.Authors), wantAuthors)
	}
	if len(ds.Records) < 2*wantAuthors {
		t.Fatalf("only %d records for %d authors", len(ds.Records), wantAuthors)
	}
	for _, rec := range ds.Records {
		if rec.AuthorID < 0 || rec.AuthorID >= len(ds.Authors) {
			t.Fatalf("record %d has author %d", rec.ID, rec.AuthorID)
		}
		if ds.Authors[rec.AuthorID].Name != rec.Name {
			t.Fatalf("record %d name %q does not match author %q",
				rec.ID, rec.Name, ds.Authors[rec.AuthorID].Name)
		}
		if len(rec.Coauthors) == 0 {
			t.Fatalf("record %d has no coauthors", rec.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{}, 200, rng.New(5))
	b := Generate(Config{}, 200, rng.New(5))
	if len(a.Records) != len(b.Records) {
		t.Fatal("same seed, different datasets")
	}
	for i := range a.Records {
		if a.Records[i].Venue != b.Records[i].Venue || a.Records[i].AuthorID != b.Records[i].AuthorID {
			t.Fatal("same seed, different records")
		}
	}
}

func TestBlocks(t *testing.T) {
	ds := Generate(Config{}, 300, rng.New(2))
	names, blocks := Blocks(ds)
	if len(names) != len(DefaultNames()) {
		t.Fatalf("got %d blocks", len(names))
	}
	total := 0
	for _, n := range names {
		block := blocks[n]
		total += len(block)
		for _, rec := range block {
			if rec.Name != n {
				t.Fatalf("record %d in wrong block", rec.ID)
			}
		}
	}
	if total != len(ds.Records) {
		t.Fatalf("blocks cover %d of %d records", total, len(ds.Records))
	}
}

func TestRecordSimilarityBounds(t *testing.T) {
	ds := Generate(Config{}, 200, rng.New(3))
	for i := 0; i < 50; i++ {
		a := ds.Records[i%len(ds.Records)]
		b := ds.Records[(i*7)%len(ds.Records)]
		s := RecordSimilarity(a, b)
		if s < 0 || s > 1.0001 {
			t.Fatalf("similarity %v out of range", s)
		}
	}
	// Identical records are maximally similar.
	r := ds.Records[0]
	if s := RecordSimilarity(r, r); s < 0.99 {
		t.Fatalf("self similarity %v", s)
	}
}

func TestSameAuthorRecordsMoreSimilar(t *testing.T) {
	ds := Generate(Config{}, 400, rng.New(7))
	var same, diff float64
	var nSame, nDiff int
	for i := 0; i < len(ds.Records); i += 3 {
		for j := i + 1; j < len(ds.Records); j += 3 {
			a, b := ds.Records[i], ds.Records[j]
			if a.Name != b.Name {
				continue
			}
			s := RecordSimilarity(a, b)
			if a.AuthorID == b.AuthorID {
				same += s
				nSame++
			} else {
				diff += s
				nDiff++
			}
		}
	}
	if nSame == 0 || nDiff == 0 {
		t.Fatal("degenerate sample")
	}
	if same/float64(nSame) <= diff/float64(nDiff) {
		t.Fatalf("same-author similarity %v not above cross-author %v",
			same/float64(nSame), diff/float64(nDiff))
	}
}

func TestSimilarityGraphSymmetricProbabilities(t *testing.T) {
	ds := Generate(Config{}, 150, rng.New(9))
	_, blocks := Blocks(ds)
	block := blocks["Wei Wang"]
	g := SimilarityGraph(block, 0.05)
	if g.NumVertices() != len(block) {
		t.Fatal("vertex count wrong")
	}
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			if g.Prob(int(v), u) != probs[i] {
				t.Fatal("record graph not symmetric")
			}
		}
	}
}

func TestPairwisePRFPerfect(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2}
	clusters := [][]int{{0, 1}, {2, 3}, {4}}
	p, r, f := PairwisePRF(clusters, truth)
	if p != 1 || r != 1 || f != 1 {
		t.Fatalf("PRF = %v %v %v", p, r, f)
	}
}

func TestPairwisePRFAllMerged(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	clusters := [][]int{{0, 1, 2, 3}}
	p, r, _ := PairwisePRF(clusters, truth)
	// 6 predicted pairs, 2 correct; all true pairs found.
	if math.Abs(p-2.0/6) > 1e-12 || r != 1 {
		t.Fatalf("PRF = %v %v", p, r)
	}
}

func TestPairwisePRFAllSingletons(t *testing.T) {
	truth := []int{0, 0, 1}
	clusters := [][]int{{0}, {1}, {2}}
	p, r, f := PairwisePRF(clusters, truth)
	if p != 1 || r != 0 || f != 0 {
		t.Fatalf("PRF = %v %v %v", p, r, f)
	}
}

func TestPairwisePRFNoTruePairs(t *testing.T) {
	truth := []int{0, 1, 2}
	clusters := [][]int{{0, 1}, {2}}
	p, r, _ := PairwisePRF(clusters, truth)
	if p != 0 || r != 1 {
		t.Fatalf("PRF = %v %v", p, r)
	}
}

func TestResolversProduceValidClusterings(t *testing.T) {
	ds := Generate(Config{}, 150, rng.New(11))
	_, blocks := Blocks(ds)
	block := blocks["Rakesh Kumar"]
	opt := core.Options{N: 200, Steps: 3, Seed: 13}
	for _, alg := range []Resolver{EIF, DISTINCT, SimER, SimDER} {
		clusters, err := Resolve(alg, block, Thresholds{}, opt)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		seen := make([]bool, len(block))
		for _, c := range clusters {
			for _, x := range c {
				if x < 0 || x >= len(block) || seen[x] {
					t.Fatalf("%v: invalid clustering %v", alg, clusters)
				}
				seen[x] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("%v: record %d unassigned", alg, i)
			}
		}
	}
}

func TestResolverQuality(t *testing.T) {
	// All four resolvers must beat the trivial all-singletons baseline
	// (F1 = 0) on clean-ish data, and F1 must be meaningful (≥ 0.3).
	ds := Generate(Config{}, 240, rng.New(17))
	names, blocks := Blocks(ds)
	opt := core.Options{N: 300, Steps: 3, Seed: 19}
	for _, alg := range []Resolver{EIF, DISTINCT, SimER, SimDER} {
		var f1sum float64
		var n int
		for _, name := range names {
			block := blocks[name]
			clusters, err := Resolve(alg, block, Thresholds{}, opt)
			if err != nil {
				t.Fatalf("%v on %q: %v", alg, name, err)
			}
			_, _, f1 := PairwisePRF(clusters, BlockTruth(block))
			f1sum += f1
			n++
		}
		if avg := f1sum / float64(n); avg < 0.3 {
			t.Fatalf("%v average F1 = %v, implausibly low", alg, avg)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	if _, err := Resolve(Resolver(99), nil, Thresholds{}, core.Options{}); err == nil {
		t.Fatal("unknown resolver accepted")
	}
}

func TestResolverStrings(t *testing.T) {
	if EIF.String() != "EIF" || DISTINCT.String() != "DISTINCT" ||
		SimER.String() != "SimER" || SimDER.String() != "SimDER" {
		t.Fatal("resolver names wrong")
	}
}

func TestGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad record count accepted")
		}
	}()
	Generate(Config{}, 0, rng.New(1))
}

package er

import (
	"fmt"

	"usimrank/internal/core"
	"usimrank/internal/detsim"
	"usimrank/internal/graph"
	"usimrank/internal/ugraph"
)

// Thresholds bundles the decision thresholds of the four resolvers. The
// zero value selects calibrated defaults.
type Thresholds struct {
	// EdgeCut drops record-graph edges below this weight (EIF's and
	// SimDER's "discard uncertain edges" step).
	EdgeCut float64
	// Jaccard is EIF's neighbourhood-Jaccard merge threshold.
	Jaccard float64
	// Distinct is the DISTINCT-style combined-evidence merge threshold.
	Distinct float64
	// SimERCut is SimER's merge threshold. The paper uses 0.1 on DBLP;
	// on the synthetic blocks here the uncertain SimRank values
	// concentrate lower (same-author pairs ≈ 0.02–0.08), so the
	// calibrated default is 0.025 (the F1-optimal operating point of a
	// threshold sweep; see EXPERIMENTS.md). The operating point is
	// data-dependent, exactly as a practitioner would tune it.
	SimERCut float64
	// SimDERCut is SimDER's merge threshold on the thresholded
	// deterministic graph, where similarities are larger (0.1, as in the
	// paper).
	SimDERCut float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.EdgeCut == 0 {
		t.EdgeCut = 0.35
	}
	if t.Jaccard == 0 {
		t.Jaccard = 0.30
	}
	if t.Distinct == 0 {
		t.Distinct = 0.40
	}
	if t.SimERCut == 0 {
		t.SimERCut = 0.025
	}
	if t.SimDERCut == 0 {
		t.SimDERCut = 0.10
	}
	return t
}

// Resolver names one of the four ER algorithms.
type Resolver int

// The four resolvers of the case study.
const (
	EIF Resolver = iota
	DISTINCT
	SimER
	SimDER
)

// String implements fmt.Stringer.
func (r Resolver) String() string {
	switch r {
	case EIF:
		return "EIF"
	case DISTINCT:
		return "DISTINCT"
	case SimER:
		return "SimER"
	case SimDER:
		return "SimDER"
	default:
		return fmt.Sprintf("Resolver(%d)", int(r))
	}
}

// Resolve clusters the records of one block with the chosen algorithm
// and returns block-local index clusters. opt configures the SimRank
// engines of SimER/SimDER (decay, steps, sampling).
func Resolve(alg Resolver, block []Record, th Thresholds, opt core.Options) ([][]int, error) {
	th = th.withDefaults()
	switch alg {
	case EIF:
		return runEIF(block, th), nil
	case DISTINCT:
		return runDISTINCT(block, th), nil
	case SimER:
		return runSimER(block, th, opt)
	case SimDER:
		return runSimDER(block, th, opt), nil
	default:
		return nil, fmt.Errorf("er: unknown resolver %d", int(alg))
	}
}

// runEIF follows [22]: drop edges below the weight threshold, then merge
// records whose closed neighbourhoods in the thresholded graph have
// Jaccard similarity at least th.Jaccard.
func runEIF(block []Record, th Thresholds) [][]int {
	g := thresholdedGraph(block, th.EdgeCut)
	uf := newUnionFind(len(block))
	for i := 0; i < len(block); i++ {
		for j := i + 1; j < len(block); j++ {
			if closedNeighbourhoodJaccard(g, i, j) >= th.Jaccard {
				uf.union(i, j)
			}
		}
	}
	return uf.clusters()
}

// runDISTINCT approximates [35]: evidence is a half-half combination of
// coauthor set resemblance and direct link strength; pairs above the
// threshold merge.
func runDISTINCT(block []Record, th Thresholds) [][]int {
	uf := newUnionFind(len(block))
	for i := 0; i < len(block); i++ {
		for j := i + 1; j < len(block); j++ {
			ev := 0.5*setJaccard(block[i].Coauthors, block[j].Coauthors) +
				0.5*RecordSimilarity(block[i], block[j])
			if ev >= th.Distinct {
				uf.union(i, j)
			}
		}
	}
	return uf.clusters()
}

// runSimER treats the record graph as an uncertain graph and merges
// records whose uncertain-graph SimRank similarity reaches the
// threshold, per the paper's SimER. All similarities of a block come
// from one SRSPMatrix call, so each record's counting tables are
// propagated once rather than once per pair.
func runSimER(block []Record, th Thresholds, opt core.Options) ([][]int, error) {
	g := SimilarityGraph(block, 0.05)
	if opt.RowCacheSize == 0 {
		opt.RowCacheSize = len(block) + 1
	}
	e, err := core.NewEngine(g, opt)
	if err != nil {
		return nil, err
	}
	vertices := make([]int, len(block))
	for i := range vertices {
		vertices[i] = i
	}
	sims, err := e.SRSPMatrix(vertices)
	if err != nil {
		return nil, err
	}
	uf := newUnionFind(len(block))
	for i := 0; i < len(block); i++ {
		for j := i + 1; j < len(block); j++ {
			if sims[i][j] >= th.SimERCut {
				uf.union(i, j)
			}
		}
	}
	return uf.clusters(), nil
}

// runSimDER is SimER with uncertainty removed: edges below the cut are
// dropped, the rest become certain, and deterministic SimRank decides.
func runSimDER(block []Record, th Thresholds, opt core.Options) [][]int {
	g := thresholdedGraph(block, th.EdgeCut)
	opt = fillDetOpts(opt)
	uf := newUnionFind(len(block))
	for i := 0; i < len(block); i++ {
		for j := i + 1; j < len(block); j++ {
			if detsim.SinglePair(g, i, j, opt.C, opt.Steps) >= th.SimDERCut {
				uf.union(i, j)
			}
		}
	}
	return uf.clusters()
}

func fillDetOpts(opt core.Options) core.Options {
	if opt.C == 0 {
		opt.C = 0.6
	}
	if opt.Steps == 0 {
		opt.Steps = 5
	}
	return opt
}

// thresholdedGraph is the deterministic record graph keeping edges with
// weight ≥ cut.
func thresholdedGraph(block []Record, cut float64) *graph.Graph {
	b := graph.NewBuilder(len(block))
	for i := 0; i < len(block); i++ {
		for j := i + 1; j < len(block); j++ {
			if RecordSimilarity(block[i], block[j]) >= cut {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

// closedNeighbourhoodJaccard is the Jaccard similarity of {u} ∪ N(u) and
// {v} ∪ N(v).
func closedNeighbourhoodJaccard(g *graph.Graph, u, v int) float64 {
	su := map[int32]bool{int32(u): true}
	for _, w := range g.Out(u) {
		su[w] = true
	}
	sv := map[int32]bool{int32(v): true}
	for _, w := range g.Out(v) {
		sv[w] = true
	}
	inter := 0
	for w := range su {
		if sv[w] {
			inter++
		}
	}
	union := len(su) + len(sv) - inter
	return float64(inter) / float64(union)
}

// BlockTruth extracts the truth vector (author per block-local record).
func BlockTruth(block []Record) []int {
	t := make([]int, len(block))
	for i, r := range block {
		t[i] = r.AuthorID
	}
	return t
}

// ugraphOf is a test hook: expose the uncertain record graph used by
// SimER for inspection.
func ugraphOf(block []Record) *ugraph.Graph { return SimilarityGraph(block, 0.05) }

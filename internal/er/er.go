// Package er implements the entity-resolution case study of the paper
// (Sec. VII-C): bibliographic records organised as an uncertain
// similarity graph, resolved into real-world authors by four algorithms —
// EIF (threshold + neighbourhood Jaccard, [22]), a DISTINCT-style
// combination of set resemblance and link evidence [35], SimER (the
// paper's uncertain-graph SimRank inside the EIF framework) and SimDER
// (deterministic SimRank inside the same framework).
//
// The DBLP author records the paper uses are not redistributable, so the
// package generates synthetic datasets with the same character: a small
// set of ambiguous names each shared by several distinct authors
// (Table IV), records carrying noisy coauthor/venue/topic evidence, and
// pairwise record similarities normalised into [0, 1] that are naturally
// read as edge existence probabilities.
package er

import (
	"fmt"
	"sort"

	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// Author is a ground-truth entity.
type Author struct {
	ID     int
	Name   string
	people []int // frequent coauthors (IDs into an abstract pool)
	venues []int
	topics []int
}

// Record is one bibliographic record referring to an author.
type Record struct {
	ID        int
	Name      string
	AuthorID  int // ground truth
	Coauthors []int
	Venue     int
	Topics    []int
}

// Dataset is a generated corpus of records with ground truth.
type Dataset struct {
	Records []Record
	Authors []Author
}

// NameSpec declares an ambiguous name and how many distinct authors
// share it.
type NameSpec struct {
	Name    string
	Authors int
}

// Config parameterises Generate.
type Config struct {
	// Names lists the ambiguous names. DefaultNames mirrors Table IV.
	Names []NameSpec
	// CoauthorPool, VenuePool, TopicPool size the attribute universes.
	CoauthorPool, VenuePool, TopicPool int
	// ProfileCoauthors is the number of frequent collaborators per author.
	ProfileCoauthors int
	// CoauthorsPerRecord is the number of coauthors listed on a record.
	CoauthorsPerRecord int
	// Noise is the probability that a record attribute is random rather
	// than drawn from the author's profile.
	Noise float64
}

// DefaultNames mirrors the ambiguous author names of the paper's
// Table IV (including Bin Yu, which appears in Table V).
func DefaultNames() []NameSpec {
	return []NameSpec{
		{"Hui Fang", 3},
		{"Ajay Gupta", 4},
		{"Rakesh Kumar", 2},
		{"Michael Wagner", 5},
		{"Bing Liu", 6},
		{"Jim Smith", 3},
		{"Wei Wang", 14},
		{"Bin Yu", 5},
	}
}

// DefaultConfig returns a Table-IV-like configuration.
func DefaultConfig() Config {
	return Config{
		Names:              DefaultNames(),
		CoauthorPool:       600,
		VenuePool:          40,
		TopicPool:          60,
		ProfileCoauthors:   8,
		CoauthorsPerRecord: 3,
		Noise:              0.15,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Names == nil {
		c.Names = d.Names
	}
	if c.CoauthorPool == 0 {
		c.CoauthorPool = d.CoauthorPool
	}
	if c.VenuePool == 0 {
		c.VenuePool = d.VenuePool
	}
	if c.TopicPool == 0 {
		c.TopicPool = d.TopicPool
	}
	if c.ProfileCoauthors == 0 {
		c.ProfileCoauthors = d.ProfileCoauthors
	}
	if c.CoauthorsPerRecord == 0 {
		c.CoauthorsPerRecord = d.CoauthorsPerRecord
	}
	if c.Noise == 0 {
		c.Noise = d.Noise
	}
	return c
}

// Generate builds a dataset of approximately totalRecords records spread
// evenly over the configured authors.
func Generate(cfg Config, totalRecords int, r *rng.RNG) *Dataset {
	cfg = cfg.withDefaults()
	if totalRecords < 1 {
		panic(fmt.Sprintf("er: bad record count %d", totalRecords))
	}
	ds := &Dataset{}
	for _, ns := range cfg.Names {
		for a := 0; a < ns.Authors; a++ {
			author := Author{ID: len(ds.Authors), Name: ns.Name}
			for i := 0; i < cfg.ProfileCoauthors; i++ {
				author.people = append(author.people, r.Intn(cfg.CoauthorPool))
			}
			for i := 0; i < 2; i++ {
				author.venues = append(author.venues, r.Intn(cfg.VenuePool))
			}
			for i := 0; i < 3; i++ {
				author.topics = append(author.topics, r.Intn(cfg.TopicPool))
			}
			ds.Authors = append(ds.Authors, author)
		}
	}
	perAuthor := totalRecords / len(ds.Authors)
	if perAuthor < 1 {
		perAuthor = 1
	}
	for _, a := range ds.Authors {
		n := perAuthor + r.Intn(perAuthor+1) - perAuthor/2 // jitter around target
		if n < 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			rec := Record{ID: len(ds.Records), Name: a.Name, AuthorID: a.ID}
			for j := 0; j < cfg.CoauthorsPerRecord; j++ {
				if r.Bool(cfg.Noise) {
					rec.Coauthors = append(rec.Coauthors, r.Intn(cfg.CoauthorPool))
				} else {
					rec.Coauthors = append(rec.Coauthors, a.people[r.Intn(len(a.people))])
				}
			}
			if r.Bool(cfg.Noise) {
				rec.Venue = r.Intn(cfg.VenuePool)
			} else {
				rec.Venue = a.venues[r.Intn(len(a.venues))]
			}
			for j := 0; j < 2; j++ {
				if r.Bool(cfg.Noise) {
					rec.Topics = append(rec.Topics, r.Intn(cfg.TopicPool))
				} else {
					rec.Topics = append(rec.Topics, a.topics[r.Intn(len(a.topics))])
				}
			}
			ds.Records = append(ds.Records, rec)
		}
	}
	return ds
}

// Blocks groups records by ambiguous name: entity resolution runs within
// each block independently. Names are returned in sorted order.
func Blocks(ds *Dataset) ([]string, map[string][]Record) {
	m := make(map[string][]Record)
	for _, rec := range ds.Records {
		m[rec.Name] = append(m[rec.Name], rec)
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, m
}

// setJaccard computes the Jaccard similarity of two small int multisets
// treated as sets.
func setJaccard(a, b []int) float64 {
	sa := make(map[int]bool, len(a))
	for _, x := range a {
		sa[x] = true
	}
	sb := make(map[int]bool, len(b))
	for _, x := range b {
		sb[x] = true
	}
	inter := 0
	for x := range sa {
		if sb[x] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// RecordSimilarity is the normalised attribute similarity of two records
// in [0, 1]: a weighted combination of coauthor overlap, venue match and
// topic overlap. This is the edge weight of the record graph, and — as
// the paper argues — naturally an existence probability.
func RecordSimilarity(a, b Record) float64 {
	s := 0.6*setJaccard(a.Coauthors, b.Coauthors) + 0.2*setJaccard(a.Topics, b.Topics)
	if a.Venue == b.Venue {
		s += 0.2
	}
	return s
}

// SimilarityGraph builds the uncertain record graph of one block:
// vertices are block-local record indices, undirected edges carry the
// attribute similarity as existence probability. Edges below minWeight
// are dropped (they would be probability ≈ 0 anyway).
func SimilarityGraph(block []Record, minWeight float64) *ugraph.Graph {
	b := ugraph.NewBuilder(len(block))
	for i := 0; i < len(block); i++ {
		for j := i + 1; j < len(block); j++ {
			if w := RecordSimilarity(block[i], block[j]); w > minWeight {
				if w > 1 {
					w = 1
				}
				b.AddEdge(i, j, w)
			}
		}
	}
	return b.MustBuild()
}

// unionFind is a standard disjoint-set forest.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

func (u *unionFind) clusters() [][]int {
	byRoot := make(map[int][]int)
	for i := range u.parent {
		r := u.find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(byRoot))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// PairwisePRF computes pairwise precision, recall and F1 of predicted
// clusters (block-local indices) against truth (truth[i] = author of
// record i). Conventions: with no predicted pairs precision is 1; with
// no true pairs recall is 1; F1 is 0 when precision + recall is 0.
func PairwisePRF(clusters [][]int, truth []int) (prec, rec, f1 float64) {
	inCluster := make([]int, len(truth))
	for i := range inCluster {
		inCluster[i] = -1
	}
	for ci, c := range clusters {
		for _, x := range c {
			inCluster[x] = ci
		}
	}
	var tp, predPairs, truePairs int
	for i := 0; i < len(truth); i++ {
		for j := i + 1; j < len(truth); j++ {
			pred := inCluster[i] >= 0 && inCluster[i] == inCluster[j]
			same := truth[i] == truth[j]
			if pred {
				predPairs++
			}
			if same {
				truePairs++
			}
			if pred && same {
				tp++
			}
		}
	}
	prec = 1
	if predPairs > 0 {
		prec = float64(tp) / float64(predPairs)
	}
	rec = 1
	if truePairs > 0 {
		rec = float64(tp) / float64(truePairs)
	}
	if prec+rec > 0 {
		f1 = 2 * prec * rec / (prec + rec)
	}
	return prec, rec, f1
}

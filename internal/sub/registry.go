package sub

import (
	"sync"
	"sync/atomic"
	"time"
)

// AnyVertex is a sentinel watch entry: a subscription whose watch set
// contains AnyVertex is woken by every update batch whose invalidation
// set is non-empty, regardless of which vertices it touched. Shapes
// whose answer depends on every vertex's walk distribution — top-k of
// u and the unrestricted single-source vector — must watch AnyVertex:
// a changed v-side row can move any candidate's score even when the
// query's own source vertex is provably unaffected.
const AnyVertex int32 = -1

// Subscription is one client's standing interest in a query shape. It
// is created by Registry.Subscribe and owned by the goroutine serving
// the client's stream; the registry only ever touches its pending
// generation, so the wake path stays lock-free per subscription.
type Subscription struct {
	vertices  []int32
	staleness time.Duration

	// pending is the newest generation whose answer this subscription
	// still owes its client, 0 when clean. Serving generations start at
	// 1, so 0 is a safe sentinel. It only grows: a wake with an older
	// generation than the pending one is absorbed without effect.
	pending atomic.Uint64
	// wake carries the clean→dirty edge to the streaming goroutine.
	// Buffered by one: a wake never blocks the update path, and a
	// subscription that is already signalled needs no second token.
	wake chan struct{}
}

// Wait returns the channel signalled on the subscription's clean→dirty
// edge. After receiving, call Claim to learn the target generation.
func (s *Subscription) Wait() <-chan struct{} { return s.wake }

// Claim atomically takes the pending generation (0 when the
// subscription is clean), marking the subscription clean again. Wakes
// arriving after the claim re-signal, so no generation is ever lost.
func (s *Subscription) Claim() uint64 { return s.pending.Swap(0) }

// Pending returns the pending generation without claiming it.
func (s *Subscription) Pending() uint64 { return s.pending.Load() }

// Staleness is the subscription's negotiated staleness SLA: how long
// the streamer may sit on a wake-up collecting further generations
// before it must push.
func (s *Subscription) Staleness() time.Duration { return s.staleness }

// Vertices returns the watched vertex set (read-only).
func (s *Subscription) Vertices() []int32 { return s.vertices }

// offer marks gen pending. It reports whether this was a clean→dirty
// wake (the streamer got signalled) or a coalesce into an already
// pending push.
func (s *Subscription) offer(gen uint64) (woken, coalesced bool) {
	for {
		cur := s.pending.Load()
		if cur >= gen {
			// Already owes this generation or newer: the pending push
			// covers it.
			return false, true
		}
		if !s.pending.CompareAndSwap(cur, gen) {
			continue
		}
		if cur != 0 {
			return false, true
		}
		select {
		case s.wake <- struct{}{}:
		default:
		}
		return true, false
	}
}

// Stats is a snapshot of the registry's counters.
type Stats struct {
	// Active is the number of registered subscriptions.
	Active int64
	// Lookups counts inverted-index probes performed by Wake — exactly
	// one per touched vertex per batch, independent of how many
	// subscriptions exist.
	Lookups uint64
	// Wakeups counts clean→dirty subscription transitions; Coalesced
	// counts wake-ups absorbed into an already pending push.
	Wakeups   uint64
	Coalesced uint64
	// Pushes and Dropped are noted by the streaming side: answers
	// delivered, and subscriptions torn down while still owing one.
	Pushes  uint64
	Dropped uint64
}

// Registry indexes live subscriptions by watched vertex and fans
// update wake-ups out to exactly the affected ones. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	byVertex map[int32]map[*Subscription]struct{}
	wildcard map[*Subscription]struct{} // watch sets containing AnyVertex
	all      map[*Subscription]struct{}
	closed   bool
	idle     chan struct{} // closed once Shutdown has run and Active is 0

	shutdown chan struct{}
	once     sync.Once

	active    atomic.Int64
	lookups   atomic.Uint64
	wakeups   atomic.Uint64
	coalesced atomic.Uint64
	pushes    atomic.Uint64
	dropped   atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byVertex: make(map[int32]map[*Subscription]struct{}),
		wildcard: make(map[*Subscription]struct{}),
		all:      make(map[*Subscription]struct{}),
		idle:     make(chan struct{}),
		shutdown: make(chan struct{}),
	}
}

// Subscribe registers a subscription watching vertices (which may be
// empty for streams that only want lifecycle tracking, like the
// cluster coordinator's relays) with the given staleness SLA. A watch
// set containing AnyVertex registers in the wildcard bucket instead of
// the per-vertex index: every non-empty Wake reaches it. It returns
// nil when the registry is already shutting down — the caller must
// refuse the stream rather than serve one that will never see a
// terminal event.
func (r *Registry) Subscribe(vertices []int32, staleness time.Duration) *Subscription {
	s := &Subscription{
		vertices:  vertices,
		staleness: staleness,
		wake:      make(chan struct{}, 1),
	}
	any := false
	for _, v := range vertices {
		if v == AnyVertex {
			any = true
			break
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.all[s] = struct{}{}
	if any {
		// The wildcard subsumes every per-vertex bucket; indexing the
		// rest of the watch set would only double-count wakes.
		r.wildcard[s] = struct{}{}
	} else {
		for _, v := range vertices {
			bucket := r.byVertex[v]
			if bucket == nil {
				bucket = make(map[*Subscription]struct{})
				r.byVertex[v] = bucket
			}
			bucket[s] = struct{}{}
		}
	}
	r.mu.Unlock()
	r.active.Add(1)
	return s
}

// Unsubscribe removes s from the index. Idempotent.
func (r *Registry) Unsubscribe(s *Subscription) {
	r.mu.Lock()
	if _, ok := r.all[s]; !ok {
		r.mu.Unlock()
		return
	}
	delete(r.all, s)
	delete(r.wildcard, s)
	for _, v := range s.vertices {
		if bucket := r.byVertex[v]; bucket != nil {
			delete(bucket, s)
			if len(bucket) == 0 {
				delete(r.byVertex, v)
			}
		}
	}
	closeIdle := r.closed && len(r.all) == 0
	r.mu.Unlock()
	r.active.Add(-1)
	if closeIdle {
		r.closeIdle()
	}
}

func (r *Registry) closeIdle() {
	// Guarded by the closed+empty transition happening at most once:
	// Subscribe refuses new entries after Shutdown, so the map can
	// never repopulate. The select keeps a racing double-call safe.
	select {
	case <-r.idle:
	default:
		close(r.idle)
	}
}

// Wake marks every subscription watching one of the touched vertices —
// plus every wildcard (AnyVertex) subscription — dirty for generation
// gen and reports how many clean subscriptions were signalled. Cost is
// one map lookup per touched vertex plus work proportional to the
// number of affected subscriptions — a million idle vertex-keyed
// subscriptions elsewhere cost nothing. Wildcard subscriptions pay
// O(1) each per non-empty batch, which is inherent: their answers
// depend on every vertex's walk distribution.
func (r *Registry) Wake(touched []int32, gen uint64) int {
	if len(touched) == 0 {
		return 0
	}
	r.lookups.Add(uint64(len(touched)))
	woken := 0
	var seen map[*Subscription]struct{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range touched {
		bucket := r.byVertex[v]
		if bucket == nil {
			continue
		}
		for s := range bucket {
			// A score subscription watches two vertices; an update batch
			// touching both must wake it once, not wake-then-coalesce.
			if _, dup := seen[s]; dup {
				continue
			}
			if seen == nil {
				seen = make(map[*Subscription]struct{})
			}
			seen[s] = struct{}{}
			if w, c := s.offer(gen); w {
				woken++
				r.wakeups.Add(1)
			} else if c {
				r.coalesced.Add(1)
			}
		}
	}
	for s := range r.wildcard {
		if w, c := s.offer(gen); w {
			woken++
			r.wakeups.Add(1)
		} else if c {
			r.coalesced.Add(1)
		}
	}
	return woken
}

// WakeAll marks every subscription dirty for gen — the reload path,
// where no invalidation set exists because everything may have changed.
func (r *Registry) WakeAll(gen uint64) int {
	woken := 0
	r.mu.Lock()
	defer r.mu.Unlock()
	for s := range r.all {
		if w, c := s.offer(gen); w {
			woken++
			r.wakeups.Add(1)
		} else if c {
			r.coalesced.Add(1)
		}
	}
	return woken
}

// Shutdown closes the broadcast channel every streamer selects on, so
// live streams send their terminal event and unsubscribe. Idempotent;
// Subscribe refuses new registrations afterwards.
func (r *Registry) Shutdown() {
	r.once.Do(func() {
		r.mu.Lock()
		r.closed = true
		empty := len(r.all) == 0
		r.mu.Unlock()
		close(r.shutdown)
		if empty {
			r.closeIdle()
		}
	})
}

// ShuttingDown returns the channel closed by Shutdown.
func (r *Registry) ShuttingDown() <-chan struct{} { return r.shutdown }

// AwaitIdle blocks until every subscription has unsubscribed after a
// Shutdown, or the timeout elapses; it reports which happened.
func (r *Registry) AwaitIdle(timeout time.Duration) bool {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-r.idle:
		return true
	case <-t.C:
		return false
	}
}

// NotePush and NoteDropped feed the streaming side's counters.
func (r *Registry) NotePush()    { r.pushes.Add(1) }
func (r *Registry) NoteDropped() { r.dropped.Add(1) }

// Snapshot returns the current counter values.
func (r *Registry) Snapshot() Stats {
	return Stats{
		Active:    r.active.Load(),
		Lookups:   r.lookups.Load(),
		Wakeups:   r.wakeups.Load(),
		Coalesced: r.coalesced.Load(),
		Pushes:    r.pushes.Load(),
		Dropped:   r.dropped.Load(),
	}
}

package sub

import (
	"bufio"
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWakeTouchesOnlyWatchers(t *testing.T) {
	r := NewRegistry()
	a := r.Subscribe([]int32{1}, 0)
	b := r.Subscribe([]int32{2}, 0)
	c := r.Subscribe([]int32{3}, 0)

	if woken := r.Wake([]int32{1, 2}, 7); woken != 2 {
		t.Fatalf("Wake woke %d subscriptions, want 2", woken)
	}
	if got := a.Claim(); got != 7 {
		t.Fatalf("a claimed generation %d, want 7", got)
	}
	if got := b.Pending(); got != 7 {
		t.Fatalf("b pending generation %d, want 7", got)
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("c pending generation %d, want clean (0)", got)
	}
	select {
	case <-c.Wait():
		t.Fatal("unwatched subscription was signalled")
	default:
	}
	select {
	case <-a.Wait():
	default:
		t.Fatal("woken subscription was not signalled")
	}
}

// TestWakeCostIsPerTouchedVertex pins the idle-cost model: a batch
// touching k vertices performs exactly k inverted-index lookups no
// matter how many subscriptions are registered.
func TestWakeCostIsPerTouchedVertex(t *testing.T) {
	r := NewRegistry()
	for v := int32(0); v < 1000; v++ {
		r.Subscribe([]int32{v}, 0)
	}
	before := r.Snapshot().Lookups
	touched := []int32{5, 9, 1003} // 1003 watches nobody
	if woken := r.Wake(touched, 2); woken != 2 {
		t.Fatalf("woke %d, want 2", woken)
	}
	if got := r.Snapshot().Lookups - before; got != uint64(len(touched)) {
		t.Fatalf("wake performed %d lookups for %d touched vertices", got, len(touched))
	}
}

func TestWakeCoalescesGenerations(t *testing.T) {
	r := NewRegistry()
	s := r.Subscribe([]int32{4}, 0)

	if woken := r.Wake([]int32{4}, 2); woken != 1 {
		t.Fatal("first wake should signal")
	}
	// Two more generations before the streamer claims: both coalesce,
	// and the claim sees only the newest.
	if woken := r.Wake([]int32{4}, 3); woken != 0 {
		t.Fatal("second wake must coalesce, not re-signal")
	}
	if woken := r.Wake([]int32{4}, 4); woken != 0 {
		t.Fatal("third wake must coalesce, not re-signal")
	}
	st := r.Snapshot()
	if st.Wakeups != 1 || st.Coalesced != 2 {
		t.Fatalf("wakeups=%d coalesced=%d, want 1 and 2", st.Wakeups, st.Coalesced)
	}
	if got := s.Claim(); got != 4 {
		t.Fatalf("claimed generation %d, want the newest (4)", got)
	}
	if got := s.Claim(); got != 0 {
		t.Fatalf("second claim got %d, want clean (0)", got)
	}
	// A stale wake (generation already covered) is absorbed silently.
	s.offer(5)
	if woken, coalesced := s.offer(5); woken || !coalesced {
		t.Fatalf("duplicate-generation offer: woken=%v coalesced=%v", woken, coalesced)
	}
}

// TestScoreShapeWakesOnceForBothEndpoints: a subscription watching two
// vertices (a score shape) is woken exactly once when a batch touches
// both, with no phantom coalesce.
func TestScoreShapeWakesOnceForBothEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Subscribe([]int32{1, 2}, 0)
	if woken := r.Wake([]int32{1, 2}, 9); woken != 1 {
		t.Fatalf("woke %d, want exactly 1", woken)
	}
	st := r.Snapshot()
	if st.Wakeups != 1 || st.Coalesced != 0 {
		t.Fatalf("wakeups=%d coalesced=%d, want 1 and 0", st.Wakeups, st.Coalesced)
	}
}

func TestWakeAllAndUnsubscribe(t *testing.T) {
	r := NewRegistry()
	a := r.Subscribe([]int32{1}, 0)
	b := r.Subscribe([]int32{2}, 0)
	r.Unsubscribe(a)
	r.Unsubscribe(a) // idempotent
	if woken := r.WakeAll(3); woken != 1 {
		t.Fatalf("WakeAll woke %d, want 1", woken)
	}
	if a.Pending() != 0 {
		t.Fatal("unsubscribed subscription was woken")
	}
	if b.Pending() != 3 {
		t.Fatal("live subscription missed WakeAll")
	}
	if got := r.Snapshot().Active; got != 1 {
		t.Fatalf("active=%d, want 1", got)
	}
}

func TestShutdownBroadcastAndAwaitIdle(t *testing.T) {
	r := NewRegistry()
	s := r.Subscribe([]int32{1}, 0)

	if r.AwaitIdle(time.Millisecond) {
		t.Fatal("AwaitIdle reported idle before Shutdown")
	}
	done := make(chan struct{})
	go func() {
		<-r.ShuttingDown()
		r.Unsubscribe(s)
		close(done)
	}()
	r.Shutdown()
	r.Shutdown() // idempotent
	if !r.AwaitIdle(5 * time.Second) {
		t.Fatal("AwaitIdle timed out after the last unsubscribe")
	}
	<-done
	if got := r.Subscribe([]int32{2}, 0); got != nil {
		t.Fatal("Subscribe succeeded after Shutdown")
	}
}

func TestShutdownWithNoSubscribersIsImmediatelyIdle(t *testing.T) {
	r := NewRegistry()
	r.Shutdown()
	if !r.AwaitIdle(time.Second) {
		t.Fatal("empty registry not idle after Shutdown")
	}
}

// TestConcurrentWakeAndChurn exercises the registry under the race
// detector: wakes racing subscribe/unsubscribe churn and claims.
func TestConcurrentWakeAndChurn(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			gen := uint64(1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen++
				r.Wake([]int32{seed, seed + 1}, gen)
			}
		}(int32(w))
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(v int32) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := r.Subscribe([]int32{v, v + 1}, 0)
				s.Claim()
				r.Unsubscribe(s)
			}
		}(int32(w))
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := r.Snapshot().Active; got != 0 {
		t.Fatalf("active=%d after churn, want 0", got)
	}
}

func TestEventFramingRoundTrip(t *testing.T) {
	payload := []byte("{\n  \"score\": 0.25\n}\n")
	var buf bytes.Buffer
	if err := WriteEvent(&buf, "update", 7, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteComment(&buf, "heartbeat"); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvent(&buf, "shutdown", 0, []byte("bye")); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(&buf)
	f, err := ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "update" || f.ID() != 7 {
		t.Fatalf("frame name=%q id=%d, want update/7", f.Name(), f.ID())
	}
	if got := f.Data(); !bytes.Equal(got, payload) {
		t.Fatalf("payload did not round-trip:\n got %q\nwant %q", got, payload)
	}
	// A relayed frame is byte-identical to the original wire form.
	var relay bytes.Buffer
	if err := f.Forward(&relay); err != nil {
		t.Fatal(err)
	}
	if want := "event: update\nid: 7\ndata: {\ndata:   \"score\": 0.25\ndata: }\n\n"; relay.String() != want {
		t.Fatalf("relayed frame %q, want %q", relay.String(), want)
	}

	hb, err := ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if !hb.Comment() || hb.Name() != "" || hb.Data() != nil {
		t.Fatalf("heartbeat parsed as %+v", hb)
	}

	bye, err := ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if bye.Name() != "shutdown" || bye.ID() != 0 || string(bye.Data()) != "bye\n" {
		t.Fatalf("terminal frame parsed as name=%q id=%d data=%q", bye.Name(), bye.ID(), bye.Data())
	}
	if _, err := ReadFrame(br); err == nil {
		t.Fatal("expected EOF after the last frame")
	}
}

func TestReadFrameMidFrameEOF(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("event: update\nid: 3\n"))
	if _, err := ReadFrame(br); err == nil {
		t.Fatal("expected an error for a truncated frame")
	}
}

// TestSubscriptionAccessors pins the read-only accessors the serving
// plane relies on for vertex-range re-checks and stats.
func TestSubscriptionAccessors(t *testing.T) {
	r := NewRegistry()
	su := r.Subscribe([]int32{4, 9}, 25*time.Millisecond)
	if got := su.Vertices(); len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Fatalf("Vertices() = %v, want [4 9]", got)
	}
	if su.Staleness() != 25*time.Millisecond {
		t.Fatalf("Staleness() = %v", su.Staleness())
	}
	r.NoteDropped()
	if st := r.Snapshot(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

// TestWildcardSubscription pins AnyVertex semantics: a wildcard
// subscription is woken by every non-empty Wake regardless of which
// vertices were touched, absorbs repeat wakes into the pending push,
// never fires on an empty invalidation set, and unregisters cleanly.
func TestWildcardSubscription(t *testing.T) {
	r := NewRegistry()
	wild := r.Subscribe([]int32{AnyVertex}, 0)
	keyed := r.Subscribe([]int32{7}, 0)

	if woken := r.Wake(nil, 2); woken != 0 {
		t.Fatalf("empty touched set woke %d subscriptions, want 0", woken)
	}
	if wild.Pending() != 0 {
		t.Fatal("wildcard marked dirty by an empty invalidation set")
	}

	// A touched vertex nobody watches by key still reaches the wildcard.
	if woken := r.Wake([]int32{3}, 2); woken != 1 {
		t.Fatalf("Wake({3}) woke %d, want 1 (the wildcard)", woken)
	}
	if wild.Pending() != 2 {
		t.Fatalf("wildcard pending %d, want 2", wild.Pending())
	}
	if keyed.Pending() != 0 {
		t.Fatal("vertex-keyed subscription woken by an unwatched vertex")
	}

	// A second batch before the claim coalesces, carrying the newest
	// generation.
	if woken := r.Wake([]int32{9}, 3); woken != 0 {
		t.Fatalf("Wake before claim woke %d, want 0 (coalesce)", woken)
	}
	if got := wild.Claim(); got != 3 {
		t.Fatalf("claimed generation %d, want 3", got)
	}
	ss := r.Snapshot()
	if ss.Wakeups != 1 || ss.Coalesced != 1 {
		t.Fatalf("wakeups=%d coalesced=%d, want 1 and 1", ss.Wakeups, ss.Coalesced)
	}

	r.Unsubscribe(wild)
	if woken := r.Wake([]int32{3}, 4); woken != 0 {
		t.Fatalf("unsubscribed wildcard still woken (%d)", woken)
	}
}

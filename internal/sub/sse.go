package sub

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Server-Sent Events framing. One frame is a group of lines terminated
// by a blank line; field lines are "name: value"; lines starting with
// ':' are comments (keep-alives). The payload of an event is its data
// lines joined by newlines — WriteEvent and Frame.Data are exact
// inverses, so a payload round-trips byte-identically through the wire.

// WriteEvent writes one event frame: the event name, a numeric id (the
// graph generation; 0 omits the id line), and the payload split into
// data lines. The payload's single trailing newline, if present, is
// carried by the framing itself and restored by Frame.Data.
func WriteEvent(w io.Writer, event string, id uint64, payload []byte) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "event: %s\n", event)
	if id > 0 {
		fmt.Fprintf(&b, "id: %d\n", id)
	}
	for _, line := range bytes.Split(bytes.TrimSuffix(payload, []byte("\n")), []byte("\n")) {
		b.WriteString("data: ")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := w.Write(b.Bytes())
	return err
}

// WriteComment writes a comment frame — the SSE keep-alive heartbeat.
func WriteComment(w io.Writer, text string) error {
	_, err := fmt.Fprintf(w, ": %s\n\n", text)
	return err
}

// Frame is one raw SSE frame as read off the wire.
type Frame struct {
	// Lines are the frame's lines without their trailing newlines and
	// without the blank terminator.
	Lines []string
}

// field returns the value of the first "name: value" line, "" if none.
func (f *Frame) field(name string) (string, bool) {
	prefix := name + ": "
	for _, l := range f.Lines {
		if strings.HasPrefix(l, prefix) {
			return l[len(prefix):], true
		}
	}
	return "", false
}

// Name returns the frame's event name ("" for comment frames).
func (f *Frame) Name() string {
	v, _ := f.field("event")
	return v
}

// ID returns the frame's numeric event id, 0 when absent or malformed.
func (f *Frame) ID() uint64 {
	v, ok := f.field("id")
	if !ok {
		return 0
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// Comment reports whether the frame carries only comment lines.
func (f *Frame) Comment() bool {
	for _, l := range f.Lines {
		if !strings.HasPrefix(l, ":") {
			return false
		}
	}
	return len(f.Lines) > 0
}

// Data reassembles the frame's payload: data lines joined by newlines
// plus the trailing newline WriteEvent trimmed. Nil when the frame has
// no data lines.
func (f *Frame) Data() []byte {
	var b bytes.Buffer
	found := false
	for _, l := range f.Lines {
		if strings.HasPrefix(l, "data: ") {
			if found {
				b.WriteByte('\n')
			}
			b.WriteString(l[len("data: "):])
			found = true
		}
	}
	if !found {
		return nil
	}
	b.WriteByte('\n')
	return b.Bytes()
}

// Forward writes the frame back out verbatim, blank terminator
// included — the cluster relay's forwarding primitive.
func (f *Frame) Forward(w io.Writer) error {
	var b bytes.Buffer
	for _, l := range f.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := w.Write(b.Bytes())
	return err
}

// ReadFrame reads the next frame, blocking until its blank terminator
// arrives. io.EOF before any line means the stream ended cleanly
// between frames; EOF mid-frame surfaces as io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader) (*Frame, error) {
	var f Frame
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF && len(f.Lines) > 0 {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		line = strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r")
		if line == "" {
			if len(f.Lines) == 0 {
				continue // tolerate extra blank lines between frames
			}
			return &f, nil
		}
		f.Lines = append(f.Lines, line)
	}
}

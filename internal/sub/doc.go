// Package sub is the continuous-query plane's subscription substrate:
// the bookkeeping that lets a serving process hold an arbitrary number
// of idle push subscriptions at ~zero cost and wake exactly the ones an
// update batch can have affected.
//
// # Model
//
// A [Subscription] watches the vertices whose reverse-walk
// distributions its answer depends on — both endpoints of a score
// shape, the source plus every candidate of a restricted single-source
// shape. The [Registry] keeps a vertex→subscriptions inverted index,
// so waking the subscribers of an update batch is one map lookup per
// touched vertex (O(k) for a batch whose invalidation BFS touched k
// sources), never a scan over the subscription population. Idle
// subscriptions consume one registry entry per watched vertex and one
// parked goroutine on their HTTP stream; the update path never
// allocates, signals, or iterates on their behalf.
//
// Shapes that evaluate their source against every vertex — top-k of u
// and the unrestricted single-source vector — cannot enumerate a small
// watch set: a changed v-side row moves a candidate's score even when
// u itself is untouched. They watch the [AnyVertex] sentinel and are
// woken by every batch with a non-empty invalidation set, paying O(1)
// per non-empty batch each; a netted-out batch still wakes nobody.
//
// Wake-ups carry the graph generation whose answers they invalidate. A
// subscription holds at most one pending generation: waking an
// already-dirty subscription folds the newer generation into the
// pending push (counted as a coalesce), so a burst of update batches
// costs each subscriber one recompute carrying the latest generation,
// not one per batch. The subscriber side claims the pending generation,
// recomputes, and pushes — under whatever staleness SLA it negotiated.
//
// # Wire format
//
// The serving plane streams subscriptions as Server-Sent Events;
// [WriteEvent], [WriteComment], and [ReadFrame] implement the framing
// (event/id/data lines, comment keep-alives, frame reassembly). The
// event payload is the exact JSON body a cold query of the same shape
// would return, so a pushed answer is byte-identical to a polled one.
//
// The package has no HTTP or engine dependencies: internal/server wires
// it to the engine's invalidation BFS and the SSE endpoint, and
// internal/cluster reuses the registry to track relayed streams.
package sub

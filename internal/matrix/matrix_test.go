package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"usimrank/internal/rng"
)

func TestFromMapCanonical(t *testing.T) {
	v := FromMap(map[int32]float64{5: 2, 1: 3, 9: 0, 3: -1})
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	wantIdx := []int32{1, 3, 5}
	wantVal := []float64{3, -1, 2}
	for i := range wantIdx {
		if v.Idx[i] != wantIdx[i] || v.Val[i] != wantVal[i] {
			t.Fatalf("entry %d = (%d,%v)", i, v.Idx[i], v.Val[i])
		}
	}
}

func TestVecAt(t *testing.T) {
	v := FromMap(map[int32]float64{2: 1.5, 7: 2.5})
	if v.At(2) != 1.5 || v.At(7) != 2.5 || v.At(3) != 0 {
		t.Fatal("At wrong")
	}
}

func TestVecDot(t *testing.T) {
	a := FromMap(map[int32]float64{1: 2, 3: 4, 5: 6})
	b := FromMap(map[int32]float64{3: 10, 5: 0.5, 9: 100})
	if got := a.Dot(b); got != 4*10+6*0.5 {
		t.Fatalf("Dot = %v", got)
	}
	if got := b.Dot(a); got != a.Dot(b) {
		t.Fatal("Dot not symmetric")
	}
	if got := a.Dot(Vec{}); got != 0 {
		t.Fatalf("Dot with zero vector = %v", got)
	}
}

func TestVecSumAndClone(t *testing.T) {
	a := FromMap(map[int32]float64{1: 0.25, 2: 0.5})
	if a.Sum() != 0.75 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	c := a.Clone()
	c.Val[0] = 99
	if a.Val[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestUnit(t *testing.T) {
	u := Unit(4)
	if u.Len() != 1 || u.At(4) != 1 || u.Sum() != 1 {
		t.Fatal("Unit wrong")
	}
}

func TestCSRBasics(t *testing.T) {
	b := NewCSRBuilder(3)
	b.Set(0, 1, 0.5)
	b.Set(0, 2, 0.5)
	b.Set(2, 0, 1)
	m := b.MustBuild()
	if m.Dim() != 3 || m.NNZ() != 3 {
		t.Fatalf("dim=%d nnz=%d", m.Dim(), m.NNZ())
	}
	if m.At(0, 1) != 0.5 || m.At(0, 2) != 0.5 || m.At(2, 0) != 1 || m.At(1, 1) != 0 {
		t.Fatal("At wrong")
	}
	idx, val := m.Row(0)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 || val[0] != 0.5 {
		t.Fatalf("Row(0) = %v %v", idx, val)
	}
}

func TestCSRDuplicateRejected(t *testing.T) {
	b := NewCSRBuilder(2)
	b.Set(0, 1, 1)
	b.Set(0, 1, 2)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestLeftMulSmall(t *testing.T) {
	// M = [[0, .5, .5], [0, 0, 1], [1, 0, 0]]
	b := NewCSRBuilder(3)
	b.Set(0, 1, 0.5)
	b.Set(0, 2, 0.5)
	b.Set(1, 2, 1)
	b.Set(2, 0, 1)
	m := b.MustBuild()
	var ws Workspace
	x := Unit(0)
	y := m.LeftMul(&ws, x) // e0ᵀ M = row 0
	if y.At(1) != 0.5 || y.At(2) != 0.5 || y.Len() != 2 {
		t.Fatalf("step1 = %+v", y)
	}
	z := m.LeftMul(&ws, y) // 0.5·row1 + 0.5·row2
	if z.At(0) != 0.5 || z.At(2) != 0.5 || z.Len() != 2 {
		t.Fatalf("step2 = %+v", z)
	}
}

func TestLeftMulMatchesDense(t *testing.T) {
	r := rng.New(12)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(12)
		cb := NewCSRBuilder(n)
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Bool(0.4) {
					v := r.Float64()
					cb.Set(i, j, v)
					d.Set(i, j, v)
				}
			}
		}
		m := cb.MustBuild()
		xm := make(map[int32]float64)
		xd := NewDense(1, n)
		for j := 0; j < n; j++ {
			if r.Bool(0.5) {
				v := r.Float64()
				xm[int32(j)] = v
				xd.Set(0, j, v)
			}
		}
		var ws Workspace
		got := m.LeftMul(&ws, FromMap(xm))
		want := xd.Mul(d)
		for j := 0; j < n; j++ {
			if math.Abs(got.At(int32(j))-want.At(0, j)) > 1e-12 {
				t.Fatalf("n=%d col %d: %v vs %v", n, j, got.At(int32(j)), want.At(0, j))
			}
		}
	}
}

func TestLeftMulWorkspaceReuse(t *testing.T) {
	b := NewCSRBuilder(2)
	b.Set(0, 1, 1)
	b.Set(1, 0, 1)
	m := b.MustBuild()
	var ws Workspace
	x := Unit(0)
	for i := 0; i < 10; i++ {
		x = m.LeftMul(&ws, x)
	}
	// After an even number of swaps we are back at e0.
	if x.Len() != 1 || x.At(0) != 1 {
		t.Fatalf("after 10 swaps: %+v", x)
	}
}

func TestDenseMul(t *testing.T) {
	a := NewDense(2, 3)
	bm := NewDense(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.A, vals)
	copy(bm.A, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(bm)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.A[i] != w {
			t.Fatalf("Mul[%d] = %v, want %v", i, c.A[i], w)
		}
	}
}

func TestDenseMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 2))
}

func TestDenseTranspose(t *testing.T) {
	a := NewDense(2, 3)
	copy(a.A, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape %dx%d", at.Rows, at.Cols)
	}
	if at.At(0, 1) != 4 || at.At(2, 0) != 3 {
		t.Fatal("Transpose wrong")
	}
	// (Aᵀ)ᵀ = A
	if a.MaxAbsDiff(at.Transpose()) != 0 {
		t.Fatal("double transpose changed matrix")
	}
}

func TestIdentityAndAddScaled(t *testing.T) {
	i3 := Identity(3)
	a := NewDense(3, 3)
	copy(a.A, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if a.Mul(i3).MaxAbsDiff(a) != 0 || i3.Mul(a).MaxAbsDiff(a) != 0 {
		t.Fatal("identity not neutral")
	}
	b := a.Clone().AddScaledIdentity(10)
	if b.At(0, 0) != 11 || b.At(1, 1) != 15 || b.At(0, 1) != 2 {
		t.Fatal("AddScaledIdentity wrong")
	}
}

func TestScale(t *testing.T) {
	a := Identity(2).Scale(3)
	if a.At(0, 0) != 3 || a.At(1, 1) != 3 || a.At(0, 1) != 0 {
		t.Fatal("Scale wrong")
	}
}

// Property: dot product agrees with dense accumulation.
func TestQuickDot(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(40)
		am, bm := make(map[int32]float64), make(map[int32]float64)
		for j := 0; j < n; j++ {
			if r.Bool(0.5) {
				am[int32(j)] = r.Float64() - 0.5
			}
			if r.Bool(0.5) {
				bm[int32(j)] = r.Float64() - 0.5
			}
		}
		want := 0.0
		for j, v := range am {
			want += v * bm[j]
		}
		got := FromMap(am).Dot(FromMap(bm))
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random dense matrices.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(8)
		a, b := NewDense(n, n), NewDense(n, n)
		for i := range a.A {
			a.A[i] = r.Float64()
			b.A[i] = r.Float64()
		}
		lhs := a.Mul(b).Transpose()
		rhs := b.Transpose().Mul(a.Transpose())
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

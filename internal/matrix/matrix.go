// Package matrix provides the small linear-algebra substrate used by the
// SimRank algorithms: sorted sparse vectors (rows of transition
// probability matrices), weighted CSR matrices with left row propagation
// (x ← xᵀM, the workhorse of the deterministic and Du-et-al baselines),
// and small dense matrices for the matrix-form SimRank recurrence
// S = cAᵀSA + (1−c)I on graphs small enough to hold S.
package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Vec is a sparse vector with strictly increasing indices. The zero value
// is the zero vector.
type Vec struct {
	Idx []int32
	Val []float64
}

// FromMap builds a canonical Vec from index→value entries, dropping exact
// zeros.
func FromMap(m map[int32]float64) Vec {
	idx := make([]int32, 0, len(m))
	for i, v := range m {
		if v != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	val := make([]float64, len(idx))
	for j, i := range idx {
		val[j] = m[i]
	}
	return Vec{Idx: idx, Val: val}
}

// Unit returns the sparse unit vector e_i.
func Unit(i int32) Vec {
	return Vec{Idx: []int32{i}, Val: []float64{1}}
}

// Len returns the number of stored entries.
func (v Vec) Len() int { return len(v.Idx) }

// At returns the value at index i (0 if absent) by binary search.
func (v Vec) At(i int32) float64 {
	j := sort.Search(len(v.Idx), func(j int) bool { return v.Idx[j] >= i })
	if j < len(v.Idx) && v.Idx[j] == i {
		return v.Val[j]
	}
	return 0
}

// Dot returns the inner product ⟨v, o⟩ via a sorted merge. This is the
// meeting-probability combination m(k)(u,v) = Σ_w Pr(u→k w)·Pr(v→k w) of
// Eq. 12 when v and o are the two k-step rows.
func (v Vec) Dot(o Vec) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(v.Idx) && j < len(o.Idx) {
		switch {
		case v.Idx[i] < o.Idx[j]:
			i++
		case v.Idx[i] > o.Idx[j]:
			j++
		default:
			s += v.Val[i] * o.Val[j]
			i++
			j++
		}
	}
	return s
}

// Sum returns the sum of the entries (≤ 1 for a transition row; < 1 in
// the presence of dead ends).
func (v Vec) Sum() float64 {
	s := 0.0
	for _, x := range v.Val {
		s += x
	}
	return s
}

// Clone returns a deep copy.
func (v Vec) Clone() Vec {
	return Vec{Idx: append([]int32(nil), v.Idx...), Val: append([]float64(nil), v.Val...)}
}

// CSR is a sparse matrix in compressed sparse row form with float64
// weights. Build one with NewCSRBuilder.
type CSR struct {
	n   int
	off []int32
	idx []int32
	val []float64
}

// CSRBuilder accumulates entries for a CSR matrix.
type CSRBuilder struct {
	n       int
	entries []csrEntry
}

type csrEntry struct {
	r, c int32
	v    float64
}

// NewCSRBuilder returns a builder for an n×n CSR matrix.
func NewCSRBuilder(n int) *CSRBuilder {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	return &CSRBuilder{n: n}
}

// Set records entry (r, c) = v. Duplicate coordinates cause Build to fail.
func (b *CSRBuilder) Set(r, c int, v float64) {
	if r < 0 || r >= b.n || c < 0 || c >= b.n {
		panic(fmt.Sprintf("matrix: entry (%d,%d) out of range [0,%d)", r, c, b.n))
	}
	b.entries = append(b.entries, csrEntry{int32(r), int32(c), v})
}

// Build finalises the matrix.
func (b *CSRBuilder) Build() (*CSR, error) {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].r != b.entries[j].r {
			return b.entries[i].r < b.entries[j].r
		}
		return b.entries[i].c < b.entries[j].c
	})
	for i := 1; i < len(b.entries); i++ {
		if b.entries[i].r == b.entries[i-1].r && b.entries[i].c == b.entries[i-1].c {
			return nil, fmt.Errorf("matrix: duplicate entry (%d,%d)", b.entries[i].r, b.entries[i].c)
		}
	}
	m := &CSR{
		n:   b.n,
		off: make([]int32, b.n+1),
		idx: make([]int32, len(b.entries)),
		val: make([]float64, len(b.entries)),
	}
	for _, e := range b.entries {
		m.off[e.r+1]++
	}
	for i := 0; i < b.n; i++ {
		m.off[i+1] += m.off[i]
	}
	fill := make([]int32, b.n)
	for _, e := range b.entries {
		pos := m.off[e.r] + fill[e.r]
		m.idx[pos] = e.c
		m.val[pos] = e.v
		fill[e.r]++
	}
	return m, nil
}

// MustBuild is Build that panics on error.
func (b *CSRBuilder) MustBuild() *CSR {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// Dim returns the matrix dimension n.
func (m *CSR) Dim() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.idx) }

// Row returns the column indices and values of row r; the slices alias
// internal storage.
func (m *CSR) Row(r int) ([]int32, []float64) {
	return m.idx[m.off[r]:m.off[r+1]], m.val[m.off[r]:m.off[r+1]]
}

// At returns entry (r, c) by binary search.
func (m *CSR) At(r, c int) float64 {
	idx, val := m.Row(r)
	i := sort.Search(len(idx), func(i int) bool { return idx[i] >= int32(c) })
	if i < len(idx) && idx[i] == int32(c) {
		return val[i]
	}
	return 0
}

// Workspace holds the dense scratch used by LeftMul. One workspace can be
// reused across calls; it grows on demand.
type Workspace struct {
	acc     []float64
	touched []int32
}

// LeftMul computes the row-vector product xᵀM and returns it as a
// canonical sparse Vec, using ws for scratch. This propagates a
// transition-probability row one step: row(k) = row(k−1)·W.
func (m *CSR) LeftMul(ws *Workspace, x Vec) Vec {
	if len(ws.acc) < m.n {
		ws.acc = make([]float64, m.n)
	}
	ws.touched = ws.touched[:0]
	for i, r := range x.Idx {
		xv := x.Val[i]
		if xv == 0 {
			continue
		}
		idx, val := m.Row(int(r))
		for j, c := range idx {
			if ws.acc[c] == 0 {
				ws.touched = append(ws.touched, c)
			}
			ws.acc[c] += xv * val[j]
		}
	}
	sort.Slice(ws.touched, func(a, b int) bool { return ws.touched[a] < ws.touched[b] })
	out := Vec{Idx: make([]int32, 0, len(ws.touched)), Val: make([]float64, 0, len(ws.touched))}
	for _, c := range ws.touched {
		if v := ws.acc[c]; v != 0 {
			out.Idx = append(out.Idx, c)
			out.Val = append(out.Val, v)
		}
		ws.acc[c] = 0
	}
	return out
}

// Dense is a dense rows×cols matrix in row-major order.
type Dense struct {
	Rows, Cols int
	A          []float64
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimensions")
	}
	return &Dense{Rows: rows, Cols: cols, A: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.A[i*n+i] = 1
	}
	return m
}

// At returns entry (r, c).
func (m *Dense) At(r, c int) float64 { return m.A[r*m.Cols+c] }

// Set assigns entry (r, c).
func (m *Dense) Set(r, c int, v float64) { m.A[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	return &Dense{Rows: m.Rows, Cols: m.Cols, A: append([]float64(nil), m.A...)}
}

// Mul returns the product m·o. It panics on dimension mismatch.
func (m *Dense) Mul(o *Dense) *Dense {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("matrix: %dx%d × %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewDense(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.A[i*m.Cols+k]
			if a == 0 {
				continue
			}
			orow := o.A[k*o.Cols:]
			dst := out.A[i*o.Cols:]
			for j := 0; j < o.Cols; j++ {
				dst[j] += a * orow[j]
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.A[j*m.Rows+i] = m.A[i*m.Cols+j]
		}
	}
	return out
}

// Scale multiplies every entry by s, in place, and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.A {
		m.A[i] *= s
	}
	return m
}

// AddScaledIdentity adds s·I in place and returns m. It panics if m is
// not square.
func (m *Dense) AddScaledIdentity(s float64) *Dense {
	if m.Rows != m.Cols {
		panic("matrix: AddScaledIdentity on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.A[i*m.Cols+i] += s
	}
	return m
}

// MaxAbsDiff returns max |m − o| entrywise. It panics on shape mismatch.
func (m *Dense) MaxAbsDiff(o *Dense) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("matrix: shape mismatch")
	}
	d := 0.0
	for i := range m.A {
		if x := math.Abs(m.A[i] - o.A[i]); x > d {
			d = x
		}
	}
	return d
}

package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"usimrank/internal/server"
	"usimrank/internal/sub"
)

// GET /v1/subscribe on the coordinator: the subscription is relayed to
// the shard owning the query's source vertex, frame by frame, so a
// cluster client sees exactly the stream a single node would serve.
// The coordinator adds fault tolerance on top:
//
//   - when the serving endpoint fails mid-stream (connection drop, node
//     drain), the relay fails over to the shard's next endpoint and
//     resumes via Last-Event-ID — the node then re-sends a snapshot
//     only if the generation moved, so a clean failover is invisible
//     beyond a pause;
//   - a node's terminal "shutdown" event is swallowed and treated as a
//     failover trigger, never forwarded: one node draining must not end
//     a cluster client's subscription while replicas can carry it;
//   - an endpoint answering with a generation older than the
//     coordinator's cluster view is rejected as stale, exactly like the
//     query path's staleness check.
//
// Only when a full pass over the shard's endpoints yields no usable
// stream does the client see a terminal event (or a 502 before the
// stream ever started).

// subDrainTimeout bounds how long coordinator shutdown waits for relay
// streams to finish their terminal events (mirrors the node default).
const subDrainTimeout = 15 * time.Second

// DrainSubscriptions tells every live relay stream to send its
// terminal shutdown event and close, then waits (bounded) for them.
// Call before http.Server.Shutdown, which blocks on active connections.
func (co *Coordinator) DrainSubscriptions() bool {
	co.subs.Shutdown()
	return co.subs.AwaitIdle(subDrainTimeout)
}

func (co *Coordinator) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		server.WriteError(w, http.StatusInternalServerError, server.CodeEngineError,
			"streaming unsupported by this connection")
		return
	}
	// Routing needs only the source vertex; everything else (shape, alg,
	// vertex ranges) is validated by the owning node and any 4xx it
	// answers with is relayed verbatim below.
	u, err := strconv.Atoi(r.URL.Query().Get("u"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Sprintf("bad %q: %v", "u", err))
		return
	}
	shard := co.shards.Of(u)

	// Registered with no watched vertices: the owning node does the
	// wake-up filtering; the coordinator's registry only tracks relay
	// lifecycle (active count, shutdown broadcast, drain).
	su := co.subs.Subscribe(nil, 0)
	if su == nil {
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeUnavailable,
			"coordinator shutting down")
		return
	}
	defer co.subs.Unsubscribe(su)

	rs := &relayState{lastID: 0, started: false}
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		if id, perr := strconv.ParseUint(raw, 10, 64); perr == nil {
			rs.lastID = id
		}
	}

	endpoints := co.cfg.Shards[shard]
	for {
		connected := false
		for _, ep := range endpoints {
			ok, terminal := co.relayFrom(w, fl, r, shard, ep, rs)
			if terminal {
				return
			}
			connected = connected || ok
		}
		// A full pass over the shard's endpoints without one usable
		// stream: the shard is down (or uniformly stale).
		if !connected {
			msg := fmt.Sprintf("%s: no endpoint could serve the subscription", shardName(shard))
			if rs.started {
				co.subs.NoteDropped()
				co.writeRelayTerminal(w, fl, server.EventError, rs.lastID, server.CodeShardUnavailable, msg)
			} else {
				server.WriteError(w, http.StatusBadGateway, server.CodeShardUnavailable, msg)
			}
			return
		}
	}
}

// relayState threads the resume cursor across failover attempts.
type relayState struct {
	lastID  uint64 // newest event id forwarded (or the client's resume point)
	started bool   // response headers committed to the client
}

// relayFrom streams one endpoint's subscription to the client until the
// endpoint fails or a terminal condition ends the relay. ok reports
// that the endpoint served a usable stream at some point (resets the
// all-endpoints-down detection); terminal reports the relay is over and
// the handler must return.
func (co *Coordinator) relayFrom(w http.ResponseWriter, fl http.Flusher, r *http.Request, shard int, ep string, rs *relayState) (ok, terminal bool) {
	ctx, cancel := co.relayCtx(r)
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/v1/subscribe?"+r.URL.RawQuery, nil)
	if err != nil {
		return false, false
	}
	if rs.lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(rs.lastID, 10))
	}
	resp, err := co.cfg.HTTPClient.Do(req)
	if err != nil {
		return false, co.relayInterrupted(w, fl, r, rs)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		// 4xx is definitive (bad shape, vertex out of range): relay it
		// verbatim and end — but only while nothing was streamed yet; a
		// mid-stream 4xx after a reload surfaces as the node's own
		// terminal "gone" event instead. 5xx/429 are endpoint trouble:
		// try the next one.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && !rs.started {
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(w, io.LimitReader(resp.Body, 1<<20))
			return true, true
		}
		return false, false
	}
	// Reject a node that missed admin mutations: its pushes would carry
	// answers from an older graph than the cluster generation.
	if gen, perr := strconv.ParseUint(resp.Header.Get(server.GenerationHeader), 10, 64); perr != nil || gen < co.Generation() {
		co.client.noteStale(shard)
		return false, false
	}

	if !rs.started {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set(server.GenerationHeader, resp.Header.Get(server.GenerationHeader))
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		rs.started = true
	}

	br := bufio.NewReader(resp.Body)
	for {
		fr, rerr := sub.ReadFrame(br)
		if rerr != nil {
			// Endpoint gone mid-stream (or the relay was cancelled):
			// decide which below.
			return true, co.relayInterrupted(w, fl, r, rs)
		}
		switch fr.Name() {
		case server.EventShutdown:
			// The node is draining. Swallow its terminal event and fail
			// over: a replica can resume the stream from rs.lastID, and
			// the cluster client never learns one node bounced.
			return true, false
		case server.EventGone, server.EventError:
			co.subs.NoteDropped()
			if fr.Forward(w) == nil {
				fl.Flush()
			}
			return true, true
		}
		if fr.Forward(w) != nil {
			return true, true // client gone
		}
		fl.Flush()
		if id := fr.ID(); id > 0 {
			rs.lastID = id
		}
		if fr.Name() == server.EventUpdate {
			co.subs.NotePush()
		}
	}
}

// relayCtx derives the downstream request context: cancelled when the
// client disconnects, the coordinator shuts down, or the subscription
// registry starts draining — whichever comes first. Cancellation is
// what unblocks a relay parked in ReadFrame on a healthy-but-quiet
// stream, so shutdown can interrupt it.
func (co *Coordinator) relayCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := make(chan struct{})
	go func() {
		select {
		case <-co.subs.ShuttingDown():
			cancel()
		case <-co.baseCtx.Done():
			cancel()
		case <-stop:
		}
	}()
	return ctx, func() { cancel(); close(stop) }
}

// relayInterrupted classifies a broken downstream read: coordinator
// shutdown writes the terminal shutdown event; a vanished client just
// ends the relay; anything else is endpoint trouble and the caller
// fails over.
func (co *Coordinator) relayInterrupted(w http.ResponseWriter, fl http.Flusher, r *http.Request, rs *relayState) (terminal bool) {
	select {
	case <-co.subs.ShuttingDown():
	case <-co.baseCtx.Done():
	default:
		if r.Context().Err() != nil {
			return true // client disconnected; nobody to fail over for
		}
		return false
	}
	if rs.started {
		co.writeRelayTerminal(w, fl, server.EventShutdown, rs.lastID, server.CodeUnavailable,
			"coordinator shutting down; resubscribe with Last-Event-ID to resume")
	} else {
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeUnavailable,
			"coordinator shutting down")
	}
	return true
}

// writeRelayTerminal emits a coordinator-authored terminal event on an
// already-started stream. Best-effort: the client may be gone.
func (co *Coordinator) writeRelayTerminal(w http.ResponseWriter, fl http.Flusher, event string, id uint64, code, msg string) {
	body, err := server.MarshalBody(server.ErrorResponse{Error: server.ErrorDetail{Code: code, Message: msg}})
	if err != nil {
		return
	}
	if sub.WriteEvent(w, event, id, body) == nil {
		fl.Flush()
	}
}

package cluster

import "usimrank/internal/server"

// Coordinator-specific wire types. The five query shapes reuse the
// single-node schemas from usimrank/internal/server verbatim — that
// reuse is what makes byte-identical scatter-gather possible — so only
// the admin and stats responses, which aggregate over shards, have
// cluster-level shapes of their own.

// EndpointAck is one endpoint's acknowledgement of an admin fan-out.
type EndpointAck struct {
	Shard int    `json:"shard"`
	URL   string `json:"url"`
	// Role is "primary" or "replica". Replicas receive admin mutations
	// too: they serve the same shard's traffic and must stay at the
	// same generation.
	Role       string `json:"role"`
	Generation uint64 `json:"generation"`
	Drained    bool   `json:"drained"`
}

// AdminResponse reports a completed transactional admin fan-out: every
// endpoint of every shard acknowledged the mutation at the same new
// generation.
type AdminResponse struct {
	Generation uint64        `json:"generation"`
	Vertices   int           `json:"vertices"`
	Arcs       int           `json:"arcs"`
	Drained    bool          `json:"drained"`
	Endpoints  []EndpointAck `json:"endpoints"`
}

// ShardHealth is one endpoint's live probe result inside the stats
// snapshot.
type ShardHealth struct {
	Shard      int    `json:"shard"`
	URL        string `json:"url"`
	Role       string `json:"role"`
	Reachable  bool   `json:"reachable"`
	Generation uint64 `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
}

// ClusterInfo describes the coordinator's view of the cluster.
type ClusterInfo struct {
	Shards     int    `json:"shards"`
	Endpoints  int    `json:"endpoints"`
	Generation uint64 `json:"generation"`
	Vertices   int    `json:"vertices"`
	Arcs       int    `json:"arcs"`
	AdminOps   uint64 `json:"admin_ops"`
}

// StatsResponse is the coordinator's /v1/stats snapshot: its own
// serving-plane metrics (admission, coalescing, per-shape and
// per-shard latency histograms) plus a live health probe of every
// endpoint.
type StatsResponse struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Cluster       ClusterInfo                  `json:"cluster"`
	Shards        []ShardHealth                `json:"shards"`
	Serving       server.ServingStats          `json:"serving"`
	Coalescing    server.CoalescingStats       `json:"coalescing"`
	Queries       map[string]server.QueryStats `json:"queries"`
	Subscriptions *server.SubscriptionStats    `json:"subscriptions,omitempty"`
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"usimrank/internal/server"
)

// adaptiveShapes is the eps-bearing query surface: every shape that
// accepts an accuracy target, including the scatter-gathered pairs
// top-k whose adaptive blocks the coordinator must fold.
func adaptiveShapes(alg string) []struct{ name, path, body string } {
	return []struct{ name, path, body string }{
		{"score", "/v1/score", fmt.Sprintf(`{"alg":%q,"u":3,"v":17,"eps":0.05}`, alg)},
		{"score_delta", "/v1/score", fmt.Sprintf(`{"alg":%q,"u":3,"v":17,"eps":0.05,"delta":0.01}`, alg)},
		{"source_full", "/v1/source", fmt.Sprintf(`{"alg":%q,"u":5,"eps":0.05}`, alg)},
		{"source_cand", "/v1/source", fmt.Sprintf(`{"alg":%q,"u":2,"candidates":[1,4,9,33],"eps":0.05}`, alg)},
		{"topk_u", "/v1/topk", fmt.Sprintf(`{"alg":%q,"u":3,"k":5,"eps":0.05}`, alg)},
		{"topk_pairs", "/v1/topk", fmt.Sprintf(`{"alg":%q,"k":7,"eps":0.05}`, alg)},
	}
}

// TestClusterAdaptiveBitIdentical extends the equivalence spine to the
// adaptive path: eps-bearing queries through 1-, 2-, and 4-shard
// clusters must return bytes identical to a single resident engine —
// relayed verbatim on single-source shapes, folded (radius max, walks
// sum, rounds max, converged AND) on the scattered pairs top-k.
func TestClusterAdaptiveBitIdentical(t *testing.T) {
	g := testGraph()
	single, err := server.New(g, "test://single", server.Config{Engine: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	algs := []string{"sampling", "srsp"}
	type ref struct {
		status int
		body   []byte
	}
	refs := make(map[string]ref)
	for _, alg := range algs {
		for _, q := range adaptiveShapes(alg) {
			status, body := post(t, single, q.path, q.body)
			if status != 200 {
				t.Fatalf("single-node %s/%s: status %d: %s", alg, q.name, status, body)
			}
			if !bytes.Contains(body, []byte(`"adaptive"`)) {
				t.Fatalf("single-node %s/%s carries no adaptive block: %s", alg, q.name, body)
			}
			refs[alg+"/"+q.name] = ref{status, append([]byte(nil), body...)}
		}
	}

	for _, shardCount := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shardCount), func(t *testing.T) {
			co := bootCluster(t, g, shardCount)
			for _, alg := range algs {
				for _, q := range adaptiveShapes(alg) {
					status, body := post(t, co, q.path, q.body)
					want := refs[alg+"/"+q.name]
					if status != want.status {
						t.Fatalf("%s/%s: coordinator status %d, single node %d: %s", alg, q.name, status, want.status, body)
					}
					if !bytes.Equal(body, want.body) {
						t.Fatalf("%s/%s: coordinator bytes diverge from single node\ncoordinator: %s\nsingle node: %s",
							alg, q.name, body, want.body)
					}
				}
			}
		})
	}
}

// TestClusterAdaptivePartialUnderDeadline drives an unreachably tight
// eps with a short deadline through a 2-shard cluster: the coordinator
// must relay the node's graceful degradation — 200, partial:true, a
// committed estimate with a confidence radius — not a 504.
func TestClusterAdaptivePartialUnderDeadline(t *testing.T) {
	co := bootCluster(t, testGraph(), 2)
	status, body := post(t, co, "/v1/source", `{"alg":"sampling","u":5,"eps":1e-12,"timeout_ms":150}`)
	if status != 200 {
		t.Fatalf("deadline-pressured eps query: status %d, want 200: %s", status, body)
	}
	var resp server.SourceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Fatalf("want partial:true: %s", body)
	}
	if resp.Adaptive == nil || resp.Adaptive.Converged || resp.Adaptive.Radius <= 0 || resp.Adaptive.Rounds < 1 {
		t.Fatalf("partial relay carries no committed estimate: %+v", resp.Adaptive)
	}
	if len(resp.Scores) != testGraph().NumVertices() {
		t.Fatalf("partial relay has %d scores", len(resp.Scores))
	}
}

// TestCoordinatorRetryAfterOn429: admission rejection at the
// coordinator carries the same Retry-After backoff hint as a node.
func TestCoordinatorRetryAfterOn429(t *testing.T) {
	co := bootCluster(t, testGraph(), 1)
	// bootCluster leaves MaxInFlight at its (large) default; saturate
	// a dedicated coordinator instead.
	shards := co.cfg.Shards
	tight := newCoordinator(t, shards, func(c *Config) {
		c.MaxInFlight = 1
		c.AdmissionWait = -1
	})
	if got := tight.adm.AcquireTier(context.Background(), false); got == nil {
		t.Fatal("could not occupy the only slot")
	}
	req := httptest.NewRequest("POST", "/v1/score", bytes.NewReader([]byte(`{"alg":"srsp","u":0,"v":1}`)))
	rec := httptest.NewRecorder()
	tight.ServeHTTP(rec, req)
	if rec.Code != 429 {
		t.Fatalf("saturated coordinator: status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}

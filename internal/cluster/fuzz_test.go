package cluster

import (
	"encoding/binary"
	"math"
	"testing"

	"usimrank/internal/server"
)

// FuzzShardMap fuzzes the shard-map contract: for arbitrary vertex
// ids, shard counts, and replica counts, the assignment must be total
// (every vertex maps into [0, shards)), stable (two independently
// built identical maps agree), and must respect the declared replica
// count (Endpoints = 1 + replicas, for every shard).
func FuzzShardMap(f *testing.F) {
	f.Add(int64(0), 1, 0)
	f.Add(int64(-1), 4, 2)
	f.Add(int64(math.MaxInt64), 7, 1)
	f.Add(int64(math.MinInt64), 1000, 0)
	f.Add(int64(123456789), 3, 5)
	f.Fuzz(func(t *testing.T, vertex int64, shards, replicas int) {
		if shards < 1 || shards > 1<<20 {
			if shards < 1 {
				if _, err := NewShardMap(shards, nil); err == nil {
					t.Fatalf("NewShardMap(%d) accepted a non-positive shard count", shards)
				}
			}
			return
		}
		replicas &= 0xff // keep the per-shard slice bounded
		reps := make([]int, shards)
		for i := range reps {
			reps[i] = replicas
		}
		m, err := NewShardMap(shards, reps)
		if err != nil {
			t.Fatalf("NewShardMap(%d, %d replicas): %v", shards, replicas, err)
		}
		v := int(vertex)
		s := m.Of(v)
		if s < 0 || s >= shards {
			t.Fatalf("Of(%d) = %d outside [0,%d) — assignment not total", v, s, shards)
		}
		m2, err := NewShardMap(shards, reps)
		if err != nil {
			t.Fatal(err)
		}
		if m2.Of(v) != s {
			t.Fatalf("Of(%d) unstable across identical maps: %d vs %d", v, s, m2.Of(v))
		}
		if got := m.Endpoints(s); got != 1+replicas {
			t.Fatalf("Endpoints(%d) = %d, want %d — replica count not respected", s, got, 1+replicas)
		}
		// A small partition stays total and consistent with Of.
		n := 64
		parts := m.Partition(n)
		total := 0
		for ps, part := range parts {
			for _, pv := range part {
				if m.Of(pv) != ps {
					t.Fatalf("Partition put %d in shard %d, Of says %d", pv, ps, m.Of(pv))
				}
				total++
			}
		}
		if total != n {
			t.Fatalf("Partition(%d) covered %d vertices", n, total)
		}
	})
}

// decodePartials deterministically carves a fuzz byte string into
// adversarial per-shard partial top-k lists: arbitrary lengths,
// arbitrary order, duplicate pairs, tied/infinite scores. NaN scores
// are normalised to 0 — NaN admits no total order, and the merge
// contract (like the engine, which never emits NaN) is defined over
// ordered floats.
func decodePartials(data []byte) [][]server.PairScore {
	var lists [][]server.PairScore
	var cur []server.PairScore
	for len(data) >= 17 {
		u := int(int32(binary.LittleEndian.Uint32(data[0:4])))
		v := int(int32(binary.LittleEndian.Uint32(data[4:8])))
		score := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
		if math.IsNaN(score) {
			score = 0
		}
		cur = append(cur, server.PairScore{U: u, V: v, Score: score})
		if data[16]&1 == 1 { // list break
			lists = append(lists, cur)
			cur = nil
		}
		data = data[17:]
	}
	if cur != nil {
		lists = append(lists, cur)
	}
	return lists
}

// FuzzClusterMerge fuzzes the coordinator's top-k merge: on arbitrary
// adversarial partial results it must never panic, must honour k, must
// emit the canonical order (topk.Better descending), must not invent
// results, and must be independent of the order the shards answered
// in.
func FuzzClusterMerge(f *testing.F) {
	f.Add(1, []byte{})
	f.Add(3, []byte{1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 240, 63, 1})
	seed := make([]byte, 17*5)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(10, seed)
	f.Fuzz(func(t *testing.T, k int, data []byte) {
		k = 1 + abs(k)%64 // the serving plane validates k >= 1 before merging
		lists := decodePartials(data)
		got := mergeTopK(k, lists)
		if got == nil {
			t.Fatal("merge returned nil — must be an empty slice for JSON []")
		}
		if len(got) > k {
			t.Fatalf("merge returned %d results for k=%d", len(got), k)
		}
		inputs := make(map[server.PairScore]int)
		total := 0
		for _, l := range lists {
			for _, p := range l {
				inputs[p]++
				total++
			}
		}
		if want := min(k, total); len(got) != want {
			t.Fatalf("merge returned %d results, want min(k=%d, inputs=%d) = %d", len(got), k, total, want)
		}
		for i, p := range got {
			if inputs[p] == 0 {
				t.Fatalf("merge invented result %+v", p)
			}
			inputs[p]--
			if i > 0 {
				a, b := got[i-1], got[i]
				if b.Score > a.Score || (b.Score == a.Score && (b.U < a.U || (b.U == a.U && b.V < a.V))) {
					t.Fatalf("merge order violated at %d: %+v before %+v", i, a, b)
				}
			}
		}
		// Shard answer order must not matter.
		reversed := make([][]server.PairScore, len(lists))
		for i, l := range lists {
			reversed[len(lists)-1-i] = l
		}
		again := mergeTopK(k, reversed)
		if len(again) != len(got) {
			t.Fatalf("merge depends on shard order: %d vs %d results", len(again), len(got))
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("merge depends on shard order at %d: %+v vs %+v", i, got[i], again[i])
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return 0
		}
		return -x
	}
	return x
}

// Package cluster is the cluster plane of the uncertain-SimRank
// serving system: a coordinator that scatter-gathers the five query
// shapes of the v1 API over a fleet of ordinary usimd shard nodes and
// merges the partial answers deterministically — a sharded cluster
// answers every query with bytes identical to a single node holding
// the same graph.
//
// # Topology
//
// Sharding is by query space, not by data: every shard node holds the
// FULL graph (same file, same engine options, same seed) and owns the
// queries whose source vertex hashes to it. The coordinator holds no
// graph at all — only the shard map, the fan-out client, and the
// serving machinery (request coalescing, admission control, latency
// histograms per shape and per downstream shard) reused from
// usimrank/internal/server. Each shard may have replica endpoints:
// full nodes serving the same shard's traffic, used for hedged
// failover.
//
// # The shard-map contract
//
// ShardMap.Of(v) = splitmix64(v) mod shards. The function is
//
//   - total: defined for every int vertex id, including negatives;
//   - stable: a pure function of (vertex, shard count) — no state, no
//     randomness — identical across processes, platforms, and
//     releases (the splitmix64 constants are frozen; changing them
//     would reshard every cluster);
//   - balanced: the avalanche disperses consecutive vertex ids across
//     shards, so contiguous id ranges don't pile onto one node.
//
// Replica lists hang off shards positionally: endpoint 0 is the
// primary, the rest are replicas. Admin mutations go to every
// endpoint; queries go to the primary first with hedged retry to
// replicas.
//
// # Merge rules (one per query shape)
//
//   - score, source, top-k of u: pass-through. The shard owning
//     Of(u) computes the complete answer; the coordinator relays its
//     response bytes verbatim. Nothing is merged, so nothing can
//     diverge.
//   - pairs top-k: the coordinator partitions the source vertices
//     across shards (ShardMap.Partition), each shard answers a
//     sources-restricted pairs query (every pair has exactly one
//     source, its smaller endpoint), and the partial top-k lists are
//     k-way merged under the canonical topk.Better total order
//     (score desc, then U, then V). Because each global winner
//     belongs to exactly one shard and survives that shard's local
//     top-k under the same order, the merge reproduces the
//     single-node answer bit for bit. Source lists longer than
//     maxSourcesPerChunk are split across several sub-requests per
//     shard — the merge is associative, so chunking cannot change the
//     result, and coordinator-built bodies stay bounded on
//     arbitrarily large graphs.
//   - batch: pairs are regrouped by the shard owning each pair's
//     source, scattered, and the per-shard results are reassembled
//     into input order. Per-pair scores are independent and
//     deterministic, so regrouping cannot change them.
//
// # Determinism guarantee
//
// Monte Carlo walk streams are seeded by (seed, vertex, side) — PR 2's
// invariant — so a shard computes exactly the walks a single node
// would compute for the same source, regardless of which other
// sources it owns, of the shard count, and of which replica answers a
// hedged request. Merged responses are encoded by the same
// server.WriteJSON encoder the single node uses. The cluster
// equivalence suite pins response bytes at 1, 2, and 4 shards against
// a single-node reference for every query shape and algorithm.
//
// One deliberate seam: the "coalesced" flag inside a relayed body is
// the shard's view, while the coordinator's own coalescing hits are
// visible in its /v1/stats. Under sequential traffic both are false;
// equivalence of scores is unaffected either way.
//
// # Failure semantics
//
//   - A failed or slow primary is hedged: after HedgeDelay (or
//     immediately on a transport error / 5xx other than 504) the next
//     replica is asked, and the first definitive answer — any
//     response below 500, a shard's 400 included, plus the shard's
//     own 504 deadline verdict — wins and is relayed.
//   - Every query response carries the node's graph generation
//     (server.GenerationHeader); the coordinator rejects answers
//     stamped older than its cluster generation as node failures, so
//     a replica that was down through an admin mutation and came back
//     holding the old graph can never leak stale bytes into a relay.
//   - A shard with every endpoint down yields a structured 502,
//     {"error":{"code":"shard_unavailable","shard":"shard2",...}},
//     never a hang or a silently partial merge.
//   - A shard that only times out (per-shard deadline on every
//     attempt) yields a 504 with the same shard field.
//   - Admin mutations (/v1/admin/update, /v1/admin/reload) fan out to
//     every endpoint and are transactional at the generation level:
//     the coordinator succeeds only when all endpoints acknowledge
//     the same successor generation, re-probes the fleet when
//     responses were lost, and otherwise reports a structured
//     generation-skew 502 ({"code":"generation_skew"}) naming every
//     divergent endpoint. Mutations are serialised behind one mutex,
//     mirroring the single node's admin serialisation.
//   - Subscriptions (GET /v1/subscribe) are relayed frame-by-frame
//     from the shard owning the query's source vertex, with failover:
//     a draining node's terminal shutdown event is swallowed and the
//     stream resumes on a replica via Last-Event-ID, so one node
//     bouncing is invisible to the cluster client (see subscribe.go).
package cluster

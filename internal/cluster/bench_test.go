package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkClusterThroughput measures coordinator scatter-gather
// queries/sec end to end — coordinator JSON decode, shard routing,
// real HTTP to in-process shard nodes, merge, JSON encode — at 1, 2,
// and 4 shards, for a pass-through shape (source, routed to one
// shard) and the full fan-out shape (pairs top-k, scattered to every
// shard and k-way merged). This is the cluster figure the CI perf
// artifact (BENCH_5) tracks across PRs.
func BenchmarkClusterThroughput(b *testing.B) {
	g := testGraph()
	nv := g.NumVertices()
	for _, shardCount := range []int{1, 2, 4} {
		co := bootCluster(b, g, shardCount)
		var seq atomic.Int64
		b.Run(fmt.Sprintf("source/shards=%d", shardCount), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					body := fmt.Sprintf(`{"alg":"srsp","u":%d}`, i%nv)
					status, resp := post(b, co, "/v1/source", body)
					if status != 200 {
						b.Errorf("status %d: %s", status, resp)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
		b.Run(fmt.Sprintf("topk_pairs/shards=%d", shardCount), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					// Distinct k values defeat coalescing so the numbers
					// reflect scatter-gather work, not one hot flight.
					body := fmt.Sprintf(`{"alg":"srsp","k":%d}`, 5+i%8)
					status, resp := post(b, co, "/v1/topk", body)
					if status != 200 {
						b.Errorf("status %d: %s", status, resp)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

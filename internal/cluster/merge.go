package cluster

import (
	"usimrank/internal/server"
	"usimrank/internal/topk"
)

// Deterministic merge logic, one rule per query shape (doc.go spells
// out the contract):
//
//   - score / source / top-k-of-u: single-shard pass-through — the
//     owning shard's bytes are relayed verbatim, so there is nothing
//     to merge and nothing that could diverge.
//   - pairs top-k: k-way merge of the shards' partial top-k lists
//     under the canonical topk.Better order (score desc, then U, then
//     V) via topk.Merge.
//   - batch: regroup-by-shard on the way out, reassemble into input
//     order on the way back.

// mergeTopK folds the per-shard partial top-k lists into the canonical
// global top-k. Inputs need no particular order or length; adversarial
// partials (duplicates, unsorted, over-long) still merge into a list
// that is sorted under topk.Better and at most k long, because the
// merge re-ranks every element under the one total order.
func mergeTopK(k int, lists [][]server.PairScore) []server.PairScore {
	converted := make([][]topk.Result, len(lists))
	for i, l := range lists {
		rs := make([]topk.Result, len(l))
		for j, p := range l {
			rs[j] = topk.Result{U: p.U, V: p.V, Score: p.Score}
		}
		converted[i] = rs
	}
	merged := topk.Merge(k, converted...)
	// make (never nil) so an empty merge encodes as [] exactly like the
	// single-node handler's conversion.
	out := make([]server.PairScore, len(merged))
	for i, r := range merged {
		out[i] = server.PairScore{U: r.U, V: r.V, Score: r.Score}
	}
	return out
}

// batchPlan is the scatter plan of one batch request: the involved
// shards in ascending order, each shard's sub-batch, and the original
// index of every sub-batch element so responses reassemble into input
// order.
type batchPlan struct {
	shards  []int
	pairs   map[int][][2]int
	indices map[int][]int
}

// planBatch regroups pairs by the shard owning each pair's source
// (pair[0]).
func planBatch(m *ShardMap, pairs [][2]int) batchPlan {
	p := batchPlan{pairs: make(map[int][][2]int), indices: make(map[int][]int)}
	for i, pair := range pairs {
		s := m.Of(pair[0])
		if _, seen := p.pairs[s]; !seen {
			p.shards = append(p.shards, s)
		}
		p.pairs[s] = append(p.pairs[s], pair)
		p.indices[s] = append(p.indices[s], i)
	}
	// Shards were appended in first-occurrence order; normalise to
	// ascending so the scatter order (and any error tie-break) is a
	// pure function of the request.
	for i := 1; i < len(p.shards); i++ {
		for j := i; j > 0 && p.shards[j] < p.shards[j-1]; j-- {
			p.shards[j], p.shards[j-1] = p.shards[j-1], p.shards[j]
		}
	}
	return p
}

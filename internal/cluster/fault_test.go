package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"usimrank"
	"usimrank/internal/server"
)

// faultHandler wraps a shard node with injectable faults: dead drops
// every connection mid-response (the client sees a transport error,
// exactly like a crashed process), delayNs stalls before delegating
// (a slow shard), respecting request cancellation.
type faultHandler struct {
	inner   http.Handler
	dead    atomic.Bool
	delayNs atomic.Int64
	stop    chan struct{} // closed at test cleanup so stalled handlers unwind
}

func (f *faultHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if d := time.Duration(f.delayNs.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		case <-f.stop:
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

// newFaultyShard boots a shard node behind a fault injector.
func newFaultyShard(t testing.TB, g *usimrank.Graph) (*httptest.Server, *faultHandler) {
	t.Helper()
	s, err := server.New(g, "test://shard", server.Config{Engine: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	fh := &faultHandler{inner: s.Handler(), stop: make(chan struct{})}
	ts := httptest.NewServer(fh)
	// LIFO: unblock stalled handlers (close stop) before ts.Close waits
	// on them.
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(fh.stop) })
	return ts, fh
}

// ownedBy returns a vertex of [0, n) owned by the given shard under a
// `shards`-way map.
func ownedBy(t testing.TB, shards, shard, n int) int {
	t.Helper()
	m, err := NewShardMap(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if m.Of(v) == shard {
			return v
		}
	}
	t.Fatalf("no vertex of [0,%d) owned by shard %d", n, shard)
	return -1
}

// TestFailoverToReplicaMidLoad kills a shard's primary while 16
// clients are mid-flight; every query owned by that shard must keep
// succeeding — hedged over to the replica — with bytes identical to
// the reference answer.
func TestFailoverToReplicaMidLoad(t *testing.T) {
	g := testGraph()
	u := ownedBy(t, 2, 1, g.NumVertices())
	body := fmt.Sprintf(`{"alg":"sampling","u":%d}`, u)

	primary, primaryFault := newFaultyShard(t, g)
	replica := newShardNode(t, g)
	co := newCoordinator(t, [][]string{
		{newShardNode(t, g).URL},
		{primary.URL, replica.URL},
	}, func(cfg *Config) {
		cfg.HedgeDelay = 10 * time.Millisecond
		cfg.ShardTimeout = 10 * time.Second
	})

	wantStatus, wantBody := post(t, co, "/v1/source", body)
	if wantStatus != 200 {
		t.Fatalf("warm-up status %d: %s", wantStatus, wantBody)
	}
	wantCanon, err := jsonCanonical(wantBody)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	killed := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-killed // every request below runs against a dead primary
			status, got := post(t, co, "/v1/source", body)
			if status != 200 {
				errCh <- fmt.Errorf("status %d after primary death: %s", status, got)
				return
			}
			canon, err := jsonCanonical(got)
			if err != nil {
				errCh <- err
				return
			}
			if canon != wantCanon {
				errCh <- fmt.Errorf("failover answer diverged\ngot:  %s\nwant: %s", canon, wantCanon)
			}
		}()
	}
	primaryFault.dead.Store(true)
	primary.CloseClientConnections()
	close(killed)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestDeadShardWithoutReplicaIs502: with no replica to hedge to, the
// coordinator must fail fast with a structured 502 naming the dead
// shard — not hang, and never return a silently partial merge.
func TestDeadShardWithoutReplicaIs502(t *testing.T) {
	g := testGraph()
	primary, fault := newFaultyShard(t, g)
	co := newCoordinator(t, [][]string{
		{newShardNode(t, g).URL},
		{primary.URL},
	}, func(cfg *Config) {
		cfg.ShardTimeout = 500 * time.Millisecond
	})
	fault.dead.Store(true)
	primary.CloseClientConnections()

	u := ownedBy(t, 2, 1, g.NumVertices())
	checkDead := func(path, body string) {
		t.Helper()
		start := time.Now()
		status, respBody := post(t, co, path, body)
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s took %v — a dead shard must fail fast", path, elapsed)
		}
		if status != http.StatusBadGateway {
			t.Fatalf("%s status = %d, want 502: %s", path, status, respBody)
		}
		var e server.ErrorResponse
		if err := json.Unmarshal(respBody, &e); err != nil {
			t.Fatalf("%s: bad error body %s: %v", path, respBody, err)
		}
		if e.Error.Code != server.CodeShardUnavailable {
			t.Fatalf("%s error code = %q, want %q", path, e.Error.Code, server.CodeShardUnavailable)
		}
		if e.Error.Shard != "shard1" {
			t.Fatalf("%s error names %q, want shard1: %s", path, e.Error.Shard, respBody)
		}
	}
	// Pass-through shape owned by the dead shard.
	checkDead("/v1/score", fmt.Sprintf(`{"alg":"srsp","u":%d,"v":0}`, u))
	// Fan-out shape: the dead shard voids the whole merge — a partial
	// top-k would silently drop that shard's winners.
	checkDead("/v1/topk", `{"alg":"srsp","k":5}`)
	// The healthy shard keeps serving its own sources.
	healthy := ownedBy(t, 2, 0, g.NumVertices())
	if status, b := post(t, co, "/v1/score", fmt.Sprintf(`{"alg":"srsp","u":%d,"v":1}`, healthy)); status != 200 {
		t.Fatalf("healthy shard status %d: %s", status, b)
	}
}

// TestSlowShardPerShardDeadline: a stalled shard must be cut off by
// the per-shard deadline (504, naming the shard) long before the
// request-level budget, proving the per-shard timeout actually fires.
func TestSlowShardPerShardDeadline(t *testing.T) {
	g := testGraph()
	primary, fault := newFaultyShard(t, g)
	co := newCoordinator(t, [][]string{
		{newShardNode(t, g).URL},
		{primary.URL},
	}, func(cfg *Config) {
		cfg.ShardTimeout = 200 * time.Millisecond
		cfg.QueryTimeout = 60 * time.Second // the request budget is NOT what fires
	})
	fault.delayNs.Store(int64(30 * time.Second))

	u := ownedBy(t, 2, 1, g.NumVertices())
	start := time.Now()
	status, body := post(t, co, "/v1/score", fmt.Sprintf(`{"alg":"srsp","u":%d,"v":0}`, u))
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("slow shard held the request %v — per-shard deadline never fired", elapsed)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", status, body)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != server.CodeDeadlineExceeded || e.Error.Shard != "shard1" {
		t.Fatalf("error = %+v, want deadline_exceeded naming shard1", e.Error)
	}
}

// TestSlowPrimaryHedgesWithinBudget: a slow-but-alive primary with a
// healthy replica must not cost the client the per-shard deadline —
// the hedge fires at HedgeDelay and the replica's answer is relayed.
func TestSlowPrimaryHedgesWithinBudget(t *testing.T) {
	g := testGraph()
	primary, fault := newFaultyShard(t, g)
	co := newCoordinator(t, [][]string{
		{primary.URL, newShardNode(t, g).URL},
	}, func(cfg *Config) {
		cfg.HedgeDelay = 25 * time.Millisecond
		cfg.ShardTimeout = 60 * time.Second
	})
	fault.delayNs.Store(int64(30 * time.Second))

	start := time.Now()
	status, body := post(t, co, "/v1/score", `{"alg":"srsp","u":3,"v":17}`)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedged query took %v", elapsed)
	}
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp server.ScoreResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Score <= 0 {
		t.Fatalf("suspicious hedged score %v", resp.Score)
	}
}

// directUpdate applies one reweight straight to a node, bypassing the
// coordinator.
func directUpdate(t testing.TB, url string, u, v int32, p float64) {
	t.Helper()
	resp, err := http.Post(url+"/v1/admin/update", "application/json",
		strings.NewReader(fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":%g}]}`, u, v, p)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("direct update status %d", resp.StatusCode)
	}
}

// TestClientRejectsStaleGeneration: a definitive answer stamped with
// an older graph generation than the caller demands is a node
// failure, not an answer — the client must skip it and take the
// up-to-date endpoint's response.
func TestClientRejectsStaleGeneration(t *testing.T) {
	g := testGraph()
	au, av, _ := g.ArcEndpoints(0)
	stale := newShardNode(t, g)   // stays at generation 1, old graph
	current := newShardNode(t, g) // moved to generation 2
	directUpdate(t, current.URL, au, av, 0.111)

	c := NewClient([][]string{{stale.URL, current.URL}}, http.DefaultClient, 5*time.Second, time.Millisecond)
	resp, err := c.Do(t.Context(), 0, "POST", "/v1/score", []byte(`{"alg":"srsp","u":3,"v":17}`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 || resp.URL != current.URL {
		t.Fatalf("answer came from %s at generation %d, want the generation-2 endpoint", resp.URL, resp.Generation)
	}

	// With only the stale endpoint, the shard is correctly unavailable.
	cs := NewClient([][]string{{stale.URL}}, http.DefaultClient, 5*time.Second, time.Millisecond)
	_, err = cs.Do(t.Context(), 0, "POST", "/v1/score", []byte(`{"alg":"srsp","u":3,"v":17}`), 2)
	se, ok := err.(*ShardError)
	if !ok || !strings.Contains(se.Error(), "stale graph") {
		t.Fatalf("err = %v, want a ShardError naming the stale graph", err)
	}
}

// TestStaleReplicaCannotServeAfterReturning is the end-to-end version
// of the scenario the generation header exists for: a replica down
// through an admin mutation returns holding the old graph; when the
// primary later dies, failover must REFUSE the stale replica (502)
// rather than silently relay old-graph bytes.
func TestStaleReplicaCannotServeAfterReturning(t *testing.T) {
	g := testGraph()
	au, av, _ := g.ArcEndpoints(0)
	primary, primaryFault := newFaultyShard(t, g)
	replica, replicaFault := newFaultyShard(t, g)

	// The replica misses an update while down; the primary moves to
	// generation 2.
	replicaFault.dead.Store(true)
	directUpdate(t, primary.URL, au, av, 0.222)

	// Coordinator boots degraded: replica unreachable, primary at 2.
	co := newCoordinator(t, [][]string{{primary.URL, replica.URL}}, func(cfg *Config) {
		cfg.ShardTimeout = 2 * time.Second
		cfg.HedgeDelay = 10 * time.Millisecond
	})
	if co.Generation() != 2 {
		t.Fatalf("boot generation = %d, want the primary's 2", co.Generation())
	}

	// The replica comes back — still at generation 1 — and the primary
	// dies.
	replicaFault.dead.Store(false)
	primaryFault.dead.Store(true)
	primary.CloseClientConnections()

	status, body := post(t, co, "/v1/score", `{"alg":"srsp","u":3,"v":17}`)
	if status != http.StatusBadGateway {
		t.Fatalf("stale-replica failover returned %d (%s), want a refusing 502", status, body)
	}
	if !strings.Contains(string(body), "stale graph") {
		t.Fatalf("error must name the stale graph: %s", body)
	}
}

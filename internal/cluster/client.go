package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"usimrank/internal/obs"
	"usimrank/internal/server"
)

// Client is the coordinator's fan-out HTTP client: one logical request
// per shard, executed against the shard's endpoint list (primary
// first, then replicas) with a per-shard deadline and hedged retry.
//
// Hedging: the primary is asked first; if it has not answered within
// HedgeDelay — or fails outright — the next replica is asked too, and
// the first definitive answer wins. A definitive answer is any HTTP
// response below 500 — a shard's 400 is a real answer (bad vertex id,
// bad algorithm) that must be relayed, never retried elsewhere — plus
// 504, the shard ruling that the query exceeded its own deadline (see
// definitive). Transport errors and other 5xx are failover-eligible.
// Because
// every endpoint of a shard serves the same graph at the same
// generation deterministically, a hedged winner is byte-identical to
// the loser it outran.
type Client struct {
	endpoints    [][]string // endpoints[shard][0] = primary, rest replicas
	http         *http.Client
	shardTimeout time.Duration
	hedgeDelay   time.Duration
	counters     []shardCounters // one per shard, indexed like endpoints
}

// shardCounters tracks one shard's replica-failover behaviour for the
// /metrics exposition.
type shardCounters struct {
	hedges    atomic.Uint64 // attempts launched by the hedge timer
	failovers atomic.Uint64 // attempts launched because an earlier one failed
	stale     atomic.Uint64 // definitive answers rejected for a stale generation
}

// ShardCounters is a snapshot of one shard's hedging counters.
type ShardCounters struct {
	Hedges        uint64
	Failovers     uint64
	StaleRejected uint64
}

// Counters snapshots the per-shard hedge/failover counters, indexed by
// shard.
func (c *Client) Counters() []ShardCounters {
	out := make([]ShardCounters, len(c.counters))
	for i := range c.counters {
		out[i] = ShardCounters{
			Hedges:        c.counters[i].hedges.Load(),
			Failovers:     c.counters[i].failovers.Load(),
			StaleRejected: c.counters[i].stale.Load(),
		}
	}
	return out
}

// noteStale records a stale-generation rejection detected outside Do
// (the subscription relay performs its own generation check on the
// streamed response).
func (c *Client) noteStale(shard int) { c.counters[shard].stale.Add(1) }

// NewClient builds a fan-out client over the per-shard endpoint lists.
func NewClient(endpoints [][]string, httpClient *http.Client, shardTimeout, hedgeDelay time.Duration) *Client {
	return &Client{
		endpoints:    endpoints,
		http:         httpClient,
		shardTimeout: shardTimeout,
		hedgeDelay:   hedgeDelay,
		counters:     make([]shardCounters, len(endpoints)),
	}
}

// ShardResponse is one downstream HTTP answer.
type ShardResponse struct {
	Status int
	Body   []byte
	URL    string // the endpoint that produced the winning answer
	// Generation is the node's graph generation from the
	// server.GenerationHeader response header; 0 when absent (admin
	// and stats responses, non-usimd endpoints).
	Generation uint64
}

// AttemptError records one failed endpoint attempt.
type AttemptError struct {
	URL string
	Err error
}

// ShardError reports that a shard produced no definitive answer: every
// endpoint (primary and replicas) failed or timed out. It satisfies
// errors.Is(err, context.DeadlineExceeded) when every attempt died on
// the per-shard deadline, which is how the coordinator distinguishes a
// slow shard (504) from a dead one (502).
type ShardError struct {
	Shard    int
	Attempts []AttemptError
}

func (e *ShardError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shard%d unavailable after %d attempt(s)", e.Shard, len(e.Attempts))
	for _, a := range e.Attempts {
		fmt.Fprintf(&b, "; %s: %v", a.URL, a.Err)
	}
	return b.String()
}

// Unwrap exposes the attempt errors so errors.Is sees through to
// context.DeadlineExceeded et al.
func (e *ShardError) Unwrap() []error {
	errs := make([]error, len(e.Attempts))
	for i, a := range e.Attempts {
		errs[i] = a.Err
	}
	return errs
}

// AllDeadline reports whether every attempt failed on the per-shard
// deadline — the signature of a slow-but-alive shard.
func (e *ShardError) AllDeadline() bool {
	for _, a := range e.Attempts {
		if !errors.Is(a.Err, context.DeadlineExceeded) {
			return false
		}
	}
	return len(e.Attempts) > 0
}

// definitive reports whether a downstream status is a real answer to
// relay rather than a node failure to hedge around. Everything below
// 500 is an answer (a 400 is the shard ruling on the request), and so
// is a 504: the shard declaring the query exceeded its own deadline.
// The engines are deterministic, so a replica asked the same question
// would burn the same budget and time out the same way — failing over
// just doubles the wasted compute and then misreports a healthy-but-
// budget-bound shard as unavailable.
func definitive(status int) bool {
	return status < 500 || status == http.StatusGatewayTimeout
}

// attemptResult is one endpoint's outcome inside Do.
type attemptResult struct {
	resp *ShardResponse
	err  error
	url  string
	span obs.Span // the attempt's trace span; closed by Do's gather loop
}

// Do runs one logical request against shard, hedging across its
// endpoints, and returns the first definitive answer. body is sent
// verbatim (the coordinator relays client bytes). ctx bounds the whole
// logical request; each endpoint attempt additionally runs under the
// per-shard timeout.
//
// minGen, when non-zero, is the oldest graph generation the caller
// will accept: a definitive response stamped with an older generation
// means the endpoint missed admin mutations (a replica that was down
// through an update), and relaying its answer would silently break
// the bit-identical guarantee — it is treated as a node failure and
// the next endpoint is tried. Responses stamped AHEAD of minGen are
// accepted: mid-mutation a node may legitimately answer from the
// successor graph, exactly as a single node does after its swap.
func (c *Client) Do(ctx context.Context, shard int, method, path string, body []byte, minGen uint64) (*ShardResponse, error) {
	urls := c.endpoints[shard]
	results := make(chan attemptResult, len(urls))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // releases the losing attempts' transports

	started := 0
	start := func() {
		url := urls[started]
		hedged := started > 0
		started++
		go func() {
			// Each attempt gets its own span under the ambient (per-task
			// or flight) span; the trace header it forwards names the
			// attempt span as the remote parent, so a shard's own spans
			// nest under the exact attempt that reached it.
			asp := obs.SpanFromContext(ctx).Start("attempt " + url)
			if hedged {
				asp.Add("hedge", 1)
			}
			resp, err := c.doEndpoint(obs.ContextWithSpan(ctx, asp), url, method, path, body)
			results <- attemptResult{resp: resp, err: err, url: url, span: asp}
		}()
	}
	start()

	hedge := time.NewTimer(c.hedgeDelay)
	defer hedge.Stop()

	var attempts []AttemptError
	pending := 1
	for {
		select {
		case r := <-results:
			pending--
			if r.err == nil && definitive(r.resp.Status) {
				if minGen == 0 || r.resp.Generation == 0 || r.resp.Generation >= minGen {
					r.span.End()
					return r.resp, nil
				}
				c.counters[shard].stale.Add(1)
				r.err = fmt.Errorf("stale graph: endpoint at generation %d, cluster at %d (node missed admin mutations)",
					r.resp.Generation, minGen)
			}
			err := r.err
			if err == nil {
				err = fmt.Errorf("status %d: %s", r.resp.Status, firstLine(r.resp.Body))
			}
			r.span.Error(err)
			r.span.End()
			attempts = append(attempts, AttemptError{URL: r.url, Err: err})
			if started < len(urls) {
				// A failed attempt promotes the next endpoint
				// immediately; no point waiting out the hedge timer.
				c.counters[shard].failovers.Add(1)
				start()
				pending++
				hedge.Reset(c.hedgeDelay)
			} else if pending == 0 {
				return nil, &ShardError{Shard: shard, Attempts: attempts}
			}
		case <-hedge.C:
			if started < len(urls) {
				c.counters[shard].hedges.Add(1)
				start()
				pending++
				// Re-arm so a shard with several replicas keeps hedging
				// down the list while earlier attempts stay silent,
				// instead of waiting out a full per-shard timeout.
				hedge.Reset(c.hedgeDelay)
			}
		case <-ctx.Done():
			// The caller's own deadline (or a sibling shard's failure
			// cancelling the scatter) ends the hedging race.
			attempts = append(attempts, AttemptError{URL: urls[0], Err: ctx.Err()})
			return nil, &ShardError{Shard: shard, Attempts: attempts}
		}
	}
}

// DoEndpoint runs one request against one explicit endpoint, with the
// per-shard timeout but no hedging — the admin fan-out path, where
// every endpoint (primaries and replicas alike) must individually
// apply the mutation.
func (c *Client) DoEndpoint(ctx context.Context, url, method, path string, body []byte) (*ShardResponse, error) {
	return c.doEndpoint(ctx, url, method, path, body)
}

func (c *Client) doEndpoint(ctx context.Context, url, method, path string, body []byte) (*ShardResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.shardTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate trace identity downstream: the node's spans nest under
	// the ambient span (the attempt span on the query path, the admin
	// root on fan-outs). Absent a trace this adds nothing — headers, not
	// bodies, carry tracing, so relayed answers stay byte-identical.
	if sp := obs.SpanFromContext(ctx); sp.Enabled() {
		req.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(sp.TraceID(), sp.ID()))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Surface the deadline as the canonical sentinel: net/http wraps
		// it in a *url.Error, which errors.Is sees through, but the
		// message is noisy; keep the error chain intact regardless.
		return nil, err
	}
	defer resp.Body.Close()
	// Read one byte past the cap so an over-limit body FAILS the
	// attempt instead of being silently truncated and relayed as a 200
	// with JSON cut off mid-array.
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes+1))
	if err != nil {
		return nil, err
	}
	if len(b) > maxRelayBytes {
		return nil, fmt.Errorf("downstream body from %s exceeds the %d-byte relay cap", url, maxRelayBytes)
	}
	out := &ShardResponse{Status: resp.StatusCode, Body: b, URL: url}
	if g := resp.Header.Get(server.GenerationHeader); g != "" {
		if gen, perr := strconv.ParseUint(g, 10, 64); perr == nil {
			out.Generation = gen
		}
	}
	return out, nil
}

// maxRelayBytes bounds a relayed downstream body (source vectors over
// huge graphs are the largest legitimate responses).
const maxRelayBytes = 64 << 20

// firstLine trims a (possibly JSON) body to one log-friendly line.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + "..."
	}
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

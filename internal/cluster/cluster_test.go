package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"usimrank"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/server"
)

// testGraph matches the serving-plane test graph: small enough for
// -race, large enough that sampling splits into several chunks and the
// shard partition is non-trivial.
func testGraph() *usimrank.Graph {
	return gen.WithUniformProbs(gen.RMAT(6, 256, 0.45, 0.22, 0.22, rng.New(3)), 0.2, 0.9, rng.New(4))
}

func testOptions() usimrank.Options {
	return usimrank.Options{N: 400, Seed: 7, Parallelism: 4}
}

// newShardNode boots one ordinary usimd node over httptest. Every node
// of a test cluster shares the same graph, options, and seed — the
// deployment contract.
func newShardNode(t testing.TB, g *usimrank.Graph) *httptest.Server {
	t.Helper()
	s, err := server.New(g, "test://shard", server.Config{Engine: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinator boots a coordinator over the given endpoint lists
// with fast test timeouts.
func newCoordinator(t testing.TB, shards [][]string, mutate func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Shards:         shards,
		ShardTimeout:   30 * time.Second,
		HedgeDelay:     50 * time.Millisecond,
		AdminProbeWait: 20 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// bootCluster boots n single-endpoint shards plus a coordinator.
func bootCluster(t testing.TB, g *usimrank.Graph, n int) *Coordinator {
	t.Helper()
	shards := make([][]string, n)
	for i := range shards {
		shards[i] = []string{newShardNode(t, g).URL}
	}
	return newCoordinator(t, shards, nil)
}

// post drives a handler in-process and returns status and raw body
// bytes — the equivalence suite compares these byte for byte.
func post(t testing.TB, h http.Handler, path string, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func TestShardMapTotalStableBalanced(t *testing.T) {
	m, err := NewShardMap(4, []int{1, 0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for v := -1000; v < 10000; v++ {
		s := m.Of(v)
		if s < 0 || s >= 4 {
			t.Fatalf("Of(%d) = %d out of range", v, s)
		}
		if s != m.Of(v) {
			t.Fatalf("Of(%d) unstable", v)
		}
		if v >= 0 {
			counts[s]++
		}
	}
	for s, c := range counts {
		if c < 2000 || c > 3000 {
			t.Fatalf("shard %d owns %d of 10000 vertices — hash badly skewed: %v", s, c, counts)
		}
	}
	if got := m.Endpoints(0); got != 2 {
		t.Fatalf("Endpoints(0) = %d, want 2", got)
	}
	if got := m.Endpoints(1); got != 1 {
		t.Fatalf("Endpoints(1) = %d, want 1", got)
	}
	// The assignment is part of the frozen contract: pin a few values
	// so an accidental hash change cannot slip through review.
	m8, _ := NewShardMap(8, nil)
	pinned := map[int]int{0: 7, 1: 1, 2: 6, 1000: 0, -5: 2}
	for v, want := range pinned {
		if got := m8.Of(v); got != want {
			t.Fatalf("Of(%d) = %d, want pinned %d — the shard-map hash changed, which reshards every cluster", v, got, want)
		}
	}
}

func TestShardMapPartition(t *testing.T) {
	m, _ := NewShardMap(3, nil)
	parts := m.Partition(500)
	seen := make(map[int]bool)
	for s, part := range parts {
		last := -1
		for _, v := range part {
			if v <= last {
				t.Fatalf("shard %d partition not ascending: %v", s, part)
			}
			last = v
			if seen[v] {
				t.Fatalf("vertex %d assigned twice", v)
			}
			seen[v] = true
			if m.Of(v) != s {
				t.Fatalf("vertex %d in shard %d's part but Of = %d", v, s, m.Of(v))
			}
		}
	}
	if len(seen) != 500 {
		t.Fatalf("partition covers %d of 500 vertices", len(seen))
	}
}

func TestShardMapBadArgs(t *testing.T) {
	if _, err := NewShardMap(0, nil); err == nil {
		t.Fatal("want error for 0 shards")
	}
	if _, err := NewShardMap(2, []int{1, 2, 3}); err == nil {
		t.Fatal("want error for replica list longer than shard count")
	}
	if _, err := NewShardMap(2, []int{-1}); err == nil {
		t.Fatal("want error for negative replica count")
	}
}

func TestMergeTopKCanonical(t *testing.T) {
	// Adversarial partials: unsorted, duplicated, longer than k, with
	// score ties that must break on (U, V).
	a := []server.PairScore{{U: 5, V: 6, Score: 0.5}, {U: 1, V: 2, Score: 0.9}, {U: 3, V: 4, Score: 0.5}}
	b := []server.PairScore{{U: 1, V: 2, Score: 0.9}, {U: 0, V: 9, Score: 0.5}, {U: 7, V: 8, Score: 0.1}}
	got := mergeTopK(4, [][]server.PairScore{a, b, nil, {}})
	want := []server.PairScore{
		{U: 1, V: 2, Score: 0.9}, {U: 1, V: 2, Score: 0.9},
		{U: 0, V: 9, Score: 0.5}, {U: 3, V: 4, Score: 0.5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeTopK = %+v, want %+v", got, want)
	}
	if out := mergeTopK(3, nil); out == nil || len(out) != 0 {
		t.Fatalf("empty merge must be an empty non-nil slice, got %#v", out)
	}
}

func TestPlanBatchRegroupsAndReassembles(t *testing.T) {
	m, _ := NewShardMap(4, nil)
	r := rand.New(rand.NewSource(11))
	pairs := make([][2]int, 200)
	for i := range pairs {
		pairs[i] = [2]int{r.Intn(1000), r.Intn(1000)}
	}
	plan := planBatch(m, pairs)
	total := 0
	for i, s := range plan.shards {
		if i > 0 && plan.shards[i-1] >= s {
			t.Fatalf("shards not ascending: %v", plan.shards)
		}
		if len(plan.pairs[s]) != len(plan.indices[s]) {
			t.Fatalf("shard %d: %d pairs, %d indices", s, len(plan.pairs[s]), len(plan.indices[s]))
		}
		for j, p := range plan.pairs[s] {
			if m.Of(p[0]) != s {
				t.Fatalf("pair %v grouped to shard %d, Of = %d", p, s, m.Of(p[0]))
			}
			if pairs[plan.indices[s][j]] != p {
				t.Fatalf("index map broken: plan says pairs[%d] = %v, input has %v", plan.indices[s][j], p, pairs[plan.indices[s][j]])
			}
		}
		total += len(plan.pairs[s])
	}
	if total != len(pairs) {
		t.Fatalf("plan covers %d of %d pairs", total, len(pairs))
	}
}

func TestParseTopology(t *testing.T) {
	got, err := ParseTopology(
		"shard1=http://b:1, shard0=http://a:1",
		"shard0=http://a2:1,shard0=http://a3:1/,shard1=http://b2:1")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"http://a:1", "http://a2:1", "http://a3:1"},
		{"http://b:1", "http://b2:1"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseTopology = %v, want %v", got, want)
	}
	for _, bad := range []struct{ cluster, replicas string }{
		{"", ""},
		{"shard0=http://a:1,shard2=http://c:1", ""},  // hole at shard1
		{"shard0=http://a:1,shard0=http://aa:1", ""}, // duplicate primary
		{"shard0=http://a:1", "shard3=http://x:1"},   // replica for missing shard
		{"shard0=http://a:1", "shardX=http://x:1"},   // bad index
		{"shard0=http://a:1", "http://x:1"},          // missing key
		{"shard0=not-a-url", ""},                     // relative URL
		{"shard-1=http://a:1", ""},                   // negative index
	} {
		if _, err := ParseTopology(bad.cluster, bad.replicas); err == nil {
			t.Fatalf("ParseTopology(%q, %q): want error", bad.cluster, bad.replicas)
		}
	}
}

// TestClientHedgesToReplica: a slow primary must be outrun by the
// replica after HedgeDelay, well before the per-shard deadline.
func TestClientHedgesToReplica(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, `{"who":"primary"}`)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"who":"replica"}`)
	}))
	defer fast.Close()

	c := NewClient([][]string{{slow.URL, fast.URL}}, http.DefaultClient, 10*time.Second, 20*time.Millisecond)
	start := time.Now()
	resp, err := c.Do(t.Context(), 0, "POST", "/x", []byte("{}"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged request took %v — the hedge never fired", elapsed)
	}
	if !bytes.Contains(resp.Body, []byte("replica")) {
		t.Fatalf("expected the replica's answer, got %s", resp.Body)
	}
}

// TestClientRelaysDefinitive400: a 4xx is an answer, not a failure —
// it must never fail over to a replica.
func TestClientRelaysDefinitive400(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"bad_request"}}`, http.StatusBadRequest)
	}))
	defer bad.Close()
	replicaHit := false
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		replicaHit = true
		fmt.Fprint(w, "{}")
	}))
	defer replica.Close()

	c := NewClient([][]string{{bad.URL, replica.URL}}, http.DefaultClient, time.Second, time.Hour)
	resp, err := c.Do(t.Context(), 0, "POST", "/x", []byte("{}"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.Status)
	}
	if replicaHit {
		t.Fatal("definitive 400 must not fail over to the replica")
	}
}

// TestClientFailsOverOn5xx: a 500 is failover-eligible.
func TestClientFailsOverOn5xx(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer broken.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ok.Close()

	c := NewClient([][]string{{broken.URL, ok.URL}}, http.DefaultClient, time.Second, time.Hour)
	resp, err := c.Do(t.Context(), 0, "POST", "/x", []byte("{}"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || !bytes.Contains(resp.Body, []byte("ok")) {
		t.Fatalf("failover answer = %d %s", resp.Status, resp.Body)
	}
}

// TestClientExhaustionNamesShard: all endpoints dead → *ShardError
// carrying the shard index and every attempt.
func TestClientExhaustionNamesShard(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on
	c := NewClient([][]string{{"http://e0"}, {dead.URL}}, http.DefaultClient, 200*time.Millisecond, 10*time.Millisecond)
	_, err := c.Do(t.Context(), 1, "POST", "/x", []byte("{}"), 0)
	se, ok := err.(*ShardError)
	if !ok {
		t.Fatalf("err = %T %v, want *ShardError", err, err)
	}
	if se.Shard != 1 || len(se.Attempts) != 1 {
		t.Fatalf("ShardError = %+v", se)
	}
	if se.AllDeadline() {
		t.Fatal("connection refused must not read as a deadline expiry")
	}
}

// jsonCanonical strips the coalescing flag (legitimately
// scheduling-dependent under concurrency) and re-encodes with sorted
// keys, for comparisons under concurrent load. Safe from any
// goroutine (no testing.T calls).
func jsonCanonical(body []byte) (string, error) {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return "", fmt.Errorf("bad JSON %q: %w", body, err)
	}
	delete(m, "coalesced")
	out, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// TestClientRelays504WithoutFailover: a shard's own deadline verdict
// is a definitive answer — the engines are deterministic, so a replica
// would burn the same budget and time out the same way. The 504 must
// be relayed, never converted into a failover (and then a 502).
func TestClientRelays504WithoutFailover(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"deadline_exceeded"}}`, http.StatusGatewayTimeout)
	}))
	defer slow.Close()
	replicaHit := false
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		replicaHit = true
		fmt.Fprint(w, "{}")
	}))
	defer replica.Close()

	c := NewClient([][]string{{slow.URL, replica.URL}}, http.DefaultClient, time.Second, time.Hour)
	resp, err := c.Do(t.Context(), 0, "POST", "/x", []byte("{}"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want relayed 504", resp.Status)
	}
	if replicaHit {
		t.Fatal("downstream 504 must not fail over to the replica")
	}
}

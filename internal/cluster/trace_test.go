package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"usimrank/internal/obs"
	"usimrank/internal/server"
)

// postTraced is post plus response headers and an optional request
// trace header.
func postTraced(t testing.TB, h http.Handler, path, body, traceHeader string) (int, []byte, http.Header) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if traceHeader != "" {
		req.Header.Set(obs.TraceHeader, traceHeader)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes(), rec.Result().Header
}

// spansByName indexes a profile's spans, and checkConnected asserts
// every span's parent is either the trace's remote parent or another
// span of the same profile — one tree, no orphans.
func spansByName(p *obs.Profile) map[string][]obs.ProfileSpan {
	out := make(map[string][]obs.ProfileSpan)
	for _, s := range p.Spans {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

func checkConnected(t *testing.T, p *obs.Profile, remoteParents map[uint64]bool) {
	t.Helper()
	ids := make(map[uint64]bool, len(p.Spans))
	for _, s := range p.Spans {
		ids[s.ID] = true
	}
	for _, s := range p.Spans {
		if s.Parent != 0 && !ids[s.Parent] && !remoteParents[s.Parent] {
			t.Errorf("span %d %q has unknown parent %d", s.ID, s.Name, s.Parent)
		}
	}
}

// TestDebugProfileConnectedAcrossCluster drives the acceptance query:
// a debug=true pairs top-k against a 2-shard cluster must return one
// connected span tree covering the coordinator's scatter, BOTH shards'
// engine-compute spans (as remote profiles grafted onto the per-shard
// task spans, sharing the coordinator's trace id), and the merge —
// with the kernel's walk counters attached to the kernel spans.
func TestDebugProfileConnectedAcrossCluster(t *testing.T) {
	co := bootCluster(t, testGraph(), 2)
	status, body, hdr := postTraced(t, co, "/v1/topk", `{"alg":"sampling","k":5,"debug":true}`, "")
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp server.TopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Profile == nil || resp.Profile.TraceID == "" {
		t.Fatalf("debug response carries no profile: %s", body)
	}
	if got := hdr.Get(obs.TraceHeader); got != resp.Profile.TraceID {
		t.Fatalf("response trace header %q != profile trace id %q", got, resp.Profile.TraceID)
	}
	p := resp.Profile
	byName := spansByName(p)
	for _, name := range []string{"topk", "admission_wait", "coalesce", "scatter", "merge", "shard0", "shard1"} {
		if len(byName[name]) == 0 {
			t.Errorf("profile has no %q span: %v", name, names(p))
		}
	}
	checkConnected(t, p, nil)

	// Attempt span ids — the remote parents the shards' profiles hang
	// off (the trace header forwarded to a shard names the attempt span
	// that reached it).
	attempts := make(map[uint64]bool)
	for _, s := range p.Spans {
		if strings.HasPrefix(s.Name, "attempt ") {
			attempts[s.ID] = true
		}
	}
	if len(attempts) < 2 {
		t.Fatalf("expected an attempt span per shard, got %d", len(attempts))
	}

	remotes := 0
	for _, shard := range []string{"shard0", "shard1"} {
		for _, s := range byName[shard] {
			if s.Remote == nil {
				t.Fatalf("%s task span carries no remote profile", shard)
			}
			remotes++
			if s.Remote.TraceID != p.TraceID {
				t.Errorf("%s remote profile trace id %q, want the coordinator's %q", shard, s.Remote.TraceID, p.TraceID)
			}
			rn := spansByName(s.Remote)
			if len(rn["engine_compute"]) == 0 {
				t.Errorf("%s remote profile has no engine_compute span: %v", shard, names(s.Remote))
			}
			kernels := rn["kernel_single_source"]
			if len(kernels) == 0 {
				t.Errorf("%s remote profile has no kernel spans: %v", shard, names(s.Remote))
			}
			for _, k := range kernels {
				if k.Attrs["walks"] <= 0 {
					t.Errorf("%s kernel span carries no walk counter: %+v", shard, k)
				}
			}
			// Every shard-side span shares the trace; the node's root
			// spans hang off a coordinator attempt span — the
			// cross-process link checkConnected verifies via the
			// attempt-id set.
			checkConnected(t, s.Remote, attempts)
		}
	}
	if remotes < 2 {
		t.Fatalf("expected remote profiles from both shards, got %d", remotes)
	}
}

func names(p *obs.Profile) []string {
	out := make([]string, len(p.Spans))
	for i, s := range p.Spans {
		out[i] = s.Name
	}
	return out
}

// TestTraceHedgedFailoverErroredSpan kills a shard's primary and runs
// a debug fan-out: the trace must stay one connected tree in which the
// dead primary's attempt is an errored span and the replica's attempt
// carries the shard's remote profile.
func TestTraceHedgedFailoverErroredSpan(t *testing.T) {
	g := testGraph()
	primary, primaryFault := newFaultyShard(t, g)
	replica := newShardNode(t, g)
	co := newCoordinator(t, [][]string{
		{newShardNode(t, g).URL},
		{primary.URL, replica.URL},
	}, func(cfg *Config) {
		cfg.HedgeDelay = 10 * time.Millisecond
		cfg.ShardTimeout = 10 * time.Second
	})
	primaryFault.dead.Store(true)
	primary.CloseClientConnections()

	status, body, _ := postTraced(t, co, "/v1/topk", `{"alg":"sampling","k":5,"debug":true}`, "")
	if status != 200 {
		t.Fatalf("status %d after primary death: %s", status, body)
	}
	var resp server.TopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Profile == nil {
		t.Fatal("debug response carries no profile")
	}
	checkConnected(t, resp.Profile, nil)
	var failed, won int
	for _, s := range resp.Profile.Spans {
		if !strings.HasPrefix(s.Name, "attempt ") {
			continue
		}
		if strings.HasPrefix(s.Name, "attempt "+primary.URL) {
			if s.Error == "" {
				t.Errorf("dead primary's attempt span has no error: %+v", s)
			}
			failed++
		} else {
			won++
		}
	}
	if failed == 0 {
		t.Error("no errored attempt span for the dead primary")
	}
	if won < 2 {
		t.Errorf("expected winning attempt spans for shard0 and the replica, got %d", won)
	}
	// The failover still produced both shards' remote profiles.
	for _, shard := range []string{"shard0", "shard1"} {
		found := false
		for _, s := range resp.Profile.Spans {
			if s.Name == shard && s.Remote != nil {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has no remote profile after failover", shard)
		}
	}
}

// TestTraceStaleSwapRejection reproduces the mid-flight hot-swap
// hazard at the client layer with tracing armed: the stale endpoint's
// definitive answer is rejected for its old generation, and the trace
// shows it as an errored attempt span next to the current endpoint's
// winning attempt — one connected tree for the whole swap-and-retry.
func TestTraceStaleSwapRejection(t *testing.T) {
	g := testGraph()
	au, av, _ := g.ArcEndpoints(0)
	stale := newShardNode(t, g)
	current := newShardNode(t, g)
	directUpdate(t, current.URL, au, av, 0.111)

	c := NewClient([][]string{{stale.URL, current.URL}}, http.DefaultClient, 5*time.Second, time.Millisecond)
	tr := obs.NewTrace("", 0)
	root := tr.Start("client_do")
	ctx := obs.ContextWithSpan(t.Context(), root)
	resp, err := c.Do(ctx, 0, "POST", "/v1/score", []byte(`{"alg":"srsp","u":3,"v":17}`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.URL != current.URL {
		t.Fatalf("answer from %s, want the generation-2 endpoint", resp.URL)
	}
	root.End()
	p := tr.Profile()
	checkConnected(t, p, nil)
	var staleErrored, currentClean bool
	for _, s := range p.Spans {
		if s.Name == "attempt "+stale.URL && strings.Contains(s.Error, "stale graph") {
			staleErrored = true
		}
		if s.Name == "attempt "+current.URL && s.Error == "" {
			currentClean = true
		}
	}
	if !staleErrored {
		t.Errorf("stale endpoint's attempt is not an errored span: %v", names(p))
	}
	if !currentClean {
		t.Errorf("current endpoint's attempt span missing or errored: %v", names(p))
	}
	cs := c.Counters()
	if cs[0].StaleRejected == 0 {
		t.Error("stale rejection not counted")
	}
}

// TestTracingDoesNotPerturbResponses pins the byte-identity contract:
// for every query shape and algorithm, the response body with tracing
// armed (via trace header, and via a slow-query-armed coordinator over
// the same fleet) is byte-identical to the response with tracing off.
func TestTracingDoesNotPerturbResponses(t *testing.T) {
	g := testGraph()
	shards := [][]string{
		{newShardNode(t, g).URL},
		{newShardNode(t, g).URL},
	}
	plain := newCoordinator(t, shards, nil)
	slow := newCoordinator(t, shards, func(cfg *Config) {
		cfg.SlowQuery = time.Nanosecond // arms tracing and logs every query
	})

	queries := []struct{ path, body string }{
		{"/v1/score", `{"alg":"sampling","u":3,"v":17}`},
		{"/v1/score", `{"alg":"srsp","u":3,"v":17}`},
		{"/v1/source", `{"alg":"sampling","u":5}`},
		{"/v1/source", `{"alg":"srsp","u":5,"candidates":[1,2,3,9]}`},
		{"/v1/topk", `{"alg":"srsp","u":3,"k":5}`},
		{"/v1/topk", `{"alg":"sampling","k":5}`},
		{"/v1/batch", `{"alg":"srsp","pairs":[[1,2],[3,17],[40,41]]}`},
	}
	for _, q := range queries {
		offStatus, off, offHdr := postTraced(t, plain, q.path, q.body, "")
		if offStatus != 200 {
			t.Fatalf("%s %s: status %d: %s", q.path, q.body, offStatus, off)
		}
		if offHdr.Get(obs.TraceHeader) != "" {
			t.Errorf("%s: untraced response carries a trace header", q.path)
		}
		onStatus, on, onHdr := postTraced(t, plain, q.path, q.body, "cafe1234cafe1234-1f")
		if onStatus != 200 {
			t.Fatalf("%s traced: status %d: %s", q.path, onStatus, on)
		}
		if got := onHdr.Get(obs.TraceHeader); got != "cafe1234cafe1234" {
			t.Errorf("%s: trace header not echoed: %q", q.path, got)
		}
		if string(off) != string(on) {
			t.Errorf("%s %s: tracing perturbed the response\noff: %s\non:  %s", q.path, q.body, off, on)
		}
		slowStatus, slowBody, _ := postTraced(t, slow, q.path, q.body, "")
		if slowStatus != 200 {
			t.Fatalf("%s slow-armed: status %d: %s", q.path, slowStatus, slowBody)
		}
		if string(off) != string(slowBody) {
			t.Errorf("%s %s: slow-query tracing perturbed the response\noff:  %s\nslow: %s", q.path, q.body, off, slowBody)
		}
	}
}

// TestTraceAdminFanoutEcho: an admin mutation carrying a trace header
// gets the trace id echoed back, and the fleet still converges.
func TestTraceAdminFanoutEcho(t *testing.T) {
	g := testGraph()
	co := bootCluster(t, g, 2)
	au, av, _ := g.ArcEndpoints(0)
	body := fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":0.333}]}`, au, av)
	status, respBody, hdr := postTraced(t, co, "/v1/admin/update", body, "beefbeefbeefbeef-2a")
	if status != 200 {
		t.Fatalf("status %d: %s", status, respBody)
	}
	if got := hdr.Get(obs.TraceHeader); got != "beefbeefbeefbeef" {
		t.Fatalf("admin fan-out did not echo the trace id: %q", got)
	}
	if co.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", co.Generation())
	}
}

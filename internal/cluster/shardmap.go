package cluster

import "fmt"

// ShardMap deterministically assigns every source vertex to one of a
// fixed number of shards and records how many serving endpoints
// (primary + replicas) each shard has.
//
// The assignment contract (see doc.go) is frozen: Of is a pure
// function of (vertex, shard count) — a splitmix64-style avalanche of
// the vertex id reduced mod the shard count — so any coordinator, any
// test, and any future process agrees on which shard owns which
// source without coordination. The hash is total (defined for every
// int, including negatives) and stable across processes, platforms,
// and releases.
type ShardMap struct {
	shards   int
	replicas []int // replicas[i] = replica endpoint count of shard i
}

// NewShardMap builds a map for `shards` shards. replicas[i] is the
// number of replica endpoints of shard i beyond its primary; nil means
// no shard has replicas; a short slice is zero-extended.
func NewShardMap(shards int, replicas []int) (*ShardMap, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", shards)
	}
	if len(replicas) > shards {
		return nil, fmt.Errorf("cluster: replica list covers %d shards, map has %d", len(replicas), shards)
	}
	r := make([]int, shards)
	for i, n := range replicas {
		if n < 0 {
			return nil, fmt.Errorf("cluster: shard %d has negative replica count %d", i, n)
		}
		r[i] = n
	}
	return &ShardMap{shards: shards, replicas: r}, nil
}

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return m.shards }

// Of returns the shard owning source vertex v. Total and stable: every
// int maps to exactly one shard in [0, Shards()), and the same
// (vertex, shard count) pair maps identically in every process.
func (m *ShardMap) Of(v int) int {
	return int(mix64(uint64(int64(v))) % uint64(m.shards))
}

// Endpoints returns the serving endpoint count of shard s: its primary
// plus its replicas. Panics on an out-of-range shard (caller bug).
func (m *ShardMap) Endpoints(s int) int {
	return 1 + m.replicas[s]
}

// Partition splits the source vertex ids [0, n) into one slice per
// shard, in ascending vertex order within each slice. Slices may be
// empty; together they cover every vertex exactly once. This is the
// decomposition the coordinator sends to shards for a pairs top-k.
func (m *ShardMap) Partition(n int) [][]int {
	parts := make([][]int, m.shards)
	for v := 0; v < n; v++ {
		s := m.Of(v)
		parts[s] = append(parts[s], v)
	}
	return parts
}

// mix64 is the splitmix64 finaliser: a fixed, well-dispersed avalanche
// of the vertex id. The constants are part of the shard-map contract —
// changing them resharded every cluster, so they never change.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"usimrank"
	"usimrank/internal/obs"
	"usimrank/internal/server"
	"usimrank/internal/sub"
)

// Config configures a Coordinator. Shards is required; everything else
// defaults to sane serving values.
type Config struct {
	// Shards[i] lists shard i's endpoint base URLs, primary first, then
	// replicas. Every endpoint of a shard must serve the same graph
	// with the same engine options and seed — the determinism guarantee
	// rests on it.
	Shards [][]string
	// ShardTimeout bounds each downstream endpoint attempt. Default 25s.
	ShardTimeout time.Duration
	// HedgeDelay is how long the primary may stay silent before the
	// first replica is asked in parallel. Default 500ms; it never fires
	// for shards without replicas.
	HedgeDelay time.Duration
	// QueryTimeout is the coordinator's per-request deadline; requests
	// may lower (but not raise) it via timeout_ms. Default 30s.
	QueryTimeout time.Duration
	// MaxInFlight bounds concurrently admitted queries. Default 256 (the
	// coordinator is I/O-bound; the real compute bound lives on the
	// shards' own admission gates).
	MaxInFlight int
	// AdmissionWait is how long a request may wait for an in-flight
	// slot before 429. Default 100ms; negative rejects immediately.
	AdmissionWait time.Duration
	// AdmissionReserve carves this many of MaxInFlight's slots into a
	// reserve only adaptive (eps-bearing) queries may use when the
	// general pool is saturated — the coordinator-side twin of the node
	// server's reserve. Default 0 (no reserve).
	AdmissionReserve int
	// AdminProbes is how many times a skewed admin fan-out re-probes
	// shard generations (AdminProbeWait apart) before reporting a
	// generation-skew error. Default 3.
	AdminProbes    int
	AdminProbeWait time.Duration
	// HTTPClient overrides the downstream transport (tests inject
	// httptest clients). Default: a dedicated client with generous
	// connection pooling per endpoint.
	HTTPClient *http.Client
	// LogEvery, when positive, logs a one-line metrics summary at that
	// period.
	LogEvery time.Duration
	// Logger receives periodic summaries and admin events. Default:
	// stderr with an "usimd-coord " prefix.
	Logger *log.Logger
	// SlowQuery, when positive, arms tracing on every query and logs a
	// structured slow-query line (trace id, scatter span timings) for
	// queries at or above the threshold. 0 disables.
	SlowQuery time.Duration
	// LogJSON emits slow-query lines as single-line JSON objects
	// instead of key=value text.
	LogJSON bool
}

func (c Config) withDefaults() Config {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 25 * time.Second
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 500 * time.Millisecond
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 256
	}
	if c.AdmissionWait == 0 {
		c.AdmissionWait = 100 * time.Millisecond
	}
	if c.AdminProbes < 1 {
		c.AdminProbes = 3
	}
	if c.AdminProbeWait <= 0 {
		c.AdminProbeWait = 200 * time.Millisecond
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "usimd-coord ", log.LstdFlags)
	}
	return c
}

// clusterState is the coordinator's consistent view of the shard
// fleet, swapped atomically by admin fan-outs.
type clusterState struct {
	gen      uint64
	vertices int
	arcs     int
}

// Coordinator scatter-gathers the five query shapes over a fleet of
// ordinary usimd shard nodes and merges the answers deterministically
// (see doc.go for the shard-map and merge contracts). It reuses the
// single-node serving machinery — request coalescing, admission
// control, latency histograms (kept per shape and per downstream
// shard) — and serialises admin mutations exactly like a single node.
type Coordinator struct {
	cfg    Config
	shards *ShardMap
	client *Client

	state    atomic.Pointer[clusterState]
	adminOps atomic.Uint64
	// adminMu serialises cluster-wide mutations, the same invariant the
	// single node enforces per engine: two fan-outs interleaving across
	// shards is exactly the generation-skew this coordinator exists to
	// prevent.
	adminMu sync.Mutex

	adm     *server.Admission
	flights *server.FlightGroup
	metrics *server.MetricsRegistry

	// subs tracks live relay streams: active count for stats, shutdown
	// broadcast and drain for graceful exit. Vertex-level wake filtering
	// happens on the owning nodes, so relays register no vertices here.
	subs *sub.Registry

	// The stats endpoint's endpoint-health probe is cached briefly and
	// single-flighted behind probeMu: /v1/stats bypasses admission (it
	// must work when the query plane is saturated), so an aggressive
	// scraper must not multiply into shards×replicas downstream probes
	// per scrape, nor pile up goroutines behind one hung endpoint.
	probeMu    sync.Mutex
	probeAt    time.Time
	probeCache []probedHealth

	baseCtx context.Context
	cancel  context.CancelFunc

	start time.Time
	mux   *http.ServeMux
}

// New builds a coordinator over cfg.Shards and probes every endpoint:
// each shard needs at least one reachable endpoint, and all reachable
// endpoints must agree on the graph generation, vertex count, and arc
// count (a fleet already skewed at boot cannot serve deterministic
// answers).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	replicas := make([]int, len(cfg.Shards))
	for i, eps := range cfg.Shards {
		if len(eps) == 0 {
			return nil, fmt.Errorf("cluster: shard%d has no endpoints", i)
		}
		replicas[i] = len(eps) - 1
	}
	sm, err := NewShardMap(len(cfg.Shards), replicas)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	co := &Coordinator{
		cfg:     cfg,
		shards:  sm,
		client:  NewClient(cfg.Shards, cfg.HTTPClient, cfg.ShardTimeout, cfg.HedgeDelay),
		adm:     server.NewTieredAdmission(cfg.MaxInFlight, cfg.AdmissionReserve, cfg.AdmissionWait),
		flights: server.NewFlightGroup(),
		metrics: server.NewMetricsRegistry(),
		subs:    sub.NewRegistry(),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
	}
	st, err := co.bootProbe()
	if err != nil {
		cancel()
		return nil, err
	}
	co.state.Store(st)

	co.mux = http.NewServeMux()
	co.mux.HandleFunc("POST /v1/score", co.handleScore)
	co.mux.HandleFunc("POST /v1/source", co.handleSource)
	co.mux.HandleFunc("POST /v1/topk", co.handleTopK)
	co.mux.HandleFunc("POST /v1/batch", co.handleBatch)
	co.mux.HandleFunc("GET /v1/stats", co.handleStats)
	co.mux.HandleFunc("GET /v1/subscribe", co.handleSubscribe)
	co.mux.HandleFunc("GET /metrics", co.handleMetrics)
	co.mux.HandleFunc("POST /v1/admin/reload", co.handleReload)
	co.mux.HandleFunc("POST /v1/admin/update", co.handleUpdate)
	co.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	co.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound, "unknown route "+r.URL.Path)
	})
	if cfg.LogEvery > 0 {
		go co.logLoop()
	}
	return co, nil
}

// Handler returns the coordinator's HTTP handler.
func (co *Coordinator) Handler() http.Handler { return co.mux }

// ServeHTTP implements http.Handler.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { co.mux.ServeHTTP(w, r) }

// Close cancels in-flight scatter work and the periodic logger.
func (co *Coordinator) Close() { co.cancel() }

// Generation returns the coordinator's view of the cluster graph
// generation.
func (co *Coordinator) Generation() uint64 { return co.state.Load().gen }

func shardName(i int) string { return "shard" + strconv.Itoa(i) }

// bootProbe reads every endpoint's stats and folds them into the boot
// cluster state.
func (co *Coordinator) bootProbe() (*clusterState, error) {
	health := co.probeAll(co.baseCtx)
	var st *clusterState
	for _, h := range health {
		if !h.Reachable {
			continue
		}
		if st == nil {
			st = &clusterState{gen: h.Generation, vertices: h.vertices, arcs: h.arcs}
			continue
		}
		if h.Generation != st.gen || h.vertices != st.vertices || h.arcs != st.arcs {
			return nil, fmt.Errorf(
				"cluster: boot generation skew: %s %s at generation %d (%d vertices), fleet at generation %d (%d vertices)",
				shardName(h.Shard), h.URL, h.Generation, h.vertices, st.gen, st.vertices)
		}
	}
	reachable := make(map[int]bool)
	for _, h := range health {
		if h.Reachable {
			reachable[h.Shard] = true
		}
	}
	for s := 0; s < co.shards.Shards(); s++ {
		if !reachable[s] {
			return nil, fmt.Errorf("cluster: %s has no reachable endpoint", shardName(s))
		}
	}
	for _, h := range health {
		if !h.Reachable {
			co.cfg.Logger.Printf("boot: %s %s unreachable (%s); serving degraded until it returns",
				shardName(h.Shard), h.URL, h.Error)
		}
	}
	return st, nil
}

// probedHealth augments the wire ShardHealth with the graph figures
// needed internally.
type probedHealth struct {
	ShardHealth
	vertices, arcs int
}

// probeAll reads /v1/stats from every endpoint concurrently.
func (co *Coordinator) probeAll(ctx context.Context) []probedHealth {
	type slot struct{ shard, replica int }
	var slots []slot
	for s, eps := range co.cfg.Shards {
		for r := range eps {
			slots = append(slots, slot{s, r})
		}
	}
	out := make([]probedHealth, len(slots))
	var wg sync.WaitGroup
	for i, sl := range slots {
		wg.Add(1)
		go func(i int, sl slot) {
			defer wg.Done()
			url := co.cfg.Shards[sl.shard][sl.replica]
			role := "primary"
			if sl.replica > 0 {
				role = "replica"
			}
			h := probedHealth{ShardHealth: ShardHealth{Shard: sl.shard, URL: url, Role: role}}
			resp, err := co.client.DoEndpoint(ctx, url, "GET", "/v1/stats", nil)
			if err == nil && resp.Status == http.StatusOK {
				var st server.StatsResponse
				if jerr := json.Unmarshal(resp.Body, &st); jerr == nil {
					h.Reachable = true
					h.Generation = st.Graph.Generation
					h.vertices = st.Graph.Vertices
					h.arcs = st.Graph.Arcs
				} else {
					h.Error = "bad stats body: " + jerr.Error()
				}
			} else if err != nil {
				h.Error = err.Error()
			} else {
				h.Error = fmt.Sprintf("status %d", resp.Status)
			}
			out[i] = h
		}(i, sl)
	}
	wg.Wait()
	return out
}

// ---- query plumbing ----------------------------------------------------

// readBody reads a bounded request body for decode-then-relay.
func (co *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxBodyBytes))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "bad request body: "+err.Error())
		return nil, false
	}
	return b, true
}

// decodeStrict mirrors the single node's strict JSON decoding
// (unknown fields rejected) so the coordinator 400s exactly where a
// shard would.
func decodeStrict(w http.ResponseWriter, raw []byte, into any) bool {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "bad JSON body: "+err.Error())
		return false
	}
	return true
}

func (co *Coordinator) effectiveTimeout(ms int) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 || d > co.cfg.QueryTimeout {
		return co.cfg.QueryTimeout
	}
	return d
}

// traceFor arms tracing for a request when any consumer exists: an
// incoming Usimrank-Trace header, the debug flag, or a configured
// slow-query threshold. Otherwise it returns (nil, zero Span) and the
// request records nothing.
func (co *Coordinator) traceFor(r *http.Request, shape string, debug bool) (*obs.Trace, obs.Span) {
	hdr := r.Header.Get(obs.TraceHeader)
	if hdr == "" && !debug && co.cfg.SlowQuery <= 0 {
		return nil, obs.Span{}
	}
	id, parent, _ := obs.ParseTraceHeader(hdr)
	tr := obs.NewTrace(id, parent)
	return tr, tr.Start(shape)
}

// debugKey forks a flight key for debug requests, exactly like the
// single node: a debug leader's relayed or merged response carries a
// profile a non-debug follower must never receive, and a debug
// follower behind a non-debug leader would get none.
func debugKey(key string, debug bool) string {
	if debug {
		return key + "|dbg"
	}
	return key
}

// adaptiveKey appends an eps-bearing request's accuracy target to its
// flight key, exactly like the single node: adaptive and full-budget
// queries (and different targets) must never share a flight.
func adaptiveKey(key string, eps, delta float64) string {
	if eps <= 0 {
		return key
	}
	return fmt.Sprintf("%s|e%x|d%x", key, math.Float64bits(eps), math.Float64bits(delta))
}

// execute runs one admitted, coalesced, deadline-bounded scatter and
// writes the error response when it fails — the coordinator-side twin
// of the single node's execute, with downstream fan-out in place of an
// engine call. When this request leads its flight, the scatter span
// rides the flight context into the fan-out, so per-shard and
// per-attempt spans (and the shards' own remote profiles) nest under
// it.
//
// cheap marks a degradable (adaptive eps-bearing) query eligible for
// the admission reserve tier; followers release their slot while
// idling on the leader's result, exactly like the node server.
func (co *Coordinator) execute(w http.ResponseWriter, r *http.Request, shape, alg string, timeoutMs int, cheap bool, key string, tr *obs.Trace, root obs.Span, fn func(ctx context.Context) (any, error)) (any, bool, bool) {
	if tr != nil {
		w.Header().Set(obs.TraceHeader, tr.ID())
	}
	timeout := co.effectiveTimeout(timeoutMs)
	key = fmt.Sprintf("%s|t%d", key, timeout.Milliseconds())
	waitCtx, cancelWait := context.WithTimeout(r.Context(), timeout)
	defer cancelWait()

	asp := root.Start("admission_wait")
	release := co.adm.AcquireTier(waitCtx, cheap)
	if release == nil {
		asp.Error(errors.New("admission rejected"))
		asp.End()
		co.metrics.AdmissionRejected.Add(1)
		w.Header().Set("Retry-After", server.RetryAfterSeconds(co.adm.Wait()))
		server.WriteError(w, http.StatusTooManyRequests, server.CodeOverloaded,
			fmt.Sprintf("coordinator saturated: %d queries in flight", co.cfg.MaxInFlight))
		return nil, false, false
	}
	asp.End()
	co.metrics.InFlight.Add(1)
	var relOnce sync.Once
	releaseSlot := func() {
		relOnce.Do(func() {
			co.metrics.InFlight.Add(-1)
			release()
		})
	}
	defer releaseSlot()

	start := time.Now()
	csp := root.Start("coalesce")
	val, coalesced, err := co.flights.Do(waitCtx, key, releaseSlot, func() func() (any, error) {
		fctx, cancelFlight := context.WithTimeout(co.baseCtx, timeout)
		sct := root.Start("scatter")
		fctx = obs.ContextWithSpan(fctx, sct)
		return func() (any, error) {
			defer sct.End()
			defer cancelFlight()
			return fn(fctx)
		}
	})
	if csp.Enabled() {
		var lead int64
		if !coalesced {
			lead = 1
		}
		csp.Add("leader", lead)
	}
	csp.End()
	elapsed := time.Since(start)
	// A disconnected client's cancellation is not a serving error: count
	// it on its own counter and skip the write (see the node server).
	if err != nil && errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		co.metrics.ClientGone.Add(1)
		co.metrics.RecordQuery(shape, alg, elapsed, coalesced, nil)
		root.Error(err)
		server.LogSlowQuery(co.cfg.Logger, co.cfg.LogJSON, co.cfg.SlowQuery, shape, alg, tr, elapsed, coalesced, err)
		return nil, coalesced, false
	}
	co.metrics.RecordQuery(shape, alg, elapsed, coalesced, err)
	root.Error(err)
	server.LogSlowQuery(co.cfg.Logger, co.cfg.LogJSON, co.cfg.SlowQuery, shape, alg, tr, elapsed, coalesced, err)
	if err != nil {
		co.writeClusterError(w, err)
		return nil, coalesced, false
	}
	return val, coalesced, true
}

// maxSourcesPerChunk bounds one coordinator-built sources array. A
// 10-digit vertex id costs ≤ 11 JSON bytes, so 200k sources stay near
// 2 MiB — comfortably inside the node-side 8 MiB request cap however
// large the graph grows. A variable so tests can shrink it and prove
// chunked merges stay bit-identical.
var maxSourcesPerChunk = 200_000

// relayError carries a definitive non-200 downstream response (a
// shard's 400, say) through the flight layer so it is relayed, not
// wrapped.
type relayError struct{ resp *ShardResponse }

func (e *relayError) Error() string {
	return fmt.Sprintf("downstream status %d from %s", e.resp.Status, e.resp.URL)
}

// writeClusterError maps a scatter failure to the error envelope:
// shard exhaustion becomes a structured 502 (or 504 when every attempt
// died on the per-shard deadline) naming the shard; definitive
// downstream errors are relayed verbatim.
func (co *Coordinator) writeClusterError(w http.ResponseWriter, err error) {
	var re *relayError
	if errors.As(err, &re) {
		relay(w, re.resp)
		return
	}
	var mg *mixedGenerationError
	if errors.As(err, &mg) {
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeUnavailable, mg.Error())
		return
	}
	var se *ShardError
	if errors.As(err, &se) {
		if allCanceled(se) {
			// Pure cancellation fallout (coordinator shutdown, client
			// gone) is not the shard's fault — don't blame one.
			server.WriteError(w, http.StatusServiceUnavailable, server.CodeUnavailable,
				"query cancelled (client disconnected or coordinator shutting down)")
			return
		}
		detail := server.ErrorDetail{Message: se.Error(), Shard: shardName(se.Shard)}
		if se.AllDeadline() {
			co.metrics.DeadlineExceeded.Add(1)
			detail.Code = server.CodeDeadlineExceeded
			server.WriteJSON(w, http.StatusGatewayTimeout, server.ErrorResponse{Error: detail})
			return
		}
		detail.Code = server.CodeShardUnavailable
		server.WriteJSON(w, http.StatusBadGateway, server.ErrorResponse{Error: detail})
		return
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		co.metrics.DeadlineExceeded.Add(1)
		server.WriteError(w, http.StatusGatewayTimeout, server.CodeDeadlineExceeded,
			"query exceeded its deadline; raise timeout_ms or the coordinator's -timeout")
	case errors.Is(err, context.Canceled):
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeUnavailable,
			"query cancelled (client disconnected or coordinator shutting down)")
	default:
		server.WriteError(w, http.StatusInternalServerError, server.CodeEngineError, err.Error())
	}
}

// relay writes a downstream response verbatim: pass-through shapes owe
// their byte-identity guarantee to this function not touching the
// body.
func relay(w http.ResponseWriter, resp *ShardResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
}

// doShard is Client.Do plus the per-downstream-shard latency
// histogram ("shard2/score" cells in /v1/stats).
func (co *Coordinator) doShard(ctx context.Context, shard int, shape, path string, body []byte) (*ShardResponse, error) {
	start := time.Now()
	resp, err := co.client.Do(ctx, shard, "POST", path, body, co.Generation())
	co.metrics.RecordDownstream(shardName(shard), shape, time.Since(start), err)
	return resp, err
}

// passThrough executes a single-shard shape: the owning shard's
// definitive response (success or error) is relayed verbatim. A debug
// profile on this path is the NODE's profile riding the relayed body —
// the coordinator cannot splice its own spans into bytes it must not
// touch, so its scatter/attempt spans surface only via the slow-query
// log and an explicit Usimrank-Trace header.
func (co *Coordinator) passThrough(w http.ResponseWriter, r *http.Request, shape, alg string, timeoutMs int, cheap bool, key string, tr *obs.Trace, root obs.Span, shard int, path string, raw []byte) {
	val, _, ok := co.execute(w, r, shape, alg, timeoutMs, cheap, key, tr, root, func(ctx context.Context) (any, error) {
		sp := obs.SpanFromContext(ctx).Start(shardName(shard))
		resp, err := co.doShard(obs.ContextWithSpan(ctx, sp), shard, shape, path, raw)
		sp.Error(err)
		sp.End()
		return resp, err
	})
	if !ok {
		return
	}
	resp := val.(*ShardResponse)
	// A relayed error is still an error the client received: the
	// flight reported it as a plain value (so it could be relayed
	// verbatim), but the stats must not read all-healthy while clients
	// stream 504s from the shards' own deadlines.
	if resp.Status >= 400 {
		co.metrics.CountError(shape, alg)
		if resp.Status == http.StatusGatewayTimeout {
			co.metrics.DeadlineExceeded.Add(1)
		}
	}
	relay(w, resp)
}

// scatterTask is one downstream request of a scatter: the target
// shard and the request body to send it.
type scatterTask struct {
	shard int
	body  []byte
}

// scatter fans the tasks out concurrently (each with hedged retry)
// and gathers the 200 bodies in task order. The first failure (by
// ascending task position, for determinism) cancels the siblings and
// is returned: a ShardError for an exhausted shard, a relayError for
// a definitive downstream error. Gathered answers must all carry the
// same graph generation: a scatter racing an admin mutation could
// otherwise merge old-graph and new-graph partials into a response no
// single node ever served, so a mixed gather fails with a transient
// mixedGenerationError (503) instead.
//
// Each task gets its own span under the flight's scatter span, named
// for the shard it targets; the client's endpoint attempts nest under
// it. When debug is set the shard's own execution profile is decoded
// from its 200 body and grafted onto the task span, so one debug
// response shows coordinator scatter, both shards' engine-compute
// spans, and the merge in a single connected tree.
func (co *Coordinator) scatter(ctx context.Context, shape, path string, tasks []scatterTask, debug bool) ([][]byte, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resps := make([]*ShardResponse, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, task := range tasks {
		wg.Add(1)
		go func(i int, task scatterTask) {
			defer wg.Done()
			sp := obs.SpanFromContext(ctx).Start(shardName(task.shard))
			defer sp.End()
			resp, err := co.doShard(obs.ContextWithSpan(ctx, sp), task.shard, shape, path, task.body)
			if err != nil {
				sp.Error(err)
				errs[i] = err
				cancel()
				return
			}
			if resp.Status != http.StatusOK {
				sp.Error(fmt.Errorf("status %d", resp.Status))
				errs[i] = &relayError{resp: resp}
				cancel()
				return
			}
			if debug && sp.Enabled() {
				var pr struct {
					Profile *obs.Profile `json:"profile"`
				}
				if jerr := json.Unmarshal(resp.Body, &pr); jerr == nil {
					sp.AttachRemote(pr.Profile)
				}
			}
			resps[i] = resp
		}(i, task)
	}
	wg.Wait()
	if err := pickScatterError(errs); err != nil {
		return nil, err
	}
	var gen uint64
	bodies := make([][]byte, len(resps))
	for i, r := range resps {
		if r.Generation != 0 {
			if gen == 0 {
				gen = r.Generation
			} else if r.Generation != gen {
				return nil, &mixedGenerationError{a: gen, b: r.Generation}
			}
		}
		bodies[i] = r.Body
	}
	return bodies, nil
}

// mixedGenerationError reports a gather whose partial answers span a
// graph mutation. Transient by construction: once the admin fan-out
// settles, a retry gathers one generation.
type mixedGenerationError struct{ a, b uint64 }

func (e *mixedGenerationError) Error() string {
	return fmt.Sprintf("scatter spanned a graph mutation: partial answers at generations %d and %d; retry", e.a, e.b)
}

// pickScatterError chooses the root-cause failure of a scatter: the
// first shard's cancel() makes every sibling fail with a cancellation
// too, and reporting one of those would hide the shard that actually
// broke. Definitive downstream errors outrank shard exhaustion, which
// outranks cancellation fallout; ties break on ascending position so
// the choice is deterministic.
func pickScatterError(errs []error) error {
	var firstShard, firstAny error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstAny == nil {
			firstAny = err
		}
		var re *relayError
		if errors.As(err, &re) {
			return err
		}
		var se *ShardError
		if firstShard == nil && errors.As(err, &se) && !allCanceled(se) {
			firstShard = err
		}
	}
	if firstShard != nil {
		return firstShard
	}
	return firstAny
}

// allCanceled reports whether a shard's failure is pure cancellation
// fallout from a sibling's cancel.
func allCanceled(se *ShardError) bool {
	for _, a := range se.Attempts {
		if !errors.Is(a.Err, context.Canceled) {
			return false
		}
	}
	return len(se.Attempts) > 0
}

// ---- the five query shapes ---------------------------------------------

func (co *Coordinator) handleScore(w http.ResponseWriter, r *http.Request) {
	raw, ok := co.readBody(w, r)
	if !ok {
		return
	}
	var req server.ScoreRequest
	if !decodeStrict(w, raw, &req) {
		return
	}
	alg, err := usimrank.ParseAlgorithm(req.Alg)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
		return
	}
	shard := co.shards.Of(req.U)
	key := fmt.Sprintf("score|g%d|%s|%d|%d", co.Generation(), alg, req.U, req.V)
	key = debugKey(adaptiveKey(key, req.Eps, req.Delta), req.Debug)
	tr, root := co.traceFor(r, "score", req.Debug)
	co.passThrough(w, r, "score", alg.String(), req.TimeoutMs, req.Eps > 0, key, tr, root, shard, "/v1/score", raw)
}

func (co *Coordinator) handleSource(w http.ResponseWriter, r *http.Request) {
	raw, ok := co.readBody(w, r)
	if !ok {
		return
	}
	var req server.SourceRequest
	if !decodeStrict(w, raw, &req) {
		return
	}
	// "indexed" is a source-only algorithm the engine enum does not
	// cover: it routes like any other single-shard source query, and the
	// owning shard answers from its partition's index (each node serves
	// the index built for its own graph; the shard rejects it with 400
	// when it holds none).
	algName := server.AlgIndexed
	if !strings.EqualFold(req.Alg, server.AlgIndexed) {
		alg, err := usimrank.ParseAlgorithm(req.Alg)
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
			return
		}
		algName = alg.String()
	}
	shard := co.shards.Of(req.U)
	candKey := "all"
	if req.Candidates != nil {
		candKey = server.DigestInts(req.Candidates)
	}
	key := fmt.Sprintf("source|g%d|%s|%d|%s", co.Generation(), algName, req.U, candKey)
	key = debugKey(adaptiveKey(key, req.Eps, req.Delta), req.Debug)
	tr, root := co.traceFor(r, "source", req.Debug)
	co.passThrough(w, r, "source", algName, req.TimeoutMs, req.Eps > 0, key, tr, root, shard, "/v1/source", raw)
}

func (co *Coordinator) handleTopK(w http.ResponseWriter, r *http.Request) {
	raw, ok := co.readBody(w, r)
	if !ok {
		return
	}
	var req server.TopKRequest
	if !decodeStrict(w, raw, &req) {
		return
	}
	alg, err := usimrank.ParseAlgorithm(req.Alg)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
		return
	}
	if req.K < 1 {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("k = %d < 1", req.K))
		return
	}
	if req.U != nil {
		if req.Sources != nil {
			server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
				`"sources" is only valid for pairs queries (omit "u")`)
			return
		}
		shard := co.shards.Of(*req.U)
		key := fmt.Sprintf("topk|g%d|%s|u%d|k%d", co.Generation(), alg, *req.U, req.K)
		key = debugKey(adaptiveKey(key, req.Eps, req.Delta), req.Debug)
		tr, root := co.traceFor(r, "topk", req.Debug)
		co.passThrough(w, r, "topk", alg.String(), req.TimeoutMs, req.Eps > 0, key, tr, root, shard, "/v1/topk", raw)
		return
	}

	// Pairs: scatter the source partition, k-way merge the partial
	// top-k lists under the canonical order.
	st := co.state.Load()
	var key string
	if req.Sources != nil {
		key = fmt.Sprintf("topk|g%d|%s|pairs|k%d|s%s", st.gen, alg, req.K, server.DigestInts(req.Sources))
	} else {
		key = fmt.Sprintf("topk|g%d|%s|pairs|k%d", st.gen, alg, req.K)
	}
	key = debugKey(adaptiveKey(key, req.Eps, req.Delta), req.Debug)
	tr, root := co.traceFor(r, "topk", req.Debug)
	val, coalesced, ok := co.execute(w, r, "topk", alg.String(), req.TimeoutMs, req.Eps > 0, key, tr, root, func(ctx context.Context) (any, error) {
		// The O(V) partition and the scatter bodies are built inside
		// the flight, so coalescing followers joining this key pay
		// nothing for work the leader's tasks already carry.
		var parts [][]int
		if req.Sources != nil {
			parts = make([][]int, co.shards.Shards())
			for _, u := range req.Sources {
				s := co.shards.Of(u)
				parts[s] = append(parts[s], u)
			}
		} else {
			parts = co.shards.Partition(st.vertices)
		}
		// Chunk each shard's source list so coordinator-built bodies
		// never outgrow the node-side request cap on huge graphs; the
		// merge is associative under the canonical order, so chunked
		// partials fold into exactly the same top-k.
		var tasks []scatterTask
		for s, p := range parts {
			for len(p) > 0 {
				chunk := p
				if len(chunk) > maxSourcesPerChunk {
					chunk = chunk[:maxSourcesPerChunk]
				}
				p = p[len(chunk):]
				body, err := json.Marshal(server.TopKRequest{Alg: req.Alg, K: req.K, Sources: chunk, Eps: req.Eps, Delta: req.Delta, TimeoutMs: req.TimeoutMs, Debug: req.Debug})
				if err != nil {
					return nil, err
				}
				tasks = append(tasks, scatterTask{shard: s, body: body})
			}
		}
		bodies, err := co.scatter(ctx, "topk", "/v1/topk", tasks, req.Debug)
		if err != nil {
			return nil, err
		}
		lists := make([][]server.PairScore, len(bodies))
		merged := mergedTopK{}
		for i, b := range bodies {
			var resp server.TopKResponse
			if err := json.Unmarshal(b, &resp); err != nil {
				return nil, fmt.Errorf("%s: bad top-k body: %w", shardName(tasks[i].shard), err)
			}
			lists[i] = resp.Results
			// Fold each shard's accuracy report into the cluster-wide
			// one: the merged ranking is only as tight as the loosest
			// shard (radius = max), converged only if every shard
			// converged, and partial as soon as any shard degraded. The
			// scatter gathered every body (a failed shard fails the whole
			// query), so a partial merge never hides a missing shard.
			if resp.Adaptive != nil {
				if merged.adaptive == nil {
					merged.adaptive = &server.AdaptiveInfo{
						Eps: resp.Adaptive.Eps, Delta: resp.Adaptive.Delta,
						Converged: true,
					}
				}
				if resp.Adaptive.Radius > merged.adaptive.Radius {
					merged.adaptive.Radius = resp.Adaptive.Radius
				}
				merged.adaptive.Walks += resp.Adaptive.Walks
				if resp.Adaptive.Rounds > merged.adaptive.Rounds {
					merged.adaptive.Rounds = resp.Adaptive.Rounds
				}
				merged.adaptive.Converged = merged.adaptive.Converged && resp.Adaptive.Converged
				merged.partial = merged.partial || resp.Partial
			}
		}
		msp := obs.SpanFromContext(ctx).Start("merge")
		msp.Add("lists", int64(len(lists)))
		merged.results = mergeTopK(req.K, lists)
		msp.End()
		return merged, nil
	})
	if !ok {
		return
	}
	mg := val.(mergedTopK)
	resp := server.TopKResponse{
		Alg: alg.String(), U: nil, K: req.K,
		Results: mg.results, Coalesced: coalesced,
		Adaptive: mg.adaptive, Partial: mg.partial,
	}
	if req.Debug {
		root.End()
		resp.Profile = tr.Profile()
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

// mergedTopK bundles a merged pairs ranking with the shards' folded
// accuracy report through the flight's any-typed value.
type mergedTopK struct {
	results  []server.PairScore
	adaptive *server.AdaptiveInfo
	partial  bool
}

func (co *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	raw, ok := co.readBody(w, r)
	if !ok {
		return
	}
	var req server.BatchRequest
	if !decodeStrict(w, raw, &req) {
		return
	}
	alg, err := usimrank.ParseAlgorithm(req.Alg)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
		return
	}
	if len(req.Pairs) == 0 {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "empty pairs")
		return
	}
	flat := make([]int, 0, 2*len(req.Pairs))
	for _, p := range req.Pairs {
		flat = append(flat, p[0], p[1])
	}
	key := debugKey(fmt.Sprintf("batch|g%d|%s|%s", co.Generation(), alg, server.DigestInts(flat)), req.Debug)
	tr, root := co.traceFor(r, "batch", req.Debug)
	val, coalesced, ok := co.execute(w, r, "batch", alg.String(), req.TimeoutMs, false, key, tr, root, func(ctx context.Context) (any, error) {
		// Plan and marshal inside the flight, like the pairs top-k
		// path: coalescing followers must not duplicate the regroup of
		// a near-cap pairs payload just to throw it away.
		plan := planBatch(co.shards, req.Pairs)
		// Sub-batches can only shrink the client's own payload (which
		// fit under the coordinator's body cap to get here), so no
		// chunking is needed on this path.
		tasks := make([]scatterTask, len(plan.shards))
		for i, s := range plan.shards {
			body, err := json.Marshal(server.BatchRequest{Alg: req.Alg, Pairs: plan.pairs[s], TimeoutMs: req.TimeoutMs, Debug: req.Debug})
			if err != nil {
				return nil, err
			}
			tasks[i] = scatterTask{shard: s, body: body}
		}
		bodies, err := co.scatter(ctx, "batch", "/v1/batch", tasks, req.Debug)
		if err != nil {
			return nil, err
		}
		msp := obs.SpanFromContext(ctx).Start("merge")
		msp.Add("lists", int64(len(bodies)))
		defer msp.End()
		out := make([]server.BatchPairResult, len(req.Pairs))
		for i, b := range bodies {
			s := plan.shards[i]
			var resp server.BatchResponse
			if err := json.Unmarshal(b, &resp); err != nil {
				return nil, fmt.Errorf("%s: bad batch body: %w", shardName(s), err)
			}
			if len(resp.Results) != len(plan.indices[s]) {
				return nil, fmt.Errorf("%s: %d batch results for %d pairs", shardName(s), len(resp.Results), len(plan.indices[s]))
			}
			for j, res := range resp.Results {
				out[plan.indices[s][j]] = res
			}
		}
		return out, nil
	})
	if !ok {
		return
	}
	resp := server.BatchResponse{
		Alg: alg.String(), Results: val.([]server.BatchPairResult), Coalesced: coalesced,
	}
	if req.Debug {
		root.End()
		resp.Profile = tr.Profile()
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

// ---- stats -------------------------------------------------------------

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, co.Stats())
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format. The serving registry contributes per-shape query families
// plus per-downstream-shard latency histograms; the fan-out client
// contributes hedge/failover counters per shard. Unlike /v1/stats this
// never probes downstream endpoints — a scrape must stay cheap and
// local however unhealthy the fleet is.
func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := obs.NewPromWriter(w)

	co.metrics.WriteProm(pw)

	pw.Header("usimrank_uptime_seconds", "gauge", "Seconds since the coordinator process started.")
	pw.Float("usimrank_uptime_seconds", nil, time.Since(co.start).Seconds())

	st := co.state.Load()
	pw.Header("usimrank_cluster_generation", "gauge", "Coordinator's view of the cluster graph generation.")
	pw.Uint("usimrank_cluster_generation", nil, st.gen)
	pw.Header("usimrank_cluster_shards", "gauge", "Configured shard count.")
	pw.Int("usimrank_cluster_shards", nil, int64(co.shards.Shards()))
	endpoints := 0
	for _, eps := range co.cfg.Shards {
		endpoints += len(eps)
	}
	pw.Header("usimrank_cluster_endpoints", "gauge", "Configured endpoint count across all shards.")
	pw.Int("usimrank_cluster_endpoints", nil, int64(endpoints))
	pw.Header("usimrank_graph_vertices", "gauge", "Vertex count of the cluster graph.")
	pw.Int("usimrank_graph_vertices", nil, int64(st.vertices))
	pw.Header("usimrank_graph_arcs", "gauge", "Arc count of the cluster graph.")
	pw.Int("usimrank_graph_arcs", nil, int64(st.arcs))
	pw.Header("usimrank_admin_ops_total", "counter", "Admin mutations applied across the fleet.")
	pw.Uint("usimrank_admin_ops_total", nil, co.adminOps.Load())

	ss := co.subs.Snapshot()
	pw.Header("usimrank_subscriptions_active", "gauge", "Live relayed subscription streams.")
	pw.Int("usimrank_subscriptions_active", nil, ss.Active)
	pw.Header("usimrank_sub_wakeups_total", "counter", "Subscription wake-ups delivered.")
	pw.Uint("usimrank_sub_wakeups_total", nil, ss.Wakeups)
	pw.Header("usimrank_sub_pushes_total", "counter", "Update events relayed to subscribers.")
	pw.Uint("usimrank_sub_pushes_total", nil, ss.Pushes)
	pw.Header("usimrank_sub_coalesced_total", "counter", "Generations coalesced into a newer pending push.")
	pw.Uint("usimrank_sub_coalesced_total", nil, ss.Coalesced)
	pw.Header("usimrank_sub_dropped_total", "counter", "Subscriptions ended by a terminal error or gone event.")
	pw.Uint("usimrank_sub_dropped_total", nil, ss.Dropped)

	pw.Header("usimrank_client_hedges_total", "counter", "Replica attempts launched by the hedge timer.")
	counters := co.client.Counters()
	for s, c := range counters {
		pw.Uint("usimrank_client_hedges_total", []obs.Label{{Key: "shard", Value: shardName(s)}}, c.Hedges)
	}
	pw.Header("usimrank_client_failovers_total", "counter", "Replica attempts launched because an earlier attempt failed.")
	for s, c := range counters {
		pw.Uint("usimrank_client_failovers_total", []obs.Label{{Key: "shard", Value: shardName(s)}}, c.Failovers)
	}
	pw.Header("usimrank_client_stale_rejected_total", "counter", "Definitive downstream answers rejected for a stale graph generation.")
	for s, c := range counters {
		pw.Uint("usimrank_client_stale_rejected_total", []obs.Label{{Key: "shard", Value: shardName(s)}}, c.StaleRejected)
	}

	obs.WriteRuntimeMetrics(pw)
}

// statsProbeTTL and statsProbeTimeout bound the stats path's health
// probes: scrapes within the TTL share one probe result, and a hung
// endpoint can stall a probe by at most the timeout (not the full
// per-shard budget a real query deserves).
const (
	statsProbeTTL     = 2 * time.Second
	statsProbeTimeout = 3 * time.Second
)

// cachedProbe returns a recent endpoint-health probe, refreshing it
// (single-flighted) when stale. The refresh runs under the
// coordinator's own context, never a scraper's: a monitoring client
// with a tight timeout disconnecting mid-probe must not poison the
// cache with an all-unreachable snapshot for the next TTL.
func (co *Coordinator) cachedProbe() []probedHealth {
	co.probeMu.Lock()
	defer co.probeMu.Unlock()
	if co.probeCache != nil && time.Since(co.probeAt) < statsProbeTTL {
		return co.probeCache
	}
	pctx, cancel := context.WithTimeout(co.baseCtx, statsProbeTimeout)
	defer cancel()
	co.probeCache = co.probeAll(pctx)
	co.probeAt = time.Now()
	return co.probeCache
}

// invalidateProbeCache drops the cached health snapshot — admin
// mutations change every endpoint's generation, and stats must not
// report the old one for a TTL afterwards.
func (co *Coordinator) invalidateProbeCache() {
	co.probeMu.Lock()
	co.probeCache = nil
	co.probeMu.Unlock()
}

// Stats assembles the coordinator snapshot, live-probing every
// endpoint's health and generation (briefly cached; see cachedProbe).
func (co *Coordinator) Stats() StatsResponse {
	st := co.state.Load()
	probed := co.cachedProbe()
	health := make([]ShardHealth, len(probed))
	endpoints := 0
	for i, h := range probed {
		health[i] = h.ShardHealth
		endpoints++
	}
	sort.Slice(health, func(i, j int) bool {
		if health[i].Shard != health[j].Shard {
			return health[i].Shard < health[j].Shard
		}
		return health[i].URL < health[j].URL
	})
	return StatsResponse{
		UptimeSeconds: time.Since(co.start).Seconds(),
		Cluster: ClusterInfo{
			Shards:     co.shards.Shards(),
			Endpoints:  endpoints,
			Generation: st.gen,
			Vertices:   st.vertices,
			Arcs:       st.arcs,
			AdminOps:   co.adminOps.Load(),
		},
		Shards:        health,
		Serving:       co.metrics.ServingStats(co.cfg.MaxInFlight),
		Coalescing:    co.metrics.CoalescingStats(),
		Queries:       co.metrics.QueryStats(),
		Subscriptions: server.SubscriptionStatsFrom(co.subs),
	}
}

// ---- transactional admin fan-out ---------------------------------------

func (co *Coordinator) handleReload(w http.ResponseWriter, r *http.Request) {
	raw, ok := co.readBody(w, r)
	if !ok {
		return
	}
	var req server.ReloadRequest
	if !decodeStrict(w, raw, &req) {
		return
	}
	if req.Graph == "" {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, `"graph" is required`)
		return
	}
	co.adminFanout(w, r, "/v1/admin/reload", raw)
}

func (co *Coordinator) handleUpdate(w http.ResponseWriter, r *http.Request) {
	raw, ok := co.readBody(w, r)
	if !ok {
		return
	}
	var req server.UpdateRequest
	if !decodeStrict(w, raw, &req) {
		return
	}
	if len(req.Updates) == 0 {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, `"updates" is required and must be non-empty`)
		return
	}
	for i, u := range req.Updates {
		if _, err := usimrank.ParseUpdateOp(u.Op); err != nil {
			server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("updates[%d]: %v", i, err))
			return
		}
	}
	co.adminFanout(w, r, "/v1/admin/update", raw)
}

// endpointAck is one endpoint's raw admin outcome.
type endpointAck struct {
	shard, replica int
	url            string
	status         int
	body           []byte
	err            error
	generation     uint64
	vertices, arcs int
	drained        bool
}

// adminFanout applies one admin mutation transactionally across the
// fleet: the raw body is sent to EVERY endpoint (replicas serve the
// same traffic and must move in lockstep), and the fan-out succeeds
// only when all of them acknowledge the same successor generation.
// Divergence triggers a bounded re-probe (a response may have been
// lost after the mutation applied); if the fleet still disagrees, the
// coordinator reports a structured generation-skew error rather than
// serving from a torn cluster. Admin mutations are serialised behind
// one mutex — the same invariant the single node enforces — so two
// fan-outs can never interleave their swaps.
func (co *Coordinator) adminFanout(w http.ResponseWriter, r *http.Request, path string, raw []byte) {
	co.adminMu.Lock()
	defer co.adminMu.Unlock()

	old := co.state.Load()
	expect := old.gen + 1

	// The fan-out runs under a coordinator-owned context: an admin
	// client disconnecting mid-flight must not cancel half the fleet's
	// mutations and tear the cluster. Each endpoint attempt is still
	// bounded by the per-shard timeout.
	ctx, cancel := context.WithCancel(co.baseCtx)
	defer cancel()

	// An incoming trace header rides the fan-out: every endpoint's admin
	// spans nest under this root, so one trace shows the whole fleet
	// applying (or refusing) a mutation.
	if hdr := r.Header.Get(obs.TraceHeader); hdr != "" {
		id, parent, _ := obs.ParseTraceHeader(hdr)
		tr := obs.NewTrace(id, parent)
		root := tr.Start("admin " + path)
		defer root.End()
		ctx = obs.ContextWithSpan(ctx, root)
		w.Header().Set(obs.TraceHeader, tr.ID())
	}

	var acks []*endpointAck
	for s, eps := range co.cfg.Shards {
		for ri, url := range eps {
			acks = append(acks, &endpointAck{shard: s, replica: ri, url: url})
		}
	}
	var wg sync.WaitGroup
	for _, a := range acks {
		wg.Add(1)
		go func(a *endpointAck) {
			defer wg.Done()
			resp, err := co.client.DoEndpoint(ctx, a.url, "POST", path, raw)
			if err != nil {
				a.err = err
				return
			}
			a.status = resp.Status
			a.body = resp.Body
			if resp.Status == http.StatusOK {
				var ack struct {
					Generation uint64 `json:"generation"`
					Vertices   int    `json:"vertices"`
					Arcs       int    `json:"arcs"`
					Drained    bool   `json:"drained"`
				}
				if jerr := json.Unmarshal(resp.Body, &ack); jerr != nil {
					a.err = fmt.Errorf("bad admin ack: %w", jerr)
					return
				}
				a.generation = ack.Generation
				a.vertices = ack.Vertices
				a.arcs = ack.Arcs
				a.drained = ack.Drained
			}
		}(a)
	}
	wg.Wait()

	// Consistent rejection: every endpoint refused with the same
	// definitive status, nothing applied anywhere — relay it, no skew.
	allSameRejection := true
	for _, a := range acks {
		if a.err != nil || a.status == http.StatusOK || a.status >= 500 || a.status != acks[0].status {
			allSameRejection = false
			break
		}
	}
	if allSameRejection {
		relay(w, &ShardResponse{Status: acks[0].status, Body: acks[0].body, URL: acks[0].url})
		return
	}

	ok := true
	for _, a := range acks {
		if a.err != nil || a.status != http.StatusOK || a.generation != expect {
			ok = false
			break
		}
	}
	if !ok {
		// Some endpoint failed or answered a surprising generation. The
		// mutation may still have applied everywhere (a lost response);
		// re-probe until the fleet agrees or patience runs out.
		agreed, st := co.reprobe(ctx, expect)
		if !agreed {
			msg := co.skewMessage(path, expect, acks)
			co.cfg.Logger.Printf("admin %s: generation skew: %s", path, msg)
			server.WriteJSON(w, http.StatusBadGateway, server.ErrorResponse{Error: server.ErrorDetail{
				Code:    server.CodeGenerationSkew,
				Message: msg,
			}})
			return
		}
		co.state.Store(st)
		co.invalidateProbeCache()
		co.adminOps.Add(1)
		co.cfg.Logger.Printf("admin %s: fleet converged at generation %d after re-probe", path, st.gen)
		server.WriteJSON(w, http.StatusOK, co.adminResponse(st, acks))
		return
	}

	st := &clusterState{gen: expect, vertices: acks[0].vertices, arcs: acks[0].arcs}
	co.state.Store(st)
	co.invalidateProbeCache()
	co.adminOps.Add(1)
	co.cfg.Logger.Printf("admin %s: generation %d -> %d across %d endpoints", path, old.gen, expect, len(acks))
	server.WriteJSON(w, http.StatusOK, co.adminResponse(st, acks))
}

// reprobe polls the fleet until every endpoint is reachable and
// agrees on one generation at or beyond expect, or the probe budget is
// spent. Accepting any agreed generation >= expect — not only expect
// itself — matters for self-healing: if the coordinator's own view
// ever fell behind (a lost ack on a previous mutation, or an operator
// mutating nodes directly), the fleet acks expect+1 or later while
// still in perfect lockstep, and insisting on the exact expected value
// would report generation-skew forever after. Agreement below expect
// is not adopted: it means this mutation did not land.
func (co *Coordinator) reprobe(ctx context.Context, expect uint64) (bool, *clusterState) {
	for attempt := 0; attempt < co.cfg.AdminProbes; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(co.cfg.AdminProbeWait):
			case <-ctx.Done():
				return false, nil
			}
		}
		health := co.probeAll(ctx)
		agreed := true
		var st *clusterState
		for _, h := range health {
			if !h.Reachable {
				agreed = false
				break
			}
			if st == nil {
				st = &clusterState{gen: h.Generation, vertices: h.vertices, arcs: h.arcs}
			} else if h.Generation != st.gen || h.vertices != st.vertices || h.arcs != st.arcs {
				// Same bar as the boot probe: generation numbers are
				// per-node counters, so two nodes can coincide on a
				// generation while holding different graphs — the
				// vertex/arc figures must agree too.
				agreed = false
				break
			}
		}
		if agreed && st != nil && st.gen >= expect {
			return true, st
		}
	}
	return false, nil
}

// skewMessage names every endpoint that diverged.
func (co *Coordinator) skewMessage(path string, expect uint64, acks []*endpointAck) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "admin %s did not reach generation %d on every endpoint:", path, expect)
	for _, a := range acks {
		switch {
		case a.err != nil:
			fmt.Fprintf(&b, " %s %s: %v;", shardName(a.shard), a.url, a.err)
		case a.status != http.StatusOK:
			fmt.Fprintf(&b, " %s %s: status %d: %s;", shardName(a.shard), a.url, a.status, firstLine(a.body))
		case a.generation != expect:
			fmt.Fprintf(&b, " %s %s: at generation %d;", shardName(a.shard), a.url, a.generation)
		}
	}
	b.WriteString(" the fleet may be torn — re-probe /v1/stats and reload the divergent nodes")
	return b.String()
}

func (co *Coordinator) adminResponse(st *clusterState, acks []*endpointAck) AdminResponse {
	out := AdminResponse{Generation: st.gen, Vertices: st.vertices, Arcs: st.arcs, Drained: true}
	for _, a := range acks {
		role := "primary"
		if a.replica > 0 {
			role = "replica"
		}
		out.Endpoints = append(out.Endpoints, EndpointAck{
			Shard: a.shard, URL: a.url, Role: role,
			Generation: st.gen, Drained: a.drained,
		})
		if a.status == http.StatusOK && !a.drained {
			out.Drained = false
		}
	}
	return out
}

// logLoop periodically logs a one-line serving summary until Close.
func (co *Coordinator) logLoop() {
	t := time.NewTicker(co.cfg.LogEvery)
	defer t.Stop()
	for {
		select {
		case <-co.baseCtx.Done():
			return
		case <-t.C:
			st := co.state.Load()
			cs := co.metrics.CoalescingStats()
			sv := co.metrics.ServingStats(co.cfg.MaxInFlight)
			co.cfg.Logger.Printf("stats: gen=%d shards=%d in_flight=%d coalesce_rate=%.2f rejected=%d deadline=%d",
				st.gen, co.shards.Shards(), sv.InFlight, cs.HitRate, sv.AdmissionRejected, sv.DeadlineExceeded)
		}
	}
}

package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"usimrank/internal/server"
	"usimrank/internal/sub"
)

// openRelaySub opens a /v1/subscribe stream against a live coordinator
// listener.
func openRelaySub(t *testing.T, base, query string) (*http.Response, *bufio.Reader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/subscribe?"+query, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		buf := make([]byte, 512)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		cancel()
		t.Fatalf("relay subscribe status %d: %s", resp.StatusCode, buf[:n])
	}
	return resp, bufio.NewReader(resp.Body), cancel
}

func nextRelayEvent(t *testing.T, br *bufio.Reader) *sub.Frame {
	t.Helper()
	for {
		fr, err := sub.ReadFrame(br)
		if err != nil {
			t.Fatalf("read relayed frame: %v", err)
		}
		if !fr.Comment() {
			return fr
		}
	}
}

// TestRelaySubscriptionFailover drives the full relay lifecycle over a
// one-shard, two-replica fleet: snapshot bytes match a cold query
// through the coordinator; a node draining mid-stream is invisible to
// the client (its shutdown event is swallowed and the stream resumes
// on the replica via Last-Event-ID); an admin update then reaches the
// client through the failed-over stream; and coordinator shutdown
// terminates the relay with its own shutdown event.
func TestRelaySubscriptionFailover(t *testing.T) {
	g := testGraph()
	var nodes []*server.Server
	var urls []string
	for i := 0; i < 2; i++ {
		s, err := server.New(g, "test://shard", server.Config{Engine: testOptions()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		nodes = append(nodes, s)
		urls = append(urls, ts.URL)
	}
	co := newCoordinator(t, [][]string{urls}, nil)
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	const u, v = 3, 17
	resp, br, cancel := openRelaySub(t, cts.URL, fmt.Sprintf("shape=score&alg=sampling&u=%d&v=%d", u, v))
	defer cancel()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("relay Content-Type %q", ct)
	}

	fr := nextRelayEvent(t, br)
	if fr.Name() != server.EventSnapshot || fr.ID() != 1 {
		t.Fatalf("first relayed event %s id %d, want snapshot id 1", fr.Name(), fr.ID())
	}
	_, cold := post(t, co, "/v1/score", fmt.Sprintf(`{"alg":"sampling","u":%d,"v":%d}`, u, v))
	if !bytes.Equal(fr.Data(), cold) {
		t.Fatalf("relayed snapshot differs from cold coordinator query:\nrelay: %s\ncold: %s", fr.Data(), cold)
	}

	// Drain the primary. Its stream sends a terminal shutdown event; the
	// relay must swallow it, fail over to the replica with
	// Last-Event-ID=1, and — since the generation has not moved — the
	// client must see nothing at all.
	if !nodes[0].DrainSubscriptions() {
		t.Fatal("primary drain timed out")
	}
	// Wait for the relay to re-establish on the replica (the failover is
	// asynchronous to the drain call), so the update below is a push to
	// an attached subscription, not a reconnect-time snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := nodes[1].Stats(); st.Subscriptions != nil && st.Subscriptions.Active >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("relay never failed over to the replica")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An update through the coordinator reaches both replicas; the
	// failed-over stream must push the new answer. (The arc mutated is
	// (u, v) reweighted, so the invalidation BFS trivially reaches u.)
	status, body := post(t, co, "/v1/admin/update",
		fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":0.5}]}`, v, u))
	if status != http.StatusOK {
		// The test graph may not contain the arc (v, u); insert instead.
		status, body = post(t, co, "/v1/admin/update",
			fmt.Sprintf(`{"updates":[{"op":"insert","u":%d,"v":%d,"p":0.5}]}`, v, u))
	}
	if status != http.StatusOK {
		t.Fatalf("cluster update status %d: %s", status, body)
	}

	fr = nextRelayEvent(t, br)
	if fr.Name() != server.EventUpdate || fr.ID() != 2 {
		t.Fatalf("post-failover event %s id %d, want update id 2", fr.Name(), fr.ID())
	}
	_, cold = post(t, co, "/v1/score", fmt.Sprintf(`{"alg":"sampling","u":%d,"v":%d}`, u, v))
	if !bytes.Equal(fr.Data(), cold) {
		t.Fatalf("relayed update differs from cold coordinator query:\nrelay: %s\ncold: %s", fr.Data(), cold)
	}

	st := co.Stats()
	if st.Subscriptions == nil || st.Subscriptions.Active != 1 || st.Subscriptions.Pushes < 1 {
		t.Fatalf("coordinator subscription stats %+v, want 1 active and >= 1 push", st.Subscriptions)
	}

	// Coordinator shutdown ends the relay with its own terminal event.
	done := make(chan bool, 1)
	go func() { done <- co.DrainSubscriptions() }()
	fr = nextRelayEvent(t, br)
	if fr.Name() != server.EventShutdown {
		t.Fatalf("terminal relayed event %q, want shutdown", fr.Name())
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("coordinator drain timed out")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator drain hung")
	}
	if _, err := sub.ReadFrame(br); err == nil {
		t.Fatal("stream still open after the coordinator's terminal shutdown")
	}
}

// TestRelayRejectsBadRequestsBeforeStreaming pins the pre-stream 4xx
// relay: the owning node's validation answer comes back verbatim with
// its status, not wrapped in an SSE stream.
func TestRelayRejectsBadRequestsBeforeStreaming(t *testing.T) {
	g := testGraph()
	co := bootCluster(t, g, 2)
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	for _, tc := range []struct {
		name, query string
		status      int
	}{
		{"missing u", "shape=score&alg=sampling&v=2", http.StatusBadRequest},
		{"bad alg", "shape=score&alg=nope&u=1&v=2", http.StatusBadRequest},
		{"bad shape", "shape=pairs&alg=sampling&u=1", http.StatusBadRequest},
		{"vertex out of range", "shape=score&alg=sampling&u=1&v=99999", http.StatusBadRequest},
	} {
		resp, err := http.Get(cts.URL + "/v1/subscribe?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestRelayReconnectsAfterConnectionLoss severs the coordinator→node
// stream mid-subscription: the relay must silently re-establish it
// (resuming via Last-Event-ID, so no duplicate snapshot reaches the
// client) and the next update must flow through the new connection.
func TestRelayReconnectsAfterConnectionLoss(t *testing.T) {
	g := testGraph()
	node, err := server.New(g, "test://shard", server.Config{Engine: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	nts := httptest.NewServer(node.Handler())
	defer nts.Close()
	co := newCoordinator(t, [][]string{{nts.URL}}, nil)
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	resp, br, cancel := openRelaySub(t, cts.URL, "shape=score&alg=sampling&u=3&v=17")
	defer cancel()
	defer resp.Body.Close()
	if fr := nextRelayEvent(t, br); fr.Name() != server.EventSnapshot || fr.ID() != 1 {
		t.Fatalf("first event %s id %d, want snapshot id 1", fr.Name(), fr.ID())
	}

	// Kill every open connection to the node, including the relay's
	// stream, then wait for the relay to re-attach.
	nts.CloseClientConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := node.Stats(); st.Subscriptions != nil && st.Subscriptions.Active >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("relay never re-established the node stream")
		}
		time.Sleep(5 * time.Millisecond)
	}

	status, body := post(t, co, "/v1/admin/update", `{"updates":[{"op":"reweight","u":17,"v":3,"p":0.5}]}`)
	if status != http.StatusOK {
		status, body = post(t, co, "/v1/admin/update", `{"updates":[{"op":"insert","u":17,"v":3,"p":0.5}]}`)
	}
	if status != http.StatusOK {
		t.Fatalf("cluster update status %d: %s", status, body)
	}

	fr := nextRelayEvent(t, br)
	if fr.Name() != server.EventUpdate || fr.ID() != 2 {
		t.Fatalf("post-reconnect event %s id %d, want update id 2 (a duplicate snapshot means the resume cursor was lost)",
			fr.Name(), fr.ID())
	}
}

// gatedProxy fronts a node and can be flipped into hard-down mode
// (503 every request), so endpoint failure can be injected without
// racing httptest.Server.Close against in-flight streams.
type gatedProxy struct {
	up    atomic.Bool
	inner *httputil.ReverseProxy
}

func (p *gatedProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !p.up.Load() {
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
		return
	}
	p.inner.ServeHTTP(w, r)
}

// TestRelayShardOutage pins both outage surfaces: with every endpoint
// down before the stream starts, the client gets a plain 502; with the
// outage landing mid-stream, the client gets a terminal error event on
// the already-started stream.
func TestRelayShardOutage(t *testing.T) {
	g := testGraph()
	nts := newShardNode(t, g)
	target, err := url.Parse(nts.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := &gatedProxy{inner: httputil.NewSingleHostReverseProxy(target)}
	proxy.inner.FlushInterval = -1 // stream SSE frames through unbuffered
	proxy.up.Store(true)
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	co := newCoordinator(t, [][]string{{pts.URL}}, nil)
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	// Not yet started: a full failed endpoint pass is a plain 502.
	proxy.up.Store(false)
	resp, err := http.Get(cts.URL + "/v1/subscribe?shape=score&alg=sampling&u=3&v=17")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-endpoints-down subscribe status %d, want 502", resp.StatusCode)
	}

	// Started: the outage must surface as a terminal error event.
	proxy.up.Store(true)
	sresp, br, cancel := openRelaySub(t, cts.URL, "shape=score&alg=sampling&u=3&v=17")
	defer cancel()
	defer sresp.Body.Close()
	if fr := nextRelayEvent(t, br); fr.Name() != server.EventSnapshot {
		t.Fatalf("first event %q, want snapshot", fr.Name())
	}
	proxy.up.Store(false)
	pts.CloseClientConnections()

	fr := nextRelayEvent(t, br)
	if fr.Name() != server.EventError {
		t.Fatalf("outage event %q, want error", fr.Name())
	}
	if _, err := sub.ReadFrame(br); err == nil {
		t.Fatal("stream still open after the terminal error event")
	}
	if st := co.Stats(); st.Subscriptions == nil || st.Subscriptions.Dropped < 1 {
		t.Fatalf("coordinator dropped counter %+v, want >= 1", st.Subscriptions)
	}
}

package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// ParseTopology parses the usimd coordinator flags into per-shard
// endpoint lists.
//
// cluster is a comma-separated list of shard<i>=<base-url> entries and
// must name every shard index 0..n-1 exactly once:
//
//	shard0=http://a:8471,shard1=http://b:8471
//
// replicas uses the same syntax, may repeat a shard key (one entry per
// replica endpoint), and may be empty:
//
//	shard0=http://a2:8471,shard0=http://a3:8471,shard1=http://b2:8471
//
// The result is Config.Shards: element i holds shard i's primary
// first, then its replicas in flag order.
func ParseTopology(cluster, replicas string) ([][]string, error) {
	primaries, err := parseEntries(cluster)
	if err != nil {
		return nil, fmt.Errorf("-cluster: %w", err)
	}
	if len(primaries) == 0 {
		return nil, fmt.Errorf("-cluster: no shards")
	}
	n := 0
	for shard := range primaries {
		if shard+1 > n {
			n = shard + 1
		}
	}
	shards := make([][]string, n)
	for shard, urls := range primaries {
		if len(urls) > 1 {
			return nil, fmt.Errorf("-cluster: shard%d named %d times (replicas go in -replicas)", shard, len(urls))
		}
		shards[shard] = urls
	}
	for shard, urls := range shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("-cluster: shard%d missing (shard indices must cover 0..%d)", shard, n-1)
		}
	}
	if replicas != "" {
		reps, err := parseEntries(replicas)
		if err != nil {
			return nil, fmt.Errorf("-replicas: %w", err)
		}
		keys := make([]int, 0, len(reps))
		for shard := range reps {
			keys = append(keys, shard)
		}
		sort.Ints(keys)
		for _, shard := range keys {
			if shard >= n {
				return nil, fmt.Errorf("-replicas: shard%d does not exist (-cluster has %d shards)", shard, n)
			}
			shards[shard] = append(shards[shard], reps[shard]...)
		}
	}
	return shards, nil
}

// parseEntries parses "shardK=url,..." into shard → urls (flag order
// preserved per shard).
func parseEntries(s string) (map[int][]string, error) {
	out := make(map[int][]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, rawURL, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not shard<i>=<url>", entry)
		}
		idxStr, ok := strings.CutPrefix(key, "shard")
		if !ok {
			return nil, fmt.Errorf("entry %q: key %q is not shard<i>", entry, key)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("entry %q: bad shard index %q", entry, idxStr)
		}
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("entry %q: %q is not an absolute base URL", entry, rawURL)
		}
		out[idx] = append(out[idx], strings.TrimRight(rawURL, "/"))
	}
	return out, nil
}

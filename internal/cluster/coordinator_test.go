package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"usimrank"
	"usimrank/internal/server"
)

func writeGraphFile(t *testing.T, g *usimrank.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.ug")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := usimrank.WriteText(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAdminUpdateFanoutTransactional: an update through the
// coordinator must land on every endpoint — primaries AND replicas —
// at the same generation, and post-update answers must be
// bit-identical to a single node that applied the same batch.
func TestAdminUpdateFanoutTransactional(t *testing.T) {
	g := testGraph()
	au, av, ap := g.ArcEndpoints(0)

	single, err := server.New(g, "test://single", server.Config{Engine: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	co := newCoordinator(t, [][]string{
		{newShardNode(t, g).URL, newShardNode(t, g).URL}, // shard0 + replica
		{newShardNode(t, g).URL},
	}, nil)

	update := fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":0.123}]}`, au, av)
	status, body := post(t, co, "/v1/admin/update", update)
	if status != 200 {
		t.Fatalf("update status %d: %s", status, body)
	}
	var resp AdminResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 {
		t.Fatalf("generation = %d, want 2", resp.Generation)
	}
	if len(resp.Endpoints) != 3 {
		t.Fatalf("%d endpoint acks, want 3 (replicas must be mutated too): %+v", len(resp.Endpoints), resp.Endpoints)
	}
	for _, ack := range resp.Endpoints {
		if ack.Generation != 2 {
			t.Fatalf("endpoint %+v not at generation 2", ack)
		}
	}

	// The same batch on the single node; answers must re-converge.
	if code, b := post(t, single, "/v1/admin/update", update); code != 200 {
		t.Fatalf("single-node update status %d: %s", code, b)
	}
	for _, q := range queryShapes("srsp") {
		wantStatus, want := post(t, single, q.path, q.body)
		gotStatus, got := post(t, co, q.path, q.body)
		if gotStatus != wantStatus || !bytes.Equal(got, want) {
			t.Fatalf("%s after update: coordinator (%d) %s\nsingle (%d) %s", q.name, gotStatus, got, wantStatus, want)
		}
	}

	// And the probability restored: a second fan-out, generation 3.
	restore := fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":%g}]}`, au, av, ap)
	if code, b := post(t, co, "/v1/admin/update", restore); code != 200 {
		t.Fatalf("restore status %d: %s", code, b)
	} else if err := json.Unmarshal(b, &resp); err != nil || resp.Generation != 3 {
		t.Fatalf("restore generation = %d (%v), want 3", resp.Generation, err)
	}
	st := co.Stats()
	if st.Cluster.Generation != 3 || st.Cluster.AdminOps != 2 {
		t.Fatalf("stats = gen %d adminOps %d, want 3/2", st.Cluster.Generation, st.Cluster.AdminOps)
	}
	for _, h := range st.Shards {
		if !h.Reachable || h.Generation != 3 {
			t.Fatalf("endpoint %+v not reachable at generation 3", h)
		}
	}
}

// TestAdminReloadFanout: a reload fans out and bumps every endpoint's
// generation in lockstep.
func TestAdminReloadFanout(t *testing.T) {
	g := testGraph()
	path := writeGraphFile(t, g)
	co := bootCluster(t, g, 2)
	status, body := post(t, co, "/v1/admin/reload", fmt.Sprintf(`{"graph":%q,"warm":true}`, path))
	if status != 200 {
		t.Fatalf("reload status %d: %s", status, body)
	}
	var resp AdminResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 || resp.Vertices != g.NumVertices() {
		t.Fatalf("reload response %+v", resp)
	}
	// Queries still serve, now keyed to generation 2.
	if code, b := post(t, co, "/v1/score", `{"alg":"srsp","u":3,"v":17}`); code != 200 {
		t.Fatalf("post-reload score status %d: %s", code, b)
	}
}

// TestAdminGenerationSkew: when one endpoint dies mid-fan-out, the
// mutation applies on the survivors only; the coordinator must detect
// the divergence, re-probe, and report a structured generation-skew
// error naming the dead endpoint — never a silent success.
func TestAdminGenerationSkew(t *testing.T) {
	g := testGraph()
	au, av, _ := g.ArcEndpoints(0)
	faulty, fault := newFaultyShard(t, g)
	co := newCoordinator(t, [][]string{
		{newShardNode(t, g).URL},
		{faulty.URL},
	}, func(cfg *Config) {
		cfg.ShardTimeout = 500 * time.Millisecond
		cfg.AdminProbes = 2
	})
	fault.dead.Store(true)
	faulty.CloseClientConnections()

	update := fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":0.5}]}`, au, av)
	status, body := post(t, co, "/v1/admin/update", update)
	if status != http.StatusBadGateway {
		t.Fatalf("skewed update status = %d, want 502: %s", status, body)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != server.CodeGenerationSkew {
		t.Fatalf("error code = %q, want %q: %s", e.Error.Code, server.CodeGenerationSkew, body)
	}
	if !bytes.Contains(body, []byte("shard1")) {
		t.Fatalf("skew error must name the divergent shard: %s", body)
	}
}

// TestAdminConsistentRejectionRelays: a batch every shard rejects
// identically (insert of an existing arc) is a relayed 400, not a
// generation skew — nothing applied anywhere, generations untouched.
func TestAdminConsistentRejectionRelays(t *testing.T) {
	g := testGraph()
	au, av, _ := g.ArcEndpoints(0)
	co := bootCluster(t, g, 2)
	status, body := post(t, co, "/v1/admin/update",
		fmt.Sprintf(`{"updates":[{"op":"insert","u":%d,"v":%d,"p":0.5}]}`, au, av))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want relayed 400: %s", status, body)
	}
	if st := co.Stats(); st.Cluster.Generation != 1 {
		t.Fatalf("generation moved to %d on a rejected batch", st.Cluster.Generation)
	}
}

// TestCoordinatorValidation: requests the coordinator can reject
// locally never touch a shard.
func TestCoordinatorValidation(t *testing.T) {
	g := testGraph()
	co := bootCluster(t, g, 2)
	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/score", `{"alg":"pagerank","u":0,"v":1}`, 400},
		{"/v1/score", `{"alg":"srsp","u":0,"v":1,"bogus":3}`, 400},
		{"/v1/topk", `{"alg":"srsp","k":0}`, 400},
		{"/v1/topk", `{"alg":"srsp","u":1,"k":2,"sources":[1,2]}`, 400},
		{"/v1/batch", `{"alg":"srsp","pairs":[]}`, 400},
		{"/v1/admin/update", `{"updates":[]}`, 400},
		{"/v1/admin/update", `{"updates":[{"op":"explode","u":0,"v":1}]}`, 400},
		{"/v1/admin/reload", `{"graph":""}`, 400},
		{"/v1/nope", `{}`, 404},
	}
	for _, c := range cases {
		if status, body := post(t, co, c.path, c.body); status != c.status {
			t.Fatalf("%s %s: status %d, want %d: %s", c.path, c.body, status, c.status, body)
		}
	}
	// Out-of-range vertices are the owning shard's call — the relayed
	// 400 matches the single-node body byte for byte.
	status, body := post(t, co, "/v1/score", `{"alg":"srsp","u":999999,"v":1}`)
	if status != 400 {
		t.Fatalf("out-of-range score status %d: %s", status, body)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != server.CodeBadRequest {
		t.Fatalf("relayed 400 = %s (%v)", body, err)
	}
}

// TestBootRejectsSkewedFleet: a fleet whose shards disagree on the
// graph generation at boot cannot serve deterministic answers; New
// must refuse it.
func TestBootRejectsSkewedFleet(t *testing.T) {
	g := testGraph()
	au, av, _ := g.ArcEndpoints(0)
	ahead := newShardNode(t, g)
	// Push one shard to generation 2 behind the coordinator's back.
	req, _ := http.NewRequest("POST", ahead.URL+"/v1/admin/update",
		bytes.NewReader([]byte(fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":0.42}]}`, au, av))))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("direct shard update status %d", resp.StatusCode)
	}

	_, err = New(Config{Shards: [][]string{{newShardNode(t, g).URL}, {ahead.URL}}})
	if err == nil {
		t.Fatal("New accepted a generation-skewed fleet")
	}
}

// syncBuffer is a goroutine-safe log sink: the periodic logger writes
// from its own goroutine while the test polls.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStatsEndpointAndLogging drives the remaining plumbing: the
// /v1/stats route through the public Handler, the timeout_ms branch,
// the periodic logger, and the small formatting helpers.
func TestStatsEndpointAndLogging(t *testing.T) {
	g := testGraph()
	var logBuf syncBuffer
	co := newCoordinator(t, [][]string{{newShardNode(t, g).URL}}, func(cfg *Config) {
		cfg.LogEvery = 10 * time.Millisecond
		cfg.Logger = log.New(&logBuf, "test ", 0)
	})

	// A query with an explicit (lowered) timeout_ms.
	if status, b := post(t, co, "/v1/score", `{"alg":"srsp","u":3,"v":17,"timeout_ms":20000}`); status != 200 {
		t.Fatalf("score with timeout_ms: status %d: %s", status, b)
	}

	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec := httptest.NewRecorder()
	co.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /v1/stats status %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster.Shards != 1 || st.Cluster.Generation != 1 || len(st.Shards) != 1 || !st.Shards[0].Reachable {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := st.Queries["shard0/score"]; !ok {
		t.Fatalf("missing per-shard histogram cell, have %v", st.Queries)
	}

	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	co.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /healthz status %d", rec.Code)
	}

	deadline := time.Now().Add(2 * time.Second)
	for logBuf.String() == "" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(logBuf.String(), "stats: gen=1") {
		t.Fatalf("periodic log line never appeared: %q", logBuf.String())
	}

	// Formatting helpers.
	re := &relayError{resp: &ShardResponse{Status: 400, URL: "http://x"}}
	if !strings.Contains(re.Error(), "400") {
		t.Fatalf("relayError.Error() = %q", re.Error())
	}
	long := firstLine([]byte("line one is really quite long and has a newline\nline two"))
	if !strings.HasSuffix(long, "...") {
		t.Fatalf("firstLine did not elide: %q", long)
	}
	if got := firstLine([]byte(strings.Repeat("x", 300))); len(got) > 210 {
		t.Fatalf("firstLine did not truncate: %d bytes", len(got))
	}
}

// TestAdminResyncsAfterExternalMutation: if the fleet moved on without
// the coordinator (a lost ack on a previous op, or an operator
// mutating nodes directly) but is still in lockstep, the next admin
// fan-out must adopt the fleet's agreed generation and succeed — not
// report generation-skew forever.
func TestAdminResyncsAfterExternalMutation(t *testing.T) {
	g := testGraph()
	au, av, ap := g.ArcEndpoints(0)
	nodes := [][]string{{newShardNode(t, g).URL}, {newShardNode(t, g).URL}}
	co := newCoordinator(t, nodes, nil)

	// Mutate every node directly: the fleet is consistently at
	// generation 2, the coordinator still believes 1.
	for _, eps := range nodes {
		resp, err := http.Post(eps[0]+"/v1/admin/update", "application/json",
			strings.NewReader(fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":0.3}]}`, au, av)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("direct update status %d", resp.StatusCode)
		}
	}

	// The coordinator expects generation 2 but the fleet acks 3; the
	// re-probe must adopt the agreed value and report success.
	status, body := post(t, co, "/v1/admin/update",
		fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":%g}]}`, au, av, ap))
	if status != 200 {
		t.Fatalf("resync update status %d: %s", status, body)
	}
	var resp AdminResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 3 {
		t.Fatalf("generation = %d, want the fleet's agreed 3", resp.Generation)
	}
	if st := co.Stats(); st.Cluster.Generation != 3 {
		t.Fatalf("coordinator state = %d, want resynced 3", st.Cluster.Generation)
	}
	// And the plane is fully healthy afterwards: the next op is clean.
	if status, b := post(t, co, "/v1/admin/update",
		fmt.Sprintf(`{"updates":[{"op":"reweight","u":%d,"v":%d,"p":0.7}]}`, au, av)); status != 200 {
		t.Fatalf("follow-up update status %d: %s", status, b)
	}
}

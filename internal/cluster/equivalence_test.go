package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"usimrank/internal/server"
)

var allAlgs = []string{"baseline", "sampling", "twophase", "srsp", "sampling_v2"}

// queryShapes is the full query surface of the v1 API: the five query
// shapes (score, single-source full sweep and candidate-restricted,
// top-k of a vertex, top-k pairs, batch), parameterised by algorithm.
func queryShapes(alg string) []struct{ name, path, body string } {
	return []struct{ name, path, body string }{
		{"score", "/v1/score", fmt.Sprintf(`{"alg":%q,"u":3,"v":17}`, alg)},
		{"source_full", "/v1/source", fmt.Sprintf(`{"alg":%q,"u":5}`, alg)},
		{"source_cand", "/v1/source", fmt.Sprintf(`{"alg":%q,"u":2,"candidates":[1,4,9,33]}`, alg)},
		{"topk_u", "/v1/topk", fmt.Sprintf(`{"alg":%q,"u":3,"k":5}`, alg)},
		{"topk_pairs", "/v1/topk", fmt.Sprintf(`{"alg":%q,"k":7}`, alg)},
		{"batch", "/v1/batch", fmt.Sprintf(`{"alg":%q,"pairs":[[0,1],[5,9],[3,4],[17,2],[0,1]]}`, alg)},
	}
}

// TestClusterBitIdenticalToSingleNode is the spine of the cluster
// plane: for 1, 2, and 4 shards, every query shape under all four
// algorithms must return response bytes identical to a single resident
// engine. Walk streams are seeded by (seed, vertex, side), so neither
// the shard count nor the scatter-gather path may perturb a single
// bit.
func TestClusterBitIdenticalToSingleNode(t *testing.T) {
	g := testGraph()
	single, err := server.New(g, "test://single", server.Config{Engine: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	type ref struct {
		status int
		body   []byte
	}
	refs := make(map[string]ref)
	for _, alg := range allAlgs {
		for _, q := range queryShapes(alg) {
			status, body := post(t, single, q.path, q.body)
			if status != 200 {
				t.Fatalf("single-node %s/%s: status %d: %s", alg, q.name, status, body)
			}
			refs[alg+"/"+q.name] = ref{status, append([]byte(nil), body...)}
		}
	}

	for _, shardCount := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shardCount), func(t *testing.T) {
			co := bootCluster(t, g, shardCount)
			for _, alg := range allAlgs {
				for _, q := range queryShapes(alg) {
					status, body := post(t, co, q.path, q.body)
					want := refs[alg+"/"+q.name]
					if status != want.status {
						t.Fatalf("%s/%s: coordinator status %d, single node %d: %s", alg, q.name, status, want.status, body)
					}
					if !bytes.Equal(body, want.body) {
						t.Fatalf("%s/%s: coordinator bytes diverge from single node\ncoordinator: %s\nsingle node: %s",
							alg, q.name, body, want.body)
					}
				}
			}
		})
	}
}

// TestClusterConcurrentClientsRace hammers a 2-shard cluster with 32
// concurrent clients cycling through every shape and algorithm, under
// -race in CI. Each response must match the single-node reference
// modulo the coalescing flag (coalescing hits are real and
// scheduling-dependent under concurrent identical queries; every other
// byte is pinned).
func TestClusterConcurrentClientsRace(t *testing.T) {
	g := testGraph()
	single, err := server.New(g, "test://single", server.Config{Engine: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	refs := make(map[string]string)
	var shapes []struct{ name, path, body string }
	for _, alg := range allAlgs {
		for _, q := range queryShapes(alg) {
			status, body := post(t, single, q.path, q.body)
			if status != 200 {
				t.Fatalf("single-node %s/%s: status %d", alg, q.name, status)
			}
			canon, err := jsonCanonical(body)
			if err != nil {
				t.Fatal(err)
			}
			refs[alg+"/"+q.name] = canon
			shapes = append(shapes, struct{ name, path, body string }{alg + "/" + q.name, q.path, q.body})
		}
	}

	co := bootCluster(t, g, 2)
	const clients = 32
	const perClient = 6
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := shapes[(c+i*7)%len(shapes)]
				status, body := post(t, co, q.path, q.body)
				if status != 200 {
					errCh <- fmt.Errorf("client %d %s: status %d: %s", c, q.name, status, body)
					return
				}
				got, err := jsonCanonical(body)
				if err != nil {
					errCh <- fmt.Errorf("client %d %s: %w", c, q.name, err)
					return
				}
				if got != refs[q.name] {
					errCh <- fmt.Errorf("client %d %s: response diverged\ngot:  %s\nwant: %s", c, q.name, got, refs[q.name])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := co.Stats(); st.Coalescing.Hits == 0 {
		t.Log("note: no coordinator coalescing hits under the hammer (legal, but unusual)")
	}
}

// TestChunkedSourcesStayBitIdentical shrinks the per-request source
// chunk far below the vertex count, so one pairs top-k fans out as
// many sub-requests per shard, and pins that the chunked merge is
// still byte-identical to the single node — the property that lets
// the coordinator bound its request bodies on arbitrarily large
// graphs.
func TestChunkedSourcesStayBitIdentical(t *testing.T) {
	old := maxSourcesPerChunk
	maxSourcesPerChunk = 7
	defer func() { maxSourcesPerChunk = old }()

	g := testGraph()
	single, err := server.New(g, "test://single", server.Config{Engine: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	co := bootCluster(t, g, 2)

	for _, alg := range []string{"sampling", "srsp"} {
		body := fmt.Sprintf(`{"alg":%q,"k":9}`, alg)
		wantStatus, want := post(t, single, "/v1/topk", body)
		gotStatus, got := post(t, co, "/v1/topk", body)
		if gotStatus != wantStatus || !bytes.Equal(got, want) {
			t.Fatalf("%s chunked pairs diverged:\ncoordinator (%d): %s\nsingle (%d): %s", alg, gotStatus, got, wantStatus, want)
		}
	}
}

package server

import (
	"context"
	"fmt"
	"sync"
)

// FlightGroup is the request-coalescing (singleflight) layer:
// concurrent calls with the same key share one execution of the
// underlying function. Keys embed the engine generation, so queries
// never join a flight computing on a different graph.
//
// Unlike the classic singleflight, the execution runs in its own
// goroutine under a context the *server* owns (the flight context),
// while each caller waits under its *request* context. A caller whose
// deadline expires abandons the wait with its context error; the
// flight keeps running and still serves every caller that can wait.
// This decouples one impatient client from the rest of a coalesced
// cohort.
type FlightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

func NewFlightGroup() *FlightGroup {
	return &FlightGroup{m: make(map[string]*flight)}
}

// Do returns the flight's result for key, collapsing concurrent
// identical calls into one execution. shared reports whether this
// caller joined a flight another caller started (a coalescing hit).
// waitCtx bounds only this caller's wait.
//
// lead is invoked synchronously in the caller's frame — only if this
// caller creates the flight — and returns the closure to execute
// asynchronously. The synchronous stage is where the leader transfers
// resources that must outlive its own request (an engine-handle pin, a
// server-owned context) into the flight, before the caller could
// possibly release them.
//
// onFollow, when non-nil, is invoked once if this caller joins an
// existing flight instead of leading one — before it starts waiting.
// A follower does no engine work of its own, so the server uses the
// hook to hand back its admission slot while it idles on the leader's
// result; holding it would let a burst of identical queries saturate
// admission with waiters that consume nothing.
func (g *FlightGroup) Do(waitCtx context.Context, key string, onFollow func(), lead func() func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		if onFollow != nil {
			onFollow()
		}
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-waitCtx.Done():
			return nil, true, waitCtx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()
	fn := lead()
	go func() {
		defer func() {
			// A panic in engine code must become this flight's error,
			// not kill the daemon: net/http's recovery only covers
			// handler goroutines, never this server-spawned one.
			if r := recover(); r != nil {
				f.err = fmt.Errorf("query panicked: %v", r)
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(f.done)
		}()
		f.val, f.err = fn()
	}()
	select {
	case <-f.done:
		return f.val, false, f.err
	case <-waitCtx.Done():
		return nil, false, waitCtx.Err()
	}
}

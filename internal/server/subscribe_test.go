package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"usimrank"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/sub"
	"usimrank/internal/ugraph"
)

// openSub opens a /v1/subscribe stream against a live httptest server
// and returns the response plus a frame reader. cancel the returned
// context to end the stream.
func openSub(t *testing.T, base, query string, lastID uint64) (*http.Response, *bufio.Reader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/subscribe?"+query, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body := make([]byte, 512)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe %q status %d: %s", query, resp.StatusCode, body[:n])
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("subscribe Content-Type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body), cancel
}

// nextEvent reads frames until a non-comment event arrives.
func nextEvent(t *testing.T, br *bufio.Reader) *sub.Frame {
	t.Helper()
	for {
		fr, err := sub.ReadFrame(br)
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		if !fr.Comment() {
			return fr
		}
	}
}

// coldBody issues a cold POST query and returns the raw response body —
// the bytes a subscription push of the same shape must reproduce
// exactly.
func coldBody(t *testing.T, h http.Handler, path string, body any) []byte {
	t.Helper()
	raw, err := MarshalBody(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold %s status %d: %s", path, rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// TestHTTPServerTimeouts pins the listener contract: a slowloris guard
// and an idle reaper, but no blanket WriteTimeout (which would kill
// every healthy SSE stream at the deadline).
func TestHTTPServerTimeouts(t *testing.T) {
	hs := NewHTTPServer(":0", http.NotFoundHandler())
	if hs.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout %v, want 0: a write deadline is armed per connection and would kill active SSE streams", hs.WriteTimeout)
	}
	if hs.ReadHeaderTimeout <= 0 {
		t.Fatalf("ReadHeaderTimeout %v, want > 0 (slowloris guard)", hs.ReadHeaderTimeout)
	}
	if hs.IdleTimeout <= 0 {
		t.Fatalf("IdleTimeout %v, want > 0 (idle keep-alive reaper)", hs.IdleTimeout)
	}
}

// TestIdleConnReapedWhileStreamSurvives runs a real listener with the
// production timeout shape (shrunk) and checks both halves of the
// invariant: a kept-alive connection with no request in flight is
// reaped by IdleTimeout, while an SSE stream that lives far past the
// same deadline keeps receiving heartbeats.
func TestIdleConnReapedWhileStreamSurvives(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions(), SubHeartbeat: 20 * time.Millisecond})

	hs := NewHTTPServer(":0", s.Handler())
	hs.ReadHeaderTimeout = 150 * time.Millisecond
	hs.IdleTimeout = 150 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// The SSE stream: opened first, must outlive several IdleTimeouts.
	resp, br, cancel := openSub(t, base, "shape=score&alg=sampling&u=3&v=17", 0)
	defer cancel()
	defer resp.Body.Close()
	if fr := nextEvent(t, br); fr.Name() != EventSnapshot {
		t.Fatalf("first event %q, want snapshot", fr.Name())
	}

	// The idle connection: completes one request, then sits silent.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
	cr := bufio.NewReader(conn)
	hr, err := http.ReadResponse(cr, nil)
	if err != nil {
		t.Fatalf("healthz over raw conn: %v", err)
	}
	if _, err := io.Copy(io.Discard, hr.Body); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := cr.ReadByte(); err == nil {
		t.Fatal("idle connection produced bytes after its response")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("idle connection still open after %v, want reaped by IdleTimeout", time.Since(start))
	}

	// The stream must still be alive well past the idle deadline: the
	// reap above took ≥ IdleTimeout, so heartbeats arriving now prove
	// the active stream was exempt.
	hbs := 0
	for hbs < 3 {
		fr, err := sub.ReadFrame(br)
		if err != nil {
			t.Fatalf("SSE stream died while idle connections were being reaped: %v", err)
		}
		if fr.Comment() {
			hbs++
		}
	}
}

// TestShutdownBroadcastsToSubscribers opens 32 live streams and checks
// DrainSubscriptions turns them all around promptly: every client sees
// a terminal shutdown event followed by EOF, and the drain completes
// far inside the drain timeout.
func TestShutdownBroadcastsToSubscribers(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const subscribers = 32
	type outcome struct {
		terminal string
		err      error
	}
	results := make(chan outcome, subscribers)
	var ready sync.WaitGroup
	ready.Add(subscribers)
	for i := 0; i < subscribers; i++ {
		go func(i int) {
			signalled := false
			defer func() {
				if !signalled {
					ready.Done()
				}
			}()
			resp, err := http.Get(fmt.Sprintf("%s/v1/subscribe?shape=topk&alg=srsp&u=%d&k=3", ts.URL, i))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			br := bufio.NewReader(resp.Body)
			last := ""
			for {
				fr, err := sub.ReadFrame(br)
				if err != nil {
					results <- outcome{terminal: last}
					return
				}
				if fr.Comment() {
					continue
				}
				if fr.Name() == EventSnapshot && !signalled {
					signalled = true
					ready.Done()
					continue
				}
				last = fr.Name()
			}
		}(i)
	}
	ready.Wait()

	start := time.Now()
	if !s.DrainSubscriptions() {
		t.Fatal("DrainSubscriptions timed out")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain of %d idle subscribers took %v", subscribers, d)
	}
	for i := 0; i < subscribers; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("subscriber error: %v", o.err)
		}
		if o.terminal != EventShutdown {
			t.Fatalf("subscriber's last event %q, want shutdown", o.terminal)
		}
	}
	if st := s.subs.Snapshot(); st.Active != 0 {
		t.Fatalf("%d subscriptions still registered after drain", st.Active)
	}
}

// TestReloadDrainsWithIdleSubscribers pins the per-push pinning rule:
// an idle subscriber holds no engine handle, so a hot-swap's drain
// completes immediately, and the subscriber then receives the
// new-generation push (a reload wakes everyone).
func TestReloadDrainsWithIdleSubscribers(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, br, cancel := openSub(t, ts.URL, "shape=score&alg=twophase&u=3&v=17", 0)
	defer cancel()
	defer resp.Body.Close()
	if fr := nextEvent(t, br); fr.Name() != EventSnapshot || fr.ID() != 1 {
		t.Fatalf("first event %s id %d, want snapshot id 1", fr.Name(), fr.ID())
	}

	path := writeGraphFile(t, testGraph())
	rr, err := s.Reload(path, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Drained {
		t.Fatal("reload did not drain: an idle subscriber is pinning the old engine")
	}
	if rr.Generation != 2 {
		t.Fatalf("reload generation %d, want 2", rr.Generation)
	}

	fr := nextEvent(t, br)
	if fr.Name() != EventUpdate || fr.ID() != 2 {
		t.Fatalf("post-reload event %s id %d, want update id 2", fr.Name(), fr.ID())
	}
	want := coldBody(t, s, "/v1/score", ScoreRequest{Alg: "twophase", U: 3, V: 17})
	if !bytes.Equal(fr.Data(), want) {
		t.Fatalf("pushed body differs from cold query:\npush: %s\ncold: %s", fr.Data(), want)
	}
}

// TestPushBytesMatchColdQuery is the equivalence suite: for every
// sampled strategy and for the indexed path, the snapshot and each
// update push must be byte-identical to a cold POST of the same shape
// at the same generation.
func TestPushBytesMatchColdQuery(t *testing.T) {
	g := testGraph()
	idx := buildTestIndex(t, g, testOptions())
	s := newTestServer(t, Config{Engine: testOptions(), Index: idx})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a, b, p := firstArc(t, g)
	_ = a
	gen := uint64(1)
	for i, alg := range []string{"sampling", "twophase", "srsp", "sampling_v2", "indexed"} {
		t.Run(alg, func(t *testing.T) {
			// Subscribe to the single-source shape rooted at the updated
			// arc's head: the invalidation BFS reaches it at distance 0,
			// so every batch below must wake this stream.
			resp, br, cancel := openSub(t, ts.URL, "shape=source&alg="+alg+"&u="+fmt.Sprint(b), 0)
			defer cancel()
			defer resp.Body.Close()

			fr := nextEvent(t, br)
			if fr.Name() != EventSnapshot || fr.ID() != gen {
				t.Fatalf("first event %s id %d, want snapshot id %d", fr.Name(), fr.ID(), gen)
			}
			want := coldBody(t, s, "/v1/source", SourceRequest{Alg: alg, U: b})
			if !bytes.Equal(fr.Data(), want) {
				t.Fatalf("snapshot differs from cold query at generation %d:\npush: %s\ncold: %s", gen, fr.Data(), want)
			}

			// Mutate the arc into the watched source; p varies per
			// iteration so every batch is a net change.
			newP := 0.25 + 0.05*float64(i)
			if _, err := s.ApplyUpdates([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: newP}}); err != nil {
				t.Fatal(err)
			}
			gen++

			fr = nextEvent(t, br)
			if fr.Name() != EventUpdate || fr.ID() != gen {
				t.Fatalf("post-update event %s id %d, want update id %d", fr.Name(), fr.ID(), gen)
			}
			want = coldBody(t, s, "/v1/source", SourceRequest{Alg: alg, U: b})
			if !bytes.Equal(fr.Data(), want) {
				t.Fatalf("pushed update differs from cold query at generation %d:\npush: %s\ncold: %s", gen, fr.Data(), want)
			}
		})
	}
	_ = p
}

// TestNoopUpdateWakesNoSubscriptions applies a batch that nets out to
// no change (a reweight to the arc's existing probability) and checks
// the invalidation plane stays silent: zero wake-ups, zero pushes. A
// genuine change afterwards proves the stream was alive all along.
func TestNoopUpdateWakesNoSubscriptions(t *testing.T) {
	g := testGraph()
	s := newTestServer(t, Config{Engine: testOptions()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	a, b, p := firstArc(t, g)

	resp, br, cancel := openSub(t, ts.URL, fmt.Sprintf("shape=score&alg=sampling&u=%d&v=%d", b, (b+1)%g.NumVertices()), 0)
	defer cancel()
	defer resp.Body.Close()
	if fr := nextEvent(t, br); fr.Name() != EventSnapshot {
		t.Fatalf("first event %q, want snapshot", fr.Name())
	}

	before := s.subs.Snapshot()
	if _, err := s.ApplyUpdates([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: p}}); err != nil {
		t.Fatal(err)
	}
	after := s.subs.Snapshot()
	if after.Wakeups != before.Wakeups || after.Lookups != before.Lookups {
		t.Fatalf("no-op batch woke subscriptions: wakeups %d->%d, lookups %d->%d",
			before.Wakeups, after.Wakeups, before.Lookups, after.Lookups)
	}

	// A real change must still come through — and its push skips the
	// netted-out generation, jumping straight to the latest.
	if _, err := s.ApplyUpdates([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: p / 2}}); err != nil {
		t.Fatal(err)
	}
	fr := nextEvent(t, br)
	if fr.Name() != EventUpdate || fr.ID() != 3 {
		t.Fatalf("post-change event %s id %d, want update id 3", fr.Name(), fr.ID())
	}
}

// TestWakeSetMatchesBoundedDistances pins the wake-set precision: the
// set of woken subscriptions must equal, exactly, the vertices within
// the walk horizon of the net-changed arc heads under the union of the
// old and new graphs — the ground truth BoundedDistances computes —
// and the registry must spend one index lookup per touched vertex, not
// per subscription.
func TestWakeSetMatchesBoundedDistances(t *testing.T) {
	oldG := testGraph()
	s := newTestServer(t, Config{Engine: testOptions()})
	n := oldG.NumVertices()

	// One subscription per vertex, registered directly with the wake
	// plane (the HTTP framing is exercised elsewhere).
	subs := make([]*sub.Subscription, n)
	for v := 0; v < n; v++ {
		subs[v] = s.subs.Subscribe([]int32{int32(v)}, 0)
		if subs[v] == nil {
			t.Fatal("Subscribe returned nil on a live registry")
		}
	}

	a, b, p := firstArc(t, oldG)
	ups := []usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: p / 2}}
	newG, err := oldG.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: sources whose walks can reach the net-changed head b
	// within Steps−1 hops in the old or new graph.
	steps := testOptions().Steps
	if steps == 0 {
		steps = 5
	}
	horizon := steps - 1
	dist := ugraph.BoundedDistances([]int32{int32(b)}, horizon, oldG, newG)
	expected := make([]bool, n)
	expectedCount := 0
	for v, dv := range dist {
		if dv >= 0 && int(dv) <= horizon {
			expected[v] = true
			expectedCount++
		}
	}
	if expectedCount == 0 || expectedCount == n {
		t.Fatalf("degenerate ground truth (%d/%d touched); pick a different arc", expectedCount, n)
	}

	before := s.subs.Snapshot()
	if _, err := s.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	after := s.subs.Snapshot()

	for v := 0; v < n; v++ {
		woken := subs[v].Pending() != 0
		if woken != expected[v] {
			t.Errorf("vertex %d: woken=%v, BoundedDistances says %v (dist %d, horizon %d)",
				v, woken, expected[v], dist[v], horizon)
		}
	}
	if got := after.Wakeups - before.Wakeups; got != uint64(expectedCount) {
		t.Errorf("wakeups %d, want %d (one per touched source)", got, expectedCount)
	}
	if got := after.Lookups - before.Lookups; got != uint64(expectedCount) {
		t.Errorf("index lookups %d, want %d — the wake path must be O(touched), not O(subscribers)", got, expectedCount)
	}
}

// TestSubscribeResume pins the Last-Event-ID contract: reconnecting
// with the current generation skips the snapshot; reconnecting with an
// older one gets a fresh snapshot at the current generation.
func TestSubscribeResume(t *testing.T) {
	g := testGraph()
	s := newTestServer(t, Config{Engine: testOptions(), SubHeartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	a, b, p := firstArc(t, g)

	// Current generation resume: no snapshot, just heartbeats until a
	// change lands.
	resp, br, cancel := openSub(t, ts.URL, fmt.Sprintf("shape=topk&alg=sampling&u=%d&k=3", b), 1)
	defer cancel()
	defer resp.Body.Close()
	fr, err := sub.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Comment() {
		t.Fatalf("resumed-at-current stream sent %q first, want a heartbeat comment (snapshot skipped)", fr.Name())
	}
	if _, err := s.ApplyUpdates([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: p / 2}}); err != nil {
		t.Fatal(err)
	}
	if fr := nextEvent(t, br); fr.Name() != EventUpdate || fr.ID() != 2 {
		t.Fatalf("resumed stream got %s id %d, want update id 2", fr.Name(), fr.ID())
	}

	// Stale resume: generation moved while away → snapshot at current.
	resp2, br2, cancel2 := openSub(t, ts.URL, fmt.Sprintf("shape=topk&alg=sampling&u=%d&k=3", b), 1)
	defer cancel2()
	defer resp2.Body.Close()
	if fr := nextEvent(t, br2); fr.Name() != EventSnapshot || fr.ID() != 2 {
		t.Fatalf("stale resume got %s id %d, want snapshot id 2", fr.Name(), fr.ID())
	}
}

// TestSubscribeValidation pins the 4xx surface: bad shapes, bad
// algorithms, out-of-range vertices, and the indexed path on a node
// without an index are all refused before the stream starts.
func TestSubscribeValidation(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct{ name, query string }{
		{"bad shape", "shape=pairs&alg=sampling&u=1"},
		{"bad alg", "shape=score&alg=nope&u=1&v=2"},
		{"missing v", "shape=score&alg=sampling&u=1"},
		{"vertex out of range", "shape=score&alg=sampling&u=1&v=99999"},
		{"k < 1", "shape=topk&alg=sampling&u=1&k=0"},
		{"indexed without index", "shape=source&alg=indexed&u=1"},
	} {
		resp, err := http.Get(ts.URL + "/v1/subscribe?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if strings.Contains(resp.Header.Get("Content-Type"), "event-stream") {
			t.Errorf("%s: refused subscription opened a stream", tc.name)
		}
	}
}

// TestStalenessCoalescesBurst negotiates a staleness SLA and applies a
// burst of updates inside the window: the subscriber must receive ONE
// push carrying the newest generation, with the intermediate one
// folded in — one recompute for the whole burst.
func TestStalenessCoalescesBurst(t *testing.T) {
	g := testGraph()
	s := newTestServer(t, Config{Engine: testOptions(), SubHeartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	a, b, p := firstArc(t, g)

	resp, br, cancel := openSub(t, ts.URL,
		fmt.Sprintf("shape=score&alg=sampling&u=%d&v=%d&staleness_ms=400", b, a), 0)
	defer cancel()
	defer resp.Body.Close()
	if fr := nextEvent(t, br); fr.Name() != EventSnapshot {
		t.Fatalf("first event %q, want snapshot", fr.Name())
	}

	if _, err := s.ApplyUpdates([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: p / 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyUpdates([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: p / 3}}); err != nil {
		t.Fatal(err)
	}

	fr := nextEvent(t, br)
	if fr.Name() != EventUpdate || fr.ID() != 3 {
		t.Fatalf("burst push %s id %d, want update id 3 (both generations in one push)", fr.Name(), fr.ID())
	}
	want := coldBody(t, s, "/v1/score", ScoreRequest{Alg: "sampling", U: b, V: a})
	if !bytes.Equal(fr.Data(), want) {
		t.Fatalf("coalesced push differs from cold query:\npush: %s\ncold: %s", fr.Data(), want)
	}
	st := s.subs.Snapshot()
	if st.Coalesced < 1 {
		t.Fatalf("coalesced counter %d, want >= 1 (second generation folded into the pending push)", st.Coalesced)
	}
	if st.Pushes != 1 {
		t.Fatalf("pushes %d, want exactly 1 for the whole burst", st.Pushes)
	}
}

// TestReloadShrinkingGraphSendsGone reloads a graph too small for the
// watched vertices: the stream must end with a terminal "gone" event
// rather than pushing an answer for vertices that no longer exist.
func TestReloadShrinkingGraphSendsGone(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, br, cancel := openSub(t, ts.URL, "shape=topk&alg=sampling&u=63&k=3", 0)
	defer cancel()
	defer resp.Body.Close()
	if fr := nextEvent(t, br); fr.Name() != EventSnapshot {
		t.Fatalf("first event %q, want snapshot", fr.Name())
	}

	small := gen.WithUniformProbs(gen.RMAT(5, 128, 0.45, 0.22, 0.22, rng.New(3)), 0.2, 0.9, rng.New(4))
	if small.NumVertices() >= 64 {
		t.Fatalf("shrunk graph has %d vertices, want < 64", small.NumVertices())
	}
	if _, err := s.Reload(writeGraphFile(t, small), false, ""); err != nil {
		t.Fatal(err)
	}

	fr := nextEvent(t, br)
	if fr.Name() != EventGone {
		t.Fatalf("post-shrink event %q, want gone", fr.Name())
	}
	if _, err := sub.ReadFrame(br); err == nil {
		t.Fatal("stream still open after the terminal gone event")
	}
	if st := s.subs.Snapshot(); st.Dropped < 1 {
		t.Fatalf("dropped counter %d, want >= 1", st.Dropped)
	}
}

// TestPushCandidatesMatchColdQuery extends the equivalence suite to
// candidate-restricted source subscriptions, sampled and indexed.
func TestPushCandidatesMatchColdQuery(t *testing.T) {
	g := testGraph()
	idx := buildTestIndex(t, g, testOptions())
	s := newTestServer(t, Config{Engine: testOptions(), Index: idx})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	a, b, _ := firstArc(t, g)

	cands := []int{a, b, (b + 1) % g.NumVertices()}
	candParam := fmt.Sprintf("%d,%d,%d", cands[0], cands[1], cands[2])
	gen := uint64(1)
	for i, alg := range []string{"sampling", "indexed"} {
		t.Run(alg, func(t *testing.T) {
			resp, br, cancel := openSub(t, ts.URL,
				fmt.Sprintf("shape=source&alg=%s&u=%d&candidates=%s", alg, b, candParam), 0)
			defer cancel()
			defer resp.Body.Close()

			fr := nextEvent(t, br)
			if fr.Name() != EventSnapshot || fr.ID() != gen {
				t.Fatalf("first event %s id %d, want snapshot id %d", fr.Name(), fr.ID(), gen)
			}
			want := coldBody(t, s, "/v1/source", SourceRequest{Alg: alg, U: b, Candidates: cands})
			if !bytes.Equal(fr.Data(), want) {
				t.Fatalf("candidate snapshot differs from cold query:\npush: %s\ncold: %s", fr.Data(), want)
			}

			if _, err := s.ApplyUpdates([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: 0.3 + 0.1*float64(i)}}); err != nil {
				t.Fatal(err)
			}
			gen++
			fr = nextEvent(t, br)
			if fr.Name() != EventUpdate || fr.ID() != gen {
				t.Fatalf("post-update event %s id %d, want update id %d", fr.Name(), fr.ID(), gen)
			}
			want = coldBody(t, s, "/v1/source", SourceRequest{Alg: alg, U: b, Candidates: cands})
			if !bytes.Equal(fr.Data(), want) {
				t.Fatalf("candidate push differs from cold query:\npush: %s\ncold: %s", fr.Data(), want)
			}
		})
	}
}

// TestScoreSelfPairSubscription covers the degenerate score shape: a
// self-pair watches one vertex, not two copies of it.
func TestScoreSelfPairSubscription(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, br, cancel := openSub(t, ts.URL, "shape=score&alg=srsp&u=5&v=5", 0)
	defer cancel()
	defer resp.Body.Close()
	fr := nextEvent(t, br)
	if fr.Name() != EventSnapshot {
		t.Fatalf("first event %q, want snapshot", fr.Name())
	}
	want := coldBody(t, s, "/v1/score", ScoreRequest{Alg: "srsp", U: 5, V: 5})
	if !bytes.Equal(fr.Data(), want) {
		t.Fatalf("self-pair snapshot differs from cold query:\npush: %s\ncold: %s", fr.Data(), want)
	}
}

// TestTopkAndFullSourceWakeWhenOnlyVSideChanges is the regression test
// for the missed-wake bug the per-side TouchedSources contract implies:
// top-k of u and the unrestricted single-source vector evaluate u
// against every vertex, so a touched v-side row can move their answer
// even when u itself is provably outside the invalidation set. Both
// shapes must be woken by such an update and push bytes identical to a
// cold query at the new generation.
func TestTopkAndFullSourceWakeWhenOnlyVSideChanges(t *testing.T) {
	g := testGraph()
	s := newTestServer(t, Config{Engine: testOptions()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a, b, p := firstArc(t, g)
	ups := []usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: a, V: b, P: p / 2}}
	newG, err := g.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}

	// Find a source vertex provably unaffected by the reweight: outside
	// the invalidation BFS from the changed head b.
	steps := testOptions().Steps
	if steps == 0 {
		steps = 5
	}
	horizon := steps - 1
	dist := ugraph.BoundedDistances([]int32{int32(b)}, horizon, g, newG)
	u := -1
	for v, dv := range dist {
		if (dv < 0 || int(dv) > horizon) && v != a && v != b {
			u = v
			break
		}
	}
	if u < 0 {
		t.Fatal("every vertex is touched; pick a different arc or graph")
	}

	topkResp, topkBr, topkCancel := openSub(t, ts.URL,
		fmt.Sprintf("shape=topk&alg=sampling&u=%d&k=3", u), 0)
	defer topkCancel()
	defer topkResp.Body.Close()
	srcResp, srcBr, srcCancel := openSub(t, ts.URL,
		fmt.Sprintf("shape=source&alg=sampling&u=%d", u), 0)
	defer srcCancel()
	defer srcResp.Body.Close()
	for _, br := range []*bufio.Reader{topkBr, srcBr} {
		if fr := nextEvent(t, br); fr.Name() != EventSnapshot || fr.ID() != 1 {
			t.Fatalf("first event %s id %d, want snapshot id 1", fr.Name(), fr.ID())
		}
	}

	if _, err := s.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}

	fr := nextEvent(t, topkBr)
	if fr.Name() != EventUpdate || fr.ID() != 2 {
		t.Fatalf("topk event %s id %d, want update id 2 — untouched-u top-k missed a v-side change", fr.Name(), fr.ID())
	}
	if want := coldBody(t, s, "/v1/topk", TopKRequest{Alg: "sampling", U: &u, K: 3}); !bytes.Equal(fr.Data(), want) {
		t.Fatalf("topk push differs from cold query:\npush: %s\ncold: %s", fr.Data(), want)
	}

	fr = nextEvent(t, srcBr)
	if fr.Name() != EventUpdate || fr.ID() != 2 {
		t.Fatalf("source event %s id %d, want update id 2 — untouched-u full vector missed a v-side change", fr.Name(), fr.ID())
	}
	if want := coldBody(t, s, "/v1/source", SourceRequest{Alg: "sampling", U: u}); !bytes.Equal(fr.Data(), want) {
		t.Fatalf("source push differs from cold query:\npush: %s\ncold: %s", fr.Data(), want)
	}
}

package server

import (
	"sync/atomic"
	"testing"

	"usimrank"
)

// BenchmarkServerThroughput measures end-to-end queries/sec per shape
// through the full serving stack — JSON decode, admission, coalescing,
// engine kernel, JSON encode — with concurrent clients (RunParallel),
// the server-side figure the CI perf-trajectory artifact (BENCH_3)
// tracks across PRs. Client counters vary the requests so the numbers
// reflect distinct-query throughput, not coalescing on one hot key.
func BenchmarkServerThroughput(b *testing.B) {
	g := testGraph()
	nv := g.NumVertices()
	s, err := New(g, "bench://rmat6", Config{Engine: usimrank.Options{N: 400, Seed: 7}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.WarmFilters()

	var seq atomic.Int64
	shapes := []struct {
		name string
		call func(i int) (int, error)
	}{
		{"score_srsp", func(i int) (int, error) {
			var resp ScoreResponse
			return callE(s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: i % nv, V: (i * 7) % nv}, &resp)
		}},
		{"score_sampling", func(i int) (int, error) {
			var resp ScoreResponse
			return callE(s, "POST", "/v1/score", ScoreRequest{Alg: "sampling", U: i % nv, V: (i * 7) % nv}, &resp)
		}},
		{"source_srsp", func(i int) (int, error) {
			var resp SourceResponse
			return callE(s, "POST", "/v1/source", SourceRequest{Alg: "srsp", U: i % nv}, &resp)
		}},
		{"topk_srsp", func(i int) (int, error) {
			u := i % nv
			var resp TopKResponse
			return callE(s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", U: &u, K: 10}, &resp)
		}},
		{"batch_twophase", func(i int) (int, error) {
			u := i % nv
			pairs := [][2]int{{u, (u + 1) % nv}, {u, (u + 5) % nv}, {u, (u + 9) % nv}}
			var resp BatchResponse
			return callE(s, "POST", "/v1/batch", BatchRequest{Alg: "twophase", Pairs: pairs}, &resp)
		}},
	}
	for _, shape := range shapes {
		b.Run(shape.name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					code, err := shape.call(i)
					if err != nil || code != 200 {
						b.Errorf("%s: status %d err %v", shape.name, code, err)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
	if hits := s.metrics.coalesceHits.Load(); hits > 0 {
		b.Logf("coalescing hits during benchmark: %d", hits)
	}
}

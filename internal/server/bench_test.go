package server

import (
	"context"
	"sync/atomic"
	"testing"

	"usimrank"
	"usimrank/internal/obs"
)

// BenchmarkServerThroughput measures end-to-end queries/sec per shape
// through the full serving stack — JSON decode, admission, coalescing,
// engine kernel, JSON encode — with concurrent clients (RunParallel),
// the server-side figure the CI perf-trajectory artifact (BENCH_3)
// tracks across PRs. Client counters vary the requests so the numbers
// reflect distinct-query throughput, not coalescing on one hot key.
func BenchmarkServerThroughput(b *testing.B) {
	g := testGraph()
	nv := g.NumVertices()
	s, err := New(g, "bench://rmat6", Config{Engine: usimrank.Options{N: 400, Seed: 7}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.WarmFilters()

	var seq atomic.Int64
	shapes := []struct {
		name string
		call func(i int) (int, error)
	}{
		{"score_srsp", func(i int) (int, error) {
			var resp ScoreResponse
			return callE(s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: i % nv, V: (i * 7) % nv}, &resp)
		}},
		{"score_sampling", func(i int) (int, error) {
			var resp ScoreResponse
			return callE(s, "POST", "/v1/score", ScoreRequest{Alg: "sampling", U: i % nv, V: (i * 7) % nv}, &resp)
		}},
		{"source_srsp", func(i int) (int, error) {
			var resp SourceResponse
			return callE(s, "POST", "/v1/source", SourceRequest{Alg: "srsp", U: i % nv}, &resp)
		}},
		{"topk_srsp", func(i int) (int, error) {
			u := i % nv
			var resp TopKResponse
			return callE(s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", U: &u, K: 10}, &resp)
		}},
		{"batch_twophase", func(i int) (int, error) {
			u := i % nv
			pairs := [][2]int{{u, (u + 1) % nv}, {u, (u + 5) % nv}, {u, (u + 9) % nv}}
			var resp BatchResponse
			return callE(s, "POST", "/v1/batch", BatchRequest{Alg: "twophase", Pairs: pairs}, &resp)
		}},
	}
	for _, shape := range shapes {
		b.Run(shape.name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					code, err := shape.call(i)
					if err != nil || code != 200 {
						b.Errorf("%s: status %d err %v", shape.name, code, err)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
	if hits := s.metrics.coalesceHits.Load(); hits > 0 {
		b.Logf("coalescing hits during benchmark: %d", hits)
	}
}

// BenchmarkTracingOverhead pins the cost of the observability plane
// when tracing is DISARMED — the steady state of every production
// query that carries no trace header, no debug flag, and runs under no
// slow-query threshold. The bare leg is the naked zero-allocation v2
// kernel call; the off leg wraps the identical call in exactly the
// disabled-tracing span operations the server's execute path performs
// per query (nil *Trace, zero Spans, context pass-through, the
// ambient-span lookup the kernel wrappers do). CI gates the off leg at
// 0 allocs/op and within 2% of bare ns/op: tracing must be free until
// armed.
func BenchmarkTracingOverhead(b *testing.B) {
	e, err := usimrank.New(testGraph(), usimrank.Options{N: 400, Seed: 7, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Compute(usimrank.AlgSamplingV2, 3, 17); err != nil { // build the v2 plan + warm the pools offline
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Compute(usimrank.AlgSamplingV2, 3, 17); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		var tr *obs.Trace // disarmed: what traceFor returns without a consumer
		root := tr.Start("score")
		for i := 0; i < b.N; i++ {
			asp := root.Start("admission_wait")
			asp.End()
			csp := root.Start("coalesce")
			eng := root.Start("engine_compute")
			cctx := obs.ContextWithSpan(ctx, eng)
			sp := obs.SpanFromContext(cctx).Start("kernel_pair")
			sp.Add("walks", 1)
			_, err := e.Compute(usimrank.AlgSamplingV2, 3, 17)
			sp.Error(err)
			sp.End()
			eng.End()
			if csp.Enabled() {
				csp.Add("leader", 1)
			}
			csp.End()
			root.Error(err)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

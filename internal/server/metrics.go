package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// latency histogram: base-2 buckets starting at 50µs. Bucket i covers
// (50µs·2^(i-1), 50µs·2^i]; the last bucket is open-ended. 28 buckets
// reach ~1.9 hours, far past any plausible query deadline.
const (
	histBuckets = 28
	histBaseUs  = 50
)

// histogram is a lock-free fixed-bucket latency histogram.
type histogram struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	maxUs  atomic.Uint64
}

func bucketFor(us int64) int {
	if us < 0 {
		us = 0
	}
	bound := int64(histBaseUs)
	for i := 0; i < histBuckets-1; i++ {
		if us <= bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	h.counts[bucketFor(us)].Add(1)
	h.total.Add(1)
	for {
		cur := h.maxUs.Load()
		if uint64(us) <= cur || h.maxUs.CompareAndSwap(cur, uint64(us)) {
			return
		}
	}
}

// quantile returns the upper bound (in ms) of the bucket holding the
// q-th fraction of observations, 0 when the histogram is empty.
func (h *histogram) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	bound := int64(histBaseUs)
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			return float64(bound) / 1000
		}
		bound <<= 1
	}
	return float64(h.maxUs.Load()) / 1000
}

func (h *histogram) summary() LatencySummary {
	return LatencySummary{
		P50: h.quantile(0.50),
		P90: h.quantile(0.90),
		P99: h.quantile(0.99),
		Max: float64(h.maxUs.Load()) / 1000,
	}
}

// queryMetrics is one (shape, algorithm) cell.
type queryMetrics struct {
	count        atomic.Uint64
	errors       atomic.Uint64
	coalesceHits atomic.Uint64
	latency      histogram
}

// MetricsRegistry aggregates everything /v1/stats reports that the
// server itself owns (engine- and graph-level figures are read live at
// snapshot time). All counters are atomics; the map of cells is
// guarded by a mutex but accessed once per request.
type MetricsRegistry struct {
	mu    sync.Mutex
	cells map[string]*queryMetrics // key "shape/alg"

	InFlight          atomic.Int64
	AdmissionRejected atomic.Uint64
	DeadlineExceeded  atomic.Uint64

	coalesceHits   atomic.Uint64
	coalesceMisses atomic.Uint64
	shapeMu        sync.Mutex
	shapeHits      map[string]uint64
}

func NewMetricsRegistry() *MetricsRegistry {
	return &MetricsRegistry{
		cells:     make(map[string]*queryMetrics),
		shapeHits: make(map[string]uint64),
	}
}

func (m *MetricsRegistry) cell(shape, alg string) *queryMetrics {
	key := shape + "/" + alg
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[key]
	if !ok {
		c = &queryMetrics{}
		m.cells[key] = c
	}
	return c
}

// RecordQuery folds one finished query into the registry.
func (m *MetricsRegistry) RecordQuery(shape, alg string, d time.Duration, coalesced bool, err error) {
	c := m.recordCell(shape, alg, d, err)
	if coalesced {
		c.coalesceHits.Add(1)
		m.coalesceHits.Add(1)
		m.shapeMu.Lock()
		m.shapeHits[shape]++
		m.shapeMu.Unlock()
	} else {
		m.coalesceMisses.Add(1)
	}
}

// RecordDownstream folds one downstream sub-request (the cluster
// coordinator's per-shard calls) into its own cell WITHOUT touching
// the coalescing counters: a scatter's N shard requests are the
// leader's implementation detail, and counting them as N coalesce
// misses would dilute the reported hit rate by the shard count.
func (m *MetricsRegistry) RecordDownstream(shape, alg string, d time.Duration, err error) {
	m.recordCell(shape, alg, d, err)
}

// CountError bumps a cell's error counter after the fact. The cluster
// coordinator uses it when a relayed downstream response turns out to
// carry an error status: the flight returned it as a plain value, so
// RecordQuery saw no error, but the client did receive one.
func (m *MetricsRegistry) CountError(shape, alg string) {
	m.cell(shape, alg).errors.Add(1)
}

func (m *MetricsRegistry) recordCell(shape, alg string, d time.Duration, err error) *queryMetrics {
	c := m.cell(shape, alg)
	c.count.Add(1)
	if err != nil {
		c.errors.Add(1)
	}
	c.latency.observe(d)
	return c
}

func (m *MetricsRegistry) ServingStats(maxInFlight int) ServingStats {
	return ServingStats{
		InFlight:          m.InFlight.Load(),
		MaxInFlight:       maxInFlight,
		AdmissionRejected: m.AdmissionRejected.Load(),
		DeadlineExceeded:  m.DeadlineExceeded.Load(),
	}
}

func (m *MetricsRegistry) CoalescingStats() CoalescingStats {
	hits := m.coalesceHits.Load()
	misses := m.coalesceMisses.Load()
	per := make(map[string]uint64)
	m.shapeMu.Lock()
	for k, v := range m.shapeHits {
		per[k] = v
	}
	m.shapeMu.Unlock()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return CoalescingStats{Hits: hits, Misses: misses, HitRate: rate, PerShape: per}
}

func (m *MetricsRegistry) QueryStats() map[string]QueryStats {
	m.mu.Lock()
	snap := make(map[string]*queryMetrics, len(m.cells))
	for k, c := range m.cells {
		snap[k] = c
	}
	m.mu.Unlock()
	out := make(map[string]QueryStats, len(snap))
	for k, c := range snap {
		out[k] = QueryStats{
			Count:        c.count.Load(),
			Errors:       c.errors.Load(),
			CoalesceHits: c.coalesceHits.Load(),
			LatencyMs:    c.latency.summary(),
		}
	}
	return out
}

package server

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"usimrank/internal/obs"
)

// latency histogram: base-2 buckets starting at 50µs. Bucket i covers
// (50µs·2^(i-1), 50µs·2^i]; the last bucket is open-ended. 28 buckets
// reach ~1.9 hours, far past any plausible query deadline.
const (
	histBuckets = 28
	histBaseUs  = 50
)

// histogram is a lock-free fixed-bucket latency histogram.
type histogram struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sumUs  atomic.Uint64
	maxUs  atomic.Uint64
}

// bucketFor maps a latency to its bucket in constant time: the bucket
// index is the bit length of ⌈us/50µs⌉-1, because base-2 bucket bounds
// make "first power of two ≥ ratio" exactly the bit length. Replaces a
// per-observation linear scan over the bounds; the exhaustive
// equivalence test in metrics_internal_test.go pins it to the old
// loop's answers across every bucket boundary.
func bucketFor(us int64) int {
	if us <= histBaseUs {
		return 0
	}
	b := bits.Len64((uint64(us)+histBaseUs-1)/histBaseUs - 1)
	if b > histBuckets-1 {
		return histBuckets - 1
	}
	return b
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[bucketFor(us)].Add(1)
	h.total.Add(1)
	h.sumUs.Add(uint64(us))
	for {
		cur := h.maxUs.Load()
		if uint64(us) <= cur || h.maxUs.CompareAndSwap(cur, uint64(us)) {
			return
		}
	}
}

// quantile returns the upper bound (in ms) of the bucket holding the
// q-th fraction of observations, 0 when the histogram is empty.
func (h *histogram) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	bound := int64(histBaseUs)
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			return float64(bound) / 1000
		}
		bound <<= 1
	}
	return float64(h.maxUs.Load()) / 1000
}

func (h *histogram) summary() LatencySummary {
	return LatencySummary{
		P50: h.quantile(0.50),
		P90: h.quantile(0.90),
		P99: h.quantile(0.99),
		Max: float64(h.maxUs.Load()) / 1000,
	}
}

// histLe precomputes the Prometheus le= boundary strings: bucket i's
// upper bound 50µs·2^i rendered in seconds, +Inf on the open-ended
// last bucket.
var histLe = func() [histBuckets]string {
	var out [histBuckets]string
	for i := 0; i < histBuckets-1; i++ {
		out[i] = strconv.FormatFloat(float64(int64(histBaseUs)<<i)/1e6, 'g', -1, 64)
	}
	out[histBuckets-1] = "+Inf"
	return out
}()

// writeHistogram renders one histogram as a Prometheus _bucket series
// (cumulative counts, base-2 le bounds in seconds) plus _sum/_count.
func writeHistogram(pw *obs.PromWriter, name string, labels []obs.Label, h *histogram) {
	lbls := make([]obs.Label, len(labels)+1)
	copy(lbls, labels)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		lbls[len(labels)] = obs.Label{Key: "le", Value: histLe[i]}
		pw.Uint(name+"_bucket", lbls, cum)
	}
	pw.Float(name+"_sum", labels, float64(h.sumUs.Load())/1e6)
	pw.Uint(name+"_count", labels, h.total.Load())
}

// queryMetrics is one (shape, algorithm) cell.
type queryMetrics struct {
	count        atomic.Uint64
	errors       atomic.Uint64
	coalesceHits atomic.Uint64
	latency      histogram
}

// MetricsRegistry aggregates everything /v1/stats and /metrics report
// that the server itself owns (engine- and graph-level figures are
// read live at snapshot time). All counters are atomics. The cell map
// is an atomic pointer to an immutable map: the per-request lookup is
// lock-free, and only the first sighting of a (shape, alg) pair takes
// the mutex to publish a copy-on-write successor map — the cell set is
// bounded by shapes × algorithms, so writes stop once traffic has
// touched every combination.
type MetricsRegistry struct {
	mu    sync.Mutex                               // guards cell insertion (copy-on-write publish)
	cells atomic.Pointer[map[string]*queryMetrics] // key "shape/alg"

	InFlight          atomic.Int64
	AdmissionRejected atomic.Uint64
	DeadlineExceeded  atomic.Uint64
	// ClientGone counts requests abandoned by their client; they do not
	// feed the per-shape error counters (see Server.execute).
	ClientGone atomic.Uint64
	// Adaptive serving-path counters (leaders only; see noteAdaptive).
	AdaptiveQueries    atomic.Uint64
	PartialResults     atomic.Uint64
	AdaptiveRounds     atomic.Uint64
	AdaptiveEarlyStops atomic.Uint64

	coalesceHits   atomic.Uint64
	coalesceMisses atomic.Uint64
	shapeMu        sync.Mutex
	shapeHits      map[string]uint64
}

func NewMetricsRegistry() *MetricsRegistry {
	m := &MetricsRegistry{shapeHits: make(map[string]uint64)}
	empty := make(map[string]*queryMetrics)
	m.cells.Store(&empty)
	return m
}

func (m *MetricsRegistry) cell(shape, alg string) *queryMetrics {
	key := shape + "/" + alg
	if c, ok := (*m.cells.Load())[key]; ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.cells.Load()
	if c, ok := old[key]; ok {
		return c
	}
	next := make(map[string]*queryMetrics, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	c := &queryMetrics{}
	next[key] = c
	m.cells.Store(&next)
	return c
}

// RecordQuery folds one finished query into the registry.
func (m *MetricsRegistry) RecordQuery(shape, alg string, d time.Duration, coalesced bool, err error) {
	c := m.recordCell(shape, alg, d, err)
	if coalesced {
		c.coalesceHits.Add(1)
		m.coalesceHits.Add(1)
		m.shapeMu.Lock()
		m.shapeHits[shape]++
		m.shapeMu.Unlock()
	} else {
		m.coalesceMisses.Add(1)
	}
}

// RecordDownstream folds one downstream sub-request (the cluster
// coordinator's per-shard calls) into its own cell WITHOUT touching
// the coalescing counters: a scatter's N shard requests are the
// leader's implementation detail, and counting them as N coalesce
// misses would dilute the reported hit rate by the shard count.
func (m *MetricsRegistry) RecordDownstream(shape, alg string, d time.Duration, err error) {
	m.recordCell(shape, alg, d, err)
}

// CountError bumps a cell's error counter after the fact. The cluster
// coordinator uses it when a relayed downstream response turns out to
// carry an error status: the flight returned it as a plain value, so
// RecordQuery saw no error, but the client did receive one.
func (m *MetricsRegistry) CountError(shape, alg string) {
	m.cell(shape, alg).errors.Add(1)
}

func (m *MetricsRegistry) recordCell(shape, alg string, d time.Duration, err error) *queryMetrics {
	c := m.cell(shape, alg)
	c.count.Add(1)
	if err != nil {
		c.errors.Add(1)
	}
	c.latency.observe(d)
	return c
}

func (m *MetricsRegistry) ServingStats(maxInFlight int) ServingStats {
	return ServingStats{
		InFlight:           m.InFlight.Load(),
		MaxInFlight:        maxInFlight,
		AdmissionRejected:  m.AdmissionRejected.Load(),
		DeadlineExceeded:   m.DeadlineExceeded.Load(),
		ClientGone:         m.ClientGone.Load(),
		AdaptiveQueries:    m.AdaptiveQueries.Load(),
		PartialResults:     m.PartialResults.Load(),
		AdaptiveRounds:     m.AdaptiveRounds.Load(),
		AdaptiveEarlyStops: m.AdaptiveEarlyStops.Load(),
	}
}

func (m *MetricsRegistry) CoalescingStats() CoalescingStats {
	hits := m.coalesceHits.Load()
	misses := m.coalesceMisses.Load()
	per := make(map[string]uint64)
	m.shapeMu.Lock()
	for k, v := range m.shapeHits {
		per[k] = v
	}
	m.shapeMu.Unlock()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return CoalescingStats{Hits: hits, Misses: misses, HitRate: rate, PerShape: per}
}

func (m *MetricsRegistry) QueryStats() map[string]QueryStats {
	cells := *m.cells.Load()
	out := make(map[string]QueryStats, len(cells))
	for k, c := range cells {
		out[k] = QueryStats{
			Count:        c.count.Load(),
			Errors:       c.errors.Load(),
			CoalesceHits: c.coalesceHits.Load(),
			LatencyMs:    c.latency.summary(),
		}
	}
	return out
}

// isShardCellKey reports whether a cell key's first component is a
// coordinator downstream shard name ("shard<N>").
func isShardCellKey(first string) bool {
	if len(first) <= 5 || first[:5] != "shard" {
		return false
	}
	for i := 5; i < len(first); i++ {
		if first[i] < '0' || first[i] > '9' {
			return false
		}
	}
	return true
}

// WriteProm renders the registry as Prometheus text exposition. Query
// cells become the usimrank_queries/usimrank_query_* families labeled
// {shape, alg}; cells recorded via RecordDownstream under a shard name
// (the coordinator's per-shard accounting) become the usimrank_shard_*
// families labeled {shard, shape}. Keys are emitted in sorted order so
// scrapes are stable and diffable.
func (m *MetricsRegistry) WriteProm(pw *obs.PromWriter) {
	cells := *m.cells.Load()
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels []obs.Label
		c      *queryMetrics
	}
	var query, shard []row
	for _, k := range keys {
		first, second, _ := strings.Cut(k, "/")
		if isShardCellKey(first) {
			shard = append(shard, row{[]obs.Label{{Key: "shard", Value: first}, {Key: "shape", Value: second}}, cells[k]})
		} else {
			query = append(query, row{[]obs.Label{{Key: "shape", Value: first}, {Key: "alg", Value: second}}, cells[k]})
		}
	}

	if len(query) > 0 {
		pw.Header("usimrank_queries_total", "counter", "Completed queries by shape and algorithm.")
		for _, r := range query {
			pw.Uint("usimrank_queries_total", r.labels, r.c.count.Load())
		}
		pw.Header("usimrank_query_errors_total", "counter", "Queries that returned an error.")
		for _, r := range query {
			pw.Uint("usimrank_query_errors_total", r.labels, r.c.errors.Load())
		}
		pw.Header("usimrank_query_coalesce_hits_total", "counter", "Queries served as coalesced followers.")
		for _, r := range query {
			pw.Uint("usimrank_query_coalesce_hits_total", r.labels, r.c.coalesceHits.Load())
		}
		pw.Header("usimrank_query_latency_seconds", "histogram", "Query wall time (base-2 buckets from 50us).")
		for _, r := range query {
			writeHistogram(pw, "usimrank_query_latency_seconds", r.labels, &r.c.latency)
		}
	}
	if len(shard) > 0 {
		pw.Header("usimrank_shard_requests_total", "counter", "Downstream shard sub-requests by shard and shape.")
		for _, r := range shard {
			pw.Uint("usimrank_shard_requests_total", r.labels, r.c.count.Load())
		}
		pw.Header("usimrank_shard_request_errors_total", "counter", "Downstream shard sub-requests that failed.")
		for _, r := range shard {
			pw.Uint("usimrank_shard_request_errors_total", r.labels, r.c.errors.Load())
		}
		pw.Header("usimrank_shard_request_latency_seconds", "histogram", "Downstream shard sub-request wall time.")
		for _, r := range shard {
			writeHistogram(pw, "usimrank_shard_request_latency_seconds", r.labels, &r.c.latency)
		}
	}

	pw.Header("usimrank_in_flight", "gauge", "Requests currently admitted and executing.")
	pw.Int("usimrank_in_flight", nil, m.InFlight.Load())
	pw.Header("usimrank_admission_rejected_total", "counter", "Requests rejected by admission control (HTTP 429).")
	pw.Uint("usimrank_admission_rejected_total", nil, m.AdmissionRejected.Load())
	pw.Header("usimrank_deadline_exceeded_total", "counter", "Queries that exceeded their deadline.")
	pw.Uint("usimrank_deadline_exceeded_total", nil, m.DeadlineExceeded.Load())
	pw.Header("usimrank_client_gone_total", "counter", "Queries abandoned by a disconnected client (not server errors).")
	pw.Uint("usimrank_client_gone_total", nil, m.ClientGone.Load())
	pw.Header("usimrank_adaptive_queries_total", "counter", "Adaptive (eps-bearing) queries led.")
	pw.Uint("usimrank_adaptive_queries_total", nil, m.AdaptiveQueries.Load())
	pw.Header("usimrank_partial_results_total", "counter", "Adaptive queries answered best-effort under deadline pressure.")
	pw.Uint("usimrank_partial_results_total", nil, m.PartialResults.Load())
	pw.Header("usimrank_adaptive_rounds_total", "counter", "Sampling rounds committed by adaptive queries.")
	pw.Uint("usimrank_adaptive_rounds_total", nil, m.AdaptiveRounds.Load())
	pw.Header("usimrank_adaptive_early_stops_total", "counter", "Adaptive queries whose stopping rule fired (radius <= eps while sampling).")
	pw.Uint("usimrank_adaptive_early_stops_total", nil, m.AdaptiveEarlyStops.Load())
	pw.Header("usimrank_coalesce_hits_total", "counter", "Requests that joined an in-flight identical computation.")
	pw.Uint("usimrank_coalesce_hits_total", nil, m.coalesceHits.Load())
	pw.Header("usimrank_coalesce_misses_total", "counter", "Requests that led their computation.")
	pw.Uint("usimrank_coalesce_misses_total", nil, m.coalesceMisses.Load())
}

// Package server is the serving plane of the uncertain-SimRank engine:
// a long-running HTTP JSON API over one resident [usimrank.Engine], so
// the engine's warm state — the LRU row cache, the SR-SP filter pools,
// the per-source kernels — amortises across queries instead of being
// rebuilt per CLI invocation.
//
// The server does three pieces of real serving work above routing:
//
//   - Request coalescing. Concurrent identical queries (same shape,
//     algorithm, and operands, on the same graph generation) collapse
//     into one engine call through a singleflight layer; every caller
//     receives the one result, and per-shape coalescing hits are
//     counted. Because the engine is deterministic, sharing a result is
//     indistinguishable from recomputing it.
//
//   - Admission control. A bounded in-flight semaphore (Config.
//     MaxInFlight) caps concurrent queries above the engine's own
//     Options.Parallelism bound; requests that cannot be admitted
//     within Config.AdmissionWait are rejected with HTTP 429 instead of
//     queuing unboundedly. Every admitted query runs under a deadline
//     (Config.QueryTimeout, lowerable per request via timeout_ms);
//     queries that exceed it return HTTP 504 and the deadline actually
//     cancels the in-flight sampling work through the engine's
//     context-aware kernels.
//
//   - Zero-downtime hot-swap. POST /v1/admin/reload builds a fresh
//     engine from a graph file while the old one keeps serving,
//     atomically swaps the engine pointer, then drains requests still
//     running on the old engine. Each request is pinned to exactly one
//     engine for its whole lifetime (reference-counted handles), so no
//     request ever observes a torn state between two graphs.
//
//   - Incremental updates. POST /v1/admin/update mutates individual
//     arcs (insert/delete/reweight) without a rebuild: a successor
//     engine is derived from the resident one — row-cache entries
//     outside the walk horizon of every touched arc and per-vertex
//     SR-SP filter state carried over warm — and swapped in under the
//     same handle scheme as a reload. Results after an update are
//     bit-identical to a from-scratch rebuild of the mutated graph;
//     only the cost differs (orders of magnitude, see the ApplyUpdates
//     benchmarks).
//
// # Endpoints
//
// All query endpoints accept POST with a JSON body and return JSON.
// Errors are {"error":{"code":string,"message":string}} with the
// matching HTTP status (400 bad request, 404 unknown route, 429
// admission rejected, 500 engine failure, 503 server shutting down,
// 504 deadline exceeded).
//
// POST /v1/score — one pairwise similarity.
//
//	request:  {"alg":"srsp","u":3,"v":17,"timeout_ms":2000}
//	response: {"alg":"srsp","u":3,"v":17,"score":0.0123,"coalesced":false}
//
// POST /v1/source — the single-source vector s(u,·), optionally
// restricted to a candidate set.
//
//	request:  {"alg":"twophase","u":3,"candidates":[1,2,5]}
//	response: {"alg":"twophase","u":3,"candidates":[1,2,5],"scores":[0.1,0.02,0]}
//
// POST /v1/topk — the k vertices most similar to u, or (when "u" is
// omitted) the k most similar vertex pairs.
//
//	request:  {"alg":"baseline","u":3,"k":10}
//	response: {"alg":"baseline","u":3,"k":10,
//	           "results":[{"u":3,"v":9,"score":0.2}, ...]}
//
// POST /v1/batch — many pairs in one call, grouped by source inside
// the engine so shared u-side work is paid once.
//
//	request:  {"alg":"srsp","pairs":[[0,1],[0,2],[7,9]]}
//	response: {"alg":"srsp","results":[
//	           {"u":0,"v":1,"score":0.5},
//	           {"u":0,"v":2,"score":0.01},
//	           {"u":7,"v":9,"score":0,"error":"..."}]}
//
// GET /v1/stats — the metrics snapshot: per-shape+algorithm query
// counts, error counts, latency percentiles (p50/p90/p99/max),
// coalescing hit rates, admission rejections, deadline expiries, the
// in-flight gauge, engine row-cache occupancy/evictions, and the
// current graph generation. The same snapshot is logged periodically
// when Config.LogEvery > 0.
//
// POST /v1/admin/reload — the hot-swap.
//
//	request:  {"graph":"/path/to/graph.ug","warm":true}
//	response: {"generation":2,"vertices":16384,"arcs":65536,
//	           "build_ms":412,"drained":true}
//
// "warm":true additionally builds the new engine's SR-SP filter pools
// before the swap, so the first SR-SP query after the swap does not pay
// the offline phase. "drained" reports whether every request pinned to
// the old engine finished within Config.DrainTimeout (the swap itself
// has already happened either way).
//
// POST /v1/admin/update — incremental arc mutations.
//
//	request:  {"updates":[{"op":"insert","u":1,"v":2,"p":0.5},
//	                      {"op":"reweight","u":0,"v":3,"p":0.9},
//	                      {"op":"delete","u":4,"v":1}]}
//	response: {"generation":3,"applied":3,"vertices":16384,"arcs":65537,
//	           "rows_evicted":12,"rows_retained":4084,
//	           "filters_patched":true,"apply_ms":4,"drained":true}
//
// Batches are transactional: the first invalid mutation (inserting an
// existing arc, deleting a missing one, a probability outside (0,1])
// rejects the whole batch with 400 and the resident engine is
// untouched. Batch size is bounded by Config.MaxUpdateBatch.
//
// GET /v1/subscribe — the continuous-query plane: a long-lived
// Server-Sent Events stream for one standing query shape
// (shape=score|source|topk plus the shape's operands). The client
// receives an initial "snapshot" event, then an "update" event
// whenever an admin mutation's invalidation BFS proves the answer can
// have changed; every event's id is the graph generation its payload
// was computed at, and every payload is byte-identical to the cold
// POST response of the same shape at that generation. See subscribe.go
// and the internal/sub package for the wake-up machinery.
//
// GET /healthz — liveness: 200 "ok" once the server can serve.
package server

package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"usimrank"
	"usimrank/internal/obs"
	"usimrank/internal/sub"
)

// Config configures a Server. The zero value selects sane serving
// defaults; Engine follows the engine's own defaulting rules.
type Config struct {
	// Engine configures the resident engine (and every engine built by
	// a hot-swap: reloads reuse the boot options).
	Engine usimrank.Options
	// Index optionally serves alg:"indexed" source queries from a
	// precomputed reverse-walk index. New rejects an index whose
	// generation, vertex count, sample count, seed, or depth disagrees
	// with the boot engine — a mismatched index must fail loudly at boot,
	// never answer quietly from the wrong graph. Incremental updates
	// patch it in place (only BFS-touched vertices recomputed); reloads
	// drop it unless the reload names a replacement.
	Index *usimrank.Index
	// MaxInFlight bounds concurrently admitted queries across all
	// shapes. Default: 4× the engine's effective Parallelism, at least
	// 32.
	MaxInFlight int
	// QueryTimeout is the per-request deadline; requests may lower (but
	// not raise) it via timeout_ms. Default 30s.
	QueryTimeout time.Duration
	// AdmissionWait is how long a request may wait for an in-flight
	// slot before being rejected with 429. Default 100ms; negative
	// disables waiting (immediate rejection when saturated).
	AdmissionWait time.Duration
	// AdmissionReserve carves this many of MaxInFlight's slots into a
	// reserve that only adaptive (eps-bearing) queries may fall back to
	// when the general pool is saturated. Adaptive queries stop
	// sampling as soon as their accuracy target is met, so the reserve
	// keeps the cheap, degradable tier responsive under a flood of
	// full-budget queries. 0 (the default) disables the reserve; values
	// ≥ MaxInFlight are clamped to leave at least one general slot.
	AdmissionReserve int
	// DrainTimeout bounds how long a reload waits for requests pinned
	// to the replaced engine before reporting drained=false, and how
	// long DrainSubscriptions waits for live subscription streams to
	// send their terminal event and close. Default 15s.
	DrainTimeout time.Duration
	// SubMaxStaleness caps the staleness SLA a /v1/subscribe client may
	// request via staleness_ms (how long the server may sit on a wake-up
	// coalescing further generations before it must push). Default 30s.
	SubMaxStaleness time.Duration
	// SubHeartbeat is the keep-alive comment period on idle subscription
	// streams. Default 15s.
	SubHeartbeat time.Duration
	// MaxUpdateBatch bounds the number of arc mutations one
	// /v1/admin/update request may carry. Default 4096; negative
	// disables the endpoint (every request is rejected with 400).
	MaxUpdateBatch int
	// LogEvery, when positive, logs a one-line metrics summary at that
	// period.
	LogEvery time.Duration
	// Logger receives the periodic summaries and reload events.
	// Default: stderr with an "usimd " prefix.
	Logger *log.Logger
	// SlowQuery, when positive, arms tracing on every request and logs
	// a structured slow-query line (carrying the trace id and span
	// timings) for queries at or above the threshold. 0 disables.
	SlowQuery time.Duration
	// LogJSON emits slow-query lines as single-line JSON objects
	// instead of key=value text.
	LogJSON bool
}

func (c Config) withDefaults(parallelism int) Config {
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 4 * parallelism
		if c.MaxInFlight < 32 {
			c.MaxInFlight = 32
		}
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.AdmissionWait == 0 {
		c.AdmissionWait = 100 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.MaxUpdateBatch == 0 {
		c.MaxUpdateBatch = 4096
	}
	if c.SubMaxStaleness <= 0 {
		c.SubMaxStaleness = 30 * time.Second
	}
	if c.SubHeartbeat <= 0 {
		c.SubHeartbeat = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "usimd ", log.LstdFlags)
	}
	return c
}

// Server serves the five query shapes of one resident engine over
// HTTP, with request coalescing, admission control, and zero-downtime
// graph hot-swap. Create with New, mount via Handler (or use it as an
// http.Handler directly), stop with Close.
type Server struct {
	cfg Config

	cur         atomic.Pointer[engineHandle]
	reloads     atomic.Uint64
	updates     atomic.Uint64
	arcsUpdated atomic.Uint64

	// Index-path counters (see IndexStats). Cumulative across hot-swaps:
	// the index travels with the engine handle, the counters with the
	// server.
	indexQueries       atomic.Uint64
	indexRowsProbed    atomic.Uint64
	indexResidualWalks atomic.Uint64
	indexRowsPatched   atomic.Uint64
	// adminMu serialises every admin mutation — reloads AND incremental
	// updates. Both paths load the current handle, derive or build a
	// successor, and publish it; two of them interleaving would both
	// derive from the same predecessor and one swap would be silently
	// lost (duplicate generations, one batch's arcs vanishing). Queries
	// never take it. TestAdminMutationsSerialized pins the invariant.
	adminMu sync.Mutex

	adm     *Admission
	flights *FlightGroup
	metrics *MetricsRegistry
	// subs tracks live /v1/subscribe streams; admin mutations wake the
	// affected ones (see subscribe.go).
	subs *sub.Registry

	// baseCtx parents every flight's execution context, so Close
	// cancels in-flight engine work.
	baseCtx context.Context
	cancel  context.CancelFunc

	start time.Time
	mux   *http.ServeMux
}

// New builds a server around an engine constructed from g with
// cfg.Engine options. source is a human-readable descriptor of where g
// came from (a file path for usimd), echoed in /v1/stats.
func New(g *usimrank.Graph, source string, cfg Config) (*Server, error) {
	eng, err := usimrank.New(g, cfg.Engine)
	if err != nil {
		return nil, err
	}
	if cfg.Index != nil {
		if err := eng.CheckIndex(cfg.Index); err != nil {
			return nil, fmt.Errorf("index rejected: %w", err)
		}
	}
	cfg = cfg.withDefaults(eng.Options().Parallelism)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		adm:     NewTieredAdmission(cfg.MaxInFlight, cfg.AdmissionReserve, cfg.AdmissionWait),
		flights: NewFlightGroup(),
		metrics: NewMetricsRegistry(),
		subs:    sub.NewRegistry(),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
	}
	s.cur.Store(newEngineHandle(eng, g, source, 1, cfg.Index))
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("POST /v1/source", s.handleSource)
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/admin/update", s.handleUpdate)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, CodeNotFound, "unknown route "+r.URL.Path)
	})
	if cfg.LogEvery > 0 {
		go s.logLoop()
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the periodic logger and cancels the flight contexts of
// in-flight engine work. It does not wait for requests to finish —
// pair it with http.Server.Shutdown, which does.
func (s *Server) Close() { s.cancel() }

// engine pins the current engine handle. The loop only retries when a
// hot-swap retired the handle between the load and the pin.
func (s *Server) engine() *engineHandle {
	for {
		h := s.cur.Load()
		if h.tryAcquire() {
			return h
		}
	}
}

// effectiveTimeout applies a request's timeout_ms within the server
// bound.
func (s *Server) effectiveTimeout(ms int) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 || d > s.cfg.QueryTimeout {
		return s.cfg.QueryTimeout
	}
	return d
}

// traceFor arms tracing for a request when any consumer exists: an
// incoming Usimrank-Trace header (an upstream wants connected spans),
// the debug flag (the client wants the profile inline), or a
// configured slow-query threshold (the log may want the trace).
// Otherwise it returns (nil, zero Span) and the request records
// nothing — the allocation-free disabled path.
func (s *Server) traceFor(r *http.Request, shape string, debug bool) (*obs.Trace, obs.Span) {
	hdr := r.Header.Get(obs.TraceHeader)
	if hdr == "" && !debug && s.cfg.SlowQuery <= 0 {
		return nil, obs.Span{}
	}
	id, parent, _ := obs.ParseTraceHeader(hdr)
	tr := obs.NewTrace(id, parent)
	return tr, tr.Start(shape)
}

// execute runs one admitted, coalesced, deadline-bounded query and
// writes the error response when it fails. The happy path returns
// (value, coalesced, true) and leaves the response to the caller.
//
// h must be pinned by the caller (and stays the caller's to release):
// execute re-pins it for the flight's own lifetime, so a hot-swap
// drain cannot complete while the flight still computes on the engine.
//
// tr/root come from traceFor; both may be disabled. When this request
// leads its flight, the engine_compute span rides the flight context
// into the kernel, so a debug profile always shows where the leader's
// time went; followers instead show a coalesce span with leader=0.
//
// cheap marks a degradable (adaptive eps-bearing) query eligible for
// the admission reserve tier. A request that joins an existing flight
// releases its admission slot immediately (see FlightGroup.Do's
// onFollow): a follower does no engine work, and a burst of identical
// queries must not hold the whole admission budget while idling on one
// leader's result.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, shape, alg string, timeoutMs int, cheap bool, key string, h *engineHandle, tr *obs.Trace, root obs.Span, fn func(ctx context.Context) (any, error)) (any, bool, bool) {
	// Stamp the generation this query is pinned to. The cluster
	// coordinator reads it to reject answers from a node that missed
	// admin mutations (a replica that was down through an update and
	// came back serving the old graph).
	w.Header().Set(GenerationHeader, strconv.FormatUint(h.gen, 10))
	if tr != nil {
		// Echo the trace id so callers can join logs without a debug
		// body; the header never varies the body bytes.
		w.Header().Set(obs.TraceHeader, tr.ID())
	}
	timeout := s.effectiveTimeout(timeoutMs)
	// The flight runs under the leader's deadline, so only requests
	// with the same effective budget may share one: without the suffix
	// a follower with 30s left would inherit a stranger's 1ms flight
	// and 504 spuriously.
	key = fmt.Sprintf("%s|t%d", key, timeout.Milliseconds())
	waitCtx, cancelWait := context.WithTimeout(r.Context(), timeout)
	defer cancelWait()

	asp := root.Start("admission_wait")
	release := s.adm.AcquireTier(waitCtx, cheap)
	if release == nil {
		asp.Error(errors.New("admission rejected"))
		asp.End()
		s.metrics.AdmissionRejected.Add(1)
		w.Header().Set("Retry-After", RetryAfterSeconds(s.adm.Wait()))
		WriteError(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("server saturated: %d queries in flight", s.cfg.MaxInFlight))
		return nil, false, false
	}
	asp.End()
	s.metrics.InFlight.Add(1)
	// The slot is given back exactly once, by whichever comes first:
	// becoming a follower (below) or this frame unwinding.
	var relOnce sync.Once
	releaseSlot := func() {
		relOnce.Do(func() {
			s.metrics.InFlight.Add(-1)
			release()
		})
	}
	defer releaseSlot()

	start := time.Now()
	csp := root.Start("coalesce")
	val, coalesced, err := s.flights.Do(waitCtx, key, releaseSlot, func() func() (any, error) {
		// Leader path, still in this request's frame: transfer a pin
		// and a server-owned deadline into the flight so it survives
		// this request abandoning the wait.
		h.tryAcquire()
		fctx, cancelFlight := context.WithTimeout(s.baseCtx, timeout)
		eng := root.Start("engine_compute")
		fctx = obs.ContextWithSpan(fctx, eng)
		return func() (any, error) {
			defer eng.End()
			defer h.release()
			defer cancelFlight()
			return fn(fctx)
		}
	})
	if csp.Enabled() {
		var lead int64
		if !coalesced {
			lead = 1
		}
		csp.Add("leader", lead)
	}
	csp.End()
	elapsed := time.Since(start)
	// A cancellation caused by the client's own disconnect is not a
	// server error: count it separately, keep the per-shape error
	// counts clean, and skip the response write (nobody is reading).
	// Cancellation with a live request context is the server shutting
	// down — that one still reports 503 through writeQueryError.
	if err != nil && errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		s.metrics.ClientGone.Add(1)
		s.metrics.RecordQuery(shape, alg, elapsed, coalesced, nil)
		root.Error(err)
		s.logSlowQuery(shape, alg, tr, elapsed, coalesced, err)
		return nil, coalesced, false
	}
	s.metrics.RecordQuery(shape, alg, elapsed, coalesced, err)
	root.Error(err)
	s.logSlowQuery(shape, alg, tr, elapsed, coalesced, err)
	if err != nil {
		s.writeQueryError(w, err)
		return nil, coalesced, false
	}
	return val, coalesced, true
}

// RetryAfterSeconds derives the 429 Retry-After hint from the
// admission grace: the request already waited one full grace period
// without a slot freeing, so a client should back off at least that
// long (floored at the header's 1-second resolution) before retrying.
func RetryAfterSeconds(wait time.Duration) string {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// slowQueryLog is the JSON shape of one -log-json slow-query line.
type slowQueryLog struct {
	Msg        string            `json:"msg"`
	TraceID    string            `json:"trace_id"`
	Shape      string            `json:"shape"`
	Alg        string            `json:"alg"`
	DurationMs float64           `json:"duration_ms"`
	Coalesced  bool              `json:"coalesced"`
	Error      string            `json:"error,omitempty"`
	Spans      []obs.ProfileSpan `json:"spans"`
}

// logSlowQuery emits the structured slow-query line when the query met
// the configured threshold. The trace is always armed when SlowQuery
// is set (see traceFor), so the line can carry span timings.
func (s *Server) logSlowQuery(shape, alg string, tr *obs.Trace, d time.Duration, coalesced bool, err error) {
	LogSlowQuery(s.cfg.Logger, s.cfg.LogJSON, s.cfg.SlowQuery, shape, alg, tr, d, coalesced, err)
}

// LogSlowQuery writes one structured slow-query line — key=value text,
// or single-line JSON when logJSON — when d meets the threshold and a
// trace was recorded. Shared by the single node and the cluster
// coordinator so both planes log the same shape.
func LogSlowQuery(logger *log.Logger, logJSON bool, threshold time.Duration, shape, alg string, tr *obs.Trace, d time.Duration, coalesced bool, err error) {
	if threshold <= 0 || d < threshold || tr == nil {
		return
	}
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	p := tr.Profile()
	durMs := float64(d.Microseconds()) / 1000
	if logJSON {
		line, merr := json.Marshal(slowQueryLog{
			Msg: "slow_query", TraceID: p.TraceID, Shape: shape, Alg: alg,
			DurationMs: durMs, Coalesced: coalesced, Error: errMsg, Spans: p.Spans,
		})
		if merr == nil {
			logger.Printf("%s", line)
		}
		return
	}
	logger.Printf("slow_query trace=%s shape=%s alg=%s dur_ms=%.3f coalesced=%v err=%q spans: %s",
		p.TraceID, shape, alg, durMs, coalesced, errMsg, p.SpanLine())
}

// writeQueryError maps an engine/context error to the JSON error
// envelope.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.DeadlineExceeded.Add(1)
		WriteError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
			"query exceeded its deadline; raise timeout_ms or the server's -timeout")
	case errors.Is(err, context.Canceled):
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"query cancelled (client disconnected or server shutting down)")
	default:
		WriteError(w, http.StatusInternalServerError, CodeEngineError, err.Error())
	}
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	alg, err := usimrank.ParseAlgorithm(req.Alg)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if !checkAdaptive(w, req.Eps, req.Delta) {
		return
	}
	h := s.engine()
	defer h.release()
	if !s.checkVertices(w, h, req.U, req.V) {
		return
	}
	key := fmt.Sprintf("score|g%d|%s|%d|%d", h.gen, alg, req.U, req.V)
	key = adaptiveKey(key, req.Eps, req.Delta)
	key = debugKey(key, req.Debug)
	adaptive := req.Eps > 0
	ao := usimrank.AdaptiveOptions{Eps: req.Eps, Delta: req.Delta}
	tr, root := s.traceFor(r, "score", req.Debug)
	val, coalesced, ok := s.execute(w, r, "score", alg.String(), req.TimeoutMs, adaptive, key, h, tr, root, func(ctx context.Context) (any, error) {
		if adaptive {
			return h.eng.AdaptiveComputeCtx(ctx, alg, req.U, req.V, ao)
		}
		return h.eng.ComputeCtx(ctx, alg, req.U, req.V)
	})
	if !ok {
		return
	}
	resp := ScoreResponse{
		Alg: alg.String(), U: req.U, V: req.V, Coalesced: coalesced,
	}
	if adaptive {
		res := val.(usimrank.AdaptiveResult)
		resp.Score = res.Score
		resp.Adaptive = s.noteAdaptive(res, req.Eps, req.Delta, coalesced)
		resp.Partial = res.Partial
	} else {
		resp.Score = val.(float64)
	}
	if req.Debug {
		root.End()
		resp.Profile = tr.Profile()
	}
	WriteJSON(w, http.StatusOK, resp)
}

// debugKey forks a flight key for debug requests: a debug request must
// lead its own flight (so its profile contains the engine spans) and a
// non-debug follower must never be handed a response computed under a
// debug leader. Two concurrent identical debug requests still coalesce
// with each other; the follower's profile then shows a coalesce span
// with leader=0 — accurate attribution, it really did no engine work.
func debugKey(key string, debug bool) string {
	if debug {
		return key + "|dbg"
	}
	return key
}

// checkAdaptive validates a request's eps/delta accuracy target,
// writing a 400 on the first violation. eps == 0 (with delta == 0)
// selects the classic fixed-budget path.
func checkAdaptive(w http.ResponseWriter, eps, delta float64) bool {
	if eps < 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("eps = %g < 0", eps))
		return false
	}
	if delta != 0 {
		if eps == 0 {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				`"delta" is only valid together with "eps"`)
			return false
		}
		if delta < 0 || delta >= 1 {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("delta = %g outside (0, 1)", delta))
			return false
		}
	}
	return true
}

// adaptiveKey appends the accuracy target to a flight key: an
// eps-bearing query must never share a flight with a full-budget one
// (different engine call, different response shape), nor with one
// targeting a different (ε, δ). Exact bit patterns keep distinct float
// spellings distinct.
func adaptiveKey(key string, eps, delta float64) string {
	if eps <= 0 {
		return key
	}
	return fmt.Sprintf("%s|e%x|d%x", key, math.Float64bits(eps), math.Float64bits(delta))
}

// noteAdaptive converts an engine AdaptiveResult into the response's
// adaptive block and, for flight leaders, records the adaptive serving
// counters (followers shared the leader's sampling, so they add to
// none of them).
func (s *Server) noteAdaptive(res usimrank.AdaptiveResult, eps, delta float64, coalesced bool) *AdaptiveInfo {
	if !coalesced {
		s.metrics.AdaptiveQueries.Add(1)
		s.metrics.AdaptiveRounds.Add(uint64(res.Rounds))
		if res.Partial {
			s.metrics.PartialResults.Add(1)
		}
		if res.Converged && res.Walks > 0 {
			s.metrics.AdaptiveEarlyStops.Add(1)
		}
	}
	if delta == 0 {
		delta = usimrank.AdaptiveDefaultDelta
	}
	return &AdaptiveInfo{
		Eps: eps, Delta: delta,
		Radius: res.Radius, Walks: res.Walks, Rounds: res.Rounds,
		Converged: res.Converged,
	}
}

// AlgIndexed is the source-only algorithm name selecting the
// reverse-walk index path (outside the engine's Algorithm enum: it
// needs a resident index, so only /v1/source on an index-serving node
// accepts it).
const AlgIndexed = "indexed"

func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	var req SourceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	indexed := strings.EqualFold(req.Alg, AlgIndexed)
	var alg usimrank.Algorithm
	algName := AlgIndexed
	if !indexed {
		var err error
		if alg, err = usimrank.ParseAlgorithm(req.Alg); err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				err.Error()+` (or "indexed" on an index-serving node)`)
			return
		}
		algName = alg.String()
	}
	if !checkAdaptive(w, req.Eps, req.Delta) {
		return
	}
	h := s.engine()
	defer h.release()
	if indexed && h.idx == nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			"no reverse-walk index loaded for this generation; start usimd with -index, or reload with an index")
		return
	}
	if !s.checkVertices(w, h, append([]int{req.U}, req.Candidates...)...) {
		return
	}
	// nil candidates (full sweep) and an explicit empty list are
	// different queries; keep their flight keys distinct.
	candKey := "all"
	if req.Candidates != nil {
		candKey = DigestInts(req.Candidates)
	}
	key := fmt.Sprintf("source|g%d|%s|%d|%s", h.gen, algName, req.U, candKey)
	key = adaptiveKey(key, req.Eps, req.Delta)
	key = debugKey(key, req.Debug)
	adaptive := req.Eps > 0
	ao := usimrank.AdaptiveOptions{Eps: req.Eps, Delta: req.Delta}
	tr, root := s.traceFor(r, "source", req.Debug)
	val, coalesced, ok := s.execute(w, r, "source", algName, req.TimeoutMs, adaptive, key, h, tr, root, func(ctx context.Context) (any, error) {
		switch {
		case indexed && adaptive && req.Candidates == nil:
			return h.eng.AdaptiveSingleSourceIndexedCtx(ctx, h.idx, req.U, ao)
		case indexed && adaptive:
			return h.eng.AdaptiveSingleSourceIndexedAgainstCtx(ctx, h.idx, req.U, req.Candidates, ao)
		case indexed && req.Candidates == nil:
			return h.eng.SingleSourceIndexedCtx(ctx, h.idx, req.U)
		case indexed:
			return h.eng.SingleSourceIndexedAgainstCtx(ctx, h.idx, req.U, req.Candidates)
		case adaptive && req.Candidates == nil:
			return h.eng.AdaptiveSingleSourceCtx(ctx, alg, req.U, ao)
		case adaptive:
			return h.eng.AdaptiveSingleSourceAgainstCtx(ctx, alg, req.U, req.Candidates, ao)
		case req.Candidates == nil:
			return h.eng.SingleSourceCtx(ctx, alg, req.U)
		default:
			return h.eng.SingleSourceAgainstCtx(ctx, alg, req.U, req.Candidates)
		}
	})
	if !ok {
		return
	}
	if indexed {
		s.indexQueries.Add(1)
		if !coalesced {
			// One probe per (candidate, step) pair; the residual sample is
			// one N-walk stream regardless of candidate count. Followers
			// shared the leader's work, so they add to neither.
			cands := len(req.Candidates)
			if req.Candidates == nil {
				cands = h.graph.NumVertices()
			}
			s.indexRowsProbed.Add(uint64(cands) * uint64(h.eng.Options().Steps+1))
			s.indexResidualWalks.Add(uint64(h.idx.Samples()))
		}
	}
	resp := SourceResponse{
		Alg: algName, U: req.U, Candidates: req.Candidates, Coalesced: coalesced,
	}
	if adaptive {
		res := val.(usimrank.AdaptiveResult)
		resp.Scores = res.Scores
		resp.Adaptive = s.noteAdaptive(res, req.Eps, req.Delta, coalesced)
		resp.Partial = res.Partial
	} else {
		resp.Scores = val.([]float64)
	}
	if req.Debug {
		root.End()
		resp.Profile = tr.Profile()
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	alg, err := usimrank.ParseAlgorithm(req.Alg)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if req.K < 1 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("k = %d < 1", req.K))
		return
	}
	if req.U != nil && req.Sources != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, `"sources" is only valid for pairs queries (omit "u")`)
		return
	}
	if !checkAdaptive(w, req.Eps, req.Delta) {
		return
	}
	h := s.engine()
	defer h.release()
	var key string
	if req.U != nil {
		if !s.checkVertices(w, h, *req.U) {
			return
		}
		key = fmt.Sprintf("topk|g%d|%s|u%d|k%d", h.gen, alg, *req.U, req.K)
	} else if req.Sources != nil {
		if !s.checkVertices(w, h, req.Sources...) {
			return
		}
		seen := make(map[int]bool, len(req.Sources))
		for _, u := range req.Sources {
			if seen[u] {
				WriteError(w, http.StatusBadRequest, CodeBadRequest,
					fmt.Sprintf("duplicate source %d in sources", u))
				return
			}
			seen[u] = true
		}
		key = fmt.Sprintf("topk|g%d|%s|pairs|k%d|s%s", h.gen, alg, req.K, DigestInts(req.Sources))
	} else {
		key = fmt.Sprintf("topk|g%d|%s|pairs|k%d", h.gen, alg, req.K)
	}
	key = adaptiveKey(key, req.Eps, req.Delta)
	key = debugKey(key, req.Debug)
	adaptive := req.Eps > 0
	ao := usimrank.AdaptiveOptions{Eps: req.Eps, Delta: req.Delta}
	tr, root := s.traceFor(r, "topk", req.Debug)
	val, coalesced, ok := s.execute(w, r, "topk", alg.String(), req.TimeoutMs, adaptive, key, h, tr, root, func(ctx context.Context) (any, error) {
		switch {
		case adaptive && req.U != nil:
			ranked, res, err := usimrank.TopKSimilarAdaptiveCtx(ctx, h.eng, alg, *req.U, req.K, ao)
			return adaptiveTopK{ranked, res}, err
		case adaptive:
			ranked, res, err := usimrank.TopKPairsAdaptiveCtx(ctx, h.eng, alg, req.K, req.Sources, ao)
			return adaptiveTopK{ranked, res}, err
		case req.U != nil:
			return usimrank.TopKSimilarCtx(ctx, h.eng, alg, *req.U, req.K)
		case req.Sources != nil:
			return usimrank.TopKPairsAmongCtx(ctx, h.eng, alg, req.K, req.Sources)
		default:
			return usimrank.TopKPairsCtx(ctx, h.eng, alg, req.K)
		}
	})
	if !ok {
		return
	}
	resp := TopKResponse{
		Alg: alg.String(), U: req.U, K: req.K, Coalesced: coalesced,
	}
	var results []usimrank.TopKResult
	if adaptive {
		at := val.(adaptiveTopK)
		results = at.results
		resp.Adaptive = s.noteAdaptive(at.res, req.Eps, req.Delta, coalesced)
		resp.Partial = at.res.Partial
	} else {
		results = val.([]usimrank.TopKResult)
	}
	out := make([]PairScore, len(results))
	for i, res := range results {
		out[i] = PairScore{U: res.U, V: res.V, Score: res.Score}
	}
	resp.Results = out
	if req.Debug {
		root.End()
		resp.Profile = tr.Profile()
	}
	WriteJSON(w, http.StatusOK, resp)
}

// adaptiveTopK bundles a ranked list with its sweep's accuracy report
// through execute's any-typed flight value.
type adaptiveTopK struct {
	results []usimrank.TopKResult
	res     usimrank.AdaptiveResult
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	alg, err := usimrank.ParseAlgorithm(req.Alg)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if len(req.Pairs) == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "empty pairs")
		return
	}
	h := s.engine()
	defer h.release()
	// Out-of-range pairs surface as per-pair errors, not request
	// errors: a batch is a bulk operation and one bad pair should not
	// void the rest.
	flat := make([]int, 0, 2*len(req.Pairs))
	for _, p := range req.Pairs {
		flat = append(flat, p[0], p[1])
	}
	key := fmt.Sprintf("batch|g%d|%s|%s", h.gen, alg, DigestInts(flat))
	key = debugKey(key, req.Debug)
	tr, root := s.traceFor(r, "batch", req.Debug)
	val, coalesced, ok := s.execute(w, r, "batch", alg.String(), req.TimeoutMs, false, key, h, tr, root, func(ctx context.Context) (any, error) {
		return usimrank.BatchCtx(ctx, h.eng, alg, req.Pairs, 0)
	})
	if !ok {
		return
	}
	results := val.([]usimrank.PairResult)
	out := make([]BatchPairResult, len(results))
	for i, res := range results {
		out[i] = BatchPairResult{U: res.U, V: res.V, Score: res.Value}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
		}
	}
	resp := BatchResponse{Alg: alg.String(), Results: out, Coalesced: coalesced}
	if req.Debug {
		root.End()
		resp.Profile = tr.Profile()
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Stats())
}

// WarmFilters pre-builds the resident engine's SR-SP filter pools (the
// boot-time counterpart of reload's "warm":true).
func (s *Server) WarmFilters() {
	h := s.engine()
	defer h.release()
	h.eng.WarmFilters()
}

// Stats assembles the /v1/stats snapshot (also used by the periodic
// logger).
func (s *Server) Stats() StatsResponse {
	h := s.engine()
	defer h.release()
	rcLen, rcEvict := h.eng.RowCacheStats()
	opt := h.eng.Options()
	var idxStats *IndexStats
	if h.idx != nil {
		probed, residual := s.indexRowsProbed.Load(), s.indexResidualWalks.Load()
		ratio := 0.0
		if probed+residual > 0 {
			ratio = float64(probed) / float64(probed+residual)
		}
		idxStats = &IndexStats{
			Generation:    h.idx.Generation(),
			Vertices:      h.idx.NumVertices(),
			Depth:         h.idx.Depth(),
			Samples:       h.idx.Samples(),
			Queries:       s.indexQueries.Load(),
			RowsProbed:    probed,
			ResidualWalks: residual,
			ProbeRatio:    ratio,
			RowsPatched:   s.indexRowsPatched.Load(),
		}
	}
	return StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Graph: GraphStats{
			Source:      h.source,
			Vertices:    h.graph.NumVertices(),
			Arcs:        h.graph.NumArcs(),
			Generation:  h.gen,
			Reloads:     s.reloads.Load(),
			Updates:     s.updates.Load(),
			ArcsUpdated: s.arcsUpdated.Load(),
		},
		Engine: EngineStats{
			Parallelism:       opt.Parallelism,
			RowCacheLen:       rcLen,
			RowCacheCap:       opt.RowCacheSize,
			RowCacheEvictions: rcEvict,
		},
		Serving:       s.metrics.ServingStats(s.cfg.MaxInFlight),
		Coalescing:    s.metrics.CoalescingStats(),
		Queries:       s.metrics.QueryStats(),
		Index:         idxStats,
		Subscriptions: subscriptionStats(s.subs),
	}
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Graph == "" {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, `"graph" is required`)
		return
	}
	resp, err := s.Reload(req.Graph, req.Warm, req.Index)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

// Reload builds a fresh engine from the graph file at path (with the
// server's boot-time engine options), optionally pre-builds its SR-SP
// filter pools, atomically swaps it in, and waits (bounded) for
// requests pinned to the old engine to drain. Serving continues
// throughout: queries admitted before the swap finish on the old
// engine, queries admitted after it run on the new one, and no query
// ever spans both.
//
// A non-empty indexPath loads a reverse-walk index for the new graph,
// validated against the new engine before the swap (a bad index fails
// the whole reload, leaving the old generation serving). An empty one
// drops any resident index: a reload starts a fresh engine lineage at
// generation 1, which the old index's stamped generation can never
// match.
func (s *Server) Reload(path string, warm bool, indexPath string) (*ReloadResponse, error) {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()

	buildStart := time.Now()
	g, err := usimrank.LoadGraphFile(path)
	if err != nil {
		return nil, fmt.Errorf("load graph: %w", err)
	}
	eng, err := usimrank.New(g, s.cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("build engine: %w", err)
	}
	var idx *usimrank.Index
	if indexPath != "" {
		if idx, err = usimrank.LoadIndexFile(indexPath); err != nil {
			return nil, fmt.Errorf("load index: %w", err)
		}
		if err := eng.CheckIndex(idx); err != nil {
			return nil, fmt.Errorf("index rejected: %w", err)
		}
	}
	if warm {
		eng.WarmFilters()
	}
	buildMs := time.Since(buildStart).Milliseconds()

	old := s.cur.Load()
	next := newEngineHandle(eng, g, path, old.gen+1, idx)
	s.cur.Store(next)
	old.release() // drop the server's ownership reference
	// A reload replaces the whole graph, so every subscription's answer
	// may have changed: no invalidation set exists, wake them all.
	woken := s.subs.WakeAll(next.gen)
	drained := old.awaitDrain(s.cfg.DrainTimeout)
	s.reloads.Add(1)
	s.cfg.Logger.Printf("reload: generation %d -> %d (%s, %d vertices, %d arcs, build %dms, drained=%v, subs woken=%d)",
		old.gen, next.gen, path, g.NumVertices(), g.NumArcs(), buildMs, drained, woken)
	return &ReloadResponse{
		Generation: next.gen,
		Vertices:   g.NumVertices(),
		Arcs:       g.NumArcs(),
		BuildMs:    buildMs,
		Drained:    drained,
	}, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if s.cfg.MaxUpdateBatch < 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			"incremental updates are disabled on this server (-max-update-batch < 0); use /v1/admin/reload")
		return
	}
	if len(req.Updates) == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, `"updates" is required and must be non-empty`)
		return
	}
	if len(req.Updates) > s.cfg.MaxUpdateBatch {
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch of %d updates exceeds -max-update-batch %d (split it, or reload)",
				len(req.Updates), s.cfg.MaxUpdateBatch))
		return
	}
	ups := make([]usimrank.ArcUpdate, len(req.Updates))
	for i, u := range req.Updates {
		op, err := usimrank.ParseUpdateOp(u.Op)
		if err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("updates[%d]: %v", i, err))
			return
		}
		ups[i] = usimrank.ArcUpdate{Op: op, U: u.U, V: u.V, P: u.P}
	}
	resp, err := s.ApplyUpdates(ups)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

// ApplyUpdates applies a batch of arc mutations incrementally: a
// successor engine is derived from the resident one — mutated CSR
// compacted from the update overlay, row-cache entries outside the walk
// horizon of every touched arc carried over warm, built SR-SP filter
// pools patched per touched vertex — and swapped in exactly like a
// reload: new handle published first, old engine drained by its pinned
// requests. Queries admitted before the swap finish on the old
// generation, queries admitted after it run on the new one, and the
// coalescing keys' generation component keeps the two from ever
// sharing a flight.
//
// Contrast with Reload: a reload rebuilds everything from a file
// (cold caches, full filter build); an update touches only state the
// mutation can have changed, which is why a single-arc change is
// orders of magnitude cheaper.
func (s *Server) ApplyUpdates(ups []usimrank.ArcUpdate) (*UpdateResponse, error) {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()

	applyStart := time.Now()
	old := s.cur.Load()
	derived, stats, err := old.eng.ApplyUpdates(ups)
	if err != nil {
		return nil, err
	}
	// The resident index rides the swap: patch it onto the successor
	// generation before publishing, so there is never a window where the
	// current handle pairs a new engine with an index the generation
	// check would reject. A patch failure fails the whole update — the
	// old generation keeps serving, index included.
	var idx *usimrank.Index
	idxPatched := 0
	if old.idx != nil {
		if idx, idxPatched, err = usimrank.PatchIndex(old.idx, derived, old.graph, ups); err != nil {
			return nil, fmt.Errorf("patch index: %w", err)
		}
		s.indexRowsPatched.Add(uint64(idxPatched))
	}
	applyMs := time.Since(applyStart).Milliseconds()

	g := derived.Graph()
	next := newEngineHandle(derived, g, old.source, old.gen+1, idx)
	s.cur.Store(next)
	old.release() // drop the server's ownership reference
	// Wake exactly the subscriptions whose answer can have changed: the
	// engine's invalidation BFS says which sources reach a net-changed
	// arc head within the walk horizon (empty for a netted-out batch),
	// and the registry intersects that set with its vertex index in one
	// lookup per touched vertex. Woken after the swap is published, so a
	// woken stream always finds the new generation current.
	woken := s.subs.Wake(stats.TouchedSources, next.gen)
	drained := old.awaitDrain(s.cfg.DrainTimeout)
	s.updates.Add(1)
	s.arcsUpdated.Add(uint64(stats.Applied))
	s.cfg.Logger.Printf("update: generation %d -> %d (%d arcs changed, rows evicted %d / retained %d, filters patched %v, index rows patched %d, apply %dms, drained=%v, subs woken=%d/%d touched)",
		old.gen, next.gen, stats.Applied, stats.RowsEvicted, stats.RowsRetained, stats.FiltersPatched, idxPatched, applyMs, drained, woken, len(stats.TouchedSources))
	return &UpdateResponse{
		Generation:       next.gen,
		Applied:          stats.Applied,
		Vertices:         g.NumVertices(),
		Arcs:             g.NumArcs(),
		RowsEvicted:      stats.RowsEvicted,
		RowsRetained:     stats.RowsRetained,
		FiltersPatched:   stats.FiltersPatched,
		IndexRowsPatched: idxPatched,
		ApplyMs:          applyMs,
		Drained:          drained,
	}, nil
}

// DigestInts returns a fixed-size FNV-128a digest of an operand list,
// keeping coalescing keys O(1) in payload size (a 100k-pair batch must
// not build and compare megabyte key strings under the flight mutex).
func DigestInts(xs []int) string {
	h := fnv.New128a()
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(x)))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// checkVertices validates vertex ids against the pinned graph, writing
// a 400 on the first violation.
func (s *Server) checkVertices(w http.ResponseWriter, h *engineHandle, vs ...int) bool {
	n := h.graph.NumVertices()
	for _, v := range vs {
		if v < 0 || v >= n {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("vertex %d out of range [0,%d)", v, n))
			return false
		}
	}
	return true
}

// MaxBodyBytes bounds request bodies (8 MiB ≈ a ~350k-pair batch):
// admission control is pointless if an unbounded JSON body can balloon
// memory before the semaphore is ever consulted.
const MaxBodyBytes = 8 << 20

// decodeBody decodes a JSON request body, writing a 400 on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad JSON body: "+err.Error())
		return false
	}
	return true
}

// MarshalBody encodes v exactly as WriteJSON would write it —
// two-space-indented, trailing newline. Subscription pushes go through
// it so a pushed payload is byte-identical to the body of a cold query
// of the same shape at the same generation.
func MarshalBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteJSON writes v as the two-space-indented JSON the whole serving
// plane (single node and cluster coordinator) emits. Merged cluster
// responses must encode exactly like single-node ones, so every
// response body flows through this one encoder (and MarshalBody for
// subscription pushes).
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, err := MarshalBody(v)
	if err != nil {
		return
	}
	_, _ = w.Write(body)
}

// WriteError writes the uniform error envelope.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	WriteJSON(w, status, ErrorResponse{Error: ErrorDetail{Code: code, Message: msg}})
}

// logLoop periodically logs a one-line serving summary until Close.
func (s *Server) logLoop() {
	t := time.NewTicker(s.cfg.LogEvery)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			st := s.Stats()
			var queries, errs uint64
			for _, q := range st.Queries {
				queries += q.Count
				errs += q.Errors
			}
			s.cfg.Logger.Printf(
				"stats: gen=%d queries=%d errors=%d in_flight=%d coalesce_rate=%.2f rejected=%d deadline=%d row_cache=%d/%d evictions=%d",
				st.Graph.Generation, queries, errs, st.Serving.InFlight,
				st.Coalescing.HitRate, st.Serving.AdmissionRejected,
				st.Serving.DeadlineExceeded, st.Engine.RowCacheLen,
				st.Engine.RowCacheCap, st.Engine.RowCacheEvictions)
		}
	}
}

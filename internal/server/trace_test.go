package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"usimrank/internal/obs"
)

// profileNames flattens a profile's span names.
func profileNames(p *obs.Profile) map[string]obs.ProfileSpan {
	out := make(map[string]obs.ProfileSpan, len(p.Spans))
	for _, s := range p.Spans {
		out[s.Name] = s
	}
	return out
}

// TestDebugProfileSpans: debug=true returns the span tree inline —
// serving spans plus the kernel span with its walk counter — and the
// response echoes the trace id in the header.
func TestDebugProfileSpans(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(ScoreRequest{Alg: "sampling", U: 3, V: 17, Debug: true}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/score", &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var score ScoreResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &score); err != nil {
		t.Fatal(err)
	}
	if score.Profile == nil || score.Profile.TraceID == "" {
		t.Fatalf("debug response carries no profile: %s", rec.Body.String())
	}
	if got := rec.Result().Header.Get(obs.TraceHeader); got != score.Profile.TraceID {
		t.Fatalf("trace header %q != profile trace id %q", got, score.Profile.TraceID)
	}
	byName := profileNames(score.Profile)
	for _, name := range []string{"score", "admission_wait", "coalesce", "engine_compute", "kernel_pair"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("profile missing %q span: %s", name, rec.Body.String())
		}
	}
	if w := byName["kernel_pair"].Attrs["walks"]; w <= 0 {
		t.Errorf("kernel_pair walks attr = %d, want > 0", w)
	}
	if byName["coalesce"].Attrs["leader"] != 1 {
		t.Errorf("serial debug request should lead its flight: %+v", byName["coalesce"])
	}

	// The single-source shape records the single-source kernel span with
	// walk and candidate counts.
	var src SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "srsp", U: 5, Debug: true}, &src); code != 200 {
		t.Fatalf("/v1/source status %d", code)
	}
	if src.Profile == nil {
		t.Fatal("source debug response carries no profile")
	}
	sb := profileNames(src.Profile)
	ks, ok := sb["kernel_single_source"]
	if !ok {
		t.Fatalf("source profile missing kernel_single_source: %+v", src.Profile.Spans)
	}
	if ks.Attrs["candidates"] <= 0 {
		t.Errorf("kernel_single_source candidates attr = %d, want > 0", ks.Attrs["candidates"])
	}
}

// TestDebugProfileIndexSpans: the indexed source path records the
// index probe (rows_probed) and the residual sampling (residual_walks)
// as separate spans.
func TestDebugProfileIndexSpans(t *testing.T) {
	g := testGraph()
	idx := buildTestIndex(t, g, testOptions())
	s := newTestServer(t, Config{Engine: testOptions(), Index: idx})

	var src SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: 3, Debug: true}, &src); code != 200 {
		t.Fatalf("/v1/source status %d", code)
	}
	if src.Profile == nil {
		t.Fatal("indexed debug response carries no profile")
	}
	byName := profileNames(src.Profile)
	probe, ok := byName["index_probe"]
	if !ok {
		t.Fatalf("profile missing index_probe span: %+v", src.Profile.Spans)
	}
	if probe.Attrs["rows_probed"] <= 0 {
		t.Errorf("index_probe rows_probed = %d, want > 0", probe.Attrs["rows_probed"])
	}
	residual, ok := byName["index_residual"]
	if !ok {
		t.Fatalf("profile missing index_residual span: %+v", src.Profile.Spans)
	}
	if residual.Attrs["residual_walks"] <= 0 {
		t.Errorf("index_residual residual_walks = %d, want > 0", residual.Attrs["residual_walks"])
	}
}

// TestTracingByteIdentity: arming tracing via the header must not
// change a single response byte, and debug=false responses never carry
// a profile.
func TestTracingByteIdentity(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	queries := []struct{ path, body string }{
		{"/v1/score", `{"alg":"sampling","u":3,"v":17}`},
		{"/v1/score", `{"alg":"twophase","u":3,"v":17}`},
		{"/v1/source", `{"alg":"srsp","u":5}`},
		{"/v1/topk", `{"alg":"srsp","u":3,"k":5}`},
		{"/v1/batch", `{"alg":"srsp","pairs":[[1,2],[3,17]]}`},
	}
	for _, q := range queries {
		do := func(hdr string) (int, string, string) {
			req := httptest.NewRequest("POST", q.path, strings.NewReader(q.body))
			if hdr != "" {
				req.Header.Set(obs.TraceHeader, hdr)
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			return rec.Code, rec.Body.String(), rec.Result().Header.Get(obs.TraceHeader)
		}
		offCode, off, offEcho := do("")
		if offCode != 200 {
			t.Fatalf("%s: status %d: %s", q.path, offCode, off)
		}
		if offEcho != "" {
			t.Errorf("%s: untraced response carries a trace header", q.path)
		}
		if strings.Contains(off, `"profile"`) {
			t.Errorf("%s: untraced response carries a profile: %s", q.path, off)
		}
		onCode, on, onEcho := do("feedc0de00112233-ab")
		if onCode != 200 {
			t.Fatalf("%s traced: status %d: %s", q.path, onCode, on)
		}
		if onEcho != "feedc0de00112233" {
			t.Errorf("%s: trace id not echoed: %q", q.path, onEcho)
		}
		if off != on {
			t.Errorf("%s: tracing perturbed the response\noff: %s\non:  %s", q.path, off, on)
		}
	}
}

// TestSlowQueryLog pins both slow-query log formats: key=value text
// with the span line, and single-line JSON that parses back into the
// log shape with a trace id and spans.
func TestSlowQueryLog(t *testing.T) {
	var textBuf bytes.Buffer
	s := newTestServer(t, Config{
		Engine:    testOptions(),
		SlowQuery: time.Nanosecond,
		Logger:    log.New(&textBuf, "", 0),
	})
	var score ScoreResponse
	if code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: 3, V: 17}, &score); code != 200 {
		t.Fatalf("status %d", code)
	}
	text := textBuf.String()
	if !strings.Contains(text, "slow_query trace=") || !strings.Contains(text, "engine_compute=") {
		t.Fatalf("text slow-query line missing trace/spans: %q", text)
	}

	var jsonBuf bytes.Buffer
	sj := newTestServer(t, Config{
		Engine:    testOptions(),
		SlowQuery: time.Nanosecond,
		LogJSON:   true,
		Logger:    log.New(&jsonBuf, "", 0),
	})
	if code := call(t, sj, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: 3, V: 17}, &score); code != 200 {
		t.Fatalf("status %d", code)
	}
	line := strings.TrimSpace(jsonBuf.String())
	var entry struct {
		Msg     string            `json:"msg"`
		TraceID string            `json:"trace_id"`
		Shape   string            `json:"shape"`
		Spans   []obs.ProfileSpan `json:"spans"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow-query JSON line does not parse: %q: %v", line, err)
	}
	if entry.Msg != "slow_query" || entry.TraceID == "" || entry.Shape != "score" || len(entry.Spans) == 0 {
		t.Fatalf("bad slow-query JSON entry: %+v", entry)
	}
}

// expositionLine matches one Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?[0-9.e+-]+)$`)

// TestMetricsExposition scrapes /metrics after some traffic and checks
// the exposition is well-formed and the engine counters moved.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	var score ScoreResponse
	if code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "sampling", U: 3, V: 17}, &score); code != 200 {
		t.Fatalf("status %d", code)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Result().Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	samples := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		fields := strings.SplitN(line, " ", 2)
		samples[fields[0]] = fields[1]
	}
	for _, want := range []string{
		"usimrank_uptime_seconds",
		"usimrank_graph_generation",
		"usimrank_kernel_walks_total",
		`usimrank_queries_total{shape="score",alg="Sampling"}`,
		`usimrank_query_latency_seconds_bucket{shape="score",alg="Sampling",le="+Inf"}`,
		"go_goroutines",
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("exposition missing %s\n%s", want, body)
		}
	}
	if samples["usimrank_kernel_walks_total"] == "0" {
		t.Error("kernel walk counter did not move after a sampling query")
	}
}

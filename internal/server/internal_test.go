package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalesces: N concurrent callers with one key execute
// the function exactly once; exactly one caller is the leader
// (shared=false), the rest are coalescing hits.
func TestFlightGroupCoalesces(t *testing.T) {
	g := NewFlightGroup()
	release := make(chan struct{})
	var execs atomic.Int64
	var leaders, followers atomic.Int64
	const callers = 16
	var wg, ready sync.WaitGroup
	ready.Add(callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			val, shared, err := g.Do(context.Background(), "k", nil, func() func() (any, error) {
				return func() (any, error) {
					execs.Add(1)
					<-release // hold the flight open until all callers joined
					return 42, nil
				}
			})
			if err != nil || val.(int) != 42 {
				t.Errorf("do = (%v, %v)", val, err)
			}
			if shared {
				followers.Add(1)
			} else {
				leaders.Add(1)
			}
		}()
	}
	// Release the flight only once every caller is at (or inside) its
	// do call, so all of them land on the one open flight.
	ready.Wait()
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if execs.Load() != 1 {
		t.Fatalf("function executed %d times, want 1", execs.Load())
	}
	if leaders.Load() != 1 || followers.Load() != callers-1 {
		t.Fatalf("leaders=%d followers=%d, want 1/%d", leaders.Load(), followers.Load(), callers-1)
	}
}

// TestFlightGroupRecoversPanic: a panic inside the flight becomes the
// flight's error (shared by every caller) instead of killing the
// process, and the key is cleaned up so later calls run fresh.
func TestFlightGroupRecoversPanic(t *testing.T) {
	g := NewFlightGroup()
	_, _, err := g.Do(context.Background(), "k", nil, func() func() (any, error) {
		return func() (any, error) { panic("engine blew up") }
	})
	if err == nil || err.Error() != "query panicked: engine blew up" {
		t.Fatalf("panicking flight returned err %v", err)
	}
	val, _, err := g.Do(context.Background(), "k", nil, func() func() (any, error) {
		return func() (any, error) { return "recovered", nil }
	})
	if err != nil || val.(string) != "recovered" {
		t.Fatalf("flight after panic = (%v, %v)", val, err)
	}
}

// TestFlightGroupDistinctKeys: different keys never share an
// execution.
func TestFlightGroupDistinctKeys(t *testing.T) {
	g := NewFlightGroup()
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(context.Background(), string(rune('a'+i)), nil, func() func() (any, error) {
				return func() (any, error) { execs.Add(1); return i, nil }
			})
		}(i)
	}
	wg.Wait()
	if execs.Load() != 8 {
		t.Fatalf("executed %d times, want 8", execs.Load())
	}
}

// TestFlightGroupWaiterTimeout: a caller whose context expires abandons
// the wait with the context error, while the flight completes for
// patient callers.
func TestFlightGroupWaiterTimeout(t *testing.T) {
	g := NewFlightGroup()
	release := make(chan struct{})
	started := make(chan struct{})
	type result struct {
		val any
		err error
	}
	patient := make(chan result, 1)
	go func() {
		val, _, err := g.Do(context.Background(), "k", nil, func() func() (any, error) {
			close(started)
			return func() (any, error) { <-release; return "slow", nil }
		})
		patient <- result{val, err}
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, shared, err := g.Do(ctx, "k", nil, func() func() (any, error) {
		t.Error("impatient caller must join, not lead")
		return func() (any, error) { return nil, nil }
	})
	if !shared || err != context.DeadlineExceeded {
		t.Fatalf("impatient caller: shared=%v err=%v", shared, err)
	}
	close(release)
	res := <-patient
	if res.err != nil || res.val.(string) != "slow" {
		t.Fatalf("patient caller got (%v, %v)", res.val, res.err)
	}
}

// TestEngineHandleDrain: the drained channel closes exactly when the
// owner reference and every pin are gone, and a drained handle rejects
// new pins (the swap race).
func TestEngineHandleDrain(t *testing.T) {
	h := newEngineHandle(nil, nil, "test", 1, nil)
	if !h.tryAcquire() {
		t.Fatal("pin on live handle failed")
	}
	h.release() // server drops ownership (the hot-swap)
	select {
	case <-h.drained:
		t.Fatal("drained while a request is still pinned")
	default:
	}
	if h.awaitDrain(time.Millisecond) {
		t.Fatal("awaitDrain reported drained while pinned")
	}
	h.release() // last request finishes
	if !h.awaitDrain(time.Second) {
		t.Fatal("awaitDrain timed out after the last release")
	}
	if h.tryAcquire() {
		t.Fatal("pin on a drained handle succeeded")
	}
}

// TestHistogramQuantiles sanity-checks the base-2 latency digest.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 0; i < 90; i++ {
		h.observe(40 * time.Microsecond) // bucket 0 (≤ 50µs)
	}
	for i := 0; i < 10; i++ {
		h.observe(70 * time.Millisecond)
	}
	s := h.summary()
	if s.P50 != 0.05 {
		t.Fatalf("p50 = %v ms, want 0.05 (first bucket bound)", s.P50)
	}
	if s.P99 < 70 {
		t.Fatalf("p99 = %v ms, want >= 70", s.P99)
	}
	if s.Max != 70 {
		t.Fatalf("max = %v ms, want 70", s.Max)
	}
	if got := h.quantile(0.90); got != 0.05 {
		t.Fatalf("p90 = %v ms, want 0.05", got)
	}
}

// TestAdmissionSemaphore covers the slot accounting outside HTTP.
func TestAdmissionSemaphore(t *testing.T) {
	a := NewAdmission(2, -1)
	ctx := context.Background()
	if !a.Acquire(ctx) || !a.Acquire(ctx) {
		t.Fatal("free slots rejected")
	}
	if a.Acquire(ctx) {
		t.Fatal("third acquire succeeded on a 2-slot semaphore with no grace")
	}
	a.Release()
	if !a.Acquire(ctx) {
		t.Fatal("freed slot rejected")
	}
	// With a grace, a waiter succeeds once a slot frees.
	b := NewAdmission(1, time.Second)
	if !b.Acquire(ctx) {
		t.Fatal("first acquire failed")
	}
	done := make(chan bool, 1)
	go func() { done <- b.Acquire(ctx) }()
	time.Sleep(5 * time.Millisecond)
	b.Release()
	if !<-done {
		t.Fatal("waiter within grace did not get the freed slot")
	}
}

package server

// JSON request/response schemas of the v1 API. Field-for-field these
// are the wire format documented in the package comment; keep the two
// in sync.

import "usimrank/internal/obs"

// ScoreRequest asks for one pairwise similarity s(u, v).
type ScoreRequest struct {
	Alg string `json:"alg"`
	U   int    `json:"u"`
	V   int    `json:"v"`
	// Eps, when positive, makes this an adaptive-accuracy query: the
	// engine samples in geometric rounds and stops as soon as the
	// confidence radius falls to eps, instead of always spending the
	// boot-time walk budget. The response then carries an "adaptive"
	// block. Requests without eps are byte-identical to pre-adaptive
	// servers.
	Eps float64 `json:"eps,omitempty"`
	// Delta is the adaptive query's failure probability (the returned
	// interval covers the true possible-world score with probability
	// ≥ 1−delta). Only valid with eps; defaults to 0.05.
	Delta float64 `json:"delta,omitempty"`
	// TimeoutMs optionally lowers the server's per-request deadline for
	// this query. Values ≤ 0 or above the server default are ignored.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Debug arms tracing for this request and returns the recorded span
	// tree (with kernel resource counts) in the response's profile
	// field. Debug requests never coalesce with non-debug ones.
	Debug bool `json:"debug,omitempty"`
}

// AdaptiveInfo reports how an adaptive (ε, δ) query converged. Present
// only on responses to requests that set eps.
type AdaptiveInfo struct {
	// Eps and Delta echo the request's effective accuracy target.
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta"`
	// Radius is the achieved confidence radius: the returned score is
	// within ±radius of the exact possible-world expectation with
	// probability ≥ 1−delta. For a multi-score response it is the worst
	// (largest) per-candidate radius.
	Radius float64 `json:"radius"`
	// Walks is the number of walk pairs actually sampled; Rounds the
	// number of geometric sampling rounds committed.
	Walks  int64 `json:"walks"`
	Rounds int   `json:"rounds"`
	// Converged reports that the stopping rule fired (radius ≤ eps).
	// False with partial=true means the deadline cut sampling short;
	// false with partial=false means the walk cap was reached first.
	Converged bool `json:"converged"`
}

// ScoreResponse carries one pairwise similarity.
type ScoreResponse struct {
	Alg   string  `json:"alg"`
	U     int     `json:"u"`
	V     int     `json:"v"`
	Score float64 `json:"score"`
	// Coalesced reports that this response was shared from a concurrent
	// identical query rather than computed by a dedicated engine call.
	Coalesced bool `json:"coalesced,omitempty"`
	// Adaptive reports the accuracy actually achieved by an eps-bearing
	// request; Partial marks a best-effort answer the deadline cut short
	// (HTTP status is still 200 — the score and radius are valid, the
	// target eps was just not reached in time).
	Adaptive *AdaptiveInfo `json:"adaptive,omitempty"`
	Partial  bool          `json:"partial,omitempty"`
	// Profile is the per-query execution profile, present only when the
	// request set debug=true — regular responses stay byte-identical
	// whether or not tracing is armed.
	Profile *obs.Profile `json:"profile,omitempty"`
}

// SourceRequest asks for the single-source vector s(u, ·), optionally
// restricted to an explicit candidate set. Alg additionally accepts
// "indexed" (beyond the engine algorithms): answer from the
// resident reverse-walk index plus a residual sample of u's walks —
// 400 when the server holds no index for the current generation.
type SourceRequest struct {
	Alg        string `json:"alg"`
	U          int    `json:"u"`
	Candidates []int  `json:"candidates,omitempty"`
	// Eps/Delta select adaptive accuracy (see ScoreRequest); the worst
	// per-candidate radius is driven to eps.
	Eps       float64 `json:"eps,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	TimeoutMs int     `json:"timeout_ms,omitempty"`
	Debug     bool    `json:"debug,omitempty"`
}

// SourceResponse carries the scores; Scores[i] is s(U, Candidates[i]),
// or s(U, i) over all vertices when the request had no candidate set.
type SourceResponse struct {
	Alg        string        `json:"alg"`
	U          int           `json:"u"`
	Candidates []int         `json:"candidates,omitempty"`
	Scores     []float64     `json:"scores"`
	Coalesced  bool          `json:"coalesced,omitempty"`
	Adaptive   *AdaptiveInfo `json:"adaptive,omitempty"`
	Partial    bool          `json:"partial,omitempty"`
	Profile    *obs.Profile  `json:"profile,omitempty"`
}

// TopKRequest asks for the K vertices most similar to *U, or — when U
// is null/omitted — the K most similar vertex pairs.
type TopKRequest struct {
	Alg string `json:"alg"`
	U   *int   `json:"u,omitempty"`
	K   int    `json:"k"`
	// Sources, only valid without U, restricts the pairs sweep to pairs
	// whose source (the smaller endpoint) is in the list. The cluster
	// coordinator decomposes a full pairs query into one such request
	// per shard; merging the partial top-k lists under the canonical
	// order reproduces the unrestricted answer bit for bit.
	Sources []int `json:"sources,omitempty"`
	// Eps/Delta select adaptive accuracy (see ScoreRequest): every
	// score feeding the ranking is resolved to ±eps, so the returned
	// order is correct up to score ties closer than 2·eps.
	Eps       float64 `json:"eps,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	TimeoutMs int     `json:"timeout_ms,omitempty"`
	Debug     bool    `json:"debug,omitempty"`
}

// PairScore is one scored vertex pair.
type PairScore struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Score float64 `json:"score"`
}

// TopKResponse carries the ranked results, best first.
type TopKResponse struct {
	Alg       string        `json:"alg"`
	U         *int          `json:"u,omitempty"`
	K         int           `json:"k"`
	Results   []PairScore   `json:"results"`
	Coalesced bool          `json:"coalesced,omitempty"`
	Adaptive  *AdaptiveInfo `json:"adaptive,omitempty"`
	Partial   bool          `json:"partial,omitempty"`
	Profile   *obs.Profile  `json:"profile,omitempty"`
}

// BatchRequest asks for many pairwise similarities in one call.
type BatchRequest struct {
	Alg       string   `json:"alg"`
	Pairs     [][2]int `json:"pairs"`
	TimeoutMs int      `json:"timeout_ms,omitempty"`
	Debug     bool     `json:"debug,omitempty"`
}

// BatchPairResult is one outcome of a batch computation; Error is set
// (and Score zero) when that pair failed, e.g. a vertex out of range.
type BatchPairResult struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Score float64 `json:"score"`
	Error string  `json:"error,omitempty"`
}

// BatchResponse carries per-pair results in input order.
type BatchResponse struct {
	Alg       string            `json:"alg"`
	Results   []BatchPairResult `json:"results"`
	Coalesced bool              `json:"coalesced,omitempty"`
	Profile   *obs.Profile      `json:"profile,omitempty"`
}

// ReloadRequest asks the server to hot-swap to the graph stored at
// Graph (text or binary codec, auto-detected). Warm additionally
// builds the new engine's SR-SP filter pools before the swap. Index
// optionally names an index file built for the new graph; it must pass
// the new engine's generation/seed/sample checks or the whole reload
// fails. Without it the resident index (if any) is dropped — a reload
// starts a fresh engine lineage, so the old rows can never match.
type ReloadRequest struct {
	Graph string `json:"graph"`
	Warm  bool   `json:"warm,omitempty"`
	Index string `json:"index,omitempty"`
}

// ReloadResponse reports the completed swap.
type ReloadResponse struct {
	// Generation is the new engine's generation number (the boot engine
	// is generation 1; every successful reload increments it).
	Generation uint64 `json:"generation"`
	Vertices   int    `json:"vertices"`
	Arcs       int    `json:"arcs"`
	// BuildMs is the wall time spent loading the graph and building
	// (and optionally warming) the new engine, off the serving path.
	BuildMs int64 `json:"build_ms"`
	// Drained reports whether every request pinned to the old engine
	// finished within the server's drain timeout. The swap itself has
	// already happened either way; false only means stragglers were
	// still completing on the old engine when the response was written.
	Drained bool `json:"drained"`
}

// ArcUpdateRequest is one arc mutation of an update batch. Op is
// "insert", "delete" or "reweight" (short forms "ins"/"del"/"rw" also
// parse); P is required for insert and reweight and ignored for
// delete.
type ArcUpdateRequest struct {
	Op string  `json:"op"`
	U  int     `json:"u"`
	V  int     `json:"v"`
	P  float64 `json:"p,omitempty"`
}

// UpdateRequest asks the server to apply a batch of arc mutations
// incrementally: the engine for the mutated graph is derived from the
// resident one (warm rows and filter pools carried over, targeted
// invalidation only), then atomically swapped in under the same
// refcounted-handle scheme as a reload. In-flight queries finish on
// their pinned generation.
type UpdateRequest struct {
	Updates []ArcUpdateRequest `json:"updates"`
}

// UpdateResponse reports the completed incremental swap.
type UpdateResponse struct {
	// Generation is the serving plane's graph generation (the one
	// /v1/stats reports and coalescing keys carry): boot engine is 1,
	// +1 per successful reload or update. It can differ from the
	// engine-internal Engine.Generation lineage once reloads are mixed
	// in, since a reload starts a fresh engine lineage.
	Generation uint64 `json:"generation"`
	// Applied is the number of distinct arcs with a net change; staged
	// sequences that net out (insert then delete) are not counted.
	Applied  int `json:"applied"`
	Vertices int `json:"vertices"`
	Arcs     int `json:"arcs"`
	// RowsEvicted / RowsRetained partition the predecessor's warm row
	// cache; only sources within the walk horizon of a touched arc are
	// evicted.
	RowsEvicted  int `json:"rows_evicted"`
	RowsRetained int `json:"rows_retained"`
	// FiltersPatched reports whether warm SR-SP filter pools were
	// carried over (patched per touched vertex) rather than left to a
	// lazy from-scratch rebuild.
	FiltersPatched bool `json:"filters_patched"`
	// IndexRowsPatched is the number of vertices whose reverse-walk
	// index rows were recomputed for the new generation (0 when the
	// server serves no index). The patched index is bit-identical to a
	// fresh offline build on the mutated graph.
	IndexRowsPatched int `json:"index_rows_patched,omitempty"`
	// ApplyMs is the wall time of the incremental derivation, off the
	// serving path (compare ReloadResponse.BuildMs).
	ApplyMs int64 `json:"apply_ms"`
	// Drained reports whether every request pinned to the old engine
	// finished within the server's drain timeout.
	Drained bool `json:"drained"`
}

// GenerationHeader is the response header carrying the graph
// generation a query was pinned to. The cluster coordinator checks it
// against its own cluster generation and treats an older value as a
// node failure (failover-eligible), so an endpoint that missed admin
// mutations can never leak stale-graph answers into a relay.
const GenerationHeader = "Usimrank-Generation"

// ErrorResponse is the uniform error envelope.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable machine-readable code and a human
// message. Shard is set only by the cluster coordinator, naming the
// downstream shard ("shard2") whose failure produced this error.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Shard   string `json:"shard,omitempty"`
}

// Error codes used in ErrorDetail.Code.
const (
	CodeBadRequest       = "bad_request"       // 400
	CodeNotFound         = "not_found"         // 404
	CodeOverloaded       = "overloaded"        // 429
	CodeEngineError      = "engine_error"      // 500
	CodeUnavailable      = "unavailable"       // 503
	CodeDeadlineExceeded = "deadline_exceeded" // 504

	// Cluster-coordinator codes (see usimrank/internal/cluster).
	CodeShardUnavailable = "shard_unavailable" // 502: a shard and all its replicas failed
	CodeGenerationSkew   = "generation_skew"   // 502: shards disagree on the graph generation
)

// StatsResponse is the /v1/stats snapshot.
type StatsResponse struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Graph         GraphStats            `json:"graph"`
	Engine        EngineStats           `json:"engine"`
	Serving       ServingStats          `json:"serving"`
	Coalescing    CoalescingStats       `json:"coalescing"`
	Queries       map[string]QueryStats `json:"queries"`
	// Index is present only while the server holds a reverse-walk index
	// for the resident generation.
	Index *IndexStats `json:"index,omitempty"`
	// Subscriptions covers the /v1/subscribe continuous-query plane.
	Subscriptions *SubscriptionStats `json:"subscriptions,omitempty"`
}

// SubscriptionStats covers the push-subscription plane.
type SubscriptionStats struct {
	// Active is the number of open subscription streams.
	Active int64 `json:"active"`
	// Lookups counts inverted-index probes by update wake-ups — exactly
	// one per BFS-touched vertex per admin mutation, independent of how
	// many subscriptions are registered (the idle-cost invariant).
	Lookups uint64 `json:"lookups"`
	// Wakeups counts clean→dirty subscription transitions; Coalesced
	// counts wake-ups folded into an already-pending push (a burst of
	// update batches costs one recompute, not one per batch).
	Wakeups   uint64 `json:"wakeups"`
	Coalesced uint64 `json:"coalesced"`
	// Pushes counts delivered update events (snapshots excluded);
	// Dropped counts streams torn down by a failed push.
	Pushes  uint64 `json:"pushes"`
	Dropped uint64 `json:"dropped"`
}

// IndexStats covers the reverse-walk index serving path.
type IndexStats struct {
	// Generation, Vertices, Depth and Samples echo the resident index's
	// header; Generation always equals the engine generation (mismatched
	// indexes are rejected at boot, reload, and update time).
	Generation uint64 `json:"generation"`
	Vertices   int    `json:"vertices"`
	Depth      int    `json:"depth"`
	Samples    int    `json:"samples"`
	// Queries counts alg:"indexed" source queries answered (coalesced
	// followers included).
	Queries uint64 `json:"queries"`
	// RowsProbed counts index rows dotted against a residual sample;
	// ResidualWalks counts the source walks sampled at request time.
	// Their ratio is the probe-vs-sample balance of the indexed path:
	// per query, rows probed grow with the candidate set while the
	// residual stays one N-walk sample, so a healthy index workload has
	// RowsProbed ≫ ResidualWalks. Coalesced followers add to neither.
	RowsProbed    uint64 `json:"rows_probed"`
	ResidualWalks uint64 `json:"residual_walks"`
	// ProbeRatio is RowsProbed / (RowsProbed + ResidualWalks) — the
	// fraction of the indexed path's work units served from the index
	// rather than sampled at request time.
	ProbeRatio float64 `json:"probe_ratio"`
	// RowsPatched is the cumulative number of vertices whose index rows
	// were recomputed by /v1/admin/update batches.
	RowsPatched uint64 `json:"rows_patched"`
}

// GraphStats describes the currently resident graph.
type GraphStats struct {
	Source     string `json:"source"`
	Vertices   int    `json:"vertices"`
	Arcs       int    `json:"arcs"`
	Generation uint64 `json:"generation"`
	Reloads    uint64 `json:"reloads"`
	// Updates counts successful incremental update batches; ArcsUpdated
	// counts the arcs they changed in total.
	Updates     uint64 `json:"updates"`
	ArcsUpdated uint64 `json:"arcs_updated"`
}

// EngineStats surfaces the resident engine's knobs and cache health.
type EngineStats struct {
	Parallelism       int    `json:"parallelism"`
	RowCacheLen       int    `json:"row_cache_len"`
	RowCacheCap       int    `json:"row_cache_cap"`
	RowCacheEvictions uint64 `json:"row_cache_evictions"`
}

// ServingStats covers admission control and the adaptive serving path.
type ServingStats struct {
	InFlight          int64  `json:"in_flight"`
	MaxInFlight       int    `json:"max_in_flight"`
	AdmissionRejected uint64 `json:"admission_rejected"`
	DeadlineExceeded  uint64 `json:"deadline_exceeded"`
	// ClientGone counts requests abandoned by their client (connection
	// closed while the query was queued or coalesced). They are not
	// server errors and are excluded from the per-shape error counts.
	ClientGone uint64 `json:"client_gone"`
	// AdaptiveQueries counts eps-bearing queries led (coalesced
	// followers excluded); PartialResults counts those answered
	// best-effort under deadline pressure; AdaptiveRounds and
	// AdaptiveEarlyStops accumulate committed sampling rounds and
	// queries that converged before exhausting their walk budget.
	AdaptiveQueries    uint64 `json:"adaptive_queries"`
	PartialResults     uint64 `json:"partial_results"`
	AdaptiveRounds     uint64 `json:"adaptive_rounds"`
	AdaptiveEarlyStops uint64 `json:"adaptive_early_stops"`
}

// CoalescingStats covers the singleflight layer. PerShape maps a query
// shape ("score", "source", "topk", "batch") to its hit count.
type CoalescingStats struct {
	Hits     uint64            `json:"hits"`
	Misses   uint64            `json:"misses"`
	HitRate  float64           `json:"hit_rate"`
	PerShape map[string]uint64 `json:"per_shape"`
}

// QueryStats is one shape+algorithm cell of the query table, keyed
// "shape/alg" in StatsResponse.Queries.
type QueryStats struct {
	Count        uint64         `json:"count"`
	Errors       uint64         `json:"errors"`
	CoalesceHits uint64         `json:"coalesce_hits"`
	LatencyMs    LatencySummary `json:"latency_ms"`
}

// LatencySummary is the percentile digest of one latency histogram.
// Percentiles are upper bucket bounds of a base-2 histogram, so they
// overestimate by at most 2x; Max is exact.
type LatencySummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

package server

import (
	"path/filepath"
	"testing"

	"usimrank"
)

// buildTestIndex builds a reverse-walk index for g under opt, exactly
// as usim-index would.
func buildTestIndex(t *testing.T, g *usimrank.Graph, opt usimrank.Options) *usimrank.Index {
	t.Helper()
	e, err := usimrank.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	x, err := usimrank.BuildIndex(e)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestIndexedServing boots a server with a resident index and pins the
// alg:"indexed" source path to a direct engine call, then checks the
// stats plane reports the probe/residual accounting.
func TestIndexedServing(t *testing.T) {
	g := testGraph()
	idx := buildTestIndex(t, g, testOptions())
	s := newTestServer(t, Config{Engine: testOptions(), Index: idx})

	ref, err := usimrank.New(g, testOptions())
	if err != nil {
		t.Fatal(err)
	}

	var full SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: 3}, &full); code != 200 {
		t.Fatalf("indexed /v1/source status %d", code)
	}
	want, err := ref.SingleSourceIndexed(idx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Scores) != len(want) {
		t.Fatalf("indexed scores length %d, want %d", len(full.Scores), len(want))
	}
	for v := range want {
		if full.Scores[v] != want[v] {
			t.Fatalf("indexed s(3,%d) = %v, engine = %v", v, full.Scores[v], want[v])
		}
	}

	cands := []int{0, 1, 5, 9}
	var restricted SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "Indexed", U: 3, Candidates: cands}, &restricted); code != 200 {
		t.Fatalf("indexed candidate /v1/source status %d", code)
	}
	wantC, err := ref.SingleSourceIndexedAgainst(idx, 3, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantC {
		if restricted.Scores[i] != wantC[i] {
			t.Fatalf("indexed s(3,%d) = %v, engine = %v", cands[i], restricted.Scores[i], wantC[i])
		}
	}

	// The sampling path must keep serving unchanged next to the index.
	var sampled SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "sampling", U: 3}, &sampled); code != 200 {
		t.Fatalf("sampling /v1/source status %d", code)
	}

	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	is := stats.Index
	if is == nil {
		t.Fatal("stats has no index section with a resident index")
	}
	if is.Generation != idx.Generation() || is.Vertices != g.NumVertices() || is.Samples != testOptions().N {
		t.Fatalf("index stats header %+v", is)
	}
	if is.Queries != 2 {
		t.Fatalf("index queries %d, want 2", is.Queries)
	}
	steps := idx.Depth() + 1
	wantProbed := uint64((g.NumVertices() + len(cands)) * steps)
	if is.RowsProbed != wantProbed {
		t.Fatalf("rows probed %d, want %d", is.RowsProbed, wantProbed)
	}
	if is.ResidualWalks != uint64(2*testOptions().N) {
		t.Fatalf("residual walks %d, want %d", is.ResidualWalks, 2*testOptions().N)
	}
	if is.ProbeRatio <= 0 || is.ProbeRatio >= 1 {
		t.Fatalf("probe ratio %v outside (0,1)", is.ProbeRatio)
	}
}

// TestIndexedWithoutIndexIs400 asks for the indexed algorithm on a
// server serving without one: a structured 400, not a fallback to
// sampling the caller did not ask for.
func TestIndexedWithoutIndexIs400(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	var errResp ErrorResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: 3}, &errResp); code != 400 {
		t.Fatalf("indexed without index: status %d, want 400", code)
	}
	if errResp.Error.Code != CodeBadRequest {
		t.Fatalf("error code %q", errResp.Error.Code)
	}

	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Index != nil {
		t.Fatalf("stats reports an index section without an index: %+v", stats.Index)
	}
}

// TestBootRejectsMismatchedIndex builds the index under a different
// seed: server construction must fail rather than serve estimates the
// walk streams cannot back.
func TestBootRejectsMismatchedIndex(t *testing.T) {
	g := testGraph()
	opt := testOptions()
	opt.Seed++
	idx := buildTestIndex(t, g, opt)
	if _, err := New(g, "test://rmat6", Config{Engine: testOptions(), Index: idx}); err == nil {
		t.Fatal("New accepted an index built under a different seed")
	}
}

// TestUpdatePatchesResidentIndex applies an incremental update on a
// server holding an index and verifies the patched index keeps serving:
// the response reports patched rows, the stats generation follows the
// engine, and post-update indexed answers are bit-identical to a fresh
// build on the mutated graph.
func TestUpdatePatchesResidentIndex(t *testing.T) {
	g := testGraph()
	idx := buildTestIndex(t, g, testOptions())
	s := newTestServer(t, Config{Engine: testOptions(), Index: idx})
	u, v, _ := firstArc(t, g)

	ups := []ArcUpdateRequest{{Op: "reweight", U: u, V: v, P: 0.37}}
	var resp UpdateResponse
	if code := call(t, s, "POST", "/v1/admin/update", UpdateRequest{Updates: ups}, &resp); code != 200 {
		t.Fatalf("/v1/admin/update status %d", code)
	}
	if resp.Generation != 2 || resp.IndexRowsPatched < 1 {
		t.Fatalf("update response %+v: want generation 2 and patched rows", resp)
	}

	mut, err := g.Apply([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: u, V: v, P: 0.37}})
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := usimrank.New(mut, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	freshIdx, err := usimrank.BuildIndex(refEng)
	if err != nil {
		t.Fatal(err)
	}
	// The serving engine's generation is 2 (derived), the fresh
	// rebuild's is 1; scores do not depend on the generation stamp, so
	// compare through the kernel on the fresh pair.
	want, err := refEng.SingleSourceIndexed(freshIdx, u)
	if err != nil {
		t.Fatal(err)
	}
	var got SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: u}, &got); code != 200 {
		t.Fatalf("post-update indexed /v1/source status %d", code)
	}
	for i := range want {
		if got.Scores[i] != want[i] {
			t.Fatalf("post-update indexed s(%d,%d) = %v, fresh rebuild = %v", u, i, got.Scores[i], want[i])
		}
	}

	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Index == nil {
		t.Fatal("index section gone after update")
	}
	if stats.Index.Generation != 2 {
		t.Fatalf("index generation %d after update, want 2", stats.Index.Generation)
	}
	if stats.Index.RowsPatched != uint64(resp.IndexRowsPatched) {
		t.Fatalf("stats rows patched %d, response %d", stats.Index.RowsPatched, resp.IndexRowsPatched)
	}
}

// TestReloadIndexLifecycle exercises both reload paths: a reload
// without an index drops the resident one (the old index describes the
// old engine), and a reload naming an index file loads and serves it.
func TestReloadIndexLifecycle(t *testing.T) {
	g := testGraph()
	idx := buildTestIndex(t, g, testOptions())
	s := newTestServer(t, Config{Engine: testOptions(), Index: idx})
	path := writeGraphFile(t, g)

	var rel ReloadResponse
	if code := call(t, s, "POST", "/v1/admin/reload", ReloadRequest{Graph: path}, &rel); code != 200 {
		t.Fatalf("reload status %d", code)
	}
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: 3}, nil); code != 400 {
		t.Fatalf("indexed after index-less reload: status %d, want 400", code)
	}

	// A reload engine starts a fresh lineage at generation 1, so an
	// index built offline for the same graph and options slots in.
	idxPath := filepath.Join(t.TempDir(), "graph.usix")
	if err := idx.Write(idxPath); err != nil {
		t.Fatal(err)
	}
	if code := call(t, s, "POST", "/v1/admin/reload", ReloadRequest{Graph: path, Index: idxPath}, &rel); code != 200 {
		t.Fatalf("reload with index status %d", code)
	}
	var src SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: 3}, &src); code != 200 {
		t.Fatalf("indexed after reload with index: status %d", code)
	}

	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Index == nil || stats.Index.Generation != 1 {
		t.Fatalf("index stats after reload: %+v", stats.Index)
	}

	// A reload whose index does not match the new engine must fail
	// whole: the old generation keeps serving.
	badOpt := testOptions()
	badOpt.Seed++
	badIdx := buildTestIndex(t, g, badOpt)
	badPath := filepath.Join(t.TempDir(), "bad.usix")
	if err := badIdx.Write(badPath); err != nil {
		t.Fatal(err)
	}
	var errResp ErrorResponse
	if code := call(t, s, "POST", "/v1/admin/reload", ReloadRequest{Graph: path, Index: badPath}, &errResp); code == 200 {
		t.Fatal("reload accepted a mismatched index")
	}
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: 3}, &src); code != 200 {
		t.Fatalf("old index stopped serving after failed reload: status %d", code)
	}
}

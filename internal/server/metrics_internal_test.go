package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"usimrank/internal/obs"
)

// bucketForLinear is the original O(buckets) implementation, kept here
// as the reference the constant-time bits.Len64 version is pinned to.
func bucketForLinear(us int64) int {
	if us < 0 {
		us = 0
	}
	bound := int64(histBaseUs)
	for i := 0; i < histBuckets-1; i++ {
		if us <= bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

// TestBucketForMatchesLinearScan exhaustively pins the bits.Len64
// bucketing to the old linear scan: every bucket boundary ±1, a dense
// sweep of the small values, and the extremes.
func TestBucketForMatchesLinearScan(t *testing.T) {
	var cases []int64
	for us := int64(-10); us <= 10_000; us++ {
		cases = append(cases, us)
	}
	bound := int64(histBaseUs)
	for i := 0; i < histBuckets+4; i++ {
		cases = append(cases, bound-1, bound, bound+1)
		bound <<= 1
	}
	cases = append(cases, 1<<62, (1<<63)-1)
	for _, us := range cases {
		if got, want := bucketFor(us), bucketForLinear(us); got != want {
			t.Fatalf("bucketFor(%d) = %d, linear scan says %d", us, got, want)
		}
	}
}

// TestCellLockFreeHammer races many goroutines over a mix of first-seen
// and repeated (shape, alg) cells; under -race in CI this pins the
// copy-on-write publication, and the final counts prove no increment
// was lost to a stale map.
func TestCellLockFreeHammer(t *testing.T) {
	m := NewMetricsRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// A shared hot cell plus a per-iteration cold cell: the
				// hot path must survive concurrent map republication.
				m.RecordQuery("score", "srsp", time.Millisecond, i%2 == 0, nil)
				m.RecordDownstream(fmt.Sprintf("shape%d", g), fmt.Sprintf("alg%d", i%7), time.Microsecond, nil)
			}
		}()
	}
	wg.Wait()
	stats := m.QueryStats()
	if got := stats["score/srsp"].Count; got != goroutines*perG {
		t.Fatalf("hot cell lost increments: %d of %d", got, goroutines*perG)
	}
	if len(stats) != 1+goroutines*7 {
		t.Fatalf("cells: %d, want %d", len(stats), 1+goroutines*7)
	}
	for g := 0; g < goroutines; g++ {
		var n uint64
		for a := 0; a < 7; a++ {
			n += stats[fmt.Sprintf("shape%d/alg%d", g, a)].Count
		}
		if n != perG {
			t.Fatalf("cold cells for goroutine %d lost increments: %d of %d", g, n, perG)
		}
	}
	// cell must return the same pointer for the same key forever —
	// losing that would split a cell's counters across generations.
	if m.cell("score", "srsp") != m.cell("score", "srsp") {
		t.Fatal("cell identity not stable")
	}
}

func TestRegistryWriteProm(t *testing.T) {
	m := NewMetricsRegistry()
	m.RecordQuery("score", "srsp", 75*time.Microsecond, false, nil)
	m.RecordQuery("score", "srsp", 10*time.Millisecond, true, nil)
	m.RecordDownstream("shard0", "topk", 200*time.Microsecond, nil)
	m.InFlight.Add(2)
	var sb strings.Builder
	pw := obs.NewPromWriter(&sb)
	m.WriteProm(pw)
	if pw.Err() != nil {
		t.Fatalf("WriteProm: %v", pw.Err())
	}
	out := sb.String()
	for _, want := range []string{
		`usimrank_queries_total{shape="score",alg="srsp"} 2`,
		`usimrank_query_coalesce_hits_total{shape="score",alg="srsp"} 1`,
		`usimrank_query_latency_seconds_bucket{shape="score",alg="srsp",le="0.0001"} 1`,
		`usimrank_query_latency_seconds_bucket{shape="score",alg="srsp",le="+Inf"} 2`,
		`usimrank_query_latency_seconds_count{shape="score",alg="srsp"} 2`,
		`usimrank_shard_requests_total{shard="shard0",shape="topk"} 1`,
		`usimrank_shard_request_latency_seconds_bucket{shard="shard0",shape="topk",le="+Inf"} 1`,
		"usimrank_in_flight 2",
		"usimrank_coalesce_misses_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket series must be cumulative: the 10ms observation lands in a
	// later bucket, so every le >= 0.0128 line reports 2.
	if !strings.Contains(out, `le="0.0128"} 2`) {
		t.Fatalf("cumulative bucket counts wrong:\n%s", out)
	}
	// _sum is in seconds.
	if !strings.Contains(out, "usimrank_query_latency_seconds_sum{") {
		t.Fatalf("_sum series missing:\n%s", out)
	}
}

package server

import (
	"context"
	"time"
)

// Admission is the bounded in-flight-query semaphore. It sits above
// the engine's Options.Parallelism bound: Parallelism caps how many
// worker goroutines one engine spends, Admission caps how many queries
// are allowed to contend for them at all. Beyond the bound, requests
// wait at most the configured grace and are then rejected (HTTP 429)
// instead of queuing unboundedly.
//
// The semaphore is split into two tiers: a general pool every query
// may use, and an optional reserve only cheap queries (adaptive
// eps-bearing requests, which stop sampling early) may fall back to.
// The reserve keeps a saturating flood of full-budget queries from
// starving the approximate tier whose whole point is to degrade
// gracefully under load. With reserve 0 (the default) behavior is
// identical to the single-pool semaphore.
type Admission struct {
	general  chan struct{} // every query contends here first
	reserved chan struct{} // cheap-tier fallback; nil when reserve == 0
	wait     time.Duration
}

// NewAdmission builds a single-tier semaphore (no reserve) — the
// historical constructor, kept for callers that never route cheap
// queries.
func NewAdmission(maxInFlight int, wait time.Duration) *Admission {
	return NewTieredAdmission(maxInFlight, 0, wait)
}

// NewTieredAdmission splits maxInFlight total slots into a general
// pool of maxInFlight−reserve and a cheap-only reserve. The reserve is
// clamped so at least one general slot always exists (a server that
// admits only cheap queries would deadlock every exact query).
func NewTieredAdmission(maxInFlight, reserve int, wait time.Duration) *Admission {
	if reserve < 0 {
		reserve = 0
	}
	if reserve > maxInFlight-1 {
		reserve = maxInFlight - 1
	}
	a := &Admission{
		general: make(chan struct{}, maxInFlight-reserve),
		wait:    wait,
	}
	if reserve > 0 {
		a.reserved = make(chan struct{}, reserve)
	}
	return a
}

// AcquireTier claims a slot for a query of the given tier, waiting up
// to the Admission grace (bounded by the request context). It returns
// a release func that frees exactly the slot claimed — callers must
// not pair it with Release — or nil when the request must be rejected.
// Cheap queries try the general pool first so the reserve stays free
// as long as possible. The fast path — a free slot — never allocates
// a timer.
func (a *Admission) AcquireTier(ctx context.Context, cheap bool) func() {
	select {
	case a.general <- struct{}{}:
		return a.releaseGeneral
	default:
	}
	if cheap && a.reserved != nil {
		select {
		case a.reserved <- struct{}{}:
			return a.releaseReserved
		default:
		}
	}
	if a.wait <= 0 {
		return nil
	}
	t := time.NewTimer(a.wait)
	defer t.Stop()
	if cheap && a.reserved != nil {
		select {
		case a.general <- struct{}{}:
			return a.releaseGeneral
		case a.reserved <- struct{}{}:
			return a.releaseReserved
		case <-t.C:
			return nil
		case <-ctx.Done():
			return nil
		}
	}
	select {
	case a.general <- struct{}{}:
		return a.releaseGeneral
	case <-t.C:
		return nil
	case <-ctx.Done():
		return nil
	}
}

func (a *Admission) releaseGeneral()  { <-a.general }
func (a *Admission) releaseReserved() { <-a.reserved }

// Acquire claims a general-pool slot (the single-tier API). It returns
// false when the request must be rejected.
func (a *Admission) Acquire(ctx context.Context) bool {
	return a.AcquireTier(ctx, false) != nil
}

// Release frees a slot claimed by Acquire.
func (a *Admission) Release() { <-a.general }

// Wait is the admission grace: how long a request may block for a slot
// before being rejected. Handlers derive the 429 Retry-After hint from
// it — after one grace period a slot has either freed or the client
// should back off at least that long.
func (a *Admission) Wait() time.Duration { return a.wait }

package server

import (
	"context"
	"time"
)

// admission is the bounded in-flight-query semaphore. It sits above
// the engine's Options.Parallelism bound: Parallelism caps how many
// worker goroutines one engine spends, admission caps how many queries
// are allowed to contend for them at all. Beyond the bound, requests
// wait at most the configured grace and are then rejected (HTTP 429)
// instead of queuing unboundedly.
type admission struct {
	slots chan struct{}
	wait  time.Duration
}

func newAdmission(maxInFlight int, wait time.Duration) *admission {
	return &admission{
		slots: make(chan struct{}, maxInFlight),
		wait:  wait,
	}
}

// acquire claims a slot, waiting up to the admission grace (bounded by
// the request context). It returns false when the request must be
// rejected. The fast path — a free slot — never allocates a timer.
func (a *admission) acquire(ctx context.Context) bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
	}
	if a.wait <= 0 {
		return false
	}
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// release frees a slot claimed by acquire.
func (a *admission) release() { <-a.slots }

package server

import (
	"context"
	"time"
)

// Admission is the bounded in-flight-query semaphore. It sits above
// the engine's Options.Parallelism bound: Parallelism caps how many
// worker goroutines one engine spends, Admission caps how many queries
// are allowed to contend for them at all. Beyond the bound, requests
// wait at most the configured grace and are then rejected (HTTP 429)
// instead of queuing unboundedly.
type Admission struct {
	slots chan struct{}
	wait  time.Duration
}

func NewAdmission(maxInFlight int, wait time.Duration) *Admission {
	return &Admission{
		slots: make(chan struct{}, maxInFlight),
		wait:  wait,
	}
}

// Acquire claims a slot, waiting up to the Admission grace (bounded by
// the request context). It returns false when the request must be
// rejected. The fast path — a free slot — never allocates a timer.
func (a *Admission) Acquire(ctx context.Context) bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
	}
	if a.wait <= 0 {
		return false
	}
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// Release frees a slot claimed by Acquire.
func (a *Admission) Release() { <-a.slots }

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"usimrank"
)

// TestAdaptiveEndpoints drives every eps-bearing query shape and pins
// the responses — score, adaptive block and all — to direct engine
// calls: the HTTP plane must relay the adaptive trajectory, never
// re-derive it.
func TestAdaptiveEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	ref, err := usimrank.New(testGraph(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ao := usimrank.AdaptiveOptions{Eps: 0.05}
	checkBlock := func(t *testing.T, got *AdaptiveInfo, want usimrank.AdaptiveResult) {
		t.Helper()
		if got == nil {
			t.Fatal("response carries no adaptive block")
		}
		if got.Eps != 0.05 || got.Delta != usimrank.AdaptiveDefaultDelta {
			t.Fatalf("adaptive echo eps=%v delta=%v, want 0.05/%v", got.Eps, got.Delta, usimrank.AdaptiveDefaultDelta)
		}
		if got.Radius != want.Radius || got.Walks != want.Walks ||
			got.Rounds != want.Rounds || got.Converged != want.Converged {
			t.Fatalf("adaptive block %+v, engine %+v", got, want)
		}
	}

	var score ScoreResponse
	if code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "sampling", U: 3, V: 17, Eps: 0.05}, &score); code != 200 {
		t.Fatalf("/v1/score eps status %d", code)
	}
	wantPair, err := ref.AdaptiveCompute(usimrank.AlgSampling, 3, 17, ao)
	if err != nil {
		t.Fatal(err)
	}
	if score.Score != wantPair.Score || score.Partial != wantPair.Partial {
		t.Fatalf("/v1/score eps = %+v, engine %+v", score, wantPair)
	}
	checkBlock(t, score.Adaptive, wantPair)

	var source SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "sampling", U: 5, Eps: 0.05}, &source); code != 200 {
		t.Fatalf("/v1/source eps status %d", code)
	}
	wantSS, err := ref.AdaptiveSingleSource(usimrank.AlgSampling, 5, ao)
	if err != nil {
		t.Fatal(err)
	}
	if len(source.Scores) != len(wantSS.Scores) {
		t.Fatalf("/v1/source eps: %d scores, want %d", len(source.Scores), len(wantSS.Scores))
	}
	for v := range wantSS.Scores {
		if source.Scores[v] != wantSS.Scores[v] {
			t.Fatalf("/v1/source eps [%d] = %v, engine %v", v, source.Scores[v], wantSS.Scores[v])
		}
	}
	checkBlock(t, source.Adaptive, wantSS)

	cands := []int{1, 9, 33}
	var sub SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "srsp", U: 2, Candidates: cands, Eps: 0.05}, &sub); code != 200 {
		t.Fatalf("/v1/source eps candidates status %d", code)
	}
	wantSub, err := ref.AdaptiveSingleSourceAgainstCtx(context.Background(), usimrank.AlgSRSP, 2, cands, ao)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSub.Scores {
		if sub.Scores[i] != wantSub.Scores[i] {
			t.Fatalf("/v1/source eps candidates[%d] = %v, engine %v", i, sub.Scores[i], wantSub.Scores[i])
		}
	}

	u := 3
	var topk TopKResponse
	if code := call(t, s, "POST", "/v1/topk", TopKRequest{Alg: "sampling", U: &u, K: 5, Eps: 0.05}, &topk); code != 200 {
		t.Fatalf("/v1/topk eps status %d", code)
	}
	wantTK, wantTKRes, err := usimrank.TopKSimilarAdaptiveCtx(context.Background(), ref, usimrank.AlgSampling, u, 5, ao)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.Results) != len(wantTK) {
		t.Fatalf("/v1/topk eps: %d results, want %d", len(topk.Results), len(wantTK))
	}
	for i, r := range wantTK {
		got := topk.Results[i]
		if got.U != r.U || got.V != r.V || got.Score != r.Score {
			t.Fatalf("/v1/topk eps [%d] = %+v, engine %+v", i, got, r)
		}
	}
	checkBlock(t, topk.Adaptive, wantTKRes)

	var pairs TopKResponse
	if code := call(t, s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", K: 3, Eps: 0.05}, &pairs); code != 200 {
		t.Fatalf("/v1/topk eps pairs status %d", code)
	}
	wantPK, wantPKRes, err := usimrank.TopKPairsAdaptiveCtx(context.Background(), ref, usimrank.AlgSRSP, 3, nil, ao)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range wantPK {
		got := pairs.Results[i]
		if got.U != r.U || got.V != r.V || got.Score != r.Score {
			t.Fatalf("/v1/topk eps pairs[%d] = %+v, engine %+v", i, got, r)
		}
	}
	checkBlock(t, pairs.Adaptive, wantPKRes)

	// The adaptive serving counters moved: one leader per distinct
	// query above, each converged with walks spent.
	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Serving.AdaptiveQueries < 5 || stats.Serving.AdaptiveRounds < 5 {
		t.Fatalf("adaptive counters %+v, want >= 5 queries/rounds", stats.Serving)
	}
	if stats.Serving.AdaptiveEarlyStops < 1 {
		t.Fatalf("adaptive_early_stops = %d, want >= 1", stats.Serving.AdaptiveEarlyStops)
	}
}

// TestAdaptiveIndexedEndpoint: alg:"indexed" with eps routes to the
// adaptive indexed sweep, full row and restricted candidates.
func TestAdaptiveIndexedEndpoint(t *testing.T) {
	g := testGraph()
	idx := buildTestIndex(t, g, testOptions())
	s := newTestServer(t, Config{Engine: testOptions(), Index: idx})
	ref, err := usimrank.New(g, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ao := usimrank.AdaptiveOptions{Eps: 0.05}

	var full SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: 3, Eps: 0.05}, &full); code != 200 {
		t.Fatalf("indexed eps /v1/source status %d", code)
	}
	want, err := ref.AdaptiveSingleSourceIndexedCtx(context.Background(), idx, 3, ao)
	if err != nil {
		t.Fatal(err)
	}
	if full.Adaptive == nil || full.Adaptive.Walks != want.Walks || full.Adaptive.Radius != want.Radius {
		t.Fatalf("indexed adaptive block %+v, engine %+v", full.Adaptive, want)
	}
	for v := range want.Scores {
		if full.Scores[v] != want.Scores[v] {
			t.Fatalf("indexed eps s(3,%d) = %v, engine %v", v, full.Scores[v], want.Scores[v])
		}
	}

	cands := []int{0, 1, 5, 9}
	var sub SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "indexed", U: 3, Candidates: cands, Eps: 0.05}, &sub); code != 200 {
		t.Fatalf("indexed eps candidates status %d", code)
	}
	wantC, err := ref.AdaptiveSingleSourceIndexedAgainstCtx(context.Background(), idx, 3, cands, ao)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantC.Scores {
		if sub.Scores[i] != wantC.Scores[i] {
			t.Fatalf("indexed eps candidates[%d] = %v, engine %v", i, sub.Scores[i], wantC.Scores[i])
		}
	}
}

// TestAdaptiveByteIdentity: a request without eps must produce a
// response without any adaptive artifacts — byte-identical to the
// pre-adaptive wire format.
func TestAdaptiveByteIdentity(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(ScoreRequest{Alg: "srsp", U: 3, V: 17}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/score", &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, leak := range []string{"adaptive", "partial", "eps", "delta"} {
		if strings.Contains(body, leak) {
			t.Fatalf("non-eps response leaks %q: %s", leak, body)
		}
	}
}

// TestAdaptiveValidation covers the eps/delta 400 paths on every
// query shape that accepts them.
func TestAdaptiveValidation(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	u := 1
	cases := []struct {
		name string
		path string
		body any
	}{
		{"negative eps", "/v1/score", ScoreRequest{Alg: "srsp", U: 0, V: 1, Eps: -0.1}},
		{"delta without eps", "/v1/score", ScoreRequest{Alg: "srsp", U: 0, V: 1, Delta: 0.05}},
		{"delta too large", "/v1/score", ScoreRequest{Alg: "srsp", U: 0, V: 1, Eps: 0.05, Delta: 1}},
		{"delta negative", "/v1/score", ScoreRequest{Alg: "srsp", U: 0, V: 1, Eps: 0.05, Delta: -0.5}},
		{"source negative eps", "/v1/source", SourceRequest{Alg: "srsp", U: 0, Eps: -1}},
		{"source delta without eps", "/v1/source", SourceRequest{Alg: "srsp", U: 0, Delta: 0.1}},
		{"topk negative eps", "/v1/topk", TopKRequest{Alg: "srsp", U: &u, K: 3, Eps: -0.5}},
		{"topk delta without eps", "/v1/topk", TopKRequest{Alg: "srsp", K: 3, Delta: 0.2}},
	}
	for _, tc := range cases {
		var errResp ErrorResponse
		if code := call(t, s, "POST", tc.path, tc.body, &errResp); code != 400 {
			t.Fatalf("%s: status %d, want 400", tc.name, code)
		}
		if errResp.Error.Code != CodeBadRequest {
			t.Fatalf("%s: error code %q, want %q", tc.name, errResp.Error.Code, CodeBadRequest)
		}
	}
}

// TestAdaptivePartialUnderDeadline is the graceful-degradation
// contract end to end: an unreachably tight eps under a short
// deadline answers 200 with partial:true and the best committed
// estimate — never 504.
func TestAdaptivePartialUnderDeadline(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	var resp SourceResponse
	code := call(t, s, "POST", "/v1/source",
		SourceRequest{Alg: "sampling", U: 5, Eps: 1e-12, TimeoutMs: 150}, &resp)
	if code != 200 {
		t.Fatalf("deadline-pressured eps query: status %d, want 200", code)
	}
	if !resp.Partial {
		t.Fatalf("want partial:true, got %+v", resp.Adaptive)
	}
	if resp.Adaptive == nil || resp.Adaptive.Converged || resp.Adaptive.Radius <= 0 || resp.Adaptive.Rounds < 1 {
		t.Fatalf("partial result carries no committed estimate: %+v", resp.Adaptive)
	}
	if len(resp.Scores) != testGraph().NumVertices() {
		t.Fatalf("partial result has %d scores", len(resp.Scores))
	}
	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Serving.PartialResults < 1 {
		t.Fatalf("partial_results = %d, want >= 1", stats.Serving.PartialResults)
	}
	if stats.Serving.DeadlineExceeded != 0 {
		t.Fatalf("partial answer still counted a deadline expiry: %+v", stats.Serving)
	}
}

// TestRetryAfterOn429: an admission rejection must tell the client how
// long to back off, derived from the admission grace.
func TestRetryAfterOn429(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions(), MaxInFlight: 1, AdmissionWait: -1})
	if !s.adm.Acquire(context.Background()) {
		t.Fatal("could not occupy the only slot")
	}
	defer s.adm.Release()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(ScoreRequest{Alg: "srsp", U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/score", &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 429 {
		t.Fatalf("saturated server: status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}

// TestRetryAfterSeconds pins the grace → header derivation: ceiling to
// whole seconds, floored at the header's 1-second resolution.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want string
	}{
		{-time.Second, "1"},
		{0, "1"},
		{100 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
	} {
		if got := RetryAfterSeconds(tc.wait); got != tc.want {
			t.Fatalf("RetryAfterSeconds(%v) = %q, want %q", tc.wait, got, tc.want)
		}
	}
}

// TestTieredAdmission: the reserve admits cheap queries after the
// general pool saturates, never full-budget ones, and the clamp keeps
// at least one general slot.
func TestTieredAdmission(t *testing.T) {
	ctx := context.Background()
	a := NewTieredAdmission(3, 1, -1)
	r1 := a.AcquireTier(ctx, false)
	r2 := a.AcquireTier(ctx, false)
	if r1 == nil || r2 == nil {
		t.Fatal("general pool refused within capacity")
	}
	if a.AcquireTier(ctx, false) != nil {
		t.Fatal("full-budget query admitted past the general pool")
	}
	rc := a.AcquireTier(ctx, true)
	if rc == nil {
		t.Fatal("cheap query rejected despite a free reserve slot")
	}
	if a.AcquireTier(ctx, true) != nil {
		t.Fatal("cheap query admitted past the reserve")
	}
	rc()
	if rc2 := a.AcquireTier(ctx, true); rc2 == nil {
		t.Fatal("reserve slot not reusable after release")
	} else {
		rc2()
	}
	r1()
	// A freed general slot serves cheap queries first-come like any
	// other.
	if rg := a.AcquireTier(ctx, true); rg == nil {
		t.Fatal("cheap query refused a free general slot")
	}
	r2()

	// Reserve clamping: maxInFlight 1 cannot give up its only general
	// slot.
	one := NewTieredAdmission(1, 5, -1)
	if one.AcquireTier(ctx, false) == nil {
		t.Fatal("clamped semaphore refused its general slot")
	}
	if one.AcquireTier(ctx, true) != nil {
		t.Fatal("clamped semaphore still has a reserve")
	}
}

// blockFlight occupies the exact flight key a /v1/score request for
// (alg, u, v) at the server's default timeout would lead, with an
// engine-free function that blocks until the returned channel is
// closed. HTTP requests for the same triple become followers of this
// synthetic leader — giving tests deterministic control over the
// coalesced-wait window.
func blockFlight(t *testing.T, s *Server, alg usimrank.Algorithm, u, v int) (release func()) {
	t.Helper()
	h := s.engine()
	key := fmt.Sprintf("score|g%d|%s|%d|%d|t%d", h.gen, alg, u, v, s.cfg.QueryTimeout.Milliseconds())
	h.release()
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.flights.Do(context.Background(), key, nil, func() func() (any, error) {
			return func() (any, error) {
				<-block
				return 0.0, nil
			}
		})
	}()
	// Wait until the flight is registered so subsequent requests are
	// guaranteed followers.
	for {
		s.flights.mu.Lock()
		_, ok := s.flights.m[key]
		s.flights.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var once sync.Once
	return func() {
		once.Do(func() { close(block) })
		<-done
	}
}

// TestFollowerReleasesAdmissionSlot is the regression test for the
// coalescing/admission interaction bug: a follower idling on a
// leader's flight used to hold its admission slot for the whole wait,
// so a burst of identical queries could saturate admission and starve
// disjoint work. Now the follower hands its slot back before waiting.
func TestFollowerReleasesAdmissionSlot(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions(), MaxInFlight: 2, AdmissionWait: -1})
	unblock := blockFlight(t, s, usimrank.AlgSRSP, 0, 1)
	defer unblock()
	// Simulate the leader's held slot: one of two is gone.
	if !s.adm.Acquire(context.Background()) {
		t.Fatal("could not take the leader's slot")
	}
	defer s.adm.Release()

	// The follower joins the blocked flight; with the fix it gives its
	// slot back immediately and idles slot-free.
	type result struct {
		code int
		resp ScoreResponse
		err  error
	}
	followerCh := make(chan result, 1)
	go func() {
		var resp ScoreResponse
		code, err := callE(s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: 0, V: 1}, &resp)
		followerCh <- result{code, resp, err}
	}()
	// Give the follower time to be admitted, join the flight, and
	// release its slot.
	time.Sleep(200 * time.Millisecond)

	// A disjoint query must find the follower's slot free. Before the
	// fix this deterministically 429s: the follower sits on the last
	// slot while consuming nothing.
	var disjoint ScoreResponse
	if code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: 2, V: 3}, &disjoint); code != 200 {
		t.Fatalf("disjoint query while a follower idles: status %d, want 200", code)
	}

	unblock()
	fr := <-followerCh
	if fr.err != nil || fr.code != 200 {
		t.Fatalf("follower: status %d err %v", fr.code, fr.err)
	}
	if !fr.resp.Coalesced {
		t.Fatal("follower did not coalesce — test lost its premise")
	}
	if fr.resp.Score != 0.0 {
		t.Fatalf("follower score %v, want the synthetic leader's 0", fr.resp.Score)
	}
}

// TestClientGoneCoalesced is the regression test for disconnect
// accounting: a client that hangs up while coalesced used to pollute
// the per-shape error counters (and attempt a write nobody reads).
// Now it counts only client_gone.
func TestClientGoneCoalesced(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	unblock := blockFlight(t, s, usimrank.AlgSRSP, 0, 1)
	defer unblock()

	ctx, hangup := context.WithCancel(context.Background())
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(ScoreRequest{Alg: "srsp", U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/score", &buf).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(rec, req)
	}()
	// Let the request coalesce onto the blocked flight, then hang up.
	time.Sleep(100 * time.Millisecond)
	hangup()
	<-done

	if got := s.metrics.ClientGone.Load(); got != 1 {
		t.Fatalf("client_gone = %d, want 1", got)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("response written to a disconnected client: %q", rec.Body.String())
	}
	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Serving.ClientGone != 1 {
		t.Fatalf("stats client_gone = %d, want 1", stats.Serving.ClientGone)
	}
	q := stats.Queries["score/SR-SP"]
	if q.Count != 1 || q.Errors != 0 {
		t.Fatalf("score/SR-SP stats %+v: a disconnect must count the query but no error", q)
	}
	// The in-flight gauge must have drained (the slot was released via
	// the follower hook, the gauge by the same once-guarded closure).
	if got := stats.Serving.InFlight; got != 0 {
		t.Fatalf("in_flight = %d after client disconnect, want 0", got)
	}
}

// TestAdaptiveMetricsExposition: the new counters surface in the
// Prometheus text format.
func TestAdaptiveMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	if code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "sampling", U: 3, V: 17, Eps: 0.05}, nil); code != 200 {
		t.Fatalf("eps score status %d", code)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"usimrank_client_gone_total",
		"usimrank_adaptive_queries_total",
		"usimrank_partial_results_total",
		"usimrank_adaptive_rounds_total",
		"usimrank_adaptive_early_stops_total",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics missing %s:\n%s", family, body)
		}
	}
	if !strings.Contains(body, "usimrank_adaptive_queries_total 1") {
		t.Fatal("/metrics did not count the adaptive query")
	}
}

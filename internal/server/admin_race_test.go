package server

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestAdminMutationsSerialized hammers /v1/admin/update and
// /v1/admin/reload concurrently and proves the admin plane serialises
// engine swaps behind one mutex: every successful mutation must
// receive its own generation, and together they must form the exact
// contiguous range 2..ops+1. If the two paths could interleave — both
// loading the same predecessor handle before either publishes — two
// responses would share a generation (one swap silently lost) and the
// final resident generation would fall short. Run under -race in CI.
func TestAdminMutationsSerialized(t *testing.T) {
	g := testGraph()
	s := newTestServer(t, Config{Engine: testOptions()})
	path := writeGraphFile(t, g)
	au, av, ap := g.ArcEndpoints(0)

	const workers = 8
	const perWorker = 4
	gens := make(chan uint64, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if (w+i)%2 == 0 {
					// Reweighting an existing arc is valid no matter how
					// the batches interleave (and restoring the original
					// probability keeps the graph usable for reloads).
					p := 0.123
					if i%2 == 1 {
						p = ap
					}
					var resp UpdateResponse
					code, err := callE(s, "POST", "/v1/admin/update",
						UpdateRequest{Updates: []ArcUpdateRequest{{Op: "reweight", U: int(au), V: int(av), P: p}}}, &resp)
					if err != nil || code != 200 {
						gens <- 0
						t.Errorf("worker %d update %d: code %d err %v", w, i, code, err)
						return
					}
					gens <- resp.Generation
				} else {
					var resp ReloadResponse
					code, err := callE(s, "POST", "/v1/admin/reload", ReloadRequest{Graph: path}, &resp)
					if err != nil || code != 200 {
						gens <- 0
						t.Errorf("worker %d reload %d: code %d err %v", w, i, code, err)
						return
					}
					gens <- resp.Generation
				}
			}
		}(w)
	}
	wg.Wait()
	close(gens)

	var got []uint64
	for g := range gens {
		got = append(got, g)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := make([]uint64, 0, workers*perWorker)
	for i := 0; i < workers*perWorker; i++ {
		want = append(want, uint64(i+2))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("admin mutations interleaved: generations %v, want the contiguous range %v", got, want)
	}

	var stats StatsResponse
	if code := call(t, s, "GET", "/v1/stats", nil, &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if wantGen := uint64(workers*perWorker + 1); stats.Graph.Generation != wantGen {
		t.Fatalf("final generation %d, want %d", stats.Graph.Generation, wantGen)
	}
}

package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"usimrank"
	"usimrank/internal/sub"
)

// GET /v1/subscribe — the continuous-query plane. A client opens one
// long-lived SSE stream per standing query shape and receives:
//
//   - an initial "snapshot" event carrying the answer at the current
//     generation (skipped when Last-Event-ID already matches it);
//   - "update" events whenever an admin mutation can have changed the
//     answer, each carrying the full recomputed body at the latest
//     generation (a burst of updates coalesces into one push);
//   - ": hb" comment frames as keep-alives on idle streams;
//   - a terminal "shutdown" ("gone", "error") event before the server
//     closes the stream.
//
// Every event's id is the graph generation its payload was computed
// at, and every payload is byte-identical to the response body of a
// cold POST query of the same shape at that generation. Reconnecting
// with Last-Event-ID resumes: the server re-sends a snapshot only when
// the generation moved while the client was away.
//
// Query parameters: shape=score|source|topk, alg (an engine algorithm;
// "indexed" additionally allowed for shape=source on an index-serving
// node), u, v (score only), k (topk only), candidates (source only,
// comma-separated), staleness_ms (how long the server may sit on a
// wake-up coalescing further generations before it must push; capped
// by -sub-max-staleness).

// Event names of the subscription stream.
const (
	EventSnapshot = "snapshot"
	EventUpdate   = "update"
	// EventShutdown is terminal: the server is draining; resubscribe
	// with Last-Event-ID to resume. EventGone is terminal: the watched
	// vertices no longer exist (a reload shrank the graph). EventError
	// is terminal: a push failed; the payload carries the error envelope.
	EventShutdown = "shutdown"
	EventGone     = "gone"
	EventError    = "error"
)

// Timeouts NewHTTPServer installs on every usimd listener.
const (
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers — the slowloris guard.
	ReadHeaderTimeout = 10 * time.Second
	// IdleTimeout reaps kept-alive connections with no request in
	// flight. It does not apply to a connection actively serving a
	// request, so subscription streams are unaffected.
	IdleTimeout = 120 * time.Second
)

// NewHTTPServer builds the http.Server every usimd process listens on.
// It deliberately sets no WriteTimeout: a blanket write deadline would
// kill every /v1/subscribe stream at the timeout no matter how healthy,
// since net/http arms it once per connection, not per write. Slow-peer
// protection comes from ReadHeaderTimeout and IdleTimeout instead;
// TestHTTPServerTimeouts pins the invariant.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// DrainSubscriptions tells every live subscription stream to send its
// terminal shutdown event and close, then waits (bounded by the drain
// timeout) for them to finish. Call it before http.Server.Shutdown:
// Shutdown waits for active connections, and an SSE stream left to its
// own devices never becomes inactive.
func (s *Server) DrainSubscriptions() bool {
	s.subs.Shutdown()
	return s.subs.AwaitIdle(s.cfg.DrainTimeout)
}

// SubscriptionStatsFrom converts a registry snapshot into the stats
// wire shape (shared with the cluster coordinator's relay registry).
func SubscriptionStatsFrom(r *sub.Registry) *SubscriptionStats {
	st := r.Snapshot()
	return &SubscriptionStats{
		Active:    st.Active,
		Lookups:   st.Lookups,
		Wakeups:   st.Wakeups,
		Coalesced: st.Coalesced,
		Pushes:    st.Pushes,
		Dropped:   st.Dropped,
	}
}

func subscriptionStats(r *sub.Registry) *SubscriptionStats { return SubscriptionStatsFrom(r) }

// subQuery is one subscription's parsed query shape: everything needed
// to recompute its answer against any engine handle.
type subQuery struct {
	shape      string // "score" | "source" | "topk"
	algName    string
	alg        usimrank.Algorithm // undefined when indexed
	indexed    bool
	u, v, k    int
	candidates []int
}

// watched is the vertex set registered in the inverted index: both
// endpoints for a score shape, the source plus any explicit candidates
// for a source shape, the source for a top-k shape. A subscription is
// woken when an update's invalidation BFS reaches one of these.
// watched is the vertex set whose touched-source membership forces a
// recompute. The invalidation BFS reports per-SIDE sources: an answer
// is bit-identical across an update only when every constituent
// source — each side of each pair the shape evaluates — stays outside
// the touched set. Score and candidate-restricted source enumerate
// their constituents; top-k of u and the unrestricted single-source
// vector evaluate a pair against EVERY vertex, so any touched v-side
// row can move their answer even when u itself is unaffected — they
// watch sub.AnyVertex and wake on every non-empty invalidation set.
func (q *subQuery) watched() []int32 {
	switch q.shape {
	case "score":
		if q.u == q.v {
			return []int32{int32(q.u)}
		}
		return []int32{int32(q.u), int32(q.v)}
	case "source":
		if len(q.candidates) == 0 {
			return []int32{sub.AnyVertex}
		}
		vs := []int32{int32(q.u)}
		for _, c := range q.candidates {
			if c != q.u {
				vs = append(vs, int32(c))
			}
		}
		return vs
	default: // topk
		return []int32{sub.AnyVertex}
	}
}

// vertexArgs is every vertex id the shape references, for range checks.
func (q *subQuery) vertexArgs() []int {
	switch q.shape {
	case "score":
		return []int{q.u, q.v}
	case "source":
		return append([]int{q.u}, q.candidates...)
	default:
		return []int{q.u}
	}
}

// flightKey builds the same coalescing key the cold handler of this
// shape would use (minus execute's timeout suffix), so a push shares
// its flight with concurrent identical pushes and cold queries — one
// computation per (shape, operand, generation).
func (q *subQuery) flightKey(gen uint64) string {
	switch q.shape {
	case "score":
		return fmt.Sprintf("score|g%d|%s|%d|%d", gen, q.algName, q.u, q.v)
	case "source":
		candKey := "all"
		if q.candidates != nil {
			candKey = DigestInts(q.candidates)
		}
		return fmt.Sprintf("source|g%d|%s|%d|%s", gen, q.algName, q.u, candKey)
	default:
		return fmt.Sprintf("topk|g%d|%s|u%d|k%d", gen, q.algName, q.u, q.k)
	}
}

// run computes the shape's answer on h — the same engine calls the
// cold handlers make.
func (q *subQuery) run(ctx context.Context, h *engineHandle) (any, error) {
	if q.indexed && h.idx == nil {
		return nil, fmt.Errorf("no reverse-walk index loaded for generation %d", h.gen)
	}
	switch q.shape {
	case "score":
		return h.eng.ComputeCtx(ctx, q.alg, q.u, q.v)
	case "source":
		switch {
		case q.indexed && q.candidates == nil:
			return h.eng.SingleSourceIndexedCtx(ctx, h.idx, q.u)
		case q.indexed:
			return h.eng.SingleSourceIndexedAgainstCtx(ctx, h.idx, q.u, q.candidates)
		case q.candidates == nil:
			return h.eng.SingleSourceCtx(ctx, q.alg, q.u)
		default:
			return h.eng.SingleSourceAgainstCtx(ctx, q.alg, q.u, q.candidates)
		}
	default:
		return usimrank.TopKSimilarCtx(ctx, h.eng, q.alg, q.u, q.k)
	}
}

// response wraps a computed value in the shape's wire struct, exactly
// as the cold handler builds it for an uncoalesced, non-debug request.
func (q *subQuery) response(val any) any {
	switch q.shape {
	case "score":
		return ScoreResponse{Alg: q.algName, U: q.u, V: q.v, Score: val.(float64)}
	case "source":
		return SourceResponse{Alg: q.algName, U: q.u, Candidates: q.candidates, Scores: val.([]float64)}
	default:
		results := val.([]usimrank.TopKResult)
		out := make([]PairScore, len(results))
		for i, res := range results {
			out[i] = PairScore{U: res.U, V: res.V, Score: res.Score}
		}
		u := q.u
		return TopKResponse{Alg: q.algName, U: &u, K: q.k, Results: out}
	}
}

// parseSubQuery validates the request's query parameters into a
// subQuery, writing the 400 itself on failure.
func (s *Server) parseSubQuery(w http.ResponseWriter, r *http.Request) (*subQuery, bool) {
	qp := r.URL.Query()
	q := &subQuery{shape: qp.Get("shape")}
	switch q.shape {
	case "score", "source", "topk":
	default:
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("shape %q must be score, source or topk", q.shape))
		return nil, false
	}
	rawAlg := qp.Get("alg")
	q.indexed = q.shape == "source" && strings.EqualFold(rawAlg, AlgIndexed)
	if q.indexed {
		q.algName = AlgIndexed
	} else {
		alg, err := usimrank.ParseAlgorithm(rawAlg)
		if err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return nil, false
		}
		q.alg, q.algName = alg, alg.String()
	}
	var ok bool
	if q.u, ok = intParam(w, qp.Get("u"), "u", true); !ok {
		return nil, false
	}
	switch q.shape {
	case "score":
		if q.v, ok = intParam(w, qp.Get("v"), "v", true); !ok {
			return nil, false
		}
	case "topk":
		if q.k, ok = intParam(w, qp.Get("k"), "k", true); !ok {
			return nil, false
		}
		if q.k < 1 {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("k = %d < 1", q.k))
			return nil, false
		}
	case "source":
		if raw := qp.Get("candidates"); raw != "" {
			for _, part := range strings.Split(raw, ",") {
				c, ok := intParam(w, part, "candidates", true)
				if !ok {
					return nil, false
				}
				q.candidates = append(q.candidates, c)
			}
		}
	}
	return q, true
}

// intParam parses one integer query parameter, writing the 400 itself.
func intParam(w http.ResponseWriter, raw, name string, required bool) (int, bool) {
	if raw == "" {
		if required {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("%q is required", name))
		}
		return 0, !required
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad %q: %v", name, err))
		return 0, false
	}
	return v, true
}

// pushBody computes the subscription's answer against h and encodes it
// exactly as the cold handler would. The computation rides the shared
// FlightGroup under the cold key, so concurrent identical pushes (and
// cold queries) collapse into one engine call, and it takes a regular
// admission slot, so a thundering herd of woken subscriptions
// recomputes in bounded batches rather than all at once. The caller
// keeps ownership of its pin on h; the flight takes its own.
//
// Pushes deliberately do not record into the per-shape query metrics:
// they are server-initiated work, and counting them would skew the
// client-facing latency and coalesce-rate numbers.
func (s *Server) pushBody(q *subQuery, h *engineHandle) ([]byte, error) {
	timeout := s.cfg.QueryTimeout
	key := fmt.Sprintf("%s|t%d", q.flightKey(h.gen), timeout.Milliseconds())
	waitCtx, cancelWait := context.WithTimeout(s.baseCtx, timeout)
	defer cancelWait()

	release := s.adm.AcquireTier(waitCtx, false)
	if release == nil {
		s.metrics.AdmissionRejected.Add(1)
		return nil, fmt.Errorf("push rejected: server saturated (%d queries in flight)", s.cfg.MaxInFlight)
	}
	s.metrics.InFlight.Add(1)
	var relOnce sync.Once
	releaseSlot := func() {
		relOnce.Do(func() {
			s.metrics.InFlight.Add(-1)
			release()
		})
	}
	defer releaseSlot()

	val, _, err := s.flights.Do(waitCtx, key, releaseSlot, func() func() (any, error) {
		h.tryAcquire()
		fctx, cancelFlight := context.WithTimeout(s.baseCtx, timeout)
		return func() (any, error) {
			defer h.release()
			defer cancelFlight()
			return q.run(fctx, h)
		}
	})
	if err != nil {
		return nil, err
	}
	return MarshalBody(q.response(val))
}

// writeTerminal emits a terminal event (shutdown/gone/error) carrying
// the uniform error envelope as its payload, then flushes. Best-effort:
// the client may already be gone.
func writeTerminal(w http.ResponseWriter, fl http.Flusher, event string, id uint64, code, msg string) {
	body, err := MarshalBody(ErrorResponse{Error: ErrorDetail{Code: code, Message: msg}})
	if err != nil {
		return
	}
	if sub.WriteEvent(w, event, id, body) == nil {
		fl.Flush()
	}
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, http.StatusInternalServerError, CodeEngineError,
			"streaming unsupported by this connection")
		return
	}
	q, ok := s.parseSubQuery(w, r)
	if !ok {
		return
	}
	staleness := time.Duration(0)
	if raw := r.URL.Query().Get("staleness_ms"); raw != "" {
		ms, ok := intParam(w, raw, "staleness_ms", true)
		if !ok {
			return
		}
		if staleness = time.Duration(ms) * time.Millisecond; staleness > s.cfg.SubMaxStaleness {
			staleness = s.cfg.SubMaxStaleness
		}
		if staleness < 0 {
			staleness = 0
		}
	}

	// Validate the shape against the current graph, then let go of the
	// handle: a subscription pins an engine only for the duration of a
	// push, never for the stream's lifetime, so idle subscribers cannot
	// wedge a hot-swap's drain.
	h := s.engine()
	if !s.checkVertices(w, h, q.vertexArgs()...) {
		h.release()
		return
	}
	if q.indexed && h.idx == nil {
		h.release()
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			"no reverse-walk index loaded for this generation; start usimd with -index, or reload with an index")
		return
	}
	bootGen := h.gen
	h.release()

	su := s.subs.Subscribe(q.watched(), staleness)
	if su == nil {
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, "server shutting down")
		return
	}
	defer s.subs.Unsubscribe(su)

	// Resume: a client that already holds the answer for the current
	// generation (its Last-Event-ID matches) skips the snapshot and goes
	// straight to waiting for updates.
	lastSent := uint64(0)
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		if id, err := strconv.ParseUint(raw, 10, 64); err == nil {
			lastSent = id
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set(GenerationHeader, strconv.FormatUint(bootGen, 10))
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Initial snapshot. The subscription is already registered, so a
	// mutation landing between the snapshot's pin and the first wait is
	// never lost — it marks the subscription dirty and the loop below
	// picks it up (pushes with gen ≤ lastSent are skipped, so nothing is
	// sent twice either).
	if sh := s.engine(); sh.gen != lastSent {
		body, err := s.pushBody(q, sh)
		if err != nil {
			sh.release()
			s.subs.NoteDropped()
			writeTerminal(w, fl, EventError, 0, CodeEngineError, "snapshot failed: "+err.Error())
			return
		}
		if sub.WriteEvent(w, EventSnapshot, sh.gen, body) != nil {
			sh.release()
			return
		}
		fl.Flush()
		lastSent = sh.gen
		sh.release()
	} else {
		sh.release()
	}

	hb := time.NewTicker(s.cfg.SubHeartbeat)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.subs.ShuttingDown():
			writeTerminal(w, fl, EventShutdown, lastSent, CodeUnavailable,
				"server shutting down; resubscribe with Last-Event-ID to resume")
			return
		case <-s.baseCtx.Done():
			writeTerminal(w, fl, EventShutdown, lastSent, CodeUnavailable,
				"server shutting down; resubscribe with Last-Event-ID to resume")
			return
		case <-hb.C:
			if sub.WriteComment(w, "hb") != nil {
				return
			}
			fl.Flush()
		case <-su.Wait():
			// Staleness SLA: the subscription may sit on the wake-up for
			// its negotiated window, folding further generations into one
			// push (claimed below, so the push carries the newest).
			if d := su.Staleness(); d > 0 {
				t := time.NewTimer(d)
			stale:
				for {
					select {
					case <-t.C:
						break stale
					case <-hb.C:
						if sub.WriteComment(w, "hb") != nil {
							t.Stop()
							return
						}
						fl.Flush()
					case <-ctx.Done():
						t.Stop()
						return
					case <-s.subs.ShuttingDown():
						t.Stop()
						writeTerminal(w, fl, EventShutdown, lastSent, CodeUnavailable,
							"server shutting down; resubscribe with Last-Event-ID to resume")
						return
					}
				}
				t.Stop()
			}
			target := su.Claim()
			if target == 0 || target <= lastSent {
				continue
			}
			ph := s.engine()
			if ph.gen <= lastSent {
				ph.release()
				continue
			}
			// A reload may have shrunk the graph under the subscription.
			n := ph.graph.NumVertices()
			for _, v := range q.vertexArgs() {
				if v < 0 || v >= n {
					ph.release()
					s.subs.NoteDropped()
					writeTerminal(w, fl, EventGone, lastSent, CodeBadRequest,
						fmt.Sprintf("vertex %d out of range [0,%d) after reload", v, n))
					return
				}
			}
			body, err := s.pushBody(q, ph)
			gen := ph.gen
			ph.release()
			if err != nil {
				s.subs.NoteDropped()
				writeTerminal(w, fl, EventError, lastSent, CodeEngineError, "push failed: "+err.Error())
				return
			}
			if sub.WriteEvent(w, EventUpdate, gen, body) != nil {
				s.subs.NoteDropped()
				return
			}
			fl.Flush()
			lastSent = gen
			s.subs.NotePush()
		}
	}
}

package server

import (
	"net/http"
	"time"

	"usimrank/internal/obs"
)

// handleMetrics serves GET /metrics in Prometheus text exposition
// format (hand-rolled, no client library — see internal/obs). The
// scrape pins the resident engine handle for its duration so every
// gauge in one exposition describes the same generation; counters are
// lifetime server totals and survive hot-swaps.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h := s.engine()
	defer h.release()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := obs.NewPromWriter(w)

	// Per-query and per-downstream serving metrics (counters + latency
	// histograms), then the serving-plane globals.
	s.metrics.WriteProm(pw)

	pw.Header("usimrank_uptime_seconds", "gauge", "Seconds since the server process started.")
	pw.Float("usimrank_uptime_seconds", nil, time.Since(s.start).Seconds())

	pw.Header("usimrank_graph_generation", "gauge", "Generation of the resident graph (bumps on reload and incremental update).")
	pw.Uint("usimrank_graph_generation", nil, h.gen)
	pw.Header("usimrank_graph_vertices", "gauge", "Vertex count of the resident graph.")
	pw.Int("usimrank_graph_vertices", nil, int64(h.graph.NumVertices()))
	pw.Header("usimrank_graph_arcs", "gauge", "Arc count of the resident graph.")
	pw.Int("usimrank_graph_arcs", nil, int64(h.graph.NumArcs()))
	pw.Header("usimrank_graph_reloads_total", "counter", "Completed hot reloads.")
	pw.Uint("usimrank_graph_reloads_total", nil, s.reloads.Load())
	pw.Header("usimrank_graph_updates_total", "counter", "Completed incremental update batches.")
	pw.Uint("usimrank_graph_updates_total", nil, s.updates.Load())
	pw.Header("usimrank_graph_arcs_updated_total", "counter", "Arc mutations applied by incremental updates.")
	pw.Uint("usimrank_graph_arcs_updated_total", nil, s.arcsUpdated.Load())

	ss := s.subs.Snapshot()
	pw.Header("usimrank_subscriptions_active", "gauge", "Open /v1/subscribe streams.")
	pw.Int("usimrank_subscriptions_active", nil, ss.Active)
	pw.Header("usimrank_sub_wakeups_total", "counter", "Subscriptions woken by admin mutations (clean-to-dirty transitions).")
	pw.Uint("usimrank_sub_wakeups_total", nil, ss.Wakeups)
	pw.Header("usimrank_sub_pushes_total", "counter", "Update events pushed to subscribers (snapshots excluded).")
	pw.Uint("usimrank_sub_pushes_total", nil, ss.Pushes)
	pw.Header("usimrank_sub_coalesced_total", "counter", "Subscription wake-ups folded into an already-pending push.")
	pw.Uint("usimrank_sub_coalesced_total", nil, ss.Coalesced)
	pw.Header("usimrank_sub_dropped_total", "counter", "Subscription streams torn down by a failed push.")
	pw.Uint("usimrank_sub_dropped_total", nil, ss.Dropped)

	rcLen, rcEvict := h.eng.RowCacheStats()
	rcHits, rcMisses, _ := h.eng.RowCacheCounters()
	pw.Header("usimrank_row_cache_entries", "gauge", "Exact-row LRU cache occupancy.")
	pw.Int("usimrank_row_cache_entries", nil, int64(rcLen))
	pw.Header("usimrank_row_cache_capacity", "gauge", "Exact-row LRU cache capacity.")
	pw.Int("usimrank_row_cache_capacity", nil, int64(h.eng.Options().RowCacheSize))
	pw.Header("usimrank_row_cache_hits_total", "counter", "Exact-row cache lookup hits.")
	pw.Uint("usimrank_row_cache_hits_total", nil, rcHits)
	pw.Header("usimrank_row_cache_misses_total", "counter", "Exact-row cache lookup misses.")
	pw.Uint("usimrank_row_cache_misses_total", nil, rcMisses)
	pw.Header("usimrank_row_cache_evictions_total", "counter", "Exact-row cache evictions.")
	pw.Uint("usimrank_row_cache_evictions_total", nil, rcEvict)

	ks := h.eng.KernelStats()
	pw.Header("usimrank_kernel_walks_total", "counter", "Random walks sampled across all Monte Carlo kernels.")
	pw.Uint("usimrank_kernel_walks_total", nil, ks.Walks)
	pw.Header("usimrank_kernel_arcs_instantiated_total", "counter", "Possible-world arc instantiations recorded by the v2 kernel.")
	pw.Uint("usimrank_kernel_arcs_instantiated_total", nil, ks.ArcsInstantiated)
	pw.Header("usimrank_kernel_arena_high_water_bytes", "gauge", "Largest v2 walk-arena footprint observed.")
	pw.Uint("usimrank_kernel_arena_high_water_bytes", nil, ks.ArenaHighWaterBytes)
	pw.Header("usimrank_kernel_scratch_gets_total", "counter", "v2 scratch buffer pool checkouts.")
	pw.Uint("usimrank_kernel_scratch_gets_total", nil, ks.ScratchGets)
	pw.Header("usimrank_kernel_scratch_misses_total", "counter", "v2 scratch checkouts that had to build a fresh buffer.")
	pw.Uint("usimrank_kernel_scratch_misses_total", nil, ks.ScratchMisses)

	if h.idx != nil {
		pw.Header("usimrank_index_queries_total", "counter", "Queries answered through the reverse-walk index.")
		pw.Uint("usimrank_index_queries_total", nil, s.indexQueries.Load())
		pw.Header("usimrank_index_rows_probed_total", "counter", "Index occupancy rows probed.")
		pw.Uint("usimrank_index_rows_probed_total", nil, s.indexRowsProbed.Load())
		pw.Header("usimrank_index_residual_walks_total", "counter", "Source-side residual walks sampled for indexed queries.")
		pw.Uint("usimrank_index_residual_walks_total", nil, s.indexResidualWalks.Load())
		pw.Header("usimrank_index_rows_patched_total", "counter", "Index rows recomputed by incremental update patching.")
		pw.Uint("usimrank_index_rows_patched_total", nil, s.indexRowsPatched.Load())
		pw.Header("usimrank_index_generation", "gauge", "Graph generation the resident index was built at.")
		pw.Uint("usimrank_index_generation", nil, h.idx.Generation())
		pw.Header("usimrank_index_depth", "gauge", "Deepest step the resident index covers.")
		pw.Int("usimrank_index_depth", nil, int64(h.idx.Depth()))
		pw.Header("usimrank_index_samples", "gauge", "Walk count per vertex the resident index was built from.")
		pw.Int("usimrank_index_samples", nil, int64(h.idx.Samples()))
	}

	obs.WriteRuntimeMetrics(pw)
}

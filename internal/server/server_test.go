package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"usimrank"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

// testGraph is small enough that -race runs stay fast but large enough
// that sampling splits into several chunks.
func testGraph() *usimrank.Graph {
	return gen.WithUniformProbs(gen.RMAT(6, 256, 0.45, 0.22, 0.22, rng.New(3)), 0.2, 0.9, rng.New(4))
}

// writeGraphFile serialises g to a temp file and returns its path.
func writeGraphFile(t *testing.T, g *usimrank.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.ug")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := usimrank.WriteText(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func testOptions() usimrank.Options {
	return usimrank.Options{N: 400, Seed: 7, Parallelism: 4}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(testGraph(), "test://rmat6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// callE issues method path with a JSON body and decodes the JSON
// response into out, returning the HTTP status. Safe to use from any
// goroutine (no testing.T calls).
func callE(h http.Handler, method, path string, body, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			return rec.Code, fmt.Errorf("%s %s: bad JSON response %q: %w", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code, nil
}

// call is callE for the test goroutine: decode failures are fatal.
func call(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	code, err := callE(h, method, path, body, out)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// TestEndpointsMatchEngine drives every query endpoint and pins the
// responses to direct engine calls — the HTTP plane must be a
// transport, never a different computation.
func TestEndpointsMatchEngine(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	ref, err := usimrank.New(testGraph(), testOptions())
	if err != nil {
		t.Fatal(err)
	}

	var score ScoreResponse
	if code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: 3, V: 17}, &score); code != 200 {
		t.Fatalf("/v1/score status %d", code)
	}
	want, err := ref.SRSP(3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if score.Score != want {
		t.Fatalf("/v1/score = %v, engine = %v", score.Score, want)
	}

	var source SourceResponse
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "twophase", U: 5}, &source); code != 200 {
		t.Fatalf("/v1/source status %d", code)
	}
	wantSS, err := ref.SingleSource(usimrank.AlgTwoPhase, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(source.Scores) != len(wantSS) {
		t.Fatalf("/v1/source returned %d scores, want %d", len(source.Scores), len(wantSS))
	}
	for v := range wantSS {
		if source.Scores[v] != wantSS[v] {
			t.Fatalf("/v1/source[%d] = %v, engine = %v", v, source.Scores[v], wantSS[v])
		}
	}

	var sourceSub SourceResponse
	cands := []int{1, 9, 33}
	if code := call(t, s, "POST", "/v1/source", SourceRequest{Alg: "sampling", U: 2, Candidates: cands}, &sourceSub); code != 200 {
		t.Fatalf("/v1/source (candidates) status %d", code)
	}
	wantSub, err := ref.SingleSourceAgainst(usimrank.AlgSampling, 2, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSub {
		if sourceSub.Scores[i] != wantSub[i] {
			t.Fatalf("/v1/source candidates[%d] = %v, engine = %v", i, sourceSub.Scores[i], wantSub[i])
		}
	}

	u := 3
	var topk TopKResponse
	if code := call(t, s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", U: &u, K: 5}, &topk); code != 200 {
		t.Fatalf("/v1/topk status %d", code)
	}
	wantTK, err := usimrank.TopKSimilar(ref, usimrank.AlgSRSP, u, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.Results) != len(wantTK) {
		t.Fatalf("/v1/topk returned %d results, want %d", len(topk.Results), len(wantTK))
	}
	for i, r := range wantTK {
		got := topk.Results[i]
		if got.U != r.U || got.V != r.V || got.Score != r.Score {
			t.Fatalf("/v1/topk[%d] = %+v, engine = %+v", i, got, r)
		}
	}

	var pairsResp TopKResponse
	if code := call(t, s, "POST", "/v1/topk", TopKRequest{Alg: "sampling", K: 3}, &pairsResp); code != 200 {
		t.Fatalf("/v1/topk (pairs) status %d", code)
	}
	wantPairs, err := usimrank.TopKPairs(ref, usimrank.AlgSampling, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range wantPairs {
		got := pairsResp.Results[i]
		if got.U != r.U || got.V != r.V || got.Score != r.Score {
			t.Fatalf("/v1/topk pairs[%d] = %+v, engine = %+v", i, got, r)
		}
	}

	var batch BatchResponse
	pairs := [][2]int{{0, 1}, {0, 2}, {7, 9}, {0, 1}}
	if code := call(t, s, "POST", "/v1/batch", BatchRequest{Alg: "srsp", Pairs: pairs}, &batch); code != 200 {
		t.Fatalf("/v1/batch status %d", code)
	}
	wantBatch := usimrank.Batch(ref, usimrank.AlgSRSP, pairs, 0)
	for i, r := range wantBatch {
		got := batch.Results[i]
		if got.U != r.U || got.V != r.V || got.Score != r.Value || got.Error != "" {
			t.Fatalf("/v1/batch[%d] = %+v, engine = %+v", i, got, r)
		}
	}

	var stats StatsResponse
	if code := call(t, s, "GET", "/v1/stats", nil, &stats); code != 200 {
		t.Fatalf("/v1/stats status %d", code)
	}
	if stats.Graph.Generation != 1 || stats.Graph.Vertices != testGraph().NumVertices() {
		t.Fatalf("stats graph = %+v", stats.Graph)
	}
	var total uint64
	for _, q := range stats.Queries {
		total += q.Count
	}
	if total < 6 {
		t.Fatalf("stats recorded %d queries, want >= 6", total)
	}
}

// TestValidationErrors exercises the 400 paths: unknown algorithm,
// out-of-range vertices, bad k, bad JSON, unknown route.
func TestValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	n := testGraph().NumVertices()
	cases := []struct {
		name string
		path string
		body any
		want int
		code string
	}{
		{"bad alg", "/v1/score", ScoreRequest{Alg: "pagerank", U: 0, V: 1}, 400, CodeBadRequest},
		{"u out of range", "/v1/score", ScoreRequest{Alg: "srsp", U: n, V: 1}, 400, CodeBadRequest},
		{"negative v", "/v1/score", ScoreRequest{Alg: "srsp", U: 0, V: -1}, 400, CodeBadRequest},
		{"bad source u", "/v1/source", SourceRequest{Alg: "srsp", U: -3}, 400, CodeBadRequest},
		{"bad candidate", "/v1/source", SourceRequest{Alg: "srsp", U: 0, Candidates: []int{n + 4}}, 400, CodeBadRequest},
		{"bad k", "/v1/topk", TopKRequest{Alg: "srsp", K: 0}, 400, CodeBadRequest},
		{"empty batch", "/v1/batch", BatchRequest{Alg: "srsp"}, 400, CodeBadRequest},
		{"missing reload graph", "/v1/admin/reload", ReloadRequest{}, 400, CodeBadRequest},
		{"reload bad path", "/v1/admin/reload", ReloadRequest{Graph: "/nonexistent/graph.ug"}, 400, CodeBadRequest},
	}
	for _, tc := range cases {
		var errResp ErrorResponse
		if code := call(t, s, "POST", tc.path, tc.body, &errResp); code != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.want)
		}
		if errResp.Error.Code != tc.code {
			t.Fatalf("%s: error code %q, want %q", tc.name, errResp.Error.Code, tc.code)
		}
	}
	// Batch reports out-of-range pairs per-pair, not as request errors.
	var batch BatchResponse
	if code := call(t, s, "POST", "/v1/batch", BatchRequest{Alg: "srsp", Pairs: [][2]int{{0, 1}, {0, n + 1}}}, &batch); code != 200 {
		t.Fatalf("batch with one bad pair: status %d", code)
	}
	if batch.Results[0].Error != "" || batch.Results[1].Error == "" {
		t.Fatalf("batch per-pair errors = %+v", batch.Results)
	}
	// Unknown route and bad JSON.
	var errResp ErrorResponse
	if code := call(t, s, "GET", "/v1/nope", nil, &errResp); code != 404 || errResp.Error.Code != CodeNotFound {
		t.Fatalf("unknown route: status %d code %q", code, errResp.Error.Code)
	}
	req := httptest.NewRequest("POST", "/v1/score", bytes.NewBufferString("{not json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("bad JSON: status %d", rec.Code)
	}
}

// TestAdmissionControl: with every slot occupied and no admission
// grace, a query is rejected with 429 instead of queuing.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions(), MaxInFlight: 1, AdmissionWait: -1})
	// Occupy the single slot out-of-band.
	if !s.adm.Acquire(t.Context()) {
		t.Fatal("could not occupy the only slot")
	}
	defer s.adm.Release()
	var errResp ErrorResponse
	if code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: 0, V: 1}, &errResp); code != 429 {
		t.Fatalf("saturated server: status %d, want 429", code)
	}
	if errResp.Error.Code != CodeOverloaded {
		t.Fatalf("error code %q, want %q", errResp.Error.Code, CodeOverloaded)
	}
	var stats StatsResponse
	if code := call(t, s, "GET", "/v1/stats", nil, &stats); code != 200 {
		t.Fatalf("/v1/stats status %d", code)
	}
	if stats.Serving.AdmissionRejected < 1 {
		t.Fatalf("admission_rejected = %d, want >= 1", stats.Serving.AdmissionRejected)
	}
}

// TestDeadline: a heavy query under a 1ms deadline returns 504, counts
// a deadline expiry, and cancellation reclaims the sampling work.
func TestDeadline(t *testing.T) {
	opt := testOptions()
	opt.N = 2_000_000 // heavy enough that 1ms always expires first
	s := newTestServer(t, Config{Engine: opt})
	var errResp ErrorResponse
	code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "sampling", U: 0, V: 1, TimeoutMs: 1}, &errResp)
	if code != 504 {
		t.Fatalf("deadline query: status %d, want 504", code)
	}
	if errResp.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("error code %q, want %q", errResp.Error.Code, CodeDeadlineExceeded)
	}
	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Serving.DeadlineExceeded < 1 {
		t.Fatalf("deadline_exceeded = %d, want >= 1", stats.Serving.DeadlineExceeded)
	}
}

// TestReloadSwapsGraphs: a reload to a different graph changes scores
// to exactly what a fresh engine on that graph computes, and bumps the
// generation.
func TestReloadSwapsGraphs(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	g2 := gen.WithUniformProbs(gen.RMAT(6, 200, 0.4, 0.25, 0.25, rng.New(99)), 0.3, 0.8, rng.New(100))
	path := writeGraphFile(t, g2)

	var before ScoreResponse
	call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: 1, V: 2}, &before)

	var reload ReloadResponse
	if code := call(t, s, "POST", "/v1/admin/reload", ReloadRequest{Graph: path, Warm: true}, &reload); code != 200 {
		t.Fatalf("/v1/admin/reload status %d", code)
	}
	if reload.Generation != 2 || reload.Vertices != g2.NumVertices() || !reload.Drained {
		t.Fatalf("reload response %+v", reload)
	}

	ref2, err := usimrank.New(g2, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref2.SRSP(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var after ScoreResponse
	call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: 1, V: 2}, &after)
	if after.Score != want {
		t.Fatalf("post-reload score %v, want %v (old %v)", after.Score, want, before.Score)
	}
	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Graph.Generation != 2 || stats.Graph.Reloads != 1 {
		t.Fatalf("post-reload stats graph %+v", stats.Graph)
	}
}

// TestMixedLoadWithHotSwap is the acceptance load test: 32 concurrent
// clients issue mixed query shapes against one server while the graph
// is hot-swapped (to the same graph file, so expected values stay
// fixed). Every request must succeed and return exactly the sequential
// engine's value — proving no request ever observes a torn engine —
// and the coalescing layer must record hits.
func TestMixedLoadWithHotSwap(t *testing.T) {
	g := testGraph()
	path := writeGraphFile(t, g)
	opt := testOptions()
	s, err := New(g, path, Config{Engine: opt, MaxInFlight: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Reference values from an isolated engine.
	ref, err := usimrank.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	scorePairs := [][2]int{{0, 1}, {3, 17}, {40, 2}, {5, 5}}
	wantScore := make(map[[2]int]float64)
	for _, p := range scorePairs {
		v, err := ref.SRSP(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		wantScore[p] = v
	}
	wantSource, err := ref.SingleSource(usimrank.AlgSampling, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantTopK, err := usimrank.TopKSimilar(ref, usimrank.AlgSRSP, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	batchPairs := [][2]int{{0, 1}, {0, 2}, {9, 11}}
	wantBatch := usimrank.Batch(ref, usimrank.AlgTwoPhase, batchPairs, 0)

	const clients = 32
	const iters = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for it := 0; it < iters; it++ {
				switch (c + it) % 4 {
				case 0:
					p := scorePairs[(c+it)%len(scorePairs)]
					var resp ScoreResponse
					if code, err := callE(s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: p[0], V: p[1]}, &resp); err != nil || code != 200 {
						errCh <- fmt.Errorf("score status %d: %v", code, err)
						return
					}
					if resp.Score != wantScore[p] {
						errCh <- fmt.Errorf("score(%v) = %v, want %v", p, resp.Score, wantScore[p])
						return
					}
				case 1:
					var resp SourceResponse
					if code, err := callE(s, "POST", "/v1/source", SourceRequest{Alg: "sampling", U: 7}, &resp); err != nil || code != 200 {
						errCh <- fmt.Errorf("source status %d: %v", code, err)
						return
					}
					for v := range wantSource {
						if resp.Scores[v] != wantSource[v] {
							errCh <- fmt.Errorf("source[%d] = %v, want %v", v, resp.Scores[v], wantSource[v])
							return
						}
					}
				case 2:
					u := 3
					var resp TopKResponse
					if code, err := callE(s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", U: &u, K: 5}, &resp); err != nil || code != 200 {
						errCh <- fmt.Errorf("topk status %d: %v", code, err)
						return
					}
					for i, r := range wantTopK {
						got := resp.Results[i]
						if got.U != r.U || got.V != r.V || got.Score != r.Score {
							errCh <- fmt.Errorf("topk[%d] = %+v, want %+v", i, got, r)
							return
						}
					}
				case 3:
					var resp BatchResponse
					if code, err := callE(s, "POST", "/v1/batch", BatchRequest{Alg: "twophase", Pairs: batchPairs}, &resp); err != nil || code != 200 {
						errCh <- fmt.Errorf("batch status %d: %v", code, err)
						return
					}
					for i, r := range wantBatch {
						got := resp.Results[i]
						if got.Score != r.Value || got.Error != "" {
							errCh <- fmt.Errorf("batch[%d] = %+v, want %+v", i, got, r)
							return
						}
					}
				}
			}
		}(c)
	}

	close(start)
	// Two hot-swaps to the same graph file while the load runs: values
	// must stay bit-identical across generations because graph, options
	// and seed are unchanged — any divergence means a request saw a torn
	// engine.
	for i := 0; i < 2; i++ {
		var reload ReloadResponse
		if code := call(t, s, "POST", "/v1/admin/reload", ReloadRequest{Graph: path, Warm: i == 0}, &reload); code != 200 {
			t.Fatalf("reload %d under load: status %d", i, code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	var stats StatsResponse
	if code := call(t, s, "GET", "/v1/stats", nil, &stats); code != 200 {
		t.Fatalf("/v1/stats status %d", code)
	}
	if stats.Graph.Generation != 3 {
		t.Fatalf("generation = %d, want 3 after two reloads", stats.Graph.Generation)
	}
	if stats.Coalescing.Hits == 0 {
		t.Fatalf("coalescing hits = 0 under a load of %d identical concurrent queries", clients*iters)
	}
	var total uint64
	for _, q := range stats.Queries {
		total += q.Count
	}
	if total != clients*iters {
		t.Fatalf("recorded %d queries, want %d", total, clients*iters)
	}
}

// TestTopKSourcesValidation: the sources restriction rejects
// duplicates (they would skew the merged top-k) and rejects
// combination with "u".
func TestTopKSourcesValidation(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	if code := call(t, s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", K: 3, Sources: []int{1, 2, 1}}, nil); code != 400 {
		t.Fatalf("duplicate sources: status %d, want 400", code)
	}
	u := 1
	if code := call(t, s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", K: 3, U: &u, Sources: []int{2}}, nil); code != 400 {
		t.Fatalf("u+sources: status %d, want 400", code)
	}
	var resp TopKResponse
	if code := call(t, s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", K: 3, Sources: []int{1, 2, 5}}, &resp); code != 200 {
		t.Fatalf("valid sources: status %d", code)
	}
	if len(resp.Results) == 0 {
		t.Fatal("valid sources returned no results")
	}
}

package server

import (
	"sync/atomic"
	"time"

	"usimrank"
)

// engineHandle pins one engine (and the graph it was built from) for
// the lifetime of the requests using it. The server holds the current
// handle in an atomic pointer; a hot-swap publishes a new handle first
// and only then releases the old one, so:
//
//   - every request acquires exactly one handle and runs start to
//     finish against that engine — there is no observable state torn
//     between two graphs;
//   - the swap itself is wait-free for new requests (one atomic load
//     plus a refcount CAS);
//   - the old engine drains naturally: when the last pinned request
//     releases it, the drained channel closes and the reload reply can
//     report a clean handover.
type engineHandle struct {
	eng    *usimrank.Engine
	graph  *usimrank.Graph
	source string // file path (or descriptor) the graph was loaded from
	gen    uint64 // 1 for the boot engine, +1 per successful reload
	// idx is the reverse-walk index matching this handle's engine
	// generation, or nil when this generation serves without one. It
	// rides the handle's lifetime: a hot-swap that patches or replaces
	// the index publishes the successor in the next handle, and requests
	// pinned here keep probing this one until they finish.
	idx     *usimrank.Index
	builtAt time.Time

	// refs counts pinned users plus one reference owned by the server
	// while the handle is current. It can only grow while positive, so
	// once it reaches zero (the server dropped it and every request
	// finished) it stays zero and drained is closed exactly once.
	refs    atomic.Int64
	drained chan struct{}
}

func newEngineHandle(eng *usimrank.Engine, g *usimrank.Graph, source string, gen uint64, idx *usimrank.Index) *engineHandle {
	h := &engineHandle{
		eng:     eng,
		graph:   g,
		source:  source,
		gen:     gen,
		idx:     idx,
		builtAt: time.Now(),
		drained: make(chan struct{}),
	}
	h.refs.Store(1) // the server's ownership reference
	return h
}

// tryAcquire pins the handle for one request. It fails only when the
// handle has already fully drained (refs hit zero), which can happen
// if a swap raced the caller's atomic load; callers just reload the
// current pointer and retry.
func (h *engineHandle) tryAcquire() bool {
	for {
		n := h.refs.Load()
		if n <= 0 {
			return false
		}
		if h.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release unpins the handle; the final release closes drained.
func (h *engineHandle) release() {
	if h.refs.Add(-1) == 0 {
		close(h.drained)
	}
}

// awaitDrain blocks until every reference is gone or the timeout
// elapses, reporting which happened.
func (h *engineHandle) awaitDrain(timeout time.Duration) bool {
	select {
	case <-h.drained:
		return true
	default:
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-h.drained:
		return true
	case <-t.C:
		return false
	}
}

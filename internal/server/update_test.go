package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"usimrank"
)

// firstArc returns some potential arc (u, v, p) of g.
func firstArc(t *testing.T, g *usimrank.Graph) (int, int, float64) {
	t.Helper()
	for u := 0; u < g.NumVertices(); u++ {
		if out := g.Out(u); len(out) > 0 {
			return u, int(out[0]), g.OutProbs(u)[0]
		}
	}
	t.Fatal("graph has no arcs")
	return 0, 0, 0
}

// TestUpdateEndpointAppliesIncrementally mutates one arc through the
// endpoint and pins the post-update responses to a from-scratch engine
// over the mutated graph, for every algorithm — the serving-plane face
// of the ApplyUpdates bit-identity invariant.
func TestUpdateEndpointAppliesIncrementally(t *testing.T) {
	g := testGraph()
	s := newTestServer(t, Config{Engine: testOptions()})
	u, v, _ := firstArc(t, g)

	// Warm the resident engine so the update actually exercises
	// carry-over, not just recompute.
	var warm ScoreResponse
	call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: u, V: v}, &warm)
	call(t, s, "POST", "/v1/score", ScoreRequest{Alg: "baseline", U: u, V: v}, &warm)

	ups := []ArcUpdateRequest{{Op: "reweight", U: u, V: v, P: 0.42}}
	var resp UpdateResponse
	if code := call(t, s, "POST", "/v1/admin/update", UpdateRequest{Updates: ups}, &resp); code != 200 {
		t.Fatalf("/v1/admin/update status %d", code)
	}
	if resp.Generation != 2 || resp.Applied != 1 || !resp.Drained {
		t.Fatalf("update response %+v", resp)
	}
	if !resp.FiltersPatched {
		t.Fatalf("warm SR-SP filters were not patched: %+v", resp)
	}

	mut, err := g.Apply([]usimrank.ArcUpdate{{Op: usimrank.OpReweight, U: u, V: v, P: 0.42}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := usimrank.New(mut, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"baseline", "sampling", "twophase", "srsp"} {
		a, err := usimrank.ParseAlgorithm(alg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Compute(a, u, v)
		if err != nil {
			t.Fatal(err)
		}
		var got ScoreResponse
		if code := call(t, s, "POST", "/v1/score", ScoreRequest{Alg: alg, U: u, V: v}, &got); code != 200 {
			t.Fatalf("post-update %s score status %d", alg, code)
		}
		if got.Score != want {
			t.Fatalf("post-update %s score %v, want rebuilt %v", alg, got.Score, want)
		}
	}

	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Graph.Generation != 2 || stats.Graph.Updates != 1 || stats.Graph.ArcsUpdated != 1 {
		t.Fatalf("post-update stats graph %+v", stats.Graph)
	}
}

func TestUpdateValidation(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions(), MaxUpdateBatch: 2})
	g := testGraph()
	u, v, _ := firstArc(t, g)

	cases := []struct {
		name string
		req  UpdateRequest
	}{
		{"empty batch", UpdateRequest{}},
		{"unknown op", UpdateRequest{Updates: []ArcUpdateRequest{{Op: "upsert", U: 0, V: 1, P: 0.5}}}},
		{"insert existing", UpdateRequest{Updates: []ArcUpdateRequest{{Op: "insert", U: u, V: v, P: 0.5}}}},
		{"bad probability", UpdateRequest{Updates: []ArcUpdateRequest{{Op: "reweight", U: u, V: v, P: 1.5}}}},
		{"oversized batch", UpdateRequest{Updates: []ArcUpdateRequest{
			{Op: "reweight", U: u, V: v, P: 0.5},
			{Op: "reweight", U: u, V: v, P: 0.6},
			{Op: "reweight", U: u, V: v, P: 0.7},
		}}},
	}
	for _, c := range cases {
		var errResp ErrorResponse
		if code := call(t, s, "POST", "/v1/admin/update", c.req, &errResp); code != 400 {
			t.Errorf("%s: status %d, want 400", c.name, code)
		}
		if errResp.Error.Code != CodeBadRequest {
			t.Errorf("%s: error code %q", c.name, errResp.Error.Code)
		}
	}
	// Rejected batches must leave the resident engine untouched.
	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Graph.Generation != 1 || stats.Graph.Updates != 0 {
		t.Fatalf("rejected updates mutated the server: %+v", stats.Graph)
	}
	// Malformed JSON body.
	req := httptest.NewRequest("POST", "/v1/admin/update", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("bad JSON body: status %d, want 400", rec.Code)
	}
}

func TestUpdatesDisabled(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions(), MaxUpdateBatch: -1})
	g := testGraph()
	u, v, _ := firstArc(t, g)
	var errResp ErrorResponse
	if code := call(t, s, "POST", "/v1/admin/update",
		UpdateRequest{Updates: []ArcUpdateRequest{{Op: "reweight", U: u, V: v, P: 0.5}}}, &errResp); code != 400 {
		t.Fatalf("disabled updates: status %d, want 400", code)
	}
	if errResp.Error.Code != CodeBadRequest {
		t.Fatalf("disabled updates: error %+v", errResp.Error)
	}
}

// TestMixedLoadWithUpdates is the dynamic-update acceptance load test:
// 32 concurrent clients issue mixed query shapes while arc updates land
// mid-flight. The update batches are net no-ops on the graph (an insert
// immediately undone by a delete), so the graph content is identical in
// every generation — yet each batch runs the full swap machinery
// (generation bump, handle swap, targeted invalidation, filter patch).
// Every response must therefore be bit-identical to the sequential
// reference engine: any divergence means a request observed a torn or
// stale-merged state. Runs under -race in CI.
func TestMixedLoadWithUpdates(t *testing.T) {
	g := testGraph()
	opt := testOptions()
	s, err := New(g, "test://rmat6", Config{Engine: opt, MaxInFlight: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ref, err := usimrank.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	scorePairs := [][2]int{{0, 1}, {3, 17}, {40, 2}, {5, 5}}
	wantScore := make(map[[2]int]float64)
	for _, p := range scorePairs {
		w, err := ref.SRSP(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		wantScore[p] = w
	}
	wantSource, err := ref.SingleSource(usimrank.AlgSampling, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantTopK, err := usimrank.TopKSimilar(ref, usimrank.AlgSRSP, 3, 5)
	if err != nil {
		t.Fatal(err)
	}

	// A vertex pair with no arc in either direction, for the no-op
	// insert+delete batches.
	freeU, freeV := -1, -1
	for u := 0; u < g.NumVertices() && freeU < 0; u++ {
		for v := 0; v < g.NumVertices(); v++ {
			if u != v && !g.HasArc(u, v) {
				freeU, freeV = u, v
				break
			}
		}
	}
	if freeU < 0 {
		t.Fatal("graph is complete; no free arc slot")
	}

	const clients = 32
	const iters = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for it := 0; it < iters; it++ {
				switch (c + it) % 3 {
				case 0:
					p := scorePairs[(c+it)%len(scorePairs)]
					var resp ScoreResponse
					if code, err := callE(s, "POST", "/v1/score", ScoreRequest{Alg: "srsp", U: p[0], V: p[1]}, &resp); err != nil || code != 200 {
						errCh <- fmt.Errorf("score status %d: %v", code, err)
						return
					}
					if resp.Score != wantScore[p] {
						errCh <- fmt.Errorf("score(%v) = %v, want %v", p, resp.Score, wantScore[p])
						return
					}
				case 1:
					var resp SourceResponse
					if code, err := callE(s, "POST", "/v1/source", SourceRequest{Alg: "sampling", U: 7}, &resp); err != nil || code != 200 {
						errCh <- fmt.Errorf("source status %d: %v", code, err)
						return
					}
					for v := range wantSource {
						if resp.Scores[v] != wantSource[v] {
							errCh <- fmt.Errorf("source[%d] = %v, want %v", v, resp.Scores[v], wantSource[v])
							return
						}
					}
				case 2:
					u := 3
					var resp TopKResponse
					if code, err := callE(s, "POST", "/v1/topk", TopKRequest{Alg: "srsp", U: &u, K: 5}, &resp); err != nil || code != 200 {
						errCh <- fmt.Errorf("topk status %d: %v", code, err)
						return
					}
					for i, r := range wantTopK {
						got := resp.Results[i]
						if got.U != r.U || got.V != r.V || got.Score != r.Score {
							errCh <- fmt.Errorf("topk[%d] = %+v, want %+v", i, got, r)
							return
						}
					}
				}
			}
		}(c)
	}

	close(start)
	const batches = 3
	for i := 0; i < batches; i++ {
		var resp UpdateResponse
		req := UpdateRequest{Updates: []ArcUpdateRequest{
			{Op: "insert", U: freeU, V: freeV, P: 0.5},
			{Op: "delete", U: freeU, V: freeV},
		}}
		if code := call(t, s, "POST", "/v1/admin/update", req, &resp); code != 200 {
			t.Fatalf("update %d under load: status %d", i, code)
		}
		if resp.Arcs != g.NumArcs() {
			t.Fatalf("net no-op batch changed arc count: %d vs %d", resp.Arcs, g.NumArcs())
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	var stats StatsResponse
	call(t, s, "GET", "/v1/stats", nil, &stats)
	if stats.Graph.Generation != 1+batches || stats.Graph.Updates != batches {
		t.Fatalf("post-load stats graph %+v", stats.Graph)
	}
}

// TestHandlerAndWarmFilters covers the mount-and-warm path usimd boots
// through: Handler serves the same mux, WarmFilters pre-builds pools.
func TestHandlerAndWarmFilters(t *testing.T) {
	s := newTestServer(t, Config{Engine: testOptions()})
	s.WarmFilters()
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz via Handler: %d %q", rec.Code, rec.Body.String())
	}
}

// Package dusim implements the paper's SimRank-III baseline: the
// probabilistic SimRank of Du et al. ("Probabilistic SimRank computation
// over uncertain graphs", Information Sciences 295, 2015), characterised
// in Sec. IV and Sec. VIII of the paper by its defining assumption
//
//	W(k) = (W(1))^k for all k ≥ 1,
//
// i.e. the k-step transition matrix of the uncertain graph is taken to be
// the k-th power of the exact expected one-step matrix. The paper proves
// this is inconsistent with the possible-world model whenever walks can
// revisit a vertex (the transitions out of a vertex are then correlated
// across steps); this package exists so the bias is measurable.
package dusim

import (
	"fmt"

	"usimrank/internal/matrix"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

// Rows returns the Du-et-al k-step rows for k = 0..K: powers of the
// exact expected one-step matrix of the *reversed* graph applied to the
// unit vector at src.
func Rows(g *ugraph.Graph, src, K int) []matrix.Vec {
	if src < 0 || src >= g.NumVertices() {
		panic(fmt.Sprintf("dusim: source %d out of range [0,%d)", src, g.NumVertices()))
	}
	w1 := walkpr.ExpectedOneStep(g.Reverse())
	rows := make([]matrix.Vec, K+1)
	rows[0] = matrix.Unit(int32(src))
	var ws matrix.Workspace
	for k := 1; k <= K; k++ {
		rows[k] = w1.LeftMul(&ws, rows[k-1])
	}
	return rows
}

// SinglePair computes the n-th SimRank iterate under the W(k) = W(1)^k
// assumption, combined exactly as in Definition 1 so that any difference
// from core.Engine.Baseline is attributable to the assumption alone.
func SinglePair(g *ugraph.Graph, u, v int, c float64, n int) float64 {
	if u < 0 || u >= g.NumVertices() || v < 0 || v >= g.NumVertices() {
		panic(fmt.Sprintf("dusim: pair (%d,%d) out of range [0,%d)", u, v, g.NumVertices()))
	}
	if !(c > 0 && c < 1) {
		panic(fmt.Sprintf("dusim: decay factor %v outside (0,1)", c))
	}
	if n < 0 {
		panic(fmt.Sprintf("dusim: negative iteration count %d", n))
	}
	ru := Rows(g, u, n)
	rv := Rows(g, v, n)
	m := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		m[k] = ru[k].Dot(rv[k])
	}
	s := 1.0
	for i := 0; i < n; i++ {
		s *= c
	}
	s *= m[n]
	ck := 1.0
	for k := 0; k < n; k++ {
		s += (1 - c) * ck * m[k]
		ck *= c
	}
	return s
}

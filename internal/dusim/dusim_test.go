package dusim

import (
	"math"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/detsim"
	"usimrank/internal/ugraph"
)

const eps = 1e-9

// TestMatchesExactOnHighGirthGraph: when no walk of length ≤ n can
// revisit a vertex, W(k) = W(1)^k genuinely holds and the Du-et-al
// baseline agrees with the possible-world-exact value.
func TestMatchesExactOnHighGirthGraph(t *testing.T) {
	// A DAG: revisits impossible at any length.
	b := ugraph.NewBuilder(6)
	b.AddArc(0, 2, 0.7)
	b.AddArc(1, 2, 0.5)
	b.AddArc(2, 3, 0.9)
	b.AddArc(2, 4, 0.4)
	b.AddArc(3, 5, 0.8)
	b.AddArc(4, 5, 0.6)
	g := b.MustBuild()

	e, err := core.NewEngine(g, core.Options{C: 0.6, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 6; u++ {
		for v := u; v < 6; v++ {
			want, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			got := SinglePair(g, u, v, 0.6, 4)
			if math.Abs(got-want) > eps {
				t.Fatalf("s(%d,%d): du %v vs exact %v", u, v, got, want)
			}
		}
	}
}

// TestDiffersOnCyclicGraph reproduces the paper's critique: on a graph
// where walks revisit vertices, the W(k) = W(1)^k assumption produces a
// different (wrong) similarity.
func TestDiffersOnCyclicGraph(t *testing.T) {
	b := ugraph.NewBuilder(3)
	b.AddArc(0, 1, 0.5)
	b.AddArc(1, 0, 0.5)
	b.AddArc(0, 0, 0.5)
	b.AddArc(2, 0, 0.8)
	b.AddArc(1, 2, 0.7)
	g := b.MustBuild()

	e, err := core.NewEngine(g, core.Options{C: 0.6, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for u := 0; u < 3; u++ {
		for v := u; v < 3; v++ {
			exact, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			du := SinglePair(g, u, v, 0.6, 5)
			if d := math.Abs(exact - du); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff < 1e-4 {
		t.Fatalf("Du baseline suspiciously equals the exact measure (max diff %v)", maxDiff)
	}
}

// TestCertainGraphEqualsDeterministic: with all probabilities 1 the
// expected one-step matrix is the ordinary transition matrix and powers
// are exact, so Du's method equals deterministic SimRank.
func TestCertainGraphEqualsDeterministic(t *testing.T) {
	b := ugraph.NewBuilder(4)
	for _, a := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		b.AddArc(a[0], a[1], 1)
	}
	g := b.MustBuild()
	sk := g.Skeleton()
	for u := 0; u < 4; u++ {
		for v := u; v < 4; v++ {
			want := detsim.SinglePair(sk, u, v, 0.6, 5)
			got := SinglePair(g, u, v, 0.6, 5)
			if math.Abs(got-want) > eps {
				t.Fatalf("s(%d,%d): du %v vs detsim %v", u, v, got, want)
			}
		}
	}
}

func TestRowsSubstochastic(t *testing.T) {
	g := ugraph.PaperFig1()
	rows := Rows(g, 0, 5)
	for k, row := range rows {
		if s := row.Sum(); s > 1+eps || s < -eps {
			t.Fatalf("row %d sums to %v", k, s)
		}
	}
	if rows[0].At(0) != 1 || rows[0].Len() != 1 {
		t.Fatal("row 0 not the unit vector")
	}
}

func TestSymmetryAndRange(t *testing.T) {
	g := ugraph.PaperFig1()
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			suv := SinglePair(g, u, v, 0.6, 5)
			svu := SinglePair(g, v, u, 0.6, 5)
			if math.Abs(suv-svu) > eps {
				t.Fatalf("not symmetric at (%d,%d)", u, v)
			}
			if suv < -eps || suv > 1+eps {
				t.Fatalf("s(%d,%d) = %v", u, v, suv)
			}
		}
	}
}

func TestValidationPanics(t *testing.T) {
	g := ugraph.PaperFig1()
	for _, f := range []func(){
		func() { SinglePair(g, -1, 0, 0.6, 3) },
		func() { SinglePair(g, 0, 99, 0.6, 3) },
		func() { SinglePair(g, 0, 1, 0, 3) },
		func() { SinglePair(g, 0, 1, 0.6, -2) },
		func() { Rows(g, -1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad arguments accepted")
				}
			}()
			f()
		}()
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"usimrank/internal/rng"
)

const eps = 1e-12

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-2) > eps { // classic textbook sample
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > eps {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	if got := Quantile([]float64{5, 1, 3, 2, 4}, 0.5); got != 3 {
		t.Fatalf("median of unsorted = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad quantile arguments accepted")
				}
			}()
			f()
		}()
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	l := FitLinear(x, y)
	if math.Abs(l.Slope-2) > eps || math.Abs(l.Intercept-1) > eps || math.Abs(l.R2-1) > eps {
		t.Fatalf("fit %+v", l)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := rng.New(9)
	var x, y []float64
	for i := 0; i < 2000; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 5+0.5*xi+r.NormFloat64())
	}
	l := FitLinear(x, y)
	if math.Abs(l.Slope-0.5) > 0.01 {
		t.Fatalf("slope %v", l.Slope)
	}
	if l.R2 < 0.99 {
		t.Fatalf("R2 %v", l.R2)
	}
}

func TestFitLinearConstantY(t *testing.T) {
	l := FitLinear([]float64{1, 2, 3}, []float64{7, 7, 7})
	if l.Slope != 0 || l.Intercept != 7 || l.R2 != 1 {
		t.Fatalf("fit %+v", l)
	}
}

func TestFitLinearPanics(t *testing.T) {
	for _, f := range []func(){
		func() { FitLinear([]float64{1}, []float64{1}) },
		func() { FitLinear([]float64{1, 2}, []float64{1}) },
		func() { FitLinear([]float64{3, 3}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad fit arguments accepted")
				}
			}()
			f()
		}()
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.05, 0.15, 0.15, 0.95, -1, 2}
	counts := Histogram(xs, 0, 1, 10)
	if counts[0] != 2 { // 0.05 and the clamped -1
		t.Fatalf("bucket 0 = %d", counts[0])
	}
	if counts[1] != 2 {
		t.Fatalf("bucket 1 = %d", counts[1])
	}
	if counts[9] != 2 { // 0.95 and the clamped 2
		t.Fatalf("bucket 9 = %d", counts[9])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram drops values: %d of %d", total, len(xs))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Histogram(nil, 0, 1, 0) },
		func() { Histogram(nil, 1, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad histogram arguments accepted")
				}
			}()
			f()
		}()
	}
}

func TestPearsonRSigns(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	up := []float64{2, 4, 6, 8}
	down := []float64{8, 6, 4, 2}
	if r := PearsonR(x, up); math.Abs(r-1) > eps {
		t.Fatalf("r = %v", r)
	}
	if r := PearsonR(x, down); math.Abs(r+1) > eps {
		t.Fatalf("r = %v", r)
	}
}

// Property: mean lies between min and max; std is non-negative.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-eps && s.Mean <= s.Max+eps && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fitting y = a + b·x recovers a and b exactly.
func TestQuickFitRecovers(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := r.Float64()*10 - 5
		b := r.Float64()*10 - 5
		var x, y []float64
		for i := 0; i < 10; i++ {
			xi := float64(i) + r.Float64()
			x = append(x, xi)
			y = append(y, a+b*xi)
		}
		l := FitLinear(x, y)
		return math.Abs(l.Slope-b) < 1e-9 && math.Abs(l.Intercept-a) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package stats

import (
	"math"
	"testing"
)

func TestHoeffdingRadius(t *testing.T) {
	// Closed form at friendly values.
	got := HoeffdingRadius(1, 200, 0.05)
	want := math.Sqrt(math.Log(2/0.05) / 400)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("HoeffdingRadius(1,200,0.05) = %v, want %v", got, want)
	}
	// Scales linearly with the range.
	if r := HoeffdingRadius(0.5, 200, 0.05); math.Abs(r-want/2) > 1e-15 {
		t.Fatalf("range scaling: got %v, want %v", r, want/2)
	}
	// Shrinks with n, grows as delta shrinks.
	if HoeffdingRadius(1, 800, 0.05) >= got {
		t.Fatal("radius did not shrink with more samples")
	}
	if HoeffdingRadius(1, 200, 0.001) <= got {
		t.Fatal("radius did not grow with tighter delta")
	}
	if r := HoeffdingRadius(1, 0, 0.05); !math.IsInf(r, 1) {
		t.Fatalf("n=0 radius = %v, want +Inf", r)
	}
}

func TestBernsteinRadius(t *testing.T) {
	ln := math.Log(3 / 0.05)
	got := BernsteinRadius(0.01, 1, 1000, 0.05)
	want := math.Sqrt(2*0.01*ln/1000) + 3*ln/1000
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("BernsteinRadius = %v, want %v", got, want)
	}
	// Zero-variance samples leave only the range term.
	if r := BernsteinRadius(0, 1, 1000, 0.05); math.Abs(r-3*ln/1000) > 1e-15 {
		t.Fatalf("zero-variance radius = %v, want %v", r, 3*ln/1000)
	}
	// Negative variance (FP cancellation upstream) is clamped, not NaN.
	if r := BernsteinRadius(-1e-18, 1, 1000, 0.05); math.IsNaN(r) {
		t.Fatal("negative variance produced NaN")
	}
	if r := BernsteinRadius(0.01, 1, 0, 0.05); !math.IsInf(r, 1) {
		t.Fatalf("n=0 radius = %v, want +Inf", r)
	}
	// On a low-variance sample Bernstein beats Hoeffding — the whole
	// point of the empirical bound.
	if BernsteinRadius(0.001, 1, 10000, 0.05) >= HoeffdingRadius(1, 10000, 0.05) {
		t.Fatal("Bernstein not tighter than Hoeffding on low variance")
	}
}

func TestHoeffdingSamples(t *testing.T) {
	// Inverse relation: at the returned n the radius is within eps.
	for _, tc := range []struct{ b, eps, delta float64 }{
		{1, 0.05, 0.05},
		{0.6, 0.01, 0.001},
		{0.36, 0.1, 0.2},
	} {
		n := HoeffdingSamples(tc.b, tc.eps, tc.delta)
		if n < 1 {
			t.Fatalf("HoeffdingSamples(%v) = %d", tc, n)
		}
		if r := HoeffdingRadius(tc.b, n, tc.delta); r > tc.eps*(1+1e-12) {
			t.Fatalf("radius %v at n=%d exceeds eps %v", r, n, tc.eps)
		}
		// One fewer sample must not already satisfy the bound (ceil is
		// tight), except when n == 1.
		if n > 1 {
			if r := HoeffdingRadius(tc.b, n-1, tc.delta); r <= tc.eps {
				t.Fatalf("n=%d not minimal: radius %v at n-1 already ≤ %v", n, r, tc.eps)
			}
		}
	}
	if HoeffdingSamples(1, 0, 0.05) != 0 || HoeffdingSamples(0, 0.1, 0.05) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
	// Absurdly tight budgets clamp instead of overflowing int.
	if n := HoeffdingSamples(1, 1e-12, 1e-12); n != 1<<40 {
		t.Fatalf("clamp: got %d", n)
	}
}

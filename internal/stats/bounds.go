// Concentration bounds for the adaptive (ε, δ) stopping rule. The
// progressive estimator averages i.i.d. per-walk-pair scores X_i in
// [0, b] (b is the coefficient mass of the truncated SimRank series,
// Eq. 12: 1 for a fully sampled query, c^(l+1) when an exact prefix of
// depth l is subtracted first) and stops once a confidence radius drops
// below the requested ε. Two radii are available; the tight one wins:
//
//   - Hoeffding (the paper's Eq. 14 bound, rearranged for a fixed n):
//     range-only, best for tiny samples or near-worst-case variance.
//   - Empirical Bernstein (Audibert–Munos–Szepesvári 2009, Thm 1):
//     uses the observed sample variance, so low-variance (easy) queries
//     stop after far fewer walks than the range bound allows.
//
// Both are two-sided: P(|mean − E[X]| ≥ radius) ≤ δ.
package stats

import "math"

// HoeffdingRadius returns the two-sided Hoeffding confidence radius
// b·sqrt(ln(2/δ) / (2n)) for the mean of n samples in [0, b]. It
// returns +Inf when n is zero so callers can take min() fearlessly.
func HoeffdingRadius(b float64, n int, delta float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return b * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// BernsteinRadius returns the two-sided empirical-Bernstein radius
//
//	sqrt(2·V̂·ln(3/δ) / n) + 3·b·ln(3/δ) / n
//
// for the mean of n samples in [0, b] with sample variance V̂. It
// returns +Inf when n is zero.
func BernsteinRadius(variance, b float64, n int, delta float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	if variance < 0 {
		variance = 0 // guard FP cancellation in the caller's V̂
	}
	ln := math.Log(3 / delta)
	return math.Sqrt(2*variance*ln/float64(n)) + 3*b*ln/float64(n)
}

// HoeffdingSamples inverts HoeffdingRadius: the number of samples in
// [0, b] guaranteeing radius ≤ eps at confidence 1−δ,
// ⌈b²·ln(2/δ) / (2ε²)⌉ — the fixed-N budget of the paper's Theorem 3
// analysis, used as the adaptive walk cap (beyond it even a worst-case
// variance sample has converged).
func HoeffdingSamples(b, eps, delta float64) int {
	if eps <= 0 || b <= 0 {
		return 0
	}
	n := math.Ceil(b * b * math.Log(2/delta) / (2 * eps * eps))
	if n > 1<<40 {
		return 1 << 40
	}
	return int(n)
}

// Package stats provides the small statistical toolkit used by the
// experiment harness and its tests: summary statistics, histograms, and
// ordinary least squares (which the scalability analysis of Fig. 12 uses
// to verify that execution time grows linearly with the edge count).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes a Summary. The standard deviation is the population
// form; an empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(len(xs)))
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation of the sorted sample. It panics on an empty sample or a
// q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Linear is a fitted line y = Intercept + Slope·x with its coefficient
// of determination.
type Linear struct {
	Slope, Intercept, R2 float64
}

// FitLinear computes the ordinary least squares fit of y on x. It panics
// when the lengths differ or fewer than two points are given.
func FitLinear(x, y []float64) Linear {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: need at least two points")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: degenerate x (no variance)")
	}
	l := Linear{Slope: sxy / sxx}
	l.Intercept = my - l.Slope*mx
	if syy == 0 {
		l.R2 = 1 // constant y fitted exactly
	} else {
		l.R2 = (sxy * sxy) / (sxx * syy)
	}
	return l
}

// Histogram counts xs into equal-width buckets over [lo, hi); values
// outside the range are clamped into the first/last bucket. It panics on
// a non-positive bucket count or an empty range.
func Histogram(xs []float64, lo, hi float64, buckets int) []int {
	if buckets <= 0 {
		panic("stats: non-positive bucket count")
	}
	if !(hi > lo) {
		panic("stats: empty histogram range")
	}
	counts := make([]int, buckets)
	width := (hi - lo) / float64(buckets)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	return counts
}

// PearsonR returns the Pearson correlation of x and y.
func PearsonR(x, y []float64) float64 {
	l := FitLinear(x, y)
	r := math.Sqrt(l.R2)
	if l.Slope < 0 {
		return -r
	}
	return r
}

// Package obs is the zero-dependency observability plane: request
// tracing, per-query execution profiles, and Prometheus text
// exposition, shared by the single-node server and the cluster
// coordinator.
//
// # Span model
//
// A Trace records one request's span tree against a single monotonic
// clock (time.Since of the trace's start), so span timestamps within a
// process are totally ordered and immune to wall-clock steps. Spans
// are identified by small sequential ids; each span carries a parent
// id, a name, start/duration, summed integer attributes (the channel
// for kernel resource counts: walks sampled, rows probed, residual
// walks, cache lookups), an optional error, and optionally a nested
// remote Profile returned by a downstream tier.
//
// Trace identity crosses process boundaries in the Usimrank-Trace
// header ("<trace-id>-<parent-span-hex>"): the coordinator forwards it
// on every scatter, hedged replica attempt, and admin fan-out request,
// and a shard node parses it so its spans nest under the coordinator's
// per-shard span. Response BODIES never change with tracing — a
// Profile appears inline only when the request itself set debug=true —
// which is how the cluster's byte-identity contract survives
// always-available tracing.
//
// # Zero overhead when disabled
//
// The disabled state is a nil *Trace and the zero Span. Every method
// on both is a no-op that performs no allocation, no lock, and no
// time.Now call; ContextWithSpan returns the context unchanged and
// SpanFromContext's miss path does not allocate (the key is a
// zero-size type). Instrumented code therefore calls Start/Add/End
// unconditionally, and a request with tracing unarmed (no trace
// header, no debug flag, no slow-query threshold) pays a few nil
// checks — pinned by an AllocsPerRun==0 test and by the bench-gate's
// tracing-overhead leg, so the v2 kernel's 0 allocs/op gate holds with
// the instrumentation compiled in.
//
// # Exposition
//
// PromWriter hand-rolls the Prometheus text format (0.0.4): HELP/TYPE
// headers, escaped label values, exact integer rendering for counters
// that exceed 2^53. WriteRuntimeMetrics adds the standard Go runtime
// gauges. The server and coordinator each mount it at GET /metrics.
package obs

package obs

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that propagates trace identity across
// the serving tiers: client → coordinator → shard node, and coordinator
// → node on the admin fan-out. Its value is
//
//	<trace-id>-<parent-span-id-hex>
//
// where <trace-id> is an opaque alphanumeric token (16 lowercase hex
// chars when minted here) and <parent-span-id-hex> is the sender's span
// under which the receiver's spans nest. A bare <trace-id> (no dash
// suffix) is accepted and means "no parent span". The header travels
// next to Usimrank-Generation and, like it, never touches response
// bodies — byte-identity of answers is independent of tracing.
const TraceHeader = "Usimrank-Trace"

// idState seeds trace-id generation; a splitmix64 sequence over a
// wall-clock-seeded counter gives collision-resistant ids without
// coordination. Trace ids appear only in headers, logs, and debug
// profiles — never in regular response bodies — so this randomness
// cannot perturb the determinism contract.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// NewTraceID mints a fresh 16-hex-char trace id.
func NewTraceID() string {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

// FormatTraceHeader renders the TraceHeader value announcing spanID as
// the parent for the receiver's spans.
func FormatTraceHeader(traceID string, spanID uint64) string {
	return traceID + "-" + strconv.FormatUint(spanID, 16)
}

// ParseTraceHeader splits a TraceHeader value into the trace id and the
// remote parent span id. ok is false for malformed values; callers then
// mint a fresh trace instead of failing the request — tracing is
// best-effort telemetry, never a correctness gate.
func ParseTraceHeader(h string) (traceID string, parentSpan uint64, ok bool) {
	h = strings.TrimSpace(h)
	if h == "" || len(h) > 128 {
		return "", 0, false
	}
	id, span := h, ""
	if i := strings.LastIndexByte(h, '-'); i >= 0 {
		id, span = h[:i], h[i+1:]
		if span == "" {
			return "", 0, false
		}
	}
	if id == "" {
		return "", 0, false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z') {
			return "", 0, false
		}
	}
	if span != "" {
		p, err := strconv.ParseUint(span, 16, 64)
		if err != nil {
			return "", 0, false
		}
		parentSpan = p
	}
	return id, parentSpan, true
}

// Trace records one request's span tree. A nil *Trace is the disabled
// state: every operation on it (and on the zero Span it hands out) is a
// no-op that allocates nothing — the property the AllocsPerRun test
// pins so that always-on instrumentation cannot break the v2 kernel's
// zero-allocation gate.
//
// A Trace is safe for concurrent use: the flight leader, coalesced
// followers, and hedged replica attempts all record into the same
// trace.
type Trace struct {
	id     string
	parent uint64 // remote parent span id carried in from TraceHeader
	start  time.Time

	mu     sync.Mutex
	nextID uint64
	spans  []spanRec
}

type spanRec struct {
	id     uint64
	parent uint64
	name   string
	start  time.Duration
	dur    time.Duration
	done   bool
	attrs  []attr
	errMsg string
	remote *Profile
}

type attr struct {
	key string
	val int64
}

// NewTrace starts a trace. An empty id mints a fresh one; a non-zero
// parentSpan (from a remote TraceHeader) becomes the parent of every
// span started directly on the trace, keeping cross-process span trees
// connected.
func NewTrace(id string, parentSpan uint64) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, parent: parentSpan, start: time.Now()}
}

// ID returns the trace id, "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a top-level span (parented at the remote parent span, if
// any). On a nil trace it returns the zero Span, on which every method
// is an allocation-free no-op.
func (t *Trace) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return t.newSpan(t.parent, name)
}

func (t *Trace) newSpan(parent uint64, name string) Span {
	at := time.Since(t.start)
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.spans = append(t.spans, spanRec{id: id, parent: parent, name: name, start: at})
	t.mu.Unlock()
	return Span{t: t, id: id}
}

// Span is a value handle on one recorded span. The zero Span is valid
// and disabled: Start returns another zero Span and Add/Error/End/
// AttachRemote do nothing, so instrumented code never branches on
// whether tracing is armed.
type Span struct {
	t  *Trace
	id uint64
}

// Enabled reports whether the span records anywhere. Use it only to
// skip work that is expensive even to prepare (e.g. decoding a remote
// profile); plain Start/Add/End calls are cheap enough unguarded.
func (s Span) Enabled() bool { return s.t != nil }

// ID returns the span id (0 for the zero Span).
func (s Span) ID() uint64 { return s.id }

// TraceID returns the owning trace's id, "" for the zero Span.
func (s Span) TraceID() string { return s.t.ID() }

// Start opens a child span.
func (s Span) Start(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.newSpan(s.id, name)
}

// Add accumulates an integer attribute on the span (repeated keys sum
// in the profile) — the channel for kernel resource counts: walks
// sampled, rows probed, residual walks, cache lookups.
func (s Span) Add(key string, v int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	r := &s.t.spans[s.id-1]
	r.attrs = append(r.attrs, attr{key: key, val: v})
	s.t.mu.Unlock()
}

// Error marks the span failed. Recording an error does not end the
// span.
func (s Span) Error(err error) {
	if s.t == nil || err == nil {
		return
	}
	msg := err.Error()
	s.t.mu.Lock()
	s.t.spans[s.id-1].errMsg = msg
	s.t.mu.Unlock()
}

// AttachRemote nests a profile returned by a downstream tier (a shard
// node's debug profile) under this span, keeping the cross-process span
// tree in one place.
func (s Span) AttachRemote(p *Profile) {
	if s.t == nil || p == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.id-1].remote = p
	s.t.mu.Unlock()
}

// End closes the span. Ending twice keeps the first duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	at := time.Since(s.t.start)
	s.t.mu.Lock()
	r := &s.t.spans[s.id-1]
	if !r.done {
		r.dur = at - r.start
		r.done = true
	}
	s.t.mu.Unlock()
}

// ctxKey is the context key for the ambient span. A zero-size type
// means the interface conversion in Value lookups never allocates.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the ambient span. A
// disabled span returns ctx unchanged, so the disabled path allocates
// nothing.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the ambient span, or the zero (disabled) Span
// when none is attached. The miss path performs no allocation.
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(ctxKey{}).(Span)
	return s
}

// Profile is the serializable snapshot of a trace: the span tree with
// durations, summed attributes, errors, and nested remote profiles.
// It appears in responses only when the request asked (debug=true) —
// regular responses never carry one, preserving byte-identity.
type Profile struct {
	TraceID string        `json:"trace_id"`
	Spans   []ProfileSpan `json:"spans,omitempty"`
}

// ProfileSpan is one span in a Profile. Parent 0 means the span is a
// root of this process's tree (or hangs off the remote parent named in
// the incoming trace header).
type ProfileSpan struct {
	ID      uint64           `json:"id"`
	Parent  uint64           `json:"parent,omitempty"`
	Name    string           `json:"name"`
	StartUs int64            `json:"start_us"`
	DurUs   int64            `json:"dur_us"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
	Error   string           `json:"error,omitempty"`
	Remote  *Profile         `json:"remote,omitempty"`
}

// Profile snapshots the trace. Spans still open are reported with their
// duration so far, so a slow-query log taken mid-request is still
// meaningful. Returns nil on a nil trace.
func (t *Trace) Profile() *Profile {
	if t == nil {
		return nil
	}
	now := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &Profile{TraceID: t.id, Spans: make([]ProfileSpan, len(t.spans))}
	for i := range t.spans {
		r := &t.spans[i]
		ps := ProfileSpan{
			ID:      r.id,
			Parent:  r.parent,
			Name:    r.name,
			StartUs: r.start.Microseconds(),
			DurUs:   r.dur.Microseconds(),
			Error:   r.errMsg,
			Remote:  r.remote,
		}
		if !r.done {
			ps.DurUs = (now - r.start).Microseconds()
		}
		if len(r.attrs) > 0 {
			ps.Attrs = make(map[string]int64, len(r.attrs))
			for _, a := range r.attrs {
				ps.Attrs[a.key] += a.val
			}
		}
		p.Spans[i] = ps
	}
	return p
}

// SpanLine renders the profile as one compact "name=<dur>us" sequence
// for plain-text slow-query log lines.
func (p *Profile) SpanLine() string {
	if p == nil || len(p.Spans) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range p.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%dus", s.Name, s.DurUs)
	}
	return b.String()
}

package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestDisabledPathAllocationFree pins the zero-overhead-when-disabled
// contract: every operation available to instrumented code — context
// lookup miss, span creation, attribute adds, error recording, ending,
// remote attachment, context re-attachment — must allocate nothing when
// tracing is off. This is what lets the serving path call the recorder
// unconditionally without breaking the v2 kernel's 0 allocs/op gate.
func TestDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	var nilTrace *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFromContext(ctx)
		child := sp.Start("kernel_sampling")
		child.Add("walks", 2048)
		child.Add("rows_probed", 128)
		child.Error(errDisabled)
		child.AttachRemote(nil)
		child.End()
		if ContextWithSpan(ctx, sp) != ctx {
			t.Fatal("disabled span must not derive a new context")
		}
		root := nilTrace.Start("root")
		root.Add("x", 1)
		root.End()
		_ = nilTrace.ID()
		_ = nilTrace.Profile()
		_ = sp.Enabled()
		_ = sp.TraceID()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates: %v allocs/op (want 0)", allocs)
	}
}

var errDisabled = errors.New("boom")

func TestTraceHeaderRoundTrip(t *testing.T) {
	id, span, ok := ParseTraceHeader(FormatTraceHeader("deadbeef01234567", 42))
	if !ok || id != "deadbeef01234567" || span != 42 {
		t.Fatalf("round trip: got (%q, %d, %v)", id, span, ok)
	}
	// A bare trace id is accepted with no parent span.
	id, span, ok = ParseTraceHeader("abc123")
	if !ok || id != "abc123" || span != 0 {
		t.Fatalf("bare id: got (%q, %d, %v)", id, span, ok)
	}
	// Whitespace is trimmed.
	if id, _, ok = ParseTraceHeader("  abc-1f  "); !ok || id != "abc" {
		t.Fatalf("trimmed: got (%q, %v)", id, ok)
	}
	for _, bad := range []string{
		"", "-", "-5", "abc-", "abc-xyz", "a b-1", "id/../x-1",
		strings.Repeat("a", 200),
	} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Fatalf("ParseTraceHeader(%q) accepted a malformed header", bad)
		}
	}
}

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex chars", id)
		}
		if _, _, ok := ParseTraceHeader(id + "-0"); !ok {
			t.Fatalf("trace id %q does not survive its own header codec", id)
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestSpanTreeProfile(t *testing.T) {
	tr := NewTrace("", 0)
	root := tr.Start("score")
	adm := root.Start("admission_wait")
	adm.End()
	eng := root.Start("engine_compute")
	kern := eng.Start("kernel_sampling")
	kern.Add("walks", 1000)
	kern.Add("walks", 24) // repeated keys sum
	kern.Add("arcs", 7)
	kern.Error(errors.New("deadline"))
	kern.AttachRemote(&Profile{TraceID: "remote1"})
	kern.End()
	eng.End()
	root.End()

	p := tr.Profile()
	if p.TraceID != tr.ID() || len(p.Spans) != 4 {
		t.Fatalf("profile: id=%q spans=%d", p.TraceID, len(p.Spans))
	}
	byName := map[string]ProfileSpan{}
	for _, s := range p.Spans {
		byName[s.Name] = s
	}
	if byName["admission_wait"].Parent != byName["score"].ID {
		t.Fatal("admission_wait not parented under score")
	}
	if byName["kernel_sampling"].Parent != byName["engine_compute"].ID {
		t.Fatal("kernel_sampling not parented under engine_compute")
	}
	k := byName["kernel_sampling"]
	if k.Attrs["walks"] != 1024 || k.Attrs["arcs"] != 7 {
		t.Fatalf("attrs: %v", k.Attrs)
	}
	if k.Error != "deadline" {
		t.Fatalf("error: %q", k.Error)
	}
	if k.Remote == nil || k.Remote.TraceID != "remote1" {
		t.Fatalf("remote profile lost: %+v", k.Remote)
	}
	if line := p.SpanLine(); !strings.Contains(line, "engine_compute=") {
		t.Fatalf("SpanLine: %q", line)
	}
}

func TestRemoteParentConnectsSpans(t *testing.T) {
	// A trace reconstructed from a header parents its top-level spans
	// at the remote span id, keeping the cross-process tree connected.
	tr := NewTrace("cafe", 9)
	sp := tr.Start("engine_compute")
	sp.End()
	p := tr.Profile()
	if p.TraceID != "cafe" || p.Spans[0].Parent != 9 {
		t.Fatalf("remote parent: %+v", p.Spans[0])
	}
}

func TestOpenSpanGetsDurationSoFar(t *testing.T) {
	tr := NewTrace("", 0)
	root := tr.Start("hung")
	_ = root
	p := tr.Profile()
	if p.Spans[0].DurUs < 0 {
		t.Fatalf("open span duration negative: %d", p.Spans[0].DurUs)
	}
	// Ending twice keeps the first duration.
	root.End()
	first := tr.Profile().Spans[0].DurUs
	root.End()
	if tr.Profile().Spans[0].DurUs != first {
		t.Fatal("double End changed the recorded duration")
	}
}

// TestConcurrentRecording hammers one trace from many goroutines — the
// shape of a coalesced flight with hedged attempts — under the race
// detector in CI.
func TestConcurrentRecording(t *testing.T) {
	tr := NewTrace("", 0)
	root := tr.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := root.Start("child")
				sp.Add("n", 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	p := tr.Profile()
	if len(p.Spans) != 1+8*200 {
		t.Fatalf("spans: %d", len(p.Spans))
	}
	var n int64
	for _, s := range p.Spans {
		n += s.Attrs["n"]
	}
	if n != 8*200 {
		t.Fatalf("attr sum: %d", n)
	}
}

package obs

import (
	"errors"
	"math"
	"regexp"
	"strings"
	"testing"
)

// expositionLine matches one valid sample line of the text exposition
// format; the e2e jobs apply the same shape check to live /metrics
// output.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func TestPromWriterFormat(t *testing.T) {
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Header("usimrank_queries_total", "counter", "Completed queries.")
	pw.Uint("usimrank_queries_total", []Label{{"shape", "score"}, {"alg", "srsp"}}, 18446744073709551615)
	pw.Header("usimrank_query_latency_seconds", "histogram", "Latency.")
	pw.Float("usimrank_query_latency_seconds_bucket", []Label{{"le", "0.00005"}}, 3)
	pw.Float("usimrank_query_latency_seconds_bucket", []Label{{"le", "+Inf"}}, 7)
	pw.Float("usimrank_query_latency_seconds_sum", nil, 0.125)
	pw.Int("usimrank_in_flight", nil, -1)
	pw.Float("usimrank_inf", nil, math.Inf(1))
	if pw.Err() != nil {
		t.Fatalf("writer error: %v", pw.Err())
	}
	out := sb.String()
	if !strings.Contains(out, `usimrank_queries_total{shape="score",alg="srsp"} 18446744073709551615`) {
		t.Fatalf("uint line missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "# HELP usimrank_queries_total Completed queries.\n# TYPE usimrank_queries_total counter\n") {
		t.Fatalf("header block missing:\n%s", out)
	}
	if !strings.Contains(out, "usimrank_inf +Inf") {
		t.Fatalf("+Inf rendering missing:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
	}
}

func TestPromWriterLabelEscaping(t *testing.T) {
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Uint("m", []Label{{"v", "a\"b\\c\nd"}}, 1)
	pw.Header("h", "gauge", "line\\one\ntwo")
	want := `m{v="a\"b\\c\nd"} 1` + "\n"
	if !strings.HasPrefix(sb.String(), want) {
		t.Fatalf("escaping:\n got %q\nwant prefix %q", sb.String(), want)
	}
	if !strings.Contains(sb.String(), `# HELP h line\\one\ntwo`) {
		t.Fatalf("help escaping: %q", sb.String())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errFail
}

var errFail = errors.New("sink failed")

func TestPromWriterStickyError(t *testing.T) {
	fw := &failWriter{}
	pw := NewPromWriter(fw)
	pw.Uint("a", nil, 1)
	pw.Uint("b", nil, 2)
	pw.Header("c", "gauge", "h")
	if pw.Err() != errFail {
		t.Fatalf("err: %v", pw.Err())
	}
	if fw.n != 1 {
		t.Fatalf("writes after first failure: %d", fw.n)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	WriteRuntimeMetrics(pw)
	if pw.Err() != nil {
		t.Fatalf("runtime metrics: %v", pw.Err())
	}
	for _, want := range []string{"go_goroutines ", "go_heap_alloc_bytes ", "go_gc_pause_seconds_total "} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, sb.String())
		}
	}
}

package obs

import (
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	Key   string
	Value string
}

// PromWriter renders the Prometheus text exposition format (version
// 0.0.4) by hand — this repo takes no external modules, and the format
// is small: `# HELP`/`# TYPE` comments followed by
// `name{label="value"} number` sample lines. Errors are sticky: the
// first write failure is kept and later calls become no-ops, so call
// sites stay linear and check Err once.
type PromWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Header emits the HELP and TYPE comment lines for a metric family.
// typ is one of "counter", "gauge", "histogram".
func (p *PromWriter) Header(name, typ, help string) {
	if p.err != nil {
		return
	}
	b := p.buf[:0]
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, help)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	p.flush(b)
}

// Uint emits one sample line with an exact integer value (floats lose
// precision past 2^53, which cumulative walk counters can exceed).
func (p *PromWriter) Uint(name string, labels []Label, v uint64) {
	p.sample(name, labels, func(b []byte) []byte { return strconv.AppendUint(b, v, 10) })
}

// Int emits one sample line with a signed integer value.
func (p *PromWriter) Int(name string, labels []Label, v int64) {
	p.sample(name, labels, func(b []byte) []byte { return strconv.AppendInt(b, v, 10) })
}

// Float emits one sample line with a float value; infinities render as
// +Inf/-Inf per the exposition format.
func (p *PromWriter) Float(name string, labels []Label, v float64) {
	p.sample(name, labels, func(b []byte) []byte {
		switch {
		case math.IsInf(v, 1):
			return append(b, "+Inf"...)
		case math.IsInf(v, -1):
			return append(b, "-Inf"...)
		case math.IsNaN(v):
			return append(b, "NaN"...)
		default:
			return strconv.AppendFloat(b, v, 'g', -1, 64)
		}
	})
}

func (p *PromWriter) sample(name string, labels []Label, appendVal func([]byte) []byte) {
	if p.err != nil {
		return
	}
	b := p.buf[:0]
	b = append(b, name...)
	if len(labels) > 0 {
		b = append(b, '{')
		for i, l := range labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, l.Key...)
			b = append(b, '=', '"')
			b = appendEscapedLabel(b, l.Value)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = appendVal(b)
	b = append(b, '\n')
	p.flush(b)
}

func (p *PromWriter) flush(b []byte) {
	p.buf = b[:0]
	if _, err := p.w.Write(b); err != nil {
		p.err = err
	}
}

// appendEscapedLabel escapes a label value: backslash, double quote,
// and newline must be backslash-escaped inside the quotes.
func appendEscapedLabel(b []byte, s string) []byte {
	if !strings.ContainsAny(s, "\\\"\n") {
		return append(b, s...)
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return b
}

// appendEscapedHelp escapes a HELP text: backslash and newline only
// (quotes are legal there).
func appendEscapedHelp(b []byte, s string) []byte {
	if !strings.ContainsAny(s, "\\\n") {
		return append(b, s...)
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return b
}

// WriteRuntimeMetrics emits the Go runtime gauges every serving process
// exports: goroutines, heap, and GC totals.
func WriteRuntimeMetrics(p *PromWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Header("go_goroutines", "gauge", "Live goroutines.")
	p.Int("go_goroutines", nil, int64(runtime.NumGoroutine()))
	p.Header("go_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	p.Uint("go_heap_alloc_bytes", nil, ms.HeapAlloc)
	p.Header("go_heap_sys_bytes", "gauge", "Bytes of heap obtained from the OS.")
	p.Uint("go_heap_sys_bytes", nil, ms.HeapSys)
	p.Header("go_gc_cycles_total", "counter", "Completed GC cycles.")
	p.Uint("go_gc_cycles_total", nil, uint64(ms.NumGC))
	p.Header("go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	p.Float("go_gc_pause_seconds_total", nil, float64(ms.PauseTotalNs)/1e9)
}

package ugraph

import (
	"bytes"
	"strings"
	"testing"

	"usimrank/internal/rng"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		ao, bo := a.Out(u), b.Out(u)
		ap, bp := a.OutProbs(u), b.OutProbs(u)
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] || ap[i] != bp[i] {
				return false
			}
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	g := PaperFig1()
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("text round trip changed the graph")
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nug 2 1\n# another\n0 1 0.5\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.Prob(0, 1) != 0.5 {
		t.Fatal("parsed graph wrong")
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"xx 2 1\n0 1 0.5\n",        // bad header tag
		"ug -1 0\n",                // negative n
		"ug 2 2\n0 1 0.5\n",        // arc count mismatch
		"ug 2 1\n0 5 0.5\n",        // out of range
		"ug 2 1\n0 1 1.5\n",        // bad probability
		"ug 2 1\n0 1 0\n",          // zero probability
		"ug 2 1\n0 1\n",            // short arc line
		"ug 2 1\nx 1 0.5\n",        // non-numeric
		"ug 2 2\n0 1 .5\n0 1 .6\n", // duplicate arc
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := PaperFig1()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		g := randUGraph(r, 1+r.Intn(20), 0.3)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, got) {
			t.Fatal("binary round trip changed the graph")
		}
	}
}

func TestBinaryDeterministicBytes(t *testing.T) {
	g := PaperFig1()
	var a, b bytes.Buffer
	if err := WriteBinary(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&b, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("binary encoding not deterministic")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := PaperFig1()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any strict prefix must fail cleanly, not panic.
	for _, cut := range []int{0, 2, 4, 10, 19, 25, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryBadVersion(t *testing.T) {
	g := PaperFig1()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // corrupt version
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBinaryCorruptProbability(t *testing.T) {
	b := NewBuilder(2)
	b.AddArc(0, 1, 0.5)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The last 8 bytes are the float64 probability; make it 2.0.
	copy(raw[len(raw)-8:], []byte{0, 0, 0, 0, 0, 0, 0, 0x40})
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt probability accepted")
	}
}

package ugraph

import (
	"bytes"
	"testing"

	"usimrank/internal/rng"
)

// TestBinaryCorruptionNeverPanics flips random bytes in valid binary
// encodings and checks the reader either fails cleanly or returns a
// structurally valid graph — never panics, never hangs.
func TestBinaryCorruptionNeverPanics(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 300; trial++ {
		g := randUGraph(r, 1+r.Intn(10), 0.4)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		raw := append([]byte(nil), buf.Bytes()...)
		// Corrupt 1–4 random bytes.
		for c := 0; c <= r.Intn(4); c++ {
			if len(raw) == 0 {
				break
			}
			raw[r.Intn(len(raw))] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on corrupted input: %v", p)
				}
			}()
			got, err := ReadBinary(bytes.NewReader(raw))
			if err != nil {
				return // clean rejection
			}
			// If accepted, the graph must be structurally valid.
			for u := 0; u < got.NumVertices(); u++ {
				probs := got.OutProbs(u)
				for i, v := range got.Out(u) {
					if v < 0 || int(v) >= got.NumVertices() {
						t.Fatalf("accepted graph has bad arc target %d", v)
					}
					if !(probs[i] > 0 && probs[i] <= 1) {
						t.Fatalf("accepted graph has bad probability %v", probs[i])
					}
				}
			}
		}()
	}
}

// TestTextCorruptionNeverPanics does the same for the text codec by
// splicing random garbage lines into valid encodings.
func TestTextCorruptionNeverPanics(t *testing.T) {
	r := rng.New(4048)
	garbage := []string{"", "x", "1 2", "1 2 nan", "-1 0 0.5", "0 0 2.0", "ug ug ug", "\x00\x01"}
	for trial := 0; trial < 100; trial++ {
		g := randUGraph(r, 1+r.Intn(8), 0.4)
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		pos := r.Intn(len(raw) + 1)
		spliced := append(append(append([]byte(nil), raw[:pos]...),
			[]byte("\n"+garbage[r.Intn(len(garbage))]+"\n")...), raw[pos:]...)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on corrupted text: %v", p)
				}
			}()
			_, _ = ReadText(bytes.NewReader(spliced))
		}()
	}
}

func TestArcRangeCoversAllArcs(t *testing.T) {
	g := PaperFig1()
	covered := 0
	var prevHi int32
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.ArcRange(v)
		if lo != prevHi {
			t.Fatalf("vertex %d: range [%d,%d) not contiguous with previous end %d", v, lo, hi, prevHi)
		}
		if int(hi-lo) != g.OutDegree(v) {
			t.Fatalf("vertex %d: range size %d != degree %d", v, hi-lo, g.OutDegree(v))
		}
		covered += int(hi - lo)
		prevHi = hi
	}
	if covered != g.NumArcs() {
		t.Fatalf("ranges cover %d of %d arcs", covered, g.NumArcs())
	}
}

func TestAverageOutDegree(t *testing.T) {
	g := PaperFig1()
	if got := g.AverageOutDegree(); got != 8.0/5 {
		t.Fatalf("AverageOutDegree = %v", got)
	}
	if NewBuilder(0).MustBuild().AverageOutDegree() != 0 {
		t.Fatal("empty graph average degree not 0")
	}
}

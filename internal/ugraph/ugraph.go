// Package ugraph implements uncertain graphs under the possible-world
// model (Sec. II of the paper): directed graphs whose arcs carry mutually
// independent existence probabilities. An uncertain graph G encodes the
// distribution Pr(G ⇒ G) = Π_{e∈G} P(e) · Π_{e∉G} (1 − P(e)) over its
// possible worlds G (Eq. 4).
//
// The package provides CSR storage, possible-world sampling, exhaustive
// world enumeration (the ground-truth oracle for the exact algorithms),
// and the lazy per-walk world instantiation used by the paper's Sampling
// algorithm (Fig. 4).
package ugraph

import (
	"fmt"
	"sort"

	"usimrank/internal/graph"
	"usimrank/internal/rng"
)

// Graph is an immutable uncertain directed graph over vertices 0..N-1.
// Arc i is identified by its position in the CSR out-arc array; arc IDs
// are stable and are the index space for the Speedup filter vectors.
type Graph struct {
	n      int
	outOff []int32   // len n+1
	outDst []int32   // len m, sorted within each row
	outP   []float64 // len m, parallel to outDst
}

// Builder accumulates probabilistic arcs and produces an immutable Graph.
type Builder struct {
	n    int
	arcs []arc
}

type arc struct {
	u, v int32
	p    float64
}

// NewBuilder returns a builder for an uncertain graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("ugraph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddArc records arc (u, v) with existence probability p ∈ (0, 1].
// It panics on out-of-range endpoints or probabilities.
func (b *Builder) AddArc(u, v int, p float64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("ugraph: arc (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if !(p > 0 && p <= 1) {
		panic(fmt.Sprintf("ugraph: probability %v outside (0,1]", p))
	}
	b.arcs = append(b.arcs, arc{int32(u), int32(v), p})
}

// AddEdge records both directions of an undirected edge with the same
// probability, the encoding used for PPI and co-authorship networks.
// Note the two directions are independent arcs under the model; this
// matches how the paper treats its undirected datasets.
func (b *Builder) AddEdge(u, v int, p float64) {
	b.AddArc(u, v, p)
	if u != v {
		b.AddArc(v, u, p)
	}
}

// NumArcs returns the number of arcs recorded so far.
func (b *Builder) NumArcs() int { return len(b.arcs) }

// Build finalises the uncertain graph. It returns an error if a duplicate
// arc was recorded.
func (b *Builder) Build() (*Graph, error) {
	sort.Slice(b.arcs, func(i, j int) bool {
		if b.arcs[i].u != b.arcs[j].u {
			return b.arcs[i].u < b.arcs[j].u
		}
		return b.arcs[i].v < b.arcs[j].v
	})
	for i := 1; i < len(b.arcs); i++ {
		if b.arcs[i].u == b.arcs[i-1].u && b.arcs[i].v == b.arcs[i-1].v {
			return nil, fmt.Errorf("ugraph: duplicate arc (%d,%d)", b.arcs[i].u, b.arcs[i].v)
		}
	}
	g := &Graph{
		n:      b.n,
		outOff: make([]int32, b.n+1),
		outDst: make([]int32, len(b.arcs)),
		outP:   make([]float64, len(b.arcs)),
	}
	for _, a := range b.arcs {
		g.outOff[a.u+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
	}
	fill := make([]int32, b.n)
	for _, a := range b.arcs {
		pos := g.outOff[a.u] + fill[a.u]
		g.outDst[pos] = a.v
		g.outP[pos] = a.p
		fill[a.u]++
	}
	return g, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumArcs returns the number of arcs.
func (g *Graph) NumArcs() int { return len(g.outDst) }

// Out returns the sorted out-neighbours of v; the slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(v int) []int32 { return g.outDst[g.outOff[v]:g.outOff[v+1]] }

// OutProbs returns the probabilities parallel to Out(v).
func (g *Graph) OutProbs(v int) []float64 { return g.outP[g.outOff[v]:g.outOff[v+1]] }

// OutDegree returns the number of potential out-arcs of v.
func (g *Graph) OutDegree(v int) int { return int(g.outOff[v+1] - g.outOff[v]) }

// ArcRange returns the half-open range [lo, hi) of arc IDs leaving v.
func (g *Graph) ArcRange(v int) (lo, hi int32) { return g.outOff[v], g.outOff[v+1] }

// ArcEndpoints returns (u, v, p) of the arc with the given ID.
func (g *Graph) ArcEndpoints(id int32) (u, v int32, p float64) {
	// Binary search for the row owning position id.
	lo, hi := 0, g.n
	for lo < hi {
		mid := (lo + hi) / 2
		if g.outOff[mid+1] <= id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo), g.outDst[id], g.outP[id]
}

// Prob returns the existence probability of arc (u, v), or 0 if (u, v) is
// not a potential arc.
func (g *Graph) Prob(u, v int) float64 {
	row := g.Out(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	if i < len(row) && row[i] == int32(v) {
		return g.OutProbs(u)[i]
	}
	return 0
}

// HasArc reports whether (u, v) is a potential arc.
func (g *Graph) HasArc(u, v int) bool { return g.Prob(u, v) > 0 }

// Reverse returns the uncertain graph with every arc flipped, preserving
// probabilities. SimRank propagates similarity along in-arcs, so the core
// algorithms run the walk machinery on the reversed graph.
func (g *Graph) Reverse() *Graph {
	b := NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			b.AddArc(int(v), u, probs[i])
		}
	}
	return b.MustBuild()
}

// Skeleton returns the deterministic graph with the same potential arcs,
// i.e. the graph "obtained by removing uncertainty" used by the paper's
// SimRank-II and Jaccard-II baselines.
func (g *Graph) Skeleton() *graph.Graph {
	b := graph.NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(u) {
			b.AddArc(u, int(v))
		}
	}
	return b.MustBuild()
}

// Certain returns an uncertain graph with the same arcs as d, all with
// probability 1 (the embedding of Theorem 3).
func Certain(d *graph.Graph) *Graph {
	b := NewBuilder(d.NumVertices())
	for u := 0; u < d.NumVertices(); u++ {
		for _, v := range d.Out(u) {
			b.AddArc(u, int(v), 1)
		}
	}
	return b.MustBuild()
}

// AverageOutDegree returns |E| / |V| over potential arcs.
func (g *Graph) AverageOutDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(g.n)
}

// MeanProbability returns the average arc existence probability
// (0 on an arcless graph).
func (g *Graph) MeanProbability() float64 {
	if len(g.outP) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range g.outP {
		s += p
	}
	return s / float64(len(g.outP))
}

// SampleWorld draws a possible world according to Eq. 4 using r.
func (g *Graph) SampleWorld(r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			if r.Bool(probs[i]) {
				b.AddArc(u, int(v))
			}
		}
	}
	return b.MustBuild()
}

// MaxEnumerableArcs bounds exhaustive world enumeration: 2^22 ≈ 4.2M
// worlds is the largest oracle computation the test suite performs.
const MaxEnumerableArcs = 22

// World is a possible world addressed by an arc-subset mask during
// exhaustive enumeration. Arc i exists iff bit i of the mask is set.
type World struct {
	g    *Graph
	mask uint64
}

// Mask returns the arc-subset mask of the world.
func (w World) Mask() uint64 { return w.mask }

// ArcExists reports whether the arc with the given ID exists in the world.
func (w World) ArcExists(id int32) bool { return w.mask&(1<<uint(id)) != 0 }

// Out appends the existing out-neighbours of v in this world to buf and
// returns it. Passing a reused buf avoids allocation in tight loops.
func (w World) Out(v int, buf []int32) []int32 {
	lo, hi := w.g.ArcRange(v)
	for id := lo; id < hi; id++ {
		if w.ArcExists(id) {
			buf = append(buf, w.g.outDst[id])
		}
	}
	return buf
}

// OutDegree returns the number of existing out-arcs of v in this world.
func (w World) OutDegree(v int) int {
	lo, hi := w.g.ArcRange(v)
	d := 0
	for id := lo; id < hi; id++ {
		if w.ArcExists(id) {
			d++
		}
	}
	return d
}

// Materialize builds the deterministic graph of this world.
func (w World) Materialize() *graph.Graph {
	b := graph.NewBuilder(w.g.n)
	for u := 0; u < w.g.n; u++ {
		lo, hi := w.g.ArcRange(u)
		for id := lo; id < hi; id++ {
			if w.ArcExists(id) {
				b.AddArc(u, int(w.g.outDst[id]))
			}
		}
	}
	return b.MustBuild()
}

// EnumerateWorlds invokes fn for every possible world of g together with
// its probability Pr(G ⇒ G). It returns an error if the graph has more
// than MaxEnumerableArcs arcs. The probabilities passed to fn sum to 1.
func (g *Graph) EnumerateWorlds(fn func(w World, pr float64)) error {
	m := g.NumArcs()
	if m > MaxEnumerableArcs {
		return fmt.Errorf("ugraph: %d arcs exceed enumeration limit %d", m, MaxEnumerableArcs)
	}
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		pr := 1.0
		for id := 0; id < m; id++ {
			if mask&(1<<uint(id)) != 0 {
				pr *= g.outP[id]
			} else {
				pr *= 1 - g.outP[id]
			}
		}
		fn(World{g: g, mask: mask}, pr)
	}
	return nil
}

// LazyWorld instantiates one possible world on demand, one vertex
// neighbourhood at a time — the sampling discipline of Fig. 4: the first
// time a walk visits a vertex, every arc leaving it is flipped once and
// the outcome is remembered; later visits reuse the instantiation. One
// LazyWorld corresponds to one sampled walk's world.
type LazyWorld struct {
	g       *Graph
	r       *rng.RNG
	out     map[int32][]int32
	scratch []int32
}

// NewLazyWorld returns a fresh lazy world over g driven by r.
func NewLazyWorld(g *Graph, r *rng.RNG) *LazyWorld {
	return &LazyWorld{g: g, r: r, out: make(map[int32][]int32)}
}

// Out returns the instantiated out-neighbours of v, flipping v's arcs on
// first access. The returned slice must not be modified.
func (w *LazyWorld) Out(v int32) []int32 {
	if nbrs, ok := w.out[v]; ok {
		return nbrs
	}
	lo, hi := w.g.ArcRange(int(v))
	w.scratch = w.scratch[:0]
	for id := lo; id < hi; id++ {
		if w.r.Bool(w.g.outP[id]) {
			w.scratch = append(w.scratch, w.g.outDst[id])
		}
	}
	nbrs := make([]int32, len(w.scratch))
	copy(nbrs, w.scratch)
	w.out[v] = nbrs
	return nbrs
}

// Visited reports whether v's neighbourhood has been instantiated.
func (w *LazyWorld) Visited(v int32) bool {
	_, ok := w.out[v]
	return ok
}

// Reset discards all instantiations so the world can be reused for the
// next sampled walk without reallocating the map.
func (w *LazyWorld) Reset() {
	for k := range w.out {
		delete(w.out, k)
	}
}

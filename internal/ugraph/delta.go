package ugraph

import (
	"fmt"
	"math"
	"sort"
)

// UpdateOp selects the kind of one arc mutation.
type UpdateOp uint8

// The three arc mutations of the dynamic update plane.
const (
	// OpInsert adds a potential arc that does not exist yet.
	OpInsert UpdateOp = iota
	// OpDelete removes an existing potential arc.
	OpDelete
	// OpReweight changes the existence probability of an existing arc.
	OpReweight
)

// String implements fmt.Stringer.
func (op UpdateOp) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpReweight:
		return "reweight"
	default:
		return fmt.Sprintf("UpdateOp(%d)", uint8(op))
	}
}

// ParseUpdateOp maps a user-facing op name ("insert", "delete",
// "reweight", plus the short forms "ins"/"del"/"rw") to its UpdateOp —
// the one parser shared by the CLI and the serving plane.
func ParseUpdateOp(s string) (UpdateOp, error) {
	switch s {
	case "insert", "ins":
		return OpInsert, nil
	case "delete", "del":
		return OpDelete, nil
	case "reweight", "rw":
		return OpReweight, nil
	default:
		return 0, fmt.Errorf("ugraph: unknown update op %q (want insert, delete or reweight)", s)
	}
}

// ArcUpdate is one staged arc mutation. P is the new existence
// probability for OpInsert and OpReweight and is ignored for OpDelete.
type ArcUpdate struct {
	Op   UpdateOp
	U, V int
	P    float64
}

// arcState is the net effect of all staged updates on one arc: the arc
// either exists with probability p or does not exist.
type arcState struct {
	exists bool
	p      float64
}

// Delta is a mutable overlay of staged arc updates over an immutable
// base Graph. Updates are validated at Stage time against the overlay
// view (base plus earlier staged updates), so an insert of an arc that
// a staged delete just removed is legal, while inserting an arc twice
// is not. Compact folds the overlay into a fresh CSR Graph.
//
// A Delta is the unit of incremental mutation in the dynamic update
// plane: the engine stages a batch, compacts it, and uses the touched
// arc heads to invalidate only the derived state the batch can actually
// have changed. A Delta is single-goroutine state; the graphs it reads
// and produces are immutable and freely shareable.
type Delta struct {
	base   *Graph
	staged map[[2]int32]arcState
}

// NewDelta returns an empty overlay on base.
func NewDelta(base *Graph) *Delta {
	return &Delta{base: base, staged: make(map[[2]int32]arcState)}
}

// state returns the overlay view of arc (u, v).
func (d *Delta) state(u, v int32) arcState {
	if st, ok := d.staged[[2]int32{u, v}]; ok {
		return st
	}
	p := d.base.Prob(int(u), int(v))
	return arcState{exists: p > 0, p: p}
}

// Stage validates one update against the overlay and records it.
// Inserting an existing arc, or deleting/reweighting a missing one, is
// an error: strict ops catch callers whose picture of the graph has
// drifted, which is exactly the bug class live mutation breeds.
func (d *Delta) Stage(up ArcUpdate) error {
	n := d.base.NumVertices()
	if up.U < 0 || up.U >= n || up.V < 0 || up.V >= n {
		return fmt.Errorf("ugraph: %s (%d,%d) out of range [0,%d)", up.Op, up.U, up.V, n)
	}
	cur := d.state(int32(up.U), int32(up.V))
	key := [2]int32{int32(up.U), int32(up.V)}
	switch up.Op {
	case OpInsert:
		if cur.exists {
			return fmt.Errorf("ugraph: insert (%d,%d): arc already exists (p=%g)", up.U, up.V, cur.p)
		}
		if !(up.P > 0 && up.P <= 1) {
			return fmt.Errorf("ugraph: insert (%d,%d): probability %v outside (0,1]", up.U, up.V, up.P)
		}
		d.staged[key] = arcState{exists: true, p: up.P}
	case OpDelete:
		if !cur.exists {
			return fmt.Errorf("ugraph: delete (%d,%d): no such arc", up.U, up.V)
		}
		d.staged[key] = arcState{exists: false}
	case OpReweight:
		if !cur.exists {
			return fmt.Errorf("ugraph: reweight (%d,%d): no such arc", up.U, up.V)
		}
		if !(up.P > 0 && up.P <= 1) {
			return fmt.Errorf("ugraph: reweight (%d,%d): probability %v outside (0,1]", up.U, up.V, up.P)
		}
		d.staged[key] = arcState{exists: true, p: up.P}
	default:
		return fmt.Errorf("ugraph: unknown update op %d", up.Op)
	}
	return nil
}

// StageAll stages every update, stopping at the first invalid one.
func (d *Delta) StageAll(ups []ArcUpdate) error {
	for _, up := range ups {
		if err := d.Stage(up); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of distinct arcs with a staged state.
func (d *Delta) Len() int { return len(d.staged) }

// NetChanges returns the number of distinct arcs whose staged state
// differs from the base graph — staged sequences that net out (an
// insert undone by a delete, a reweight back to the original bits) are
// not counted. This is the honest "arcs changed" figure for metrics.
func (d *Delta) NetChanges() int {
	n := 0
	for key, st := range d.staged {
		basep := d.base.Prob(int(key[0]), int(key[1]))
		switch {
		case st.exists && basep == 0:
			n++ // net insert
		case !st.exists && basep > 0:
			n++ // net delete
		case st.exists && basep > 0 && math.Float64bits(st.p) != math.Float64bits(basep):
			n++ // net reweight
		}
	}
	return n
}

// NetChangedHeads returns the sorted distinct heads (target vertices)
// of the arcs NetChanges counts — the staged arcs whose final state
// really differs from the base graph. Unlike TouchedHeads, a staged
// sequence that nets out (insert undone by delete, reweight back to
// the original bits) contributes nothing: these are the BFS seeds for
// consumers that must not react to no-op batches, such as the
// continuous-query plane's subscription wake-up.
func (d *Delta) NetChangedHeads() []int32 {
	seen := make(map[int32]bool, len(d.staged))
	var heads []int32
	for key, st := range d.staged {
		basep := d.base.Prob(int(key[0]), int(key[1]))
		changed := (st.exists && basep == 0) ||
			(!st.exists && basep > 0) ||
			(st.exists && basep > 0 && math.Float64bits(st.p) != math.Float64bits(basep))
		if changed && !seen[key[1]] {
			seen[key[1]] = true
			heads = append(heads, key[1])
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	return heads
}

// Base returns the graph the overlay is staged over.
func (d *Delta) Base() *Graph { return d.base }

// Prob returns the overlay view of arc (u, v)'s existence probability
// (0 when absent), i.e. what Compact().Prob(u, v) will return.
func (d *Delta) Prob(u, v int) float64 {
	if u < 0 || u >= d.base.NumVertices() || v < 0 || v >= d.base.NumVertices() {
		return 0
	}
	st := d.state(int32(u), int32(v))
	if !st.exists {
		return 0
	}
	return st.p
}

// NumArcs returns the overlay view of the arc count.
func (d *Delta) NumArcs() int {
	m := d.base.NumArcs()
	for key, st := range d.staged {
		had := d.base.Prob(int(key[0]), int(key[1])) > 0
		if st.exists && !had {
			m++
		} else if !st.exists && had {
			m--
		}
	}
	return m
}

// OutArcs returns the overlay view of u's out-neighbours and their
// probabilities, sorted by target. The result is read-only: for a
// vertex with no staged changes it aliases the base graph's storage
// (the common case on a sparse overlay — no copy), otherwise the
// slices are freshly allocated.
func (d *Delta) OutArcs(u int) (dst []int32, probs []float64) {
	touched := false
	for key := range d.staged {
		if key[0] == int32(u) {
			touched = true
			break
		}
	}
	if !touched {
		return d.base.Out(u), d.base.OutProbs(u)
	}
	dst = append(dst, d.base.Out(u)...)
	probs = append(probs, d.base.OutProbs(u)...)
	for key, st := range d.staged {
		if key[0] != int32(u) {
			continue
		}
		i := sort.Search(len(dst), func(i int) bool { return dst[i] >= key[1] })
		switch {
		case i < len(dst) && dst[i] == key[1]:
			if st.exists {
				probs[i] = st.p
			} else {
				dst = append(dst[:i], dst[i+1:]...)
				probs = append(probs[:i], probs[i+1:]...)
			}
		case st.exists:
			dst = append(dst, 0)
			probs = append(probs, 0)
			copy(dst[i+1:], dst[i:])
			copy(probs[i+1:], probs[i:])
			dst[i] = key[1]
			probs[i] = st.p
		}
	}
	return dst, probs
}

// TouchedHeads returns the sorted distinct heads (target vertices) of
// every staged arc. These are the vertices whose in-arc set — and
// therefore whose out-row on the reversed graph, where the SimRank
// walks run — may have changed; they are the BFS seeds of the engine's
// targeted invalidation.
func (d *Delta) TouchedHeads() []int32 {
	seen := make(map[int32]bool, len(d.staged))
	var heads []int32
	for key := range d.staged {
		if !seen[key[1]] {
			seen[key[1]] = true
			heads = append(heads, key[1])
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	return heads
}

// Reversed returns the overlay's mirror over revBase, the reversed base
// graph: every staged state of arc (u, v) becomes the staged state of
// (v, u). The mirror needs no re-validation — arc (u, v) exists in a
// graph iff (v, u) exists in its reverse.
func (d *Delta) Reversed(revBase *Graph) *Delta {
	rd := &Delta{base: revBase, staged: make(map[[2]int32]arcState, len(d.staged))}
	for key, st := range d.staged {
		rd.staged[[2]int32{key[1], key[0]}] = st
	}
	return rd
}

// Compact folds the overlay into a fresh immutable CSR Graph. Untouched
// rows are block-copied; touched rows are merge-rewritten in sorted
// order, so the result is byte-identical to rebuilding the mutated
// graph from scratch with a Builder. Cost: O(|V| + |E| + staged·log).
func (d *Delta) Compact() *Graph {
	// Per-row staged patches, sorted by target within each row.
	type patch struct {
		v  int32
		st arcState
	}
	rows := make(map[int32][]patch, len(d.staged))
	for key, st := range d.staged {
		rows[key[0]] = append(rows[key[0]], patch{v: key[1], st: st})
	}
	for _, ps := range rows {
		sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	}

	b := d.base
	g := &Graph{n: b.n, outOff: make([]int32, b.n+1)}
	// Pass 1: new row lengths.
	for u := 0; u < b.n; u++ {
		deg := b.OutDegree(u)
		for _, p := range rows[int32(u)] {
			had := b.Prob(u, int(p.v)) > 0
			if p.st.exists && !had {
				deg++
			} else if !p.st.exists && had {
				deg--
			}
		}
		g.outOff[u+1] = g.outOff[u] + int32(deg)
	}
	m := int(g.outOff[b.n])
	g.outDst = make([]int32, m)
	g.outP = make([]float64, m)
	// Pass 2: fill rows. Untouched rows copy; touched rows merge the old
	// sorted row with the sorted patch list.
	for u := 0; u < b.n; u++ {
		out := g.outDst[g.outOff[u]:g.outOff[u+1]]
		outP := g.outP[g.outOff[u]:g.outOff[u+1]]
		oldDst := b.Out(u)
		oldP := b.OutProbs(u)
		ps := rows[int32(u)]
		if len(ps) == 0 {
			copy(out, oldDst)
			copy(outP, oldP)
			continue
		}
		w := 0
		i, j := 0, 0
		for i < len(oldDst) || j < len(ps) {
			switch {
			case j == len(ps) || (i < len(oldDst) && oldDst[i] < ps[j].v):
				out[w], outP[w] = oldDst[i], oldP[i]
				w++
				i++
			case i == len(oldDst) || ps[j].v < oldDst[i]:
				// Arc absent from the old row: a staged insert lands
				// here; a net-absent state (insert later undone by a
				// staged delete) is a no-op.
				if ps[j].st.exists {
					out[w], outP[w] = ps[j].v, ps[j].st.p
					w++
				}
				j++
			default: // same target: replace or drop
				if ps[j].st.exists {
					out[w], outP[w] = oldDst[i], ps[j].st.p
					w++
				}
				i++
				j++
			}
		}
	}
	return g
}

// Apply is the one-shot form: stage every update on g and compact.
func (g *Graph) Apply(ups []ArcUpdate) (*Graph, error) {
	d := NewDelta(g)
	if err := d.StageAll(ups); err != nil {
		return nil, err
	}
	return d.Compact(), nil
}

// BoundedDistances runs a multi-source BFS from starts following the
// out-arcs of every graph in gs (their union adjacency), up to maxDepth
// steps. It returns dist with dist[v] = the hop count of the shortest
// such path (0 for a start vertex) or -1 when v is not reachable within
// maxDepth. Passing both the pre- and post-mutation graphs makes the
// reach set conservative across the mutation: a path that existed only
// before, or only after, still counts.
//
// This is the invalidation frontier of the dynamic update plane: a
// source vertex's exact transition rows on the reversed graph change at
// level k only if the source reaches a touched arc head within k−1
// forward steps, so rows cached to depth D survive a mutation whenever
// dist[src] exceeds D−1.
func BoundedDistances(starts []int32, maxDepth int, gs ...*Graph) []int32 {
	if len(gs) == 0 {
		panic("ugraph: BoundedDistances needs at least one graph")
	}
	n := gs[0].NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	var frontier []int32
	for _, s := range starts {
		if s < 0 || int(s) >= n {
			panic(fmt.Sprintf("ugraph: start %d out of range [0,%d)", s, n))
		}
		if dist[s] == -1 {
			dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	for depth := int32(1); int(depth) <= maxDepth && len(frontier) > 0; depth++ {
		var next []int32
		for _, v := range frontier {
			for _, g := range gs {
				for _, w := range g.Out(int(v)) {
					if dist[w] == -1 {
						dist[w] = depth
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
	}
	return dist
}

package ugraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text format
//
//	ug <numVertices> <numArcs>
//	<u> <v> <p>        (one line per arc)
//
// Lines starting with '#' and blank lines are ignored. The format is
// line-oriented so datasets can be inspected and produced with standard
// tools.

// WriteText serialises g in the text format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "ug %d %d\n", g.NumVertices(), g.NumArcs()); err != nil {
		return err
	}
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, probs[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	wantArcs := -1
	gotArcs := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if b == nil {
			if len(fields) != 3 || fields[0] != "ug" {
				return nil, fmt.Errorf("ugraph: bad header %q", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("ugraph: bad vertex count %q", fields[1])
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("ugraph: bad arc count %q", fields[2])
			}
			b = NewBuilder(n)
			wantArcs = m
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("ugraph: bad arc line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("ugraph: bad source %q", fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("ugraph: bad target %q", fields[1])
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("ugraph: bad probability %q", fields[2])
		}
		if u < 0 || u >= b.n || v < 0 || v >= b.n {
			return nil, fmt.Errorf("ugraph: arc (%d,%d) out of range", u, v)
		}
		if !(p > 0 && p <= 1) {
			return nil, fmt.Errorf("ugraph: probability %v outside (0,1]", p)
		}
		b.AddArc(u, v, p)
		gotArcs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, errors.New("ugraph: empty input")
	}
	if gotArcs != wantArcs {
		return nil, fmt.Errorf("ugraph: header promises %d arcs, found %d", wantArcs, gotArcs)
	}
	return b.Build()
}

// Binary format
//
//	magic   "USGR"            4 bytes
//	version uint32 LE         (currently 1)
//	n       uint64 LE
//	m       uint64 LE
//	arcs    m × (u uvarint, v uvarint, p float64 LE bits)
//
// Arcs are written in CSR order so files of the same graph are identical
// byte-for-byte.

var binMagic = [4]byte{'U', 'S', 'G', 'R'}

const binVersion = 1

// WriteBinary serialises g in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var hdr [4 + 8 + 8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], binVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(g.NumArcs()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			n := binary.PutUvarint(buf[:], uint64(u))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			n = binary.PutUvarint(buf[:], uint64(v))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			var pb [8]byte
			binary.LittleEndian.PutUint64(pb[:], math.Float64bits(probs[i]))
			if _, err := bw.Write(pb[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format, validating magic, version, ranges
// and probability bounds.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("ugraph: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("ugraph: bad magic %q", magic[:])
	}
	var hdr [4 + 8 + 8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("ugraph: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != binVersion {
		return nil, fmt.Errorf("ugraph: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	m := binary.LittleEndian.Uint64(hdr[12:20])
	if n > math.MaxInt32 || m > math.MaxInt32 {
		return nil, fmt.Errorf("ugraph: unreasonable sizes n=%d m=%d", n, m)
	}
	b := NewBuilder(int(n))
	for i := uint64(0); i < m; i++ {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("ugraph: arc %d source: %w", i, err)
		}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("ugraph: arc %d target: %w", i, err)
		}
		var pb [8]byte
		if _, err := io.ReadFull(br, pb[:]); err != nil {
			return nil, fmt.Errorf("ugraph: arc %d probability: %w", i, err)
		}
		p := math.Float64frombits(binary.LittleEndian.Uint64(pb[:]))
		if u >= n || v >= n {
			return nil, fmt.Errorf("ugraph: arc %d endpoints (%d,%d) out of range", i, u, v)
		}
		if !(p > 0 && p <= 1) {
			return nil, fmt.Errorf("ugraph: arc %d probability %v outside (0,1]", i, p)
		}
		b.AddArc(int(u), int(v), p)
	}
	return b.Build()
}

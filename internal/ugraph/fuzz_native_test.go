package ugraph

import (
	"bytes"
	"math"
	"testing"
)

// validateGraph asserts the structural invariants every accepted graph
// must satisfy: in-range targets, probabilities in (0,1], rows sorted
// and duplicate-free, contiguous CSR ranges.
func validateGraph(t *testing.T, g *Graph) {
	t.Helper()
	var prevHi int32
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.ArcRange(u)
		if lo != prevHi {
			t.Fatalf("vertex %d: CSR range [%d,%d) not contiguous with %d", u, lo, hi, prevHi)
		}
		prevHi = hi
		probs := g.OutProbs(u)
		out := g.Out(u)
		for i, v := range out {
			if v < 0 || int(v) >= g.NumVertices() {
				t.Fatalf("vertex %d: target %d out of range", u, v)
			}
			if !(probs[i] > 0 && probs[i] <= 1) || math.IsNaN(probs[i]) {
				t.Fatalf("vertex %d: probability %v outside (0,1]", u, probs[i])
			}
			if i > 0 && out[i-1] >= v {
				t.Fatalf("vertex %d: row not strictly sorted (%d >= %d)", u, out[i-1], v)
			}
		}
	}
	if int(prevHi) != g.NumArcs() {
		t.Fatalf("CSR covers %d of %d arcs", prevHi, g.NumArcs())
	}
}

// FuzzReadText: malformed text input must error, never panic, and
// anything accepted must be a structurally valid graph that round-trips
// through the codec unchanged.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("ug 3 2\n0 1 0.5\n1 2 0.25\n"))
	f.Add([]byte("ug 0 0\n"))
	f.Add([]byte("# comment\nug 2 1\n\n0 0 1\n"))
	f.Add([]byte("ug 2 1\n0 1 1e-3\n"))
	f.Add([]byte("ug 2 3\n0 1 0.5\n"))     // header lies about the count
	f.Add([]byte("ug 2 1\n0 1 NaN\n"))     // NaN probability
	f.Add([]byte("ug 2 1\n0 1 -0.5\n"))    // negative probability
	f.Add([]byte("ug -1 0\n"))             // negative vertex count
	f.Add([]byte("ug 2 1\n0 9 0.5\n"))     // target out of range
	f.Add([]byte("ug 2 2\n0 1 .5\n0 1 1")) // duplicate arc
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		validateGraph(t, g)
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("accepted graph fails to serialise: %v", err)
		}
		g2, err := ReadText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("round-trip changed shape: %d/%d -> %d/%d",
				g.NumVertices(), g.NumArcs(), g2.NumVertices(), g2.NumArcs())
		}
	})
}

// FuzzReadBinary: the binary codec under arbitrary bytes — same
// contract as FuzzReadText.
func FuzzReadBinary(f *testing.F) {
	// Valid seeds produced by WriteBinary.
	for _, g := range []*Graph{PaperFig1(), NewBuilder(0).MustBuild(), NewBuilder(3).MustBuild()} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("USGR"))                     // truncated header
	f.Add([]byte("USGRxxxxxxxxxxxxxxxxxxxx")) // garbage header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		validateGraph(t, g)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("accepted graph fails to serialise: %v", err)
		}
		if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
	})
}

// FuzzBuilder drives the Builder through an op stream decoded from the
// fuzz input. Out-of-range endpoints and non-probabilities are the
// Builder's documented panic contract and are filtered out here; what
// must never panic is Build itself — duplicate arcs (including the ones
// AddEdge manufactures for self-inverse pairs) must surface as errors.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{3, 0, 1, 50, 1, 2, 99})
	f.Add([]byte{1, 0, 0, 1, 0, 0, 1}) // duplicate self-loop
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]) % 16
		b := NewBuilder(n)
		for i := 1; i+2 < len(data); i += 3 {
			if n == 0 {
				break
			}
			u, v := int(data[i])%n, int(data[i+1])%n
			p := (float64(data[i+2]%100) + 1) / 100 // (0,1]
			if data[i+2]&0x80 != 0 {
				b.AddEdge(u, v, p)
			} else {
				b.AddArc(u, v, p)
			}
		}
		g, err := b.Build()
		if err != nil {
			return // duplicates rejected cleanly
		}
		validateGraph(t, g)
		if g.Reverse().NumArcs() != g.NumArcs() {
			t.Fatal("reverse changed arc count")
		}
	})
}

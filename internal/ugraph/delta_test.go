package ugraph

import (
	"math"
	"testing"

	"usimrank/internal/rng"
)

// rebuildWithUpdates applies updates the slow, obviously-correct way:
// collect every arc of g into a map, mutate the map, rebuild with a
// Builder.
func rebuildWithUpdates(t *testing.T, g *Graph, ups []ArcUpdate) *Graph {
	t.Helper()
	arcs := make(map[[2]int]float64)
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			arcs[[2]int{u, int(v)}] = probs[i]
		}
	}
	for _, up := range ups {
		key := [2]int{up.U, up.V}
		switch up.Op {
		case OpInsert, OpReweight:
			arcs[key] = up.P
		case OpDelete:
			delete(arcs, key)
		}
	}
	b := NewBuilder(g.NumVertices())
	for key, p := range arcs {
		b.AddArc(key[0], key[1], p)
	}
	return b.MustBuild()
}

// sameGraph asserts structural equality, probability bits included.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("shape mismatch: got |V|=%d |E|=%d, want |V|=%d |E|=%d",
			got.NumVertices(), got.NumArcs(), want.NumVertices(), want.NumArcs())
	}
	for u := 0; u < want.NumVertices(); u++ {
		gd, wd := got.Out(u), want.Out(u)
		gp, wp := got.OutProbs(u), want.OutProbs(u)
		if len(gd) != len(wd) {
			t.Fatalf("vertex %d: degree %d, want %d", u, len(gd), len(wd))
		}
		for i := range wd {
			if gd[i] != wd[i] || math.Float64bits(gp[i]) != math.Float64bits(wp[i]) {
				t.Fatalf("vertex %d arc %d: (%d,%g), want (%d,%g)", u, i, gd[i], gp[i], wd[i], wp[i])
			}
		}
	}
}

func TestDeltaCompactMatchesRebuild(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		g := randUGraph(r, 2+r.Intn(12), 0.3)
		d := NewDelta(g)
		var applied []ArcUpdate
		for i := 0; i < 1+r.Intn(6); i++ {
			u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
			var up ArcUpdate
			if d.Prob(u, v) > 0 {
				if r.Bool(0.5) {
					up = ArcUpdate{Op: OpDelete, U: u, V: v}
				} else {
					up = ArcUpdate{Op: OpReweight, U: u, V: v, P: 0.05 + 0.95*r.Float64()}
				}
			} else {
				up = ArcUpdate{Op: OpInsert, U: u, V: v, P: 0.05 + 0.95*r.Float64()}
			}
			if err := d.Stage(up); err != nil {
				t.Fatalf("stage %+v: %v", up, err)
			}
			applied = append(applied, up)
		}
		got := d.Compact()
		want := rebuildWithUpdates(t, g, applied)
		sameGraph(t, got, want)
		if got.NumArcs() != d.NumArcs() {
			t.Fatalf("overlay NumArcs %d, compacted %d", d.NumArcs(), got.NumArcs())
		}
		// The reversed overlay compacts to the reverse of the compacted
		// overlay — the identity the engine's rev-graph patching rests on.
		sameGraph(t, d.Reversed(g.Reverse()).Compact(), got.Reverse())
	}
}

func TestDeltaStageValidation(t *testing.T) {
	g := PaperFig1()
	d := NewDelta(g)
	haveU, haveV := -1, -1
	for u := 0; u < g.NumVertices() && haveU < 0; u++ {
		if len(g.Out(u)) > 0 {
			haveU, haveV = u, int(g.Out(u)[0])
		}
	}
	cases := []struct {
		name string
		up   ArcUpdate
	}{
		{"insert existing", ArcUpdate{Op: OpInsert, U: haveU, V: haveV, P: 0.5}},
		{"insert nan", ArcUpdate{Op: OpInsert, U: 0, V: 0, P: math.NaN()}},
		{"insert zero", ArcUpdate{Op: OpInsert, U: 0, V: 0, P: 0}},
		{"insert above one", ArcUpdate{Op: OpInsert, U: 0, V: 0, P: 1.5}},
		{"delete missing", ArcUpdate{Op: OpDelete, U: 0, V: 0}},
		{"reweight missing", ArcUpdate{Op: OpReweight, U: 0, V: 0, P: 0.5}},
		{"reweight nan", ArcUpdate{Op: OpReweight, U: haveU, V: haveV, P: math.NaN()}},
		{"out of range u", ArcUpdate{Op: OpInsert, U: -1, V: 0, P: 0.5}},
		{"out of range v", ArcUpdate{Op: OpInsert, U: 0, V: g.NumVertices(), P: 0.5}},
		{"unknown op", ArcUpdate{Op: UpdateOp(99), U: 0, V: 1, P: 0.5}},
	}
	for _, c := range cases {
		if err := d.Stage(c.up); err == nil {
			t.Errorf("%s: staged without error", c.name)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("rejected updates left %d staged arcs", d.Len())
	}
}

func TestDeltaStageSequences(t *testing.T) {
	g := NewBuilder(3).MustBuild() // no arcs
	d := NewDelta(g)
	// insert → reweight → delete → insert again is a legal sequence.
	for _, up := range []ArcUpdate{
		{Op: OpInsert, U: 0, V: 1, P: 0.3},
		{Op: OpReweight, U: 0, V: 1, P: 0.7},
		{Op: OpDelete, U: 0, V: 1},
		{Op: OpInsert, U: 0, V: 1, P: 0.9},
	} {
		if err := d.Stage(up); err != nil {
			t.Fatalf("stage %+v: %v", up, err)
		}
	}
	// insert over a staged insert must fail.
	if err := d.Stage(ArcUpdate{Op: OpInsert, U: 0, V: 1, P: 0.2}); err == nil {
		t.Fatal("double insert staged without error")
	}
	got := d.Compact()
	if p := got.Prob(0, 1); p != 0.9 {
		t.Fatalf("net probability %v, want 0.9", p)
	}
	if d.NetChanges() != 1 {
		t.Fatalf("NetChanges = %d, want 1 (one net insert)", d.NetChanges())
	}
	// An insert immediately undone by a delete is a net no-op.
	d2 := NewDelta(g)
	if err := d2.StageAll([]ArcUpdate{{Op: OpInsert, U: 1, V: 2, P: 0.4}, {Op: OpDelete, U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	if got := d2.Compact(); got.NumArcs() != 0 {
		t.Fatalf("net no-op left %d arcs", got.NumArcs())
	}
	if d2.Len() != 1 || d2.NetChanges() != 0 {
		t.Fatalf("net no-op: Len=%d NetChanges=%d, want 1 / 0", d2.Len(), d2.NetChanges())
	}
	// Reweighting back to the original bits is also a net no-op.
	pf := PaperFig1()
	d3 := NewDelta(pf)
	orig := pf.OutProbs(0)[0]
	if err := d3.StageAll([]ArcUpdate{
		{Op: OpReweight, U: 0, V: int(pf.Out(0)[0]), P: 0.33},
		{Op: OpReweight, U: 0, V: int(pf.Out(0)[0]), P: orig},
	}); err != nil {
		t.Fatal(err)
	}
	if d3.NetChanges() != 0 {
		t.Fatalf("reweight round-trip: NetChanges = %d, want 0", d3.NetChanges())
	}
}

func TestDeltaOutArcsOverlay(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 100; trial++ {
		g := randUGraph(r, 2+r.Intn(8), 0.35)
		d := NewDelta(g)
		for i := 0; i < r.Intn(5); i++ {
			u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
			if d.Prob(u, v) > 0 {
				_ = d.Stage(ArcUpdate{Op: OpDelete, U: u, V: v})
			} else {
				_ = d.Stage(ArcUpdate{Op: OpInsert, U: u, V: v, P: 0.5})
			}
		}
		want := d.Compact()
		for u := 0; u < g.NumVertices(); u++ {
			dst, probs := d.OutArcs(u)
			wd, wp := want.Out(u), want.OutProbs(u)
			if len(dst) != len(wd) {
				t.Fatalf("vertex %d: overlay degree %d, compacted %d", u, len(dst), len(wd))
			}
			for i := range wd {
				if dst[i] != wd[i] || probs[i] != wp[i] {
					t.Fatalf("vertex %d arc %d: overlay (%d,%g), compacted (%d,%g)",
						u, i, dst[i], probs[i], wd[i], wp[i])
				}
			}
		}
	}
}

// TestDeltaOutArcsAliasesUntouchedRows pins the zero-copy fast path: a
// vertex with no staged changes must get back the base graph's own
// storage (no allocation), while a touched vertex still gets a fresh
// overlay copy that leaves the base unmodified.
func TestDeltaOutArcsAliasesUntouchedRows(t *testing.T) {
	g := PaperFig1()
	d := NewDelta(g)
	// Touch vertex 0 only; every other row must alias the base.
	if err := d.Stage(ArcUpdate{Op: OpInsert, U: 0, V: 0, P: 0.25}); err != nil {
		t.Fatal(err)
	}
	for u := 1; u < g.NumVertices(); u++ {
		base := g.Out(u)
		if len(base) == 0 {
			continue
		}
		dst, probs := d.OutArcs(u)
		if &dst[0] != &base[0] || &probs[0] != &g.OutProbs(u)[0] {
			t.Fatalf("vertex %d untouched but OutArcs copied", u)
		}
	}
	// The touched row must NOT alias: mutating the overlay result would
	// otherwise corrupt the base graph.
	dst, _ := d.OutArcs(0)
	base := g.Out(0)
	if len(dst) > 0 && len(base) > 0 && &dst[0] == &base[0] {
		t.Fatal("touched vertex 0 aliases base storage")
	}
	// A delete staged on a row also forces the copy path.
	d2 := NewDelta(g)
	v := int(g.Out(1)[0])
	if err := d2.Stage(ArcUpdate{Op: OpDelete, U: 1, V: v}); err != nil {
		t.Fatal(err)
	}
	dst2, _ := d2.OutArcs(1)
	if len(dst2) != len(g.Out(1))-1 {
		t.Fatalf("deleted arc still present: %d arcs, want %d", len(dst2), len(g.Out(1))-1)
	}
	if g.Prob(1, v) == 0 {
		t.Fatal("overlay delete leaked into the base graph")
	}
}

func TestGraphApply(t *testing.T) {
	g := PaperFig1()
	mut, err := g.Apply([]ArcUpdate{{Op: OpInsert, U: 0, V: 0, P: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if mut.Prob(0, 0) != 0.25 || mut.NumArcs() != g.NumArcs()+1 {
		t.Fatalf("apply failed: p=%v arcs=%d", mut.Prob(0, 0), mut.NumArcs())
	}
	if _, err := g.Apply([]ArcUpdate{{Op: OpDelete, U: 0, V: 0}}); err == nil {
		t.Fatal("invalid batch applied without error")
	}
}

func TestBoundedDistances(t *testing.T) {
	// Path 0 → 1 → 2 → 3 plus a deleted-only arc 1 → 4 in a second graph.
	b := NewBuilder(5)
	b.AddArc(0, 1, 0.5)
	b.AddArc(1, 2, 0.5)
	b.AddArc(2, 3, 0.5)
	g := b.MustBuild()
	b2 := NewBuilder(5)
	b2.AddArc(1, 4, 0.5)
	old := b2.MustBuild()

	dist := BoundedDistances([]int32{0}, 2, g, old)
	want := []int32{0, 1, 2, -1, 2}
	for v, d := range dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %d, want %d (full: %v)", v, d, want[v], dist)
		}
	}
	// Depth 0 reaches only the starts.
	dist = BoundedDistances([]int32{2, 4}, 0, g)
	for v, d := range dist {
		wantD := int32(-1)
		if v == 2 || v == 4 {
			wantD = 0
		}
		if d != wantD {
			t.Fatalf("depth-0 dist[%d] = %d, want %d", v, d, wantD)
		}
	}
}

func TestUpdateOpStringAndParse(t *testing.T) {
	for _, op := range []UpdateOp{OpInsert, OpDelete, OpReweight} {
		got, err := ParseUpdateOp(op.String())
		if err != nil || got != op {
			t.Fatalf("ParseUpdateOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	for short, want := range map[string]UpdateOp{"ins": OpInsert, "del": OpDelete, "rw": OpReweight} {
		got, err := ParseUpdateOp(short)
		if err != nil || got != want {
			t.Fatalf("ParseUpdateOp(%q) = %v, %v", short, got, err)
		}
	}
	if _, err := ParseUpdateOp("upsert"); err == nil {
		t.Fatal("unknown op parsed")
	}
	if s := UpdateOp(99).String(); s != "UpdateOp(99)" {
		t.Fatalf("unknown op string %q", s)
	}
}

func TestDeltaBaseAndProbBounds(t *testing.T) {
	g := PaperFig1()
	d := NewDelta(g)
	if d.Base() != g {
		t.Fatal("Base does not return the staged-over graph")
	}
	if d.Prob(-1, 0) != 0 || d.Prob(0, g.NumVertices()) != 0 {
		t.Fatal("out-of-range Prob not 0")
	}
}

package ugraph

import (
	"math"
	"testing"
	"testing/quick"

	"usimrank/internal/graph"
	"usimrank/internal/rng"
)

func fig1(t *testing.T) *Graph {
	t.Helper()
	return PaperFig1()
}

func TestBuilderBasics(t *testing.T) {
	g := fig1(t)
	if g.NumVertices() != 5 || g.NumArcs() != 8 {
		t.Fatalf("fig1 has %d vertices, %d arcs", g.NumVertices(), g.NumArcs())
	}
	if p := g.Prob(0, 2); p != 0.8 {
		t.Fatalf("P(v1,v3) = %v", p)
	}
	if p := g.Prob(2, 0); p != 0.5 {
		t.Fatalf("P(v3,v1) = %v", p)
	}
	if g.Prob(0, 1) != 0 || g.HasArc(0, 1) {
		t.Fatal("non-arc has probability")
	}
	if d := g.OutDegree(1); d != 2 {
		t.Fatalf("OutDegree(v2) = %d", d)
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	b := NewBuilder(2)
	b.AddArc(0, 1, 0.5)
	b.AddArc(0, 1, 0.6)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate arc accepted")
	}
}

func TestBuilderRejectsBadProbability(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.0001, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("probability %v accepted", p)
				}
			}()
			NewBuilder(2).AddArc(0, 1, p)
		}()
	}
}

func TestAddEdgeSymmetric(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 0.4)
	g := b.MustBuild()
	if g.Prob(0, 1) != 0.4 || g.Prob(1, 0) != 0.4 {
		t.Fatal("AddEdge not symmetric")
	}
	if g.NumArcs() != 2 {
		t.Fatalf("NumArcs = %d", g.NumArcs())
	}
}

func TestArcEndpoints(t *testing.T) {
	g := fig1(t)
	for id := int32(0); id < int32(g.NumArcs()); id++ {
		u, v, p := g.ArcEndpoints(id)
		if got := g.Prob(int(u), int(v)); got != p {
			t.Fatalf("arc %d: Prob(%d,%d)=%v, ArcEndpoints p=%v", id, u, v, got, p)
		}
	}
}

func TestReversePreservesProbabilities(t *testing.T) {
	g := fig1(t)
	r := g.Reverse()
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			if got := r.Prob(int(v), u); got != probs[i] {
				t.Fatalf("reverse lost P(%d,%d)=%v, got %v", u, v, probs[i], got)
			}
		}
	}
	if r.NumArcs() != g.NumArcs() {
		t.Fatal("reverse changed arc count")
	}
}

func TestSkeleton(t *testing.T) {
	g := fig1(t)
	s := g.Skeleton()
	if s.NumArcs() != g.NumArcs() {
		t.Fatal("skeleton arc count mismatch")
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Out(u) {
			if !s.HasArc(u, int(v)) {
				t.Fatalf("skeleton missing arc (%d,%d)", u, v)
			}
		}
	}
}

func TestCertainRoundTrip(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	d := b.MustBuild()
	g := Certain(d)
	if g.NumArcs() != 2 || g.Prob(0, 1) != 1 || g.Prob(1, 2) != 1 {
		t.Fatal("Certain wrong")
	}
	s := g.Skeleton()
	if !s.HasArc(0, 1) || !s.HasArc(1, 2) || s.NumArcs() != 2 {
		t.Fatal("Certain→Skeleton not identity")
	}
}

func TestEnumerateWorldsProbabilitiesSumToOne(t *testing.T) {
	g := fig1(t)
	total := 0.0
	worlds := 0
	if err := g.EnumerateWorlds(func(w World, pr float64) {
		total += pr
		worlds++
	}); err != nil {
		t.Fatal(err)
	}
	if worlds != 1<<8 {
		t.Fatalf("enumerated %d worlds, want 256", worlds)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("world probabilities sum to %v", total)
	}
}

func TestEnumerateWorldsTooLarge(t *testing.T) {
	b := NewBuilder(30)
	for i := 0; i < MaxEnumerableArcs+1; i++ {
		b.AddArc(i, i+1, 0.5)
	}
	if err := b.MustBuild().EnumerateWorlds(func(World, float64) {}); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
}

func TestWorldFig1Example(t *testing.T) {
	// The world of Fig. 1(b) keeps e1, e3, e5, e6, e8. With our reverse-
	// engineered arc identities that is the world containing (v1,v3),
	// (v2,v3), (v3,v4), (v4,v2)... — rather than guess the exact labels,
	// check the probability formula on a specific mask: keep arcs
	// {0,2,4,5,7}, drop {1,3,6}.
	g := fig1(t)
	var want float64 = 1
	keep := map[int32]bool{0: true, 2: true, 4: true, 5: true, 7: true}
	for id := int32(0); id < int32(g.NumArcs()); id++ {
		_, _, p := g.ArcEndpoints(id)
		if keep[id] {
			want *= p
		} else {
			want *= 1 - p
		}
	}
	var got float64 = -1
	if err := g.EnumerateWorlds(func(w World, pr float64) {
		match := true
		for id := int32(0); id < int32(g.NumArcs()); id++ {
			if w.ArcExists(id) != keep[id] {
				match = false
				break
			}
		}
		if match {
			got = pr
		}
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("world probability = %v, want %v", got, want)
	}
}

func TestWorldMaterializeMatchesOut(t *testing.T) {
	g := fig1(t)
	if err := g.EnumerateWorlds(func(w World, pr float64) {
		if w.Mask()%37 != 0 { // spot-check a subset of worlds
			return
		}
		d := w.Materialize()
		var buf []int32
		for v := 0; v < g.NumVertices(); v++ {
			buf = w.Out(v, buf[:0])
			row := d.Out(v)
			if len(buf) != len(row) {
				t.Fatalf("world %d vertex %d: Out %v vs materialized %v", w.Mask(), v, buf, row)
			}
			for i := range buf {
				if buf[i] != row[i] {
					t.Fatalf("world %d vertex %d: Out %v vs materialized %v", w.Mask(), v, buf, row)
				}
			}
			if w.OutDegree(v) != len(row) {
				t.Fatalf("world %d vertex %d: OutDegree mismatch", w.Mask(), v)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWorldFrequencies(t *testing.T) {
	g := fig1(t)
	r := rng.New(42)
	const trials = 20000
	counts := make(map[[2]int]int)
	for i := 0; i < trials; i++ {
		w := g.SampleWorld(r)
		for u := 0; u < g.NumVertices(); u++ {
			for _, v := range w.Out(u) {
				counts[[2]int{u, int(v)}]++
			}
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			got := float64(counts[[2]int{u, int(v)}]) / trials
			if math.Abs(got-probs[i]) > 0.015 {
				t.Fatalf("arc (%d,%d): empirical %v, want %v", u, v, got, probs[i])
			}
		}
	}
}

func TestLazyWorldCachesInstantiation(t *testing.T) {
	g := fig1(t)
	w := NewLazyWorld(g, rng.New(7))
	first := w.Out(2)
	if !w.Visited(2) {
		t.Fatal("vertex not marked visited")
	}
	second := w.Out(2)
	if len(first) != len(second) {
		t.Fatal("instantiation changed between accesses")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("instantiation changed between accesses")
		}
	}
}

func TestLazyWorldReset(t *testing.T) {
	g := fig1(t)
	w := NewLazyWorld(g, rng.New(7))
	w.Out(0)
	w.Reset()
	if w.Visited(0) {
		t.Fatal("Reset did not clear instantiation")
	}
}

func TestLazyWorldFrequencies(t *testing.T) {
	g := fig1(t)
	r := rng.New(99)
	w := NewLazyWorld(g, r)
	const trials = 30000
	hits := 0
	for i := 0; i < trials; i++ {
		w.Reset()
		// P(v4 keeps both out-arcs) = 0.7 * 0.6 = 0.42.
		if len(w.Out(3)) == 2 {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.42) > 0.01 {
		t.Fatalf("both-arcs frequency %v, want 0.42", got)
	}
}

func TestMeanProbability(t *testing.T) {
	g := fig1(t)
	want := (0.8 + 0.8 + 0.9 + 0.5 + 0.6 + 0.7 + 0.6 + 0.8) / 8
	if got := g.MeanProbability(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanProbability = %v, want %v", got, want)
	}
	if NewBuilder(3).MustBuild().MeanProbability() != 0 {
		t.Fatal("arcless mean probability not 0")
	}
}

func randUGraph(r *rng.RNG, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if r.Bool(p) {
				b.AddArc(u, v, 0.05+0.95*r.Float64())
			}
		}
	}
	return b.MustBuild()
}

// Property: reverse twice is the identity.
func TestQuickDoubleReverse(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randUGraph(r, 2+r.Intn(12), 0.3)
		rr := g.Reverse().Reverse()
		if rr.NumArcs() != g.NumArcs() {
			return false
		}
		for u := 0; u < g.NumVertices(); u++ {
			probs := g.OutProbs(u)
			for i, v := range g.Out(u) {
				if rr.Prob(u, int(v)) != probs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: marginal arc probability from enumeration equals P(e).
func TestQuickEnumerationMarginals(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4)
		b := NewBuilder(n)
		arcs := 0
		for u := 0; u < n && arcs < 10; u++ {
			for v := 0; v < n && arcs < 10; v++ {
				if r.Bool(0.5) {
					b.AddArc(u, v, 0.1+0.9*r.Float64())
					arcs++
				}
			}
		}
		g := b.MustBuild()
		marg := make([]float64, g.NumArcs())
		if err := g.EnumerateWorlds(func(w World, pr float64) {
			for id := int32(0); id < int32(g.NumArcs()); id++ {
				if w.ArcExists(id) {
					marg[id] += pr
				}
			}
		}); err != nil {
			return false
		}
		for id := int32(0); id < int32(g.NumArcs()); id++ {
			_, _, p := g.ArcEndpoints(id)
			if math.Abs(marg[id]-p) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package ugraph

// PaperFig1 returns the uncertain graph of Fig. 1(a) in the paper, the
// running example used by the WalkPr worked example (Table I).
//
// Vertices are numbered v1..v5 → 0..4. The figure labels eight arcs
// e1..e8 with probabilities {0.8, 0.5, 0.8, 0.9, 0.7, 0.6, 0.6, 0.8} but
// does not print the arc orientations legibly; the orientations and the
// assignment below are reverse-engineered from Table I, which pins down
//
//	O(v1) = {v3}        with P(v1,v3) = 0.8
//	O(v2) = {v1, v3}    with P(v2,v1) = 0.8, P(v2,v3) = 0.9
//	O(v3) = {v1, v4}    with P(v3,v1)·P(v3,v4) = 0.3
//	O(v4) = {v2, v5}    with P(v4,v2) = 0.7, P(v4,v5) = 0.6
//
// and the sampled walks of Fig. 6 require the remaining arc (v5,v3),
// which receives the remaining probability 0.8. Within O(v3) we assign
// P(v3,v1) = 0.5 and P(v3,v4) = 0.6 (Table I only fixes the product).
func PaperFig1() *Graph {
	b := NewBuilder(5)
	b.AddArc(0, 2, 0.8) // v1 → v3
	b.AddArc(1, 0, 0.8) // v2 → v1
	b.AddArc(1, 2, 0.9) // v2 → v3
	b.AddArc(2, 0, 0.5) // v3 → v1
	b.AddArc(2, 3, 0.6) // v3 → v4
	b.AddArc(3, 1, 0.7) // v4 → v2
	b.AddArc(3, 4, 0.6) // v4 → v5
	b.AddArc(4, 2, 0.8) // v5 → v3
	return b.MustBuild()
}

// PaperTableIWalk returns the walk W = v1,v3,v1,v3,v4,v2,v3,v4,v2 used in
// the paper's Table I worked example, as 0-based vertex indices.
func PaperTableIWalk() []int32 {
	return []int32{0, 2, 0, 2, 3, 1, 2, 3, 1}
}

// Package topk implements top-k SimRank similarity search on uncertain
// graphs: the query shapes of the paper's case studies (top-20 similar
// protein pairs, top-5 proteins similar to BUB1) as first-class
// operations instead of materialise-everything-and-sort, runnable under
// any of the engine's four computation strategies.
//
// Exact (Baseline) single-source queries prune candidates with the
// geometric tail bound of the SimRank combination: after the meeting
// probabilities m(0..k)(u,v) are known, the unseen tail contributes at
// most (1−c)·Σ_{j>k} c^j + c^n = c^(k+1), so a candidate whose
// optimistic score falls below the current k-th best is discarded
// without computing its remaining transition rows. The pruned search
// returns exactly the same result as the exhaustive one (verified by
// tests). The approximate strategies (Sampling, SR-TS, SR-SP) have no
// usable per-candidate bound, but their engine-side single-source
// kernels do the source's sampling work once for the whole sweep, so
// top-k is a direct kernel sweep there.
package topk

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"usimrank/internal/core"
)

// Result is one scored vertex or pair.
type Result struct {
	U, V  int
	Score float64
}

// Better reports whether a ranks above b in the canonical result order:
// score descending, ties broken by (U, V) ascending. Every top-k
// selection in this package — heap eviction, final sorting, and the
// Merge of per-shard winners — uses this one total order, so sequential
// and parallel sweeps agree even when scores tie at the k boundary.
func Better(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// Merge folds any number of result lists into one canonical top-k: the
// single helper behind both the sequential sweeps (one list) and the
// parallel ones (one list per shard). The inputs need no particular
// order.
func Merge(k int, lists ...[]Result) []Result {
	h := resultHeap{}
	heap.Init(&h)
	for _, l := range lists {
		for _, r := range l {
			offerK(&h, r, k)
		}
	}
	return sortedDesc(h)
}

// resultHeap is a min-heap under the canonical order (worst of the
// current best k at the root), holding the current best k.
type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return Better(h[j], h[i]) }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// offerK offers r to the k-bounded heap: push while below capacity,
// otherwise evict the root iff r ranks above it in the canonical order.
func offerK(h *resultHeap, r Result, k int) {
	if len(*h) < k {
		heap.Push(h, r)
	} else if Better(r, (*h)[0]) {
		heap.Pop(h)
		heap.Push(h, r)
	}
}

// sortedDesc copies the results into a slice sorted by the canonical
// (score desc, U, V) order. The input needs no heap invariant — any
// result collection sorts the same way.
func sortedDesc(h resultHeap) []Result {
	out := append([]Result(nil), h...)
	sort.SliceStable(out, func(i, j int) bool { return Better(out[i], out[j]) })
	return out
}

// SingleSource returns the k vertices most similar to u under the given
// algorithm, excluding u itself. The exact Baseline prunes candidates
// with the geometric tail bound, so vertices that provably cannot enter
// the top-k never finish their exact computation; the approximate
// algorithms run the engine's one-pass single-source kernel and select
// the top k from the scored vector.
func SingleSource(e *core.Engine, alg core.Algorithm, u, k int) ([]Result, error) {
	return SingleSourceCtx(context.Background(), e, alg, u, k)
}

// SingleSourceCtx is SingleSource with cancellation: the kernel sweep
// (or, for Baseline, the pruned candidate scan) is abandoned once ctx
// is done and ctx.Err() is returned. A query that completes in time is
// bit-identical to the plain call.
func SingleSourceCtx(ctx context.Context, e *core.Engine, alg core.Algorithm, u, k int) ([]Result, error) {
	g := e.Graph()
	if u < 0 || u >= g.NumVertices() {
		return nil, fmt.Errorf("topk: vertex %d out of range [0,%d)", u, g.NumVertices())
	}
	if k < 1 {
		return nil, fmt.Errorf("topk: k = %d < 1", k)
	}
	if alg == core.AlgBaseline {
		return singleSourceExact(ctx, e, u, k)
	}
	candidates := make([]int, 0, g.NumVertices()-1)
	for v := 0; v < g.NumVertices(); v++ {
		if v != u {
			candidates = append(candidates, v)
		}
	}
	scores, err := e.SingleSourceAgainstCtx(ctx, alg, u, candidates)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(candidates))
	for i, v := range candidates {
		results[i] = Result{U: u, V: v, Score: scores[i]}
	}
	return Merge(k, results), nil
}

// singleSourceExact is the tail-bound-pruned search over the exact
// measure. Cancellation is checked once per candidate: the
// walk-probability DP of a single candidate is not interruptible.
func singleSourceExact(ctx context.Context, e *core.Engine, u, k int) ([]Result, error) {
	g := e.Graph()
	opt := e.Options()
	n := opt.Steps
	c := opt.C

	// tail[j] = maximum possible contribution of the terms > j.
	tail := make([]float64, n+1)
	for j := 0; j <= n; j++ {
		tail[j] = math.Pow(c, float64(j+1))
	}

	h := resultHeap{}
	heap.Init(&h)
	threshold := func() float64 {
		if len(h) < k {
			return -1
		}
		return h[0].Score
	}
	for v := 0; v < g.NumVertices(); v++ {
		if v == u {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Progressive evaluation: extend the meeting-probability prefix
		// one step at a time and abandon the candidate as soon as its
		// optimistic completion falls below the current k-th best. The
		// walker computes each level of v's rows exactly once, so a
		// candidate that survives to depth j has paid for j levels, not
		// j(j+1)/2.
		mw, err := e.NewMeetingWalker(u, v, n)
		if err != nil {
			return nil, err
		}
		pruned := false
		m := make([]float64, 0, n+1)
		for j := 0; j <= n; j++ {
			mj, err := mw.Next()
			if err != nil {
				return nil, err
			}
			m = append(m, mj)
			partial := partialScore(m, c, j, n)
			if partial+tail[j] < threshold() {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		offerK(&h, Result{U: u, V: v, Score: core.Combine(m, c, n)}, k)
	}
	return sortedDesc(h), nil
}

// partialScore is the contribution of the known prefix m(0..j) to the
// final combination: the (1−c)·c^k terms for k ≤ min(j, n−1), plus the
// exact c^n·m(n) term when j = n.
func partialScore(m []float64, c float64, j, n int) float64 {
	s := 0.0
	ck := 1.0
	for kk := 0; kk <= j && kk < n; kk++ {
		s += (1 - c) * ck * m[kk]
		ck *= c
	}
	if j >= n {
		s += math.Pow(c, float64(n)) * m[n]
	}
	return s
}

// AllPairsParallel returns exactly the same result as AllPairs, scoring
// the sources concurrently (the Parallelism option): every source u
// owns one task that runs the single-source kernel against the
// candidates v > u into a private top-k list, and the per-source
// winners are folded with Merge under the deterministic (score desc, U,
// V) order afterwards. Because the kernels are bit-identical to
// pairwise computation and each task writes only its own slot, the
// outcome is independent of the worker count.
func AllPairsParallel(e *core.Engine, alg core.Algorithm, k int) ([]Result, error) {
	return AllPairsParallelCtx(context.Background(), e, alg, k)
}

// AllPairsParallelCtx is AllPairsParallel with cancellation: unstarted
// source tasks and unsampled chunks are skipped once ctx is done, and
// ctx.Err() is returned instead of a partial top-k.
func AllPairsParallelCtx(ctx context.Context, e *core.Engine, alg core.Algorithm, k int) ([]Result, error) {
	n := e.Graph().NumVertices()
	sources := make([]int, n)
	for v := range sources {
		sources[v] = v
	}
	return AllPairsSubsetCtx(ctx, e, alg, k, sources)
}

// AllPairsSubsetCtx is the sharded form of AllPairsParallelCtx: it
// restricts the pairs sweep to pairs whose source (the smaller
// endpoint, u) is in sources, still pairing each source with every
// candidate v > u. Because every pair of the full sweep has exactly one
// source, partitioning the vertex set across shards, running this on
// each shard, and folding the partial lists with Merge reproduces the
// unrestricted AllPairsParallel answer bit for bit — each global winner
// belongs to exactly one shard and survives that shard's local top-k
// under the same canonical order. This is the merge contract the
// cluster coordinator's scatter-gather relies on.
func AllPairsSubsetCtx(ctx context.Context, e *core.Engine, alg core.Algorithm, k int, sources []int) ([]Result, error) {
	g := e.Graph()
	if k < 1 {
		return nil, fmt.Errorf("topk: k = %d < 1", k)
	}
	n := g.NumVertices()
	seen := make(map[int]bool, len(sources))
	for _, u := range sources {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("topk: source %d out of range [0,%d)", u, n)
		}
		// A repeated source would sweep its pairs twice and let the
		// duplicates displace genuine winners from the k-bounded merge;
		// a caller bug must surface, not skew results.
		if seen[u] {
			return nil, fmt.Errorf("topk: duplicate source %d", u)
		}
		seen[u] = true
	}
	// Explicit prefetch: warm the shared LRU once up-front (bounded by
	// its capacity, a no-op for algorithms without exact rows) so the
	// first wave of workers doesn't recompute the same rows up to
	// `workers` times.
	if err := e.WarmRowsFor(alg, sources); err != nil {
		return nil, err
	}
	local := make([][]Result, len(sources))
	errs := make([]error, len(sources))
	// Fan out over sources on the engine's own pool: the kernels inside
	// share its pool-wide helper tokens, so the whole sweep respects the
	// single Options.Parallelism bound instead of stacking two pools.
	// The ctx view stops unclaimed source tasks after cancellation; the
	// ctx-aware kernel inside stops unclaimed chunks.
	e.WorkerPool().WithContext(ctx).For(len(sources), func(i int) {
		u := sources[i]
		candidates := make([]int, 0, n-u-1)
		for v := u + 1; v < n; v++ {
			candidates = append(candidates, v)
		}
		scores, err := e.SingleSourceAgainstCtx(ctx, alg, u, candidates)
		if err != nil {
			errs[i] = err
			return
		}
		h := resultHeap{}
		heap.Init(&h)
		for j, v := range candidates {
			offerK(&h, Result{U: u, V: v, Score: scores[j]}, k)
		}
		local[i] = h
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return Merge(k, local...), nil
}

// AllPairs returns the k most similar distinct pairs (u < v) under the
// given algorithm: the sequential reference implementation of
// AllPairsParallel, scoring pairs one Compute call at a time (per-source
// rows still flow through the engine's row cache). Intended for the
// case-study graph sizes and as the oracle in tests.
func AllPairs(e *core.Engine, alg core.Algorithm, k int) ([]Result, error) {
	g := e.Graph()
	if k < 1 {
		return nil, fmt.Errorf("topk: k = %d < 1", k)
	}
	h := resultHeap{}
	heap.Init(&h)
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			s, err := e.Compute(alg, u, v)
			if err != nil {
				return nil, err
			}
			offerK(&h, Result{U: u, V: v, Score: s}, k)
		}
	}
	return sortedDesc(h), nil
}

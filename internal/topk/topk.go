// Package topk implements top-k SimRank similarity search on uncertain
// graphs: the query shapes of the paper's case studies (top-20 similar
// protein pairs, top-5 proteins similar to BUB1) as first-class
// operations instead of materialise-everything-and-sort.
//
// Single-source queries prune candidates with the geometric tail bound
// of the SimRank combination: after the meeting probabilities
// m(0..k)(u,v) are known, the unseen tail contributes at most
// (1−c)·Σ_{j>k} c^j + c^n = c^(k+1), so a candidate whose optimistic
// score falls below the current k-th best is discarded without computing
// its remaining transition rows. The pruned search returns exactly the
// same result as the exhaustive one (verified by tests).
package topk

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"usimrank/internal/core"
)

// Result is one scored vertex or pair.
type Result struct {
	U, V  int
	Score float64
}

// resultHeap is a min-heap by score, holding the current best k.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// sortedDesc drains the heap into a descending slice with deterministic
// tie-breaking by (U, V).
func sortedDesc(h resultHeap) []Result {
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Result)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// SingleSource returns the k vertices most similar to u under the exact
// SimRank measure, excluding u itself. Candidates are pruned with the
// geometric tail bound, so vertices that provably cannot enter the top-k
// never finish their exact computation.
func SingleSource(e *core.Engine, u, k int) ([]Result, error) {
	g := e.Graph()
	if u < 0 || u >= g.NumVertices() {
		return nil, fmt.Errorf("topk: vertex %d out of range [0,%d)", u, g.NumVertices())
	}
	if k < 1 {
		return nil, fmt.Errorf("topk: k = %d < 1", k)
	}
	opt := e.Options()
	n := opt.Steps
	c := opt.C

	// tail[j] = maximum possible contribution of the terms > j.
	tail := make([]float64, n+1)
	for j := 0; j <= n; j++ {
		tail[j] = math.Pow(c, float64(j+1))
	}

	h := resultHeap{}
	heap.Init(&h)
	threshold := func() float64 {
		if len(h) < k {
			return -1
		}
		return h[0].Score
	}
	for v := 0; v < g.NumVertices(); v++ {
		if v == u {
			continue
		}
		// Progressive evaluation: extend the meeting-probability prefix
		// one step at a time and abandon the candidate as soon as its
		// optimistic completion falls below the current k-th best.
		pruned := false
		var m []float64
		for j := 0; j <= n; j++ {
			mj, err := e.MeetingExact(u, v, j)
			if err != nil {
				return nil, err
			}
			m = mj
			partial := partialScore(m, c, j, n)
			if partial+tail[j] < threshold() {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		score := core.Combine(m, c, n)
		if len(h) < k {
			heap.Push(&h, Result{U: u, V: v, Score: score})
		} else if score > h[0].Score {
			heap.Pop(&h)
			heap.Push(&h, Result{U: u, V: v, Score: score})
		}
	}
	return sortedDesc(h), nil
}

// partialScore is the contribution of the known prefix m(0..j) to the
// final combination: the (1−c)·c^k terms for k ≤ min(j, n−1), plus the
// exact c^n·m(n) term when j = n.
func partialScore(m []float64, c float64, j, n int) float64 {
	s := 0.0
	ck := 1.0
	for kk := 0; kk <= j && kk < n; kk++ {
		s += (1 - c) * ck * m[kk]
		ck *= c
	}
	if j >= n {
		s += math.Pow(c, float64(n)) * m[n]
	}
	return s
}

// AllPairs returns the k most similar distinct pairs (u < v) under the
// exact measure. It computes per-source transition rows once (through
// the engine's row cache) and scores all pairs; intended for the
// case-study graph sizes.
func AllPairs(e *core.Engine, k int) ([]Result, error) {
	g := e.Graph()
	if k < 1 {
		return nil, fmt.Errorf("topk: k = %d < 1", k)
	}
	h := resultHeap{}
	heap.Init(&h)
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			s, err := e.Baseline(u, v)
			if err != nil {
				return nil, err
			}
			if len(h) < k {
				heap.Push(&h, Result{U: u, V: v, Score: s})
			} else if s > h[0].Score {
				heap.Pop(&h)
				heap.Push(&h, Result{U: u, V: v, Score: s})
			}
		}
	}
	return sortedDesc(h), nil
}

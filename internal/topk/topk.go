// Package topk implements top-k SimRank similarity search on uncertain
// graphs: the query shapes of the paper's case studies (top-20 similar
// protein pairs, top-5 proteins similar to BUB1) as first-class
// operations instead of materialise-everything-and-sort.
//
// Single-source queries prune candidates with the geometric tail bound
// of the SimRank combination: after the meeting probabilities
// m(0..k)(u,v) are known, the unseen tail contributes at most
// (1−c)·Σ_{j>k} c^j + c^n = c^(k+1), so a candidate whose optimistic
// score falls below the current k-th best is discarded without computing
// its remaining transition rows. The pruned search returns exactly the
// same result as the exhaustive one (verified by tests).
package topk

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"usimrank/internal/core"
	"usimrank/internal/parallel"
)

// Result is one scored vertex or pair.
type Result struct {
	U, V  int
	Score float64
}

// better reports whether a ranks above b in the canonical result order:
// score descending, ties broken by (U, V) ascending. Every top-k
// selection in this package — heap eviction included — uses this one
// total order, so sequential and parallel sweeps agree even when
// scores tie at the k boundary.
func better(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// resultHeap is a min-heap under the canonical order (worst of the
// current best k at the root), holding the current best k.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// offerK offers r to the k-bounded heap: push while below capacity,
// otherwise evict the root iff r ranks above it in the canonical order.
func offerK(h *resultHeap, r Result, k int) {
	if len(*h) < k {
		heap.Push(h, r)
	} else if better(r, (*h)[0]) {
		heap.Pop(h)
		heap.Push(h, r)
	}
}

// sortedDesc copies the results into a slice sorted by the canonical
// (score desc, U, V) order. The input needs no heap invariant — any
// result collection sorts the same way.
func sortedDesc(h resultHeap) []Result {
	out := append([]Result(nil), h...)
	sort.SliceStable(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// SingleSource returns the k vertices most similar to u under the exact
// SimRank measure, excluding u itself. Candidates are pruned with the
// geometric tail bound, so vertices that provably cannot enter the top-k
// never finish their exact computation.
func SingleSource(e *core.Engine, u, k int) ([]Result, error) {
	g := e.Graph()
	if u < 0 || u >= g.NumVertices() {
		return nil, fmt.Errorf("topk: vertex %d out of range [0,%d)", u, g.NumVertices())
	}
	if k < 1 {
		return nil, fmt.Errorf("topk: k = %d < 1", k)
	}
	opt := e.Options()
	n := opt.Steps
	c := opt.C

	// tail[j] = maximum possible contribution of the terms > j.
	tail := make([]float64, n+1)
	for j := 0; j <= n; j++ {
		tail[j] = math.Pow(c, float64(j+1))
	}

	h := resultHeap{}
	heap.Init(&h)
	threshold := func() float64 {
		if len(h) < k {
			return -1
		}
		return h[0].Score
	}
	for v := 0; v < g.NumVertices(); v++ {
		if v == u {
			continue
		}
		// Progressive evaluation: extend the meeting-probability prefix
		// one step at a time and abandon the candidate as soon as its
		// optimistic completion falls below the current k-th best.
		pruned := false
		var m []float64
		for j := 0; j <= n; j++ {
			mj, err := e.MeetingExact(u, v, j)
			if err != nil {
				return nil, err
			}
			m = mj
			partial := partialScore(m, c, j, n)
			if partial+tail[j] < threshold() {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		offerK(&h, Result{U: u, V: v, Score: core.Combine(m, c, n)}, k)
	}
	return sortedDesc(h), nil
}

// partialScore is the contribution of the known prefix m(0..j) to the
// final combination: the (1−c)·c^k terms for k ≤ min(j, n−1), plus the
// exact c^n·m(n) term when j = n.
func partialScore(m []float64, c float64, j, n int) float64 {
	s := 0.0
	ck := 1.0
	for kk := 0; kk <= j && kk < n; kk++ {
		s += (1 - c) * ck * m[kk]
		ck *= c
	}
	if j >= n {
		s += math.Pow(c, float64(n)) * m[n]
	}
	return s
}

// AllPairsParallel returns exactly the same result as AllPairs, scoring
// the sources concurrently on the engine's worker pool (the Parallelism
// option): every source u owns one task that scores all pairs (u, v>u)
// into a private top-k heap, and the per-source winners are merged with
// the deterministic (score desc, U, V) order afterwards. Because the
// exact measure is deterministic and each task writes only its own
// slot, the outcome is independent of the worker count.
func AllPairsParallel(e *core.Engine, k int) ([]Result, error) {
	g := e.Graph()
	if k < 1 {
		return nil, fmt.Errorf("topk: k = %d < 1", k)
	}
	n := g.NumVertices()
	opt := e.Options()
	// Prefetch every source's transition rows sequentially, as
	// SRSPMatrix does: a cold cache would otherwise make the first wave
	// of workers recompute the same rows up to `workers` times. Skipped
	// when the cache cannot hold all sources anyway.
	if opt.RowCacheSize >= n {
		for v := 0; v < n; v++ {
			if _, err := e.MeetingExact(v, v, opt.Steps); err != nil {
				return nil, err
			}
		}
	}
	local := make([][]Result, n)
	errs := make([]error, n)
	parallel.NewPool(opt.Parallelism).For(n, func(u int) {
		h := resultHeap{}
		heap.Init(&h)
		for v := u + 1; v < n; v++ {
			s, err := e.Baseline(u, v)
			if err != nil {
				errs[u] = err
				return
			}
			offerK(&h, Result{U: u, V: v, Score: s}, k)
		}
		local[u] = h
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []Result
	for _, l := range local {
		all = append(all, l...)
	}
	merged := sortedDesc(resultHeap(all))
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}

// AllPairs returns the k most similar distinct pairs (u < v) under the
// exact measure. It computes per-source transition rows once (through
// the engine's row cache) and scores all pairs; intended for the
// case-study graph sizes.
func AllPairs(e *core.Engine, k int) ([]Result, error) {
	g := e.Graph()
	if k < 1 {
		return nil, fmt.Errorf("topk: k = %d < 1", k)
	}
	h := resultHeap{}
	heap.Init(&h)
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			s, err := e.Baseline(u, v)
			if err != nil {
				return nil, err
			}
			offerK(&h, Result{U: u, V: v, Score: s}, k)
		}
	}
	return sortedDesc(h), nil
}

package topk

import (
	"math"
	"sort"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

func engineFor(t *testing.T, g *ugraph.Graph) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(g, core.Options{Seed: 1, RowCacheSize: g.NumVertices() + 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// bruteSingleSource computes the reference ranking without pruning.
func bruteSingleSource(t *testing.T, e *core.Engine, u, k int) []Result {
	t.Helper()
	g := e.Graph()
	var all []Result
	for v := 0; v < g.NumVertices(); v++ {
		if v == u {
			continue
		}
		s, err := e.Baseline(u, v)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, Result{U: u, V: v, Score: s})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].V < all[j].V
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestSingleSourceMatchesBruteForceFig1(t *testing.T) {
	g := ugraph.PaperFig1()
	e := engineFor(t, g)
	for u := 0; u < g.NumVertices(); u++ {
		for _, k := range []int{1, 2, 4} {
			got, err := SingleSource(e, u, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteSingleSource(t, e, u, k)
			if len(got) != len(want) {
				t.Fatalf("u=%d k=%d: %d results, want %d", u, k, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
					t.Fatalf("u=%d k=%d rank %d: %+v vs %+v", u, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSingleSourceMatchesBruteForcePPI(t *testing.T) {
	ppi := gen.PlantedPPI(gen.DefaultPPIConfig(60), rng.New(3))
	e := engineFor(t, ppi.Graph)
	got, err := SingleSource(e, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteSingleSource(t, e, 0, 5)
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("rank %d: pruned %+v vs brute %+v", i, got[i], want[i])
		}
	}
}

func TestSingleSourceDescendingAndExcludesSelf(t *testing.T) {
	g := ugraph.PaperFig1()
	e := engineFor(t, g)
	res, err := SingleSource(e, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.V == 2 {
			t.Fatal("self included")
		}
		if i > 0 && res[i].Score > res[i-1].Score+1e-15 {
			t.Fatal("results not descending")
		}
	}
}

func TestSingleSourceBadArgs(t *testing.T) {
	e := engineFor(t, ugraph.PaperFig1())
	if _, err := SingleSource(e, -1, 3); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := SingleSource(e, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestAllPairsMatchesExhaustive(t *testing.T) {
	g := ugraph.PaperFig1()
	e := engineFor(t, g)
	got, err := AllPairs(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive reference.
	var all []Result
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			s, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, Result{U: u, V: v, Score: s})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	for i := 0; i < 3; i++ {
		if math.Abs(got[i].Score-all[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], all[i])
		}
	}
}

func TestAllPairsKLargerThanPairs(t *testing.T) {
	g := ugraph.PaperFig1()
	e := engineFor(t, g)
	res, err := AllPairs(e, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 { // C(5,2)
		t.Fatalf("got %d pairs", len(res))
	}
}

func TestAllPairsBadK(t *testing.T) {
	e := engineFor(t, ugraph.PaperFig1())
	if _, err := AllPairs(e, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestAllPairsParallelMatchesSequential pins the pool-based sweep to
// AllPairs for several worker counts, including ragged k boundaries.
func TestAllPairsParallelMatchesSequential(t *testing.T) {
	ppi := gen.PlantedPPI(gen.DefaultPPIConfig(60), rng.New(2))
	for _, k := range []int{1, 5, 20} {
		e, err := core.NewEngine(ppi.Graph, core.Options{Seed: 1, RowCacheSize: 61, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		want, err := AllPairs(e, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			ep, err := core.NewEngine(ppi.Graph, core.Options{Seed: 1, RowCacheSize: 61, Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := AllPairsParallel(ep, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d workers=%d: %d results, want %d", k, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d workers=%d: result %d = %+v, want %+v", k, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAllPairsParallelBadK(t *testing.T) {
	e := engineFor(t, ugraph.PaperFig1())
	if _, err := AllPairsParallel(e, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestAllPairsTieAtBoundary pins the canonical tie-break: with many
// zero-score pairs tied at the k boundary, the sequential and parallel
// sweeps must still agree exactly (score desc, then (U, V) asc).
func TestAllPairsTieAtBoundary(t *testing.T) {
	b := ugraph.NewBuilder(6)
	b.AddArc(0, 4, 0.8)
	b.AddArc(0, 5, 0.8)
	g := b.MustBuild()
	for _, workers := range []int{1, 4} {
		e, err := core.NewEngine(g, core.Options{Seed: 1, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := AllPairs(e, 3)
		if err != nil {
			t.Fatal(err)
		}
		par, err := AllPairsParallel(e, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != 3 || len(par) != 3 {
			t.Fatalf("workers=%d: lengths %d, %d", workers, len(seq), len(par))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d rank %d: sequential %+v vs parallel %+v", workers, i, seq[i], par[i])
			}
		}
		// Only (4,5) scores > 0; the tied zero-score tail must fill in
		// (U, V) order.
		if seq[0].U != 4 || seq[0].V != 5 || seq[0].Score <= 0 {
			t.Fatalf("workers=%d: top result %+v", workers, seq[0])
		}
		if seq[1] != (Result{U: 0, V: 1}) || seq[2] != (Result{U: 0, V: 2}) {
			t.Fatalf("workers=%d: tied tail %+v, %+v", workers, seq[1], seq[2])
		}
	}
}

package topk

import (
	"math"
	"sort"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

var allAlgorithms = []core.Algorithm{core.AlgBaseline, core.AlgSampling, core.AlgTwoPhase, core.AlgSRSP}

func engineFor(t *testing.T, g *ugraph.Graph) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(g, core.Options{Seed: 1, RowCacheSize: g.NumVertices() + 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// bruteSingleSource computes the reference ranking for any algorithm
// without pruning or kernels, one pairwise Compute at a time.
func bruteSingleSource(t *testing.T, e *core.Engine, alg core.Algorithm, u, k int) []Result {
	t.Helper()
	g := e.Graph()
	var all []Result
	for v := 0; v < g.NumVertices(); v++ {
		if v == u {
			continue
		}
		s, err := e.Compute(alg, u, v)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, Result{U: u, V: v, Score: s})
	}
	sort.SliceStable(all, func(i, j int) bool { return Better(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestSingleSourceMatchesBruteForceFig1(t *testing.T) {
	g := ugraph.PaperFig1()
	e := engineFor(t, g)
	for u := 0; u < g.NumVertices(); u++ {
		for _, k := range []int{1, 2, 4} {
			got, err := SingleSource(e, core.AlgBaseline, u, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteSingleSource(t, e, core.AlgBaseline, u, k)
			if len(got) != len(want) {
				t.Fatalf("u=%d k=%d: %d results, want %d", u, k, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
					t.Fatalf("u=%d k=%d rank %d: %+v vs %+v", u, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSingleSourceMatchesBruteForcePPI(t *testing.T) {
	ppi := gen.PlantedPPI(gen.DefaultPPIConfig(60), rng.New(3))
	e := engineFor(t, ppi.Graph)
	got, err := SingleSource(e, core.AlgBaseline, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteSingleSource(t, e, core.AlgBaseline, 0, 5)
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("rank %d: pruned %+v vs brute %+v", i, got[i], want[i])
		}
	}
}

// TestSingleSourceAllAlgorithms: top-k must work — and agree exactly
// with the pairwise brute force — under every computation strategy,
// not just the exact Baseline.
func TestSingleSourceAllAlgorithms(t *testing.T) {
	ppi := gen.PlantedPPI(gen.DefaultPPIConfig(40), rng.New(5))
	for _, alg := range allAlgorithms {
		for _, workers := range []int{1, 4} {
			e, err := core.NewEngine(ppi.Graph, core.Options{Seed: 2, N: 256, Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := SingleSource(e, alg, 7, 5)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteSingleSource(t, e, alg, 7, 5)
			if len(got) != len(want) {
				t.Fatalf("%v workers=%d: %d results, want %d", alg, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v workers=%d rank %d: %+v vs %+v", alg, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSingleSourceDescendingAndExcludesSelf(t *testing.T) {
	g := ugraph.PaperFig1()
	e := engineFor(t, g)
	for _, alg := range allAlgorithms {
		res, err := SingleSource(e, alg, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.V == 2 {
				t.Fatalf("%v: self included", alg)
			}
			if i > 0 && res[i].Score > res[i-1].Score+1e-15 {
				t.Fatalf("%v: results not descending", alg)
			}
		}
	}
}

func TestSingleSourceBadArgs(t *testing.T) {
	e := engineFor(t, ugraph.PaperFig1())
	if _, err := SingleSource(e, core.AlgBaseline, -1, 3); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := SingleSource(e, core.AlgBaseline, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SingleSource(e, core.Algorithm(42), 0, 3); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAllPairsMatchesExhaustive(t *testing.T) {
	g := ugraph.PaperFig1()
	e := engineFor(t, g)
	got, err := AllPairs(e, core.AlgBaseline, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive reference.
	var all []Result
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			s, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, Result{U: u, V: v, Score: s})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	for i := 0; i < 3; i++ {
		if math.Abs(got[i].Score-all[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], all[i])
		}
	}
}

func TestAllPairsKLargerThanPairs(t *testing.T) {
	g := ugraph.PaperFig1()
	e := engineFor(t, g)
	res, err := AllPairs(e, core.AlgBaseline, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 { // C(5,2)
		t.Fatalf("got %d pairs", len(res))
	}
}

func TestAllPairsBadK(t *testing.T) {
	e := engineFor(t, ugraph.PaperFig1())
	if _, err := AllPairs(e, core.AlgBaseline, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestAllPairsParallelMatchesSequential pins the kernel-based sweep to
// the sequential pairwise reference for every algorithm and several
// worker counts, including ragged k boundaries.
func TestAllPairsParallelMatchesSequential(t *testing.T) {
	ppi := gen.PlantedPPI(gen.DefaultPPIConfig(60), rng.New(2))
	for _, alg := range allAlgorithms {
		for _, k := range []int{1, 5, 20} {
			e, err := core.NewEngine(ppi.Graph, core.Options{Seed: 1, N: 256, RowCacheSize: 61, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			want, err := AllPairs(e, alg, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 8} {
				ep, err := core.NewEngine(ppi.Graph, core.Options{Seed: 1, N: 256, RowCacheSize: 61, Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				got, err := AllPairsParallel(ep, alg, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%v k=%d workers=%d: %d results, want %d", alg, k, workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v k=%d workers=%d: result %d = %+v, want %+v", alg, k, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestAllPairsParallelSmallCache: a row cache far smaller than the
// vertex count must still produce exact results — the warm path clamps
// to capacity and the LRU evicts incrementally during the sweep.
func TestAllPairsParallelSmallCache(t *testing.T) {
	ppi := gen.PlantedPPI(gen.DefaultPPIConfig(40), rng.New(4))
	ref, err := core.NewEngine(ppi.Graph, core.Options{Seed: 1, RowCacheSize: 41})
	if err != nil {
		t.Fatal(err)
	}
	want, err := AllPairs(ref, core.AlgBaseline, 10)
	if err != nil {
		t.Fatal(err)
	}
	small, err := core.NewEngine(ppi.Graph, core.Options{Seed: 1, RowCacheSize: 5, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := AllPairsParallel(small, core.AlgBaseline, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAllPairsParallelBadK(t *testing.T) {
	e := engineFor(t, ugraph.PaperFig1())
	if _, err := AllPairsParallel(e, core.AlgBaseline, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestAllPairsTieAtBoundary pins the canonical tie-break: with many
// zero-score pairs tied at the k boundary, the sequential and parallel
// sweeps must still agree exactly (score desc, then (U, V) asc).
func TestAllPairsTieAtBoundary(t *testing.T) {
	b := ugraph.NewBuilder(6)
	b.AddArc(0, 4, 0.8)
	b.AddArc(0, 5, 0.8)
	g := b.MustBuild()
	for _, workers := range []int{1, 4} {
		e, err := core.NewEngine(g, core.Options{Seed: 1, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := AllPairs(e, core.AlgBaseline, 3)
		if err != nil {
			t.Fatal(err)
		}
		par, err := AllPairsParallel(e, core.AlgBaseline, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != 3 || len(par) != 3 {
			t.Fatalf("workers=%d: lengths %d, %d", workers, len(seq), len(par))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d rank %d: sequential %+v vs parallel %+v", workers, i, seq[i], par[i])
			}
		}
		// Only (4,5) scores > 0; the tied zero-score tail must fill in
		// (U, V) order.
		if seq[0].U != 4 || seq[0].V != 5 || seq[0].Score <= 0 {
			t.Fatalf("workers=%d: top result %+v", workers, seq[0])
		}
		if seq[1] != (Result{U: 0, V: 1}) || seq[2] != (Result{U: 0, V: 2}) {
			t.Fatalf("workers=%d: tied tail %+v, %+v", workers, seq[1], seq[2])
		}
	}
}

// TestMergeCanonical: Merge must agree with a global sort + truncate
// under the canonical order, whatever the shard decomposition.
func TestMergeCanonical(t *testing.T) {
	all := []Result{
		{U: 0, V: 1, Score: 0.5}, {U: 0, V: 2, Score: 0.9}, {U: 1, V: 2, Score: 0.5},
		{U: 1, V: 3, Score: 0.1}, {U: 2, V: 3, Score: 0.9}, {U: 0, V: 3, Score: 0.5},
	}
	want := append([]Result(nil), all...)
	sort.SliceStable(want, func(i, j int) bool { return Better(want[i], want[j]) })
	want = want[:4]
	got := Merge(4, all[:2], all[2:3], nil, all[3:])
	if len(got) != 4 {
		t.Fatalf("merged %d results", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestAllPairsSubsetPartition pins the decomposition the cluster
// coordinator's scatter-gather relies on: partition the sources across
// "shards" (by a stable hash, by parity, arbitrarily), run the subset
// sweep per part, and Merge must reproduce the full AllPairsParallel
// answer bit for bit, for every algorithm.
func TestAllPairsSubsetPartition(t *testing.T) {
	ppi := gen.PlantedPPI(gen.DefaultPPIConfig(50), rng.New(7))
	n := ppi.Graph.NumVertices()
	for _, alg := range allAlgorithms {
		for _, k := range []int{1, 7, 25} {
			e, err := core.NewEngine(ppi.Graph, core.Options{Seed: 1, N: 256, RowCacheSize: n + 1})
			if err != nil {
				t.Fatal(err)
			}
			want, err := AllPairsParallel(e, alg, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{1, 2, 4} {
				sources := make([][]int, parts)
				for v := 0; v < n; v++ {
					sources[v%parts] = append(sources[v%parts], v)
				}
				partial := make([][]Result, parts)
				for i, ss := range sources {
					// A fresh engine per part, like a real shard node.
					es, err := core.NewEngine(ppi.Graph, core.Options{Seed: 1, N: 256, RowCacheSize: n + 1})
					if err != nil {
						t.Fatal(err)
					}
					got, err := AllPairsSubsetCtx(t.Context(), es, alg, k, ss)
					if err != nil {
						t.Fatal(err)
					}
					partial[i] = got
				}
				merged := Merge(k, partial...)
				if len(merged) != len(want) {
					t.Fatalf("%v k=%d parts=%d: %d results, want %d", alg, k, parts, len(merged), len(want))
				}
				for i := range want {
					if merged[i] != want[i] {
						t.Fatalf("%v k=%d parts=%d: result %d = %+v, want %+v", alg, k, parts, i, merged[i], want[i])
					}
				}
			}
		}
	}
}

// TestAllPairsSubsetBadSource: out-of-range sources are rejected, not
// silently dropped (a coordinator bug must surface, not skew results).
func TestAllPairsSubsetBadSource(t *testing.T) {
	e := engineFor(t, ugraph.PaperFig1())
	if _, err := AllPairsSubsetCtx(t.Context(), e, core.AlgSRSP, 3, []int{0, 99}); err == nil {
		t.Fatal("expected out-of-range source error")
	}
	if _, err := AllPairsSubsetCtx(t.Context(), e, core.AlgSRSP, 3, []int{-1}); err == nil {
		t.Fatal("expected negative source error")
	}
}

// TestAllPairsSubsetDuplicateSource: a repeated source would sweep its
// pairs twice and displace genuine winners; it must be rejected.
func TestAllPairsSubsetDuplicateSource(t *testing.T) {
	e := engineFor(t, ugraph.PaperFig1())
	if _, err := AllPairsSubsetCtx(t.Context(), e, core.AlgSRSP, 3, []int{0, 1, 0}); err == nil {
		t.Fatal("expected duplicate-source error")
	}
}

package topk

import (
	"fmt"
	"sync"
	"testing"

	"usimrank/internal/core"
	"usimrank/internal/gen"
	"usimrank/internal/rng"
)

// TestMixedConcurrentWorkload hammers ONE shared engine with the three
// composite query shapes a serving plane mixes freely — SingleSource,
// top-k, and Batch — from 32 goroutines at once, and asserts every
// result stays bit-identical to the sequential reference. Under -race
// (the CI race leg) this guards the row cache, the lazy SR-SP filter
// build, the pool-wide helper tokens, and the kernels' shared u-side
// state; the equality checks guard determinism under contention.
func TestMixedConcurrentWorkload(t *testing.T) {
	g := gen.WithUniformProbs(gen.RMAT(6, 256, 0.45, 0.22, 0.22, rng.New(3)), 0.2, 0.9, rng.New(4))
	e, err := core.NewEngine(g, core.Options{N: 300, Seed: 17, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reference values, computed before any concurrency.
	algs := []core.Algorithm{core.AlgSampling, core.AlgTwoPhase, core.AlgSRSP}
	sources := []int{0, 7, 19, 42}
	wantSource := map[string][]float64{}
	for _, alg := range algs {
		for _, u := range sources {
			v, err := e.SingleSource(alg, u)
			if err != nil {
				t.Fatal(err)
			}
			wantSource[fmt.Sprintf("%v/%d", alg, u)] = v
		}
	}
	wantTopK := map[string][]Result{}
	for _, alg := range algs {
		for _, u := range sources {
			r, err := SingleSource(e, alg, u, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantTopK[fmt.Sprintf("%v/%d", alg, u)] = r
		}
	}
	batchPairs := [][2]int{{0, 1}, {0, 9}, {7, 33}, {19, 19}, {42, 3}}
	wantBatch := map[string][]core.PairResult{}
	for _, alg := range algs {
		wantBatch[alg.String()] = core.Batch(e, alg, batchPairs, 0)
	}

	const goroutines = 32
	const iters = 3
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				alg := algs[(gi+it)%len(algs)]
				u := sources[(gi/3+it)%len(sources)]
				switch (gi + it) % 3 {
				case 0:
					got, err := e.SingleSource(alg, u)
					if err != nil {
						fail(err)
						return
					}
					want := wantSource[fmt.Sprintf("%v/%d", alg, u)]
					for v := range want {
						if got[v] != want[v] {
							fail(fmt.Errorf("SingleSource(%v,%d)[%d] = %v, want %v", alg, u, v, got[v], want[v]))
							return
						}
					}
				case 1:
					got, err := SingleSource(e, alg, u, 5)
					if err != nil {
						fail(err)
						return
					}
					want := wantTopK[fmt.Sprintf("%v/%d", alg, u)]
					if len(got) != len(want) {
						fail(fmt.Errorf("TopK(%v,%d) returned %d results, want %d", alg, u, len(got), len(want)))
						return
					}
					for i := range want {
						if got[i] != want[i] {
							fail(fmt.Errorf("TopK(%v,%d)[%d] = %+v, want %+v", alg, u, i, got[i], want[i]))
							return
						}
					}
				case 2:
					got := core.Batch(e, alg, batchPairs, 0)
					want := wantBatch[alg.String()]
					for i := range want {
						if got[i] != want[i] {
							fail(fmt.Errorf("Batch(%v)[%d] = %+v, want %+v", alg, i, got[i], want[i]))
							return
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

package diskstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"usimrank/internal/matrix"
)

func testIndexRows(vertices, depth int) (IndexMeta, []matrix.Vec) {
	meta := IndexMeta{Generation: 7, Vertices: vertices, Depth: depth, Samples: 1000, Seed: 42}
	rows := make([]matrix.Vec, vertices*(depth+1))
	for v := 0; v < vertices; v++ {
		for k := 0; k <= depth; k++ {
			r := v*(depth+1) + k
			switch {
			case k == 0:
				rows[r] = matrix.Unit(int32(v))
			case (v+k)%3 == 0:
				// leave empty: walks all died
			default:
				m := map[int32]float64{}
				for j := 0; j < (v+k)%4+1; j++ {
					m[int32((v+j*k+1)%vertices)] += 0.25
				}
				rows[r] = matrix.FromMap(m)
			}
		}
	}
	return meta, rows
}

func sameVec(a, b matrix.Vec) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func TestIndexFileRoundTrip(t *testing.T) {
	meta, rows := testIndexRows(17, 3)
	path := filepath.Join(t.TempDir(), "t.usix")
	if err := WriteIndexFile(path, meta, rows); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := OpenIndexFile(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if f.Meta != meta {
		t.Fatalf("meta %+v, want %+v", f.Meta, meta)
	}
	if len(f.Rows) != len(rows) {
		t.Fatalf("%d rows, want %d", len(f.Rows), len(rows))
	}
	for i := range rows {
		if !sameVec(f.Rows[i], rows[i]) {
			t.Fatalf("row %d = %+v, want %+v", i, f.Rows[i], rows[i])
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestIndexFileEmptyGraph(t *testing.T) {
	meta := IndexMeta{Generation: 1, Vertices: 0, Depth: 2, Samples: 1, Seed: 0}
	path := filepath.Join(t.TempDir(), "empty.usix")
	if err := WriteIndexFile(path, meta, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := OpenIndexFile(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if f.Meta != meta || len(f.Rows) != 0 {
		t.Fatalf("got %+v with %d rows", f.Meta, len(f.Rows))
	}
}

func TestWriteIndexFileRejectsBadShape(t *testing.T) {
	dir := t.TempDir()
	meta, rows := testIndexRows(4, 1)
	if err := WriteIndexFile(filepath.Join(dir, "a"), meta, rows[:3]); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	bad := meta
	bad.Samples = 0
	if err := WriteIndexFile(filepath.Join(dir, "b"), bad, rows); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestParseIndexBytesUnaligned(t *testing.T) {
	meta, rows := testIndexRows(5, 2)
	path := filepath.Join(t.TempDir(), "t.usix")
	if err := WriteIndexFile(path, meta, rows); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Force a misaligned base so the copy fallback path runs.
	buf := make([]byte, len(raw)+1)
	copy(buf[1:], raw)
	f, err := ParseIndexBytes(buf[1:])
	if err != nil {
		t.Fatalf("unaligned parse: %v", err)
	}
	for i := range rows {
		if !sameVec(f.Rows[i], rows[i]) {
			t.Fatalf("row %d mismatch after unaligned parse", i)
		}
	}
}

func TestParseIndexBytesRejectsCorruption(t *testing.T) {
	meta, rows := testIndexRows(9, 2)
	path := filepath.Join(t.TempDir(), "t.usix")
	if err := WriteIndexFile(path, meta, rows); err != nil {
		t.Fatalf("write: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseIndexBytes(good); err != nil {
		t.Fatalf("pristine bytes rejected: %v", err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(bytes.Clone(good))
		if _, err := ParseIndexBytes(b); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	mutate("short header", func(b []byte) []byte { return b[:32] })
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("bad endian marker", func(b []byte) []byte { b[28] ^= 0xFF; return b })
	mutate("truncated data", func(b []byte) []byte { return b[:len(b)-8] })
	mutate("appended garbage", func(b []byte) []byte { return append(b, 0, 0, 0, 0, 0, 0, 0, 0) })
	mutate("huge vertex count", func(b []byte) []byte {
		for i := 16; i < 24; i++ {
			b[i] = 0xFF
		}
		return b
	})
	mutate("huge depth", func(b []byte) []byte {
		b[24], b[25], b[26], b[27] = 0xFF, 0xFF, 0xFF, 0x7F
		return b
	})
	mutate("zero samples", func(b []byte) []byte {
		for i := 32; i < 40; i++ {
			b[i] = 0
		}
		return b
	})
	mutate("misaligned row offset", func(b []byte) []byte {
		// offsets[1] lives right after the first table entry; nudge it off
		// the 8-byte grid.
		b[indexHeaderSize+8]++
		return b
	})
	mutate("datasize lies", func(b []byte) []byte { b[48]++; return b })
}

package diskstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// WalkTuple is one record of a walk-probability file: a walk, its walk
// probability p, and the α value of its last vertex (Fig. 3 stores
// exactly this triple so extensions can apply the Lemma 2 ratio).
type WalkTuple struct {
	Walk  []int32
	P     float64
	Alpha float64
}

// Start returns the first vertex of the walk.
func (t WalkTuple) Start() int32 { return t.Walk[0] }

// End returns the last vertex of the walk.
func (t WalkTuple) End() int32 { return t.Walk[len(t.Walk)-1] }

// WalkWriter appends WalkTuples to a file.
type WalkWriter struct {
	f   *os.File
	w   *bufio.Writer
	n   int64
	err error
}

// NewWalkWriter creates (truncates) the walk file at path.
func NewWalkWriter(path string) (*WalkWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return &WalkWriter{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one tuple. The walk must be non-empty.
func (w *WalkWriter) Append(t WalkTuple) error {
	if w.err != nil {
		return w.err
	}
	if len(t.Walk) == 0 {
		return errors.New("diskstore: empty walk")
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t.Walk)))
	if _, err := w.w.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	for _, v := range t.Walk {
		n = binary.PutUvarint(buf[:], uint64(v))
		if _, err := w.w.Write(buf[:n]); err != nil {
			w.err = err
			return err
		}
	}
	var pb [16]byte
	binary.LittleEndian.PutUint64(pb[0:8], math.Float64bits(t.P))
	binary.LittleEndian.PutUint64(pb[8:16], math.Float64bits(t.Alpha))
	if _, err := w.w.Write(pb[:]); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of tuples appended so far.
func (w *WalkWriter) Count() int64 { return w.n }

// Close flushes and closes the file.
func (w *WalkWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// WalkReader iterates the tuples of a walk file.
type WalkReader struct {
	f *os.File
	r *bufio.Reader
}

// NewWalkReader opens the walk file at path.
func NewWalkReader(path string) (*WalkReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return &WalkReader{f: f, r: bufio.NewReader(f)}, nil
}

// Next returns the next tuple, or io.EOF when exhausted.
func (r *WalkReader) Next() (WalkTuple, error) {
	length, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return WalkTuple{}, io.EOF
		}
		return WalkTuple{}, fmt.Errorf("diskstore: walk length: %w", err)
	}
	if length == 0 || length > 1<<20 {
		return WalkTuple{}, fmt.Errorf("diskstore: unreasonable walk length %d", length)
	}
	t := WalkTuple{Walk: make([]int32, length)}
	for i := range t.Walk {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			return WalkTuple{}, fmt.Errorf("diskstore: walk vertex: %w", err)
		}
		t.Walk[i] = int32(v)
	}
	var pb [16]byte
	if _, err := io.ReadFull(r.r, pb[:]); err != nil {
		return WalkTuple{}, fmt.Errorf("diskstore: walk payload: %w", err)
	}
	t.P = math.Float64frombits(binary.LittleEndian.Uint64(pb[0:8]))
	t.Alpha = math.Float64frombits(binary.LittleEndian.Uint64(pb[8:16]))
	return t, nil
}

// Close closes the underlying file.
func (r *WalkReader) Close() error { return r.f.Close() }

// compareTuples orders tuples by (start, end, full walk) so equal
// (start, end) groups are contiguous and the order is deterministic.
func compareTuples(a, b WalkTuple) int {
	if c := int(a.Start()) - int(b.Start()); c != 0 {
		return c
	}
	if c := int(a.End()) - int(b.End()); c != 0 {
		return c
	}
	la, lb := len(a.Walk), len(b.Walk)
	n := la
	if lb < n {
		n = lb
	}
	for i := 0; i < n; i++ {
		if a.Walk[i] != b.Walk[i] {
			return int(a.Walk[i]) - int(b.Walk[i])
		}
	}
	return la - lb
}

//go:build unix

package diskstore

import (
	"os"
	"syscall"
)

// mapFile memory-maps the file at path read-only. It returns the file
// content plus the mapping to hand back to munmapFile; an empty file
// maps to (nil, nil) so the parser can reject it by size.
func mapFile(path string) (data, mapped []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, nil, nil
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a plain read.
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	return m, m, nil
}

func munmapFile(m []byte) error { return syscall.Munmap(m) }

package diskstore

import (
	"os"
	"path/filepath"
	"testing"

	"usimrank/internal/matrix"
)

// FuzzIndexFile fuzzes the USIX loader's safety contract: arbitrary
// bytes must either parse into a fully consistent index or error
// cleanly — never panic, and never allocate more than O(input size)
// (the parser validates every declared count against the actual byte
// length before allocating). A successful parse must satisfy the
// invariants the serving hot path relies on without per-probe checks:
// row-count geometry, sorted in-range vertex ids, probabilities in
// [0,1]. The committed corpus includes a real engine-built index (see
// testdata/fuzz/FuzzIndexFile), so mutation starts from valid files.
func FuzzIndexFile(f *testing.F) {
	meta, rows := testIndexRows(6, 2)
	path := filepath.Join(f.TempDir(), "seed.usix")
	if err := WriteIndexFile(path, meta, rows); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:indexHeaderSize])
	f.Add([]byte("USIX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := ParseIndexBytes(data)
		if err != nil {
			return
		}
		if x.Meta.Vertices < 0 || x.Meta.Depth < 0 || x.Meta.Samples < 1 {
			t.Fatalf("accepted meta %+v", x.Meta)
		}
		if want := x.Meta.Vertices * (x.Meta.Depth + 1); len(x.Rows) != want {
			t.Fatalf("%d rows for %d vertices × depth %d", len(x.Rows), x.Meta.Vertices, x.Meta.Depth)
		}
		for r, row := range x.Rows {
			prev := int32(-1)
			for i := range row.Idx {
				if row.Idx[i] <= prev || int(row.Idx[i]) >= x.Meta.Vertices {
					t.Fatalf("row %d: bad vertex id %d", r, row.Idx[i])
				}
				prev = row.Idx[i]
				if !(row.Val[i] >= 0 && row.Val[i] <= 1) {
					t.Fatalf("row %d: probability %v", r, row.Val[i])
				}
			}
			// Every accepted row must be probe-safe through the Vec API.
			_ = row.Dot(matrix.Unit(0))
		}
	})
}

package diskstore

// The reverse-walk index file (USIX): the on-disk form of the index
// plane's per-vertex meeting-probability decomposition. One file holds,
// for every vertex v of one graph generation, the empirical step-k
// occupancy rows occ_v[k] for k = 0..depth — sparse probability vectors
// over the reversed graph, sampled from the engine's deterministic
// v-side walk streams (see usimrank/internal/index for the estimator
// and the build/patch rules).
//
// Layout (all integers little-endian; every section 8-byte aligned):
//
//	header (64 bytes):
//	  [0:4)   magic "USIX"
//	  [4:8)   u32 format version (currently 1)
//	  [8:16)  u64 graph generation the rows were computed at
//	  [16:24) u64 vertex count
//	  [24:28) u32 depth (rows cover k = 0..depth)
//	  [28:32) u32 endianness marker 0x0A0B0C0D (native-read check)
//	  [32:40) u64 walk samples N per vertex
//	  [40:48) u64 engine seed the walk streams derive from
//	  [48:56) u64 data-section size in bytes
//	  [56:64) u64 reserved (zero)
//	offsets: (vertices·(depth+1) + 1) × u64, byte offsets into the data
//	  section; row (v, k) occupies data[off[r]:off[r+1]] with
//	  r = v·(depth+1) + k. Offsets are multiples of 8, nondecreasing,
//	  off[0] = 0, and the final offset equals the data-section size.
//	data, per row:
//	  [0:4)          u32 entry count c
//	  [4:8)          zero padding
//	  [8 : 8+8c)     c × f64 probabilities, each finite and in [0, 1]
//	  [8+8c : 8+12c) c × i32 vertex indices, strictly increasing, < |V|
//	  …              zero padding to the next multiple of 8
//
// The probability and index arrays are laid out so both are naturally
// aligned (f64s first, from an 8-aligned row start), which is what lets
// the loader hand out matrix.Vec views straight into the mapped file —
// zero copies, zero per-row allocations beyond the slice headers.
//
// ParseIndexBytes validates the entire file up front (bounds, alignment,
// monotone offsets, sorted indices, probability range) so the serving
// hot path can probe rows with no per-access checks, and so arbitrary
// bytes can never panic the loader or trick it into allocating more
// than O(file size) — the FuzzIndexFile contract.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"unsafe"

	"usimrank/internal/matrix"
)

// IndexMeta is the USIX header's logical content.
type IndexMeta struct {
	// Generation is the engine graph generation the rows were computed
	// at; serving planes refuse an index whose generation does not match
	// the resident engine.
	Generation uint64
	// Vertices is the vertex count of the indexed graph.
	Vertices int
	// Depth is the deepest walk step covered: each vertex stores rows
	// for k = 0..Depth.
	Depth int
	// Samples is the number N of walks per vertex the rows were
	// estimated from.
	Samples int
	// Seed is the engine seed the v-side walk streams derive from.
	Seed uint64
}

const (
	indexHeaderSize  = 64
	indexVersion     = 1
	indexEndianCheck = 0x0A0B0C0D
	// MaxIndexDepth bounds the per-vertex row count a file may declare.
	// Real engines run single-digit step counts; the bound exists so a
	// corrupt header cannot force a near-overflow rowcount computation.
	MaxIndexDepth = 1 << 16
)

var indexMagic = [4]byte{'U', 'S', 'I', 'X'}

// IndexFile is a loaded (and fully validated) USIX file. Rows holds one
// matrix.Vec per (vertex, step) pair in row-major order — row (v, k) at
// index v·(Depth+1)+k — viewing the mapped bytes directly; treat them
// as immutable. Close unmaps the backing; do not use Rows after Close.
type IndexFile struct {
	Meta IndexMeta
	Rows []matrix.Vec

	mapped []byte // non-nil when backed by an mmap
}

// Close releases the mmap backing, if any. Safe on the read-fallback
// path too (no-op).
func (f *IndexFile) Close() error {
	if f.mapped == nil {
		return nil
	}
	m := f.mapped
	f.mapped = nil
	f.Rows = nil
	return munmapFile(m)
}

// rowsPerVertex returns Depth+1 (rows k = 0..Depth).
func (m IndexMeta) rowsPerVertex() int { return m.Depth + 1 }

// WriteIndexFile persists rows (row (v, k) at v·(depth+1)+k, each a
// canonical sparse probability vector) under meta at path. The write is
// atomic-ish: a partial file can fail validation on load but a crashed
// writer never corrupts an existing readable file, because the content
// is staged to path+".tmp" and renamed into place.
func WriteIndexFile(path string, meta IndexMeta, rows []matrix.Vec) error {
	if meta.Vertices < 0 || meta.Depth < 0 || meta.Depth > MaxIndexDepth || meta.Samples < 1 {
		return fmt.Errorf("diskstore: bad index meta %+v", meta)
	}
	if want := meta.Vertices * meta.rowsPerVertex(); len(rows) != want {
		return fmt.Errorf("diskstore: %d rows for %d vertices × depth %d (want %d)",
			len(rows), meta.Vertices, meta.Depth, want)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)

	var hdr [indexHeaderSize]byte
	copy(hdr[0:4], indexMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], indexVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], meta.Generation)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(meta.Vertices))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(meta.Depth))
	binary.LittleEndian.PutUint32(hdr[28:32], indexEndianCheck)
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(meta.Samples))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(meta.Seed))

	rowBytes := func(v matrix.Vec) uint64 {
		return (8 + 12*uint64(v.Len()) + 7) &^ 7
	}
	var dataSize uint64
	for _, r := range rows {
		dataSize += rowBytes(r)
	}
	binary.LittleEndian.PutUint64(hdr[48:56], dataSize)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}

	var b8 [8]byte
	off := uint64(0)
	for _, r := range rows {
		binary.LittleEndian.PutUint64(b8[:], off)
		if _, err := w.Write(b8[:]); err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
		off += rowBytes(r)
	}
	binary.LittleEndian.PutUint64(b8[:], off)
	if _, err := w.Write(b8[:]); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}

	for _, r := range rows {
		binary.LittleEndian.PutUint32(b8[0:4], uint32(r.Len()))
		binary.LittleEndian.PutUint32(b8[4:8], 0)
		if _, err := w.Write(b8[:]); err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
		for _, val := range r.Val {
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(val))
			if _, err := w.Write(b8[:]); err != nil {
				return fmt.Errorf("diskstore: %w", err)
			}
		}
		for _, idx := range r.Idx {
			binary.LittleEndian.PutUint32(b8[0:4], uint32(idx))
			if _, err := w.Write(b8[0:4]); err != nil {
				return fmt.Errorf("diskstore: %w", err)
			}
		}
		if pad := (8 - (4*uint64(r.Len()))%8) % 8; pad > 0 {
			zero := [8]byte{}
			if _, err := w.Write(zero[:pad]); err != nil {
				return fmt.Errorf("diskstore: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// OpenIndexFile maps (or, where mmap is unavailable, reads) the USIX
// file at path and validates it completely. The returned rows view the
// mapping directly; hold the IndexFile alive as long as any row is in
// use and Close it when done.
func OpenIndexFile(path string) (*IndexFile, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %s: %w", path, err)
	}
	f, err := ParseIndexBytes(data)
	if err != nil {
		if mapped != nil {
			_ = munmapFile(mapped)
		}
		return nil, fmt.Errorf("diskstore: %s: %w", path, err)
	}
	f.mapped = mapped
	return f, nil
}

// ParseIndexBytes validates data as a complete USIX file and returns
// zero-copy row views into it. It is the single entry point for both
// the mmap loader and arbitrary untrusted bytes (the fuzz target): any
// malformed input yields an error — never a panic, and never an
// allocation beyond O(len(data)).
func ParseIndexBytes(data []byte) (*IndexFile, error) {
	if len(data) < indexHeaderSize {
		return nil, fmt.Errorf("index: %d bytes, want at least the %d-byte header", len(data), indexHeaderSize)
	}
	data = alignBytes(data)
	if [4]byte(data[0:4]) != indexMagic {
		return nil, fmt.Errorf("index: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != indexVersion {
		return nil, fmt.Errorf("index: unsupported version %d (want %d)", v, indexVersion)
	}
	// The row views below read the mapping through native-endian typed
	// slices; the marker proves native == the little-endian file order.
	if *(*uint32)(unsafe.Pointer(&data[28])) != indexEndianCheck {
		return nil, fmt.Errorf("index: endianness marker mismatch (file is little-endian; host is not)")
	}
	meta := IndexMeta{
		Generation: binary.LittleEndian.Uint64(data[8:16]),
		Seed:       binary.LittleEndian.Uint64(data[40:48]),
	}
	vertices := binary.LittleEndian.Uint64(data[16:24])
	depth := binary.LittleEndian.Uint32(data[24:28])
	samples := binary.LittleEndian.Uint64(data[32:40])
	dataSize := binary.LittleEndian.Uint64(data[48:56])

	if depth > MaxIndexDepth {
		return nil, fmt.Errorf("index: depth %d exceeds the format bound %d", depth, MaxIndexDepth)
	}
	if samples < 1 || samples > math.MaxInt32 {
		return nil, fmt.Errorf("index: sample count %d outside [1, 2³¹)", samples)
	}
	avail := uint64(len(data) - indexHeaderSize)
	// Bound the declared geometry by the actual file size BEFORE any
	// size computation that uses it: rowCount may not overflow, and the
	// offsets table it implies must fit in what was actually read.
	if vertices > avail/8 {
		return nil, fmt.Errorf("index: %d vertices cannot fit in a %d-byte file", vertices, len(data))
	}
	rowCount := vertices * uint64(depth+1)
	if vertices != 0 && rowCount/vertices != uint64(depth+1) {
		return nil, fmt.Errorf("index: %d vertices × depth %d overflows", vertices, depth)
	}
	if rowCount+1 > avail/8 {
		return nil, fmt.Errorf("index: %d rows cannot fit in a %d-byte file", rowCount, len(data))
	}
	offEnd := uint64(indexHeaderSize) + 8*(rowCount+1)
	if uint64(len(data)) != offEnd+dataSize {
		return nil, fmt.Errorf("index: file is %d bytes, header implies %d", len(data), offEnd+dataSize)
	}

	offsets := unsafe.Slice((*uint64)(unsafe.Pointer(&data[indexHeaderSize])), rowCount+1)
	payload := data[offEnd:]
	if offsets[0] != 0 || offsets[rowCount] != dataSize {
		return nil, fmt.Errorf("index: offset table does not span the data section")
	}

	rows := make([]matrix.Vec, rowCount)
	for r := uint64(0); r < rowCount; r++ {
		start, end := offsets[r], offsets[r+1]
		if start%8 != 0 || end < start || end > dataSize {
			return nil, fmt.Errorf("index: row %d has corrupt offsets [%d, %d)", r, start, end)
		}
		row := payload[start:end]
		if len(row) < 8 {
			return nil, fmt.Errorf("index: row %d truncated (%d bytes)", r, len(row))
		}
		count := uint64(binary.LittleEndian.Uint32(row[0:4]))
		if want := (8 + 12*count + 7) &^ 7; uint64(len(row)) != want {
			return nil, fmt.Errorf("index: row %d declares %d entries in %d bytes (want %d)", r, count, len(row), want)
		}
		if count == 0 {
			continue
		}
		vals := unsafe.Slice((*float64)(unsafe.Pointer(&row[8])), count)
		idxs := unsafe.Slice((*int32)(unsafe.Pointer(&row[8+8*count])), count)
		prev := int32(-1)
		for i := range idxs {
			if idxs[i] <= prev || uint64(idxs[i]) >= vertices {
				return nil, fmt.Errorf("index: row %d has unsorted or out-of-range vertex id %d at entry %d", r, idxs[i], i)
			}
			prev = idxs[i]
			if !(vals[i] >= 0 && vals[i] <= 1) { // also rejects NaN
				return nil, fmt.Errorf("index: row %d has probability %v outside [0,1] at entry %d", r, vals[i], i)
			}
		}
		rows[r] = matrix.Vec{Idx: idxs, Val: vals}
	}
	meta.Vertices = int(vertices)
	meta.Depth = int(depth)
	meta.Samples = int(samples)
	return &IndexFile{Meta: meta, Rows: rows}, nil
}

// alignBytes returns data 8-aligned, copying once if the caller handed
// an unaligned buffer (mmap is page-aligned; this path exists for
// fuzzing and read-fallback inputs).
func alignBytes(data []byte) []byte {
	if uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		return data
	}
	buf := make([]uint64, (len(data)+7)/8)
	aligned := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(buf)*8)[:len(data)]
	copy(aligned, data)
	return aligned
}

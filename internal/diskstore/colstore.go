// Package diskstore implements the external-memory substrate of the
// paper's Baseline algorithm (Sec. IV-B / VI-A): transition probability
// matrices W(k) stored column-by-column in consecutive fixed-size blocks
// (so reading a column costs O(|V|/B) block I/Os, which the store
// counts), walk-probability files of (walk, p, α) tuples, and an
// external merge sort used by TransPr to group walks by their start and
// end vertices (Fig. 3, lines 15–18).
package diskstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"usimrank/internal/matrix"
)

// DefaultBlockSize is the block granularity used for I/O accounting.
const DefaultBlockSize = 4096

// IOStats counts block-level I/O performed by a store.
type IOStats struct {
	BlockReads  int64
	BlockWrites int64
}

// ColumnStore persists the matrices W(1)..W(K) column-by-column under a
// directory, one file per k, and accounts block reads and writes.
type ColumnStore struct {
	dir       string
	blockSize int
	reads     atomic.Int64
	writes    atomic.Int64
}

// NewColumnStore creates (or reuses) a store rooted at dir. blockSize ≤ 0
// selects DefaultBlockSize.
func NewColumnStore(dir string, blockSize int) (*ColumnStore, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return &ColumnStore{dir: dir, blockSize: blockSize}, nil
}

// Stats returns the cumulative I/O counters.
func (s *ColumnStore) Stats() IOStats {
	return IOStats{BlockReads: s.reads.Load(), BlockWrites: s.writes.Load()}
}

// ResetStats zeroes the I/O counters.
func (s *ColumnStore) ResetStats() {
	s.reads.Store(0)
	s.writes.Store(0)
}

func (s *ColumnStore) matrixPath(k int) string {
	return filepath.Join(s.dir, fmt.Sprintf("w%03d.col", k))
}

func (s *ColumnStore) blocks(bytes int) int64 {
	return int64((bytes + s.blockSize - 1) / s.blockSize)
}

var colMagic = [4]byte{'U', 'S', 'C', 'S'}

// WriteMatrix persists W(k) given as columns: cols[j] is the sparse
// column j (entries W(k)[i][j]). The file layout is
//
//	magic(4) version(u32) n(u64)
//	offsets: (n+1) × u64 — byte offset of each column's data
//	data:    per column: count uvarint, then (rowIdx uvarint, value f64)
func (s *ColumnStore) WriteMatrix(k int, cols []matrix.Vec) error {
	f, err := os.Create(s.matrixPath(k))
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()

	n := len(cols)
	headerSize := 4 + 4 + 8
	offTableSize := 8 * (n + 1)

	// Encode column payloads first to know offsets.
	payloads := make([][]byte, n)
	var varbuf [binary.MaxVarintLen64]byte
	for j, col := range cols {
		var buf []byte
		m := binary.PutUvarint(varbuf[:], uint64(col.Len()))
		buf = append(buf, varbuf[:m]...)
		for i := range col.Idx {
			m = binary.PutUvarint(varbuf[:], uint64(col.Idx[i]))
			buf = append(buf, varbuf[:m]...)
			var pb [8]byte
			binary.LittleEndian.PutUint64(pb[:], math.Float64bits(col.Val[i]))
			buf = append(buf, pb[:]...)
		}
		payloads[j] = buf
	}

	w := bufio.NewWriter(f)
	total := 0
	if _, err := w.Write(colMagic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	total += headerSize

	off := uint64(headerSize + offTableSize)
	var ob [8]byte
	for j := 0; j <= n; j++ {
		binary.LittleEndian.PutUint64(ob[:], off)
		if _, err := w.Write(ob[:]); err != nil {
			return err
		}
		if j < n {
			off += uint64(len(payloads[j]))
		}
	}
	total += offTableSize
	for _, p := range payloads {
		if _, err := w.Write(p); err != nil {
			return err
		}
		total += len(p)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	s.writes.Add(s.blocks(total))
	return nil
}

// ReadColumn reads column j of W(k) from disk. The cost in block reads is
// header + offsets lookup (1 block) plus the blocks spanned by the
// column payload, mirroring the O(|V|/B) analysis of Sec. VI-A.
func (s *ColumnStore) ReadColumn(k, j int) (matrix.Vec, error) {
	f, err := os.Open(s.matrixPath(k))
	if err != nil {
		return matrix.Vec{}, fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()

	var head [16]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return matrix.Vec{}, fmt.Errorf("diskstore: header: %w", err)
	}
	if [4]byte(head[0:4]) != colMagic {
		return matrix.Vec{}, fmt.Errorf("diskstore: bad magic in %s", s.matrixPath(k))
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != 1 {
		return matrix.Vec{}, fmt.Errorf("diskstore: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint64(head[8:16]))
	if j < 0 || j >= n {
		return matrix.Vec{}, fmt.Errorf("diskstore: column %d out of range [0,%d)", j, n)
	}
	var offs [16]byte
	if _, err := f.ReadAt(offs[:], int64(16+8*j)); err != nil {
		return matrix.Vec{}, fmt.Errorf("diskstore: offsets: %w", err)
	}
	start := binary.LittleEndian.Uint64(offs[0:8])
	end := binary.LittleEndian.Uint64(offs[8:16])
	if end < start {
		return matrix.Vec{}, fmt.Errorf("diskstore: corrupt offsets for column %d", j)
	}
	s.reads.Add(1 + s.blocks(int(end-start)))

	buf := make([]byte, end-start)
	if _, err := f.ReadAt(buf, int64(start)); err != nil {
		return matrix.Vec{}, fmt.Errorf("diskstore: column payload: %w", err)
	}
	r := bufio.NewReader(newByteReader(buf))
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return matrix.Vec{}, fmt.Errorf("diskstore: column count: %w", err)
	}
	col := matrix.Vec{Idx: make([]int32, 0, count), Val: make([]float64, 0, count)}
	for i := uint64(0); i < count; i++ {
		idx, err := binary.ReadUvarint(r)
		if err != nil {
			return matrix.Vec{}, fmt.Errorf("diskstore: column entry: %w", err)
		}
		var pb [8]byte
		if _, err := io.ReadFull(r, pb[:]); err != nil {
			return matrix.Vec{}, fmt.Errorf("diskstore: column value: %w", err)
		}
		col.Idx = append(col.Idx, int32(idx))
		col.Val = append(col.Val, math.Float64frombits(binary.LittleEndian.Uint64(pb[:])))
	}
	return col, nil
}

// NumColumns returns the column count stored for W(k).
func (s *ColumnStore) NumColumns(k int) (int, error) {
	f, err := os.Open(s.matrixPath(k))
	if err != nil {
		return 0, fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()
	var head [16]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, fmt.Errorf("diskstore: header: %w", err)
	}
	if [4]byte(head[0:4]) != colMagic {
		return 0, fmt.Errorf("diskstore: bad magic")
	}
	return int(binary.LittleEndian.Uint64(head[8:16])), nil
}

type byteReader struct {
	b []byte
	i int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

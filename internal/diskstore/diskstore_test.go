package diskstore

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"usimrank/internal/matrix"
	"usimrank/internal/rng"
)

func newStore(t *testing.T) *ColumnStore {
	t.Helper()
	s, err := NewColumnStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestColumnStoreRoundTrip(t *testing.T) {
	s := newStore(t)
	cols := []matrix.Vec{
		matrix.FromMap(map[int32]float64{0: 0.5, 3: 0.25}),
		{},
		matrix.FromMap(map[int32]float64{1: 1}),
	}
	if err := s.WriteMatrix(1, cols); err != nil {
		t.Fatal(err)
	}
	n, err := s.NumColumns(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("NumColumns = %d", n)
	}
	for j, want := range cols {
		got, err := s.ReadColumn(1, j)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("column %d: %+v vs %+v", j, got, want)
		}
		for i := range want.Idx {
			if got.Idx[i] != want.Idx[i] || got.Val[i] != want.Val[i] {
				t.Fatalf("column %d entry %d mismatch", j, i)
			}
		}
	}
}

func TestColumnStoreMultipleMatrices(t *testing.T) {
	s := newStore(t)
	for k := 1; k <= 3; k++ {
		cols := []matrix.Vec{matrix.FromMap(map[int32]float64{int32(k): float64(k)})}
		if err := s.WriteMatrix(k, cols); err != nil {
			t.Fatal(err)
		}
	}
	for k := 1; k <= 3; k++ {
		col, err := s.ReadColumn(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if col.At(int32(k)) != float64(k) {
			t.Fatalf("matrix %d column wrong: %+v", k, col)
		}
	}
}

func TestColumnStoreIOAccounting(t *testing.T) {
	s := newStore(t)
	big := make(map[int32]float64)
	for i := int32(0); i < 5000; i++ {
		big[i] = float64(i)
	}
	if err := s.WriteMatrix(1, []matrix.Vec{matrix.FromMap(big)}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BlockWrites == 0 {
		t.Fatal("no block writes recorded")
	}
	// ~5000 entries × ~10 bytes ≈ 50 KB → at least 10 blocks of 4 KiB.
	if st.BlockWrites < 10 {
		t.Fatalf("BlockWrites = %d, expected ≥ 10", st.BlockWrites)
	}
	if _, err := s.ReadColumn(1, 0); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.BlockReads < 10 {
		t.Fatalf("BlockReads = %d, expected ≥ 10", st.BlockReads)
	}
	s.ResetStats()
	if st := s.Stats(); st.BlockReads != 0 || st.BlockWrites != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestColumnStoreErrors(t *testing.T) {
	s := newStore(t)
	if _, err := s.ReadColumn(9, 0); err == nil {
		t.Fatal("missing matrix accepted")
	}
	if err := s.WriteMatrix(1, []matrix.Vec{{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadColumn(1, 5); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := s.ReadColumn(1, -1); err == nil {
		t.Fatal("negative column accepted")
	}
}

func TestColumnStoreBadMagic(t *testing.T) {
	dir := t.TempDir()
	s, err := NewColumnStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "w001.col"), []byte("garbage-data-here"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadColumn(1, 0); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWalkFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "walks")
	w, err := NewWalkWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	tuples := []WalkTuple{
		{Walk: []int32{0, 2}, P: 0.5, Alpha: 0.7},
		{Walk: []int32{1, 2, 3, 1}, P: 0.125, Alpha: 1},
		{Walk: []int32{4}, P: 1, Alpha: 1},
	}
	for _, tu := range tuples {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewWalkReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range tuples {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want.P || got.Alpha != want.Alpha || len(got.Walk) != len(want.Walk) {
			t.Fatalf("tuple %d: %+v vs %+v", i, got, want)
		}
		for j := range want.Walk {
			if got.Walk[j] != want.Walk[j] {
				t.Fatalf("tuple %d walk mismatch", i)
			}
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWalkWriterRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "walks")
	w, err := NewWalkWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(WalkTuple{}); err == nil {
		t.Fatal("empty walk accepted")
	}
}

func TestWalkTupleStartEnd(t *testing.T) {
	tu := WalkTuple{Walk: []int32{3, 1, 4}}
	if tu.Start() != 3 || tu.End() != 4 {
		t.Fatal("Start/End wrong")
	}
}

func TestWalkReaderTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "walks")
	w, err := NewWalkWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WalkTuple{Walk: []int32{0, 1}, P: 0.5, Alpha: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := NewWalkReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated tuple accepted")
	}
}

func randomTuples(r *rng.RNG, n int) []WalkTuple {
	ts := make([]WalkTuple, n)
	for i := range ts {
		l := 1 + r.Intn(5)
		w := make([]int32, l)
		for j := range w {
			w[j] = int32(r.Intn(20))
		}
		ts[i] = WalkTuple{Walk: w, P: r.Float64(), Alpha: r.Float64()}
	}
	return ts
}

func writeTuples(t *testing.T, path string, ts []WalkTuple) {
	t.Helper()
	w, err := NewWalkWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range ts {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, path string) []WalkTuple {
	t.Helper()
	r, err := NewWalkReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []WalkTuple
	for {
		tu, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tu)
	}
}

func TestSortWalkFileMatchesInMemorySort(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(33)
	for _, maxMem := range []int{0, 7, 1000} { // 7 forces many runs + merge
		ts := randomTuples(r, 200)
		in := filepath.Join(dir, "in")
		out := filepath.Join(dir, "out")
		writeTuples(t, in, ts)
		if err := SortWalkFile(in, out, maxMem); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, out)
		want := append([]WalkTuple(nil), ts...)
		sort.Slice(want, func(i, j int) bool { return compareTuples(want[i], want[j]) < 0 })
		if len(got) != len(want) {
			t.Fatalf("maxMem=%d: %d tuples, want %d", maxMem, len(got), len(want))
		}
		// The sort key ignores P, so tuples with identical walks may
		// permute among themselves; compare key order plus the multiset
		// of P values.
		var gotP, wantP []float64
		for i := range want {
			if compareTuples(got[i], want[i]) != 0 {
				t.Fatalf("maxMem=%d: tuple %d out of order", maxMem, i)
			}
			gotP = append(gotP, got[i].P)
			wantP = append(wantP, want[i].P)
		}
		sort.Float64s(gotP)
		sort.Float64s(wantP)
		for i := range wantP {
			if gotP[i] != wantP[i] {
				t.Fatalf("maxMem=%d: P multiset differs", maxMem)
			}
		}
	}
}

func TestSortWalkFileEmpty(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in")
	out := filepath.Join(dir, "out")
	writeTuples(t, in, nil)
	if err := SortWalkFile(in, out, 10); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, out); len(got) != 0 {
		t.Fatalf("sorted empty file has %d tuples", len(got))
	}
}

func TestSortWalkFileGroupsContiguous(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(55)
	ts := randomTuples(r, 500)
	in := filepath.Join(dir, "in")
	out := filepath.Join(dir, "out")
	writeTuples(t, in, ts)
	if err := SortWalkFile(in, out, 64); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, out)
	seen := make(map[[2]int32]bool)
	var last [2]int32
	first := true
	for _, tu := range got {
		key := [2]int32{tu.Start(), tu.End()}
		if !first && key != last && seen[key] {
			t.Fatalf("group %v split", key)
		}
		seen[key] = true
		last = key
		first = false
	}
}

// Property: external sort output is a permutation of the input.
func TestQuickSortPermutation(t *testing.T) {
	dir := t.TempDir()
	counter := 0
	f := func(seed uint64) bool {
		counter++
		r := rng.New(seed)
		ts := randomTuples(r, 1+r.Intn(100))
		in := filepath.Join(dir, "in"+string(rune('a'+counter%26)))
		out := in + ".sorted"
		w, err := NewWalkWriter(in)
		if err != nil {
			return false
		}
		sumP := 0.0
		for _, tu := range ts {
			if w.Append(tu) != nil {
				return false
			}
			sumP += tu.P
		}
		if w.Close() != nil {
			return false
		}
		if SortWalkFile(in, out, 13) != nil {
			return false
		}
		r2, err := NewWalkReader(out)
		if err != nil {
			return false
		}
		defer r2.Close()
		gotSum, count := 0.0, 0
		for {
			tu, err := r2.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return false
			}
			gotSum += tu.P
			count++
		}
		return count == len(ts) && math.Abs(gotSum-sumP) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

//go:build !unix

package diskstore

import "os"

// mapFile falls back to reading the whole file where mmap is
// unavailable; mapped is always nil on this path.
func mapFile(path string) (data, mapped []byte, err error) {
	data, err = os.ReadFile(path)
	return data, nil, err
}

func munmapFile([]byte) error { return nil }

package diskstore

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SortWalkFile sorts the walk file at in by (start, end, walk) into out
// using an external merge sort: runs of at most maxInMemory tuples are
// sorted in memory and spilled, then merged with a k-way heap. This is
// the grouping step of Fig. 3 (line 15). maxInMemory ≤ 0 selects 1<<20.
func SortWalkFile(in, out string, maxInMemory int) error {
	if maxInMemory <= 0 {
		maxInMemory = 1 << 20
	}
	r, err := NewWalkReader(in)
	if err != nil {
		return err
	}
	defer r.Close()

	tmpDir, err := os.MkdirTemp(filepath.Dir(out), "extsort-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer os.RemoveAll(tmpDir)

	var runs []string
	buf := make([]WalkTuple, 0, maxInMemory)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.Slice(buf, func(i, j int) bool { return compareTuples(buf[i], buf[j]) < 0 })
		path := filepath.Join(tmpDir, fmt.Sprintf("run%06d", len(runs)))
		w, err := NewWalkWriter(path)
		if err != nil {
			return err
		}
		for _, t := range buf {
			if err := w.Append(t); err != nil {
				w.Close()
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		runs = append(runs, path)
		buf = buf[:0]
		return nil
	}

	for {
		t, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		buf = append(buf, t)
		if len(buf) >= maxInMemory {
			if err := flush(); err != nil {
				return err
			}
		}
	}

	// Single in-memory run: write directly.
	if len(runs) == 0 {
		sort.Slice(buf, func(i, j int) bool { return compareTuples(buf[i], buf[j]) < 0 })
		w, err := NewWalkWriter(out)
		if err != nil {
			return err
		}
		for _, t := range buf {
			if err := w.Append(t); err != nil {
				w.Close()
				return err
			}
		}
		return w.Close()
	}
	if err := flush(); err != nil {
		return err
	}
	return mergeRuns(runs, out)
}

type mergeItem struct {
	t   WalkTuple
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return compareTuples(h[i].t, h[j].t) < 0 }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func mergeRuns(runs []string, out string) error {
	readers := make([]*WalkReader, len(runs))
	for i, path := range runs {
		r, err := NewWalkReader(path)
		if err != nil {
			for _, rr := range readers[:i] {
				rr.Close()
			}
			return err
		}
		readers[i] = r
	}
	defer func() {
		for _, r := range readers {
			if r != nil {
				r.Close()
			}
		}
	}()

	h := &mergeHeap{}
	heap.Init(h)
	for i, r := range readers {
		t, err := r.Next()
		if errors.Is(err, io.EOF) {
			continue
		}
		if err != nil {
			return err
		}
		heap.Push(h, mergeItem{t: t, src: i})
	}

	w, err := NewWalkWriter(out)
	if err != nil {
		return err
	}
	for h.Len() > 0 {
		item := heap.Pop(h).(mergeItem)
		if err := w.Append(item.t); err != nil {
			w.Close()
			return err
		}
		t, err := readers[item.src].Next()
		if errors.Is(err, io.EOF) {
			continue
		}
		if err != nil {
			w.Close()
			return err
		}
		heap.Push(h, mergeItem{t: t, src: item.src})
	}
	return w.Close()
}

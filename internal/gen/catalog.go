package gen

import (
	"fmt"

	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// Scale selects the size of the experiment datasets. The paper's sizes
// (Table II) are impractical for a single test run — and the exact
// Baseline is exponential in density — so each dataset exists at three
// scales with the same structural character.
type Scale int

// Scales: Tiny keeps unit tests and benchmarks fast, Small is the default
// for experiment runs, Paper approaches the published sizes (with
// densities capped where the exact algorithms would not terminate; see
// EXPERIMENTS.md for the mapping).
const (
	Tiny Scale = iota
	Small
	Paper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Dataset is a named uncertain-graph workload from the catalog.
type Dataset struct {
	// Name matches the paper's dataset naming with a * suffix marking
	// the synthetic equivalent.
	Name string
	// Kind is "ppi" or "coauth".
	Kind string
	// Build generates the graph deterministically from the seed.
	Build func(seed uint64) *ugraph.Graph
}

// catalogEntry: sizes per scale.
type catalogSpec struct {
	name string
	kind string
	// proteins (ppi) or authors (coauth) per scale
	size [3]int
	// for ppi: noise multiplier ×size; for coauth: collaborations per author
	k [3]int
}

var specs = []catalogSpec{
	// PPI1: 2708 vertices, 7123 edges in the paper (sparse).
	{name: "PPI1*", kind: "ppi", size: [3]int{160, 700, 2708}, k: [3]int{1, 1, 1}},
	// PPI2: 2369 vertices, 249k edges in the paper (very dense). Density
	// is reduced so the exact Baseline terminates; "k" scales noise.
	{name: "PPI2*", kind: "ppi", size: [3]int{140, 600, 2369}, k: [3]int{2, 4, 6}},
	// PPI3: 19247 vertices, 17M edges in the paper (extremely dense).
	{name: "PPI3*", kind: "ppi", size: [3]int{160, 1200, 19247}, k: [3]int{3, 6, 8}},
	// Condmat: 31163 vertices, 240k edges.
	{name: "Condmat*", kind: "coauth", size: [3]int{220, 2000, 31163}, k: [3]int{2, 2, 4}},
	// Net: 1588 vertices, 5484 edges.
	{name: "Net*", kind: "coauth", size: [3]int{150, 1588, 1588}, k: [3]int{2, 2, 2}},
	// DBLP: 1.56M vertices, 8.5M edges. Scaled down hard; the density is
	// raised slightly so the Baseline-vs-sampling crossover of Fig. 9
	// remains visible at this size.
	{name: "DBLP*", kind: "coauth", size: [3]int{400, 8000, 120000}, k: [3]int{3, 5, 5}},
}

// Catalog returns the experiment datasets at the given scale, in the
// paper's Table II order.
func Catalog(scale Scale) []Dataset {
	if scale < Tiny || scale > Paper {
		panic(fmt.Sprintf("gen: bad scale %d", int(scale)))
	}
	out := make([]Dataset, 0, len(specs))
	for _, sp := range specs {
		sp := sp
		size, k := sp.size[scale], sp.k[scale]
		var build func(seed uint64) *ugraph.Graph
		switch sp.kind {
		case "ppi":
			build = func(seed uint64) *ugraph.Graph {
				cfg := DefaultPPIConfig(size)
				cfg.NoiseEdges = size * k
				return PlantedPPI(cfg, rng.New(seed)).Graph
			}
		case "coauth":
			build = func(seed uint64) *ugraph.Graph {
				return CoAuthorship(size, k, rng.New(seed))
			}
		default:
			panic("gen: unknown dataset kind " + sp.kind)
		}
		out = append(out, Dataset{Name: sp.name, Kind: sp.kind, Build: build})
	}
	return out
}

// ByName returns the catalog dataset with the given name at the given
// scale.
func ByName(scale Scale, name string) (Dataset, error) {
	for _, d := range Catalog(scale) {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: no dataset %q in catalog", name)
}

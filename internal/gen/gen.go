// Package gen generates the synthetic uncertain graphs used by the
// experiment harness. The paper evaluates on three protein-protein
// interaction networks (PPI1–PPI3), two co-authorship networks (Net,
// Condmat), the DBLP co-authorship graph, and R-MAT graphs for the
// scalability study (Table II / Sec. VII-A). Those datasets are not
// redistributable, so this package builds structural equivalents: planted
// complex PPI networks (which additionally give the protein case study
// its ground truth), preferential-attachment co-authorship networks with
// interaction-count-derived probabilities (the method of [44]), and the
// R-MAT model of Chakrabarti et al. used by the paper itself.
package gen

import (
	"fmt"
	"math"

	"usimrank/internal/graph"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// RMAT generates a directed graph with 2^scale vertices and m distinct
// arcs by recursive quadrant sampling with probabilities a, b, c and
// d = 1−a−b−c (Chakrabarti, Zhan, Faloutsos, SDM 2004 — reference [5] of
// the paper). Self-loops are permitted, duplicates are rejected and
// resampled.
func RMAT(scale, m int, a, b, c float64, r *rng.RNG) *graph.Graph {
	if scale < 0 || scale > 30 {
		panic(fmt.Sprintf("gen: bad R-MAT scale %d", scale))
	}
	n := 1 << uint(scale)
	if m < 0 || float64(m) > 0.5*float64(n)*float64(n) {
		panic(fmt.Sprintf("gen: cannot place %d distinct arcs in a %d-vertex graph", m, n))
	}
	if a < 0 || b < 0 || c < 0 || a+b+c > 1 {
		panic("gen: bad R-MAT quadrant probabilities")
	}
	seen := make(map[uint64]bool, m)
	gb := graph.NewBuilder(n)
	for len(seen) < m {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			x := r.Float64()
			switch {
			case x < a: // top-left
			case x < a+b: // top-right
				v |= 1 << uint(bit)
			case x < a+b+c: // bottom-left
				u |= 1 << uint(bit)
			default: // bottom-right
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		gb.AddArc(u, v)
	}
	return gb.MustBuild()
}

// WithUniformProbs assigns every arc of g an independent probability
// drawn uniformly from [lo, hi] ⊆ (0, 1], the assignment the paper uses
// for its R-MAT scalability graphs ("probabilities of the edges were
// generated uniformly at random").
func WithUniformProbs(g *graph.Graph, lo, hi float64, r *rng.RNG) *ugraph.Graph {
	if !(lo > 0 && hi <= 1 && lo <= hi) {
		panic(fmt.Sprintf("gen: bad probability range [%v,%v]", lo, hi))
	}
	b := ugraph.NewBuilder(g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Out(u) {
			b.AddArc(u, int(v), lo+(hi-lo)*r.Float64())
		}
	}
	return b.MustBuild()
}

// PPIConfig parameterises the planted-complex PPI generator.
type PPIConfig struct {
	// Proteins is the number of vertices.
	Proteins int
	// Complexes is the number of planted protein complexes.
	Complexes int
	// MinSize and MaxSize bound complex sizes.
	MinSize, MaxSize int
	// IntraDensity is the probability that an intra-complex edge is
	// present in the network at all.
	IntraDensity float64
	// IntraLo and IntraHi bound the existence probabilities of
	// intra-complex interactions (high: confident experimental signals).
	IntraLo, IntraHi float64
	// NoiseEdges is the number of random cross-complex edges.
	NoiseEdges int
	// NoiseLo and NoiseHi bound noise-edge probabilities (low: spurious
	// high-throughput detections).
	NoiseLo, NoiseHi float64
}

// DefaultPPIConfig returns a configuration producing a PPI-like network
// of the given size.
func DefaultPPIConfig(proteins int) PPIConfig {
	return PPIConfig{
		Proteins:     proteins,
		Complexes:    proteins / 8,
		MinSize:      3,
		MaxSize:      9,
		IntraDensity: 0.7,
		IntraLo:      0.6,
		IntraHi:      0.95,
		NoiseEdges:   proteins,
		NoiseLo:      0.05,
		NoiseHi:      0.35,
	}
}

// PPI holds a planted-complex protein interaction network and its ground
// truth (the case-study substitute for the MIPS complex catalogue).
type PPI struct {
	Graph *ugraph.Graph
	// Complexes[i] lists the member proteins of complex i. A protein may
	// belong to at most one complex; leftovers belong to none.
	Complexes [][]int
	// ComplexOf[v] is the complex index of protein v, or -1.
	ComplexOf []int
}

// SameComplex reports whether u and v are members of one complex, the
// ground-truth criterion of the paper's Fig. 13 case study.
func (p *PPI) SameComplex(u, v int) bool {
	return p.ComplexOf[u] >= 0 && p.ComplexOf[u] == p.ComplexOf[v]
}

// PlantedPPI builds a PPI network with planted complexes: dense
// high-probability interactions inside complexes, sparse low-probability
// noise across them. Undirected edges are encoded as arc pairs.
func PlantedPPI(cfg PPIConfig, r *rng.RNG) *PPI {
	if cfg.Proteins < 2 || cfg.Complexes < 1 || cfg.MinSize < 2 || cfg.MaxSize < cfg.MinSize {
		panic(fmt.Sprintf("gen: bad PPI config %+v", cfg))
	}
	p := &PPI{ComplexOf: make([]int, cfg.Proteins)}
	for i := range p.ComplexOf {
		p.ComplexOf[i] = -1
	}
	perm := r.Perm(cfg.Proteins)
	next := 0
	for c := 0; c < cfg.Complexes && next < cfg.Proteins; c++ {
		size := cfg.MinSize + r.Intn(cfg.MaxSize-cfg.MinSize+1)
		if next+size > cfg.Proteins {
			size = cfg.Proteins - next
		}
		if size < cfg.MinSize {
			break
		}
		members := make([]int, size)
		copy(members, perm[next:next+size])
		next += size
		for _, m := range members {
			p.ComplexOf[m] = len(p.Complexes)
		}
		p.Complexes = append(p.Complexes, members)
	}

	type edge struct{ u, v int }
	probs := make(map[edge]float64)
	addEdge := func(u, v int, pr float64) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if _, ok := probs[edge{u, v}]; !ok {
			probs[edge{u, v}] = pr
		}
	}
	for _, members := range p.Complexes {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if r.Bool(cfg.IntraDensity) {
					addEdge(members[i], members[j], cfg.IntraLo+(cfg.IntraHi-cfg.IntraLo)*r.Float64())
				}
			}
		}
	}
	for e := 0; e < cfg.NoiseEdges; e++ {
		u, v := r.Intn(cfg.Proteins), r.Intn(cfg.Proteins)
		addEdge(u, v, cfg.NoiseLo+(cfg.NoiseHi-cfg.NoiseLo)*r.Float64())
	}

	b := ugraph.NewBuilder(cfg.Proteins)
	for e, pr := range probs {
		b.AddEdge(e.u, e.v, pr)
	}
	p.Graph = b.MustBuild()
	return p
}

// CoAuthorship generates an undirected preferential-attachment
// collaboration network of n authors. Each new author collaborates k
// times with authors chosen proportionally to their current degree;
// repeated collaborations raise the edge's interaction count, and the
// edge probability is 1 − exp(−count/2), the interaction-count-to-
// probability transform of [44] (Zou & Li) that the paper applies to its
// Condmat, Net and DBLP datasets.
func CoAuthorship(n, k int, r *rng.RNG) *ugraph.Graph {
	if n < 2 || k < 1 {
		panic(fmt.Sprintf("gen: bad co-authorship parameters n=%d k=%d", n, k))
	}
	type edge struct{ u, v int }
	counts := make(map[edge]int)
	// targets holds one entry per degree unit for proportional sampling.
	targets := make([]int, 0, 2*n*k)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		for i := 0; i < k; i++ {
			var u int
			if len(targets) == 0 {
				u = r.Intn(v)
			} else {
				u = targets[r.Intn(len(targets))]
			}
			if u == v {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			counts[edge{a, b}]++
			targets = append(targets, u, v)
		}
	}
	b := ugraph.NewBuilder(n)
	for e, c := range counts {
		p := 1 - math.Exp(-float64(c)/2)
		if p < 1e-6 {
			p = 1e-6
		}
		b.AddEdge(e.u, e.v, p)
	}
	return b.MustBuild()
}

package gen

import (
	"math"
	"testing"

	"usimrank/internal/rng"
)

func TestRMATBasics(t *testing.T) {
	g := RMAT(8, 1000, 0.45, 0.2, 0.2, rng.New(1))
	if g.NumVertices() != 256 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumArcs() != 1000 {
		t.Fatalf("arcs = %d", g.NumArcs())
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(7, 300, 0.45, 0.2, 0.2, rng.New(9))
	b := RMAT(7, 300, 0.45, 0.2, 0.2, rng.New(9))
	for v := 0; v < a.NumVertices(); v++ {
		ao, bo := a.Out(v), b.Out(v)
		if len(ao) != len(bo) {
			t.Fatal("same seed, different graphs")
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatal("same seed, different graphs")
			}
		}
	}
}

func TestRMATSkewed(t *testing.T) {
	// With a = 0.6 the low-numbered vertices should dominate out-degree.
	g := RMAT(10, 4000, 0.6, 0.15, 0.15, rng.New(3))
	low, high := 0, 0
	half := g.NumVertices() / 2
	for v := 0; v < g.NumVertices(); v++ {
		if v < half {
			low += g.OutDegree(v)
		} else {
			high += g.OutDegree(v)
		}
	}
	if low <= high {
		t.Fatalf("R-MAT not skewed: low-half degree %d vs high-half %d", low, high)
	}
}

func TestRMATPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RMAT(-1, 10, 0.25, 0.25, 0.25, rng.New(1)) },
		func() { RMAT(2, 100, 0.25, 0.25, 0.25, rng.New(1)) }, // too many arcs for 4 vertices
		func() { RMAT(5, 10, 0.5, 0.4, 0.3, rng.New(1)) },     // probs sum > 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad R-MAT arguments accepted")
				}
			}()
			f()
		}()
	}
}

func TestWithUniformProbs(t *testing.T) {
	g := RMAT(8, 500, 0.45, 0.2, 0.2, rng.New(1))
	ug := WithUniformProbs(g, 0.2, 0.8, rng.New(2))
	if ug.NumArcs() != g.NumArcs() {
		t.Fatal("arc count changed")
	}
	for u := 0; u < ug.NumVertices(); u++ {
		for _, p := range ug.OutProbs(u) {
			if p < 0.2 || p > 0.8 {
				t.Fatalf("probability %v outside [0.2,0.8]", p)
			}
		}
	}
	mean := ug.MeanProbability()
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("mean probability %v, want ≈0.5", mean)
	}
}

func TestWithUniformProbsPanics(t *testing.T) {
	g := RMAT(4, 10, 0.45, 0.2, 0.2, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("bad range accepted")
		}
	}()
	WithUniformProbs(g, 0, 0.5, rng.New(1))
}

func TestPlantedPPIStructure(t *testing.T) {
	cfg := DefaultPPIConfig(200)
	p := PlantedPPI(cfg, rng.New(7))
	if p.Graph.NumVertices() != 200 {
		t.Fatalf("vertices = %d", p.Graph.NumVertices())
	}
	if len(p.Complexes) == 0 {
		t.Fatal("no complexes planted")
	}
	// Complex membership is consistent.
	for ci, members := range p.Complexes {
		if len(members) < cfg.MinSize {
			t.Fatalf("complex %d has %d members", ci, len(members))
		}
		for _, m := range members {
			if p.ComplexOf[m] != ci {
				t.Fatalf("protein %d: ComplexOf=%d, expected %d", m, p.ComplexOf[m], ci)
			}
		}
	}
	// SameComplex sanity.
	m0 := p.Complexes[0]
	if !p.SameComplex(m0[0], m0[1]) {
		t.Fatal("complex members not SameComplex")
	}
}

func TestPlantedPPIProbabilityStructure(t *testing.T) {
	cfg := DefaultPPIConfig(300)
	p := PlantedPPI(cfg, rng.New(11))
	g := p.Graph
	var intraSum, interSum float64
	var intraN, interN int
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			if int(v) < u {
				continue // count each undirected edge once
			}
			if p.SameComplex(u, int(v)) {
				intraSum += probs[i]
				intraN++
			} else {
				interSum += probs[i]
				interN++
			}
		}
	}
	if intraN == 0 || interN == 0 {
		t.Fatalf("degenerate PPI: %d intra, %d inter edges", intraN, interN)
	}
	if intraSum/float64(intraN) <= interSum/float64(interN) {
		t.Fatal("intra-complex probabilities not higher than noise")
	}
}

func TestPlantedPPIUndirected(t *testing.T) {
	p := PlantedPPI(DefaultPPIConfig(100), rng.New(3))
	g := p.Graph
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			if g.Prob(int(v), u) != probs[i] {
				t.Fatalf("edge (%d,%d) not symmetric", u, v)
			}
		}
	}
}

func TestCoAuthorshipStructure(t *testing.T) {
	g := CoAuthorship(500, 3, rng.New(5))
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumArcs() == 0 {
		t.Fatal("no arcs")
	}
	// Undirected encoding.
	for u := 0; u < g.NumVertices(); u++ {
		probs := g.OutProbs(u)
		for i, v := range g.Out(u) {
			if g.Prob(int(v), u) != probs[i] {
				t.Fatalf("edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	// Preferential attachment should produce a skewed degree sequence.
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := g.AverageOutDegree()
	if float64(maxDeg) < 4*avg {
		t.Fatalf("degree sequence not skewed: max %d, avg %v", maxDeg, avg)
	}
}

func TestCoAuthorshipProbabilities(t *testing.T) {
	g := CoAuthorship(300, 2, rng.New(13))
	// All probabilities come from 1−exp(−c/2) with integer c ≥ 1, so the
	// minimum is 1−exp(−1/2) ≈ 0.393.
	min := 1.0
	for u := 0; u < g.NumVertices(); u++ {
		for _, p := range g.OutProbs(u) {
			if p < min {
				min = p
			}
		}
	}
	if math.Abs(min-(1-math.Exp(-0.5))) > 1e-9 {
		t.Fatalf("minimum probability %v, want %v", min, 1-math.Exp(-0.5))
	}
}

func TestCatalogAllScales(t *testing.T) {
	for _, scale := range []Scale{Tiny, Small} {
		for _, d := range Catalog(scale) {
			g := d.Build(42)
			if g.NumVertices() == 0 || g.NumArcs() == 0 {
				t.Fatalf("%s at %v is degenerate", d.Name, scale)
			}
			// Determinism.
			h := d.Build(42)
			if h.NumArcs() != g.NumArcs() {
				t.Fatalf("%s at %v not deterministic", d.Name, scale)
			}
		}
	}
}

func TestCatalogSizesGrow(t *testing.T) {
	tiny, small := Catalog(Tiny), Catalog(Small)
	for i := range tiny {
		gt := tiny[i].Build(1)
		gs := small[i].Build(1)
		if gs.NumVertices() <= gt.NumVertices() {
			t.Fatalf("%s: small (%d) not larger than tiny (%d)",
				tiny[i].Name, gs.NumVertices(), gt.NumVertices())
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName(Tiny, "Net*")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "Net*" {
		t.Fatalf("got %q", d.Name)
	}
	if _, err := ByName(Tiny, "nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestScaleString(t *testing.T) {
	if Tiny.String() != "tiny" || Small.String() != "small" || Paper.String() != "paper" {
		t.Fatal("Scale strings wrong")
	}
}

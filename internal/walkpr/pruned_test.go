package walkpr

import (
	"math"
	"testing"

	"usimrank/internal/matrix"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

func TestPrunedNoPruningEqualsExact(t *testing.T) {
	g := ugraph.PaperFig1()
	for src := 0; src < g.NumVertices(); src++ {
		pr, err := TransitionRowsPruned(g, src, 4, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := TransitionRows(g, src, 4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 4; k++ {
			if pr.LostMass[k] != 0 {
				t.Fatalf("lost mass %v without pruning", pr.LostMass[k])
			}
			if !rowsClose([]matrix.Vec{pr.Rows[k]}, []matrix.Vec{exact[k]}, 1e-12) {
				t.Fatalf("src %d k %d: rows differ", src, k)
			}
		}
	}
}

func TestPrunedBoundsHold(t *testing.T) {
	g := ugraph.PaperFig1()
	for _, maxStates := range []int{1, 2, 4, 8} {
		for src := 0; src < g.NumVertices(); src++ {
			pr, err := TransitionRowsPruned(g, src, 5, maxStates)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := TransitionRows(g, src, 5, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= 5; k++ {
				for v := int32(0); v < int32(g.NumVertices()); v++ {
					lo := pr.Rows[k].At(v)
					ex := exact[k].At(v)
					if lo > ex+1e-12 {
						t.Fatalf("maxStates=%d src=%d k=%d v=%d: lower bound %v above exact %v",
							maxStates, src, k, v, lo, ex)
					}
					if ex > lo+pr.LostMass[k]+1e-12 {
						t.Fatalf("maxStates=%d src=%d k=%d v=%d: exact %v above bound %v+%v",
							maxStates, src, k, v, ex, lo, pr.LostMass[k])
					}
				}
			}
		}
	}
}

func TestPrunedLostMassMonotone(t *testing.T) {
	g := ugraph.PaperFig1()
	pr, err := TransitionRowsPruned(g, 0, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		if pr.LostMass[k] < pr.LostMass[k-1]-1e-15 {
			t.Fatalf("lost mass not monotone: %v", pr.LostMass)
		}
		if pr.States[k] > 3 {
			t.Fatalf("level %d kept %d states", k, pr.States[k])
		}
	}
	if pr.LostMass[6] <= 0 {
		t.Fatal("pruning with 3 states lost no mass (suspicious)")
	}
}

func TestPrunedStateCountRespected(t *testing.T) {
	// Dense random graph where exact enumeration would blow up.
	r := rng.New(77)
	b := ugraph.NewBuilder(30)
	for u := 0; u < 30; u++ {
		for v := 0; v < 30; v++ {
			if u != v && r.Bool(0.4) {
				b.AddArc(u, v, 0.2+0.8*r.Float64())
			}
		}
	}
	g := b.MustBuild()
	pr, err := TransitionRowsPruned(g, 0, 6, 500)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range pr.States {
		if s > 500 {
			t.Fatalf("level %d kept %d states", k, s)
		}
	}
	// Rows remain substochastic.
	for k, row := range pr.Rows {
		if row.Sum() > 1+1e-9 {
			t.Fatalf("row %d sums to %v", k, row.Sum())
		}
	}
}

func TestMeetingBounds(t *testing.T) {
	g := ugraph.PaperFig1()
	ru, err := TransitionRowsPruned(g, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := TransitionRowsPruned(g, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	exactU, err := TransitionRows(g, 0, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exactV, err := TransitionRows(g, 1, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 4; k++ {
		lo, hi := MeetingBounds(ru, rv, k)
		exact := exactU[k].Dot(exactV[k])
		if exact < lo-1e-12 || exact > hi+1e-12 {
			t.Fatalf("k=%d: exact %v outside [%v, %v]", k, exact, lo, hi)
		}
		if hi > 1 {
			t.Fatalf("upper bound %v above 1", hi)
		}
	}
}

func TestPrunedBadArgs(t *testing.T) {
	g := ugraph.PaperFig1()
	if _, err := TransitionRowsPruned(g, -1, 3, 10); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := TransitionRowsPruned(g, 0, -1, 10); err == nil {
		t.Fatal("bad K accepted")
	}
	if _, err := TransitionRowsPruned(g, 0, 3, 0); err == nil {
		t.Fatal("bad maxStates accepted")
	}
}

func TestPrunedDeterministic(t *testing.T) {
	g := ugraph.PaperFig1()
	a, err := TransitionRowsPruned(g, 2, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TransitionRowsPruned(g, 2, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 5; k++ {
		if math.Abs(a.LostMass[k]-b.LostMass[k]) > 0 {
			t.Fatal("pruning not deterministic")
		}
	}
}

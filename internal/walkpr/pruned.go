package walkpr

import (
	"fmt"
	"sort"

	"usimrank/internal/matrix"
	"usimrank/internal/ugraph"
)

// PrunedResult holds approximate transition rows together with a
// certified bound on the probability mass the pruning discarded.
type PrunedResult struct {
	// Rows[k] under-approximates Pr(src →k ·) entrywise.
	Rows []matrix.Vec
	// LostMass[k] bounds the total probability discarded up to step k:
	// for every vertex v, Rows[k][v] ≤ Pr(src →k v) ≤ Rows[k][v] +
	// LostMass[k].
	LostMass []float64
	// States[k] is the number of live walk states kept at each level.
	States []int
}

// TransitionRowsPruned computes k-step transition rows like
// TransitionRows but keeps at most maxStates walk states per level,
// discarding the least probable ones. Discarded probability mass is
// tracked exactly: once a state is dropped, every walk extending it is
// gone, and because extensions never increase a walk's probability the
// dropped mass at level k can only shrink at later levels — so the
// accumulated counter is a valid entrywise error bound for all
// subsequent rows.
//
// This trades the exact method's exponential blow-up for a certified
// approximation, the natural middle ground between the paper's Baseline
// and its Sampling algorithm on graphs too dense for the former.
func TransitionRowsPruned(g *ugraph.Graph, src, K, maxStates int) (*PrunedResult, error) {
	if src < 0 || src >= g.NumVertices() {
		return nil, fmt.Errorf("walkpr: source %d out of range [0,%d)", src, g.NumVertices())
	}
	if K < 0 {
		return nil, fmt.Errorf("walkpr: negative K %d", K)
	}
	if maxStates < 1 {
		return nil, fmt.Errorf("walkpr: maxStates %d < 1", maxStates)
	}
	cache := newAlphaCache(g)

	res := &PrunedResult{
		Rows:     make([]matrix.Vec, K+1),
		LostMass: make([]float64, K+1),
		States:   make([]int, K+1),
	}
	res.Rows[0] = matrix.Unit(int32(src))
	res.States[0] = 1

	// As in TransitionRows, the maps are only dedup indexes: every fold
	// (probability merge, prune, row accumulation) runs over the
	// insertion-order slice so the result is bit-deterministic.
	level := []*walkState{{end: int32(src), p: 1}}
	lost := 0.0
	for k := 1; k <= K; k++ {
		var next []*walkState
		nextIndex := make(map[string]*walkState)
		for _, st := range level {
			e := st.end
			for _, w := range g.Out(int(e)) {
				entries, oldOw, oldC, newOw, newC := extendEntries(st.entries, e, w)
				aOld := cache.alpha(e, oldOw, int(oldC))
				aNew := cache.alpha(e, newOw, int(newC))
				p := st.p * aNew / aOld
				key := stateKey(w, entries)
				if ns, ok := nextIndex[key]; ok {
					ns.p += p
				} else {
					ns = &walkState{end: w, entries: entries, p: p}
					nextIndex[key] = ns
					next = append(next, ns)
				}
			}
		}
		if len(next) > maxStates {
			// Keep the maxStates most probable states; count the rest as
			// lost mass. The stable sort breaks probability ties by
			// insertion order, keeping the prune deterministic.
			sort.SliceStable(next, func(i, j int) bool { return next[i].p > next[j].p })
			for _, st := range next[maxStates:] {
				lost += st.p
			}
			next = next[:maxStates]
		}
		acc := make(map[int32]float64)
		for _, st := range next {
			acc[st.end] += st.p
		}
		res.Rows[k] = matrix.FromMap(acc)
		res.LostMass[k] = lost
		res.States[k] = len(next)
		level = next
	}
	return res, nil
}

// MeetingBounds combines two pruned row sets into lower and upper bounds
// on the meeting probability m(k)(u,v) = Σ_w Pr(u →k w)·Pr(v →k w):
// the lower bound is the dot product of the under-approximations, the
// upper bound adds the cross terms the lost mass could contribute.
func MeetingBounds(ru, rv *PrunedResult, k int) (lo, hi float64) {
	lo = ru.Rows[k].Dot(rv.Rows[k])
	// Each unit of lost mass on one side meets the other side's true row
	// with probability at most the row's maximum entry ≤ 1; bound simply
	// and safely.
	hi = lo + ru.LostMass[k] + rv.LostMass[k]
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

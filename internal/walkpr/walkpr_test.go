package walkpr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"usimrank/internal/matrix"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

const eps = 1e-10

// TestAlphaTableI reproduces the α values of the paper's Table I for the
// walk W = v1,v3,v1,v3,v4,v2,v3,v4,v2 on the Fig. 1(a) graph.
//
// Three of the four published values match Eq. 11 exactly. The published
// α_W(v1) = 0.64 = 0.8² contradicts Eq. 11 (which gives P(v1,v3) = 0.8:
// the arc's existence is a single event regardless of how often the walk
// uses it); 0.64 is what the independence assumption the paper refutes
// would produce, so we treat it as a typo. The enumeration oracle in
// TestWalkPrMatchesEnumeration confirms Eq. 11 is the correct value.
func TestAlphaTableI(t *testing.T) {
	g := ugraph.PaperFig1()
	cases := []struct {
		v    int32
		ow   []int32
		c    int
		want float64
	}{
		{0, []int32{2}, 2, 0.8},       // v1: paper's table prints 0.64 (typo, see above)
		{1, []int32{2}, 1, 0.54},      // v2: 0.9·(0.2·1 + 0.8·½) = 0.54
		{2, []int32{0, 3}, 3, 0.0375}, // v3: 0.5·0.6·(½)³ = 0.0375
		{3, []int32{1}, 2, 0.385},     // v4: 0.7·(0.4·1 + 0.6·(½)²) = 0.385
	}
	for _, c := range cases {
		if got := Alpha(g, c.v, c.ow, c.c); math.Abs(got-c.want) > eps {
			t.Errorf("Alpha(v%d, %v, %d) = %v, want %v", c.v+1, c.ow, c.c, got, c.want)
		}
	}
}

func TestWalkPrTableIWalk(t *testing.T) {
	g := ugraph.PaperFig1()
	w := ugraph.PaperTableIWalk()
	want := 0.8 * 0.54 * 0.0375 * 0.385
	if got := WalkPr(g, w); math.Abs(got-want) > eps {
		t.Fatalf("WalkPr = %v, want %v", got, want)
	}
	// Cross-check against exhaustive enumeration.
	oracle, err := EnumWalkPr(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(oracle-want) > eps {
		t.Fatalf("enumeration oracle = %v, want %v (confirms Table I v1 typo)", oracle, want)
	}
}

func TestAlphaSingleStepIsExpectedTransition(t *testing.T) {
	// For a single-step walk u,v: α(u,{v},1) = P(u,v)·E[1/(1+X)] where X
	// counts existing other arcs. Check v2 → v3 by hand:
	// 0.9 · (0.2·1 + 0.8·0.5) = 0.54.
	g := ugraph.PaperFig1()
	if got := Alpha(g, 1, []int32{2}, 1); math.Abs(got-0.54) > eps {
		t.Fatalf("α = %v", got)
	}
}

func TestAlphaNoRequiredArcsIsOne(t *testing.T) {
	g := ugraph.PaperFig1()
	for v := int32(0); v < 5; v++ {
		if got := Alpha(g, v, nil, 0); math.Abs(got-1) > eps {
			t.Fatalf("Alpha(v%d, ∅, 0) = %v, want 1", v+1, got)
		}
	}
}

func TestAlphaCertainArcSingleOut(t *testing.T) {
	// Vertex with one certain out-arc: α({v},c) = 1 for any c.
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 1, 1)
	g := b.MustBuild()
	for c := 1; c <= 4; c++ {
		if got := Alpha(g, 0, []int32{1}, c); math.Abs(got-1) > eps {
			t.Fatalf("c=%d: α = %v", c, got)
		}
	}
}

func TestAlphaPanicsOnNonNeighbour(t *testing.T) {
	g := ugraph.PaperFig1()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-neighbour")
		}
	}()
	Alpha(g, 0, []int32{4}, 1) // v5 is not an out-neighbour of v1
}

func TestWalkPrNonWalkIsZero(t *testing.T) {
	g := ugraph.PaperFig1()
	if got := WalkPr(g, []int32{0, 4}); got != 0 {
		t.Fatalf("non-walk probability %v", got)
	}
}

func TestWalkPrSingleVertexIsOne(t *testing.T) {
	g := ugraph.PaperFig1()
	if got := WalkPr(g, []int32{3}); got != 1 {
		t.Fatalf("length-0 walk probability %v", got)
	}
}

func TestWalkPrMatchesEnumeration(t *testing.T) {
	g := ugraph.PaperFig1()
	walks := [][]int32{
		{0, 2},
		{0, 2, 0},
		{0, 2, 0, 2},
		{0, 2, 3, 1},
		{1, 2, 3, 4, 2},
		{2, 3, 1, 2, 3},
		{4, 2, 0, 2, 3, 4},
		ugraph.PaperTableIWalk(),
	}
	for _, w := range walks {
		want, err := EnumWalkPr(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if got := WalkPr(g, w); math.Abs(got-want) > eps {
			t.Fatalf("walk %v: WalkPr %v, oracle %v", w, got, want)
		}
	}
}

func randUGraph(r *rng.RNG, n, maxArcs int) *ugraph.Graph {
	b := ugraph.NewBuilder(n)
	arcs := 0
	for u := 0; u < n && arcs < maxArcs; u++ {
		for v := 0; v < n && arcs < maxArcs; v++ {
			if r.Bool(0.4) {
				b.AddArc(u, v, 0.1+0.9*r.Float64())
			}
			arcs = b.NumArcs()
		}
	}
	return b.MustBuild()
}

// randWalk draws a random walk over potential arcs (ignoring
// probabilities), or nil if it gets stuck.
func randWalk(r *rng.RNG, g *ugraph.Graph, length int) []int32 {
	w := []int32{int32(r.Intn(g.NumVertices()))}
	for len(w) <= length {
		nbrs := g.Out(int(w[len(w)-1]))
		if len(nbrs) == 0 {
			return nil
		}
		w = append(w, nbrs[r.Intn(len(nbrs))])
	}
	return w
}

// Property: WalkPr equals the enumeration oracle on random small graphs.
func TestQuickWalkPrOracle(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randUGraph(r, 2+r.Intn(4), 10)
		w := randWalk(r, g, 1+r.Intn(5))
		if w == nil {
			return true
		}
		want, err := EnumWalkPr(g, w)
		if err != nil {
			return false
		}
		return math.Abs(WalkPr(g, w)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func rowsClose(a, b []matrix.Vec, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		seen := make(map[int32]bool)
		for _, i := range a[k].Idx {
			seen[i] = true
		}
		for _, i := range b[k].Idx {
			seen[i] = true
		}
		for i := range seen {
			if math.Abs(a[k].At(i)-b[k].At(i)) > tol {
				return false
			}
		}
	}
	return true
}

func TestTransitionRowsFig1MatchesEnumeration(t *testing.T) {
	g := ugraph.PaperFig1()
	for src := 0; src < g.NumVertices(); src++ {
		got, err := TransitionRows(g, src, 4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := EnumTransitionRows(g, src, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !rowsClose(got, want, 1e-9) {
			t.Fatalf("src %d: rows mismatch\ngot:  %+v\nwant: %+v", src, got, want)
		}
	}
}

func TestTransitionRowsRowZeroIsUnit(t *testing.T) {
	g := ugraph.PaperFig1()
	rows, err := TransitionRows(g, 2, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Len() != 1 || rows[0].At(2) != 1 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
}

func TestTransitionRowsSubstochastic(t *testing.T) {
	g := ugraph.PaperFig1()
	rows, err := TransitionRows(g, 0, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, row := range rows {
		if s := row.Sum(); s > 1+eps || s < 0 {
			t.Fatalf("row %d sums to %v", k, s)
		}
		for _, v := range row.Val {
			if v < -eps || v > 1+eps {
				t.Fatalf("row %d has entry %v", k, v)
			}
		}
	}
}

func TestTransitionRowsDeterministicGraphIsMatrixPower(t *testing.T) {
	// On a certain graph the rows must equal powers of the row-normalised
	// adjacency matrix, W(k) = A^k (Sec. II).
	b := ugraph.NewBuilder(4)
	b.AddArc(0, 1, 1)
	b.AddArc(0, 2, 1)
	b.AddArc(1, 2, 1)
	b.AddArc(2, 0, 1)
	b.AddArc(2, 3, 1)
	b.AddArc(3, 0, 1)
	g := b.MustBuild()

	mb := matrix.NewCSRBuilder(4)
	for u := 0; u < 4; u++ {
		deg := g.OutDegree(u)
		for _, v := range g.Out(u) {
			mb.Set(u, int(v), 1/float64(deg))
		}
	}
	a := mb.MustBuild()

	for src := 0; src < 4; src++ {
		rows, err := TransitionRows(g, src, 5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var ws matrix.Workspace
		cur := matrix.Unit(int32(src))
		for k := 1; k <= 5; k++ {
			cur = a.LeftMul(&ws, cur)
			if !rowsClose([]matrix.Vec{rows[k]}, []matrix.Vec{cur}, 1e-12) {
				t.Fatalf("src %d k %d: %+v vs %+v", src, k, rows[k], cur)
			}
		}
	}
}

// TestWkNotPowerOfW1 verifies the paper's central finding: on an
// uncertain graph with a short cycle, W(2) ≠ W(1)².
func TestWkNotPowerOfW1(t *testing.T) {
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 1, 0.5)
	b.AddArc(1, 0, 0.5)
	b.AddArc(0, 0, 0.5) // self-loop makes even W(2)[0][·] history-dependent
	g := b.MustBuild()

	rows, err := TransitionRows(g, 0, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w1 := ExpectedOneStep(g)
	var ws matrix.Workspace
	power := w1.LeftMul(&ws, w1.LeftMul(&ws, matrix.Unit(0)))

	diff := 0.0
	for v := int32(0); v < 2; v++ {
		if d := math.Abs(rows[2].At(v) - power.At(v)); d > diff {
			diff = d
		}
	}
	if diff < 1e-6 {
		t.Fatalf("W(2) equals W(1)² (diff %v); expected them to differ", diff)
	}
	// And the exact rows must match enumeration.
	want, err := EnumTransitionRows(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsClose(rows, want, 1e-9) {
		t.Fatal("exact rows do not match enumeration")
	}
}

func TestExpectedOneStepMatchesRows(t *testing.T) {
	g := ugraph.PaperFig1()
	w1 := ExpectedOneStep(g)
	for src := 0; src < g.NumVertices(); src++ {
		rows, err := TransitionRows(g, src, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if math.Abs(rows[1].At(int32(v))-w1.At(src, v)) > eps {
				t.Fatalf("W(1)[%d][%d]: %v vs %v", src, v, rows[1].At(int32(v)), w1.At(src, v))
			}
		}
	}
}

func TestTransitionRowsProductOnDAG(t *testing.T) {
	// A DAG has no cycles, so the product recurrence is exact for any K.
	b := ugraph.NewBuilder(5)
	b.AddArc(0, 1, 0.7)
	b.AddArc(0, 2, 0.4)
	b.AddArc(1, 3, 0.9)
	b.AddArc(2, 3, 0.8)
	b.AddArc(3, 4, 0.5)
	g := b.MustBuild()

	got, err := TransitionRowsProduct(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EnumTransitionRows(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsClose(got, want, 1e-9) {
		t.Fatalf("product path wrong on DAG:\ngot  %+v\nwant %+v", got, want)
	}
	// And it agrees with the general method.
	general, err := TransitionRows(g, 0, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsClose(got, general, 1e-9) {
		t.Fatal("product path disagrees with state-merged method on DAG")
	}
}

func TestTransitionRowsProductRejectsShortCycles(t *testing.T) {
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 1, 0.5)
	b.AddArc(1, 0, 0.5)
	g := b.MustBuild()
	if _, err := TransitionRowsProduct(g, 0, 4); err == nil {
		t.Fatal("product path accepted a 2-cycle with K=4")
	}
	// K = 1 never needs the girth condition.
	if _, err := TransitionRowsProduct(g, 0, 1); err != nil {
		t.Fatalf("K=1 rejected: %v", err)
	}
}

func TestTransitionRowsStateCap(t *testing.T) {
	g := ugraph.PaperFig1()
	_, err := TransitionRows(g, 0, 6, Options{MaxStates: 2})
	if !errors.Is(err, ErrStateExplosion) {
		t.Fatalf("err = %v, want ErrStateExplosion", err)
	}
}

func TestTransitionRowsBadArgs(t *testing.T) {
	g := ugraph.PaperFig1()
	if _, err := TransitionRows(g, -1, 2, Options{}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := TransitionRows(g, 99, 2, Options{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := TransitionRows(g, 0, -1, Options{}); err == nil {
		t.Fatal("negative K accepted")
	}
}

func TestTransitionRowsSinkVertex(t *testing.T) {
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 1, 0.6)
	g := b.MustBuild()
	rows, err := TransitionRows(g, 1, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if rows[k].Len() != 0 {
			t.Fatalf("sink row %d = %+v", k, rows[k])
		}
	}
}

// Property: state-merged rows equal the enumeration oracle on random
// small uncertain graphs.
func TestQuickTransitionRowsOracle(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randUGraph(r, 2+r.Intn(4), 11)
		src := r.Intn(g.NumVertices())
		K := 1 + r.Intn(4)
		got, err := TransitionRows(g, src, K, Options{})
		if err != nil {
			return false
		}
		want, err := EnumTransitionRows(g, src, K)
		if err != nil {
			return false
		}
		return rowsClose(got, want, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransitionRowsFig1(b *testing.B) {
	g := ugraph.PaperFig1()
	for i := 0; i < b.N; i++ {
		if _, err := TransitionRows(g, 0, 5, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkPr(b *testing.B) {
	g := ugraph.PaperFig1()
	w := ugraph.PaperTableIWalk()
	for i := 0; i < b.N; i++ {
		WalkPr(g, w)
	}
}

package walkpr

import (
	"errors"
	"fmt"
	"sort"

	"usimrank/internal/matrix"
	"usimrank/internal/ugraph"
)

// DefaultMaxStates bounds the number of live walk states per level in
// TransitionRows. The exact method is inherently exponential in the walk
// length (the paper controls it the same way, by spilling walk files to
// disk and by evaluating on sparse graphs); the cap turns a runaway
// computation into a clean error.
const DefaultMaxStates = 4_000_000

// ErrStateExplosion is returned when TransitionRows exceeds its state cap.
var ErrStateExplosion = errors.New("walkpr: walk state explosion, graph too dense for exact method")

// Options configures TransitionRows.
type Options struct {
	// MaxStates caps live states per level; 0 means DefaultMaxStates.
	MaxStates int
}

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

// visitEntry records, for one vertex of a walk, the set of out-neighbours
// the walk has used from it (O_W(v)) and how many transitions left it
// (c_W(v)). Entries are kept sorted by vertex.
type visitEntry struct {
	v  int32
	c  int32
	ow []int32 // sorted, distinct
}

// walkState is the merged state of all walks that share an endpoint and a
// visit record: by Lemma 2 the probability of any extension depends only
// on this pair, so their probabilities can be summed.
type walkState struct {
	end     int32
	entries []visitEntry
	p       float64
}

// key returns a canonical byte-string identity of (endpoint, record).
func stateKey(end int32, entries []visitEntry) string {
	n := 4
	for _, e := range entries {
		n += 12 + 4*len(e.ow)
	}
	buf := make([]byte, 0, n)
	buf = appendI32(buf, end)
	for _, e := range entries {
		buf = appendI32(buf, e.v)
		buf = appendI32(buf, e.c)
		buf = appendI32(buf, int32(len(e.ow)))
		for _, w := range e.ow {
			buf = appendI32(buf, w)
		}
	}
	return string(buf)
}

func appendI32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// extendEntries returns a copy of entries with the transition e→w
// recorded, along with the old and new (ow, c) of e for the α ratio.
func extendEntries(entries []visitEntry, e, w int32) (out []visitEntry, oldOw []int32, oldC int32, newOw []int32, newC int32) {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].v >= e })
	out = make([]visitEntry, 0, len(entries)+1)
	out = append(out, entries[:i]...)
	if i < len(entries) && entries[i].v == e {
		old := entries[i]
		oldOw, oldC = old.ow, old.c
		newC = old.c + 1
		j := sort.Search(len(old.ow), func(j int) bool { return old.ow[j] >= w })
		if j < len(old.ow) && old.ow[j] == w {
			newOw = old.ow // already used this arc; set unchanged
		} else {
			newOw = make([]int32, 0, len(old.ow)+1)
			newOw = append(newOw, old.ow[:j]...)
			newOw = append(newOw, w)
			newOw = append(newOw, old.ow[j:]...)
		}
		out = append(out, visitEntry{v: e, c: newC, ow: newOw})
		out = append(out, entries[i+1:]...)
		return out, oldOw, oldC, newOw, newC
	}
	newOw, newC = []int32{w}, 1
	out = append(out, visitEntry{v: e, c: 1, ow: newOw})
	out = append(out, entries[i:]...)
	return out, nil, 0, newOw, newC
}

// TransitionRows computes the exact k-step transition probability rows
// Pr_G(src →k ·) for k = 0..K (Eq. 6/7), the quantity the paper's
// Baseline needs. Row 0 is the unit vector at src. Rows are substochastic
// when dead ends are possible.
//
// The computation extends all walks level by level, merging walks that
// share (endpoint, visit record) — Lemma 2 guarantees the merge is exact —
// and uses the memoised α ratio to update probabilities incrementally.
//
// Every float accumulation folds in deterministic insertion order (the
// maps are used only for deduplication; iteration runs over an order
// slice), so the rows are bit-identical across runs — the property the
// engine's parallelism guarantee and the repository's reproducibility
// contract both rest on.
func TransitionRows(g *ugraph.Graph, src int, K int, opt Options) ([]matrix.Vec, error) {
	w, err := NewRowWalker(g, src, opt)
	if err != nil {
		return nil, err
	}
	return w.Rows(K)
}

// RowWalker extends one source's exact transition rows a level at a
// time, keeping the live walk states between calls. Progressive
// consumers — the tail-bound-pruned top-k search deepens candidates
// step by step and abandons most of them early — pay for each level
// exactly once, instead of recomputing rows 0..j from scratch at every
// deepening step as repeated TransitionRows calls would. The rows are
// bit-identical to TransitionRows at every depth (TransitionRows is a
// RowWalker run to depth K in one call).
type RowWalker struct {
	g         *ugraph.Graph
	cache     *alphaCache
	maxStates int
	rows      []matrix.Vec // rows[k] for k = 0..len-1, monotonically extended
	level     []*walkState // live states at depth len(rows)-1
}

// NewRowWalker returns a walker positioned at depth 0 (rows[0] is the
// unit vector at src).
func NewRowWalker(g *ugraph.Graph, src int, opt Options) (*RowWalker, error) {
	if src < 0 || src >= g.NumVertices() {
		return nil, fmt.Errorf("walkpr: source %d out of range [0,%d)", src, g.NumVertices())
	}
	return &RowWalker{
		g:         g,
		cache:     newAlphaCache(g),
		maxStates: opt.maxStates(),
		rows:      []matrix.Vec{matrix.Unit(int32(src))},
		level:     []*walkState{{end: int32(src), p: 1}},
	}, nil
}

// Rows extends the walker to depth K if needed and returns rows 0..K.
// The returned slice aliases the walker's internal state; callers must
// not mutate it.
func (rw *RowWalker) Rows(K int) ([]matrix.Vec, error) {
	if K < 0 {
		return nil, fmt.Errorf("walkpr: negative K %d", K)
	}
	for k := len(rw.rows); k <= K; k++ {
		var next []*walkState
		nextIndex := make(map[string]*walkState)
		for _, st := range rw.level {
			e := st.end
			for _, w := range rw.g.Out(int(e)) {
				entries, oldOw, oldC, newOw, newC := extendEntries(st.entries, e, w)
				aOld := rw.cache.alpha(e, oldOw, int(oldC))
				aNew := rw.cache.alpha(e, newOw, int(newC))
				p := st.p * aNew / aOld
				key := stateKey(w, entries)
				if ns, ok := nextIndex[key]; ok {
					ns.p += p
				} else {
					if len(nextIndex) >= rw.maxStates {
						return nil, fmt.Errorf("%w: more than %d states at step %d", ErrStateExplosion, rw.maxStates, k)
					}
					ns = &walkState{end: w, entries: entries, p: p}
					nextIndex[key] = ns
					next = append(next, ns)
				}
			}
		}
		acc := make(map[int32]float64)
		for _, st := range next {
			acc[st.end] += st.p
		}
		rw.rows = append(rw.rows, matrix.FromMap(acc))
		rw.level = next
	}
	return rw.rows[:K+1], nil
}

// ExpectedOneStep returns the exact expected one-step transition matrix
// W(1) of the uncertain graph: W(1)[u][v] = Pr_G(u →1 v) = α for the
// single-step walk u,v. This is also the matrix the Du-et-al baseline
// raises to the k-th power.
func ExpectedOneStep(g *ugraph.Graph) *matrix.CSR {
	b := matrix.NewCSRBuilder(g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Out(u) {
			b.Set(u, int(v), Alpha(g, int32(u), []int32{v}, 1))
		}
	}
	return b.MustBuild()
}

// ProductPropagator computes exact transition rows by the matrix-product
// recurrence row(k) = row(k−1)·W(1) (Lemma 3). The girth check and the
// expected one-step matrix are paid once at construction; per-source
// queries are then K sparse vector-matrix products, which is the point
// of the fast path.
type ProductPropagator struct {
	w1 *matrix.CSR
	k  int
	ws matrix.Workspace
}

// NewProductPropagator validates that no walk of length ≤ K can revisit
// a transition source (skeleton girth ≥ K, the Lemma 3 condition) and
// precomputes W(1). It returns an error when the recurrence would be
// invalid.
func NewProductPropagator(g *ugraph.Graph, K int) (*ProductPropagator, error) {
	if K < 0 {
		return nil, fmt.Errorf("walkpr: negative K %d", K)
	}
	if K > 1 {
		if girth := g.Skeleton().Girth(K - 1); girth < K {
			return nil, fmt.Errorf("walkpr: girth %d < K=%d, product recurrence invalid (Lemma 3)", girth, K)
		}
	}
	return &ProductPropagator{w1: ExpectedOneStep(g), k: K}, nil
}

// Rows returns Pr_G(src →k ·) for k = 0..K.
func (p *ProductPropagator) Rows(src int) ([]matrix.Vec, error) {
	if src < 0 || src >= p.w1.Dim() {
		return nil, fmt.Errorf("walkpr: source %d out of range [0,%d)", src, p.w1.Dim())
	}
	rows := make([]matrix.Vec, p.k+1)
	rows[0] = matrix.Unit(int32(src))
	for k := 1; k <= p.k; k++ {
		rows[k] = p.w1.LeftMul(&p.ws, rows[k-1])
	}
	return rows, nil
}

// TransitionRowsProduct is the one-shot convenience form of
// ProductPropagator: construction plus a single Rows call.
func TransitionRowsProduct(g *ugraph.Graph, src int, K int) ([]matrix.Vec, error) {
	p, err := NewProductPropagator(g, K)
	if err != nil {
		return nil, err
	}
	return p.Rows(src)
}

// EnumTransitionRows computes the same rows as TransitionRows by
// exhaustive possible-world enumeration (Eq. 6 literally). It is the
// ground-truth oracle for graphs with at most ugraph.MaxEnumerableArcs
// arcs.
func EnumTransitionRows(g *ugraph.Graph, src int, K int) ([]matrix.Vec, error) {
	acc := make([]map[int32]float64, K+1)
	for k := range acc {
		acc[k] = make(map[int32]float64)
	}
	var buf []int32
	err := g.EnumerateWorlds(func(w ugraph.World, pr float64) {
		cur := map[int32]float64{int32(src): 1}
		acc[0][int32(src)] += pr
		for k := 1; k <= K; k++ {
			next := make(map[int32]float64)
			for v, pv := range cur {
				buf = w.Out(int(v), buf[:0])
				if len(buf) == 0 {
					continue
				}
				share := pv / float64(len(buf))
				for _, o := range buf {
					next[o] += share
				}
			}
			for v, pv := range next {
				acc[k][v] += pr * pv
			}
			cur = next
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]matrix.Vec, K+1)
	for k := range rows {
		rows[k] = matrix.FromMap(acc[k])
	}
	return rows, nil
}

// EnumWalkPr computes the walk probability of w by exhaustive
// possible-world enumeration (Eq. 8 literally), the oracle for WalkPr.
func EnumWalkPr(g *ugraph.Graph, w []int32) (float64, error) {
	if len(w) == 0 {
		return 0, errors.New("walkpr: empty walk")
	}
	total := 0.0
	var buf []int32
	err := g.EnumerateWorlds(func(world ugraph.World, pr float64) {
		p := 1.0
		for i := 0; i+1 < len(w); i++ {
			buf = world.Out(int(w[i]), buf[:0])
			found := false
			for _, o := range buf {
				if o == w[i+1] {
					found = true
					break
				}
			}
			if !found {
				p = 0
				break
			}
			p *= 1 / float64(len(buf))
		}
		total += pr * p
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// Package walkpr implements the exact walk-probability machinery of
// Sec. IV of the paper: the α_W(v) dynamic program (Lemma 1 / Eq. 11),
// the WalkPr algorithm (Fig. 2), exact k-step transition rows via
// state-merged walk extension (Lemma 2) with the girth fast path
// (Lemma 3), and brute-force possible-world enumeration oracles used to
// validate everything.
package walkpr

import (
	"encoding/binary"
	"math"
	"sort"

	"usimrank/internal/ugraph"
)

// inv is the paper's inv(x): 1/x for x ≠ 0 and 1 for x = 0.
func inv(x int) float64 {
	if x == 0 {
		return 1
	}
	return 1 / float64(x)
}

// invPow returns inv(x)^c.
func invPow(x, c int) float64 {
	if c == 0 {
		return 1
	}
	return math.Pow(inv(x), float64(c))
}

// Alpha computes α_W(v) of Eq. 11 for a vertex v whose walk uses the
// out-neighbours ow (sorted, distinct vertex IDs, each a potential
// out-neighbour of v) a total of c times:
//
//	α = Π_{w∈ow} P(v,w) · Σ_x r(n,x) · inv(x+|ow|)^c
//
// where r(·,·) is the Poisson-binomial distribution of how many of v's
// *other* potential out-arcs exist. Alpha panics if some w in ow is not a
// potential out-neighbour of v.
func Alpha(g *ugraph.Graph, v int32, ow []int32, c int) float64 {
	nbrs := g.Out(int(v))
	probs := g.OutProbs(int(v))

	prodP := 1.0
	j := 0
	// Split the out-arcs of v into required (in ow) and others, walking
	// the two sorted lists together.
	others := make([]float64, 0, len(nbrs))
	for i, w := range nbrs {
		if j < len(ow) && ow[j] == w {
			prodP *= probs[i]
			j++
			continue
		}
		others = append(others, probs[i])
	}
	if j != len(ow) {
		panic("walkpr: Alpha called with a non-neighbour in ow")
	}

	// r DP: r[x] = probability exactly x of the other arcs exist.
	r := make([]float64, len(others)+1)
	r[0] = 1
	for i, q := range others {
		for x := i + 1; x >= 1; x-- {
			r[x] = r[x]*(1-q) + r[x-1]*q
		}
		r[0] *= 1 - q
	}

	sum := 0.0
	for x := 0; x <= len(others); x++ {
		sum += r[x] * invPow(x+len(ow), c)
	}
	return prodP * sum
}

// WalkPr computes the walk probability
// Pr_G(X₁=v₁, …, X_k=v_k | X₀=v₀) of Fig. 2 for the walk w (a sequence of
// at least one vertex). It returns 0 if some step is not a potential arc
// of g.
func WalkPr(g *ugraph.Graph, w []int32) float64 {
	if len(w) == 0 {
		panic("walkpr: empty walk")
	}
	for i := 0; i+1 < len(w); i++ {
		if !g.HasArc(int(w[i]), int(w[i+1])) {
			return 0
		}
	}
	type visit struct {
		ow map[int32]bool
		c  int
	}
	visits := make(map[int32]*visit)
	for i := 0; i+1 < len(w); i++ {
		vi := visits[w[i]]
		if vi == nil {
			vi = &visit{ow: make(map[int32]bool)}
			visits[w[i]] = vi
		}
		vi.ow[w[i+1]] = true
		vi.c++
	}
	p := 1.0
	for v, vi := range visits {
		ow := make([]int32, 0, len(vi.ow))
		for x := range vi.ow {
			ow = append(ow, x)
		}
		sort.Slice(ow, func(a, b int) bool { return ow[a] < ow[b] })
		p *= Alpha(g, v, ow, vi.c)
	}
	return p
}

// alphaCache memoises Alpha by (vertex, used-neighbour set, count).
type alphaCache struct {
	g *ugraph.Graph
	m map[alphaKey]float64
}

type alphaKey struct {
	v  int32
	c  int32
	ow string
}

func newAlphaCache(g *ugraph.Graph) *alphaCache {
	return &alphaCache{g: g, m: make(map[alphaKey]float64)}
}

func encodeIDs(ids []int32) string {
	buf := make([]byte, 4*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(id))
	}
	return string(buf)
}

func (c *alphaCache) alpha(v int32, ow []int32, cnt int) float64 {
	if cnt == 0 && len(ow) == 0 {
		return 1
	}
	k := alphaKey{v: v, c: int32(cnt), ow: encodeIDs(ow)}
	if a, ok := c.m[k]; ok {
		return a
	}
	a := Alpha(c.g, v, ow, cnt)
	c.m[k] = a
	return a
}

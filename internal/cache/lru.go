// Package cache provides the bounded, concurrency-safe LRU used by the
// engine's shared row cache. The previous cache wiped its whole map
// whenever it filled up, so an all-pairs or single-source sweep that
// slightly exceeded the capacity thrashed: every reset threw away rows
// that were about to be reused. The LRU replaces the wholesale reset
// with bounded per-entry eviction — repeated queries against a warm
// working set stay warm.
//
// The cache is internally mutex-guarded so callers can share one
// instance across query goroutines without external locking. Values are
// returned as stored; callers that hand out slices or pointers must
// treat them as immutable.
package cache

import (
	"fmt"
	"sync"
)

// entry is one node of the intrusive recency list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// LRU is a fixed-capacity least-recently-used cache, safe for
// concurrent use. Get promotes, Add inserts or updates (also
// promoting), and inserting into a full cache evicts the
// least-recently-used entry.
type LRU[K comparable, V any] struct {
	mu        sync.Mutex
	capacity  int
	items     map[K]*entry[K, V]
	head      *entry[K, V] // most recently used
	tail      *entry[K, V] // least recently used
	evictions uint64
	hits      uint64
	misses    uint64
}

// New returns an empty LRU holding at most capacity entries. It panics
// if capacity < 1: a cache that cannot hold anything is a
// configuration error, not a degenerate mode.
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: capacity %d < 1", capacity))
	}
	return &LRU[K, V]{
		capacity: capacity,
		items:    make(map[K]*entry[K, V]),
	}
}

// unlink removes e from the recency list.
func (c *LRU[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns the value stored under k and promotes the entry to most
// recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.val, true
}

// Add stores v under k, promoting the entry. When the cache is full and
// k is new, the least-recently-used entry is evicted.
func (c *LRU[K, V]) Add(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[k]; ok {
		e.val = v
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.items) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		c.evictions++
	}
	e := &entry[K, V]{key: k, val: v}
	c.items[k] = e
	c.pushFront(e)
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Cap returns the cache's capacity.
func (c *LRU[K, V]) Cap() int { return c.capacity }

// Snapshot returns the cache's entries in recency order, least recently
// used first. Re-inserting the returned pairs in order into an empty
// LRU reproduces the receiver's recency state exactly — the primitive
// the engine's derive-on-update path uses to carry surviving row-cache
// entries (minus the invalidated ones) into a successor engine. The
// slices are fresh; the values are shared as stored.
func (c *LRU[K, V]) Snapshot() (keys []K, vals []V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys = make([]K, 0, len(c.items))
	vals = make([]V, 0, len(c.items))
	for e := c.tail; e != nil; e = e.prev {
		keys = append(keys, e.key)
		vals = append(vals, e.val)
	}
	return keys, vals
}

// Evictions returns the number of entries evicted so far — the
// observable difference between bounded eviction and the old
// wipe-everything reset, and a cheap thrash metric for callers sizing
// RowCacheSize.
func (c *LRU[K, V]) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Counters returns the lifetime Get hit and miss counts — the
// effectiveness companion to Evictions' thrash metric. Adds are not
// counted: a warm working set shows hits climbing against flat misses.
func (c *LRU[K, V]) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetMissAndHit(t *testing.T) {
	c := New[int, string](2)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add(1, "a")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("got %q, %v", v, ok)
	}
	if c.Len() != 1 || c.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Cap())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Add(3, 30) // evicts 1
	if _, ok := c.Get(1); ok {
		t.Fatal("1 survived eviction")
	}
	if v, ok := c.Get(2); !ok || v != 20 {
		t.Fatal("2 lost")
	}
	if v, ok := c.Get(3); !ok || v != 30 {
		t.Fatal("3 lost")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
}

func TestGetPromotes(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Get(1)     // promote 1; 2 is now LRU
	c.Add(3, 30) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("promoted entry evicted instead of LRU")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("promoted entry lost")
	}
}

func TestAddUpdatesAndPromotes(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Add(1, 11) // update, promote; 2 is LRU
	c.Add(3, 30) // evicts 2
	if v, ok := c.Get(1); !ok || v != 11 {
		t.Fatalf("update lost: %v %v", v, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("2 survived")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCapacityOne(t *testing.T) {
	c := New[string, int](1)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived in capacity-1 cache")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatal("b lost")
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New[int, int](0)
}

// TestConcurrentMixedAccess exercises the internal locking under the
// race detector: many goroutines hammering overlapping keys must never
// corrupt the recency list or lose the capacity bound.
func TestConcurrentMixedAccess(t *testing.T) {
	c := New[int, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*7 + i) % 40
				c.Add(k, k*10)
				if v, ok := c.Get(k); ok && v != k*10 {
					panic(fmt.Sprintf("key %d holds %d", k, v))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}

func TestSnapshotRecencyOrder(t *testing.T) {
	c := New[int, string](4)
	c.Add(1, "a")
	c.Add(2, "b")
	c.Add(3, "c")
	c.Get(1) // promote 1 to MRU
	keys, vals := c.Snapshot()
	wantKeys := []int{2, 3, 1} // LRU first
	if len(keys) != len(wantKeys) {
		t.Fatalf("snapshot has %d entries, want %d", len(keys), len(wantKeys))
	}
	for i, k := range wantKeys {
		if keys[i] != k {
			t.Fatalf("snapshot keys %v, want %v", keys, wantKeys)
		}
	}
	// Replaying a snapshot into an empty cache reproduces the recency
	// state: inserting one more entry must evict the same victim.
	replay := New[int, string](4)
	for i := range keys {
		replay.Add(keys[i], vals[i])
	}
	c.Add(9, "z")
	replay.Add(9, "z")
	c.Add(10, "y") // evicts 2 in both
	replay.Add(10, "y")
	if _, ok := replay.Get(2); ok {
		t.Fatal("replayed cache kept the victim the original evicted")
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("original cache kept entry 2")
	}
	k2, _ := c.Snapshot()
	k3, _ := replay.Snapshot()
	for i := range k2 {
		if k2[i] != k3[i] {
			t.Fatalf("diverged after replay: %v vs %v", k2, k3)
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	keys, vals := New[int, int](2).Snapshot()
	if len(keys) != 0 || len(vals) != 0 {
		t.Fatalf("empty snapshot returned %v / %v", keys, vals)
	}
}

package bitvec

import (
	"testing"
	"testing/quick"

	"usimrank/internal/rng"
)

func TestNewZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Any() {
		t.Fatal("new vector has set bits")
	}
	if v.PopCount() != 0 {
		t.Fatalf("PopCount = %d", v.PopCount())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.PopCount() != 8 {
		t.Fatalf("PopCount = %d, want 8", v.PopCount())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if v.PopCount() != 7 {
		t.Fatalf("PopCount = %d, want 7", v.PopCount())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, f := range []func(){
		func() { v.Set(10) },
		func() { v.Set(-1) },
		func() { v.Get(10) },
		func() { v.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSetAllRespectsLength(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		v := New(n)
		v.SetAll()
		if v.PopCount() != n {
			t.Fatalf("SetAll on length %d: PopCount = %d", n, v.PopCount())
		}
	}
}

func TestReset(t *testing.T) {
	v := New(100)
	v.SetAll()
	v.Reset()
	if v.Any() {
		t.Fatal("Reset left set bits")
	}
}

func TestAndOrAndNot(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(1)
	a.Set(64)
	a.Set(129)
	b.Set(64)
	b.Set(100)

	or := a.Clone()
	or.Or(b)
	for _, i := range []int{1, 64, 100, 129} {
		if !or.Get(i) {
			t.Fatalf("Or missing bit %d", i)
		}
	}
	if or.PopCount() != 4 {
		t.Fatalf("Or PopCount = %d", or.PopCount())
	}

	and := a.Clone()
	and.And(b)
	if and.PopCount() != 1 || !and.Get(64) {
		t.Fatalf("And wrong: %v", and)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if diff.PopCount() != 2 || !diff.Get(1) || !diff.Get(129) {
		t.Fatalf("AndNot wrong: %v", diff)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	a.And(b)
}

func TestOrAndMatchesComposition(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		v, a, b := randVec(r, n), randVec(r, n), randVec(r, n)
		want := v.Clone()
		tmp := a.Clone()
		tmp.And(b)
		want.Or(tmp)

		got := v.Clone()
		got.OrAnd(a, b)
		if !got.Equal(want) {
			t.Fatalf("OrAnd != Or(And) for n=%d", n)
		}
	}
}

func TestAndPopCount(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		a, b := randVec(r, n), randVec(r, n)
		tmp := a.Clone()
		tmp.And(b)
		if got, want := a.AndPopCount(b), tmp.PopCount(); got != want {
			t.Fatalf("AndPopCount = %d, want %d", got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(70)
	a.Set(5)
	b := a.Clone()
	b.Set(6)
	if a.Get(6) {
		t.Fatal("Clone shares storage")
	}
	if !b.Get(5) {
		t.Fatal("Clone lost bits")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Fatal("two zero vectors not equal")
	}
	a.Set(64)
	if a.Equal(b) {
		t.Fatal("different vectors reported equal")
	}
	if a.Equal(New(64)) {
		t.Fatal("vectors of different lengths reported equal")
	}
}

func TestNextSet(t *testing.T) {
	v := New(200)
	for _, i := range []int{3, 64, 150} {
		v.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 150}, {150, 150}, {151, -1}, {-5, 3}, {1000, -1},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestNextSetEmpty(t *testing.T) {
	if got := New(100).NextSet(0); got != -1 {
		t.Fatalf("NextSet on empty = %d", got)
	}
}

func TestString(t *testing.T) {
	v := New(5)
	v.Set(1)
	v.Set(4)
	if s := v.String(); s != "01001" {
		t.Fatalf("String = %q", s)
	}
}

func randVec(r *rng.RNG, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Bool(0.5) {
			v.Set(i)
		}
	}
	return v
}

// Property: popcount distributes over disjoint Or.
func TestQuickOrPopCount(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		r := rng.New(seed)
		a := randVec(r, n)
		b := a.Clone()
		// b = complement of a within length n.
		c := New(n)
		c.SetAll()
		b.AndNot(c) // b = 0
		b.Or(c)
		b.AndNot(a) // b = ^a
		union := a.Clone()
		union.Or(b)
		return a.PopCount()+b.PopCount() == n && union.PopCount() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan via AndNot — ‖a&b‖ + ‖a&^b‖ = ‖a‖.
func TestQuickAndSplit(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		r := rng.New(seed)
		a, b := randVec(r, n), randVec(r, n)
		inter := a.Clone()
		inter.And(b)
		diff := a.Clone()
		diff.AndNot(b)
		return inter.PopCount()+diff.PopCount() == a.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Get agrees with NextSet scanning.
func TestQuickNextSetScan(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%256) + 1
		r := rng.New(seed)
		v := randVec(r, n)
		// Collect indices via NextSet.
		var scanned []int
		for i := v.NextSet(0); i != -1; i = v.NextSet(i + 1) {
			scanned = append(scanned, i)
		}
		// Collect indices via Get.
		var direct []int
		for i := 0; i < n; i++ {
			if v.Get(i) {
				direct = append(direct, i)
			}
		}
		if len(scanned) != len(direct) {
			return false
		}
		for i := range scanned {
			if scanned[i] != direct[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOrAnd(b *testing.B) {
	r := rng.New(1)
	v, x, y := randVec(r, 1024), randVec(r, 1024), randVec(r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.OrAnd(x, y)
	}
}

func BenchmarkAndPopCount(b *testing.B) {
	r := rng.New(1)
	x, y := randVec(r, 1024), randVec(r, 1024)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = x.AndPopCount(y)
	}
	_ = sink
}

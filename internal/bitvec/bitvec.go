// Package bitvec implements fixed-length packed bit vectors with the
// bitwise operations used by the SR-SP speed-up technique (Sec. VI-D of
// the paper): each arc carries an N-bit filter vector and each vertex a
// per-level counting table, and sampling N walks simultaneously reduces to
// AND/OR/popcount over these vectors.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length bit vector. The zero value is an empty vector
// of length 0; use New to create one of a given length.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed vector of n bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1. It panics if i is out of range.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// SetAll sets every bit to 1.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// Reset sets every bit to 0.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so that PopCount and
// Equal remain exact.
func (v *Vector) trim() {
	if rem := uint(v.n) & 63; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << rem) - 1
	}
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// Or sets v = v | o. The vectors must have equal length.
func (v *Vector) Or(o *Vector) {
	v.match(o)
	for i, w := range o.words {
		v.words[i] |= w
	}
}

// And sets v = v & o. The vectors must have equal length.
func (v *Vector) And(o *Vector) {
	v.match(o)
	for i, w := range o.words {
		v.words[i] &= w
	}
}

// AndNot sets v = v &^ o. The vectors must have equal length.
func (v *Vector) AndNot(o *Vector) {
	v.match(o)
	for i, w := range o.words {
		v.words[i] &^= w
	}
}

// OrAnd sets v = v | (a & b) without allocating, the core update of the
// Speedup algorithm (Fig. 5, line 7): M_x[k+1] ∨= M_w[k] ∧ F_(w,x).
// All three vectors must have equal length.
func (v *Vector) OrAnd(a, b *Vector) {
	v.match(a)
	v.match(b)
	for i := range v.words {
		v.words[i] |= a.words[i] & b.words[i]
	}
}

func (v *Vector) match(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// PopCount returns the number of set bits (the 1-norm ‖v‖₁ of Eq. 16).
func (v *Vector) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndPopCount returns ‖v & o‖₁ without materialising the intersection.
// The vectors must have equal length.
func (v *Vector) AndPopCount(o *Vector) int {
	v.match(o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(v.words[i] & w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether v and o have the same length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range o.words {
		if v.words[i] != w {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none. i may be any non-negative value.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i >> 6
	w := v.words[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// String renders the vector as a 0/1 string, lowest index first. Intended
// for tests and debugging of small vectors.
func (v *Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

package detsim

import (
	"math"
	"testing"
	"testing/quick"

	"usimrank/internal/graph"
	"usimrank/internal/rng"
)

const eps = 1e-10

// diamond is the classic SimRank test graph: 0 → 1, 0 → 2, 1 → 3, 2 → 3.
func diamond() *graph.Graph {
	b := graph.NewBuilder(4)
	b.AddArc(0, 1)
	b.AddArc(0, 2)
	b.AddArc(1, 3)
	b.AddArc(2, 3)
	return b.MustBuild()
}

func TestNaiveSiblings(t *testing.T) {
	// Vertices 1 and 2 share the single in-neighbour 0, so under Eq. 2
	// s(1,2) = c·s(0,0) = c after one iteration and stays there.
	g := diamond()
	c := 0.8
	s := Naive(g, c, 5)
	if got := s.At(1, 2); math.Abs(got-c) > eps {
		t.Fatalf("s(1,2) = %v, want %v", got, c)
	}
	// Diagonal pinned to 1.
	for i := 0; i < 4; i++ {
		if s.At(i, i) != 1 {
			t.Fatalf("s(%d,%d) = %v", i, i, s.At(i, i))
		}
	}
}

func TestNaiveSymmetricBounded(t *testing.T) {
	g := diamond()
	s := Naive(g, 0.6, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if v := s.At(i, j); v < -eps || v > 1+eps {
				t.Fatalf("s(%d,%d) = %v", i, j, v)
			}
			if math.Abs(s.At(i, j)-s.At(j, i)) > eps {
				t.Fatal("not symmetric")
			}
		}
	}
}

func TestNaiveNoInNeighbours(t *testing.T) {
	// Vertex 0 has no in-neighbours: s(0, v) = 0 for v ≠ 0.
	g := diamond()
	s := Naive(g, 0.6, 4)
	for v := 1; v < 4; v++ {
		if s.At(0, v) != 0 {
			t.Fatalf("s(0,%d) = %v", v, s.At(0, v))
		}
	}
}

func TestColumnNormalizedAdjacency(t *testing.T) {
	g := diamond()
	a := NewColumnNormalizedAdjacency(g)
	// Column 3 has in-neighbours {1, 2}, each weight 1/2.
	if a.At(1, 3) != 0.5 || a.At(2, 3) != 0.5 {
		t.Fatalf("column 3 weights %v %v", a.At(1, 3), a.At(2, 3))
	}
	// Column 0 has no in-neighbours: all zero.
	for i := 0; i < 4; i++ {
		if a.At(i, 0) != 0 {
			t.Fatal("column 0 not zero")
		}
	}
	// Non-empty columns sum to 1.
	for j := 1; j < 4; j++ {
		sum := 0.0
		for i := 0; i < 4; i++ {
			sum += a.At(i, j)
		}
		if math.Abs(sum-1) > eps {
			t.Fatalf("column %d sums to %v", j, sum)
		}
	}
}

// TestAllPairsEqualsSinglePair verifies the dense Eq. 3 recurrence
// matches the sparse random-walk single-pair form, which is the identity
// S(n) = c^n (Aⁿ)ᵀAⁿ + (1−c) Σ c^k (Aᵏ)ᵀAᵏ.
func TestAllPairsEqualsSinglePair(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(6)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if r.Bool(0.35) {
					b.AddArc(u, v)
				}
			}
		}
		g := b.MustBuild()
		c, iters := 0.6, 4
		s := AllPairs(g, c, iters)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := s.At(u, v)
				got := SinglePair(g, u, v, c, iters)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d s(%d,%d): single-pair %v vs matrix %v", trial, u, v, got, want)
				}
			}
		}
	}
}

func TestSinglePairTrivialGraph(t *testing.T) {
	// Two isolated vertices: no in-neighbours, s(0,1) = 0, s(0,0) = 1−c + cⁿ·1?
	// With no in-arcs, rows die immediately: m(k)(0,0) = 0 for k ≥ 1, m(0) = 1.
	// s(n)(0,0) = (1−c)·1 (the k=0 term) since all others vanish.
	g := graph.NewBuilder(2).MustBuild()
	c := 0.6
	if got := SinglePair(g, 0, 1, c, 5); got != 0 {
		t.Fatalf("s(0,1) = %v", got)
	}
	if got := SinglePair(g, 0, 0, c, 5); math.Abs(got-(1-c)) > eps {
		t.Fatalf("s(0,0) = %v, want %v", got, 1-c)
	}
}

func TestMeetingRowsAreWalkDistributions(t *testing.T) {
	// On the diamond reversed: from 3, one step reaches {1,2} with 1/2
	// each; two steps reach {0} with probability 1.
	g := diamond()
	rows := MeetingRows(g, 3, 2)
	if rows[1].At(1) != 0.5 || rows[1].At(2) != 0.5 {
		t.Fatalf("row 1 = %+v", rows[1])
	}
	if math.Abs(rows[2].At(0)-1) > eps {
		t.Fatalf("row 2 = %+v", rows[2])
	}
}

func TestSinglePairDiamond(t *testing.T) {
	// By hand on the diamond with c = 0.8, n = 2:
	// m(0)(1,2) = 0, m(1)(1,2) = 1 (both reach 0), m(2) = 0 (walks die).
	// s(2) = c²·0 + (1−c)(c⁰·0 + c¹·1) = 0.2·0.8 = 0.16.
	got := SinglePair(diamond(), 1, 2, 0.8, 2)
	if math.Abs(got-0.16) > eps {
		t.Fatalf("s(2)(1,2) = %v, want 0.16", got)
	}
}

func TestValidationPanics(t *testing.T) {
	g := diamond()
	for _, f := range []func(){
		func() { SinglePair(g, -1, 0, 0.6, 3) },
		func() { SinglePair(g, 0, 9, 0.6, 3) },
		func() { SinglePair(g, 0, 1, 1.5, 3) },
		func() { SinglePair(g, 0, 1, 0.6, -1) },
		func() { AllPairs(g, 0, 3) },
		func() { AllPairs(g, 0.6, -1) },
		func() { Naive(g, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad arguments accepted")
				}
			}()
			f()
		}()
	}
}

func TestTransitionCSRRowsStochastic(t *testing.T) {
	g := diamond()
	m := TransitionCSR(g)
	for u := 0; u < 4; u++ {
		_, vals := m.Row(u)
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if g.OutDegree(u) > 0 && math.Abs(sum-1) > eps {
			t.Fatalf("row %d sums to %v", u, sum)
		}
		if g.OutDegree(u) == 0 && sum != 0 {
			t.Fatalf("sink row %d sums to %v", u, sum)
		}
	}
}

// Property: SinglePair is symmetric and in [0,1] on random graphs.
func TestQuickSinglePairInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if r.Bool(0.3) {
					b.AddArc(u, v)
				}
			}
		}
		g := b.MustBuild()
		u, v := r.Intn(n), r.Intn(n)
		suv := SinglePair(g, u, v, 0.6, 4)
		svu := SinglePair(g, v, u, 0.6, 4)
		return suv >= -eps && suv <= 1+eps && math.Abs(suv-svu) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

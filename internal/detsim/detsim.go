// Package detsim implements SimRank on deterministic graphs: the
// Jeh–Widom fixed point (Eq. 2), the matrix form S = cAᵀSA + (1−c)I
// (Eq. 3) and the random-walk single-pair form used throughout the
// paper's evaluation as SimRank-II / DSIM / SimDER (SimRank "with
// uncertainty removed").
//
// Eq. 2 and Eq. 3 are the two standard SimRank variants: Eq. 2 pins the
// diagonal to 1, Eq. 3 (the random-surfer form) does not; the paper's
// uncertain-graph measure generalises Eq. 3, so the single-pair function
// here matches core.Engine.Baseline on all-certain graphs (Theorem 3).
package detsim

import (
	"fmt"

	"usimrank/internal/graph"
	"usimrank/internal/matrix"
)

// TransitionCSR returns the row-normalised adjacency matrix of g: the
// one-step transition matrix of the uniform random walk. Rows of sink
// vertices are empty (the walk dies).
func TransitionCSR(g *graph.Graph) *matrix.CSR {
	b := matrix.NewCSRBuilder(g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		deg := g.OutDegree(u)
		for _, v := range g.Out(u) {
			b.Set(u, int(v), 1/float64(deg))
		}
	}
	return b.MustBuild()
}

// MeetingRows returns the rows Pr(src →k ·) of the uniform random walk
// on the *reversed* graph for k = 0..K: the walk that SimRank runs.
func MeetingRows(g *graph.Graph, src, K int) []matrix.Vec {
	rev := TransitionCSR(g.Reverse())
	rows := make([]matrix.Vec, K+1)
	rows[0] = matrix.Unit(int32(src))
	var ws matrix.Workspace
	for k := 1; k <= K; k++ {
		rows[k] = rev.LeftMul(&ws, rows[k-1])
	}
	return rows
}

// SinglePair computes the n-th random-walk SimRank iterate s(n)(u,v)
// (Eq. 3 expanded, i.e. the deterministic specialisation of the paper's
// Definition 1) by propagating sparse meeting rows.
func SinglePair(g *graph.Graph, u, v int, c float64, n int) float64 {
	validate(g, u, v, c, n)
	ru := MeetingRows(g, u, n)
	rv := MeetingRows(g, v, n)
	m := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		m[k] = ru[k].Dot(rv[k])
	}
	return combine(m, c, n)
}

// AllPairs computes the full n-th iterate S(n) of the matrix recurrence
// S(k) = cAᵀS(k−1)A + (1−c)I with A the column-normalised adjacency
// matrix (Eq. 3). Dense; intended for graphs of a few thousand vertices.
func AllPairs(g *graph.Graph, c float64, n int) *matrix.Dense {
	if !(c > 0 && c < 1) {
		panic(fmt.Sprintf("detsim: decay factor %v outside (0,1)", c))
	}
	if n < 0 {
		panic(fmt.Sprintf("detsim: negative iteration count %d", n))
	}
	nv := g.NumVertices()
	a := NewColumnNormalizedAdjacency(g)
	at := a.Transpose()
	s := matrix.Identity(nv)
	for k := 0; k < n; k++ {
		s = at.Mul(s).Mul(a).Scale(c).AddScaledIdentity(1 - c)
	}
	return s
}

// NewColumnNormalizedAdjacency returns the dense adjacency matrix of g
// with each non-zero column scaled to sum 1: A[i][j] = 1/|I(v_j)| when
// (v_i, v_j) is an arc.
func NewColumnNormalizedAdjacency(g *graph.Graph) *matrix.Dense {
	nv := g.NumVertices()
	a := matrix.NewDense(nv, nv)
	for j := 0; j < nv; j++ {
		in := g.In(j)
		if len(in) == 0 {
			continue
		}
		w := 1 / float64(len(in))
		for _, i := range in {
			a.Set(int(i), j, w)
		}
	}
	return a
}

// Naive computes n iterations of the original Jeh–Widom recurrence
// (Eq. 2), which fixes s(u,u) = 1 and averages over in-neighbour pairs.
// O(n·Σ_{u,v} |I(u)||I(v)|); intended for small graphs and reference
// comparisons.
func Naive(g *graph.Graph, c float64, n int) *matrix.Dense {
	if !(c > 0 && c < 1) {
		panic(fmt.Sprintf("detsim: decay factor %v outside (0,1)", c))
	}
	nv := g.NumVertices()
	s := matrix.Identity(nv)
	for it := 0; it < n; it++ {
		next := matrix.Identity(nv)
		for u := 0; u < nv; u++ {
			iu := g.In(u)
			if len(iu) == 0 {
				continue
			}
			for v := u + 1; v < nv; v++ {
				iv := g.In(v)
				if len(iv) == 0 {
					continue
				}
				sum := 0.0
				for _, a := range iu {
					for _, b := range iv {
						sum += s.At(int(a), int(b))
					}
				}
				val := c * sum / float64(len(iu)*len(iv))
				next.Set(u, v, val)
				next.Set(v, u, val)
			}
		}
		s = next
	}
	return s
}

func combine(m []float64, c float64, n int) float64 {
	s := pow(c, n) * m[n]
	ck := 1.0
	for k := 0; k < n; k++ {
		s += (1 - c) * ck * m[k]
		ck *= c
	}
	return s
}

func pow(c float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= c
	}
	return p
}

func validate(g *graph.Graph, u, v int, c float64, n int) {
	if u < 0 || u >= g.NumVertices() || v < 0 || v >= g.NumVertices() {
		panic(fmt.Sprintf("detsim: pair (%d,%d) out of range [0,%d)", u, v, g.NumVertices()))
	}
	if !(c > 0 && c < 1) {
		panic(fmt.Sprintf("detsim: decay factor %v outside (0,1)", c))
	}
	if n < 0 {
		panic(fmt.Sprintf("detsim: negative iteration count %d", n))
	}
}

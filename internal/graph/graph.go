// Package graph implements deterministic directed graphs in compressed
// sparse row (CSR) form. These are the possible worlds of the uncertain
// graphs in package ugraph, and the substrate for the deterministic
// SimRank baselines (SimRank-II / SimDER in the paper's terminology).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable directed graph over vertices 0..N-1 in CSR form.
// Build one with a Builder. Parallel arcs are rejected at Build time;
// self-loops are allowed (SimRank and random walks are well defined on
// them, and they exercise the paper's central W(k) ≠ W(1)^k finding).
type Graph struct {
	n       int
	outOff  []int32 // len n+1
	outDst  []int32 // len m, sorted within each row
	inOff   []int32 // len n+1
	inSrc   []int32 // len m, sorted within each row
	numArcs int
}

// Builder accumulates arcs and produces an immutable Graph.
type Builder struct {
	n    int
	arcs [][2]int32
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddArc records the arc (u, v). It panics if either endpoint is out of
// range. Duplicate arcs cause Build to fail.
func (b *Builder) AddArc(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.arcs = append(b.arcs, [2]int32{int32(u), int32(v)})
}

// AddEdge records both (u,v) and (v,u), the encoding used for the
// undirected PPI and co-authorship networks in the paper's evaluation.
func (b *Builder) AddEdge(u, v int) {
	b.AddArc(u, v)
	if u != v {
		b.AddArc(v, u)
	}
}

// NumArcs returns the number of arcs recorded so far.
func (b *Builder) NumArcs() int { return len(b.arcs) }

// Build finalises the graph. It returns an error if a duplicate arc was
// recorded.
func (b *Builder) Build() (*Graph, error) {
	sort.Slice(b.arcs, func(i, j int) bool {
		if b.arcs[i][0] != b.arcs[j][0] {
			return b.arcs[i][0] < b.arcs[j][0]
		}
		return b.arcs[i][1] < b.arcs[j][1]
	})
	for i := 1; i < len(b.arcs); i++ {
		if b.arcs[i] == b.arcs[i-1] {
			return nil, fmt.Errorf("graph: duplicate arc (%d,%d)", b.arcs[i][0], b.arcs[i][1])
		}
	}
	g := &Graph{n: b.n, numArcs: len(b.arcs)}
	g.outOff = make([]int32, b.n+1)
	g.outDst = make([]int32, len(b.arcs))
	for _, a := range b.arcs {
		g.outOff[a[0]+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
	}
	fill := make([]int32, b.n)
	for _, a := range b.arcs {
		g.outDst[g.outOff[a[0]]+fill[a[0]]] = a[1]
		fill[a[0]]++
	}
	// In-adjacency: sort by (dst, src).
	sort.Slice(b.arcs, func(i, j int) bool {
		if b.arcs[i][1] != b.arcs[j][1] {
			return b.arcs[i][1] < b.arcs[j][1]
		}
		return b.arcs[i][0] < b.arcs[j][0]
	})
	g.inOff = make([]int32, b.n+1)
	g.inSrc = make([]int32, len(b.arcs))
	for _, a := range b.arcs {
		g.inOff[a[1]+1]++
	}
	for i := 0; i < b.n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	for i := range fill {
		fill[i] = 0
	}
	for _, a := range b.arcs {
		g.inSrc[g.inOff[a[1]]+fill[a[1]]] = a[0]
		fill[a[1]]++
	}
	return g, nil
}

// MustBuild is Build that panics on error, for tests and literals.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumArcs returns the number of arcs.
func (g *Graph) NumArcs() int { return g.numArcs }

// Out returns the sorted out-neighbours of v. The slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(v int) []int32 { return g.outDst[g.outOff[v]:g.outOff[v+1]] }

// In returns the sorted in-neighbours of v. The slice aliases internal
// storage and must not be modified.
func (g *Graph) In(v int) []int32 { return g.inSrc[g.inOff[v]:g.inOff[v+1]] }

// OutDegree returns |Out(v)|.
func (g *Graph) OutDegree(v int) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns |In(v)|.
func (g *Graph) InDegree(v int) int { return int(g.inOff[v+1] - g.inOff[v]) }

// HasArc reports whether (u, v) is an arc, by binary search.
func (g *Graph) HasArc(u, v int) bool {
	row := g.Out(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// Reverse returns the graph with every arc flipped.
func (g *Graph) Reverse() *Graph {
	return &Graph{
		n:       g.n,
		numArcs: g.numArcs,
		outOff:  g.inOff,
		outDst:  g.inSrc,
		inOff:   g.outOff,
		inSrc:   g.outDst,
	}
}

// AverageOutDegree returns |E| / |V| (0 on the empty graph).
func (g *Graph) AverageOutDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.numArcs) / float64(g.n)
}

// Girth returns the length of the shortest directed cycle, or
// maxLen+1 if no cycle of length ≤ maxLen exists. A self-loop has girth 1.
// It runs a truncated BFS from every vertex, which is exact for the small
// bound (the paper only needs girth relative to the walk length n ≤ 10,
// per Lemma 3).
func (g *Graph) Girth(maxLen int) int {
	best := maxLen + 1
	dist := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n && best > 1; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 && best > 1 {
			u := queue[0]
			queue = queue[1:]
			du := dist[u]
			if int(du)+1 >= best {
				continue
			}
			for _, w := range g.Out(int(u)) {
				if w == int32(s) {
					if cyc := int(du) + 1; cyc < best {
						best = cyc
					}
					continue
				}
				if dist[w] == -1 {
					dist[w] = du + 1
					queue = append(queue, w)
				}
			}
		}
	}
	return best
}

// BFSDistances returns the array of BFS hop distances from src, with -1
// for unreachable vertices.
func (g *Graph) BFSDistances(src int) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(int(u)) {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

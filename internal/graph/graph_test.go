package graph

import (
	"testing"
	"testing/quick"

	"usimrank/internal/rng"
)

func path3() *Graph {
	b := NewBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	return b.MustBuild()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.NumVertices() != 0 || g.NumArcs() != 0 {
		t.Fatalf("empty graph has %d vertices, %d arcs", g.NumVertices(), g.NumArcs())
	}
	if g.AverageOutDegree() != 0 {
		t.Fatal("empty graph average degree not 0")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := NewBuilder(5).MustBuild()
	for v := 0; v < 5; v++ {
		if g.OutDegree(v) != 0 || g.InDegree(v) != 0 {
			t.Fatalf("vertex %d has degree", v)
		}
	}
}

func TestAdjacency(t *testing.T) {
	g := path3()
	if got := g.Out(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Out(0) = %v", got)
	}
	if got := g.In(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("In(2) = %v", got)
	}
	if g.OutDegree(2) != 0 {
		t.Fatal("sink has out-degree")
	}
	if !g.HasArc(0, 1) || g.HasArc(1, 0) || g.HasArc(0, 2) {
		t.Fatal("HasArc wrong")
	}
}

func TestDuplicateArcRejected(t *testing.T) {
	b := NewBuilder(2)
	b.AddArc(0, 1)
	b.AddArc(0, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate arc accepted")
	}
}

func TestAddArcOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range arc did not panic")
		}
	}()
	NewBuilder(2).AddArc(0, 2)
}

func TestAddEdgeBothDirections(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if !g.HasArc(0, 1) || !g.HasArc(1, 0) {
		t.Fatal("AddEdge missing a direction")
	}
	if g.NumArcs() != 2 {
		t.Fatalf("NumArcs = %d", g.NumArcs())
	}
}

func TestAddEdgeSelfLoopOnce(t *testing.T) {
	b := NewBuilder(1)
	b.AddEdge(0, 0)
	g := b.MustBuild()
	if g.NumArcs() != 1 {
		t.Fatalf("self-loop edge produced %d arcs", g.NumArcs())
	}
}

func TestReverse(t *testing.T) {
	g := path3()
	r := g.Reverse()
	if !r.HasArc(1, 0) || !r.HasArc(2, 1) || r.HasArc(0, 1) {
		t.Fatal("Reverse wrong arcs")
	}
	if r.NumArcs() != g.NumArcs() || r.NumVertices() != g.NumVertices() {
		t.Fatal("Reverse changed counts")
	}
	// Reverse twice is identity on adjacency.
	rr := r.Reverse()
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Out(v), rr.Out(v)
		if len(a) != len(b) {
			t.Fatalf("double reverse changed Out(%d)", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("double reverse changed Out(%d)", v)
			}
		}
	}
}

func TestGirthSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	b.AddArc(0, 0)
	b.AddArc(0, 1)
	if got := b.MustBuild().Girth(10); got != 1 {
		t.Fatalf("girth = %d, want 1", got)
	}
}

func TestGirthTwoCycle(t *testing.T) {
	b := NewBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 0)
	b.AddArc(1, 2)
	if got := b.MustBuild().Girth(10); got != 2 {
		t.Fatalf("girth = %d, want 2", got)
	}
}

func TestGirthTriangleDirected(t *testing.T) {
	b := NewBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(2, 0)
	if got := b.MustBuild().Girth(10); got != 3 {
		t.Fatalf("girth = %d, want 3", got)
	}
}

func TestGirthAcyclic(t *testing.T) {
	if got := path3().Girth(5); got != 6 {
		t.Fatalf("acyclic girth = %d, want maxLen+1 = 6", got)
	}
}

func TestGirthBoundRespected(t *testing.T) {
	// 4-cycle but maxLen 3: must report 4 (= maxLen+1), i.e. "no short cycle".
	b := NewBuilder(4)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(2, 3)
	b.AddArc(3, 0)
	if got := b.MustBuild().Girth(3); got != 4 {
		t.Fatalf("bounded girth = %d, want 4", got)
	}
	if got := b.MustBuild().Girth(10); got != 4 {
		t.Fatalf("girth = %d, want 4", got)
	}
}

func TestBFSDistances(t *testing.T) {
	b := NewBuilder(5)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(0, 3)
	g := b.MustBuild()
	d := g.BFSDistances(0)
	want := []int32{0, 1, 2, 1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func randomGraph(r *rng.RNG, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if r.Bool(p) {
				b.AddArc(u, v)
			}
		}
	}
	return b.MustBuild()
}

// Property: out- and in-adjacency describe the same arc set.
func TestQuickInOutConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		g := randomGraph(r, n, 0.3)
		arcsOut, arcsIn := 0, 0
		for v := 0; v < n; v++ {
			arcsOut += g.OutDegree(v)
			arcsIn += g.InDegree(v)
			for _, w := range g.Out(v) {
				found := false
				for _, x := range g.In(int(w)) {
					if x == int32(v) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return arcsOut == arcsIn && arcsOut == g.NumArcs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HasArc agrees with membership in Out.
func TestQuickHasArc(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(15)
		g := randomGraph(r, n, 0.25)
		for u := 0; u < n; u++ {
			inRow := make(map[int32]bool)
			for _, w := range g.Out(u) {
				inRow[w] = true
			}
			for v := 0; v < n; v++ {
				if g.HasArc(u, v) != inRow[int32(v)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reversing swaps in/out degrees.
func TestQuickReverseDegrees(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(15)
		g := randomGraph(r, n, 0.3)
		rev := g.Reverse()
		for v := 0; v < n; v++ {
			if g.OutDegree(v) != rev.InDegree(v) || g.InDegree(v) != rev.OutDegree(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package graph

import "testing"

// FuzzBuilder drives the deterministic-graph Builder through an op
// stream decoded from the fuzz input. Endpoints are reduced into range
// (out-of-range panics are the documented AddArc contract); Build must
// never panic — duplicate arcs, including the ones AddEdge
// manufactures, must surface as errors — and every accepted graph must
// satisfy the CSR invariants in both adjacency directions.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 0x82, 3})
	f.Add([]byte{1, 0, 0, 0, 0}) // duplicate self-loop
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]) % 16
		b := NewBuilder(n)
		for i := 1; i+1 < len(data); i += 2 {
			if n == 0 {
				break
			}
			u, v := int(data[i]&0x7f)%n, int(data[i+1])%n
			if data[i]&0x80 != 0 {
				b.AddEdge(u, v)
			} else {
				b.AddArc(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return // duplicates rejected cleanly
		}
		// Out- and in-adjacency must describe the same arc set.
		outArcs, inArcs := 0, 0
		for v := 0; v < g.NumVertices(); v++ {
			out := g.Out(v)
			outArcs += len(out)
			inArcs += len(g.In(v))
			for i, w := range out {
				if w < 0 || int(w) >= g.NumVertices() {
					t.Fatalf("vertex %d: target %d out of range", v, w)
				}
				if i > 0 && out[i-1] >= w {
					t.Fatalf("vertex %d: out row not strictly sorted", v)
				}
				if !g.HasArc(int(v), int(w)) {
					t.Fatalf("arc (%d,%d) in row but HasArc is false", v, w)
				}
			}
		}
		if outArcs != g.NumArcs() || inArcs != g.NumArcs() {
			t.Fatalf("adjacency sizes out=%d in=%d, want %d", outArcs, inArcs, g.NumArcs())
		}
	})
}

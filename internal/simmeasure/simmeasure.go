// Package simmeasure implements the common-neighbour structural-context
// similarity measures used as comparison points in the paper's
// evaluation: deterministic Jaccard (the paper's Jaccard-II) and the
// expected Jaccard / Dice / cosine similarities on uncertain graphs of
// Zou & Li (ICDM 2013), the paper's Jaccard-I.
//
// The expected measures are computed exactly by dynamic programming over
// the joint distribution of intersection and union (or degree) sizes —
// the arcs (u,w) and (v,w) for different w are independent, so the joint
// distribution factorises candidate by candidate. Expected cosine needs
// the three-dimensional joint (|I|, deg u, deg v); it falls back to Monte
// Carlo when the exact state space exceeds a cap.
package simmeasure

import (
	"fmt"
	"math"
	"sort"

	"usimrank/internal/graph"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// Jaccard returns |N(u) ∩ N(v)| / |N(u) ∪ N(v)| over out-neighbour sets
// of a deterministic graph, 0 when the union is empty.
func Jaccard(g *graph.Graph, u, v int) float64 {
	a, b := g.Out(u), g.Out(v)
	inter, union := mergeCount(a, b)
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|N(u) ∩ N(v)| / (|N(u)| + |N(v)|), 0 when both
// neighbourhoods are empty.
func Dice(g *graph.Graph, u, v int) float64 {
	a, b := g.Out(u), g.Out(v)
	inter, _ := mergeCount(a, b)
	if len(a)+len(b) == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// Cosine returns |N(u) ∩ N(v)| / √(|N(u)|·|N(v)|), 0 when either
// neighbourhood is empty.
func Cosine(g *graph.Graph, u, v int) float64 {
	a, b := g.Out(u), g.Out(v)
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, _ := mergeCount(a, b)
	return float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
}

func mergeCount(a, b []int32) (inter, union int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			union++
			i++
		case a[i] > b[j]:
			union++
			j++
		default:
			inter++
			union++
			i++
			j++
		}
	}
	union += len(a) - i + len(b) - j
	return inter, union
}

// candidate is one potential common-neighbour position: the probability
// that u connects to it and that v connects to it (0 when the arc is not
// even potential).
type candidate struct {
	p, q float64
}

// candidates collects the potential out-neighbourhood union of u and v.
func candidates(g *ugraph.Graph, u, v int) []candidate {
	nu, pu := g.Out(u), g.OutProbs(u)
	nv, pv := g.Out(v), g.OutProbs(v)
	all := make(map[int32]*candidate)
	for i, w := range nu {
		all[w] = &candidate{p: pu[i]}
	}
	for i, w := range nv {
		if c, ok := all[w]; ok {
			c.q = pv[i]
		} else {
			all[w] = &candidate{q: pv[i]}
		}
	}
	keys := make([]int32, 0, len(all))
	for w := range all {
		keys = append(keys, w)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	out := make([]candidate, len(keys))
	for i, w := range keys {
		out[i] = *all[w]
	}
	return out
}

// anyNeighbour returns Pr(|N(u)| ≥ 1) = 1 − Π (1 − p). For u = v every
// expected neighbour similarity degenerates to this value: intersection,
// union and both degrees coincide, so the ratio is 1 exactly when the
// neighbourhood is non-empty.
func anyNeighbour(g *ugraph.Graph, u int) float64 {
	none := 1.0
	for _, p := range g.OutProbs(u) {
		none *= 1 - p
	}
	return 1 - none
}

// ExpectedJaccard returns E[ |N(u)∩N(v)| / |N(u)∪N(v)| ] over possible
// worlds, with 0/0 = 0, computed exactly in O(d³) by a DP over the joint
// distribution of (intersection, union) sizes. For u ≠ v the arcs (u,w)
// and (v,w) are distinct and independent, which the DP exploits; u = v is
// handled separately because there the two are the same arc.
func ExpectedJaccard(g *ugraph.Graph, u, v int) float64 {
	if u == v {
		return anyNeighbour(g, u)
	}
	cs := candidates(g, u, v)
	d := len(cs)
	if d == 0 {
		return 0
	}
	// dist[i][j] = Pr(intersection = i, union = j) over processed candidates.
	dist := make([][]float64, d+1)
	for i := range dist {
		dist[i] = make([]float64, d+1)
	}
	dist[0][0] = 1
	for n, c := range cs {
		pBoth := c.p * c.q
		pOne := c.p + c.q - 2*c.p*c.q
		pNone := (1 - c.p) * (1 - c.q)
		for i := n + 1; i >= 0; i-- {
			for j := n + 1; j >= 0; j-- {
				val := 0.0
				if i >= 1 && j >= 1 {
					val += dist[i-1][j-1] * pBoth
				}
				if j >= 1 {
					val += dist[i][j-1] * pOne
				}
				val += dist[i][j] * pNone
				dist[i][j] = val
			}
		}
	}
	e := 0.0
	for i := 0; i <= d; i++ {
		for j := 1; j <= d; j++ {
			if dist[i][j] > 0 {
				e += dist[i][j] * float64(i) / float64(j)
			}
		}
	}
	return e
}

// ExpectedDice returns E[ 2|N(u)∩N(v)| / (|N(u)|+|N(v)|) ] with 0/0 = 0,
// computed exactly by a DP over (intersection, degree-sum).
func ExpectedDice(g *ugraph.Graph, u, v int) float64 {
	if u == v {
		return anyNeighbour(g, u)
	}
	cs := candidates(g, u, v)
	d := len(cs)
	if d == 0 {
		return 0
	}
	// dist[i][s] = Pr(intersection = i, deg(u)+deg(v) = s).
	dist := make([][]float64, d+1)
	for i := range dist {
		dist[i] = make([]float64, 2*d+1)
	}
	dist[0][0] = 1
	for n, c := range cs {
		pBoth := c.p * c.q
		pOne := c.p + c.q - 2*c.p*c.q
		pNone := (1 - c.p) * (1 - c.q)
		maxI, maxS := n+1, 2*(n+1)
		for i := maxI; i >= 0; i-- {
			for s := maxS; s >= 0; s-- {
				val := 0.0
				if i >= 1 && s >= 2 {
					val += dist[i-1][s-2] * pBoth
				}
				if s >= 1 {
					val += dist[i][s-1] * pOne
				}
				val += dist[i][s] * pNone
				dist[i][s] = val
			}
		}
	}
	e := 0.0
	for i := 0; i <= d; i++ {
		for s := 1; s <= 2*d; s++ {
			if dist[i][s] > 0 {
				e += dist[i][s] * 2 * float64(i) / float64(s)
			}
		}
	}
	return e
}

// CosineOptions configures ExpectedCosine.
type CosineOptions struct {
	// MaxStates caps the exact DP's state count (default 1<<21); above it
	// the estimate falls back to Monte Carlo.
	MaxStates int
	// Samples for the Monte Carlo fallback (default 20000).
	Samples int
	// Seed for the fallback (default 1).
	Seed uint64
}

func (o CosineOptions) withDefaults() CosineOptions {
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 21
	}
	if o.Samples == 0 {
		o.Samples = 20000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ExpectedCosine returns E[ |N(u)∩N(v)| / √(deg(u)·deg(v)) ] with the
// convention 0 when either degree is 0. The exact three-dimensional DP is
// used when its state space fits opt.MaxStates, otherwise Monte Carlo.
func ExpectedCosine(g *ugraph.Graph, u, v int, opt CosineOptions) float64 {
	opt = opt.withDefaults()
	if u == v {
		return anyNeighbour(g, u)
	}
	du, dv := g.OutDegree(u), g.OutDegree(v)
	if du == 0 || dv == 0 {
		return 0
	}
	minD := du
	if dv < minD {
		minD = dv
	}
	states := (minD + 1) * (du + 1) * (dv + 1)
	if states <= opt.MaxStates {
		return exactCosine(g, u, v, du, dv, minD)
	}
	return sampleCosine(g, u, v, opt)
}

func exactCosine(g *ugraph.Graph, u, v, du, dv, minD int) float64 {
	cs := candidates(g, u, v)
	// dist[i][a][b] = Pr(intersection=i, deg(u)=a, deg(v)=b).
	dist := make([][][]float64, minD+1)
	for i := range dist {
		dist[i] = make([][]float64, du+1)
		for a := range dist[i] {
			dist[i][a] = make([]float64, dv+1)
		}
	}
	dist[0][0][0] = 1
	for _, c := range cs {
		pBoth := c.p * c.q
		pU := c.p * (1 - c.q)
		pV := (1 - c.p) * c.q
		pNone := (1 - c.p) * (1 - c.q)
		for i := minD; i >= 0; i-- {
			for a := du; a >= 0; a-- {
				for b := dv; b >= 0; b-- {
					val := dist[i][a][b] * pNone
					if i >= 1 && a >= 1 && b >= 1 {
						val += dist[i-1][a-1][b-1] * pBoth
					}
					if a >= 1 {
						val += dist[i][a-1][b] * pU
					}
					if b >= 1 {
						val += dist[i][a][b-1] * pV
					}
					dist[i][a][b] = val
				}
			}
		}
	}
	e := 0.0
	for i := 0; i <= minD; i++ {
		if i == 0 {
			continue // numerator 0 contributes nothing
		}
		for a := 1; a <= du; a++ {
			for b := 1; b <= dv; b++ {
				if p := dist[i][a][b]; p > 0 {
					e += p * float64(i) / math.Sqrt(float64(a)*float64(b))
				}
			}
		}
	}
	return e
}

func sampleCosine(g *ugraph.Graph, u, v int, opt CosineOptions) float64 {
	r := rng.New(opt.Seed)
	cs := candidates(g, u, v)
	total := 0.0
	for s := 0; s < opt.Samples; s++ {
		inter, a, b := 0, 0, 0
		for _, c := range cs {
			eu := c.p > 0 && r.Bool(c.p)
			ev := c.q > 0 && r.Bool(c.q)
			if eu {
				a++
			}
			if ev {
				b++
			}
			if eu && ev {
				inter++
			}
		}
		if a > 0 && b > 0 {
			total += float64(inter) / math.Sqrt(float64(a)*float64(b))
		}
	}
	return total / float64(opt.Samples)
}

// Kind selects a neighbour-based similarity.
type Kind int

// Similarity kinds.
const (
	KindJaccard Kind = iota
	KindDice
	KindCosine
)

// Expected dispatches to the expected measure of the given kind.
func Expected(g *ugraph.Graph, u, v int, kind Kind) float64 {
	switch kind {
	case KindJaccard:
		return ExpectedJaccard(g, u, v)
	case KindDice:
		return ExpectedDice(g, u, v)
	case KindCosine:
		return ExpectedCosine(g, u, v, CosineOptions{})
	default:
		panic(fmt.Sprintf("simmeasure: unknown kind %d", kind))
	}
}

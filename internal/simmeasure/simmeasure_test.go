package simmeasure

import (
	"math"
	"testing"
	"testing/quick"

	"usimrank/internal/graph"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

const eps = 1e-9

func detGraph() *graph.Graph {
	// N(0) = {2,3}, N(1) = {3,4}, N(5) = {}.
	b := graph.NewBuilder(6)
	b.AddArc(0, 2)
	b.AddArc(0, 3)
	b.AddArc(1, 3)
	b.AddArc(1, 4)
	return b.MustBuild()
}

func TestJaccardDeterministic(t *testing.T) {
	g := detGraph()
	if got := Jaccard(g, 0, 1); math.Abs(got-1.0/3) > eps {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(g, 0, 0); got != 1 {
		t.Fatalf("self Jaccard = %v", got)
	}
	if got := Jaccard(g, 5, 5); got != 0 {
		t.Fatalf("empty-empty Jaccard = %v, want 0", got)
	}
	if got := Jaccard(g, 0, 5); got != 0 {
		t.Fatalf("one-empty Jaccard = %v", got)
	}
}

func TestDiceDeterministic(t *testing.T) {
	g := detGraph()
	// 2·1 / (2+2) = 0.5.
	if got := Dice(g, 0, 1); math.Abs(got-0.5) > eps {
		t.Fatalf("Dice = %v", got)
	}
	if got := Dice(g, 5, 5); got != 0 {
		t.Fatalf("empty Dice = %v", got)
	}
}

func TestCosineDeterministic(t *testing.T) {
	g := detGraph()
	// 1 / √(2·2) = 0.5.
	if got := Cosine(g, 0, 1); math.Abs(got-0.5) > eps {
		t.Fatalf("Cosine = %v", got)
	}
	if got := Cosine(g, 0, 5); got != 0 {
		t.Fatalf("empty Cosine = %v", got)
	}
}

// enumNeighbourSim computes the expected similarity by exhaustive world
// enumeration — the oracle for the DP implementations.
func enumNeighbourSim(t *testing.T, g *ugraph.Graph, u, v int, f func(inter, a, b int) float64) float64 {
	t.Helper()
	total := 0.0
	var bufU, bufV []int32
	err := g.EnumerateWorlds(func(w ugraph.World, pr float64) {
		bufU = w.Out(u, bufU[:0])
		bufV = w.Out(v, bufV[:0])
		inter := 0
		i, j := 0, 0
		for i < len(bufU) && j < len(bufV) {
			switch {
			case bufU[i] < bufV[j]:
				i++
			case bufU[i] > bufV[j]:
				j++
			default:
				inter++
				i++
				j++
			}
		}
		total += pr * f(inter, len(bufU), len(bufV))
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func jaccardOf(inter, a, b int) float64 {
	union := a + b - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func diceOf(inter, a, b int) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(a+b)
}

func cosineOf(inter, a, b int) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return float64(inter) / math.Sqrt(float64(a)*float64(b))
}

func TestExpectedJaccardFig1(t *testing.T) {
	g := ugraph.PaperFig1()
	for u := 0; u < 5; u++ {
		for v := u; v < 5; v++ {
			want := enumNeighbourSim(t, g, u, v, jaccardOf)
			got := ExpectedJaccard(g, u, v)
			if math.Abs(got-want) > eps {
				t.Fatalf("E[J](%d,%d) = %v, oracle %v", u, v, got, want)
			}
		}
	}
}

func TestExpectedDiceFig1(t *testing.T) {
	g := ugraph.PaperFig1()
	for u := 0; u < 5; u++ {
		for v := u; v < 5; v++ {
			want := enumNeighbourSim(t, g, u, v, diceOf)
			got := ExpectedDice(g, u, v)
			if math.Abs(got-want) > eps {
				t.Fatalf("E[D](%d,%d) = %v, oracle %v", u, v, got, want)
			}
		}
	}
}

func TestExpectedCosineFig1Exact(t *testing.T) {
	g := ugraph.PaperFig1()
	for u := 0; u < 5; u++ {
		for v := u; v < 5; v++ {
			want := enumNeighbourSim(t, g, u, v, cosineOf)
			got := ExpectedCosine(g, u, v, CosineOptions{})
			if math.Abs(got-want) > eps {
				t.Fatalf("E[C](%d,%d) = %v, oracle %v", u, v, got, want)
			}
		}
	}
}

func TestExpectedCosineSamplingFallback(t *testing.T) {
	g := ugraph.PaperFig1()
	// Force the fallback with a tiny state cap; Monte Carlo must land
	// close to the oracle.
	want := enumNeighbourSim(t, g, 0, 1, cosineOf)
	got := ExpectedCosine(g, 0, 1, CosineOptions{MaxStates: 1, Samples: 200000, Seed: 5})
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("sampled E[C] = %v, oracle %v", got, want)
	}
}

func TestExpectedMeasuresNoNeighbours(t *testing.T) {
	b := ugraph.NewBuilder(3)
	b.AddArc(0, 1, 0.5)
	g := b.MustBuild()
	// Vertex 2 has no potential neighbours at all.
	if ExpectedJaccard(g, 2, 2) != 0 || ExpectedDice(g, 2, 0) != 0 ||
		ExpectedCosine(g, 2, 1, CosineOptions{}) != 0 {
		t.Fatal("empty neighbourhoods must give 0")
	}
}

func TestExpectedSelfSimilarity(t *testing.T) {
	// E[J](u,u): intersection = union always, so J = 1 unless the
	// neighbourhood is empty. For one arc with p: E[J] = p.
	b := ugraph.NewBuilder(2)
	b.AddArc(0, 1, 0.3)
	g := b.MustBuild()
	if got := ExpectedJaccard(g, 0, 0); math.Abs(got-0.3) > eps {
		t.Fatalf("E[J](0,0) = %v, want 0.3", got)
	}
}

func TestCertainGraphMatchesDeterministic(t *testing.T) {
	// All probabilities 1: the expected measures equal the deterministic
	// ones on the skeleton.
	b := ugraph.NewBuilder(5)
	for _, a := range [][2]int{{0, 2}, {0, 3}, {1, 3}, {1, 4}, {2, 4}} {
		b.AddArc(a[0], a[1], 1)
	}
	g := b.MustBuild()
	sk := g.Skeleton()
	for u := 0; u < 5; u++ {
		for v := u; v < 5; v++ {
			if got, want := ExpectedJaccard(g, u, v), Jaccard(sk, u, v); math.Abs(got-want) > eps {
				t.Fatalf("J(%d,%d): %v vs %v", u, v, got, want)
			}
			if got, want := ExpectedDice(g, u, v), Dice(sk, u, v); math.Abs(got-want) > eps {
				t.Fatalf("D(%d,%d): %v vs %v", u, v, got, want)
			}
			if got, want := ExpectedCosine(g, u, v, CosineOptions{}), Cosine(sk, u, v); math.Abs(got-want) > eps {
				t.Fatalf("C(%d,%d): %v vs %v", u, v, got, want)
			}
		}
	}
}

func TestExpectedDispatch(t *testing.T) {
	g := ugraph.PaperFig1()
	if Expected(g, 0, 1, KindJaccard) != ExpectedJaccard(g, 0, 1) {
		t.Fatal("dispatch Jaccard wrong")
	}
	if Expected(g, 0, 1, KindDice) != ExpectedDice(g, 0, 1) {
		t.Fatal("dispatch Dice wrong")
	}
	if Expected(g, 0, 1, KindCosine) != ExpectedCosine(g, 0, 1, CosineOptions{}) {
		t.Fatal("dispatch Cosine wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind accepted")
		}
	}()
	Expected(g, 0, 1, Kind(99))
}

// Property: expected Jaccard and Dice match the enumeration oracle on
// random small uncertain graphs, and all measures stay in [0,1].
func TestQuickExpectedOracle(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4)
		b := ugraph.NewBuilder(n)
		arcs := 0
		for u := 0; u < n && arcs < 10; u++ {
			for v := 0; v < n && arcs < 10; v++ {
				if r.Bool(0.5) {
					b.AddArc(u, v, 0.1+0.9*r.Float64())
					arcs++
				}
			}
		}
		g := b.MustBuild()
		u, v := r.Intn(n), r.Intn(n)
		wantJ := 0.0
		wantD := 0.0
		var bufU, bufV []int32
		err := g.EnumerateWorlds(func(w ugraph.World, pr float64) {
			bufU = w.Out(u, bufU[:0])
			bufV = w.Out(v, bufV[:0])
			inter := 0
			i, j := 0, 0
			for i < len(bufU) && j < len(bufV) {
				switch {
				case bufU[i] < bufV[j]:
					i++
				case bufU[i] > bufV[j]:
					j++
				default:
					inter++
					i++
					j++
				}
			}
			wantJ += pr * jaccardOf(inter, len(bufU), len(bufV))
			wantD += pr * diceOf(inter, len(bufU), len(bufV))
		})
		if err != nil {
			return false
		}
		gotJ := ExpectedJaccard(g, u, v)
		gotD := ExpectedDice(g, u, v)
		return math.Abs(gotJ-wantJ) < 1e-8 && math.Abs(gotD-wantD) < 1e-8 &&
			gotJ >= 0 && gotJ <= 1+eps && gotD >= 0 && gotD <= 1+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package core

// The indexed single-source strategy: the first query path whose
// request-time cost is independent of the candidate count's sampling
// work. An offline pass (usimrank/internal/index) runs the engine's
// v-side walk streams once per vertex and stores, for every vertex v
// and step k, the empirical occupancy distribution
//
//	occ_v[k](w) = #{ v-side walks of v at vertex w after k steps } / N
//
// — a sparse probability (sub-)vector over the reversed graph, summing
// to the fraction of walks still alive at step k. At query time only
// the SOURCE's walks are sampled (the "residual sample", the same
// u-side chunk streams every other sampling kernel uses); each
// candidate then costs one sparse dot product per step:
//
//	m̂(k)(u, v) = ⟨occ_u[k], occ_v[k]⟩
//	           = (1/N²) · Σᵢ Σⱼ 1[Wᵘᵢ(k) = Wᵛⱼ(k)]
//
// Accuracy contract: the u-side and v-side streams are independent (the
// per-side salts guarantee it, even for v = u), so the double sum
// averages N² independent-pair indicators where the Sampling algorithm
// (Eq. 13) averages the N diagonal ones. The estimator is therefore
// unbiased for m(k)(u, v) with variance at most that of Sampling at
// equal N, and the Hoeffding bound the paper derives for Eq. 14 applies
// verbatim. It is NOT bit-identical to Sampling — it is a strictly
// larger average over the same walk randomness — and the oracle suite
// pins it to the exact possible-world measure within the same tolerance
// as the sampled algorithms.
//
// Generation discipline: an index stores the graph generation, engine
// seed, sample count and depth it was built under; CheckIndex refuses
// any mismatch, so a serving plane can never silently answer from an
// index that disagrees with the resident engine's walk streams.

import (
	"context"
	"fmt"

	"usimrank/internal/matrix"
	"usimrank/internal/mc"
	"usimrank/internal/obs"
	"usimrank/internal/parallel"
	"usimrank/internal/rng"
)

// SourceIndex is a read-only per-vertex occupancy index as the indexed
// single-source kernel consumes it. Row(v, k) is occ_v[k] for
// k = 0..Depth; implementations must make Row safe for concurrent use
// and panic-free for v in [0, NumVertices()) and k in [0, Depth()].
// usimrank/internal/index provides the mmap-backed implementation.
type SourceIndex interface {
	// Generation is the engine graph generation the rows were computed
	// at (Engine.Generation of the builder).
	Generation() uint64
	// NumVertices is the vertex count of the indexed graph.
	NumVertices() int
	// Depth is the deepest indexed step; rows cover k = 0..Depth.
	Depth() int
	// Samples is the walk count N the rows were estimated from.
	Samples() int
	// Seed is the engine seed the v-side walk streams derived from.
	Seed() uint64
	// Row returns occ_v[k], immutable and possibly empty.
	Row(v, k int) matrix.Vec
}

// CheckIndex reports whether x can serve indexed queries for this
// engine: same vertex count, same sample count and seed (the u-side
// residual stream must pair with the v-side streams the rows came
// from), depth covering Steps, and exactly the engine's graph
// generation. A nil error is the serving plane's license to probe.
func (e *Engine) CheckIndex(x SourceIndex) error {
	if x == nil {
		return fmt.Errorf("core: nil index")
	}
	if x.NumVertices() != e.g.NumVertices() {
		return fmt.Errorf("core: index covers %d vertices, graph has %d", x.NumVertices(), e.g.NumVertices())
	}
	if x.Samples() != e.opt.N {
		return fmt.Errorf("core: index built with N=%d, engine runs N=%d", x.Samples(), e.opt.N)
	}
	if x.Seed() != e.opt.Seed {
		return fmt.Errorf("core: index built with seed %d, engine runs seed %d", x.Seed(), e.opt.Seed)
	}
	if x.Depth() < e.opt.Steps {
		return fmt.Errorf("core: index depth %d < engine steps %d", x.Depth(), e.opt.Steps)
	}
	if x.Generation() != e.gen {
		return fmt.Errorf("core: index generation %d != engine generation %d", x.Generation(), e.gen)
	}
	return nil
}

// occupancyWith folds one vertex-side's walk stream into per-step
// occupancy vectors occ[k], k = 0..Steps. The chunks fan out over p;
// the integer per-chunk counts are merged in chunk order and divided by
// N once, so the result is bit-identical for every Parallelism value —
// and identical whether computed at build time (v-side) or query time
// (u-side residual).
func (e *Engine) occupancyWith(p *parallel.Pool, v int, salt uint64) []matrix.Vec {
	chunks := e.walkChunks(v, salt)
	steps := e.opt.Steps
	counts := make([][]map[int32]int, len(chunks))
	p.For(len(chunks), func(ci int) {
		w := mc.Sample(e.rev, v, steps, chunks[ci].Len(), rng.New(chunks[ci].Seed))
		e.kc.walks.Add(uint64(chunks[ci].Len()))
		per := make([]map[int32]int, steps+1)
		for k := range per {
			per[k] = make(map[int32]int)
		}
		for _, walk := range w.Pos {
			for k, at := range walk {
				per[k][at]++
			}
		}
		counts[ci] = per
	})
	total := make([]map[int32]float64, steps+1)
	for k := range total {
		total[k] = make(map[int32]float64)
	}
	invN := 1 / float64(e.opt.N)
	for _, per := range counts {
		if per == nil {
			continue // cancelled pool view; caller checks ctx.Err()
		}
		for k, m := range per {
			for at, c := range m {
				total[k][at] += float64(c) * invN
			}
		}
	}
	occ := make([]matrix.Vec, steps+1)
	for k := range occ {
		occ[k] = matrix.FromMap(total[k])
	}
	return occ
}

// VSideOccupancy computes the v-side occupancy rows of one vertex —
// exactly what the index stores for it. The offline builder fans
// vertices out over the worker pool and calls this per vertex; the
// update plane recomputes exactly the BFS-touched vertices through the
// same entry point, which is what makes a patched index bit-identical
// to a fresh rebuild.
func (e *Engine) VSideOccupancy(v int) ([]matrix.Vec, error) {
	if err := e.checkVertex(v); err != nil {
		return nil, err
	}
	return e.occupancyWith(nil, v, saltWalkV), nil
}

// SingleSourceIndexed computes s(u, v) for every vertex v by probing x:
// u's residual walks are sampled once, then every candidate costs
// Steps+1 sparse dot products against its index rows — no per-candidate
// sampling, so the request-time cost is independent of how much walk
// work went into the index. See the package comment above for the
// accuracy contract relative to SingleSource(AlgSampling, u).
func (e *Engine) SingleSourceIndexed(x SourceIndex, u int) ([]float64, error) {
	candidates := make([]int, e.g.NumVertices())
	for i := range candidates {
		candidates[i] = i
	}
	return e.SingleSourceIndexedAgainst(x, u, candidates)
}

// SingleSourceIndexedAgainst is SingleSourceIndexed restricted to an
// explicit candidate set: out[i] = ŝ(u, candidates[i]).
func (e *Engine) SingleSourceIndexedAgainst(x SourceIndex, u int, candidates []int) ([]float64, error) {
	return e.singleSourceIndexedWith(e.pool, obs.Span{}, x, u, candidates)
}

// SingleSourceIndexedCtx is SingleSourceIndexed with cancellation.
func (e *Engine) SingleSourceIndexedCtx(ctx context.Context, x SourceIndex, u int) ([]float64, error) {
	candidates := make([]int, e.g.NumVertices())
	for i := range candidates {
		candidates[i] = i
	}
	return e.SingleSourceIndexedAgainstCtx(ctx, x, u, candidates)
}

// SingleSourceIndexedAgainstCtx is SingleSourceIndexedAgainst with
// cancellation, following the engine-wide contract: a query that
// completes before the deadline is bit-identical to the plain call.
func (e *Engine) SingleSourceIndexedAgainstCtx(ctx context.Context, x SourceIndex, u int, candidates []int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out, err := e.singleSourceIndexedWith(e.pool.WithContext(ctx), obs.SpanFromContext(ctx), x, u, candidates)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// singleSourceIndexedWith runs the indexed kernel. sp, when enabled, is
// the ambient request span under which the two phases — residual
// sampling of the source, index probing per candidate — are recorded as
// separate timed children; the zero Span makes every trace call a
// no-op, so untraced queries pay nothing.
func (e *Engine) singleSourceIndexedWith(p *parallel.Pool, sp obs.Span, x SourceIndex, u int, candidates []int) ([]float64, error) {
	if err := e.CheckIndex(x); err != nil {
		return nil, err
	}
	if err := e.checkVertex(u); err != nil {
		return nil, err
	}
	for _, v := range candidates {
		if err := e.checkVertex(v); err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(candidates))
	if len(candidates) == 0 {
		return out, nil // nothing to score; skip the residual sample too
	}
	res := sp.Start("index_residual")
	res.Add("residual_walks", int64(e.opt.N))
	occU := e.occupancyWith(p, u, saltWalkU)
	res.End()
	n := e.opt.Steps
	probe := sp.Start("index_probe")
	probe.Add("rows_probed", int64(len(candidates))*int64(n+1))
	p.For(len(candidates), func(i int) {
		v := candidates[i]
		m := make([]float64, n+1)
		for k := 0; k <= n; k++ {
			m[k] = occU[k].Dot(x.Row(v, k))
		}
		out[i] = Combine(m, e.opt.C, n)
	})
	probe.End()
	return out, nil
}

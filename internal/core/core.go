// Package core implements SimRank on uncertain graphs (Sec. V–VI of the
// paper): the measure s(n)(u,v) of Definition 1 and its four computation
// strategies — the exact Baseline, the Monte Carlo Sampling algorithm,
// the Two-Phase algorithm (SR-TS, exact prefix + sampled tail, Eq. 15)
// and the Two-Phase algorithm with the bit-vector speed-up (SR-SP).
//
// SimRank propagates similarity along in-arcs (two random surfers walk
// backwards until they meet), so the engine runs all walk machinery on
// the reversed uncertain graph. On a graph whose arcs all have
// probability 1 the measure coincides with deterministic SimRank
// (Theorem 3); the test suite verifies this against package detsim.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"usimrank/internal/matrix"
	"usimrank/internal/mc"
	"usimrank/internal/parallel"
	"usimrank/internal/rng"
	"usimrank/internal/speedup"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

// Options configures the engine. The zero value selects the paper's
// defaults: c = 0.6, n = 5, N = 1000, l = 1.
type Options struct {
	// C is the decay factor, 0 < C < 1. Default 0.6.
	C float64
	// Steps is the number of SimRank iterations n. Default 5.
	Steps int
	// N is the number of sampled walk pairs. Default 1000.
	N int
	// L is the two-phase split: meeting probabilities for k ≤ L are
	// computed exactly, the rest sampled. Default 1.
	L int
	// Seed drives all randomness; equal seeds give identical results.
	// Default 1.
	Seed uint64
	// MaxStates caps the exact method's walk states per level
	// (walkpr.DefaultMaxStates when 0).
	MaxStates int
	// SharedPool makes SR-SP use one filter-vector pool for both the
	// u-side and the v-side, the literal reading of Fig. 5. The default
	// (false) builds two independent pools, which matches the
	// independence semantics of the Sampling algorithm; the ablation
	// experiments quantify the difference.
	SharedPool bool
	// RowCacheSize bounds the per-source exact-row cache. Default 4096.
	RowCacheSize int
	// Parallelism bounds the worker goroutines of the sampling hot
	// paths: Monte Carlo chunks, SR-SP filter construction and
	// propagations, and the SRSPMatrix sweep. Default
	// runtime.GOMAXPROCS(0). Results are bit-identical for every value
	// ≥ 1: random work is split into fixed-size chunks whose seeds
	// derive from the engine seed in chunk order, never from
	// scheduling.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Steps == 0 {
		o.Steps = 5
	}
	if o.N == 0 {
		o.N = 1000
	}
	if o.L == 0 {
		o.L = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RowCacheSize == 0 {
		o.RowCacheSize = 4096
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if !(o.C > 0 && o.C < 1) {
		return fmt.Errorf("core: decay factor %v outside (0,1)", o.C)
	}
	if o.Steps < 1 {
		return fmt.Errorf("core: steps %d < 1", o.Steps)
	}
	if o.N < 1 {
		return fmt.Errorf("core: sample count %d < 1", o.N)
	}
	if o.L < 0 || o.L > o.Steps {
		return fmt.Errorf("core: two-phase split l=%d outside [0,%d]", o.L, o.Steps)
	}
	if o.Parallelism < 1 {
		return fmt.Errorf("core: parallelism %d < 1", o.Parallelism)
	}
	return nil
}

// Engine computes SimRank similarities over one uncertain graph. It is
// safe for concurrent use: queries may be issued from many goroutines,
// and each query additionally fans its own sampling work out over the
// engine's worker pool (bounded by Options.Parallelism). Determinism is
// preserved either way — results depend only on the options and the
// query, never on scheduling.
type Engine struct {
	g    *ugraph.Graph // original graph
	rev  *ugraph.Graph // reversed graph, where the walks run
	opt  Options
	pool *parallel.Pool // bounded at opt.Parallelism

	cacheMu  sync.Mutex // guards rowCache
	rowCache map[int]cachedRows

	filterMu sync.Mutex // guards lazy poolU/poolV construction
	poolU    *speedup.Filters
	poolV    *speedup.Filters
}

type cachedRows struct {
	rows []matrix.Vec // rows[k] = Pr_rev(src →k ·) for k = 0..len-1
}

// NewEngine validates opt and builds an engine for g.
func NewEngine(g *ugraph.Graph, opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return &Engine{
		g:        g,
		rev:      g.Reverse(),
		opt:      opt,
		pool:     parallel.NewPool(opt.Parallelism),
		rowCache: make(map[int]cachedRows),
	}, nil
}

// Options returns the engine's effective (defaulted) options.
func (e *Engine) Options() Options { return e.opt }

// Graph returns the engine's uncertain graph.
func (e *Engine) Graph() *ugraph.Graph { return e.g }

func (e *Engine) checkVertex(v int) error {
	if v < 0 || v >= e.g.NumVertices() {
		return fmt.Errorf("core: vertex %d out of range [0,%d)", v, e.g.NumVertices())
	}
	return nil
}

// exactRows returns Pr_rev(src →k ·) for k = 0..K, caching per source.
// The cache is mutex-guarded; the row computation itself runs outside
// the lock so concurrent queries for different sources proceed in
// parallel (two goroutines missing on the same source both compute it —
// identical values, last insert wins).
func (e *Engine) exactRows(src, K int) ([]matrix.Vec, error) {
	e.cacheMu.Lock()
	if c, ok := e.rowCache[src]; ok && len(c.rows) > K {
		rows := c.rows[:K+1]
		e.cacheMu.Unlock()
		return rows, nil
	}
	e.cacheMu.Unlock()
	rows, err := walkpr.TransitionRows(e.rev, src, K, walkpr.Options{MaxStates: e.opt.MaxStates})
	if err != nil {
		return nil, err
	}
	e.cacheMu.Lock()
	if len(e.rowCache) >= e.opt.RowCacheSize {
		e.rowCache = make(map[int]cachedRows)
	}
	e.rowCache[src] = cachedRows{rows: rows}
	e.cacheMu.Unlock()
	return rows, nil
}

// MeetingExact returns the exact meeting probabilities
// m(k)(u,v) = Σ_w Pr(u →k w)·Pr(v →k w) for k = 0..K.
func (e *Engine) MeetingExact(u, v, K int) ([]float64, error) {
	if err := e.checkVertex(u); err != nil {
		return nil, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, err
	}
	ru, err := e.exactRows(u, K)
	if err != nil {
		return nil, err
	}
	rv, err := e.exactRows(v, K)
	if err != nil {
		return nil, err
	}
	m := make([]float64, K+1)
	for k := 0; k <= K; k++ {
		m[k] = ru[k].Dot(rv[k])
	}
	return m, nil
}

// Combine evaluates Eq. 12: s(n) = cⁿ·m[n] + (1−c)·Σ_{k=0}^{n−1} cᵏ·m[k].
// It panics if m has fewer than n+1 entries.
func Combine(m []float64, c float64, n int) float64 {
	if len(m) < n+1 {
		panic(fmt.Sprintf("core: need %d meeting probabilities, have %d", n+1, len(m)))
	}
	s := math.Pow(c, float64(n)) * m[n]
	ck := 1.0
	for k := 0; k < n; k++ {
		s += (1 - c) * ck * m[k]
		ck *= c
	}
	return s
}

// CombineTwoPhase evaluates Eq. 15: exact meeting probabilities are used
// for k ≤ l, sampled estimates for l < k ≤ n.
func CombineTwoPhase(exact, sampled []float64, c float64, l, n int) float64 {
	if l >= n {
		return Combine(exact, c, n)
	}
	if len(exact) < l+1 || len(sampled) < n+1 {
		panic("core: meeting probability slices too short")
	}
	s := math.Pow(c, float64(n)) * sampled[n]
	ck := 1.0
	for k := 0; k <= l; k++ {
		s += (1 - c) * ck * exact[k]
		ck *= c
	}
	for k := l + 1; k < n; k++ {
		s += (1 - c) * ck * sampled[k]
		ck *= c
	}
	return s
}

// ErrorBound returns the Theorem 2 truncation bound |s(n) − s| ≤ c^(n+1).
func ErrorBound(c float64, n int) float64 {
	return math.Pow(c, float64(n+1))
}

// TwoPhaseErrorBound returns the Corollary 1 sampling-error factor
// c^(l+1) − c^n multiplying ε.
func TwoPhaseErrorBound(c float64, l, n int) float64 {
	return math.Pow(c, float64(l+1)) - math.Pow(c, float64(n))
}

// Baseline computes s(n)(u,v) exactly (Sec. VI-A).
func (e *Engine) Baseline(u, v int) (float64, error) {
	m, err := e.MeetingExact(u, v, e.opt.Steps)
	if err != nil {
		return 0, err
	}
	return Combine(m, e.opt.C, e.opt.Steps), nil
}

// querySeed derives a deterministic per-query RNG seed.
func (e *Engine) querySeed(u, v int, salt uint64) uint64 {
	x := e.opt.Seed ^ (uint64(u)+1)*0x9e3779b97f4a7c15 ^ (uint64(v)+1)*0xc2b2ae3d27d4eb4f ^ salt
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// MeetingSampled estimates m(k)(u,v) for k = 0..Steps with the Sampling
// algorithm (Fig. 4). The N sample pairs are split into fixed-size
// chunks, each driven by its own RNG stream split off the per-query
// seed in chunk order, and the chunks run concurrently on the engine's
// pool. Merging the integer per-chunk meeting counts is
// order-independent, so the estimate is bit-identical for every
// Parallelism setting.
func (e *Engine) MeetingSampled(u, v int) ([]float64, error) {
	return e.meetingSampledWith(e.pool, u, v)
}

// meetingSampledWith is MeetingSampled on an explicit pool: Batch
// parallelises across pairs and passes nil here so the two fan-out
// levels never multiply into Parallelism² goroutines.
func (e *Engine) meetingSampledWith(p *parallel.Pool, u, v int) ([]float64, error) {
	if err := e.checkVertex(u); err != nil {
		return nil, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, err
	}
	base := rng.New(e.querySeed(u, v, 0xA5))
	chunks := parallel.SplitChunks(e.opt.N, parallel.DefaultChunkSize, base)
	counts := make([][]int, len(chunks))
	p.For(len(chunks), func(ci int) {
		ch := chunks[ci]
		r := rng.New(ch.Seed)
		wu := mc.Sample(e.rev, u, e.opt.Steps, ch.Len(), r)
		wv := mc.Sample(e.rev, v, e.opt.Steps, ch.Len(), r)
		counts[ci] = mc.MeetingCounts(wu, wv)
	})
	m := make([]float64, e.opt.Steps+1)
	for _, c := range counts {
		for k, x := range c {
			m[k] += float64(x)
		}
	}
	for k := range m {
		m[k] /= float64(e.opt.N)
	}
	return m, nil
}

// Sampling computes ŝ(n)(u,v) by pure Monte Carlo (Sec. VI-B, Eq. 14).
func (e *Engine) Sampling(u, v int) (float64, error) {
	return e.samplingWith(e.pool, u, v)
}

func (e *Engine) samplingWith(p *parallel.Pool, u, v int) (float64, error) {
	m, err := e.meetingSampledWith(p, u, v)
	if err != nil {
		return 0, err
	}
	return Combine(m, e.opt.C, e.opt.Steps), nil
}

// TwoPhase computes ŝ(n)(u,v) with the SR-TS algorithm (Sec. VI-C):
// exact meeting probabilities for k ≤ l, sampled for l < k ≤ n.
func (e *Engine) TwoPhase(u, v int) (float64, error) {
	return e.twoPhaseWith(e.pool, u, v)
}

func (e *Engine) twoPhaseWith(p *parallel.Pool, u, v int) (float64, error) {
	exact, err := e.MeetingExact(u, v, min(e.opt.L, e.opt.Steps))
	if err != nil {
		return 0, err
	}
	if e.opt.L >= e.opt.Steps {
		return Combine(exact, e.opt.C, e.opt.Steps), nil
	}
	sampled, err := e.meetingSampledWith(p, u, v)
	if err != nil {
		return 0, err
	}
	return CombineTwoPhase(exact, sampled, e.opt.C, e.opt.L, e.opt.Steps), nil
}

// pools lazily builds the SR-SP filter-vector pools (the paper's offline
// phase), fanning the per-vertex filter construction out over the
// engine's worker pool. With SharedPool both sides use one pool, the
// literal Fig. 5. The mutex makes the lazy build safe under concurrent
// first queries; after construction the filters are immutable.
func (e *Engine) pools() (*speedup.Filters, *speedup.Filters) {
	e.filterMu.Lock()
	defer e.filterMu.Unlock()
	if e.poolU == nil {
		e.poolU = speedup.BuildFiltersPool(e.rev, e.opt.N, rng.New(e.opt.Seed^0xF117E55), e.pool)
		if e.opt.SharedPool {
			e.poolV = e.poolU
		} else {
			e.poolV = speedup.BuildFiltersPool(e.rev, e.opt.N, rng.New(e.opt.Seed^0x0DDB175), e.pool)
		}
	}
	return e.poolU, e.poolV
}

// MeetingSpeedup estimates m(k)(u,v) for k = 0..Steps with the bit-vector
// speed-up (Sec. VI-D, Eq. 16).
func (e *Engine) MeetingSpeedup(u, v int) ([]float64, error) {
	return e.meetingSpeedupWith(e.pool, u, v)
}

func (e *Engine) meetingSpeedupWith(p *parallel.Pool, u, v int) ([]float64, error) {
	if err := e.checkVertex(u); err != nil {
		return nil, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, err
	}
	fu, fv := e.pools()
	var tu, tv *speedup.Tables
	p.For(2, func(side int) {
		if side == 0 {
			tu = speedup.Propagate(fu, u, e.opt.Steps)
		} else {
			tv = speedup.Propagate(fv, v, e.opt.Steps)
		}
	})
	return speedup.MeetingEstimates(tu, tv), nil
}

// SRSP computes ŝ(n)(u,v) with the two-phase algorithm whose sampling
// stage uses the speed-up technique (the paper's SR-SP).
func (e *Engine) SRSP(u, v int) (float64, error) {
	return e.srspWith(e.pool, u, v)
}

func (e *Engine) srspWith(p *parallel.Pool, u, v int) (float64, error) {
	exact, err := e.MeetingExact(u, v, min(e.opt.L, e.opt.Steps))
	if err != nil {
		return 0, err
	}
	if e.opt.L >= e.opt.Steps {
		return Combine(exact, e.opt.C, e.opt.Steps), nil
	}
	sampled, err := e.meetingSpeedupWith(p, u, v)
	if err != nil {
		return 0, err
	}
	return CombineTwoPhase(exact, sampled, e.opt.C, e.opt.L, e.opt.Steps), nil
}

// SRSPMatrix computes ŝ(n) for every pair of the given vertices with the
// SR-SP strategy, propagating each vertex's counting tables exactly once
// per side — the amortisation the BFS-sharing speed-up is designed for.
// The result is symmetric in the sense out[i][j] uses vertices[i] on the
// u-side pool and vertices[j] on the v-side pool; out[i][i] is computed
// like any other pair. Cost: O(len(vertices)) propagations plus
// O(len(vertices)²) bit-vector dot products, versus O(len(vertices)²)
// propagations for pairwise SRSP calls.
func (e *Engine) SRSPMatrix(vertices []int) ([][]float64, error) {
	for _, v := range vertices {
		if err := e.checkVertex(v); err != nil {
			return nil, err
		}
	}
	fu, fv := e.pools()
	n := e.opt.Steps
	l := min(e.opt.L, n)

	// Phase 1: counting-table propagations, two independent tasks per
	// vertex (u-side and v-side pools), fanned out over the worker pool.
	// Each task writes only its own slot, so the fan-out is
	// deterministic.
	tabU := make([]*speedup.Tables, len(vertices))
	tabV := make([]*speedup.Tables, len(vertices))
	if l < n {
		e.pool.For(2*len(vertices), func(t int) {
			i := t / 2
			if t%2 == 0 {
				tabU[i] = speedup.Propagate(fu, vertices[i], n)
			} else {
				tabV[i] = speedup.Propagate(fv, vertices[i], n)
			}
		})
	}
	// Phase 2: exact prefix rows, sequential so every source hits the
	// row cache exactly once and errors surface deterministically.
	exact := make([][]matrix.Vec, len(vertices))
	for i, v := range vertices {
		rows, err := e.exactRows(v, l)
		if err != nil {
			return nil, err
		}
		exact[i] = rows
	}
	// Phase 3: pairwise combination, one output row per task.
	out := make([][]float64, len(vertices))
	for i := range vertices {
		out[i] = make([]float64, len(vertices))
	}
	e.pool.For(len(vertices), func(i int) {
		exactM := make([]float64, l+1)
		for j := range vertices {
			for k := 0; k <= l; k++ {
				exactM[k] = exact[i][k].Dot(exact[j][k])
			}
			if l >= n {
				out[i][j] = Combine(exactM, e.opt.C, n)
				continue
			}
			sampled := speedup.MeetingEstimates(tabU[i], tabV[j])
			out[i][j] = CombineTwoPhase(exactM, sampled, e.opt.C, l, n)
		}
	})
	return out, nil
}

// Series returns the exact iterates s(0), s(1), …, s(maxN) of the
// SimRank sequence (Definition 1), the convergence curve of Fig. 8.
func (e *Engine) Series(u, v, maxN int) ([]float64, error) {
	if maxN < 0 {
		return nil, fmt.Errorf("core: negative maxN %d", maxN)
	}
	m, err := e.MeetingExact(u, v, maxN)
	if err != nil {
		return nil, err
	}
	out := make([]float64, maxN+1)
	for n := 0; n <= maxN; n++ {
		out[n] = Combine(m, e.opt.C, n)
	}
	return out, nil
}

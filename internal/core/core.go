// Package core implements SimRank on uncertain graphs (Sec. V–VI of the
// paper): the measure s(n)(u,v) of Definition 1 and its computation
// strategies — the exact Baseline, the Monte Carlo Sampling algorithm,
// the Two-Phase algorithm (SR-TS, exact prefix + sampled tail, Eq. 15),
// the Two-Phase algorithm with the bit-vector speed-up (SR-SP), and
// SamplingV2, the allocation-free cache-aware rewrite of the Monte
// Carlo kernel (internal/mc's lockstep Plan/Arena machinery).
//
// SimRank propagates similarity along in-arcs (two random surfers walk
// backwards until they meet), so the engine runs all walk machinery on
// the reversed uncertain graph. On a graph whose arcs all have
// probability 1 the measure coincides with deterministic SimRank
// (Theorem 3); the test suite verifies this against package detsim.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"usimrank/internal/cache"
	"usimrank/internal/matrix"
	"usimrank/internal/mc"
	"usimrank/internal/parallel"
	"usimrank/internal/rng"
	"usimrank/internal/speedup"
	"usimrank/internal/ugraph"
	"usimrank/internal/walkpr"
)

// Options configures the engine. The zero value selects the paper's
// defaults: c = 0.6, n = 5, N = 1000, l = 1.
type Options struct {
	// C is the decay factor, 0 < C < 1. Default 0.6.
	C float64
	// Steps is the number of SimRank iterations n. Default 5.
	Steps int
	// N is the number of sampled walk pairs. Default 1000.
	N int
	// L is the two-phase split: meeting probabilities for k ≤ L are
	// computed exactly, the rest sampled. Default 1.
	L int
	// Seed drives all randomness; equal seeds give identical results.
	// Default 1.
	Seed uint64
	// MaxStates caps the exact method's walk states per level
	// (walkpr.DefaultMaxStates when 0).
	MaxStates int
	// SharedPool makes SR-SP use one filter-vector pool for both the
	// u-side and the v-side, the literal reading of Fig. 5. The default
	// (false) builds two independent pools, which matches the
	// independence semantics of the Sampling algorithm; the ablation
	// experiments quantify the difference.
	SharedPool bool
	// RowCacheSize bounds the shared per-source exact-row LRU cache.
	// When the working set exceeds it, the least-recently-used source's
	// rows are evicted one at a time (never a wholesale reset). Default
	// 4096.
	RowCacheSize int
	// Parallelism bounds the worker goroutines of the sampling hot
	// paths: Monte Carlo chunks, SR-SP filter construction and
	// propagations, and the SRSPMatrix sweep. Default
	// runtime.GOMAXPROCS(0). Results are bit-identical for every value
	// ≥ 1: random work is split into fixed-size chunks whose seeds
	// derive from the engine seed in chunk order, never from
	// scheduling.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Steps == 0 {
		o.Steps = 5
	}
	if o.N == 0 {
		o.N = 1000
	}
	if o.L == 0 {
		o.L = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RowCacheSize == 0 {
		o.RowCacheSize = 4096
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if !(o.C > 0 && o.C < 1) {
		return fmt.Errorf("core: decay factor %v outside (0,1)", o.C)
	}
	if o.Steps < 1 {
		return fmt.Errorf("core: steps %d < 1", o.Steps)
	}
	if o.N < 1 {
		return fmt.Errorf("core: sample count %d < 1", o.N)
	}
	if o.L < 0 || o.L > o.Steps {
		return fmt.Errorf("core: two-phase split l=%d outside [0,%d]", o.L, o.Steps)
	}
	if o.Parallelism < 1 {
		return fmt.Errorf("core: parallelism %d < 1", o.Parallelism)
	}
	if o.RowCacheSize < 1 {
		return fmt.Errorf("core: row cache size %d < 1", o.RowCacheSize)
	}
	return nil
}

// Engine computes SimRank similarities over one uncertain graph. It is
// safe for concurrent use: queries may be issued from many goroutines,
// and each query additionally fans its own sampling work out over the
// engine's worker pool (bounded by Options.Parallelism). Determinism is
// preserved either way — results depend only on the options and the
// query, never on scheduling.
type Engine struct {
	g    *ugraph.Graph // original graph
	rev  *ugraph.Graph // reversed graph, where the walks run
	opt  Options
	pool *parallel.Pool // bounded at opt.Parallelism

	// rows caches per-source exact transition rows: rows[k] =
	// Pr_rev(src →k ·) for k = 0..len-1. Bounded LRU, shared by every
	// query shape (pair, single-source, matrix, batch, top-k).
	rows *cache.LRU[int, []matrix.Vec]

	filterMu sync.Mutex // guards lazy poolU/poolV construction
	poolU    *speedup.Filters
	poolV    *speedup.Filters

	// v2 sampling kernel state: the precomputed arc-sampling plan over
	// rev (built lazily on the first SamplingV2 query of a generation;
	// see v2Plan) and the bounded pool of reusable per-worker scratch.
	// The scratch pool is shared with clones and ApplyUpdates
	// successors — buffer sizing depends only on the options, which
	// successors inherit — so warmed buffers survive graph mutations.
	v2mu   sync.Mutex
	v2plan atomic.Pointer[mc.Plan]
	v2pool *parallel.BufferPool[*v2scratch]

	// gen is the graph generation: 1 from NewEngine, predecessor+1 from
	// ApplyUpdates. See Generation.
	gen uint64

	// kc aggregates lifetime kernel resource counts (walks sampled, v2
	// arc instantiations, arena high-water) for the observability plane.
	kc kernelCounters
}

// NewEngine validates opt and builds an engine for g.
func NewEngine(g *ugraph.Graph, opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return &Engine{
		g:      g,
		rev:    g.Reverse(),
		opt:    opt,
		pool:   parallel.NewPool(opt.Parallelism),
		rows:   cache.New[int, []matrix.Vec](opt.RowCacheSize),
		v2pool: newV2Pool(opt),
		gen:    1,
	}, nil
}

// Options returns the engine's effective (defaulted) options.
func (e *Engine) Options() Options { return e.opt }

// WorkerPool returns the engine's bounded worker pool. Sweeps layered
// on top of the engine (top-k, batch) should fan out on this pool
// rather than a fresh one: its helper tokens are pool-wide, so outer
// fan-outs and the kernels they call share one Parallelism bound
// instead of multiplying.
func (e *Engine) WorkerPool() *parallel.Pool { return e.pool }

// Graph returns the engine's uncertain graph.
func (e *Engine) Graph() *ugraph.Graph { return e.g }

func (e *Engine) checkVertex(v int) error {
	if v < 0 || v >= e.g.NumVertices() {
		return fmt.Errorf("core: vertex %d out of range [0,%d)", v, e.g.NumVertices())
	}
	return nil
}

// exactRows returns Pr_rev(src →k ·) for k = 0..K through the shared
// LRU row cache. The row computation itself runs outside the cache's
// lock so concurrent queries for different sources proceed in parallel
// (two goroutines missing on the same source both compute it —
// identical values, last insert wins). Cached rows are immutable;
// callers only read them.
func (e *Engine) exactRows(src, K int) ([]matrix.Vec, error) {
	if rows, ok := e.rows.Get(src); ok && len(rows) > K {
		return rows[:K+1], nil
	}
	rows, err := walkpr.TransitionRows(e.rev, src, K, walkpr.Options{MaxStates: e.opt.MaxStates})
	if err != nil {
		return nil, err
	}
	e.rows.Add(src, rows)
	return rows, nil
}

// WarmRows precomputes the exact transition rows of the given sources
// for k = 0..K and inserts them into the shared row cache — the
// explicit prefetch path for sweeps that are about to touch every
// source (all-pairs top-k, matrix queries). The computation fans out
// over the engine's worker pool; insertion happens afterwards in
// vertex order, so the resulting cache state is deterministic. Sources
// beyond the cache's capacity are not computed: warming more than the
// cache can hold would only evict rows warmed a moment earlier.
func (e *Engine) WarmRows(vertices []int, K int) error {
	for _, v := range vertices {
		if err := e.checkVertex(v); err != nil {
			return err
		}
	}
	if c := e.rows.Cap(); len(vertices) > c {
		vertices = vertices[:c]
	}
	rows := make([][]matrix.Vec, len(vertices))
	errs := make([]error, len(vertices))
	e.pool.For(len(vertices), func(i int) {
		if cached, ok := e.rows.Get(vertices[i]); ok && len(cached) > K {
			return // already warm
		}
		rows[i], errs[i] = walkpr.TransitionRows(e.rev, vertices[i], K, walkpr.Options{MaxStates: e.opt.MaxStates})
	})
	for i, err := range errs {
		if err != nil {
			return err
		}
		if rows[i] != nil {
			e.rows.Add(vertices[i], rows[i])
		}
	}
	return nil
}

// RowCacheStats reports the shared row cache's current occupancy and
// the total number of evictions so far (a thrash metric for sizing
// RowCacheSize).
func (e *Engine) RowCacheStats() (size int, evictions uint64) {
	return e.rows.Len(), e.rows.Evictions()
}

// exactDepth reports how deep the algorithm's exact-row prefix goes —
// the single source of truth the kernels and the warm path share — or
// ok=false when the algorithm never consults exact rows.
func (e *Engine) exactDepth(alg Algorithm) (int, bool) {
	switch alg {
	case AlgBaseline:
		return e.opt.Steps, true
	case AlgTwoPhase, AlgSRSP:
		return min(e.opt.L, e.opt.Steps), true
	default:
		return 0, false
	}
}

// WarmRowsFor warms the row cache for a sweep that will run alg over
// the given sources, deriving the prefix depth from the algorithm so
// callers cannot drift from what the kernels actually fetch. A no-op
// for algorithms that never touch exact rows.
func (e *Engine) WarmRowsFor(alg Algorithm, vertices []int) error {
	depth, ok := e.exactDepth(alg)
	if !ok {
		return nil
	}
	return e.WarmRows(vertices, depth)
}

// MeetingWalker progressively yields the exact meeting probabilities
// m(0)(u,v), m(1)(u,v), … one step per Next call. Unlike repeated
// MeetingExact calls — which recompute v's rows 0..j from scratch at
// every deepening — each level of v's transition rows is computed
// exactly once over the walker's lifetime, while u's rows come from the
// shared cache at full depth up-front (a top-k sweep reuses the source
// against every candidate anyway). Values are bit-identical to
// MeetingExact. A walker is single-goroutine state; create one per
// candidate.
type MeetingWalker struct {
	ru []matrix.Vec
	rw *walkpr.RowWalker
	k  int
}

// NewMeetingWalker returns a walker over m(k)(u, v) for k = 0..maxK.
func (e *Engine) NewMeetingWalker(u, v, maxK int) (*MeetingWalker, error) {
	if err := e.checkVertex(u); err != nil {
		return nil, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, err
	}
	ru, err := e.exactRows(u, maxK)
	if err != nil {
		return nil, err
	}
	rw, err := walkpr.NewRowWalker(e.rev, v, walkpr.Options{MaxStates: e.opt.MaxStates})
	if err != nil {
		return nil, err
	}
	return &MeetingWalker{ru: ru, rw: rw}, nil
}

// Next returns m(k)(u, v) for the next k, starting at k = 0. Calling it
// past the maxK the walker was built for panics (u's rows end there).
func (w *MeetingWalker) Next() (float64, error) {
	rows, err := w.rw.Rows(w.k)
	if err != nil {
		return 0, err
	}
	m := w.ru[w.k].Dot(rows[w.k])
	w.k++
	return m, nil
}

// MeetingExact returns the exact meeting probabilities
// m(k)(u,v) = Σ_w Pr(u →k w)·Pr(v →k w) for k = 0..K.
func (e *Engine) MeetingExact(u, v, K int) ([]float64, error) {
	if err := e.checkVertex(u); err != nil {
		return nil, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, err
	}
	ru, err := e.exactRows(u, K)
	if err != nil {
		return nil, err
	}
	rv, err := e.exactRows(v, K)
	if err != nil {
		return nil, err
	}
	m := make([]float64, K+1)
	for k := 0; k <= K; k++ {
		m[k] = ru[k].Dot(rv[k])
	}
	return m, nil
}

// Combine evaluates Eq. 12: s(n) = cⁿ·m[n] + (1−c)·Σ_{k=0}^{n−1} cᵏ·m[k].
// It panics if m has fewer than n+1 entries.
func Combine(m []float64, c float64, n int) float64 {
	if len(m) < n+1 {
		panic(fmt.Sprintf("core: need %d meeting probabilities, have %d", n+1, len(m)))
	}
	s := math.Pow(c, float64(n)) * m[n]
	ck := 1.0
	for k := 0; k < n; k++ {
		s += (1 - c) * ck * m[k]
		ck *= c
	}
	return s
}

// CombineTwoPhase evaluates Eq. 15: exact meeting probabilities are used
// for k ≤ l, sampled estimates for l < k ≤ n.
func CombineTwoPhase(exact, sampled []float64, c float64, l, n int) float64 {
	if l >= n {
		return Combine(exact, c, n)
	}
	if len(exact) < l+1 || len(sampled) < n+1 {
		panic("core: meeting probability slices too short")
	}
	s := math.Pow(c, float64(n)) * sampled[n]
	ck := 1.0
	for k := 0; k <= l; k++ {
		s += (1 - c) * ck * exact[k]
		ck *= c
	}
	for k := l + 1; k < n; k++ {
		s += (1 - c) * ck * sampled[k]
		ck *= c
	}
	return s
}

// ErrorBound returns the Theorem 2 truncation bound |s(n) − s| ≤ c^(n+1).
func ErrorBound(c float64, n int) float64 {
	return math.Pow(c, float64(n+1))
}

// TwoPhaseErrorBound returns the Corollary 1 sampling-error factor
// c^(l+1) − c^n multiplying ε.
func TwoPhaseErrorBound(c float64, l, n int) float64 {
	return math.Pow(c, float64(l+1)) - math.Pow(c, float64(n))
}

// Baseline computes s(n)(u,v) exactly (Sec. VI-A).
func (e *Engine) Baseline(u, v int) (float64, error) {
	m, err := e.MeetingExact(u, v, e.opt.Steps)
	if err != nil {
		return 0, err
	}
	return Combine(m, e.opt.C, e.opt.Steps), nil
}

// Per-side walk-stream salts: a vertex's u-side and v-side walk sets
// stay independent even for s(u,u).
const (
	saltWalkU = 0xA5
	saltWalkV = 0x5A
)

// sideSeed derives the deterministic seed of one vertex's walk stream
// on one side of the meeting computation. The stream depends only on
// (engine seed, vertex, side) — never on the other endpoint of the
// query — which is what lets the single-source kernels sample the
// source's walks once and replay them against every candidate while
// staying bit-identical to the pairwise path.
func (e *Engine) sideSeed(v int, salt uint64) uint64 {
	x := e.opt.Seed ^ (uint64(v)+1)*0x9e3779b97f4a7c15 ^ salt*0xc2b2ae3d27d4eb4f
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// walkChunks splits the N walk samples of one vertex-side into
// fixed-size chunks, each with its own RNG seed drawn from the side's
// stream in chunk order. The chunk set depends only on (engine seed,
// vertex, side, N), so every query shape — pairwise, single-source,
// batch — slices the same vertex's walks identically.
func (e *Engine) walkChunks(v int, salt uint64) []parallel.Chunk {
	return parallel.SplitChunks(e.opt.N, parallel.DefaultChunkSize, rng.New(e.sideSeed(v, salt)))
}

// MeetingSampled estimates m(k)(u,v) for k = 0..Steps with the Sampling
// algorithm (Fig. 4). The N sample pairs are split into fixed-size
// chunks; chunk i pairs the i-th chunk of u's walk stream with the i-th
// chunk of v's walk stream, and the chunks run concurrently on the
// engine's pool. Merging the integer per-chunk meeting counts is
// order-independent, so the estimate is bit-identical for every
// Parallelism setting.
func (e *Engine) MeetingSampled(u, v int) ([]float64, error) {
	return e.meetingSampledWith(e.pool, u, v)
}

// meetingSampledWith is MeetingSampled on an explicit pool: Batch
// parallelises across pairs and passes nil here so the two fan-out
// levels never multiply into Parallelism² goroutines.
func (e *Engine) meetingSampledWith(p *parallel.Pool, u, v int) ([]float64, error) {
	if err := e.checkVertex(u); err != nil {
		return nil, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, err
	}
	cu := e.walkChunks(u, saltWalkU)
	cv := e.walkChunks(v, saltWalkV)
	counts := make([][]int, len(cu))
	p.For(len(cu), func(ci int) {
		wu := mc.Sample(e.rev, u, e.opt.Steps, cu[ci].Len(), rng.New(cu[ci].Seed))
		wv := mc.Sample(e.rev, v, e.opt.Steps, cv[ci].Len(), rng.New(cv[ci].Seed))
		counts[ci] = mc.MeetingCounts(wu, wv)
		e.kc.walks.Add(uint64(cu[ci].Len() + cv[ci].Len()))
	})
	return e.mergeMeetingCounts(counts), nil
}

// mergeMeetingCounts folds per-chunk integer meeting counts (in chunk
// order) into the m̂(k) estimate of Eq. 13.
func (e *Engine) mergeMeetingCounts(counts [][]int) []float64 {
	m := make([]float64, e.opt.Steps+1)
	for _, c := range counts {
		for k, x := range c {
			m[k] += float64(x)
		}
	}
	for k := range m {
		m[k] /= float64(e.opt.N)
	}
	return m
}

// Sampling computes ŝ(n)(u,v) by pure Monte Carlo (Sec. VI-B, Eq. 14).
func (e *Engine) Sampling(u, v int) (float64, error) {
	return e.samplingWith(e.pool, u, v)
}

func (e *Engine) samplingWith(p *parallel.Pool, u, v int) (float64, error) {
	m, err := e.meetingSampledWith(p, u, v)
	if err != nil {
		return 0, err
	}
	return Combine(m, e.opt.C, e.opt.Steps), nil
}

// TwoPhase computes ŝ(n)(u,v) with the SR-TS algorithm (Sec. VI-C):
// exact meeting probabilities for k ≤ l, sampled for l < k ≤ n.
func (e *Engine) TwoPhase(u, v int) (float64, error) {
	return e.twoPhaseWith(e.pool, u, v)
}

func (e *Engine) twoPhaseWith(p *parallel.Pool, u, v int) (float64, error) {
	l, _ := e.exactDepth(AlgTwoPhase)
	exact, err := e.MeetingExact(u, v, l)
	if err != nil {
		return 0, err
	}
	if e.opt.L >= e.opt.Steps {
		return Combine(exact, e.opt.C, e.opt.Steps), nil
	}
	sampled, err := e.meetingSampledWith(p, u, v)
	if err != nil {
		return 0, err
	}
	return CombineTwoPhase(exact, sampled, e.opt.C, e.opt.L, e.opt.Steps), nil
}

// pools lazily builds the SR-SP filter-vector pools (the paper's offline
// phase), fanning the per-vertex filter construction out over the
// engine's worker pool. With SharedPool both sides use one pool, the
// literal Fig. 5. The mutex makes the lazy build safe under concurrent
// first queries; after construction the filters are immutable.
func (e *Engine) pools() (*speedup.Filters, *speedup.Filters) {
	e.filterMu.Lock()
	defer e.filterMu.Unlock()
	if e.poolU == nil {
		e.poolU = speedup.BuildFiltersPool(e.rev, e.opt.N, rng.New(e.opt.Seed^0xF117E55), e.pool)
		if e.opt.SharedPool {
			e.poolV = e.poolU
		} else {
			e.poolV = speedup.BuildFiltersPool(e.rev, e.opt.N, rng.New(e.opt.Seed^0x0DDB175), e.pool)
		}
	}
	return e.poolU, e.poolV
}

// MeetingSpeedup estimates m(k)(u,v) for k = 0..Steps with the bit-vector
// speed-up (Sec. VI-D, Eq. 16).
func (e *Engine) MeetingSpeedup(u, v int) ([]float64, error) {
	return e.meetingSpeedupWith(e.pool, u, v)
}

func (e *Engine) meetingSpeedupWith(p *parallel.Pool, u, v int) ([]float64, error) {
	if err := e.checkVertex(u); err != nil {
		return nil, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, err
	}
	fu, fv := e.pools()
	var tu, tv *speedup.Tables
	p.For(2, func(side int) {
		if side == 0 {
			tu = speedup.Propagate(fu, u, e.opt.Steps)
		} else {
			tv = speedup.Propagate(fv, v, e.opt.Steps)
		}
	})
	// On a cancelled pool view For may have skipped a propagation,
	// leaving tu/tv nil; surface the cancellation instead of handing
	// nil tables to MeetingEstimates.
	if err := p.Err(); err != nil {
		return nil, err
	}
	return speedup.MeetingEstimates(tu, tv), nil
}

// SRSP computes ŝ(n)(u,v) with the two-phase algorithm whose sampling
// stage uses the speed-up technique (the paper's SR-SP).
func (e *Engine) SRSP(u, v int) (float64, error) {
	return e.srspWith(e.pool, u, v)
}

func (e *Engine) srspWith(p *parallel.Pool, u, v int) (float64, error) {
	l, _ := e.exactDepth(AlgSRSP)
	exact, err := e.MeetingExact(u, v, l)
	if err != nil {
		return 0, err
	}
	if e.opt.L >= e.opt.Steps {
		return Combine(exact, e.opt.C, e.opt.Steps), nil
	}
	sampled, err := e.meetingSpeedupWith(p, u, v)
	if err != nil {
		return 0, err
	}
	return CombineTwoPhase(exact, sampled, e.opt.C, e.opt.L, e.opt.Steps), nil
}

// SRSPMatrix computes ŝ(n) for every pair of the given vertices with the
// SR-SP strategy, propagating each vertex's counting tables exactly once
// per side — the amortisation the BFS-sharing speed-up is designed for.
// The result is symmetric in the sense out[i][j] uses vertices[i] on the
// u-side pool and vertices[j] on the v-side pool; out[i][i] is computed
// like any other pair. Cost: O(len(vertices)) propagations plus
// O(len(vertices)²) bit-vector dot products, versus O(len(vertices)²)
// propagations for pairwise SRSP calls.
func (e *Engine) SRSPMatrix(vertices []int) ([][]float64, error) {
	for _, v := range vertices {
		if err := e.checkVertex(v); err != nil {
			return nil, err
		}
	}
	fu, fv := e.pools()
	n := e.opt.Steps
	l, _ := e.exactDepth(AlgSRSP)

	// Phase 1: counting-table propagations, two independent tasks per
	// vertex (u-side and v-side pools), fanned out over the worker pool.
	// Each task writes only its own slot, so the fan-out is
	// deterministic.
	tabU := make([]*speedup.Tables, len(vertices))
	tabV := make([]*speedup.Tables, len(vertices))
	if l < n {
		e.pool.For(2*len(vertices), func(t int) {
			i := t / 2
			if t%2 == 0 {
				tabU[i] = speedup.Propagate(fu, vertices[i], n)
			} else {
				tabV[i] = speedup.Propagate(fv, vertices[i], n)
			}
		})
	}
	// Phase 2: exact prefix rows, sequential so every source hits the
	// row cache exactly once and errors surface deterministically.
	exact := make([][]matrix.Vec, len(vertices))
	for i, v := range vertices {
		rows, err := e.exactRows(v, l)
		if err != nil {
			return nil, err
		}
		exact[i] = rows
	}
	// Phase 3: pairwise combination through the same per-pair kernel the
	// single-source SRSP path uses, one output row per task.
	out := make([][]float64, len(vertices))
	for i := range vertices {
		out[i] = make([]float64, len(vertices))
	}
	e.pool.For(len(vertices), func(i int) {
		for j := range vertices {
			out[i][j] = e.srspPair(exact[i], exact[j], tabU[i], tabV[j], l)
		}
	})
	return out, nil
}

// Series returns the exact iterates s(0), s(1), …, s(maxN) of the
// SimRank sequence (Definition 1), the convergence curve of Fig. 8.
func (e *Engine) Series(u, v, maxN int) ([]float64, error) {
	if maxN < 0 {
		return nil, fmt.Errorf("core: negative maxN %d", maxN)
	}
	m, err := e.MeetingExact(u, v, maxN)
	if err != nil {
		return nil, err
	}
	out := make([]float64, maxN+1)
	for n := 0; n <= maxN; n++ {
		out[n] = Combine(m, e.opt.C, n)
	}
	return out, nil
}

package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestCtxWrappersMatchPlainCalls pins the cancellation wrappers to
// their plain counterparts: with a live context every value is
// bit-identical, so the serving plane can route everything through the
// Ctx entry points without perturbing results.
func TestCtxWrappersMatchPlainCalls(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 400, Seed: 11, Parallelism: 4})
	ctx := context.Background()
	for _, alg := range Algorithms() {
		want, err := e.Compute(alg, 3, 17)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.ComputeCtx(ctx, alg, 3, 17)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: ComputeCtx = %v, Compute = %v", alg, got, want)
		}
		wantSS, err := e.SingleSource(alg, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotSS, err := e.SingleSourceCtx(ctx, alg, 5)
		if err != nil {
			t.Fatal(err)
		}
		for v := range wantSS {
			if gotSS[v] != wantSS[v] {
				t.Fatalf("%v: SingleSourceCtx[%d] = %v, SingleSource = %v", alg, v, gotSS[v], wantSS[v])
			}
		}
	}
	pairs := [][2]int{{0, 1}, {0, 2}, {7, 9}}
	want := Batch(e, AlgSRSP, pairs, 2)
	got, err := BatchCtx(ctx, e, AlgSRSP, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BatchCtx[%d] = %+v, Batch = %+v", i, got[i], want[i])
		}
	}
}

// TestCtxWrappersAbortWhenCancelled: a dead context aborts every Ctx
// entry point with the context's error instead of returning values.
func TestCtxWrappersAbortWhenCancelled(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 400, Seed: 11, Parallelism: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ComputeCtx(ctx, AlgSampling, 0, 1); err != context.Canceled {
		t.Fatalf("ComputeCtx error = %v, want context.Canceled", err)
	}
	if _, err := e.SingleSourceCtx(ctx, AlgSRSP, 0); err != context.Canceled {
		t.Fatalf("SingleSourceCtx error = %v, want context.Canceled", err)
	}
	if _, err := BatchCtx(ctx, e, AlgSampling, [][2]int{{0, 1}}, 2); err != context.Canceled {
		t.Fatalf("BatchCtx error = %v, want context.Canceled", err)
	}
	if _, err := e.SingleSourceAgainstCtx(ctx, AlgTwoPhase, 0, []int{1, 2}); err != context.Canceled {
		t.Fatalf("SingleSourceAgainstCtx error = %v, want context.Canceled", err)
	}
}

// midwayCtx reports cancelled from its (after+1)-th Err call onwards:
// a deterministic stand-in for a deadline that fires after a query has
// passed its entry check but before its pool fan-out runs.
type midwayCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *midwayCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCtxCancelMidQuerySRSP pins the regression where a context that
// expired between ComputeCtx's entry check and the SR-SP propagation
// fan-out left nil counting tables and panicked in MeetingEstimates:
// the query must instead return the context error, for every
// algorithm.
func TestCtxCancelMidQuerySRSP(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 400, Seed: 11, Parallelism: 2})
	for _, alg := range Algorithms() {
		ctx := &midwayCtx{Context: context.Background(), after: 1}
		s, err := e.ComputeCtx(ctx, alg, 0, 1)
		if err != context.Canceled {
			t.Fatalf("%v: ComputeCtx under midway cancellation = (%v, %v), want context.Canceled", alg, s, err)
		}
	}
}

// TestCtxCancellationStopsChunkWork verifies cancellation is observed
// between pool jobs: a context cancelled from inside the first chunk
// prevents most of the remaining chunks from starting, so server
// deadlines reclaim sampling capacity instead of leaking it.
func TestCtxCancellationStopsChunkWork(t *testing.T) {
	g := testGraph()
	// Parallelism 1 makes the chunk loop sequential, so the count of
	// executed chunks after cancellation is deterministic enough to
	// bound tightly.
	e := newEngine(t, g, Options{N: 100000, Seed: 11, Parallelism: 1})
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := e.ComputeCtx(ctx, AlgSampling, 0, 1)
		if err != context.Canceled {
			t.Errorf("ComputeCtx error = %v, want context.Canceled", err)
		}
		started.Store(1)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sampling query did not return within 30s")
	}
	if started.Load() != 1 {
		t.Fatal("query goroutine never finished")
	}
}

package core

import (
	"fmt"

	"usimrank/internal/matrix"
	"usimrank/internal/mc"
	"usimrank/internal/parallel"
	"usimrank/internal/rng"
	"usimrank/internal/speedup"
)

// SingleSource computes s(u, v) for every vertex v of the graph with
// the selected algorithm, doing the u-side work exactly once:
//
//   - Baseline: u's exact transition rows are computed once and dotted
//     against every candidate's (cached) rows.
//   - Sampling: u's N walks are sampled once per chunk and replayed
//     against every candidate's walks.
//   - TwoPhase: u's exact prefix rows and u's walks, each once.
//   - SRSP: u's counting tables are propagated once and dotted against
//     one propagation per candidate.
//   - SamplingV2: u's lockstep walk grids are sampled once per chunk
//     into a shared buffer and replayed against every candidate,
//     allocation-free on a warmed engine.
//
// Every score is bit-identical to the pairwise Compute(alg, u, v) —
// per-side walk streams and deterministic work splitting guarantee it —
// so callers can mix query shapes freely. The candidate work fans out
// over the engine's worker pool; results are independent of
// Parallelism.
func (e *Engine) SingleSource(alg Algorithm, u int) ([]float64, error) {
	candidates := make([]int, e.g.NumVertices())
	for i := range candidates {
		candidates[i] = i
	}
	return e.SingleSourceAgainst(alg, u, candidates)
}

// SingleSourceAgainst is SingleSource restricted to an explicit
// candidate set: out[i] = s(u, candidates[i]). Candidates may repeat
// and may include u itself.
func (e *Engine) SingleSourceAgainst(alg Algorithm, u int, candidates []int) ([]float64, error) {
	return e.singleSourceWith(e.pool, alg, u, candidates)
}

func (e *Engine) singleSourceWith(p *parallel.Pool, alg Algorithm, u int, candidates []int) ([]float64, error) {
	out := make([]float64, len(candidates))
	errs := make([]error, len(candidates))
	if err := e.singleSourceInto(p, alg, u, candidates, out, errs); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SingleSourceAgainstInto is SingleSourceAgainst writing into a
// caller-provided buffer (len(out) must equal len(candidates)) — the
// form for callers that reuse result buffers across queries. For the
// sampling strategies nothing else is allocated either: on a warmed
// engine the whole AlgSamplingV2 path is allocation-free, the property
// the allocation regression gate pins. Exact-row strategies still
// allocate internally (rows, an error slot per candidate).
func (e *Engine) SingleSourceAgainstInto(alg Algorithm, u int, candidates []int, out []float64) error {
	if len(out) != len(candidates) {
		return fmt.Errorf("core: out length %d != candidate count %d", len(out), len(candidates))
	}
	// Only kernels that fetch exact rows per candidate can fail
	// per-candidate; the pure sampling kernels never touch errs.
	var errs []error
	if _, usesRows := e.exactDepth(alg); usesRows {
		errs = make([]error, len(candidates))
	}
	if err := e.singleSourceInto(e.pool, alg, u, candidates, out, errs); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// singleSourceInto runs one single-source kernel, writing scores to
// out[i] and per-candidate failures to errs[i] (both len(candidates)).
// A returned error means the u-side preparation failed and no candidate
// was scored. Candidate tasks fan out on p and write only their own
// slots, so results never depend on scheduling.
func (e *Engine) singleSourceInto(p *parallel.Pool, alg Algorithm, u int, candidates []int, out []float64, errs []error) error {
	if err := e.checkVertex(u); err != nil {
		return err
	}
	for _, v := range candidates {
		if err := e.checkVertex(v); err != nil {
			return err
		}
	}
	switch alg {
	case AlgBaseline, AlgSampling, AlgTwoPhase, AlgSRSP, AlgSamplingV2:
	default:
		return fmt.Errorf("core: unknown algorithm %d", int(alg))
	}
	if len(candidates) == 0 {
		return nil // nothing to score; skip the u-side preparation too
	}
	// Direct method calls rather than a method-value variable: binding a
	// method value heap-allocates, which the SamplingV2 allocation gate
	// forbids on this path.
	switch alg {
	case AlgBaseline:
		return e.baselineKernel(p, u, candidates, out, errs)
	case AlgSampling:
		return e.samplingKernel(p, u, candidates, out, errs)
	case AlgTwoPhase:
		return e.twoPhaseKernel(p, u, candidates, out, errs)
	case AlgSRSP:
		return e.srspKernel(p, u, candidates, out, errs)
	default:
		return e.samplingV2Kernel(p, u, candidates, out, errs)
	}
}

// baselineKernel: exact rows of u once, one row lookup + dot per
// candidate. Identical arithmetic to Baseline(u, v).
func (e *Engine) baselineKernel(p *parallel.Pool, u int, candidates []int, out []float64, errs []error) error {
	n := e.opt.Steps
	ru, err := e.exactRows(u, n)
	if err != nil {
		return err
	}
	p.For(len(candidates), func(i int) {
		rv, err := e.exactRows(candidates[i], n)
		if err != nil {
			errs[i] = err
			return
		}
		m := make([]float64, n+1)
		for k := 0; k <= n; k++ {
			m[k] = ru[k].Dot(rv[k])
		}
		out[i] = Combine(m, e.opt.C, n)
	})
	return nil
}

// sourceWalks samples the source's walk chunks once, fanned out over p.
// The result is shared read-only by every candidate task.
func (e *Engine) sourceWalks(p *parallel.Pool, u int) []*mc.Walks {
	cu := e.walkChunks(u, saltWalkU)
	walks := make([]*mc.Walks, len(cu))
	p.For(len(cu), func(ci int) {
		walks[ci] = mc.Sample(e.rev, u, e.opt.Steps, cu[ci].Len(), rng.New(cu[ci].Seed))
		e.kc.walks.Add(uint64(cu[ci].Len()))
	})
	return walks
}

// candidateMeeting samples one candidate's walk chunks and replays them
// against the source's pre-sampled walks, returning the merged m̂(k)
// estimate. The per-chunk integer counts are summed in chunk order —
// exactly the pairwise merge — so the estimate is bit-identical to
// MeetingSampled(u, v).
func (e *Engine) candidateMeeting(walksU []*mc.Walks, v int) []float64 {
	cv := e.walkChunks(v, saltWalkV)
	counts := make([][]int, len(cv))
	for ci := range cv {
		wv := mc.Sample(e.rev, v, e.opt.Steps, cv[ci].Len(), rng.New(cv[ci].Seed))
		counts[ci] = mc.MeetingCounts(walksU[ci], wv)
	}
	e.kc.walks.Add(uint64(e.opt.N)) // the chunks partition exactly N walks
	return e.mergeMeetingCounts(counts)
}

// samplingKernel: u's walks sampled once per chunk, replayed against
// every candidate's walks. Identical arithmetic to Sampling(u, v).
func (e *Engine) samplingKernel(p *parallel.Pool, u int, candidates []int, out []float64, errs []error) error {
	walksU := e.sourceWalks(p, u)
	p.For(len(candidates), func(i int) {
		out[i] = Combine(e.candidateMeeting(walksU, candidates[i]), e.opt.C, e.opt.Steps)
	})
	return nil
}

// twoPhaseKernel: u's exact prefix rows and u's walks, each once;
// per candidate one prefix dot and one walk replay. Identical
// arithmetic to TwoPhase(u, v).
func (e *Engine) twoPhaseKernel(p *parallel.Pool, u int, candidates []int, out []float64, errs []error) error {
	n := e.opt.Steps
	l, _ := e.exactDepth(AlgTwoPhase)
	ru, err := e.exactRows(u, l)
	if err != nil {
		return err
	}
	var walksU []*mc.Walks
	if l < n {
		walksU = e.sourceWalks(p, u)
	}
	p.For(len(candidates), func(i int) {
		rv, err := e.exactRows(candidates[i], l)
		if err != nil {
			errs[i] = err
			return
		}
		exact := make([]float64, l+1)
		for k := 0; k <= l; k++ {
			exact[k] = ru[k].Dot(rv[k])
		}
		if l >= n {
			out[i] = Combine(exact, e.opt.C, n)
			return
		}
		sampled := e.candidateMeeting(walksU, candidates[i])
		out[i] = CombineTwoPhase(exact, sampled, e.opt.C, e.opt.L, n)
	})
	return nil
}

// srspKernel: u's exact prefix rows and u's counting-table propagation,
// each once; per candidate one prefix dot and one propagation.
// Identical arithmetic to SRSP(u, v).
func (e *Engine) srspKernel(p *parallel.Pool, u int, candidates []int, out []float64, errs []error) error {
	n := e.opt.Steps
	l, _ := e.exactDepth(AlgSRSP)
	ru, err := e.exactRows(u, l)
	if err != nil {
		return err
	}
	var tu *speedup.Tables
	var fv *speedup.Filters
	if l < n {
		fu, fvSide := e.pools()
		fv = fvSide
		tu = speedup.Propagate(fu, u, n)
	}
	p.For(len(candidates), func(i int) {
		rv, err := e.exactRows(candidates[i], l)
		if err != nil {
			errs[i] = err
			return
		}
		var tv *speedup.Tables
		if l < n {
			tv = speedup.Propagate(fv, candidates[i], n)
		}
		out[i] = e.srspPair(ru, rv, tu, tv, l)
	})
	return nil
}

// srspPair combines one (u, v) pair from prepared per-vertex SRSP state
// — exact prefix rows plus (when l < Steps) propagated counting tables.
// It is the shared tail of the pairwise SRSP path, the single-source
// kernel, and the SRSPMatrix sweep, so the three are bit-identical by
// construction.
func (e *Engine) srspPair(exactU, exactV []matrix.Vec, tu, tv *speedup.Tables, l int) float64 {
	n := e.opt.Steps
	m := make([]float64, l+1)
	for k := 0; k <= l; k++ {
		m[k] = exactU[k].Dot(exactV[k])
	}
	if l >= n {
		return Combine(m, e.opt.C, n)
	}
	return CombineTwoPhase(m, speedup.MeetingEstimates(tu, tv), e.opt.C, l, n)
}

package core

import (
	"sync"
	"testing"

	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

var allAlgorithms = []Algorithm{AlgBaseline, AlgSampling, AlgTwoPhase, AlgSRSP, AlgSamplingV2}

// smallTestGraph is big enough that sampling splits into several chunks
// but small enough for exhaustive single-source sweeps in tests.
func smallTestGraph() *ugraph.Graph {
	return gen.WithUniformProbs(gen.RMAT(6, 256, 0.45, 0.22, 0.22, rng.New(5)), 0.2, 0.9, rng.New(6))
}

// TestSingleSourceMatchesPairwiseBitForBit is the kernel contract:
// SingleSource(alg, u)[v] == Compute(alg, u, v) exactly — no tolerance —
// for every algorithm, across seeds and Parallelism values. The
// pairwise path samples each side's walks from per-side streams and the
// kernel replays the identical chunks, so the floats must agree to the
// last bit.
func TestSingleSourceMatchesPairwiseBitForBit(t *testing.T) {
	graphs := map[string]*ugraph.Graph{
		"fig1": ugraph.PaperFig1(),
		"rmat": smallTestGraph(),
	}
	for name, g := range graphs {
		for _, seed := range []uint64{1, 42} {
			for _, par := range []int{1, 4} {
				e := newEngine(t, g, Options{N: 320, Seed: seed, L: 1, Parallelism: par})
				for _, alg := range allAlgorithms {
					u := int(seed) % g.NumVertices()
					got, err := e.SingleSource(alg, u)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != g.NumVertices() {
						t.Fatalf("%s %v: %d scores for %d vertices", name, alg, len(got), g.NumVertices())
					}
					for v := 0; v < g.NumVertices(); v++ {
						want, err := e.Compute(alg, u, v)
						if err != nil {
							t.Fatal(err)
						}
						if got[v] != want {
							t.Fatalf("%s %v seed=%d par=%d: SingleSource(%d)[%d] = %v, Compute = %v",
								name, alg, seed, par, u, v, got[v], want)
						}
					}
				}
			}
		}
	}
}

// TestSingleSourceParallelismInvariant: the kernel's own fan-out must
// not change a single bit of the output.
func TestSingleSourceParallelismInvariant(t *testing.T) {
	g := smallTestGraph()
	for _, alg := range allAlgorithms {
		e1 := newEngine(t, g, Options{N: 320, Seed: 9, Parallelism: 1})
		ref, err := e1.SingleSource(alg, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			ep := newEngine(t, g, Options{N: 320, Seed: 9, Parallelism: par})
			got, err := ep.SingleSource(alg, 3)
			if err != nil {
				t.Fatal(err)
			}
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("%v par=%d: score[%d] = %v, want %v", alg, par, v, got[v], ref[v])
				}
			}
		}
	}
}

// TestSingleSourceAgainstSubset: explicit candidate lists, including
// duplicates and the source itself.
func TestSingleSourceAgainstSubset(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{N: 256, Seed: 3})
	candidates := []int{4, 0, 4, 2, 0}
	for _, alg := range allAlgorithms {
		got, err := e.SingleSourceAgainst(alg, 0, candidates)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range candidates {
			want, err := e.Compute(alg, 0, v)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("%v candidate %d (vertex %d): %v, want %v", alg, i, v, got[i], want)
			}
		}
	}
}

func TestSingleSourceBadArgs(t *testing.T) {
	e := newEngine(t, ugraph.PaperFig1(), Options{})
	if _, err := e.SingleSource(AlgBaseline, -1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := e.SingleSource(AlgBaseline, 99); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := e.SingleSourceAgainst(AlgSRSP, 0, []int{1, 99}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
	if _, err := e.SingleSource(Algorithm(42), 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := e.SingleSourceAgainst(Algorithm(42), 0, nil); err == nil {
		t.Fatal("unknown algorithm with empty candidates accepted")
	}
	if got, err := e.SingleSourceAgainst(AlgSRSP, 0, nil); err != nil || len(got) != 0 {
		t.Fatalf("empty candidates: %v, %v", got, err)
	}
}

// TestSingleSourceConcurrent hammers one engine with single-source
// queries from many goroutines mixing all four algorithms — the CI race
// leg guards the shared LRU row cache, the lazy filter build, and the
// nested pool fan-outs; the value checks guard determinism under
// contention.
func TestSingleSourceConcurrent(t *testing.T) {
	g := smallTestGraph()
	e := newEngine(t, g, Options{N: 256, Seed: 17, Parallelism: 4, RowCacheSize: 8})
	sources := []int{0, 5, 11, 23}
	want := make(map[Algorithm][][]float64)
	for _, alg := range allAlgorithms {
		for _, u := range sources {
			s, err := e.SingleSource(alg, u)
			if err != nil {
				t.Fatal(err)
			}
			want[alg] = append(want[alg], s)
		}
	}
	const goroutines = 12
	var wg sync.WaitGroup
	errCh := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < 2; rep++ {
				alg := allAlgorithms[(gi+rep)%len(allAlgorithms)]
				si := (gi * 3 / 2) % len(sources)
				got, err := e.SingleSource(alg, sources[si])
				if err != nil {
					errCh <- err.Error()
					return
				}
				ref := want[alg][si]
				for v := range ref {
					if got[v] != ref[v] {
						errCh <- "concurrent single-source diverged from sequential value"
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Fatal(msg)
	}
}

// TestMeetingWalkerMatchesMeetingExact: the progressive walker behind
// the pruned top-k search must yield exactly the MeetingExact values,
// one level at a time.
func TestMeetingWalkerMatchesMeetingExact(t *testing.T) {
	g := smallTestGraph()
	e := newEngine(t, g, Options{})
	n := e.Options().Steps
	for _, pair := range [][2]int{{0, 1}, {3, 17}, {5, 5}} {
		want, err := e.MeetingExact(pair[0], pair[1], n)
		if err != nil {
			t.Fatal(err)
		}
		mw, err := e.NewMeetingWalker(pair[0], pair[1], n)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= n; k++ {
			got, err := mw.Next()
			if err != nil {
				t.Fatal(err)
			}
			if got != want[k] {
				t.Fatalf("pair %v: walker m(%d) = %v, MeetingExact %v", pair, k, got, want[k])
			}
		}
	}
	if _, err := e.NewMeetingWalker(0, 99, n); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}

// TestBatchGroupsBySource: grouped kernel execution must equal the
// sequential pairwise loop, including mixed valid/invalid pairs.
func TestBatchGroupsBySource(t *testing.T) {
	g := smallTestGraph()
	e := newEngine(t, g, Options{N: 256, Seed: 7, Parallelism: 3})
	pairs := [][2]int{{0, 1}, {0, 9}, {5, 2}, {0, 3}, {99, 0}, {5, 200}, {5, 5}}
	for _, alg := range allAlgorithms {
		got := Batch(e, alg, pairs, 4)
		for i, p := range pairs {
			if p[0] >= g.NumVertices() || p[1] >= g.NumVertices() {
				if got[i].Err == nil {
					t.Fatalf("%v pair %v: invalid pair accepted", alg, p)
				}
				continue
			}
			want, err := e.Compute(alg, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if got[i].Err != nil || got[i].Value != want {
				t.Fatalf("%v pair %v: batch %v (err %v), want %v", alg, p, got[i].Value, got[i].Err, want)
			}
		}
	}
}

// TestWarmRowsPrefetch: warming fills the LRU deterministically, caps at
// capacity, and never changes query results.
func TestWarmRowsPrefetch(t *testing.T) {
	g := ugraph.PaperFig1()
	cold := newEngine(t, g, Options{})
	warm := newEngine(t, g, Options{})
	if err := warm.WarmRows([]int{0, 1, 2, 3, 4}, warm.Options().Steps); err != nil {
		t.Fatal(err)
	}
	if size, _ := warm.RowCacheStats(); size != 5 {
		t.Fatalf("warmed cache holds %d sources", size)
	}
	for u := 0; u < 5; u++ {
		for v := u; v < 5; v++ {
			a, err := cold.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := warm.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("warm cache changed s(%d,%d): %v vs %v", u, v, a, b)
			}
		}
	}
	// Warming beyond capacity computes only what fits.
	tiny := newEngine(t, g, Options{RowCacheSize: 2})
	if err := tiny.WarmRows([]int{0, 1, 2, 3, 4}, tiny.Options().Steps); err != nil {
		t.Fatal(err)
	}
	size, evictions := tiny.RowCacheStats()
	if size != 2 || evictions != 0 {
		t.Fatalf("capacity-2 warm: size=%d evictions=%d", size, evictions)
	}
	if err := tiny.WarmRows([]int{0, 99}, 5); err == nil {
		t.Fatal("invalid warm vertex accepted")
	}
}

// TestRowCacheBoundedEviction: a sweep over more sources than the cache
// holds must evict incrementally (not reset wholesale) and still return
// exact values.
func TestRowCacheBoundedEviction(t *testing.T) {
	g := smallTestGraph()
	small := newEngine(t, g, Options{RowCacheSize: 4})
	big := newEngine(t, g, Options{RowCacheSize: g.NumVertices() + 1})
	for v := 1; v < 12; v++ {
		a, err := small.Baseline(0, v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := big.Baseline(0, v)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("eviction changed s(0,%d): %v vs %v", v, a, b)
		}
	}
	size, evictions := small.RowCacheStats()
	if size > 4 {
		t.Fatalf("cache grew past capacity: %d", size)
	}
	if evictions == 0 {
		t.Fatal("sweep past capacity recorded no evictions")
	}
}

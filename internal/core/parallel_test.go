package core

import (
	"sync"
	"testing"

	"usimrank/internal/gen"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

// testGraph returns a graph big enough that sampling splits into many
// chunks and SRSPMatrix propagates from several vertices.
func testGraph() *ugraph.Graph {
	return gen.WithUniformProbs(gen.RMAT(7, 512, 0.45, 0.22, 0.22, rng.New(3)), 0.2, 0.9, rng.New(4))
}

// TestParallelismDeterminism is the engine's core concurrency contract:
// for a fixed seed, every algorithm returns bit-identical results
// whatever the Parallelism setting, because random work is split into
// fixed-size chunks seeded in chunk order, never by scheduling.
func TestParallelismDeterminism(t *testing.T) {
	g := testGraph()
	pairs := [][2]int{{0, 1}, {5, 17}, {40, 2}, {63, 64}}
	type results struct {
		sampling, twophase, srsp []float64
		matrix                   [][]float64
	}
	run := func(par int) results {
		e := newEngine(t, g, Options{N: 600, Seed: 21, Parallelism: par})
		var res results
		for _, p := range pairs {
			s, err := e.Sampling(p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			tp, err := e.TwoPhase(p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			sp, err := e.SRSP(p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			res.sampling = append(res.sampling, s)
			res.twophase = append(res.twophase, tp)
			res.srsp = append(res.srsp, sp)
		}
		m, err := e.SRSPMatrix([]int{0, 3, 9, 27, 50})
		if err != nil {
			t.Fatal(err)
		}
		res.matrix = m
		return res
	}
	ref := run(1)
	for _, par := range []int{2, 4, 8} {
		got := run(par)
		for i := range pairs {
			if got.sampling[i] != ref.sampling[i] {
				t.Fatalf("Parallelism=%d: Sampling(%v) = %v, want %v", par, pairs[i], got.sampling[i], ref.sampling[i])
			}
			if got.twophase[i] != ref.twophase[i] {
				t.Fatalf("Parallelism=%d: TwoPhase(%v) = %v, want %v", par, pairs[i], got.twophase[i], ref.twophase[i])
			}
			if got.srsp[i] != ref.srsp[i] {
				t.Fatalf("Parallelism=%d: SRSP(%v) = %v, want %v", par, pairs[i], got.srsp[i], ref.srsp[i])
			}
		}
		for i := range ref.matrix {
			for j := range ref.matrix[i] {
				if got.matrix[i][j] != ref.matrix[i][j] {
					t.Fatalf("Parallelism=%d: SRSPMatrix[%d][%d] = %v, want %v",
						par, i, j, got.matrix[i][j], ref.matrix[i][j])
				}
			}
		}
	}
}

// TestSharedEngineConcurrentQueries hammers one engine from many
// goroutines mixing every algorithm — the race detector (the CI race
// leg) guards the row cache, the lazy filter build, and the worker
// fan-out; the value checks guard determinism under contention.
func TestSharedEngineConcurrentQueries(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 300, Seed: 9, Parallelism: 4})
	pairs := [][2]int{{0, 1}, {2, 3}, {10, 77}, {64, 5}, {33, 34}}
	want := make([]map[string]float64, len(pairs))
	for i, p := range pairs {
		want[i] = map[string]float64{}
		var err error
		if want[i]["baseline"], err = e.Baseline(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
		if want[i]["sampling"], err = e.Sampling(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
		if want[i]["srsp"], err = e.SRSP(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				i := (gi + rep) % len(pairs)
				p := pairs[i]
				if s, err := e.Baseline(p[0], p[1]); err != nil || s != want[i]["baseline"] {
					errCh <- err
					return
				}
				if s, err := e.Sampling(p[0], p[1]); err != nil || s != want[i]["sampling"] {
					errCh <- err
					return
				}
				if s, err := e.SRSP(p[0], p[1]); err != nil || s != want[i]["srsp"] {
					errCh <- err
					return
				}
				if _, err := e.SRSPMatrix([]int{0, 7, 19}); err != nil {
					errCh <- err
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
		t.Fatal("concurrent query diverged from sequential value")
	}
}

// TestSRSPMatrixMatchesPairwiseSRSP pins the amortised sweep to the
// pairwise API it accelerates.
func TestSRSPMatrixMatchesPairwiseSRSP(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 400, Seed: 13, Parallelism: 3})
	verts := []int{1, 8, 21, 42}
	m, err := e.SRSPMatrix(verts)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range verts {
		for j, v := range verts {
			s, err := e.SRSP(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if m[i][j] != s {
				t.Fatalf("SRSPMatrix[%d][%d] = %v, SRSP(%d,%d) = %v", i, j, m[i][j], u, v, s)
			}
		}
	}
}

func TestParallelismValidation(t *testing.T) {
	if _, err := NewEngine(ugraph.PaperFig1(), Options{Parallelism: -2}); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	e := newEngine(t, ugraph.PaperFig1(), Options{})
	if e.Options().Parallelism < 1 {
		t.Fatalf("defaulted parallelism %d < 1", e.Options().Parallelism)
	}
}

package core

import (
	"math"
	"testing"
)

// The generic strategy contracts — bit-identity between pairwise,
// single-source, batch and cluster shapes, Parallelism invariance, the
// concurrent race hammer, ApplyUpdates equivalence, and the
// possible-world oracle pin — cover AlgSamplingV2 through the shared
// allAlgorithms / Algorithms() matrices. This file pins what is
// specific to v2: the allocation-free steady state and its statistical
// agreement with the v1 estimator.

// TestSamplingV2AgreesWithV1 checks the two estimators of the same
// measure against each other: both are within Hoeffding ε of the true
// s(n) with overwhelming probability, so their difference is bounded by
// 2ε even though they consume randomness differently.
func TestSamplingV2AgreesWithV1(t *testing.T) {
	g := smallTestGraph()
	e := newEngine(t, g, Options{N: 4000, Seed: 11})
	const eps = 0.06
	for _, pair := range [][2]int{{0, 1}, {3, 17}, {9, 9}, {40, 7}} {
		v1, err := e.Compute(AlgSampling, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		v2, err := e.Compute(AlgSamplingV2, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v1-v2) > 2*eps {
			t.Fatalf("pair %v: v1 %v vs v2 %v differ by %v > 2ε", pair, v1, v2, math.Abs(v1-v2))
		}
	}
	// The invariant that holds exactly: both streams start at u, so
	// m̂(0)(u,u) = 1 and s(u,u) ≥ (1−c)·m̂(0) = 1−c.
	v2, err := e.Compute(AlgSamplingV2, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v2 < (1-e.Options().C)*1 {
		t.Fatalf("s(5,5) = %v, below the exact (1-c)·m(0) floor", v2)
	}
}

// TestSamplingV2ScoreAllocFree is half of the allocation regression
// gate's contract: on a warmed engine at Parallelism 1, a pairwise
// SamplingV2 score performs zero heap allocations.
func TestSamplingV2ScoreAllocFree(t *testing.T) {
	g := smallTestGraph()
	e := newEngine(t, g, Options{N: 1024, Seed: 5, Parallelism: 1})
	if _, err := e.Compute(AlgSamplingV2, 3, 17); err != nil { // build plan, warm scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Compute(AlgSamplingV2, 3, 17); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed SamplingV2 score allocates %v per op, want 0", allocs)
	}
}

// TestSamplingV2SingleSourceAllocFree is the other half: a warmed
// candidate-restricted single-source sweep through the Into API
// allocates nothing either.
func TestSamplingV2SingleSourceAllocFree(t *testing.T) {
	g := smallTestGraph()
	e := newEngine(t, g, Options{N: 1024, Seed: 5, Parallelism: 1})
	candidates := []int{1, 4, 9, 33, 47, 60}
	out := make([]float64, len(candidates))
	if err := e.SingleSourceAgainstInto(AlgSamplingV2, 3, candidates, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := e.SingleSourceAgainstInto(AlgSamplingV2, 3, candidates, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed SamplingV2 single-source allocates %v per op, want 0", allocs)
	}
}

// TestSingleSourceAgainstIntoMatchesAllocating: the Into API must
// return exactly the values of SingleSourceAgainst for every strategy.
func TestSingleSourceAgainstIntoMatchesAllocating(t *testing.T) {
	g := smallTestGraph()
	e := newEngine(t, g, Options{N: 320, Seed: 7})
	candidates := []int{0, 3, 3, 18, 55}
	out := make([]float64, len(candidates))
	for _, alg := range allAlgorithms {
		want, err := e.SingleSourceAgainst(alg, 2, candidates)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SingleSourceAgainstInto(alg, 2, candidates, out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("%v candidate %d: Into %v, allocating %v", alg, i, out[i], want[i])
			}
		}
	}
	if err := e.SingleSourceAgainstInto(AlgSamplingV2, 2, candidates, out[:1]); err == nil {
		t.Fatal("mismatched out length accepted")
	}
	if err := e.SingleSourceAgainstInto(AlgBaseline, 2, []int{99999}, out[:1]); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}

// TestSamplingV2PlanLazyAndShared: the plan is built once per engine
// generation; clones share it, ApplyUpdates successors rebuild.
func TestSamplingV2PlanLazyAndShared(t *testing.T) {
	g := smallTestGraph()
	e := newEngine(t, g, Options{N: 128, Seed: 3})
	if e.v2plan.Load() != nil {
		t.Fatal("plan built eagerly")
	}
	if _, err := e.Compute(AlgSamplingV2, 0, 1); err != nil {
		t.Fatal(err)
	}
	plan := e.v2plan.Load()
	if plan == nil {
		t.Fatal("plan not built by first query")
	}
	c := e.Clone()
	if c.v2plan.Load() != plan {
		t.Fatal("clone does not share the plan")
	}
	if c.v2pool != e.v2pool {
		t.Fatal("clone does not share the scratch pool")
	}
	succ, _, err := e.ApplyUpdates(nil)
	if err != nil {
		t.Fatal(err)
	}
	if succ.v2plan.Load() != nil {
		t.Fatal("successor inherited a plan for a (potentially) different graph")
	}
	if succ.v2pool != e.v2pool {
		t.Fatal("successor does not share the scratch pool")
	}
	if _, err := succ.Compute(AlgSamplingV2, 0, 1); err != nil {
		t.Fatal(err)
	}
}

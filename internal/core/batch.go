package core

import (
	"fmt"

	"usimrank/internal/parallel"
)

// Algorithm selects one of the four SimRank computation strategies.
type Algorithm int

// The four algorithms of Sec. VI.
const (
	AlgBaseline Algorithm = iota
	AlgSampling
	AlgTwoPhase
	AlgSRSP
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgBaseline:
		return "Baseline"
	case AlgSampling:
		return "Sampling"
	case AlgTwoPhase:
		return "SR-TS"
	case AlgSRSP:
		return "SR-SP"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Compute dispatches to the selected algorithm.
func (e *Engine) Compute(alg Algorithm, u, v int) (float64, error) {
	return e.computeWith(e.pool, alg, u, v)
}

// computeWith dispatches with an explicit sampling pool (nil = inline),
// so outer fan-outs like Batch can disable the per-query one.
func (e *Engine) computeWith(p *parallel.Pool, alg Algorithm, u, v int) (float64, error) {
	switch alg {
	case AlgBaseline:
		return e.Baseline(u, v)
	case AlgSampling:
		return e.samplingWith(p, u, v)
	case AlgTwoPhase:
		return e.twoPhaseWith(p, u, v)
	case AlgSRSP:
		return e.srspWith(p, u, v)
	default:
		return 0, fmt.Errorf("core: unknown algorithm %d", int(alg))
	}
}

// Clone returns an engine over the same graph with the same options but
// an independent row cache. The reversed graph and the SR-SP filter
// pools are shared: both are immutable after construction. Since the
// Engine itself is now safe for concurrent use, Clone is only needed to
// isolate row-cache churn between workloads, not for safety.
func (e *Engine) Clone() *Engine {
	fu, fv := e.pools() // materialise shared read-only pools before sharing
	return &Engine{
		g:        e.g,
		rev:      e.rev,
		opt:      e.opt,
		pool:     e.pool,
		rowCache: make(map[int]cachedRows),
		poolU:    fu,
		poolV:    fv,
	}
}

// PairResult is one outcome of a Batch computation.
type PairResult struct {
	U, V  int
	Value float64
	Err   error
}

// Batch computes the similarity of every pair concurrently and returns
// results in input order. All workers share the one engine — its row
// cache, reversed graph and sampled SR-SP filter pools — so no per-worker
// cloning or filter rebuilding happens. Parallelism lives entirely in
// the across-pairs fan-out: each query's own sampling runs inline, so
// worker counts never multiply into Parallelism² goroutines.
// Determinism: the per-query seeds depend only on (engine seed, u, v),
// so Batch returns the same values as sequential computation regardless
// of scheduling. workers < 1 selects the engine's Parallelism option.
func Batch(e *Engine, alg Algorithm, pairs [][2]int, workers int) []PairResult {
	if workers < 1 {
		workers = e.opt.Parallelism
	}
	if alg == AlgSRSP {
		e.pools() // build the shared filters once, before the fan-out
	}
	out := make([]PairResult, len(pairs))
	parallel.NewPool(workers).For(len(pairs), func(i int) {
		u, v := pairs[i][0], pairs[i][1]
		val, err := e.computeWith(nil, alg, u, v)
		out[i] = PairResult{U: u, V: v, Value: val, Err: err}
	})
	return out
}

package core

import (
	"fmt"
	"sync"
)

// Algorithm selects one of the four SimRank computation strategies.
type Algorithm int

// The four algorithms of Sec. VI.
const (
	AlgBaseline Algorithm = iota
	AlgSampling
	AlgTwoPhase
	AlgSRSP
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgBaseline:
		return "Baseline"
	case AlgSampling:
		return "Sampling"
	case AlgTwoPhase:
		return "SR-TS"
	case AlgSRSP:
		return "SR-SP"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Compute dispatches to the selected algorithm.
func (e *Engine) Compute(alg Algorithm, u, v int) (float64, error) {
	switch alg {
	case AlgBaseline:
		return e.Baseline(u, v)
	case AlgSampling:
		return e.Sampling(u, v)
	case AlgTwoPhase:
		return e.TwoPhase(u, v)
	case AlgSRSP:
		return e.SRSP(u, v)
	default:
		return 0, fmt.Errorf("core: unknown algorithm %d", int(alg))
	}
}

// Clone returns an engine over the same graph with the same options but
// independent mutable state (row cache). The reversed graph and the
// SR-SP filter pools are shared: both are immutable after construction,
// so a clone may be used concurrently with the receiver. Clone forces
// the lazy pool construction so no write races remain.
func (e *Engine) Clone() *Engine {
	e.pools() // materialise shared read-only pools before sharing
	return &Engine{
		g:        e.g,
		rev:      e.rev,
		opt:      e.opt,
		rowCache: make(map[int]cachedRows),
		poolU:    e.poolU,
		poolV:    e.poolV,
	}
}

// PairResult is one outcome of a Batch computation.
type PairResult struct {
	U, V  int
	Value float64
	Err   error
}

// Batch computes the similarity of every pair concurrently on `workers`
// engine clones and returns results in input order. Determinism: the
// per-query seeds depend only on (engine seed, u, v), so Batch returns
// the same values as sequential computation regardless of scheduling.
// workers < 1 selects 1.
func Batch(e *Engine, alg Algorithm, pairs [][2]int, workers int) []PairResult {
	if workers < 1 {
		workers = 1
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	out := make([]PairResult, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		eng := e.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				u, v := pairs[i][0], pairs[i][1]
				val, err := eng.Compute(alg, u, v)
				out[i] = PairResult{U: u, V: v, Value: val, Err: err}
			}
		}()
	}
	for i := range pairs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

package core

import (
	"context"
	"fmt"
	"strings"

	"usimrank/internal/cache"
	"usimrank/internal/matrix"
	"usimrank/internal/parallel"
)

// Algorithm selects one of the SimRank computation strategies.
type Algorithm int

// The four algorithms of Sec. VI, plus the v2 rewrite of the Monte
// Carlo kernel.
const (
	AlgBaseline Algorithm = iota
	AlgSampling
	AlgTwoPhase
	AlgSRSP
	// AlgSamplingV2 is the Sampling estimator on the v2 kernel
	// (internal/mc Plan/Arena): same measure, same Hoeffding bounds,
	// different randomness-consumption order, so its values differ from
	// AlgSampling's within sampling tolerance and are pinned separately.
	AlgSamplingV2
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgBaseline:
		return "Baseline"
	case AlgSampling:
		return "Sampling"
	case AlgTwoPhase:
		return "SR-TS"
	case AlgSRSP:
		return "SR-SP"
	case AlgSamplingV2:
		return "Sampling-v2"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists the strategies in their canonical order — the
// iteration set for sweeps, CLIs, and serving planes.
func Algorithms() []Algorithm {
	return []Algorithm{AlgBaseline, AlgSampling, AlgTwoPhase, AlgSRSP, AlgSamplingV2}
}

// ParseAlgorithm maps a user-facing algorithm name to its Algorithm.
// It accepts the CLI spellings ("baseline", "sampling", "twophase",
// "srsp", "sampling_v2") plus the paper's names ("sr-ts", "sr-sp"),
// case-insensitively.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return AlgBaseline, nil
	case "sampling":
		return AlgSampling, nil
	case "twophase", "two-phase", "srts", "sr-ts":
		return AlgTwoPhase, nil
	case "srsp", "sr-sp":
		return AlgSRSP, nil
	case "sampling_v2", "sampling-v2", "samplingv2":
		return AlgSamplingV2, nil
	default:
		return 0, fmt.Errorf("core: unknown algorithm %q (want baseline, sampling, twophase, srsp or sampling_v2)", s)
	}
}

// Compute dispatches to the selected algorithm.
func (e *Engine) Compute(alg Algorithm, u, v int) (float64, error) {
	return e.computeWith(e.pool, alg, u, v)
}

// computeWith dispatches with an explicit sampling pool (nil = inline),
// so outer fan-outs like Batch can disable the per-query one.
func (e *Engine) computeWith(p *parallel.Pool, alg Algorithm, u, v int) (float64, error) {
	switch alg {
	case AlgBaseline:
		return e.Baseline(u, v)
	case AlgSampling:
		return e.samplingWith(p, u, v)
	case AlgTwoPhase:
		return e.twoPhaseWith(p, u, v)
	case AlgSRSP:
		return e.srspWith(p, u, v)
	case AlgSamplingV2:
		return e.samplingV2With(p, u, v)
	default:
		return 0, fmt.Errorf("core: unknown algorithm %d", int(alg))
	}
}

// Clone returns an engine over the same graph with the same options but
// an independent row cache. The reversed graph and the SR-SP filter
// pools are shared: both are immutable after construction. Since the
// Engine itself is now safe for concurrent use, Clone is only needed to
// isolate row-cache churn between workloads, not for safety.
func (e *Engine) Clone() *Engine {
	fu, fv := e.pools() // materialise shared read-only pools before sharing
	clone := &Engine{
		g:      e.g,
		rev:    e.rev,
		opt:    e.opt,
		pool:   e.pool,
		rows:   cache.New[int, []matrix.Vec](e.opt.RowCacheSize),
		poolU:  fu,
		poolV:  fv,
		v2pool: e.v2pool, // scratch buffers are generic, share the warm pool
		gen:    e.gen,
	}
	// Same graph, same plan: share whatever the receiver has built.
	clone.v2plan.Store(e.v2plan.Load())
	return clone
}

// PairResult is one outcome of a Batch computation.
type PairResult struct {
	U, V  int
	Value float64
	Err   error
}

// Batch computes the similarity of every pair concurrently and returns
// results in input order. Pairs are grouped by their first vertex and
// each group runs through the single-source kernel, so a batch that
// asks for many candidates of the same source pays for that source's
// rows, walks and propagations exactly once. All groups share the one
// engine — its LRU row cache, reversed graph and sampled SR-SP filter
// pools. Determinism: the kernels are bit-identical to pairwise
// computation and per-side walk streams depend only on (engine seed,
// vertex, side), so Batch returns the same values as a sequential
// Compute loop regardless of grouping or scheduling. workers < 1
// selects the engine's Parallelism option.
func Batch(e *Engine, alg Algorithm, pairs [][2]int, workers int) []PairResult {
	return batchWith(context.Background(), e, alg, pairs, workers)
}

// batchWith is Batch on an explicit context: the fan-out pool is a
// WithContext view, so cancellation stops unstarted groups and chunks.
// BatchCtx (the only cancellable caller) discards the partial output
// when ctx is done.
func batchWith(ctx context.Context, e *Engine, alg Algorithm, pairs [][2]int, workers int) []PairResult {
	// workers < 1 shares the engine's own pool, so concurrent batches
	// (a serving plane's steady state) stay inside one pool-wide
	// Parallelism bound instead of stacking a fresh pool per call; an
	// explicit workers count still gets a dedicated pool.
	pool := e.pool
	if workers >= 1 {
		pool = parallel.NewPool(workers)
	}
	pool = pool.WithContext(ctx)
	if alg == AlgSRSP && e.opt.L < e.opt.Steps {
		e.pools() // build the shared filters once, before the fan-out
	}
	out := make([]PairResult, len(pairs))
	// Group valid pairs by source, preserving first-appearance order.
	groups := make(map[int][]int)
	var sources []int
	for i, p := range pairs {
		u, v := p[0], p[1]
		out[i] = PairResult{U: u, V: v}
		if err := e.checkVertex(u); err != nil {
			out[i].Err = err
			continue
		}
		if err := e.checkVertex(v); err != nil {
			out[i].Err = err
			continue
		}
		if _, ok := groups[u]; !ok {
			sources = append(sources, u)
		}
		groups[u] = append(groups[u], i)
	}
	// One task per source group. Inner kernels share the same pool: its
	// helper tokens are pool-wide, so the two fan-out levels never
	// multiply into workers² goroutines.
	pool.For(len(sources), func(gi int) {
		idx := groups[sources[gi]]
		candidates := make([]int, len(idx))
		for j, i := range idx {
			candidates[j] = pairs[i][1]
		}
		vals := make([]float64, len(candidates))
		errs := make([]error, len(candidates))
		if err := e.singleSourceInto(pool, alg, sources[gi], candidates, vals, errs); err != nil {
			for _, i := range idx {
				out[i].Err = err
			}
			return
		}
		for j, i := range idx {
			out[i].Value = vals[j]
			out[i].Err = errs[j]
		}
	})
	return out
}

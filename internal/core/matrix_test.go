package core

import (
	"math"
	"testing"

	"usimrank/internal/ugraph"
)

// TestSRSPMatrixMatchesPairwise: the amortised all-pairs computation
// must produce exactly the pairwise SRSP values (same pools, same
// estimates).
func TestSRSPMatrixMatchesPairwise(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{N: 2000, Seed: 5, L: 1})
	vertices := []int{0, 1, 2, 3, 4}
	m, err := e.SRSPMatrix(vertices)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range vertices {
		for j, v := range vertices {
			want, err := e.SRSP(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(m[i][j]-want) > 1e-12 {
				t.Fatalf("matrix[%d][%d] = %v, pairwise %v", i, j, m[i][j], want)
			}
		}
	}
}

func TestSRSPMatrixSubset(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{N: 500, Seed: 9, L: 1})
	m, err := e.SRSPMatrix([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || len(m[0]) != 2 {
		t.Fatalf("shape %dx%d", len(m), len(m[0]))
	}
	want, err := e.SRSP(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] != want {
		t.Fatalf("m[0][1] = %v, want %v", m[0][1], want)
	}
}

func TestSRSPMatrixExactWhenLEqualsSteps(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{Steps: 4, L: 4, Seed: 3})
	m, err := e.SRSPMatrix([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range []int{0, 1, 2} {
		for j, v := range []int{0, 1, 2} {
			want, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(m[i][j]-want) > 1e-12 {
				t.Fatalf("l=n matrix[%d][%d] = %v, baseline %v", i, j, m[i][j], want)
			}
		}
	}
}

func TestSRSPMatrixValidatesVertices(t *testing.T) {
	e := newEngine(t, ugraph.PaperFig1(), Options{})
	if _, err := e.SRSPMatrix([]int{0, 99}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

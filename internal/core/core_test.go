package core

import (
	"math"
	"testing"
	"testing/quick"

	"usimrank/internal/detsim"
	"usimrank/internal/rng"
	"usimrank/internal/ugraph"
)

const eps = 1e-10

func newEngine(t *testing.T, g *ugraph.Graph, opt Options) *Engine {
	t.Helper()
	e, err := NewEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOptionsDefaults(t *testing.T) {
	e := newEngine(t, ugraph.PaperFig1(), Options{})
	o := e.Options()
	if o.C != 0.6 || o.Steps != 5 || o.N != 1000 || o.L != 1 || o.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := ugraph.PaperFig1()
	bad := []Options{
		{C: 1.2},
		{C: -0.1},
		{Steps: -3},
		{N: -1},
		{L: 9, Steps: 5},
		{L: -2},
	}
	for _, o := range bad {
		if _, err := NewEngine(g, o); err == nil {
			t.Fatalf("options %+v accepted", o)
		}
	}
}

func TestCombineHandComputed(t *testing.T) {
	// m = [1, 0.5, 0.25], c = 0.5, n = 2:
	// s = 0.25·0.25 + 0.5·(1·1 + 0.5·0.5) = 0.0625 + 0.625 = 0.6875.
	m := []float64{1, 0.5, 0.25}
	if got := Combine(m, 0.5, 2); math.Abs(got-0.6875) > eps {
		t.Fatalf("Combine = %v", got)
	}
}

func TestCombineNZero(t *testing.T) {
	// s(0) = m(0): the identity term.
	if got := Combine([]float64{0.75}, 0.6, 0); got != 0.75 {
		t.Fatalf("s(0) = %v", got)
	}
}

func TestCombinePanicsShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short slice accepted")
		}
	}()
	Combine([]float64{1}, 0.5, 3)
}

func TestCombineTwoPhaseConsistency(t *testing.T) {
	// When exact and sampled agree, the two-phase combination equals the
	// plain combination for every split l.
	m := []float64{1, 0.4, 0.3, 0.2, 0.1, 0.05}
	c, n := 0.6, 5
	want := Combine(m, c, n)
	for l := 0; l < n; l++ {
		if got := CombineTwoPhase(m[:l+1], m, c, l, n); math.Abs(got-want) > eps {
			t.Fatalf("l=%d: %v vs %v", l, got, want)
		}
	}
	// l ≥ n uses exact only.
	if got := CombineTwoPhase(m, nil, c, n, n); math.Abs(got-want) > eps {
		t.Fatalf("l=n: %v vs %v", got, want)
	}
}

func TestErrorBounds(t *testing.T) {
	if got := ErrorBound(0.6, 5); math.Abs(got-math.Pow(0.6, 6)) > eps {
		t.Fatalf("ErrorBound = %v", got)
	}
	if got := TwoPhaseErrorBound(0.6, 1, 5); math.Abs(got-(0.36-math.Pow(0.6, 5))) > eps {
		t.Fatalf("TwoPhaseErrorBound = %v", got)
	}
	// Larger l shrinks the bound (Cor. 1).
	if TwoPhaseErrorBound(0.6, 2, 5) >= TwoPhaseErrorBound(0.6, 1, 5) {
		t.Fatal("bound not decreasing in l")
	}
}

func TestBaselineRangeAndSymmetry(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{})
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			suv, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if suv < -eps || suv > 1+eps {
				t.Fatalf("s(%d,%d) = %v out of [0,1]", u, v, suv)
			}
			svu, err := e.Baseline(v, u)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(suv-svu) > eps {
				t.Fatalf("s(%d,%d)=%v ≠ s(%d,%d)=%v", u, v, suv, v, u, svu)
			}
		}
	}
}

func TestBaselineVertexValidation(t *testing.T) {
	e := newEngine(t, ugraph.PaperFig1(), Options{})
	if _, err := e.Baseline(-1, 0); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := e.Baseline(0, 17); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

// TestTheorem3 verifies that on an all-certain uncertain graph the
// measure equals deterministic random-walk SimRank.
func TestTheorem3(t *testing.T) {
	// A small deterministic graph with cycles and sinks.
	b := ugraph.NewBuilder(6)
	for _, a := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}, {1, 5}} {
		b.AddArc(a[0], a[1], 1)
	}
	g := b.MustBuild()
	e := newEngine(t, g, Options{C: 0.6, Steps: 5})
	sk := g.Skeleton()
	for u := 0; u < 6; u++ {
		for v := u; v < 6; v++ {
			want := detsim.SinglePair(sk, u, v, 0.6, 5)
			got, err := e.Baseline(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("s(%d,%d): uncertain %v vs deterministic %v", u, v, got, want)
			}
		}
	}
}

// TestTheorem2 verifies |s(n) − s(m)| ≤ c^(n+1) for m > n along the
// iterate sequence: the tail the truncation discards is bounded by the
// Theorem 2 geometric bound.
func TestTheorem2Truncation(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{C: 0.6})
	for u := 0; u < 5; u++ {
		for v := u; v < 5; v++ {
			series, err := e.Series(u, v, 12)
			if err != nil {
				t.Fatal(err)
			}
			for n := 1; n < 12; n++ {
				for m := n + 1; m <= 12; m++ {
					if d := math.Abs(series[n] - series[m]); d > ErrorBound(0.6, n)+eps {
						t.Fatalf("(%d,%d): |s(%d)−s(%d)| = %v > c^%d = %v",
							u, v, n, m, d, n+1, ErrorBound(0.6, n))
					}
				}
			}
		}
	}
}

func TestSeriesConvergence(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{C: 0.6})
	series, err := e.Series(0, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	// Successive differences must shrink geometrically; by n = 10 the
	// iterate is stable to ~c^11 ≈ 0.0036.
	if d := math.Abs(series[14] - series[10]); d > 0.004 {
		t.Fatalf("series not converged: |s(14)−s(10)| = %v", d)
	}
}

func TestSamplingCloseToBaseline(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{N: 40000, Seed: 7})
	pairs := [][2]int{{0, 1}, {0, 3}, {2, 4}, {1, 3}}
	for _, p := range pairs {
		exact, err := e.Baseline(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		approx, err := e.Sampling(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-approx) > 0.01 {
			t.Fatalf("pair %v: baseline %v, sampling %v", p, exact, approx)
		}
	}
}

func TestSamplingDeterministicPerSeed(t *testing.T) {
	g := ugraph.PaperFig1()
	e1 := newEngine(t, g, Options{Seed: 11})
	e2 := newEngine(t, g, Options{Seed: 11})
	a, err := e1.Sampling(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.Sampling(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
	e3 := newEngine(t, g, Options{Seed: 12})
	c, err := e3.Sampling(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical estimates (suspicious)")
	}
}

func TestTwoPhaseCloseToBaseline(t *testing.T) {
	g := ugraph.PaperFig1()
	for _, l := range []int{1, 2, 3} {
		e := newEngine(t, g, Options{N: 40000, L: l, Seed: 3})
		exact, err := e.Baseline(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := e.TwoPhase(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-approx) > 0.01 {
			t.Fatalf("l=%d: baseline %v, two-phase %v", l, exact, approx)
		}
	}
}

func TestTwoPhaseLEqualsStepsIsExact(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{L: 5, Steps: 5})
	exact, err := e.Baseline(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.TwoPhase(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-tp) > eps {
		t.Fatalf("l = n should be exact: %v vs %v", tp, exact)
	}
}

func TestSRSPCloseToBaseline(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{N: 40000, L: 1, Seed: 5})
	pairs := [][2]int{{0, 1}, {3, 4}, {1, 2}}
	for _, p := range pairs {
		exact, err := e.Baseline(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		approx, err := e.SRSP(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-approx) > 0.015 {
			t.Fatalf("pair %v: baseline %v, SR-SP %v", p, exact, approx)
		}
	}
}

func TestSRSPSharedPoolRuns(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{N: 2000, SharedPool: true, Seed: 5})
	if _, err := e.SRSP(0, 1); err != nil {
		t.Fatal(err)
	}
}

// TestTwoPhaseMoreAccurateThanSampling reproduces the paper's core
// accuracy claim (Fig. 10): with a modest N, the two-phase estimate has
// a smaller average error than pure sampling because the dominant
// low-k terms are exact.
func TestTwoPhaseMoreAccurateThanSampling(t *testing.T) {
	g := ugraph.PaperFig1()
	// Pairs whose vertices share in-neighbours, so the exact prefix of
	// the two-phase algorithm covers meeting probability mass: in the
	// Fig. 1 graph, in(v1) ∩ in(v3) = {v2} and in(v2) ∩ in(v5) = {v4}.
	pairs := [][2]int{{0, 2}, {1, 4}}
	const trials = 40
	var errSamp, errTP float64
	for i := 0; i < trials; i++ {
		e := newEngine(t, g, Options{N: 100, L: 2, Seed: uint64(1000 + i)})
		for _, p := range pairs {
			exact, err := e.Baseline(p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			s, err := e.Sampling(p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			tp, err := e.TwoPhase(p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			errSamp += math.Abs(s - exact)
			errTP += math.Abs(tp - exact)
		}
	}
	if errTP >= errSamp {
		t.Fatalf("two-phase avg error %v not below sampling %v",
			errTP/(trials*2), errSamp/(trials*2))
	}
}

func TestMeetingExactSelfPairStartsAtOne(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{})
	m, err := e.MeetingExact(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 1 {
		t.Fatalf("m(0)(u,u) = %v", m[0])
	}
	for k, x := range m {
		if x < -eps || x > 1+eps {
			t.Fatalf("m(%d) = %v", k, x)
		}
	}
}

func TestRowCacheCorrectness(t *testing.T) {
	g := ugraph.PaperFig1()
	e := newEngine(t, g, Options{RowCacheSize: 2})
	// Compute with cold cache, warm cache and evicted cache; all equal.
	a, err := e.Baseline(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Baseline(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Baseline(2, 3); err != nil { // evicts
		t.Fatal(err)
	}
	c, err := e.Baseline(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || b != c {
		t.Fatalf("cache changed results: %v %v %v", a, b, c)
	}
}

// Property: on random small uncertain graphs the Baseline is symmetric,
// bounded, and its series respects the Theorem 2 bound.
func TestQuickBaselineInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4)
		b := ugraph.NewBuilder(n)
		arcs := 0
		for u := 0; u < n && arcs < 10; u++ {
			for v := 0; v < n && arcs < 10; v++ {
				if r.Bool(0.5) {
					b.AddArc(u, v, 0.1+0.9*r.Float64())
					arcs++
				}
			}
		}
		g := b.MustBuild()
		e, err := NewEngine(g, Options{C: 0.6, Steps: 4})
		if err != nil {
			return false
		}
		u, v := r.Intn(n), r.Intn(n)
		suv, err := e.Baseline(u, v)
		if err != nil {
			return false
		}
		svu, err := e.Baseline(v, u)
		if err != nil {
			return false
		}
		return suv >= -eps && suv <= 1+eps && math.Abs(suv-svu) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

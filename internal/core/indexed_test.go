package core

import (
	"context"
	"math"
	"testing"

	"usimrank/internal/matrix"
)

// memIndex is the minimal in-memory SourceIndex: exactly what the
// offline builder persists, without the file round trip.
type memIndex struct {
	gen      uint64
	vertices int
	depth    int
	samples  int
	seed     uint64
	rows     [][]matrix.Vec // rows[v][k]
}

func (x *memIndex) Generation() uint64      { return x.gen }
func (x *memIndex) NumVertices() int        { return x.vertices }
func (x *memIndex) Depth() int              { return x.depth }
func (x *memIndex) Samples() int            { return x.samples }
func (x *memIndex) Seed() uint64            { return x.seed }
func (x *memIndex) Row(v, k int) matrix.Vec { return x.rows[v][k] }

func buildMemIndex(t *testing.T, e *Engine) *memIndex {
	t.Helper()
	n := e.Graph().NumVertices()
	x := &memIndex{
		gen:      e.Generation(),
		vertices: n,
		depth:    e.Options().Steps,
		samples:  e.Options().N,
		seed:     e.Options().Seed,
		rows:     make([][]matrix.Vec, n),
	}
	for v := 0; v < n; v++ {
		occ, err := e.VSideOccupancy(v)
		if err != nil {
			t.Fatalf("VSideOccupancy(%d): %v", v, err)
		}
		x.rows[v] = occ
	}
	return x
}

// TestVSideOccupancyIsDistribution: every occupancy row is a
// sub-distribution (entries in [0,1], total ≤ 1, strictly sorted), and
// step 0 is the unit vector at the vertex itself.
func TestVSideOccupancyIsDistribution(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 500, Seed: 9})
	for _, v := range []int{0, 1, 17, 63, 100} {
		occ, err := e.VSideOccupancy(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(occ) != e.Options().Steps+1 {
			t.Fatalf("vertex %d: %d rows, want %d", v, len(occ), e.Options().Steps+1)
		}
		if occ[0].Len() != 1 || occ[0].Idx[0] != int32(v) || occ[0].Val[0] != 1 {
			t.Fatalf("vertex %d: step-0 occupancy %+v, want unit at %d", v, occ[0], v)
		}
		for k, row := range occ {
			sum := 0.0
			prev := int32(-1)
			for i := range row.Idx {
				if row.Idx[i] <= prev {
					t.Fatalf("vertex %d step %d: unsorted indices", v, k)
				}
				prev = row.Idx[i]
				if row.Val[i] <= 0 || row.Val[i] > 1 {
					t.Fatalf("vertex %d step %d: probability %v", v, k, row.Val[i])
				}
				sum += row.Val[i]
			}
			if sum > 1+1e-12 {
				t.Fatalf("vertex %d step %d: total mass %v > 1", v, k, sum)
			}
		}
	}
}

// TestIndexedMatchesManualEstimator: the kernel computes exactly
// Combine over ⟨occ_u[k], occ_v[k]⟩ — pinned bit for bit against a
// hand-rolled per-pair evaluation.
func TestIndexedMatchesManualEstimator(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 400, Seed: 5})
	x := buildMemIndex(t, e)
	candidates := []int{0, 3, 17, 17, 42, 99}
	u := 7
	got, err := e.SingleSourceIndexedAgainst(x, u, candidates)
	if err != nil {
		t.Fatal(err)
	}
	occU := e.occupancyWith(nil, u, saltWalkU)
	n := e.Options().Steps
	for i, v := range candidates {
		m := make([]float64, n+1)
		for k := 0; k <= n; k++ {
			m[k] = occU[k].Dot(x.Row(v, k))
		}
		if want := Combine(m, e.Options().C, n); got[i] != want {
			t.Fatalf("candidate %d: got %v, want %v", v, got[i], want)
		}
	}
}

// TestIndexedParallelismDeterminism: the indexed kernel obeys the
// engine-wide contract — bit-identical output for every Parallelism.
func TestIndexedParallelismDeterminism(t *testing.T) {
	g := testGraph()
	run := func(par int) []float64 {
		e := newEngine(t, g, Options{N: 600, Seed: 21, Parallelism: par})
		x := buildMemIndex(t, e)
		out, err := e.SingleSourceIndexed(x, 12)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1)
	for _, par := range []int{2, 7} {
		got := run(par)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("Parallelism=%d: s(12,%d) = %v, want %v", par, i, got[i], base[i])
			}
		}
	}
}

// TestIndexedTracksSampling: at equal N the indexed estimator averages
// N² walk pairings where Sampling averages N, so the two must agree
// within Monte Carlo noise on every vertex.
func TestIndexedTracksSampling(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 2000, Seed: 3})
	x := buildMemIndex(t, e)
	u := 5
	indexed, err := e.SingleSourceIndexed(x, u)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := e.SingleSource(AlgSampling, u)
	if err != nil {
		t.Fatal(err)
	}
	for v := range indexed {
		if d := math.Abs(indexed[v] - sampled[v]); d > 0.08 {
			t.Fatalf("s(%d,%d): indexed %v vs sampled %v (|Δ|=%v)", u, v, indexed[v], sampled[v], d)
		}
	}
}

func TestCheckIndexRejectsMismatch(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 300, Seed: 11})
	good := buildMemIndex(t, e)
	if err := e.CheckIndex(good); err != nil {
		t.Fatalf("matching index rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(x *memIndex)
	}{
		{"nil", nil},
		{"generation", func(x *memIndex) { x.gen = 2 }},
		{"vertices", func(x *memIndex) { x.vertices-- }},
		{"samples", func(x *memIndex) { x.samples = 999 }},
		{"seed", func(x *memIndex) { x.seed = 12 }},
		{"depth", func(x *memIndex) { x.depth = e.Options().Steps - 1 }},
	}
	for _, tc := range cases {
		var x SourceIndex
		if tc.mutate != nil {
			bad := *good
			tc.mutate(&bad)
			x = &bad
		}
		if err := e.CheckIndex(x); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		}
		if _, err := e.SingleSourceIndexedAgainst(x, 0, []int{1}); err == nil {
			t.Errorf("%s mismatch served a query", tc.name)
		}
	}
}

func TestIndexedEdgeCases(t *testing.T) {
	g := testGraph()
	e := newEngine(t, g, Options{N: 200, Seed: 2})
	x := buildMemIndex(t, e)
	if out, err := e.SingleSourceIndexedAgainst(x, 0, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty candidates: %v, %v", out, err)
	}
	if _, err := e.SingleSourceIndexedAgainst(x, -1, []int{0}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := e.SingleSourceIndexedAgainst(x, 0, []int{g.NumVertices()}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SingleSourceIndexedCtx(ctx, x, 0); err != context.Canceled {
		t.Fatalf("cancelled ctx: %v", err)
	}
	// An uncancelled context returns exactly the plain-call answer.
	plain, err := e.SingleSourceIndexedAgainst(x, 4, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := e.SingleSourceIndexedAgainstCtx(context.Background(), x, 4, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != viaCtx[i] {
			t.Fatalf("ctx path diverged at %d: %v vs %v", i, viaCtx[i], plain[i])
		}
	}
}

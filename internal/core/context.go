package core

import (
	"context"

	"usimrank/internal/obs"
)

// Context-aware query wrappers. Each runs the same deterministic kernel
// as its plain counterpart on a WithContext view of the engine's worker
// pool: when ctx is cancelled, the pool stops claiming new sample
// chunks / candidate tasks, the partial outputs are discarded, and the
// wrapper returns ctx.Err(). A query that completes before the deadline
// returns a value bit-identical to the plain call — cancellation can
// only abort a query, never perturb its result.
//
// Granularity: cancellation is checked between pool jobs (Monte Carlo
// sample chunks, SR-SP propagations, per-candidate kernel tasks). The
// exact-row dynamic programming inside one vertex is not interruptible,
// so a deadline may overshoot by roughly one chunk or one row
// computation.

// ComputeCtx is Compute with cancellation: long Monte Carlo or SR-SP
// work is abandoned once ctx is done, instead of burning
// goroutine-seconds on a result nobody will read.
func (e *Engine) ComputeCtx(ctx context.Context, alg Algorithm, u, v int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	sp := obs.SpanFromContext(ctx).Start("kernel_pair")
	sp.Add("walks", e.pairWalks(alg))
	s, err := e.computeWith(e.pool.WithContext(ctx), alg, u, v)
	sp.Error(err)
	sp.End()
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s, nil
}

// SingleSourceCtx is SingleSource with cancellation.
func (e *Engine) SingleSourceCtx(ctx context.Context, alg Algorithm, u int) ([]float64, error) {
	candidates := make([]int, e.g.NumVertices())
	for i := range candidates {
		candidates[i] = i
	}
	return e.SingleSourceAgainstCtx(ctx, alg, u, candidates)
}

// SingleSourceAgainstCtx is SingleSourceAgainst with cancellation.
func (e *Engine) SingleSourceAgainstCtx(ctx context.Context, alg Algorithm, u int, candidates []int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.SpanFromContext(ctx).Start("kernel_single_source")
	sp.Add("walks", e.singleSourceWalks(alg, len(candidates)))
	sp.Add("candidates", int64(len(candidates)))
	out, err := e.singleSourceWith(e.pool.WithContext(ctx), alg, u, candidates)
	sp.Error(err)
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchCtx is Batch with cancellation: once ctx is done, unstarted
// source groups and sample chunks are skipped and the call returns
// ctx.Err() instead of partial results.
func BatchCtx(ctx context.Context, e *Engine, alg Algorithm, pairs [][2]int, workers int) ([]PairResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.SpanFromContext(ctx).Start("kernel_batch")
	sp.Add("pairs", int64(len(pairs)))
	out := batchWith(ctx, e, alg, pairs, workers)
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WarmFilters eagerly builds the SR-SP filter-vector pools (normally
// built lazily on the first SR-SP query). Serving planes call it while
// preparing an engine off the request path — e.g. before hot-swapping a
// freshly loaded graph — so the first query after the swap does not pay
// the whole offline phase.
func (e *Engine) WarmFilters() { e.pools() }

package core

import (
	"sync/atomic"
)

// kernelCounters aggregates lifetime resource counts across every query
// of one engine. Increments happen at chunk granularity (one atomic add
// per ~128-walk chunk, never per walk), so the counters are effectively
// free next to the sampling work they measure and keep the v2 kernel's
// zero-allocation steady state intact.
type kernelCounters struct {
	walks     atomic.Uint64 // random walks sampled (all Monte Carlo kernels)
	arcs      atomic.Uint64 // arc instantiations recorded by the v2 kernel
	arenaHigh atomic.Uint64 // largest v2 arena footprint seen, bytes
}

// noteArena raises the arena high-water mark to b if larger (CAS max).
func (k *kernelCounters) noteArena(b uint64) {
	for {
		cur := k.arenaHigh.Load()
		if b <= cur || k.arenaHigh.CompareAndSwap(cur, b) {
			return
		}
	}
}

// KernelStats is a snapshot of an engine's lifetime kernel resource
// counters, the raw material of the /metrics kernel gauges.
type KernelStats struct {
	// Walks is the total number of random walks sampled, across all
	// Monte Carlo kernels (v1 sampling, two-phase tails, v2, occupancy /
	// index-residual sampling).
	Walks uint64
	// ArcsInstantiated counts possible-world arc-set instantiations
	// recorded by the v2 kernel's walk arenas.
	ArcsInstantiated uint64
	// ArenaHighWaterBytes is the largest single v2 arena footprint
	// observed so far.
	ArenaHighWaterBytes uint64
	// ScratchGets and ScratchMisses describe the v2 scratch buffer pool:
	// a miss built a fresh buffer, so a steady state should show the
	// miss count plateau while gets keep climbing.
	ScratchGets   uint64
	ScratchMisses uint64
}

// KernelStats returns the engine's lifetime kernel resource counters.
func (e *Engine) KernelStats() KernelStats {
	gets, misses := e.v2pool.Stats()
	return KernelStats{
		Walks:               e.kc.walks.Load(),
		ArcsInstantiated:    e.kc.arcs.Load(),
		ArenaHighWaterBytes: e.kc.arenaHigh.Load(),
		ScratchGets:         gets,
		ScratchMisses:       misses,
	}
}

// RowCacheCounters reports the shared row cache's lifetime hit/miss/
// eviction counts (RowCacheStats reports occupancy; this is the
// effectiveness view).
func (e *Engine) RowCacheCounters() (hits, misses, evictions uint64) {
	hits, misses = e.rows.Counters()
	return hits, misses, e.rows.Evictions()
}

// pairWalks is the analytic walk count of one pairwise query: the
// sampling strategies draw N walks per side, the exact strategies none,
// and the two-phase strategies only when the sampled tail is non-empty.
// Attached to trace spans so a profile names the sampling effort behind
// each number without the kernels having to thread span handles around.
func (e *Engine) pairWalks(alg Algorithm) int64 {
	switch alg {
	case AlgSampling, AlgSamplingV2:
		return int64(2 * e.opt.N)
	case AlgTwoPhase:
		if l, _ := e.exactDepth(AlgTwoPhase); l < e.opt.Steps {
			return int64(2 * e.opt.N)
		}
	}
	return 0
}

// singleSourceWalks is pairWalks' single-source analogue: the source's
// walks are drawn once and replayed, each candidate costs one side.
func (e *Engine) singleSourceWalks(alg Algorithm, candidates int) int64 {
	switch alg {
	case AlgSampling, AlgSamplingV2:
		return int64(e.opt.N) * int64(1+candidates)
	case AlgTwoPhase:
		if l, _ := e.exactDepth(AlgTwoPhase); l < e.opt.Steps {
			return int64(e.opt.N) * int64(1+candidates)
		}
	}
	return 0
}
